package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingCtx is a context.Context that cancels itself once Err has been
// consulted `limit` times. The batch workers consult Err exactly once per
// pulled query, so the final call count is a direct, deterministic measure
// of how many queries the dispatch served after cancellation — no timers,
// no sleeps.
type countingCtx struct {
	calls atomic.Int64
	limit int64

	mu   sync.Mutex
	done chan struct{}
}

func newCountingCtx(limit int64) *countingCtx {
	return &countingCtx{limit: limit, done: make(chan struct{})}
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) >= c.limit {
		c.mu.Lock()
		select {
		case <-c.done:
		default:
			close(c.done)
		}
		c.mu.Unlock()
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{}                   { return c.done }
func (c *countingCtx) Deadline() (deadline time.Time, ok bool) { return }
func (c *countingCtx) Value(any) any                           { return nil }

// TestQueryBatchContextCanceledUpFront: a context canceled before dispatch
// must refuse the batch outright — no worker spawn, no queries served, the
// destination reset to all-empty rows.
func TestQueryBatchContextCanceledUpFront(t *testing.T) {
	c := makeCorpus(t, 200, 64, 41)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]BatchQuery, 50)
	for i := range queries {
		r := c.records[i%len(c.records)]
		queries[i] = BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 0.5}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res BatchResults
	if err := idx.QueryBatchIntoContext(ctx, &res, queries, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.NumRows() != len(queries) {
		t.Fatalf("NumRows = %d, want %d", res.NumRows(), len(queries))
	}
	for i := 0; i < res.NumRows(); i++ {
		if len(res.Row(i)) != 0 {
			t.Fatalf("row %d non-empty after up-front cancellation", i)
		}
	}
	if rows, err := idx.QueryBatchContext(ctx, queries, 4); !errors.Is(err, context.Canceled) || rows != nil {
		t.Fatalf("QueryBatchContext = (%v, %v), want (nil, context.Canceled)", rows, err)
	}
}

// TestQueryBatchContextStopsMidBatch cancels the context after a handful of
// Err consultations and requires the dispatch to (a) surface the
// cancellation and (b) stop pulling queries almost immediately: out of a
// 4096-query batch, at most limit + one in-flight query per worker may have
// been started. This is the "disconnected client's batch stops burning CPU"
// guarantee, made deterministic.
func TestQueryBatchContextStopsMidBatch(t *testing.T) {
	c := makeCorpus(t, 400, 64, 42)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	const batchSize = 4096
	queries := make([]BatchQuery, batchSize)
	for i := range queries {
		r := c.records[i%len(c.records)]
		queries[i] = BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 0.25}
	}
	for _, workers := range []int{1, 4} {
		const limit = 8
		ctx := newCountingCtx(limit)
		var res BatchResults
		err := idx.QueryBatchIntoContext(ctx, &res, queries, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Every pulled query consults Err exactly once (plus the up-front
		// check and the final error read), so the call count bounds the
		// served queries. Serving the whole batch would need ≥ batchSize
		// calls.
		if calls := ctx.calls.Load(); calls > limit+int64(workers)+2 {
			t.Fatalf("workers=%d: %d Err consultations after cancellation at %d", workers, calls, limit)
		}
	}
}

// TestQueryBatchContextNoGoroutineLeak hammers cancellation mid-dispatch and
// requires the goroutine count to return to its baseline: canceled batch
// workers must exit, not park. Run with -race in CI.
func TestQueryBatchContextNoGoroutineLeak(t *testing.T) {
	c := makeCorpus(t, 300, 64, 43)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]BatchQuery, 2048)
	for i := range queries {
		r := c.records[i%len(c.records)]
		queries[i] = BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 0.25}
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx := newCountingCtx(4)
		var res BatchResults
		if err := idx.QueryBatchIntoContext(ctx, &res, queries, 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	// QueryBatchIntoContext waits for its workers before returning, so the
	// count should already be back; poll briefly to absorb runtime noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancellation hammer", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryBatchContextUncanceledMatchesPlain: threading a live context
// through must not change any answer — the ctx-aware path with a background
// context is the plain path.
func TestQueryBatchContextUncanceledMatchesPlain(t *testing.T) {
	c := makeCorpus(t, 300, 64, 44)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]BatchQuery, 64)
	for i := range queries {
		r := c.records[(i*5)%len(c.records)]
		queries[i] = BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 0.5}
	}
	want, err := idx.QueryBatch(queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := idx.QueryBatchContext(ctx, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !equalIDs(sortedIDs(got[i]), sortedIDs(want[i])) {
			t.Fatalf("row %d differs under uncanceled context", i)
		}
	}
}
