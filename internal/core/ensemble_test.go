package core

import (
	"fmt"
	"sort"
	"testing"

	"lshensemble/internal/minhash"
	"lshensemble/internal/partition"
	"lshensemble/internal/xrand"
)

// testCorpus builds n integer-valued domains with power-law sizes where
// domain i shares a prefix of the universe, creating a spectrum of true
// containment scores against prefix queries.
type testCorpus struct {
	hasher  *minhash.Hasher
	records []Record
	values  [][]uint64
}

func makeCorpus(t testing.TB, n, numHash int, seed uint64) *testCorpus {
	t.Helper()
	rng := xrand.New(seed)
	h := minhash.NewHasher(numHash, 42)
	c := &testCorpus{hasher: h}
	for i := 0; i < n; i++ {
		size := rng.Pareto(2.0, 10, 5000)
		vals := make([]uint64, size)
		var base uint64
		if rng.Float64() < 0.5 {
			base = 0 // overlapping cluster: values 0..size-1
		} else {
			base = uint64(1+rng.Intn(1000)) * 1000000 // scattered
		}
		for j := range vals {
			vals[j] = base + uint64(j)
		}
		hashed := make([]uint64, size)
		for j, v := range vals {
			hashed[j] = minhash.HashUint64(v)
		}
		c.values = append(c.values, vals)
		c.records = append(c.records, Record{
			Key:  fmt.Sprintf("d%04d", i),
			Size: size,
			Sig:  h.Sketch(hashed),
		})
	}
	return c
}

// mustQuery is the test shorthand for Query on an index with no pending
// adds; it fails the test on any error.
func mustQuery(t testing.TB, x *Index, sig minhash.Signature, querySize int, tStar float64) []string {
	t.Helper()
	res, err := x.Query(sig, querySize, tStar)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// trueContainment computes t(Q, X) exactly.
func trueContainment(q, x []uint64) float64 {
	set := make(map[uint64]struct{}, len(x))
	for _, v := range x {
		set[v] = struct{}{}
	}
	hit := 0
	for _, v := range q {
		if _, ok := set[v]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(q))
}

func TestBuildValidation(t *testing.T) {
	h := minhash.NewHasher(16, 1)
	sig := h.SketchStrings([]string{"a"})
	if _, err := Build(nil, Options{}); err != ErrEmpty {
		t.Fatalf("empty build: %v", err)
	}
	if _, err := Build([]Record{{Key: "k", Size: 0, Sig: sig}}, Options{NumHash: 16}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := Build([]Record{{Key: "k", Size: 1, Sig: sig[:8]}}, Options{NumHash: 16}); err == nil {
		t.Fatal("short signature accepted")
	}
	if _, err := Build([]Record{{Key: "k", Size: 1, Sig: sig}}, Options{NumHash: 16, RMax: 32}); err == nil {
		t.Fatal("RMax > NumHash accepted")
	}
}

func TestDefaults(t *testing.T) {
	h := minhash.NewHasher(256, 1)
	recs := []Record{{Key: "k", Size: 5, Sig: h.SketchStrings([]string{"a", "b", "c", "d", "e"})}}
	x, err := Build(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := x.Options()
	if o.NumHash != 256 || o.RMax != 8 || o.NumPartitions != 16 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestSelfRetrieval(t *testing.T) {
	// Every indexed domain queried by itself at any threshold must be found
	// (containment 1.0, identical signature → collides in every band).
	c := makeCorpus(t, 200, 128, 1)
	x, err := Build(c.records, Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tStar := range []float64{0.1, 0.5, 1.0} {
		for i, r := range c.records {
			got := mustQuery(t, x, r.Sig, r.Size, tStar)
			found := false
			for _, k := range got {
				if k == r.Key {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("domain %d not self-retrieved at t*=%v", i, tStar)
			}
		}
	}
}

func TestRecallAgainstGroundTruth(t *testing.T) {
	// The ensemble is recall-biased by design: verify high recall against
	// exact containment at a mid threshold.
	c := makeCorpus(t, 500, 256, 2)
	x, err := Build(c.records, Options{NumHash: 256, RMax: 8, NumPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	const tStar = 0.5
	totalTruth, totalHit := 0, 0
	for qi := 0; qi < 50; qi++ {
		q := c.values[qi*7%len(c.values)]
		sig := c.records[qi*7%len(c.values)].Sig
		got := map[string]bool{}
		for _, k := range mustQuery(t, x, sig, len(q), tStar) {
			got[k] = true
		}
		for xi, xv := range c.values {
			if trueContainment(q, xv) >= tStar {
				totalTruth++
				if got[c.records[xi].Key] {
					totalHit++
				}
			}
		}
	}
	if totalTruth == 0 {
		t.Fatal("degenerate corpus: no qualifying pairs")
	}
	recall := float64(totalHit) / float64(totalTruth)
	if recall < 0.85 {
		t.Fatalf("recall %v too low (%d/%d)", recall, totalHit, totalTruth)
	}
}

func TestMorePartitionsImprovePrecision(t *testing.T) {
	// The paper's central accuracy claim (Fig. 4): partitioning increases
	// precision at comparable recall on skewed corpora.
	c := makeCorpus(t, 800, 256, 3)
	const tStar = 0.5
	precision := func(nPart int) float64 {
		x, err := Build(c.records, Options{NumHash: 256, RMax: 8, NumPartitions: nPart})
		if err != nil {
			t.Fatal(err)
		}
		tp, returned := 0, 0
		for qi := 0; qi < 40; qi++ {
			idx := qi * 13 % len(c.values)
			q := c.values[idx]
			res := mustQuery(t, x, c.records[idx].Sig, len(q), tStar)
			returned += len(res)
			for _, k := range res {
				var xi int
				fmt.Sscanf(k, "d%d", &xi)
				if trueContainment(q, c.values[xi]) >= tStar {
					tp++
				}
			}
		}
		if returned == 0 {
			return 1
		}
		return float64(tp) / float64(returned)
	}
	p1 := precision(1)
	p16 := precision(16)
	if p16 <= p1 {
		t.Fatalf("16 partitions precision %v should beat baseline %v", p16, p1)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	c := makeCorpus(t, 300, 128, 4)
	seq, err := Build(c.records, Options{NumHash: 128, RMax: 4, NumPartitions: 8, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(c.records, Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 30; qi++ {
		r := c.records[qi*11%len(c.records)]
		a := mustQuery(t, seq, r.Sig, r.Size, 0.4)
		b := mustQuery(t, par, r.Sig, r.Size, 0.4)
		sort.Strings(a)
		sort.Strings(b)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: result %d differs: %s vs %s", qi, i, a[i], b[i])
			}
		}
	}
}

func TestPartitionSkipping(t *testing.T) {
	// A partition whose upper bound cannot reach the threshold is skipped:
	// querying with a huge query size must return nothing from small
	// partitions (u/q < t*) yet not panic.
	c := makeCorpus(t, 100, 128, 5)
	x, err := Build(c.records, Options{NumHash: 128, RMax: 4, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, x, c.records[0].Sig, 10_000_000, 0.9)
	if len(res) != 0 {
		t.Fatalf("impossible threshold returned %d candidates", len(res))
	}
}

func TestAddAndReindex(t *testing.T) {
	c := makeCorpus(t, 100, 128, 6)
	x, err := Build(c.records[:50], Options{NumHash: 128, RMax: 4, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.records[50:] {
		if err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Reindex()
	if x.Len() != 100 {
		t.Fatalf("Len = %d, want 100", x.Len())
	}
	// Newly added domains must be retrievable.
	r := c.records[75]
	found := false
	for _, k := range mustQuery(t, x, r.Sig, r.Size, 0.9) {
		if k == r.Key {
			found = true
		}
	}
	if !found {
		t.Fatal("added record not retrievable after Reindex")
	}
}

func TestAddOutOfRangeSizeExtendsBoundary(t *testing.T) {
	h := minhash.NewHasher(64, 1)
	mk := func(key string, n int) Record {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = minhash.HashUint64(uint64(i))
		}
		return Record{Key: key, Size: n, Sig: h.Sketch(vals)}
	}
	x, err := Build([]Record{mk("a", 10), mk("b", 20), mk("c", 30)}, Options{NumHash: 64, RMax: 4, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Larger than any indexed size → last partition stretches.
	big := mk("huge", 1000)
	if err := x.Add(big); err != nil {
		t.Fatal(err)
	}
	// Smaller than any indexed size → first partition stretches.
	small := mk("tiny", 2)
	if err := x.Add(small); err != nil {
		t.Fatal(err)
	}
	x.Reindex()
	bounds := x.PartitionBounds()
	if bounds[len(bounds)-1].Upper < 1000 {
		t.Fatalf("last partition upper %d, want >= 1000", bounds[len(bounds)-1].Upper)
	}
	if bounds[0].Lower > 2 {
		t.Fatalf("first partition lower %d, want <= 2", bounds[0].Lower)
	}
	for _, r := range []Record{big, small} {
		found := false
		for _, k := range mustQuery(t, x, r.Sig, r.Size, 1.0) {
			if k == r.Key {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not retrievable", r.Key)
		}
	}
}

func TestQueryAfterAddReturnsErrDirty(t *testing.T) {
	c := makeCorpus(t, 10, 64, 7)
	x, err := Build(c.records[:9], Options{NumHash: 64, RMax: 4, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Add(c.records[9]); err != nil {
		t.Fatal(err)
	}
	sig, size := c.records[0].Sig, 10
	if _, err := x.Query(sig, size, 0.5); err != ErrDirty {
		t.Fatalf("Query on dirty index: err = %v, want ErrDirty", err)
	}
	if _, err := x.QueryIDs(sig, size, 0.5); err != ErrDirty {
		t.Fatalf("QueryIDs on dirty index: err = %v, want ErrDirty", err)
	}
	if _, err := x.QueryIDsAppend(nil, sig, size, 0.5); err != ErrDirty {
		t.Fatalf("QueryIDsAppend on dirty index: err = %v, want ErrDirty", err)
	}
	if _, err := x.QueryTopK(sig, size, 3); err != ErrDirty {
		t.Fatalf("QueryTopK on dirty index: err = %v, want ErrDirty", err)
	}
	if _, err := x.ParallelQueryIDs(sig, size, 0.5, 2); err != ErrDirty {
		t.Fatalf("ParallelQueryIDs on dirty index: err = %v, want ErrDirty", err)
	}
	batch := []BatchQuery{{Sig: sig, Size: size, Threshold: 0.5}}
	if _, err := x.QueryBatch(batch, 2); err != ErrDirty {
		t.Fatalf("QueryBatch on dirty index: err = %v, want ErrDirty", err)
	}
	var res BatchResults
	if err := x.QueryBatchInto(&res, batch, 2); err != ErrDirty {
		t.Fatalf("QueryBatchInto on dirty index: err = %v, want ErrDirty", err)
	}
	// Reindex clears the condition.
	x.Reindex()
	if _, err := x.Query(sig, size, 0.5); err != nil {
		t.Fatalf("Query after Reindex: %v", err)
	}
}

func TestQueryEdgeCases(t *testing.T) {
	c := makeCorpus(t, 50, 64, 8)
	x, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := x.QueryIDs(c.records[0].Sig, 0, 0.5); err != nil || got != nil {
		t.Fatalf("zero query size should return nil, nil (got %v, %v)", got, err)
	}
	// Threshold clamping must not panic.
	mustQuery(t, x, c.records[0].Sig, 10, -0.5)
	mustQuery(t, x, c.records[0].Sig, 10, 1.5)
}

func TestEstimatedQuerySize(t *testing.T) {
	// Algorithm 1 uses approx(|Q|) from the signature; verify querying with
	// the cardinality estimate retrieves the domain itself.
	c := makeCorpus(t, 200, 256, 9)
	x, err := Build(c.records, Options{NumHash: 256, RMax: 8, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for i := 0; i < 50; i++ {
		r := c.records[i*3%len(c.records)]
		est := int(r.Sig.Cardinality())
		if est < 1 {
			est = 1
		}
		found := false
		for _, k := range mustQuery(t, x, r.Sig, est, 0.8) {
			if k == r.Key {
				found = true
			}
		}
		if !found {
			misses++
		}
	}
	if misses > 2 {
		t.Fatalf("%d/50 self-misses with estimated query size", misses)
	}
}

func TestCustomPartitioner(t *testing.T) {
	c := makeCorpus(t, 300, 64, 10)
	for _, pf := range []PartitionerFunc{partition.EquiWidth, partition.Minimax} {
		x, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 8, Partitioner: pf})
		if err != nil {
			t.Fatal(err)
		}
		r := c.records[0]
		found := false
		for _, k := range mustQuery(t, x, r.Sig, r.Size, 1.0) {
			if k == r.Key {
				found = true
			}
		}
		if !found {
			t.Fatal("self-retrieval failed under custom partitioner")
		}
	}
}

func TestPartitionBoundsDisjoint(t *testing.T) {
	c := makeCorpus(t, 400, 64, 11)
	x, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	bounds := x.PartitionBounds()
	total := 0
	for i, b := range bounds {
		total += b.Count
		if i > 0 && bounds[i-1].Upper >= b.Lower {
			t.Fatalf("partitions %d and %d overlap", i-1, i)
		}
	}
	if total != x.Len() {
		t.Fatalf("partition counts sum %d != %d", total, x.Len())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	c := makeCorpus(t, 150, 64, 12)
	x, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := x.AppendBinary(nil)
	y, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if y.Len() != x.Len() || y.NumPartitions() != x.NumPartitions() {
		t.Fatal("shape mismatch after decode")
	}
	for qi := 0; qi < 20; qi++ {
		r := c.records[qi*7%len(c.records)]
		a := mustQuery(t, x, r.Sig, r.Size, 0.5)
		b := mustQuery(t, y, r.Sig, r.Size, 0.5)
		sort.Strings(a)
		sort.Strings(b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("query %d differs after round trip", qi)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := Decode([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	c := makeCorpus(t, 20, 64, 13)
	x, _ := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 2})
	buf := x.AppendBinary(nil)
	for _, cut := range []int{5, 21, len(buf) / 2, len(buf) - 3} {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func BenchmarkBuild1k(b *testing.B) {
	c := makeCorpus(b, 1000, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(c.records, Options{NumPartitions: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery1k(b *testing.B) {
	c := makeCorpus(b, 1000, 256, 1)
	x, err := Build(c.records, Options{NumPartitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.records[i%len(c.records)]
		mustQuery(b, x, r.Sig, r.Size, 0.5)
	}
}
