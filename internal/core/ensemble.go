// Package core implements the LSH Ensemble index — the paper's primary
// contribution (Section 5).
//
// Build partitions the domain records by cardinality (equi-depth by
// default, per Theorem 2), builds one dynamic MinHash LSH (lshforest) per
// partition, and answers containment queries by converting the containment
// threshold t* into a per-partition Jaccard threshold using the partition's
// upper size bound (Eq. 7 — conservative, so no new false negatives), then
// probing every partition with its own dynamically tuned (b, r)
// configuration (Eq. 26) and unioning the results
// (Partitioned-Containment-Search).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lshensemble/internal/dedup"
	"lshensemble/internal/lshforest"
	"lshensemble/internal/minhash"
	"lshensemble/internal/par"
	"lshensemble/internal/partition"
	"lshensemble/internal/tune"
)

// Record is one indexable domain: a caller-chosen key, the exact domain
// cardinality, and the MinHash signature of the domain's values.
type Record struct {
	Key  string
	Size int
	Sig  minhash.Signature
}

// PartitionerFunc produces size intervals for the ensemble. The sizes slice
// is the multiset of record cardinalities in arbitrary order.
type PartitionerFunc func(sizes []int, n int) []partition.Partition

// Options configures Build. Zero values select the defaults used in the
// paper's experiments (m = 256 hash functions, trees of depth 8,
// 16 partitions, equi-depth partitioning, parallel query).
type Options struct {
	// NumHash is the MinHash signature length m. Default 256.
	NumHash int
	// RMax is the tree depth of each partition's LSH forest; the tuner may
	// choose any r ≤ RMax and b ≤ NumHash/RMax. Default 8.
	RMax int
	// NumPartitions is the number of cardinality partitions n. Default 16.
	// With NumPartitions = 1 the ensemble degenerates into the paper's
	// "Baseline" (a single dynamically tuned MinHash LSH).
	NumPartitions int
	// Partitioner chooses the partitioning strategy. Default
	// partition.EquiDepth (optimal for power-law distributions).
	Partitioner PartitionerFunc
	// Sketch selects the stored signature representation (see SketchBackend).
	// The zero value is Minwise64, the paper's full-width configuration; the
	// b-bit backends trade estimation accuracy for a 8x/4x/2x smaller store.
	// Must be an indexable backend (KMV is evaluation-only).
	Sketch SketchBackend
	// Sequential is retained for configuration compatibility. The query
	// path now probes partitions sequentially with pooled, allocation-free
	// scratch in every mode (a goroutine per partition per query cost more
	// than the probes it parallelized); concurrency across queries is the
	// caller's, and remains safe.
	Sequential bool
}

func (o Options) withDefaults() Options {
	if o.NumHash == 0 {
		o.NumHash = 256
	}
	if o.RMax == 0 {
		o.RMax = 8
	}
	if o.NumPartitions == 0 {
		o.NumPartitions = 16
	}
	if o.Partitioner == nil {
		o.Partitioner = partition.EquiDepth
	}
	return o
}

// WithDefaults returns o with zero fields replaced by the paper's defaults
// (the same normalization Build applies). Layered indexes (internal/live)
// use it so every segment build sees identical effective options.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// Validate reports whether the (already defaulted) options are usable.
func (o Options) Validate() error { return o.validate() }

func (o Options) validate() error {
	if o.NumHash < 1 {
		return fmt.Errorf("core: NumHash %d < 1", o.NumHash)
	}
	if o.RMax < 1 || o.RMax > o.NumHash {
		return fmt.Errorf("core: RMax %d out of range [1, %d]", o.RMax, o.NumHash)
	}
	if o.NumPartitions < 1 {
		return fmt.Errorf("core: NumPartitions %d < 1", o.NumPartitions)
	}
	if !o.Sketch.Indexable() {
		return fmt.Errorf("core: sketch backend %s cannot back an index", o.Sketch)
	}
	return nil
}

// part is one cardinality partition with its dynamic LSH index.
type part struct {
	lower, upper int
	forest       *lshforest.Forest
}

// sigLoc locates an id's stored signature: the partition holding it and the
// insertion slot inside that partition's forest. Eight bytes per id replace
// the 24-byte slice headers (plus retained caller slices) the pre-backend
// design kept per id, and work for every store width — a narrow store has no
// []uint64 to view.
type sigLoc struct {
	part uint32
	slot uint32
}

// Index is a built LSH Ensemble. It is safe for concurrent queries.
type Index struct {
	opts  Options
	keys  []string
	sizes []int
	locs  []sigLoc // per id: which partition forest and slot stores its signature
	parts []part
	opt   *tune.Optimizer
	dirty bool

	// scratch pools *queryScratch values so steady-state queries allocate
	// nothing: dedup uses a generation-stamped visited array instead of a
	// fresh map, and result ids accumulate in a reused buffer.
	scratch sync.Pool

	// batch pools *batchState values (worker arenas + coordination state) so
	// steady-state QueryBatchInto calls allocate nothing either.
	batch sync.Pool
}

// queryScratch is the per-query working memory recycled through
// Index.scratch: a generation-stamped visited set for candidate dedup, a
// reusable result buffer, and the probe callback. The callback is allocated
// once per scratch (not per probe): it reaches the forests through the
// width-erased store interface, which defeats escape analysis, so a closure
// built inside probePartition would heap-allocate on every partition probe.
type queryScratch struct {
	seen dedup.Set
	ids  []uint32
	dst  []uint32          // collector target while a probe is running
	emit func(uint32) bool // persistent probe callback appending into dst
}

// acquireScratch fetches (or creates) a scratch sized for the current
// corpus and starts a fresh dedup generation.
func (x *Index) acquireScratch() *queryScratch {
	s, _ := x.scratch.Get().(*queryScratch)
	if s == nil {
		sc := &queryScratch{}
		sc.emit = func(id uint32) bool {
			if sc.seen.TryMark(id) {
				sc.dst = append(sc.dst, id)
			}
			return true
		}
		s = sc
	}
	s.seen.Reset(len(x.keys))
	return s
}

func (x *Index) releaseScratch(s *queryScratch) {
	x.scratch.Put(s)
}

// ErrEmpty is returned by Build when no records are given.
var ErrEmpty = errors.New("core: no records to index")

// ErrDirty is returned by every query entry point when the index holds Adds
// that Reindex has not folded in yet. Serving systems must treat it as a
// caller bug (query and Add/Reindex need external synchronization), but it
// is returned rather than panicking so a daemon thread can refuse the query
// and keep serving. The deeper invariant — probing an unindexed forest —
// still panics inside lshforest, as an internal consistency check.
var ErrDirty = errors.New("core: index has pending adds; call Reindex before querying")

// Build constructs the ensemble over the records. Every record signature
// must be at least opts.NumHash long and record sizes must be positive.
func Build(records []Record, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, ErrEmpty
	}
	sizes := make([]int, len(records))
	for i, r := range records {
		if r.Size <= 0 {
			return nil, fmt.Errorf("core: record %q has non-positive size %d", r.Key, r.Size)
		}
		if len(r.Sig) < opts.NumHash {
			return nil, fmt.Errorf("core: record %q signature length %d < NumHash %d",
				r.Key, len(r.Sig), opts.NumHash)
		}
		sizes[i] = r.Size
	}
	parts := opts.Partitioner(sizes, opts.NumPartitions)
	if err := partition.Validate(parts, sizes); err != nil {
		return nil, fmt.Errorf("core: partitioner produced invalid partitions: %w", err)
	}
	idx := &Index{
		opts:  opts,
		keys:  make([]string, 0, len(records)),
		sizes: make([]int, 0, len(records)),
		locs:  make([]sigLoc, 0, len(records)),
		parts: make([]part, len(parts)),
		opt:   tune.NewOptimizer(opts.NumHash/opts.RMax, opts.RMax),
	}
	for i, p := range parts {
		idx.parts[i] = part{
			lower:  p.Lower,
			upper:  p.Upper,
			forest: lshforest.NewWidth(opts.NumHash, opts.RMax, opts.Sketch.WidthBytes()),
		}
	}
	// Route every record first (serial — a binary search per record, and
	// boundary partitions may stretch), grouping member record indices per
	// partition. The expensive part, copying every signature into its
	// partition's contiguous store, then runs in parallel: partitions own
	// disjoint forests, and Reserve sizes each backing array exactly once
	// from the known member count.
	members := make([][]int32, len(parts))
	for _, r := range records {
		id := uint32(len(idx.keys))
		idx.keys = append(idx.keys, r.Key)
		idx.sizes = append(idx.sizes, r.Size)
		pi := idx.routeIdx(r.Size)
		idx.locs = append(idx.locs, sigLoc{part: uint32(pi), slot: uint32(len(members[pi]))})
		members[pi] = append(members[pi], int32(id))
	}
	idx.dirty = true
	par.Drain(len(parts), 0, func(_, pi int) {
		idx.fillPartition(pi, members[pi], records)
	})
	idx.Reindex()
	return idx, nil
}

// fillPartition copies the signatures of the partition's members into its
// forest, pre-sizing the contiguous store from the known member count.
func (x *Index) fillPartition(pi int, members []int32, records []Record) {
	f := x.parts[pi].forest
	f.Reserve(len(members))
	for _, id := range members {
		f.Add(uint32(id), records[id].Sig)
	}
}

// add routes a record to its partition without reindexing.
func (x *Index) add(r Record) {
	id := uint32(len(x.keys))
	x.keys = append(x.keys, r.Key)
	x.sizes = append(x.sizes, r.Size)
	pi := x.routeIdx(r.Size)
	x.locs = append(x.locs, sigLoc{part: uint32(pi), slot: uint32(x.parts[pi].forest.Len())})
	x.parts[pi].forest.Add(id, r.Sig)
	x.dirty = true
}

// routeIdx finds the partition responsible for a domain of the given size.
// Sizes beyond the last upper bound extend the last partition (its upper
// bound grows, keeping the conversion conservative).
func (x *Index) routeIdx(size int) int {
	i := sort.Search(len(x.parts), func(i int) bool { return size <= x.parts[i].upper })
	if i == len(x.parts) {
		i = len(x.parts) - 1
		x.parts[i].upper = size
		return i
	}
	if size < x.parts[i].lower {
		x.parts[i].lower = size
	}
	return i
}

// Add inserts a new domain into the ensemble after Build — the dynamic-data
// path of Section 6.2. The record joins the partition covering its size
// (the boundary intervals stretch if needed; the partitioning is NOT
// re-optimized — see examples/dynamic for drift monitoring). Call Reindex
// before the next Query.
func (x *Index) Add(r Record) error {
	if r.Size <= 0 {
		return fmt.Errorf("core: non-positive size %d", r.Size)
	}
	if len(r.Sig) < x.opts.NumHash {
		return fmt.Errorf("core: signature length %d < NumHash %d", len(r.Sig), x.opts.NumHash)
	}
	x.add(r)
	return nil
}

// Reindex rebuilds the partition forests after Add calls. The rebuild is
// flattened into one job per (partition, tree) pair and fanned out over a
// bounded worker pool, so a handful of oversized partitions cannot serialize
// the tail the way partition-at-a-time parallelism would. It is a no-op
// when nothing changed.
func (x *Index) Reindex() {
	if !x.dirty {
		return
	}
	type treeJob struct {
		f *lshforest.Forest
		t int
	}
	var jobs []treeJob
	var pending []*lshforest.Forest
	for i := range x.parts {
		f := x.parts[i].forest
		if f.Indexed() {
			continue
		}
		n := f.PrepareTrees() // finalizes empty forests itself
		if n == 0 {
			continue
		}
		pending = append(pending, f)
		for t := 0; t < n; t++ {
			jobs = append(jobs, treeJob{f: f, t: t})
		}
	}
	if len(jobs) > 0 {
		workers := par.Clamp(0, len(jobs))
		scratches := make([]lshforest.SortScratch, workers)
		par.Drain(len(jobs), workers, func(w, i int) {
			jobs[i].f.RebuildTree(jobs[i].t, &scratches[w])
		})
	}
	for _, f := range pending {
		f.FinishTrees()
	}
	x.dirty = false
}

// Len returns the number of indexed domains.
func (x *Index) Len() int { return len(x.keys) }

// NumPartitions returns the number of partitions actually built (may be
// fewer than requested when there are few distinct sizes).
func (x *Index) NumPartitions() int { return len(x.parts) }

// Options returns the effective build options.
func (x *Index) Options() Options { return x.opts }

// Key returns the key of the domain with the given internal id.
func (x *Index) Key(id uint32) string { return x.keys[id] }

// Size returns the exact cardinality of the domain with the given id.
func (x *Index) Size(id uint32) int { return x.sizes[id] }

// Sketch returns the backend the index stores signatures with.
func (x *Index) Sketch() SketchBackend { return x.opts.Sketch }

// Signature returns the stored signature of the domain with the given id as
// a freshly allocated full-width slice: the original hash values under
// Minwise64, the stored truncations (zero-extended) under a b-bit backend —
// truncation is idempotent, so re-indexing the returned slice under the same
// backend is lossless. Layered indexes (internal/live) use it to carry
// records into a merged segment without re-sketching.
func (x *Index) Signature(id uint32) minhash.Signature {
	l := x.locs[id]
	return x.parts[l.part].forest.AppendSigWidened(make([]uint64, 0, x.opts.NumHash), int(l.slot))
}

// SigMatches returns the number of signature slots where the stored domain
// agrees with the query signature under the backend's truncation — the
// allocation-free agreement count EstContainment converts into a score. sig
// must be at least NumHash long (extra slots are ignored).
func (x *Index) SigMatches(id uint32, sig minhash.Signature) int {
	l := x.locs[id]
	return x.parts[l.part].forest.MatchCount(int(l.slot), sig)
}

// EstContainment estimates the containment of the query domain (signature
// sig, cardinality querySize) in the stored domain id, through the backend's
// bias-corrected Jaccard estimate and the paper's Eq. 6 conversion. Under
// Minwise64 the result is float-identical to
// sig.Containment(storedSig, querySize, Size(id)).
func (x *Index) EstContainment(id uint32, sig minhash.Signature, querySize int) float64 {
	eq := x.SigMatches(id, sig)
	return x.opts.Sketch.ContainmentFromMatch(eq, x.opts.NumHash, float64(querySize), float64(x.sizes[id]))
}

// SignatureBytes returns the total byte size of the stored signature data —
// Len() × NumHash × the backend's per-slot width. This is the quantity the
// compact sketch backends shrink, reported by /stats and the experiments.
func (x *Index) SignatureBytes() int {
	n := 0
	for i := range x.parts {
		n += x.parts[i].forest.StoreLenBytes()
	}
	return n
}

// PartitionBounds returns the (lower, upper, count) of each partition, for
// inspection and experiments.
func (x *Index) PartitionBounds() []partition.Partition {
	out := make([]partition.Partition, len(x.parts))
	for i, p := range x.parts {
		out[i] = partition.Partition{Lower: p.lower, Upper: p.upper, Count: p.forest.Len()}
	}
	return out
}

// QueryIDs runs Partitioned-Containment-Search and returns the internal
// ids of all candidate domains: those whose signature collides with the
// query under each partition's tuned (b, r). querySize is |Q| (use the
// exact size when known, or minhash.Signature.Cardinality's estimate —
// Algorithm 1's approx(|Q|)). tStar is the containment threshold t*.
// It returns ErrDirty if the index has Adds not yet folded in by Reindex.
func (x *Index) QueryIDs(sig minhash.Signature, querySize int, tStar float64) ([]uint32, error) {
	return x.QueryIDsAppend(nil, sig, querySize, tStar)
}

// QueryIDsAppend is QueryIDs appending into dst (which may be nil). Reusing
// dst across queries makes the steady-state query path allocation-free.
func (x *Index) QueryIDsAppend(dst []uint32, sig minhash.Signature, querySize int, tStar float64) ([]uint32, error) {
	if x.dirty {
		return dst, ErrDirty
	}
	if querySize <= 0 || len(x.keys) == 0 {
		return dst, nil
	}
	s := x.acquireScratch()
	dst = x.queryInto(dst, s, sig, querySize, tStar)
	x.releaseScratch(s)
	return dst, nil
}

// clampThreshold confines t* to [0, 1].
func clampThreshold(tStar float64) float64 {
	if tStar < 0 {
		return 0
	}
	if tStar > 1 {
		return 1
	}
	return tStar
}

// queryInto probes every partition sequentially, deduplicating against the
// scratch's generation-stamped visited array, and appends candidate ids to
// dst. Partitions are disjoint by construction, so the dedup only ever
// collapses the multiple trees of a single forest reporting the same id.
func (x *Index) queryInto(dst []uint32, s *queryScratch, sig minhash.Signature, querySize int, tStar float64) []uint32 {
	tStar = clampThreshold(tStar)
	for i := range x.parts {
		dst = x.queryPartition(dst, s, i, sig, querySize, tStar)
	}
	return dst
}

// partitionParams resolves the banding decision for one partition: the
// tuned (b, r) the probe will use, or ok = false when the partition is
// skipped (empty, or no domain in it can reach the threshold — containment
// is at most x/q ≤ u/q). tStar must already be clamped to [0, 1].
func (x *Index) partitionParams(pi int, querySize int, tStar float64) (tune.Params, bool) {
	p := &x.parts[pi]
	if p.forest.Len() == 0 {
		return tune.Params{}, false
	}
	q := float64(querySize)
	u := float64(p.upper)
	if tStar > 0 && u/q < tStar {
		return tune.Params{}, false
	}
	return x.opt.Optimize(u, q, tStar), true
}

// probePartition probes one partition with the given banding parameters and
// appends candidate ids to dst. Because partitions hold disjoint id sets,
// distinct partitions of the same query may be probed by different workers
// (each with its own scratch) without any cross-worker dedup — the visited
// array only collapses the multiple trees of one forest reporting the same
// id.
func (x *Index) probePartition(dst []uint32, s *queryScratch, pi int, sig minhash.Signature, params tune.Params) []uint32 {
	s.dst = dst
	x.parts[pi].forest.Query(sig, params.B, params.R, s.emit)
	dst = s.dst
	s.dst = nil
	return dst
}

// queryPartition probes one partition with the query's tuned (b, r) and
// appends candidate ids to dst. tStar must already be clamped to [0, 1].
func (x *Index) queryPartition(dst []uint32, s *queryScratch, pi int, sig minhash.Signature, querySize int, tStar float64) []uint32 {
	params, ok := x.partitionParams(pi, querySize, tStar)
	if !ok {
		return dst
	}
	return x.probePartition(dst, s, pi, sig, params)
}

// PlanPartitions appends one tune.Params per partition to dst: the exact
// banding decision the direct query path would make for (querySize, tStar),
// with the zero Params (B == 0) marking partitions the path skips. The
// tuner is consulted in one batch, so building a plan takes its cache locks
// once instead of once per partition. A plan depends only on (querySize,
// tStar) and the immutable partition bounds, which is what lets layered
// planners (internal/live) cache plans across queries and replay them with
// QueryIDsPlannedAppend for results byte-identical to QueryIDsAppend.
func (x *Index) PlanPartitions(dst []tune.Params, querySize int, tStar float64) []tune.Params {
	tStar = clampThreshold(tStar)
	base := len(dst)
	q := float64(querySize)
	var us []float64
	var live []int
	for pi := range x.parts {
		dst = append(dst, tune.Params{})
		p := &x.parts[pi]
		if p.forest.Len() == 0 {
			continue
		}
		u := float64(p.upper)
		if tStar > 0 && u/q < tStar {
			continue
		}
		us = append(us, u)
		live = append(live, base+pi)
	}
	if len(us) > 0 {
		params := make([]tune.Params, len(us))
		x.opt.OptimizeBatch(us, q, tStar, params)
		for i, di := range live {
			dst[di] = params[i]
		}
	}
	return dst
}

// QueryIDsPlannedAppend is QueryIDsAppend with the per-partition banding
// decisions precomputed by PlanPartitions on this same index: partitions
// whose plan entry is the zero Params are skipped, the rest are probed with
// the planned (b, r). Given a plan built for (querySize, tStar), the
// appended ids are byte-identical to QueryIDsAppend(dst, sig, querySize,
// tStar). The plan must have exactly one entry per partition.
func (x *Index) QueryIDsPlannedAppend(dst []uint32, sig minhash.Signature, plan []tune.Params) ([]uint32, error) {
	if x.dirty {
		return dst, ErrDirty
	}
	if len(plan) != len(x.parts) {
		return dst, fmt.Errorf("core: plan covers %d partitions, index has %d", len(plan), len(x.parts))
	}
	if len(x.keys) == 0 {
		return dst, nil
	}
	s := x.acquireScratch()
	for pi, p := range plan {
		if p.B == 0 {
			continue
		}
		dst = x.probePartition(dst, s, pi, sig, p)
	}
	x.releaseScratch(s)
	return dst, nil
}

// EachTreeLeading invokes fn once per non-empty (partition, tree) pair with
// the tree's sorted column of leading hash values — a view that must not be
// mutated. Any probe of that tree at any depth r ≥ 1 matches an entry only
// if the query's leading value occurs in the column, so segment-level
// planners (internal/live) build their collision Bloom filters from exactly
// these columns.
func (x *Index) EachTreeLeading(fn func(tree int, col []uint64)) {
	for i := range x.parts {
		f := x.parts[i].forest
		if f.Len() == 0 {
			continue
		}
		for t := 0; t < f.BMax(); t++ {
			if col := f.TreeLeadingColumn(t); len(col) > 0 {
				fn(t, col)
			}
		}
	}
}

// Query returns the keys of all candidate domains for the query signature.
// See QueryIDs for parameter semantics.
func (x *Index) Query(sig minhash.Signature, querySize int, tStar float64) ([]string, error) {
	if x.dirty {
		return nil, ErrDirty
	}
	if querySize <= 0 || len(x.keys) == 0 {
		return nil, nil
	}
	s := x.acquireScratch()
	s.ids = x.queryInto(s.ids[:0], s, sig, querySize, tStar)
	out := make([]string, len(s.ids))
	for i, id := range s.ids {
		out[i] = x.keys[id]
	}
	x.releaseScratch(s)
	return out, nil
}

// --- serialization ---

// Index encodings:
//
//	"LSHE" (Minwise64, unchanged since PR 1 — golden-bytes compatible):
//	  magic | numHash | rMax | numPartitions | nKeys | keys | parts
//	"LSE2" (any backend): magic | backendTag u32 | same layout
var (
	indexMagic   = [4]byte{'L', 'S', 'H', 'E'}
	indexMagicV2 = [4]byte{'L', 'S', 'E', '2'}
)

// ErrCorrupt reports a malformed index encoding.
var ErrCorrupt = errors.New("core: corrupt index encoding")

// AppendBinary appends the index's binary encoding to buf. The tuning cache
// is not persisted (it is rebuilt lazily at query time). A Minwise64 index
// emits the legacy "LSHE" encoding byte-identically; other backends emit
// "LSE2" with an explicit backend tag.
func (x *Index) AppendBinary(buf []byte) []byte {
	if x.opts.Sketch == Minwise64 {
		buf = append(buf, indexMagic[:]...)
	} else {
		buf = append(buf, indexMagicV2[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, x.opts.Sketch.Tag())
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.NumHash))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.RMax))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.NumPartitions))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.keys)))
	for i, k := range x.keys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x.sizes[i]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.parts)))
	for i := range x.parts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x.parts[i].lower))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x.parts[i].upper))
		buf = x.parts[i].forest.AppendBinary(buf)
	}
	return buf
}

// Decode reconstructs an index from buf (produced by AppendBinary) and
// returns any trailing bytes.
func Decode(buf []byte) (*Index, []byte, error) {
	if len(buf) < 4 {
		return nil, buf, ErrCorrupt
	}
	sketch := Minwise64
	switch [4]byte(buf[:4]) {
	case indexMagic:
		buf = buf[4:]
	case indexMagicV2:
		if len(buf) < 8 {
			return nil, buf, ErrCorrupt
		}
		sb, ok := SketchBackendFromTag(binary.LittleEndian.Uint32(buf[4:]))
		if !ok || !sb.Indexable() {
			return nil, buf, ErrCorrupt
		}
		sketch = sb
		buf = buf[8:]
	default:
		return nil, buf, ErrCorrupt
	}
	if len(buf) < 16 {
		return nil, buf, ErrCorrupt
	}
	numHash := int(binary.LittleEndian.Uint32(buf))
	rMax := int(binary.LittleEndian.Uint32(buf[4:]))
	nParts := int(binary.LittleEndian.Uint32(buf[8:]))
	nKeys := int(binary.LittleEndian.Uint32(buf[12:]))
	buf = buf[16:]
	opts := Options{NumHash: numHash, RMax: rMax, NumPartitions: nParts, Sketch: sketch}.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, buf, ErrCorrupt
	}
	x := &Index{
		opts: opts,
		opt:  tune.NewOptimizer(opts.NumHash/opts.RMax, opts.RMax),
	}
	for i := 0; i < nKeys; i++ {
		if len(buf) < 4 {
			return nil, buf, ErrCorrupt
		}
		kl := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < kl+8 {
			return nil, buf, ErrCorrupt
		}
		x.keys = append(x.keys, string(buf[:kl]))
		buf = buf[kl:]
		// Build rejects non-positive sizes, so no encoder emits them; a
		// decoded one would poison downstream consumers (the live planner's
		// metadata requires minSize ≥ 1).
		sz := int(binary.LittleEndian.Uint64(buf))
		if sz <= 0 {
			return nil, buf, ErrCorrupt
		}
		x.sizes = append(x.sizes, sz)
		buf = buf[8:]
	}
	if len(buf) < 4 {
		return nil, buf, ErrCorrupt
	}
	np := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	for i := 0; i < np; i++ {
		if len(buf) < 16 {
			return nil, buf, ErrCorrupt
		}
		lower := int(binary.LittleEndian.Uint64(buf))
		upper := int(binary.LittleEndian.Uint64(buf[8:]))
		buf = buf[16:]
		f, rest, err := lshforest.DecodeForest(buf)
		if err != nil {
			return nil, rest, err
		}
		if f.NumHash() != opts.NumHash || f.RMax() != opts.RMax {
			// A forest disagreeing with the index header would panic at
			// query time (tuned (b, r) out of its range) and yield
			// wrong-length signatures; reject it as corruption here.
			return nil, rest, fmt.Errorf("core: partition forest shape (%d, %d) != index header (%d, %d): %w",
				f.NumHash(), f.RMax(), opts.NumHash, opts.RMax, ErrCorrupt)
		}
		if f.Width() != opts.Sketch.WidthBytes() {
			return nil, rest, fmt.Errorf("core: partition forest width %d != sketch backend %s width %d: %w",
				f.Width(), opts.Sketch, opts.Sketch.WidthBytes(), ErrCorrupt)
		}
		buf = rest
		x.parts = append(x.parts, part{lower: lower, upper: upper, forest: f})
	}
	// Rebuild the id → (partition, slot) table from the forests (each id
	// lives in exactly one partition). Ids must stay within [0, len(keys)):
	// the query path indexes its visited array by id, so out-of-range ids in
	// a decoded forest are corruption, not something to skip silently.
	if err := x.rebuildLocs(); err != nil {
		return nil, buf, err
	}
	// Build guarantees ordered, non-overlapping partitions that cover every
	// record's size (partition.Validate); the query planner and downstream
	// consumers (the live planner's maxBound metadata) rely on it, so a
	// decoded index must satisfy the same invariant.
	for i := range x.parts {
		p := &x.parts[i]
		if p.lower > p.upper || (i > 0 && x.parts[i-1].upper >= p.lower) {
			return nil, buf, fmt.Errorf("core: partition %d bounds [%d, %d] out of order: %w",
				i, p.lower, p.upper, ErrCorrupt)
		}
	}
	for id, loc := range x.locs {
		p := &x.parts[loc.part]
		if s := x.sizes[id]; s < p.lower || s > p.upper {
			return nil, buf, fmt.Errorf("core: record %d size %d outside partition bounds [%d, %d]: %w",
				id, s, p.lower, p.upper, ErrCorrupt)
		}
	}
	return x, buf, nil
}

// rebuildLocs reconstructs the id → (partition, slot) table from the
// partition forests' insertion-order id lists, rejecting out-of-range,
// repeated or missing ids.
func (x *Index) rebuildLocs() error {
	const noPart = ^uint32(0)
	x.locs = make([]sigLoc, len(x.keys))
	for i := range x.locs {
		x.locs[i].part = noPart
	}
	for pi := range x.parts {
		for slot, id := range x.parts[pi].forest.IDs() {
			if int(id) >= len(x.locs) {
				return fmt.Errorf("core: forest contains out-of-range id %d: %w", id, ErrCorrupt)
			}
			if x.locs[id].part != noPart {
				return fmt.Errorf("core: forest entry id %d repeats: %w", id, ErrCorrupt)
			}
			x.locs[id] = sigLoc{part: uint32(pi), slot: uint32(slot)}
		}
	}
	for i := range x.locs {
		if x.locs[i].part == noPart {
			return fmt.Errorf("core: index missing signature for id %d: %w", i, ErrCorrupt)
		}
	}
	return nil
}
