package core

import (
	"fmt"

	"lshensemble/internal/lshforest"
	"lshensemble/internal/tune"
)

// This file is the out-of-core seam of the ensemble: EachPart exposes the
// built per-partition state so a segment-file writer (internal/live) can
// persist it, and FromParts reassembles a queryable Index from persisted
// partitions — typically lshforest views over a memory-mapped segment file.

// PartView is one partition of an index in the form EachPart yields and
// FromParts consumes: the partition's upper size bound interval and its
// forest.
type PartView struct {
	Lower, Upper int
	Forest       *lshforest.Forest
}

// EachPart invokes fn for every partition in order with its size bounds and
// forest. The forests are the index's own — callers must treat them as
// read-only.
func (x *Index) EachPart(fn func(pi int, pv PartView)) {
	for i := range x.parts {
		fn(i, PartView{Lower: x.parts[i].lower, Upper: x.parts[i].upper, Forest: x.parts[i].forest})
	}
}

// FromParts reassembles an Index from previously built partitions. keys and
// sizes are indexed by record id; every id in [0, len(keys)) must appear in
// exactly one forest, each forest must already be indexed with the matching
// signature shape, and sizes must be positive. The forests may be read-only
// views over mapped segment files: nothing here reads signature store
// contents (the per-id signature views are built by slicing the stores, and
// slicing faults no data pages), so a lazily mapped segment stays on disk
// until the first probe.
func FromParts(opts Options, keys []string, sizes []int, views []PartView) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, ErrEmpty
	}
	if len(sizes) != len(keys) {
		return nil, fmt.Errorf("core: %d sizes for %d keys", len(sizes), len(keys))
	}
	if len(views) == 0 {
		return nil, fmt.Errorf("core: no partitions")
	}
	for i, sz := range sizes {
		if sz <= 0 {
			return nil, fmt.Errorf("core: record %q has non-positive size %d", keys[i], sz)
		}
	}
	x := &Index{
		opts:  opts,
		keys:  keys,
		sizes: sizes,
		parts: make([]part, len(views)),
		opt:   tune.NewOptimizer(opts.NumHash/opts.RMax, opts.RMax),
	}
	total := 0
	for i, v := range views {
		f := v.Forest
		if f == nil {
			return nil, fmt.Errorf("core: partition %d has no forest", i)
		}
		if f.NumHash() != opts.NumHash || f.RMax() != opts.RMax {
			return nil, fmt.Errorf("core: partition %d forest shape (%d,%d) != options (%d,%d)",
				i, f.NumHash(), f.RMax(), opts.NumHash, opts.RMax)
		}
		if f.Width() != opts.Sketch.WidthBytes() {
			return nil, fmt.Errorf("core: partition %d forest width %d != sketch backend %s width %d",
				i, f.Width(), opts.Sketch, opts.Sketch.WidthBytes())
		}
		if !f.Indexed() {
			return nil, fmt.Errorf("core: partition %d forest is not indexed", i)
		}
		x.parts[i] = part{lower: v.Lower, upper: v.Upper, forest: f}
		total += f.Len()
	}
	if total != len(keys) {
		return nil, fmt.Errorf("core: partitions hold %d entries for %d keys", total, len(keys))
	}
	if err := x.rebuildLocs(); err != nil {
		return nil, fmt.Errorf("core: partition entry ids exceed the key space, repeat or are missing: %w", err)
	}
	return x, nil
}
