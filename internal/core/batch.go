package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"lshensemble/internal/minhash"
	"lshensemble/internal/par"
)

// This file implements the high-throughput batch query engine. A batch of
// queries is dispatched over a bounded worker pool: each worker owns a
// pooled generation-stamped queryScratch (no cross-worker contention) and an
// append-only result arena, and the per-worker arenas are merged into the
// caller's BatchResults at the end. Steady-state batch serving through
// QueryBatchInto performs zero per-query allocations: worker state is
// recycled through a sync.Pool and the destination arena is reused.
//
// For large ensembles at low traffic — when a batch cannot fill the cores —
// ParallelQueryIDs instead splits the partitions of a single query across
// workers (intra-query parallelism). Partitions hold disjoint id sets, so
// per-worker dedup scratch is sufficient and the merge is a concatenation.

// BatchQuery is one containment query of a batch: the query signature, the
// (exact or estimated) query cardinality |Q|, and the containment threshold
// t*.
type BatchQuery struct {
	Sig       minhash.Signature
	Size      int
	Threshold float64
}

// BatchResults receives the candidate ids of a query batch. Row i holds the
// ids matching queries[i], in the probe order of the worker that served it.
// All rows are views into one reusable arena: they remain valid until the
// BatchResults value is passed to QueryBatchInto again.
type BatchResults struct {
	ids  []uint32
	offs []int // row i spans ids[offs[i]:offs[i+1]]; len(offs) = numQueries+1
}

// NumRows returns the number of queries answered into r.
func (r *BatchResults) NumRows() int {
	if len(r.offs) == 0 {
		return 0
	}
	return len(r.offs) - 1
}

// Row returns the candidate ids of query i. The slice is a view into the
// results arena; it must not be appended to and is invalidated by the next
// QueryBatchInto reusing r.
func (r *BatchResults) Row(i int) []uint32 {
	return r.ids[r.offs[i]:r.offs[i+1]:r.offs[i+1]]
}

// reset prepares r for n queries, reusing its arena and offset table.
func (r *BatchResults) reset(n int) {
	if cap(r.offs) < n+1 {
		r.offs = make([]int, n+1)
	}
	r.offs = r.offs[:n+1]
	for i := range r.offs {
		r.offs[i] = 0
	}
	r.ids = r.ids[:0]
}

// batchRow records where one query's results landed in a worker's arena.
type batchRow struct {
	query      int
	start, end int
}

// batchWorker is the per-worker state of one batch dispatch: an append-only
// id arena and the row directory locating each served query inside it.
type batchWorker struct {
	ids  []uint32
	rows []batchRow
}

// batchState is the recycled coordination state of a batch dispatch. It is
// pooled on the Index so steady-state batches allocate nothing: the worker
// slice, worker arenas, and row directories all persist across calls.
//
// The dispatch deliberately does NOT go through par.Drain: Drain's closure
// capture and per-call WaitGroup would allocate on every dispatch, while
// spawning the pooled state's bound method (go st.run(w)) keeps the whole
// dispatch at a fixed few goroutine-spawn allocations regardless of batch
// size — the property BenchmarkQueryBatchThroughput and
// TestQueryBatchSteadyStateAllocs pin down.
type batchState struct {
	x       *Index
	ctx     context.Context
	queries []BatchQuery
	next    atomic.Int64
	wg      sync.WaitGroup
	workers []*batchWorker
}

// run serves queries from the shared counter until the batch is drained,
// writing results into this worker's private arena.
func (st *batchState) run(w int) {
	defer st.wg.Done()
	st.serve(w)
}

func (st *batchState) serve(w int) {
	x := st.x
	ctx := st.ctx
	bw := st.workers[w]
	bw.ids = bw.ids[:0]
	bw.rows = bw.rows[:0]
	s := x.acquireScratch()
	for {
		// One cancellation check per pulled query: a canceled batch stops
		// after at most one in-flight query per worker, without any
		// per-probe overhead on the uncanceled path.
		if ctx.Err() != nil {
			break
		}
		qi := int(st.next.Add(1)) - 1
		if qi >= len(st.queries) {
			break
		}
		q := &st.queries[qi]
		start := len(bw.ids)
		if q.Size > 0 {
			s.seen.Reset(len(x.keys)) // fresh dedup generation per query
			bw.ids = x.queryInto(bw.ids, s, q.Sig, q.Size, q.Threshold)
		}
		bw.rows = append(bw.rows, batchRow{query: qi, start: start, end: len(bw.ids)})
	}
	x.releaseScratch(s)
}

// QueryBatchInto answers every query of the batch, fanning queries across up
// to `workers` goroutines (0 means GOMAXPROCS), and stores all candidate ids
// into res — reusing its arena, so a serving loop that recycles one
// BatchResults performs zero steady-state allocations per query. Queries are
// pulled from a shared counter, so stragglers (queries with huge candidate
// sets) do not leave other workers idle. It returns ErrDirty if the index
// has pending Adds (call Reindex first); it must not run concurrently with
// Add/Reindex, exactly like every other query entry point.
func (x *Index) QueryBatchInto(res *BatchResults, queries []BatchQuery, workers int) error {
	return x.QueryBatchIntoContext(context.Background(), res, queries, workers)
}

// QueryBatchIntoContext is QueryBatchInto under a context: every worker
// checks ctx once per pulled query, so canceling the context (a disconnected
// client, an expired per-shard deadline) stops the remaining batch work
// after at most one in-flight query per worker instead of burning CPU to
// completion. When ctx is canceled it returns ctx.Err(); res then holds the
// rows completed before cancellation (unserved queries get empty rows) and
// must not be interpreted as a full answer.
func (x *Index) QueryBatchIntoContext(ctx context.Context, res *BatchResults, queries []BatchQuery, workers int) error {
	if x.dirty {
		return ErrDirty
	}
	if err := ctx.Err(); err != nil {
		res.reset(len(queries))
		return err
	}
	res.reset(len(queries))
	if len(queries) == 0 || len(x.keys) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	st, _ := x.batch.Get().(*batchState)
	if st == nil {
		st = &batchState{}
	}
	st.x = x
	st.ctx = ctx
	st.queries = queries
	st.next.Store(0)
	for len(st.workers) < workers {
		st.workers = append(st.workers, &batchWorker{})
	}
	if workers == 1 {
		// Degenerate pool: serve inline, no goroutine round-trip.
		st.wg.Add(1)
		st.run(0)
	} else {
		st.wg.Add(workers)
		for w := 1; w < workers; w++ {
			go st.run(w)
		}
		st.serve(0) // the caller's goroutine is worker 0
		st.wg.Done()
		st.wg.Wait()
	}
	// Merge: size each row from the workers' directories, prefix-sum into
	// offsets, then copy every worker row into its final, query-ordered slot.
	offs := res.offs
	total := 0
	for w := 0; w < workers; w++ {
		for _, row := range st.workers[w].rows {
			offs[row.query+1] = row.end - row.start
			total += row.end - row.start
		}
	}
	for i := 1; i < len(offs); i++ {
		offs[i] += offs[i-1]
	}
	if cap(res.ids) < total {
		res.ids = make([]uint32, total)
	}
	res.ids = res.ids[:total]
	for w := 0; w < workers; w++ {
		bw := st.workers[w]
		for _, row := range bw.rows {
			copy(res.ids[offs[row.query]:offs[row.query+1]], bw.ids[row.start:row.end])
		}
	}
	st.x = nil
	st.ctx = nil
	st.queries = nil
	x.batch.Put(st)
	return ctx.Err()
}

// QueryBatch answers every query of the batch with up to `workers`
// goroutines (0 means GOMAXPROCS) and returns one id slice per query, in
// query order. The rows share one freshly allocated arena. Serving loops
// that care about allocation should use QueryBatchInto with a reused
// BatchResults instead.
func (x *Index) QueryBatch(queries []BatchQuery, workers int) ([][]uint32, error) {
	return x.QueryBatchContext(context.Background(), queries, workers)
}

// QueryBatchContext is QueryBatch under a context — see
// QueryBatchIntoContext for the cancellation semantics. On cancellation it
// returns (nil, ctx.Err()).
func (x *Index) QueryBatchContext(ctx context.Context, queries []BatchQuery, workers int) ([][]uint32, error) {
	var res BatchResults
	if err := x.QueryBatchIntoContext(ctx, &res, queries, workers); err != nil {
		return nil, err
	}
	out := make([][]uint32, len(queries))
	for i := range out {
		out[i] = res.Row(i)
	}
	return out, nil
}

// ParallelQueryIDs is QueryIDs with the partition probes of one query split
// across up to `workers` goroutines (0 means GOMAXPROCS) — intra-query
// parallelism. Each worker pulls whole partitions from a shared counter and
// probes them with its own pooled scratch; the per-worker result runs are
// concatenated (partitions are disjoint, so no cross-worker dedup is
// needed). The result order is unspecified.
//
// This mode wins when a single query dominates the latency budget — a large
// ensemble (many partitions) with non-trivial candidate sets — and the
// query stream is too thin for QueryBatch to fill the cores. For batched
// traffic, QueryBatch parallelizes across queries with far less
// coordination overhead per probe.
func (x *Index) ParallelQueryIDs(sig minhash.Signature, querySize int, tStar float64, workers int) ([]uint32, error) {
	if x.dirty {
		return nil, ErrDirty
	}
	if querySize <= 0 || len(x.keys) == 0 {
		return nil, nil
	}
	workers = par.Clamp(workers, len(x.parts))
	if workers <= 1 {
		return x.QueryIDs(sig, querySize, tStar)
	}
	tStar = clampThreshold(tStar)
	scratches := make([]*queryScratch, workers)
	par.Drain(len(x.parts), workers, func(w, pi int) {
		s := scratches[w]
		if s == nil {
			s = x.acquireScratch()
			s.ids = s.ids[:0]
			scratches[w] = s
		}
		s.ids = x.queryPartition(s.ids, s, pi, sig, querySize, tStar)
	})
	total := 0
	for _, s := range scratches {
		if s != nil {
			total += len(s.ids)
		}
	}
	out := make([]uint32, 0, total)
	for _, s := range scratches {
		if s != nil {
			out = append(out, s.ids...)
			x.releaseScratch(s)
		}
	}
	return out, nil
}
