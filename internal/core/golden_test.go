package core

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"lshensemble/internal/lshforest"
	"lshensemble/internal/minhash"
)

// ensembleGoldenHex is the AppendBinary output of the pre-flattening
// implementation (per-entry signature slices inside each forest, map-based
// query dedup) over the deterministic corpus built by goldenEnsemble. The
// wire format is layout-independent; the flat-store implementation must
// decode these bytes and re-encode them byte-identically.
const ensembleGoldenHex = "4c5348451000000004000000030000000800000002000000643004000000000000000200000064310800000000000000" +
	"0200000064320c0000000000000002000000643310000000000000000200000064341400000000000000020000006435" +
	"18000000000000000200000064361c000000000000000200000064372000000000000000030000000400000000000000" +
	"0c000000000000004c53484610000000040000000300000000000000477a794bc203cb067becd3532e5ce50330ab3131" +
	"3047ce09614d20c56cd363145cce9080fac4c4008ca2d537cb78d206df2356ea6a04ac012e30c82ba9d8100293c0d0ed" +
	"4e5ed505ba0d9951bf6bd30042694cadfbaaed0502153e6160a6150502818df419d36301ea183fb62f202303b9240fd8" +
	"065e7209255596e506245d0001000000477a794bc203cb06ba0e2910bacfb202fbdd693d3bdf5f01a8205ffaa19fff0c" +
	"5cce9080fac4c400f37f87eff45d2701df2356ea6a04ac01510a942658b4ca01d824741a1784f504ba0d9951bf6bd300" +
	"9805342787b89b00370c603ab6b6120002818df419d36301680c4babc69d0c015013d5a66a25c401255596e506245d00" +
	"0200000007fe6dd07cbf3a02ba0e2910bacfb202fbdd693d3bdf5f01874a2bd06b2a3b030ab9666fbe1d7a00f37f87ef" +
	"f45d2701df2356ea6a04ac01510a942658b4ca0197fb2b6482b73c00050c6a6328bd6b00a6fc0641699b7700370c603a" +
	"b6b6120002818df419d36301680c4babc69d0c0105c1650bb280e700255596e506245d00100000000000000018000000" +
	"000000004c5348461000000004000000030000000300000007fe6dd07cbf3a02ba0e2910bacfb202fbdd693d3bdf5f01" +
	"874a2bd06b2a3b030ab9666fbe1d7a00f37f87eff45d2701df2356ea6a04ac018a378aa754317a0097fb2b6482b73c00" +
	"050c6a6328bd6b00a6fc0641699b7700370c603ab6b6120002818df419d36301680c4babc69d0c0105c1650bb280e700" +
	"255596e506245d000400000007fe6dd07cbf3a023ffbf71fd3a75401fbdd693d3bdf5f01874a2bd06b2a3b030ab9666f" +
	"be1d7a00f37f87eff45d2701df2356ea6a04ac018a378aa754317a0097fb2b6482b73c00050c6a6328bd6b00a6fc0641" +
	"699b7700370c603ab6b6120002818df419d36301680c4babc69d0c0105c1650bb280e700255596e506245d0005000000" +
	"07fe6dd07cbf3a023ffbf71fd3a75401fbdd693d3bdf5f01874a2bd06b2a3b030ab9666fbe1d7a00f37f87eff45d2701" +
	"df2356ea6a04ac018a378aa754317a0097fb2b6482b73c00050c6a6328bd6b00a6fc0641699b7700370c603ab6b61200" +
	"02818df419d36301680c4babc69d0c0105c1650bb280e700255596e506245d001c000000000000002000000000000000" +
	"4c5348461000000004000000020000000600000007fe6dd07cbf3a023ffbf71fd3a754014e9976370b1c200012af8a31" +
	"b8a566000ab9666fbe1d7a00f37f87eff45d2701df2356ea6a04ac018a378aa754317a0097fb2b6482b73c00050c6a63" +
	"28bd6b003fc23a8d35be6700370c603ab6b6120002818df419d36301680c4babc69d0c0105c1650bb280e700255596e5" +
	"06245d0007000000963e9b617d099a003ffbf71fd3a754014e9976370b1c200012af8a31b8a566000ab9666fbe1d7a00" +
	"f37f87eff45d2701df2356ea6a04ac018a378aa754317a0097fb2b6482b73c00d6faa027507e37003fc23a8d35be6700" +
	"370c603ab6b6120002818df419d36301680c4babc69d0c0105c1650bb280e700255596e506245d00"

// goldenEnsemble rebuilds the deterministic index the golden bytes encode:
// eight nested domains sketched with NewHasher(16, 5), three partitions.
func goldenEnsemble(t *testing.T) *Index {
	t.Helper()
	h := minhash.NewHasher(16, 5)
	var recs []Record
	for i := 0; i < 8; i++ {
		vals := make([]string, (i+1)*4)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d", j)
		}
		recs = append(recs, Record{Key: fmt.Sprintf("d%d", i), Size: len(vals), Sig: h.SketchStrings(vals)})
	}
	x, err := Build(recs, Options{NumHash: 16, RMax: 4, NumPartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestDecodeRejectsMismatchedForest feeds an index whose embedded forest
// declares a different (numHash, rMax) than the index header. Accepting it
// would panic at query time (the tuner picks (b, r) outside the forest's
// range), so Decode must reject it as corruption.
func TestDecodeRejectsMismatchedForest(t *testing.T) {
	x := goldenEnsemble(t) // header (16, 4)
	good := x.AppendBinary(nil)

	rogue := lshforest.New(8, 2) // shape disagreeing with the header
	rogue.Add(0, make([]uint64, 8))
	rogue.Index()

	// Reuse the valid prefix up to the first partition's forest, then
	// splice in the rogue forest. Locate the first embedded forest magic.
	forestOff := bytes.Index(good, []byte("LSHF"))
	if forestOff < 0 {
		t.Fatal("no embedded forest found")
	}
	tampered := append(append([]byte{}, good[:forestOff]...), rogue.AppendBinary(nil)...)
	if _, _, err := Decode(tampered); err == nil {
		t.Fatal("decode accepted an index whose forest shape disagrees with its header")
	}
}

// TestEnsembleGoldenDecode proves an index serialized by the old storage
// layout still decodes: shape, query results, and re-encoded bytes all
// match a freshly built index.
func TestEnsembleGoldenDecode(t *testing.T) {
	golden, err := hex.DecodeString(ensembleGoldenHex)
	if err != nil {
		t.Fatal(err)
	}
	x, rest, err := Decode(golden)
	if err != nil {
		t.Fatalf("golden bytes from the old layout failed to decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	live := goldenEnsemble(t)
	if x.Len() != live.Len() || x.NumPartitions() != live.NumPartitions() {
		t.Fatalf("decoded shape (%d, %d), want (%d, %d)",
			x.Len(), x.NumPartitions(), live.Len(), live.NumPartitions())
	}
	for id := 0; id < live.Len(); id++ {
		if x.Key(uint32(id)) != live.Key(uint32(id)) || x.Size(uint32(id)) != live.Size(uint32(id)) {
			t.Fatalf("id %d: (%q, %d) vs (%q, %d)", id,
				x.Key(uint32(id)), x.Size(uint32(id)), live.Key(uint32(id)), live.Size(uint32(id)))
		}
	}
	// Query equivalence across thresholds, using each indexed domain as the
	// query.
	for id := 0; id < live.Len(); id++ {
		sig := live.Signature(uint32(id))
		size := live.Size(uint32(id))
		for _, tStar := range []float64{0.1, 0.5, 0.9} {
			want := mustQueryIDs(t, live, BatchQuery{Sig: sig, Size: size, Threshold: tStar})
			got := mustQueryIDs(t, x, BatchQuery{Sig: sig, Size: size, Threshold: tStar})
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(want) != len(got) {
				t.Fatalf("id %d t*=%v: %v vs %v", id, tStar, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("id %d t*=%v: %v vs %v", id, tStar, got, want)
				}
			}
		}
	}
	// Byte-identical re-encoding from both the decoded and the fresh index.
	if !bytes.Equal(x.AppendBinary(nil), golden) {
		t.Fatal("re-encoded bytes differ from the golden fixture")
	}
	if !bytes.Equal(live.AppendBinary(nil), golden) {
		t.Fatal("freshly built index encodes differently from the golden fixture")
	}
}
