package core

import (
	"sort"
	"testing"
)

// sortedIDs copies and sorts an id slice so order-insensitive comparisons
// are cheap to write.
func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mustQueryIDs is the test shorthand for QueryIDs on a clean index.
func mustQueryIDs(t testing.TB, x *Index, q BatchQuery) []uint32 {
	t.Helper()
	ids, err := x.QueryIDs(q.Sig, q.Size, q.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryBatchMatchesSerial runs the same query set through QueryIDs and
// QueryBatch at several worker counts; every row must match the serial
// answer exactly (batch rows keep the per-query probe order, so equality is
// order-sensitive per row).
func TestQueryBatchMatchesSerial(t *testing.T) {
	c := makeCorpus(t, 600, 64, 31)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	var queries []BatchQuery
	for i := 0; i < len(c.records); i += 7 {
		queries = append(queries, BatchQuery{
			Sig:       c.records[i].Sig,
			Size:      c.records[i].Size,
			Threshold: []float64{0.25, 0.5, 0.75}[i%3],
		})
	}
	want := make([][]uint32, len(queries))
	for i, q := range queries {
		want[i] = mustQueryIDs(t, idx, q)
	}
	for _, workers := range []int{0, 1, 2, 4, 16, len(queries) + 5} {
		rows, err := idx.QueryBatch(queries, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(queries) {
			t.Fatalf("workers=%d: %d rows for %d queries", workers, len(rows), len(queries))
		}
		for i := range rows {
			if !equalIDs(sortedIDs(rows[i]), sortedIDs(want[i])) {
				t.Fatalf("workers=%d query %d: got %d ids, want %d", workers, i, len(rows[i]), len(want[i]))
			}
		}
	}
}

// TestQueryBatchIntoReuse reuses one BatchResults across batches of
// different shapes and checks rows stay correct — the arena and offset
// table must be fully reset between calls.
func TestQueryBatchIntoReuse(t *testing.T) {
	c := makeCorpus(t, 300, 64, 32)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	var res BatchResults
	for _, n := range []int{17, 50, 3, 50, 1} {
		queries := make([]BatchQuery, n)
		for i := range queries {
			r := c.records[(i*13)%len(c.records)]
			queries[i] = BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 0.5}
		}
		if err := idx.QueryBatchInto(&res, queries, 4); err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != n {
			t.Fatalf("n=%d: NumRows %d", n, res.NumRows())
		}
		for i, q := range queries {
			want := mustQueryIDs(t, idx, q)
			if !equalIDs(sortedIDs(res.Row(i)), sortedIDs(want)) {
				t.Fatalf("n=%d row %d: got %d ids, want %d", n, i, len(res.Row(i)), len(want))
			}
		}
	}
}

// TestQueryBatchEdgeCases covers empty batches, zero-size queries, and
// degenerate thresholds.
func TestQueryBatchEdgeCases(t *testing.T) {
	c := makeCorpus(t, 100, 64, 33)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := idx.QueryBatch(nil, 4); err != nil || len(rows) != 0 {
		t.Fatalf("empty batch returned %d rows (err %v)", len(rows), err)
	}
	r := c.records[0]
	rows, err := idx.QueryBatch([]BatchQuery{
		{Sig: r.Sig, Size: 0, Threshold: 0.5},     // invalid size → empty row
		{Sig: r.Sig, Size: r.Size, Threshold: -3}, // clamped to 0
		{Sig: r.Sig, Size: r.Size, Threshold: 5},  // clamped to 1
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 0 {
		t.Fatalf("zero-size query returned %d ids", len(rows[0]))
	}
	if want := mustQueryIDs(t, idx, BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 0}); !equalIDs(sortedIDs(rows[1]), sortedIDs(want)) {
		t.Fatalf("t*<0 row mismatch: %d vs %d", len(rows[1]), len(want))
	}
	if want := mustQueryIDs(t, idx, BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 1}); !equalIDs(sortedIDs(rows[2]), sortedIDs(want)) {
		t.Fatalf("t*>1 row mismatch: %d vs %d", len(rows[2]), len(want))
	}
}

// TestQueryBatchErrDirty mirrors the single-query contract.
func TestQueryBatchErrDirty(t *testing.T) {
	c := makeCorpus(t, 50, 64, 34)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(c.records[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.QueryBatch([]BatchQuery{{Sig: c.records[0].Sig, Size: 10, Threshold: 0.5}}, 2); err != ErrDirty {
		t.Fatalf("QueryBatch on dirty index: err = %v, want ErrDirty", err)
	}
}

// TestParallelQueryIDsMatchesSerial checks the intra-query mode against
// QueryIDs as a set, across worker counts and thresholds.
func TestParallelQueryIDsMatchesSerial(t *testing.T) {
	c := makeCorpus(t, 800, 64, 35)
	idx, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 32})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < len(c.records); qi += 61 {
		r := c.records[qi]
		for _, tStar := range []float64{0.2, 0.5, 0.9} {
			want := sortedIDs(mustQueryIDs(t, idx, BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: tStar}))
			for _, workers := range []int{0, 1, 2, 4, 64} {
				pids, err := idx.ParallelQueryIDs(r.Sig, r.Size, tStar, workers)
				if err != nil {
					t.Fatal(err)
				}
				got := sortedIDs(pids)
				if !equalIDs(got, want) {
					t.Fatalf("query %d t*=%v workers=%d: got %d ids, want %d",
						qi, tStar, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestBuildParallelDeterministic builds the same corpus twice (the build
// pipeline fans partition fills and tree sorts across workers) and requires
// identical serialized bytes: parallel construction must be bit-for-bit
// deterministic.
func TestBuildParallelDeterministic(t *testing.T) {
	c := makeCorpus(t, 500, 64, 36)
	a, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(c.records, Options{NumHash: 64, RMax: 4, NumPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := a.AppendBinary(nil), b.AppendBinary(nil)
	if len(ab) != len(bb) {
		t.Fatalf("encodings differ in length: %d vs %d", len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("encodings differ at byte %d", i)
		}
	}
}
