package core

import (
	"sort"

	"lshensemble/internal/minhash"
)

// TopKResult is one ranked answer of QueryTopK.
type TopKResult struct {
	Key string
	// EstContainment is the containment score estimated from the MinHash
	// signatures (paper Eq. 6 applied to the Jaccard estimate). It ranks
	// candidates; callers needing exact scores should verify against the
	// raw domains.
	EstContainment float64
}

// topKThresholds is the descending threshold ladder QueryTopK walks. The
// ladder trades probe count against over-retrieval; 0.05 matches the
// paper's experimental threshold granularity.
var topKThresholds = func() []float64 {
	var ts []float64
	for t := 1.0; t > 0.04; t -= 0.05 {
		ts = append(ts, t)
	}
	return ts
}()

// QueryTopK returns (up to) k domains ranked by estimated containment of
// the query — the top-k formulation the paper's Section 2 describes as
// complementary to threshold search. It walks a descending threshold
// ladder, collecting candidates until at least k are found (or the ladder
// is exhausted), then ranks them by signature-estimated containment.
// Results are approximate in the same sense as Query: candidates come from
// LSH collisions and scores from sketches. It returns ErrDirty if the index
// has Adds not yet folded in by Reindex.
func (x *Index) QueryTopK(sig minhash.Signature, querySize, k int) ([]TopKResult, error) {
	if x.dirty {
		return nil, ErrDirty
	}
	if k <= 0 || querySize <= 0 || len(x.keys) == 0 {
		return nil, nil
	}
	// Stored signatures are exactly NumHash long (forest flat store); clamp
	// the query signature so the slot-wise Jaccard estimate lines up.
	if len(sig) > x.opts.NumHash {
		sig = sig[:x.opts.NumHash]
	}
	s := x.acquireScratch()
	ids := x.topKIDs(s.ids[:0], s, sig, querySize, k)
	results := make([]TopKResult, 0, len(ids))
	for _, id := range ids {
		est := x.EstContainment(id, sig, querySize)
		results = append(results, TopKResult{Key: x.keys[id], EstContainment: est})
	}
	s.ids = ids
	x.releaseScratch(s)
	sort.Slice(results, func(i, j int) bool {
		if results[i].EstContainment != results[j].EstContainment {
			return results[i].EstContainment > results[j].EstContainment
		}
		return results[i].Key < results[j].Key
	})
	if len(results) > k {
		results = results[:k]
	}
	return results, nil
}

// topKIDs walks the threshold ladder, appending candidate ids to dst until
// at least k are collected or the ladder is exhausted. One scratch
// generation spans the whole walk: queryInto's visited stamps persist
// across rungs, so each lower threshold appends only ids not already
// collected by a higher one.
func (x *Index) topKIDs(dst []uint32, s *queryScratch, sig minhash.Signature, querySize, k int) []uint32 {
	for _, tStar := range topKThresholds {
		dst = x.queryInto(dst, s, sig, querySize, tStar)
		if len(dst) >= k {
			break
		}
	}
	return dst
}

// QueryTopKIDs appends the candidate ids QueryTopK would rank — the
// ladder-walk collection, unscored and unsorted — to dst. Layered callers
// (internal/live) use it to gather at least k candidates per segment, then
// score and merge across segments themselves with Key, Size and Signature.
// It returns ErrDirty if the index has Adds not yet folded in by Reindex.
func (x *Index) QueryTopKIDs(dst []uint32, sig minhash.Signature, querySize, k int) ([]uint32, error) {
	if x.dirty {
		return dst, ErrDirty
	}
	if k <= 0 || querySize <= 0 || len(x.keys) == 0 {
		return dst, nil
	}
	if len(sig) > x.opts.NumHash {
		sig = sig[:x.opts.NumHash]
	}
	s := x.acquireScratch()
	dst = x.topKIDs(dst, s, sig, querySize, k)
	x.releaseScratch(s)
	return dst, nil
}
