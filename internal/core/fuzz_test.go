package core

import (
	"bytes"
	"testing"

	"lshensemble/internal/minhash"
)

// fuzzSeedIndex builds a tiny index under the given backend for the seed
// corpus.
func fuzzSeedIndex(f *testing.F, sb SketchBackend) []byte {
	f.Helper()
	h := minhash.NewHasher(16, 1)
	recs := make([]Record, 12)
	for i := range recs {
		sig := h.NewSignature()
		for j := uint64(0); j < uint64(8+i); j++ {
			h.PushHashed(sig, minhash.HashUint64(uint64(i)*100+j))
		}
		recs[i] = Record{Key: string(rune('a' + i)), Size: 8 + i, Sig: sig}
	}
	idx, err := Build(recs, Options{NumHash: 16, RMax: 4, NumPartitions: 3, Sketch: sb})
	if err != nil {
		f.Fatal(err)
	}
	return idx.AppendBinary(nil)
}

// FuzzDecode throws hostile bytes at the ensemble decoder (both the legacy
// "LSHE" and backend-tagged "LSE2" framings). Accepted indexes must be
// queryable, and their canonical re-encoding must be a decode fixed point.
func FuzzDecode(f *testing.F) {
	f.Add(fuzzSeedIndex(f, Minwise64))
	f.Add(fuzzSeedIndex(f, Minwise16))
	f.Add(fuzzSeedIndex(f, Minwise8))
	f.Add([]byte{})
	f.Add([]byte("LSHE"))
	f.Add([]byte("LSE2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, rest, err := Decode(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew")
		}
		if idx.Len() < 0 || !idx.Sketch().Valid() {
			t.Fatalf("inconsistent decoded index: len=%d sketch=%v", idx.Len(), idx.Sketch())
		}
		// A decoded index must answer queries without panicking. Skip the
		// probe when the header claims an absurd signature length — the
		// decoder's allocations are payload-bounded, but the test's own
		// query signature would not be.
		if nh := idx.Options().NumHash; nh <= 1<<12 {
			sig := make(minhash.Signature, nh)
			if _, err := idx.Query(sig, 1, 0.5); err != nil {
				t.Fatalf("query on decoded index: %v", err)
			}
		}
		// The decoder accepts the tagged "LSE2" framing even for Minwise64,
		// which re-encodes under the legacy "LSHE" magic — so identity with
		// the input is not guaranteed. The canonical re-encoding must be a
		// fixed point instead: decode it again, same shape, same bytes.
		re := idx.AppendBinary(nil)
		idx2, rest2, err := Decode(re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("canonical re-encode rejected: %v (%d trailing)", err, len(rest2))
		}
		if idx2.Len() != idx.Len() || idx2.Sketch() != idx.Sketch() ||
			idx2.Options().NumHash != idx.Options().NumHash {
			t.Fatalf("round trip changed shape")
		}
		if re2 := idx2.AppendBinary(nil); !bytes.Equal(re, re2) {
			t.Fatalf("canonical encoding not a fixed point: %d vs %d bytes", len(re), len(re2))
		}
	})
}
