package core

import (
	"testing"

	"lshensemble/internal/minhash"
	"lshensemble/internal/tune"
	"lshensemble/internal/xrand"
)

// plannedTestIndex builds a small index with a size spread wide enough that
// different (querySize, tStar) pairs skip different partitions.
func plannedTestIndex(t *testing.T, n int) (*Index, []Record) {
	t.Helper()
	rng := xrand.New(42)
	recs := make([]Record, n)
	for i := range recs {
		size := 4 + int(rng.Uint64()%512)
		sig := make(minhash.Signature, 128)
		for j := range sig {
			// Overlapping value pools so queries actually collide.
			sig[j] = rng.Uint64() % 4096 << 3
		}
		recs[i] = Record{Key: keyOf(i), Size: size, Sig: sig}
	}
	x, err := Build(recs, Options{NumHash: 128, RMax: 8, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	return x, recs
}

func keyOf(i int) string {
	return string([]byte{'k', byte('a' + i%26), byte('a' + (i/26)%26), byte('0' + i%10)})
}

func TestPlannedQueryMatchesDirect(t *testing.T) {
	x, recs := plannedTestIndex(t, 400)
	for _, tStar := range []float64{0.0, 0.3, 0.5, 0.8, 1.0} {
		for qi := 0; qi < 50; qi++ {
			rec := recs[qi*7%len(recs)]
			plan := x.PlanPartitions(nil, rec.Size, tStar)
			if len(plan) != len(x.parts) {
				t.Fatalf("plan has %d entries, want %d", len(plan), len(x.parts))
			}
			direct, err := x.QueryIDsAppend(nil, rec.Sig, rec.Size, tStar)
			if err != nil {
				t.Fatal(err)
			}
			planned, err := x.QueryIDsPlannedAppend(nil, rec.Sig, plan)
			if err != nil {
				t.Fatal(err)
			}
			if len(direct) != len(planned) {
				t.Fatalf("t*=%.2f: planned returned %d ids, direct %d", tStar, len(planned), len(direct))
			}
			for i := range direct {
				if direct[i] != planned[i] {
					t.Fatalf("t*=%.2f: id %d differs: planned %d, direct %d", tStar, i, planned[i], direct[i])
				}
			}
		}
	}
}

func TestPlanPartitionsMarksSkips(t *testing.T) {
	x, _ := plannedTestIndex(t, 200)
	// A tiny query at a high threshold must rule out the small partitions:
	// u/q < t* for every partition whose upper bound is below t*·q.
	plan := x.PlanPartitions(nil, 5000, 0.9)
	bounds := x.PartitionBounds()
	skipped := 0
	for pi, p := range plan {
		upper := bounds[pi].Upper
		if float64(upper)/5000 < 0.9 {
			if p.B != 0 {
				t.Fatalf("partition %d (upper %d) should be skipped for q=5000 t*=0.9", pi, upper)
			}
			skipped++
		} else if p.B == 0 {
			t.Fatalf("partition %d (upper %d) wrongly skipped", pi, upper)
		}
	}
	if skipped == 0 {
		t.Fatal("test index produced no skippable partitions; widen the size spread")
	}
}

func TestPlannedAppendRejectsWrongShape(t *testing.T) {
	x, recs := plannedTestIndex(t, 50)
	if _, err := x.QueryIDsPlannedAppend(nil, recs[0].Sig, make([]tune.Params, len(x.parts)+1)); err == nil {
		t.Fatal("mismatched plan length accepted")
	}
}

func TestQueryTopKIDsMatchesQueryTopK(t *testing.T) {
	x, recs := plannedTestIndex(t, 300)
	for qi := 0; qi < 20; qi++ {
		rec := recs[qi*11%len(recs)]
		const k = 10
		ids, err := x.QueryTopKIDs(nil, rec.Sig, rec.Size, k)
		if err != nil {
			t.Fatal(err)
		}
		full, err := x.QueryTopK(rec.Sig, rec.Size, k)
		if err != nil {
			t.Fatal(err)
		}
		// QueryTopK is the scored, ranked, truncated view of the same
		// candidate collection: every ranked key must appear among the ids.
		got := make(map[string]bool, len(ids))
		for _, id := range ids {
			got[x.Key(id)] = true
		}
		for _, r := range full {
			if !got[r.Key] {
				t.Fatalf("QueryTopK key %q missing from QueryTopKIDs candidates", r.Key)
			}
		}
		if len(ids) < len(full) {
			t.Fatalf("candidate set smaller than ranked result: %d < %d", len(ids), len(full))
		}
	}
}

func TestEachTreeLeadingCoversProbes(t *testing.T) {
	x, recs := plannedTestIndex(t, 150)
	// Collect every leading column value; any query that produces a
	// collision must have its per-tree leading value present in the set —
	// the invariant segment Bloom pruning relies on.
	seen := make(map[uint64]bool)
	trees := 0
	x.EachTreeLeading(func(tree int, col []uint64) {
		trees++
		for _, v := range col {
			seen[v] = true
		}
	})
	if trees == 0 {
		t.Fatal("EachTreeLeading visited no trees")
	}
	rmax := 8
	for qi := 0; qi < 30; qi++ {
		rec := recs[qi%len(recs)]
		ids, err := x.QueryIDsAppend(nil, rec.Sig, rec.Size, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) == 0 {
			continue
		}
		// At least one tree's leading value must be in the collected set
		// (in fact every colliding tree's is; one suffices for the test).
		hit := false
		for tr := 0; tr*rmax < len(rec.Sig); tr++ {
			if seen[rec.Sig[tr*rmax]] {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("query %d collided but no leading value found in tree columns", qi)
		}
	}
}
