package core

import (
	"testing"

	"lshensemble/internal/minhash"
)

// topKFixture builds nested prefix domains: domain i holds values
// [0, 20·(i+1)), so for a query of the first 20 values every domain fully
// contains it, while reversed queries rank larger domains lower.
func topKFixture(t testing.TB, numHash int) (*Index, *minhash.Hasher, [][]uint64) {
	t.Helper()
	h := minhash.NewHasher(numHash, 5)
	var recs []Record
	var vals [][]uint64
	for i := 0; i < 20; i++ {
		n := 20 * (i + 1)
		v := make([]uint64, n)
		hv := make([]uint64, n)
		for j := 0; j < n; j++ {
			v[j] = uint64(j)
			hv[j] = minhash.HashUint64(uint64(j))
		}
		vals = append(vals, v)
		recs = append(recs, Record{Key: key(i), Size: n, Sig: h.Sketch(hv)})
	}
	idx, err := Build(recs, Options{NumHash: numHash, RMax: 8, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	return idx, h, vals
}

func key(i int) string { return string(rune('a' + i)) }

// mustTopK is the test shorthand for QueryTopK on a clean index.
func mustTopK(t testing.TB, x *Index, sig minhash.Signature, querySize, k int) []TopKResult {
	t.Helper()
	top, err := x.QueryTopK(sig, querySize, k)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestQueryTopKRanksBySizeOnNestedPrefixes(t *testing.T) {
	idx, h, _ := topKFixture(t, 256)
	// Query = domain 5's values [0, 120): it is fully contained in domains
	// 5..19 (est. containment ~1) and partially in 0..4. Top-1 should have
	// estimated containment near 1.
	q := make([]uint64, 120)
	for j := range q {
		q[j] = minhash.HashUint64(uint64(j))
	}
	sig := h.Sketch(q)
	top := mustTopK(t, idx, sig, 120, 5)
	if len(top) != 5 {
		t.Fatalf("got %d results, want 5", len(top))
	}
	if top[0].EstContainment < 0.9 {
		t.Fatalf("top result containment %v, want ~1", top[0].EstContainment)
	}
	// Scores must be non-increasing.
	for i := 1; i < len(top); i++ {
		if top[i].EstContainment > top[i-1].EstContainment+1e-12 {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

func TestQueryTopKSelfFirst(t *testing.T) {
	idx, _, _ := topKFixture(t, 256)
	// Query with domain 19 (largest): only supersets of it are itself.
	sig := idx.Signature(19)
	top := mustTopK(t, idx, sig, idx.Size(19), 3)
	if len(top) == 0 || top[0].Key != key(19) {
		t.Fatalf("self not ranked first: %+v", top)
	}
	if top[0].EstContainment < 0.99 {
		t.Fatalf("self containment %v", top[0].EstContainment)
	}
}

func TestQueryTopKEdgeCases(t *testing.T) {
	idx, h, _ := topKFixture(t, 256)
	sig := h.Sketch([]uint64{minhash.HashUint64(7)})
	if got := mustTopK(t, idx, sig, 1, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := mustTopK(t, idx, sig, 0, 5); got != nil {
		t.Fatal("querySize=0 should return nil")
	}
	// k larger than corpus: returns at most corpus size, no panic.
	full := mustTopK(t, idx, idx.Signature(0), idx.Size(0), 1000)
	if len(full) > idx.Len() {
		t.Fatalf("returned %d > corpus %d", len(full), idx.Len())
	}
}

func TestQueryTopKSurvivesSerialization(t *testing.T) {
	idx, _, _ := topKFixture(t, 128)
	buf := idx.AppendBinary(nil)
	loaded, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	a := mustTopK(t, idx, idx.Signature(3), idx.Size(3), 4)
	b := mustTopK(t, loaded, loaded.Signature(3), loaded.Size(3), 4)
	if len(a) != len(b) {
		t.Fatalf("topk differs after decode: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("topk order differs at %d: %s vs %s", i, a[i].Key, b[i].Key)
		}
	}
}

func TestQueryTopKAfterAdd(t *testing.T) {
	idx, h, _ := topKFixture(t, 128)
	n := 500
	v := make([]uint64, n)
	for j := range v {
		v[j] = minhash.HashUint64(uint64(j))
	}
	rec := Record{Key: "added", Size: n, Sig: h.Sketch(v)}
	if err := idx.Add(rec); err != nil {
		t.Fatal(err)
	}
	idx.Reindex()
	top := mustTopK(t, idx, rec.Sig, n, 1)
	if len(top) != 1 || top[0].Key != "added" {
		t.Fatalf("added record not top-1 for itself: %+v", top)
	}
}
