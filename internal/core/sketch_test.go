package core

import (
	"math"
	"testing"

	"lshensemble/internal/minhash"
	"lshensemble/internal/xrand"
)

// TestSketchBackendProperties pins the enum's static surface: widths, masks,
// names, indexability and the wire-tag round trip.
func TestSketchBackendProperties(t *testing.T) {
	cases := []struct {
		sb    SketchBackend
		name  string
		width int
		mask  uint64
		index bool
	}{
		{Minwise64, "minwise64", 8, ^uint64(0), true},
		{Minwise8, "minwise8", 1, 0xff, true},
		{Minwise16, "minwise16", 2, 0xffff, true},
		{Minwise32, "minwise32", 4, 0xffffffff, true},
		{KMV, "kmv", 8, ^uint64(0), false},
	}
	for _, tc := range cases {
		if tc.sb.String() != tc.name {
			t.Errorf("%v: String = %q, want %q", tc.sb, tc.sb.String(), tc.name)
		}
		if tc.sb.WidthBytes() != tc.width {
			t.Errorf("%s: WidthBytes = %d, want %d", tc.name, tc.sb.WidthBytes(), tc.width)
		}
		if tc.sb.Mask() != tc.mask {
			t.Errorf("%s: Mask = %#x, want %#x", tc.name, tc.sb.Mask(), tc.mask)
		}
		if tc.sb.Indexable() != tc.index {
			t.Errorf("%s: Indexable = %v, want %v", tc.name, tc.sb.Indexable(), tc.index)
		}
		parsed, err := ParseSketchBackend(tc.name)
		if err != nil || parsed != tc.sb {
			t.Errorf("ParseSketchBackend(%q) = %v, %v", tc.name, parsed, err)
		}
		rt, ok := SketchBackendFromTag(tc.sb.Tag())
		if !ok || rt != tc.sb {
			t.Errorf("%s: tag round trip gave %v, %v", tc.name, rt, ok)
		}
	}
	if _, err := ParseSketchBackend("minwise128"); err == nil {
		t.Error("unknown backend name accepted")
	}
	if _, ok := SketchBackendFromTag(99); ok {
		t.Error("unknown tag accepted")
	}
	if sb := SketchBackend(99); sb.Valid() {
		t.Error("out-of-range backend valid")
	}
}

// TestJaccardFromMatchCorrection is the table-driven closed-form check of
// the b-bit collision-probability correction Ĵ = (p̂ − 2⁻ᵇ)/(1 − 2⁻ᵇ):
// feeding the expected agreement p = J + (1−J)·2⁻ᵇ back through the
// estimator must recover J exactly (up to float rounding).
func TestJaccardFromMatchCorrection(t *testing.T) {
	for _, sb := range []SketchBackend{Minwise8, Minwise16, Minwise32} {
		r := 1 / float64(uint64(1)<<sb.Bits())
		for _, j := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			const m = 1 << 20 // large m so eq = round(p·m) loses little precision
			p := j + (1-j)*r
			eq := int(math.Round(p * m))
			got := sb.JaccardFromMatch(eq, m)
			if math.Abs(got-j) > 1e-5 {
				t.Errorf("%s: J=%v → p=%v → Ĵ=%v", sb, j, p, got)
			}
		}
		// At or below the chance floor the estimate clamps to zero.
		if got := sb.JaccardFromMatch(0, 1000); got != 0 {
			t.Errorf("%s: JaccardFromMatch(0) = %v, want 0", sb, got)
		}
		floorEq := int(r * 1e6)
		if got := sb.JaccardFromMatch(floorEq, 1e6); got > 1e-9 {
			t.Errorf("%s: chance-floor agreement gave %v, want ~0", sb, got)
		}
	}
	// Minwise64 applies no correction: the raw fraction is the estimate.
	if got := Minwise64.JaccardFromMatch(64, 128); got != 0.5 {
		t.Errorf("Minwise64: JaccardFromMatch(64, 128) = %v, want 0.5", got)
	}
	// Degenerate inputs.
	for _, sb := range []SketchBackend{Minwise64, Minwise16} {
		if got := sb.JaccardFromMatch(5, 0); got != 0 {
			t.Errorf("%s: m=0 gave %v", sb, got)
		}
	}
}

// TestContainmentFromMatchMinwise64Identity: under the default backend the
// match-count path must be float-identical to minhash.Signature.Containment
// — the invariant that keeps planned results byte-stable across the
// refactor that introduced the backends.
func TestContainmentFromMatchMinwise64Identity(t *testing.T) {
	rng := xrand.New(17)
	h := minhash.NewHasher(64, 7)
	for trial := 0; trial < 50; trial++ {
		a, b := h.NewSignature(), h.NewSignature()
		for i := 0; i < 30; i++ {
			v := rng.Uint64()
			h.PushHashed(a, v)
			if i%2 == 0 {
				h.PushHashed(b, v)
			} else {
				h.PushHashed(b, rng.Uint64())
			}
		}
		eq := 0
		for i := range a {
			if a[i] == b[i] {
				eq++
			}
		}
		q := float64(1 + trial%7)
		x := float64(1 + trial%11)
		want := a.Containment(b, q, x)
		got := Minwise64.ContainmentFromMatch(eq, len(a), q, x)
		if got != want {
			t.Fatalf("trial %d: ContainmentFromMatch = %v, Signature.Containment = %v", trial, got, want)
		}
	}
	// Zero query cardinality short-circuits, like the signature path.
	if got := Minwise64.ContainmentFromMatch(10, 10, 0, 5); got != 0 {
		t.Errorf("q=0 gave %v", got)
	}
	// The estimate clamps at 1 for oversized stored domains.
	if got := Minwise16.ContainmentFromMatch(1000, 1000, 1, 100); got != 1 {
		t.Errorf("clamp gave %v", got)
	}
}

// TestBBitTruncationEstimate is the end-to-end statistical check: sketch two
// domains of known Jaccard, truncate to b bits, and require the corrected
// estimate to track the full-width estimate within sampling noise.
func TestBBitTruncationEstimate(t *testing.T) {
	const m = 256
	h := minhash.NewHasher(m, 11)
	mk := func(lo, hi uint64) minhash.Signature {
		vals := make([]uint64, 0, hi-lo)
		for v := lo; v < hi; v++ {
			vals = append(vals, minhash.HashUint64(v))
		}
		return h.Sketch(vals)
	}
	a := mk(0, 4000)
	b := mk(2000, 6000) // true J = 2000/6000 = 1/3
	full := a.Jaccard(b)
	for _, sb := range []SketchBackend{Minwise8, Minwise16, Minwise32} {
		mask := sb.Mask()
		eq := 0
		for i := range a {
			if a[i]&mask == b[i]&mask {
				eq++
			}
		}
		got := sb.JaccardFromMatch(eq, m)
		// b-bit truncation adds binomial noise on top of the shared MinHash
		// sample; 5/√m bounds the drift from the full-width estimate.
		if tol := 5 / math.Sqrt(m); math.Abs(got-full) > tol {
			t.Errorf("%s: corrected Ĵ = %.4f, full-width %.4f (tol %.4f)", sb, got, full, tol)
		}
	}
}

// TestOptionsRejectNonIndexableSketch: KMV cannot back an Index store.
func TestOptionsRejectNonIndexableSketch(t *testing.T) {
	recs := []Record{{Key: "a", Size: 3, Sig: make(minhash.Signature, 256)}}
	if _, err := Build(recs, Options{Sketch: KMV}); err == nil {
		t.Fatal("Build accepted the KMV backend as an index store")
	}
	if _, err := Build(recs, Options{Sketch: SketchBackend(42)}); err == nil {
		t.Fatal("Build accepted an undefined backend")
	}
}
