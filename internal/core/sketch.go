package core

import "fmt"

// SketchBackend selects the signature representation the ensemble stores and
// scores with. All backends consume the same full-width minhash.Signature at
// the API boundary (sketching is unchanged); the backend decides how many
// bits of each slot survive into the index's contiguous store and how slot
// agreement counts convert back into Jaccard/containment estimates.
//
//   - Minwise64 stores the full 61-bit hash values in 8 bytes per slot — the
//     paper's configuration and the default. Bit-identical to the
//     pre-backend behavior, including on the wire.
//   - Minwise8/16/32 are b-bit minwise backends (Li & König, WWW 2010): each
//     slot keeps only its low b ∈ {8, 16, 32} bits, shrinking the store to
//     b/64 of the full size. Truncated slots collide by chance with
//     probability 2⁻ᵇ even across unrelated domains, so the Jaccard
//     estimator unbiases the raw agreement fraction:
//     Ĵ = (p̂ − 2⁻ᵇ) / (1 − 2⁻ᵇ). LSH probing is unchanged (band collision
//     probability only rises, so partition probes lose no true positives
//     relative to Minwise64 — they admit more false candidates instead).
//   - KMV is a k-minimum-values sketch (Beyer et al., SIGMOD 2007): the k
//     smallest distinct base hashes, giving cardinality-aware containment
//     estimates. It supports no banding, so it is not indexable — it serves
//     the exact/asymmetric evaluation path (internal/expt) as a compact
//     brute-force scorer, never an Index store.
type SketchBackend uint8

const (
	// Minwise64 is the default full-width minwise backend.
	Minwise64 SketchBackend = iota
	// Minwise8 stores the low 8 bits of each minhash slot.
	Minwise8
	// Minwise16 stores the low 16 bits of each minhash slot.
	Minwise16
	// Minwise32 stores the low 32 bits of each minhash slot.
	Minwise32
	// KMV is the k-minimum-values backend (evaluation path only).
	KMV

	numSketchBackends
)

// sketchNames is indexed by SketchBackend; these are the -sketch flag values
// and the names reported by /stats and the experiment tables.
var sketchNames = [numSketchBackends]string{"minwise64", "minwise8", "minwise16", "minwise32", "kmv"}

// Valid reports whether sb is a defined backend.
func (sb SketchBackend) Valid() bool { return sb < numSketchBackends }

// Indexable reports whether the backend can serve as an Index store. KMV
// sketches have no per-band structure, so only the minwise family qualifies.
func (sb SketchBackend) Indexable() bool { return sb.Valid() && sb != KMV }

// WidthBytes returns the stored bytes per signature slot: the lshforest
// store element width the backend builds on.
func (sb SketchBackend) WidthBytes() int {
	switch sb {
	case Minwise8:
		return 1
	case Minwise16:
		return 2
	case Minwise32:
		return 4
	default: // Minwise64, KMV (KMV entries are full 64-bit hashes)
		return 8
	}
}

// Bits returns the stored bits per slot, b in the b-bit minwise papers.
func (sb SketchBackend) Bits() int { return 8 * sb.WidthBytes() }

// Mask returns the bitmask a stored slot value is truncated with. Query-side
// comparisons against a truncated store must mask their values identically.
func (sb SketchBackend) Mask() uint64 {
	if w := sb.WidthBytes(); w < 8 {
		return (uint64(1) << (8 * w)) - 1
	}
	return ^uint64(0)
}

// String returns the canonical backend name (also the -sketch flag value).
func (sb SketchBackend) String() string {
	if !sb.Valid() {
		return fmt.Sprintf("sketch(%d)", uint8(sb))
	}
	return sketchNames[sb]
}

// ParseSketchBackend resolves a backend name as accepted by the -sketch
// flag: minwise64, minwise8, minwise16, minwise32 or kmv.
func ParseSketchBackend(s string) (SketchBackend, error) {
	for i, n := range sketchNames {
		if s == n {
			return SketchBackend(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown sketch backend %q (want one of minwise64, minwise8, minwise16, minwise32, kmv)", s)
}

// SketchBackendFromTag maps a wire-format backend tag (snapshot manifest v4,
// LSEG v2, LSE2 index encodings) back to a backend. The tag is the enum
// value itself; unknown tags are rejected so newer formats fail loudly on
// older binaries.
func SketchBackendFromTag(tag uint32) (SketchBackend, bool) {
	sb := SketchBackend(tag)
	return sb, uint32(uint8(tag)) == tag && sb.Valid()
}

// Tag returns the backend's wire-format tag.
func (sb SketchBackend) Tag() uint32 { return uint32(sb) }

// JaccardFromMatch converts an agreement count over m compared slots into a
// Jaccard estimate. For Minwise64 the agreement fraction is the estimate
// (Broder's identity; float-identical to minhash.Signature.Jaccard). For a
// b-bit backend a disagreeing slot pair still collides in its surviving b
// bits with probability 2⁻ᵇ, so the expected agreement fraction is
// p = J + (1−J)·2⁻ᵇ; inverting gives Ĵ = (p̂ − 2⁻ᵇ)/(1 − 2⁻ᵇ), clamped to
// [0, 1] (small samples can put p̂ below the chance floor).
func (sb SketchBackend) JaccardFromMatch(eq, m int) float64 {
	if m <= 0 {
		return 0
	}
	p := float64(eq) / float64(m)
	if sb == Minwise64 || sb == KMV {
		return p
	}
	r := 1 / float64(uint64(1)<<sb.Bits())
	j := (p - r) / (1 - r)
	if j < 0 {
		return 0
	}
	return j
}

// ContainmentFromMatch converts an agreement count over m compared slots
// into a containment estimate t(Q, X) = |Q∩X|/|Q| for a query of cardinality
// q against a stored domain of cardinality x, through the backend's Jaccard
// estimate and the inclusion-exclusion identity (paper Eq. 6). For Minwise64
// the result is float-identical to minhash.Signature.Containment on the same
// agreement count.
func (sb SketchBackend) ContainmentFromMatch(eq, m int, q, x float64) float64 {
	j := sb.JaccardFromMatch(eq, m)
	if q <= 0 {
		return 0
	}
	t := (x/q + 1) * j / (1 + j)
	if t > 1 {
		t = 1
	}
	return t
}
