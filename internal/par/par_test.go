package par

import (
	"sync/atomic"
	"testing"
)

func TestChunkedCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1025} {
		for _, workers := range []int{-1, 0, 1, 2, 3, 16, n + 5, 2000} {
			hits := make([]int32, n)
			chunks := Chunked(n, workers, func(w, lo, hi int) {
				if lo >= hi {
					t.Errorf("n=%d workers=%d: empty chunk [%d, %d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if n == 0 && chunks != 0 {
				t.Fatalf("n=0: %d chunks", chunks)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestChunkedHugeWorkerCount is the regression for the hand-rolled chunk
// arithmetic bug: a worker count large enough that the last chunk's lo would
// land past n must not panic or produce an out-of-range chunk.
func TestChunkedHugeWorkerCount(t *testing.T) {
	const n = 1024*2000 + 100
	covered := int64(0)
	Chunked(n, 2000, func(w, lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
		}
		atomic.AddInt64(&covered, int64(hi-lo))
	})
	if covered != n {
		t.Fatalf("covered %d of %d", covered, n)
	}
}

func TestDrainRunsEveryJobOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 501} {
		for _, workers := range []int{-1, 0, 1, 4, n + 3} {
			hits := make([]int32, n)
			got := Drain(n, workers, func(w, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			if n > 0 && (got < 1 || got > Clamp(workers, n)) {
				t.Fatalf("n=%d workers=%d: reported %d workers", n, workers, got)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: job %d ran %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestDrainWorkerIDsDense checks that every reported worker id indexes
// valid per-worker state.
func TestDrainWorkerIDsDense(t *testing.T) {
	const n = 200
	workers := Clamp(8, n)
	state := make([]int32, workers)
	Drain(n, workers, func(w, i int) {
		atomic.AddInt32(&state[w], 1)
	})
	sum := int32(0)
	for _, s := range state {
		sum += s
	}
	if sum != n {
		t.Fatalf("worker tallies sum to %d, want %d", sum, n)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(0, 5); got < 1 || got > 5 {
		t.Fatalf("Clamp(0, 5) = %d", got)
	}
	if got := Clamp(100, 3); got != 3 {
		t.Fatalf("Clamp(100, 3) = %d", got)
	}
	if got := Clamp(2, 0); got != 1 {
		t.Fatalf("Clamp(2, 0) = %d", got)
	}
}
