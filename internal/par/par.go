// Package par provides the two fan-out scaffolds shared by the parallel
// construction and query paths: contiguous chunks for slice-sharded work and
// a shared-counter drain for load-balanced job lists. Both run the caller's
// function inline on the calling goroutine when one worker suffices, so
// serial fallbacks stay goroutine-free, and both bound every index they
// hand out by n — call sites cannot reproduce the classic off-the-end chunk
// bug by hand-rolling the arithmetic.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp returns the effective worker count for n jobs: workers (or
// GOMAXPROCS when workers <= 0) capped at n, and at least 1. Callers that
// allocate per-worker state should size it with Clamp's result and pass the
// same values to Chunked or Drain.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Chunked splits [0, n) into one contiguous chunk per worker and runs
// fn(w, lo, hi) for each, worker w owning chunk w. It returns the number of
// chunks actually run — every returned w is in [0, result) and every chunk
// is non-empty. The calling goroutine runs chunk 0; workers <= 1 (after
// capping at n) runs everything inline.
func Chunked(n, workers int, fn func(w, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return 1
	}
	chunk := (n + workers - 1) / workers
	chunks := (n + chunk - 1) / chunk
	var wg sync.WaitGroup
	for w := 1; w < chunks; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	fn(0, 0, chunk)
	wg.Wait()
	return chunks
}

// Drain runs fn(w, i) for every job i in [0, n), with up to `workers`
// goroutines pulling jobs from a shared counter — load-balanced even when
// job costs are skewed. Worker ids w are dense in [0, workers'), workers'
// being the returned count, so callers can give each worker private state
// indexed by w. The calling goroutine participates as worker 0;
// workers <= 1 (after capping at n) runs everything inline.
func Drain(n, workers int, fn func(w, i int)) int {
	if n <= 0 {
		return 0
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(0, i)
	}
	wg.Wait()
	return workers
}
