package serve

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lshensemble"
	"lshensemble/internal/obs"
)

func testServerWith(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	const seed = 1
	idx, err := lshensemble.BuildLive(nil, lshensemble.LiveOptions{
		Options:       lshensemble.Options{NumHash: 256, RMax: 8, NumPartitions: 4},
		SealThreshold: 8,
		MaxSegments:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	s := NewWith(idx, lshensemble.NewHasher(256, seed), seed, "", opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsEndpoint drives traffic through every query entry point and
// checks the scrape exposes the HTTP middleware families, the live-query
// latency histograms and the index shape/planner families with moving
// values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, "")
	base := ts.URL
	seedCorpus(t, base)
	var qr QueryResponse
	post(t, base+"/query", QueryRequest{Values: []string{"Ontario", "Quebec"}, Threshold: 0.9}, http.StatusOK, &qr)
	var tr TopKResponse
	post(t, base+"/query/topk", TopKRequest{Values: []string{"Ontario", "Quebec"}, K: 2}, http.StatusOK, &tr)
	var br BatchResponse
	post(t, base+"/query/batch", BatchRequest{Queries: []QueryRequest{
		{Values: []string{"Ontario"}}, {Values: []string{"Toronto", "Montreal"}},
	}}, http.StatusOK, &br)
	post(t, base+"/query", QueryRequest{}, http.StatusBadRequest, nil)

	text := scrape(t, base)
	for _, want := range []string{
		`lshensembled_http_requests_total{code="2xx",endpoint="query"} `,
		`lshensembled_http_requests_total{code="4xx",endpoint="query"} 1`,
		`lshensembled_http_request_seconds_bucket{endpoint="query",le="+Inf"} `,
		`lshensembled_http_in_flight `,
		`lshensembled_live_query_seconds_count{op="query"} 1`,
		`lshensembled_live_query_seconds_count{op="topk"} 1`,
		`lshensembled_live_query_seconds_count{op="batch"} 1`,
		`lshensembled_live_domains 3`,
		`lshensembled_planner_segments_total{decision="probed"} `,
		`lshensembled_planner_result_cache_total{outcome="miss"} `,
		"# TYPE lshensembled_live_query_seconds histogram",
		"# TYPE lshensembled_live_seals_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Counters move: a second scrape after more traffic shows more requests.
	post(t, base+"/query", QueryRequest{Values: []string{"Ontario"}}, http.StatusOK, &qr)
	post(t, base+"/query", QueryRequest{Values: []string{"Ontario"}}, http.StatusOK, &qr)
	text2 := scrape(t, base)
	if !strings.Contains(text2, `lshensembled_live_query_seconds_count{op="query"} 3`) {
		t.Error("query latency count did not advance across scrapes")
	}
}

// TestHealthzStatic pins the liveness contract: a constant JSON body with
// no snapshot walk behind it.
func TestHealthzStatic(t *testing.T) {
	_, ts := testServer(t, "")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(b) != "{\"status\":\"ok\"}\n" {
		t.Fatalf("GET /healthz: status %d body %q", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz content type %q", ct)
	}
}

// TestDisableMetrics checks the opt-out: no registry, no /metrics route,
// handlers still serve.
func TestDisableMetrics(t *testing.T) {
	s, ts := testServerWith(t, Options{DisableMetrics: true})
	if s.Registry() != nil {
		t.Error("DisableMetrics left a registry attached")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with metrics disabled: status %d, want 404", resp.StatusCode)
	}
	var qr QueryResponse
	seedCorpus(t, ts.URL)
	post(t, ts.URL+"/query", QueryRequest{Values: []string{"Ontario"}}, http.StatusOK, &qr)
}

// TestSlowQueryLog checks the threshold gate: with a 1ns threshold every
// query is "slow" and the Warn line carries the trace id and the planner
// breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	_, ts := testServerWith(t, Options{Logger: logger, SlowQuery: time.Nanosecond})
	seedCorpus(t, ts.URL)

	req, err := http.NewRequest("POST", ts.URL+"/query",
		strings.NewReader(`{"values":["Ontario","Quebec"],"threshold":0.9}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "slowtest-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "slowtest-123" {
		t.Errorf("response trace id %q, want the inbound one echoed", got)
	}
	out := buf.String()
	for _, want := range []string{"slow query", "trace_id=slowtest-123", "op=query", "segments_probed="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %q in:\n%s", want, out)
		}
	}

	// Under the threshold nothing logs: raise it out of reach and re-query.
	buf.Reset()
	_, ts2 := testServerWith(t, Options{Logger: logger, SlowQuery: time.Hour})
	seedCorpus(t, ts2.URL)
	var qr QueryResponse
	post(t, ts2.URL+"/query", QueryRequest{Values: []string{"Ontario"}}, http.StatusOK, &qr)
	if s := buf.String(); strings.Contains(s, "slow query") {
		t.Errorf("sub-threshold query logged as slow:\n%s", s)
	}
}

// TestSharedRegistry checks two servers can export into one registry under
// distinct prefixes (the router pattern: router + local shard metrics on
// one /metrics page).
func TestSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	sA, _ := testServerWith(t, Options{Registry: reg, MetricsPrefix: "shard_a"})
	sB, _ := testServerWith(t, Options{Registry: reg, MetricsPrefix: "shard_b"})
	if sA.Registry() != reg || sB.Registry() != reg {
		t.Fatal("servers did not adopt the shared registry")
	}
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{"shard_a_live_domains", "shard_b_live_domains"} {
		if !strings.Contains(text, want) {
			t.Errorf("shared scrape missing %q", want)
		}
	}
}
