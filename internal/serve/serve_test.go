package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"lshensemble"
)

func testServer(t *testing.T, snapshotPath string) (*Server, *httptest.Server) {
	t.Helper()
	// Seed 1 matches the root-package fixture, whose band collisions at
	// the exact containment boundary are part of the proven baseline.
	const seed = 1
	opts := lshensemble.LiveOptions{
		Options:       lshensemble.Options{NumHash: 256, RMax: 8, NumPartitions: 4},
		SealThreshold: 8,
		MaxSegments:   2,
	}
	idx, err := lshensemble.BuildLive(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	s := New(idx, lshensemble.NewHasher(256, seed), seed, snapshotPath)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON request and decodes the JSON response into out,
// requiring the given status.
func post(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func get(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// seedCorpus adds the canonical fixture: provinces ⊂ locations, partners
// with a partial-overlap vendor column.
func seedCorpus(t *testing.T, base string) {
	t.Helper()
	provinces := []string{"Ontario", "Quebec", "British Columbia", "Alberta",
		"Manitoba", "Saskatchewan", "Nova Scotia", "New Brunswick",
		"Newfoundland and Labrador", "Prince Edward Island"}
	locations := append(append([]string{}, provinces...),
		"Toronto", "Montreal", "Vancouver", "Calgary", "Edmonton",
		"Ottawa", "Winnipeg", "Halifax", "Victoria", "Regina")
	partners := []string{"Acme Mining", "Maple Software", "Northern Rail",
		"Pacific Fisheries", "Prairie Agritech", "Atlantic Shipping"}
	for key, vals := range map[string][]string{
		"grants:province": provinces,
		"geo:location":    locations,
		"grants:partner":  partners,
	} {
		var resp AddResponse
		post(t, base+"/add", AddRequest{Key: key, Values: vals}, http.StatusOK, &resp)
		if resp.Replaced || resp.Size != len(vals) {
			t.Fatalf("add %s: %+v", key, resp)
		}
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	_, ts := testServer(t, "")
	base := ts.URL
	get(t, base+"/healthz", nil)
	seedCorpus(t, base)

	// Containment query: provinces ⊂ locations, so both columns match at
	// t* = 1.0 and partners does not.
	var q QueryResponse
	post(t, base+"/query", QueryRequest{
		Values: []string{"Ontario", "Quebec", "British Columbia", "Alberta",
			"Manitoba", "Saskatchewan", "Nova Scotia", "New Brunswick",
			"Newfoundland and Labrador", "Prince Edward Island"},
		Threshold: 1.0,
	}, http.StatusOK, &q)
	if !containsKey(q.Matches, "geo:location") || !containsKey(q.Matches, "grants:province") {
		t.Fatalf("query missed a superset: %v", q.Matches)
	}
	if containsKey(q.Matches, "grants:partner") {
		t.Fatalf("unrelated column matched: %v", q.Matches)
	}

	// Upsert: re-adding a key reports replaced.
	var add AddResponse
	post(t, base+"/add", AddRequest{Key: "grants:partner", Values: []string{"Acme Mining", "Maple Software"}}, http.StatusOK, &add)
	if !add.Replaced {
		t.Fatalf("re-add not reported as replacement: %+v", add)
	}

	// Delete hides the key from subsequent queries.
	var del DeleteResponse
	post(t, base+"/delete", DeleteRequest{Key: "geo:location"}, http.StatusOK, &del)
	if !del.Deleted {
		t.Fatal("delete of existing key reported false")
	}
	post(t, base+"/query", QueryRequest{Values: []string{"Ontario", "Quebec"}, Threshold: 1.0}, http.StatusOK, &q)
	if containsKey(q.Matches, "geo:location") {
		t.Fatalf("deleted key still matching: %v", q.Matches)
	}
	post(t, base+"/delete", DeleteRequest{Key: "geo:location"}, http.StatusOK, &del)
	if del.Deleted {
		t.Fatal("double delete reported true")
	}

	// Batch: rows in query order, same answers as single queries.
	var batch BatchResponse
	post(t, base+"/query/batch", BatchRequest{Queries: []QueryRequest{
		{Values: []string{"Ontario", "Quebec"}, Threshold: 1.0},
		{Values: []string{"Acme Mining", "Maple Software"}, Threshold: 0.9},
	}}, http.StatusOK, &batch)
	if len(batch.Rows) != 2 {
		t.Fatalf("%d rows", len(batch.Rows))
	}
	if !containsKey(batch.Rows[0].Matches, "grants:province") {
		t.Fatalf("batch row 0: %v", batch.Rows[0].Matches)
	}
	if !containsKey(batch.Rows[1].Matches, "grants:partner") {
		t.Fatalf("batch row 1: %v", batch.Rows[1].Matches)
	}

	// Stats reflect the mutations; compact purges the tombstones.
	var st StatsResponse
	get(t, base+"/stats", &st)
	if st.Domains != 2 || st.NumHash != 256 || st.Seed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	post(t, base+"/compact", nil, http.StatusOK, &st)
	if st.Tombstones != 0 || st.Buffered != 0 {
		t.Fatalf("compact left residue: %+v", st)
	}

	// Input validation.
	post(t, base+"/add", AddRequest{Key: "", Values: []string{"x"}}, http.StatusBadRequest, nil)
	post(t, base+"/add", AddRequest{Key: "k", Values: nil}, http.StatusBadRequest, nil)
	post(t, base+"/query", QueryRequest{Values: []string{"x"}, Threshold: 3}, http.StatusBadRequest, nil)
	post(t, base+"/query/batch", BatchRequest{}, http.StatusBadRequest, nil)
	post(t, base+"/save", nil, http.StatusNotFound, nil) // no -snapshot configured
}

func TestDaemonSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.snap")
	s, ts := testServer(t, path)
	seedCorpus(t, ts.URL)
	post(t, ts.URL+"/delete", DeleteRequest{Key: "grants:partner"}, http.StatusOK, nil)

	var saved SaveResponse
	post(t, ts.URL+"/save", nil, http.StatusOK, &saved)
	if saved.Path != path || saved.Bytes == 0 {
		t.Fatalf("save: %+v", saved)
	}

	// Warm restart: same seed loads and answers identically.
	loaded, err := LoadSnapshot(path, s.Seed(), lshensemble.LiveOptions{
		Options: lshensemble.Options{NumHash: 256, RMax: 8, NumPartitions: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 2 {
		t.Fatalf("reloaded Len = %d, want 2", loaded.Len())
	}
	ts2 := httptest.NewServer(New(loaded, s.Hasher(), s.Seed(), ""))
	defer ts2.Close()
	var q QueryResponse
	post(t, ts2.URL+"/query", QueryRequest{Values: []string{"Ontario", "Quebec"}, Threshold: 1.0}, http.StatusOK, &q)
	if !containsKey(q.Matches, "grants:province") || containsKey(q.Matches, "grants:partner") {
		t.Fatalf("reloaded daemon answers wrong: %v", q.Matches)
	}

	// A mismatched seed must be rejected, not silently return garbage.
	if _, err := LoadSnapshot(path, s.Seed()+1, lshensemble.LiveOptions{}); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestDaemonConcurrentTraffic(t *testing.T) {
	_, ts := testServer(t, "")
	base := ts.URL
	seedCorpus(t, base)
	// Mixed writers and readers through the real HTTP stack; the tiny
	// SealThreshold (8) keeps the compactor busy. Run with -race.
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("w%d:col%d", w, i)
				vals := []string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1), fmt.Sprintf("v%d", w)}
				b, _ := json.Marshal(AddRequest{Key: key, Values: vals})
				resp, err := http.Post(base+"/add", "application/json", bytes.NewReader(b))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if i%5 == 0 {
					b, _ := json.Marshal(DeleteRequest{Key: key})
					resp, err := http.Post(base+"/delete", "application/json", bytes.NewReader(b))
					if err != nil {
						done <- err
						return
					}
					resp.Body.Close()
				}
			}
			done <- nil
		}(w)
	}
	for r := 0; r < 4; r++ {
		go func() {
			for i := 0; i < 25; i++ {
				b, _ := json.Marshal(QueryRequest{Values: []string{"Ontario", "Quebec"}, Threshold: 1.0})
				resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(b))
				if err != nil {
					done <- err
					return
				}
				var q QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&q)
				resp.Body.Close()
				if err != nil {
					done <- err
					return
				}
				if !containsKey(q.Matches, "grants:province") {
					done <- fmt.Errorf("query lost grants:province mid-traffic: %v", q.Matches)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var st StatsResponse
	get(t, base+"/stats", &st)
	// 3 fixture columns plus, per writer, 25 added keys of which the 5
	// multiples of 5 were deleted again.
	if want := 3 + 4*20; st.Domains != want {
		t.Fatalf("Domains = %d, want %d", st.Domains, want)
	}
}

func TestDaemonTopKAndPlannerStats(t *testing.T) {
	_, ts := testServer(t, "")
	base := ts.URL
	seedCorpus(t, base)

	// Top-k: the provinces query ranks its superset columns first, with the
	// exact-superset province column at estimated containment 1.
	provinces := []string{"Ontario", "Quebec", "British Columbia", "Alberta",
		"Manitoba", "Saskatchewan", "Nova Scotia", "New Brunswick",
		"Newfoundland and Labrador", "Prince Edward Island"}
	var tk TopKResponse
	post(t, base+"/query/topk", TopKRequest{Values: provinces, K: 2}, http.StatusOK, &tk)
	if tk.Count != 2 || len(tk.Matches) != 2 {
		t.Fatalf("topk: %+v", tk)
	}
	// Both superset columns fully contain the query (est 1.0); the
	// unrelated partner column must not make the cut.
	for _, m := range tk.Matches {
		if m.Key != "grants:province" && m.Key != "geo:location" {
			t.Fatalf("topk ranked unrelated column: %+v", tk.Matches)
		}
	}
	if tk.Matches[0].EstContainment < tk.Matches[1].EstContainment {
		t.Fatalf("topk not ranked: %+v", tk.Matches)
	}
	// Default k kicks in when omitted; the corpus only has 3 columns.
	post(t, base+"/query/topk", TopKRequest{Values: provinces}, http.StatusOK, &tk)
	if tk.Count > 3 {
		t.Fatalf("default-k topk returned %d matches", tk.Count)
	}

	// Compact seals the buffer, so /stats must expose the segment's planner
	// metadata and the queries above must have moved the planner counters.
	var st StatsResponse
	post(t, base+"/compact", nil, http.StatusOK, &st)
	if len(st.SegmentDetail) == 0 {
		t.Fatalf("no segment_detail after compact: %+v", st)
	}
	d := st.SegmentDetail[0]
	if d.Entries == 0 || d.MinSize <= 0 || d.MaxSize < d.MinSize || d.MaxBound < d.MaxSize || d.BloomBytes == 0 {
		t.Fatalf("implausible segment detail: %+v", d)
	}
	var q QueryResponse
	post(t, base+"/query", QueryRequest{Values: provinces, Threshold: 1.0}, http.StatusOK, &q)
	post(t, base+"/query", QueryRequest{Values: provinces, Threshold: 1.0}, http.StatusOK, &q) // second hit caches
	get(t, base+"/stats", &st)
	p := st.Planner
	if p.SegmentsProbed+p.SegmentsRangePruned+p.SegmentsBloomPruned == 0 {
		t.Fatalf("planner made no segment decisions: %+v", p)
	}
	if p.ResultHits == 0 {
		t.Fatalf("repeated query did not hit the result cache: %+v", p)
	}

	// Input validation.
	post(t, base+"/query/topk", TopKRequest{Values: nil}, http.StatusBadRequest, nil)
	post(t, base+"/query/topk", TopKRequest{Values: []string{"x"}, K: -1}, http.StatusBadRequest, nil)
}

func containsKey(keys []string, k string) bool {
	for _, key := range keys {
		if key == k {
			return true
		}
	}
	return false
}
