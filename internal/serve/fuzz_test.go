package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"lshensemble"
)

// fuzzEndpoints are the POST routes that decode untrusted JSON bodies.
// /save and /compact take no body and are excluded — /save would write to
// disk on every fuzz iteration.
var fuzzEndpoints = []string{"/add", "/delete", "/query", "/query/topk", "/query/batch"}

// FuzzWireJSON drives the HTTP wire layer with hostile bodies against
// every JSON-decoding endpoint. The server's contract: never panic, and
// answer every request with a routable status — 2xx for accepted bodies,
// 4xx for rejected ones, never a 5xx (the index below can't fail on
// in-memory operations).
func FuzzWireJSON(f *testing.F) {
	opts := lshensemble.LiveOptions{
		Options:       lshensemble.Options{NumHash: 32, RMax: 4, NumPartitions: 2},
		SealThreshold: 8,
	}
	idx, err := lshensemble.BuildLive(nil, opts)
	if err != nil {
		f.Fatal(err)
	}
	defer idx.Close()
	s := New(idx, lshensemble.NewHasher(32, 1), 1, "")

	for i := range fuzzEndpoints {
		f.Add(i, []byte(`{"key":"k1","values":["a","b","c"]}`))
		f.Add(i, []byte(`{"values":["a","b"],"threshold":0.5,"size":2}`))
		f.Add(i, []byte(`{"values":["a"],"k":3}`))
		f.Add(i, []byte(`{"queries":[{"values":["a"]},{"values":["b"],"threshold":0.9}]}`))
		f.Add(i, []byte(`{}`))
		f.Add(i, []byte(``))
		f.Add(i, []byte(`{"values":[`))
		f.Add(i, []byte(`{"unknown_field":1}`))
		f.Add(i, []byte(`{"threshold":1e308}`))
	}
	f.Fuzz(func(t *testing.T, which int, body []byte) {
		ep := fuzzEndpoints[((which%len(fuzzEndpoints))+len(fuzzEndpoints))%len(fuzzEndpoints)]
		req := httptest.NewRequest(http.MethodPost, ep, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, req)
		if c := rr.Code; c >= 500 {
			t.Fatalf("%s answered %d for body %q", ep, c, body)
		}
		// Whatever the fuzzer did, the index must still answer /stats.
		srr := httptest.NewRecorder()
		s.ServeHTTP(srr, httptest.NewRequest(http.MethodGet, "/stats", nil))
		if srr.Code != http.StatusOK {
			t.Fatalf("/stats broken after %s %q: %d", ep, body, srr.Code)
		}
	})
}
