// Package serve is the HTTP face of one live LSH Ensemble index — the
// handler set behind both cmd/lshensembled (a single shard) and the shards
// that cmd/lshrouter scatters to. Extracting it from the daemon binary keeps
// exactly one implementation of the wire protocol: the router forwards and
// merges the same JSON types a shard serves, and the router's multi-shard
// tests spin up real shard handlers in-process via httptest.
//
// Queries hit the live index's lock-free snapshot path and therefore never
// contend with ingest; mutation endpoints go straight to Add/Delete, which
// never block queries either. Domain values are sketched server-side with
// the daemon's hash family, so clients speak raw strings and signatures
// never cross the wire.
//
// Every query handler threads the request context into the index
// (QueryContext / QueryTopKContext / QueryBatchContext), so a client that
// disconnects — or a router whose per-shard deadline expires — stops the
// in-flight work instead of burning CPU on an answer nobody will read.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"

	"lshensemble"
	"lshensemble/internal/segfile"
)

// Server serves one live index over HTTP. It implements http.Handler.
type Server struct {
	idx    *lshensemble.LiveIndex
	hasher *lshensemble.Hasher
	seed   uint64
	// snapshotPath is the only file the daemon will write ("" disables
	// /save); the path is fixed at startup, not client-controlled.
	snapshotPath string
	saveMu       sync.Mutex
	mux          *http.ServeMux
}

// New constructs the handler set over one live index. snapshotPath may be
// empty to disable /save.
func New(idx *lshensemble.LiveIndex, hasher *lshensemble.Hasher, seed uint64, snapshotPath string) *Server {
	s := &Server{idx: idx, hasher: hasher, seed: seed, snapshotPath: snapshotPath, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("POST /delete", s.handleDelete)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /query/topk", s.handleQueryTopK)
	s.mux.HandleFunc("POST /query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	s.mux.HandleFunc("POST /save", s.handleSave)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Index returns the live index the server fronts.
func (s *Server) Index() *lshensemble.LiveIndex { return s.idx }

// Hasher returns the server's hash family.
func (s *Server) Hasher() *lshensemble.Hasher { return s.hasher }

// Seed returns the hash-family seed embedded in snapshots.
func (s *Server) Seed() uint64 { return s.seed }

// --- wire types ---
//
// These are the shard protocol: the router speaks exactly these types when
// forwarding writes and scattering queries, and extends the responses with
// partial-result fields of its own (internal/cluster).

// AddRequest ingests one domain; values are sketched server-side.
type AddRequest struct {
	Key    string   `json:"key"`
	Values []string `json:"values"`
}

// AddResponse reports an ingest: whether an existing entry was replaced and
// the distinct-value count that was sketched.
type AddResponse struct {
	Replaced bool `json:"replaced"`
	Size     int  `json:"size"`
}

// DeleteRequest removes one domain by key.
type DeleteRequest struct {
	Key string `json:"key"`
}

// DeleteResponse reports whether the key was indexed.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// QueryRequest is one containment query over raw string values.
type QueryRequest struct {
	Values []string `json:"values"`
	// Threshold is the containment threshold t*; 0 means the 0.5 default.
	Threshold float64 `json:"threshold"`
	// Size optionally overrides |Q| (defaults to the distinct value count).
	Size int `json:"size"`
}

// QueryResponse lists the matching keys, sorted.
type QueryResponse struct {
	Matches []string `json:"matches"`
	Count   int      `json:"count"`
}

// TopKRequest is one ranked containment query.
type TopKRequest struct {
	Values []string `json:"values"`
	// K is the number of ranked results to return; 0 means 10.
	K int `json:"k"`
	// Size optionally overrides |Q| (defaults to the distinct value count).
	Size int `json:"size"`
}

// TopKMatch is one ranked answer.
type TopKMatch struct {
	Key string `json:"key"`
	// EstContainment is the signature-estimated containment used for the
	// ranking; exact scores require the raw domains.
	EstContainment float64 `json:"est_containment"`
}

// TopKResponse lists ranked matches, best first.
type TopKResponse struct {
	Matches []TopKMatch `json:"matches"`
	Count   int         `json:"count"`
}

// BatchRequest carries many queries answered in one round trip.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
	// Workers bounds the fan-out of the batch dispatch (0 = GOMAXPROCS).
	Workers int `json:"workers"`
}

// BatchResponse answers a BatchRequest row-by-row, in query order.
type BatchResponse struct {
	Rows []QueryResponse `json:"rows"`
}

// StatsResponse is the live index shape plus the immutable serving
// parameters a client needs to interoperate (signature length, seed).
type StatsResponse struct {
	lshensemble.LiveStats
	NumHash int    `json:"num_hash"`
	RMax    int    `json:"r_max"`
	Seed    uint64 `json:"seed"`
}

// SaveResponse reports a persisted snapshot.
type SaveResponse struct {
	Path  string `json:"path"`
	Bytes int    `json:"bytes"`
}

// ErrorResponse is the JSON error envelope of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

// MaxRequestBody caps request bodies: an /add or batch body larger than
// this is a client bug.
const MaxRequestBody = 64 << 20

// DecodeJSON decodes a bounded JSON request body into dst, writing a 400
// error response and returning false on malformed input.
func DecodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes err in the JSON error envelope with the given status.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req AddRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if req.Key == "" {
		WriteError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	if len(req.Values) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("values must be non-empty"))
		return
	}
	rec := lshensemble.SketchStrings(s.hasher, req.Key, req.Values)
	replaced, err := s.idx.Add(rec)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	WriteJSON(w, http.StatusOK, AddResponse{Replaced: replaced, Size: rec.Size})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if req.Key == "" {
		WriteError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	WriteJSON(w, http.StatusOK, DeleteResponse{Deleted: s.idx.Delete(req.Key)})
}

// sketchQuery turns one wire query into (signature, size, threshold).
func (s *Server) sketchQuery(q *QueryRequest) (lshensemble.BatchQuery, error) {
	if len(q.Values) == 0 {
		return lshensemble.BatchQuery{}, errors.New("values must be non-empty")
	}
	rec := lshensemble.SketchStrings(s.hasher, "query", q.Values)
	size := rec.Size
	if q.Size > 0 {
		size = q.Size
	}
	t := q.Threshold
	if t == 0 {
		t = 0.5
	}
	if t < 0 || t > 1 {
		return lshensemble.BatchQuery{}, fmt.Errorf("threshold %v out of range (0, 1]", t)
	}
	return lshensemble.BatchQuery{Sig: rec.Sig, Size: size, Threshold: t}, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	q, err := s.sketchQuery(&req)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	matches, err := s.idx.QueryContext(r.Context(), q.Sig, q.Size, q.Threshold)
	if err != nil {
		// The request context is canceled: the client is gone, nobody will
		// read a body. Returning without writing lets the server tear the
		// connection down.
		return
	}
	sort.Strings(matches)
	WriteJSON(w, http.StatusOK, QueryResponse{Matches: matches, Count: len(matches)})
}

func (s *Server) handleQueryTopK(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if len(req.Values) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("values must be non-empty"))
		return
	}
	if req.K < 0 {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("k %d must be positive", req.K))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	rec := lshensemble.SketchStrings(s.hasher, "query", req.Values)
	size := rec.Size
	if req.Size > 0 {
		size = req.Size
	}
	ranked, err := s.idx.QueryTopKContext(r.Context(), rec.Sig, size, k)
	if err != nil {
		return // canceled: client gone
	}
	resp := TopKResponse{Matches: make([]TopKMatch, len(ranked)), Count: len(ranked)}
	for i, m := range ranked {
		resp.Matches[i] = TopKMatch{Key: m.Key, EstContainment: m.EstContainment}
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("queries must be non-empty"))
		return
	}
	queries := make([]lshensemble.BatchQuery, len(req.Queries))
	for i := range req.Queries {
		q, err := s.sketchQuery(&req.Queries[i])
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries[i] = q
	}
	rows, err := s.idx.QueryBatchContext(r.Context(), queries, req.Workers)
	if err != nil {
		return // canceled: client gone, stop burning CPU on the batch
	}
	resp := BatchResponse{Rows: make([]QueryResponse, len(rows))}
	for i, row := range rows {
		sort.Strings(row)
		resp.Rows[i] = QueryResponse{Matches: row, Count: len(row)}
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	o := s.idx.Options()
	WriteJSON(w, http.StatusOK, StatsResponse{
		LiveStats: s.idx.Stats(),
		NumHash:   o.NumHash,
		RMax:      o.RMax,
		Seed:      s.seed,
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	s.idx.Compact()
	s.handleStats(w, nil)
}

func (s *Server) handleSave(w http.ResponseWriter, _ *http.Request) {
	if s.snapshotPath == "" {
		WriteError(w, http.StatusNotFound, errors.New("no -snapshot path configured"))
		return
	}
	n, err := s.SaveSnapshot()
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSON(w, http.StatusOK, SaveResponse{Path: s.snapshotPath, Bytes: n})
}

// --- snapshot files ---
//
// A daemon snapshot prefixes the live-index encoding with the hash-family
// seed: signatures from a different family are incomparable garbage, so the
// seed must round-trip with the data and is verified on load.

var snapshotMagic = [4]byte{'L', 'S', 'H', 'D'}

// SaveSnapshot writes the current snapshot to the configured path via a
// same-directory fsynced temp file + atomic rename, so a crash at any point
// leaves either the previous snapshot or the new one, never a torn file.
// Once the manifest is durable, segment files retired since the previous
// save are deleted. It returns the byte count written.
func (s *Server) SaveSnapshot() (int, error) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	buf := append([]byte(nil), snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = s.idx.AppendBinary(buf)
	if err := segfile.WriteAtomic(s.snapshotPath, buf); err != nil {
		return 0, err
	}
	// The freshly renamed manifest no longer references retired segment
	// files, so they are safe to delete now — and only now.
	s.idx.CollectGarbage()
	return len(buf), nil
}

// LoadSnapshot reads a daemon snapshot, verifying the hash-family seed.
// Shard handoff rides on this: a new shard boots from any shard's snapshot
// (or manifest + segment files) written with the same seed.
func LoadSnapshot(path string, seed uint64, opts lshensemble.LiveOptions) (*lshensemble.LiveIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var header [12]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return nil, fmt.Errorf("reading snapshot header: %w", err)
	}
	if [4]byte(header[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%s is not a lshensembled snapshot", path)
	}
	if saved := binary.LittleEndian.Uint64(header[4:]); saved != seed {
		return nil, fmt.Errorf("snapshot hash seed %d != configured -seed %d (signatures would be incomparable)", saved, seed)
	}
	return lshensemble.LoadLive(f, opts)
}
