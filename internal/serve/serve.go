// Package serve is the HTTP face of one live LSH Ensemble index — the
// handler set behind both cmd/lshensembled (a single shard) and the shards
// that cmd/lshrouter scatters to. Extracting it from the daemon binary keeps
// exactly one implementation of the wire protocol: the router forwards and
// merges the same JSON types a shard serves, and the router's multi-shard
// tests spin up real shard handlers in-process via httptest.
//
// Queries hit the live index's lock-free snapshot path and therefore never
// contend with ingest; mutation endpoints go straight to Add/Delete, which
// never block queries either. Domain values are sketched server-side with
// the daemon's hash family, so clients speak raw strings and signatures
// never cross the wire.
//
// Every query handler threads the request context into the index
// (QueryContext / QueryTopKContext / QueryBatchContext), so a client that
// disconnects — or a router whose per-shard deadline expires — stops the
// in-flight work instead of burning CPU on an answer nobody will read.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"lshensemble"
	"lshensemble/internal/obs"
	"lshensemble/internal/segfile"
)

// Server serves one live index over HTTP. It implements http.Handler.
type Server struct {
	idx    *lshensemble.LiveIndex
	hasher *lshensemble.Hasher
	seed   uint64
	// snapshotPath is the only file the daemon will write ("" disables
	// /save); the path is fixed at startup, not client-controlled.
	snapshotPath string
	saveMu       sync.Mutex
	mux          *http.ServeMux

	logger    *slog.Logger
	reg       *obs.Registry
	httpm     *obs.HTTPMetrics
	slowQuery time.Duration
}

// Options configures the server's observability. The zero value serves with
// metrics on (a fresh registry), slog.Default() logging, and slow-query
// logging off.
type Options struct {
	// Logger receives access logs (Debug), 5xx logs (Error) and slow-query
	// logs (Warn), all keyed by trace_id. Nil means slog.Default().
	Logger *slog.Logger
	// Registry receives the server's metrics. Nil allocates a private
	// registry (exposed via Registry()); ignored when DisableMetrics.
	Registry *obs.Registry
	// MetricsPrefix namespaces every metric family; default "lshensembled".
	MetricsPrefix string
	// SlowQuery, when positive, logs any query/topk/batch slower than the
	// threshold at Warn with the planner's per-query trace.
	SlowQuery time.Duration
	// DisableMetrics turns off metric collection and the /metrics endpoint
	// entirely — the handlers run with zero instrumentation overhead.
	DisableMetrics bool
}

// New constructs the handler set over one live index with default
// observability (metrics on, slog.Default()). snapshotPath may be empty to
// disable /save.
func New(idx *lshensemble.LiveIndex, hasher *lshensemble.Hasher, seed uint64, snapshotPath string) *Server {
	return NewWith(idx, hasher, seed, snapshotPath, Options{})
}

// NewWith is New with explicit observability options.
func NewWith(idx *lshensemble.LiveIndex, hasher *lshensemble.Hasher, seed uint64, snapshotPath string, opts Options) *Server {
	s := &Server{idx: idx, hasher: hasher, seed: seed, snapshotPath: snapshotPath, mux: http.NewServeMux()}
	s.logger = opts.Logger
	if s.logger == nil {
		s.logger = slog.Default()
	}
	s.slowQuery = opts.SlowQuery
	prefix := opts.MetricsPrefix
	if prefix == "" {
		prefix = "lshensembled"
	}
	if !opts.DisableMetrics {
		s.reg = opts.Registry
		if s.reg == nil {
			s.reg = obs.NewRegistry()
		}
		s.httpm = obs.NewHTTPMetrics(s.reg, prefix, s.logger)
		s.registerIndexMetrics(prefix)
	}
	s.handle("POST /add", "add", s.handleAdd)
	s.handle("POST /delete", "delete", s.handleDelete)
	s.handle("POST /query", "query", s.handleQuery)
	s.handle("POST /query/topk", "query_topk", s.handleQueryTopK)
	s.handle("POST /query/batch", "query_batch", s.handleQueryBatch)
	s.handle("GET /stats", "stats", s.handleStats)
	s.handle("POST /compact", "compact", s.handleCompact)
	s.handle("POST /save", "save", s.handleSave)
	// Liveness must stay cheap: a static body, no snapshot walk, no JSON
	// encoder — health checkers poll this at high frequency.
	s.mux.HandleFunc("GET /healthz", handleHealthz)
	if s.reg != nil {
		s.mux.Handle("GET /metrics", s.reg.Handler())
	}
	return s
}

var healthBody = []byte("{\"status\":\"ok\"}\n")

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(healthBody)
}

// handle mounts h at pattern, wrapped in the HTTP metrics middleware when
// metrics are enabled (a nil *HTTPMetrics passes the handler through).
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.httpm.Wrap(endpoint, h))
}

// queryObserver adapts per-kind live-index latencies onto obs histograms.
// Installed via LiveIndex.SetObserver; must stay allocation-free.
type queryObserver struct {
	hists [3]*obs.Histogram // indexed by LiveQueryKind
}

func (o *queryObserver) ObserveQuery(kind lshensemble.LiveQueryKind, d time.Duration) {
	if int(kind) < len(o.hists) {
		o.hists[kind].Observe(d.Seconds())
	}
}

// registerIndexMetrics exports the live index: query latency histograms fed
// by the index's observer hook, and shape/planner counters mirrored from
// Stats() at scrape time (the atomics behind Stats are the source of truth;
// scraping just snapshots them, so the query path pays nothing extra).
func (s *Server) registerIndexMetrics(prefix string) {
	qo := &queryObserver{}
	for _, k := range []lshensemble.LiveQueryKind{lshensemble.KindLiveQuery, lshensemble.KindLiveTopK, lshensemble.KindLiveBatch} {
		qo.hists[k] = s.reg.Histogram(prefix+"_live_query_seconds",
			"Live index query latency by entry point (batch = whole batch).",
			nil, obs.L("op", k.String()))
	}
	s.idx.SetObserver(qo)

	domains := s.reg.Gauge(prefix+"_live_domains", "Live domains indexed (tombstoned entries excluded).")
	segments := s.reg.Gauge(prefix+"_live_segments", "Sealed segments in the current snapshot.")
	buffered := s.reg.Gauge(prefix+"_live_buffered_entries", "Entries in the unsealed in-memory buffer.")
	tombstones := s.reg.Gauge(prefix+"_live_tombstones", "Pending tombstones not yet compacted away.")
	resident := s.reg.Gauge(prefix+"_live_segment_resident_bytes", "Estimated heap-resident bytes across sealed segments.")
	fileBytes := s.reg.Gauge(prefix+"_live_segment_file_bytes", "On-disk bytes across spilled segment files.")
	seals := s.reg.Counter(prefix+"_live_seals_total", "Buffer seals completed by the compactor.")
	merges := s.reg.Counter(prefix+"_live_merges_total", "Segment merges completed by the compactor.")
	spillErrs := s.reg.Counter(prefix+"_live_spill_errors_total", "Segment spills that failed (segments kept serving from heap).")
	segProbed := s.reg.Counter(prefix+"_planner_segments_total", "Per-(query, segment) planner decisions.", obs.L("decision", "probed"))
	segRange := s.reg.Counter(prefix+"_planner_segments_total", "Per-(query, segment) planner decisions.", obs.L("decision", "range_pruned"))
	segBloom := s.reg.Counter(prefix+"_planner_segments_total", "Per-(query, segment) planner decisions.", obs.L("decision", "bloom_pruned"))
	planHits := s.reg.Counter(prefix+"_planner_plan_cache_total", "Plan-cache lookups by outcome.", obs.L("outcome", "hit"))
	planMisses := s.reg.Counter(prefix+"_planner_plan_cache_total", "Plan-cache lookups by outcome.", obs.L("outcome", "miss"))
	resHits := s.reg.Counter(prefix+"_planner_result_cache_total", "Result-cache lookups by outcome.", obs.L("outcome", "hit"))
	resMisses := s.reg.Counter(prefix+"_planner_result_cache_total", "Result-cache lookups by outcome.", obs.L("outcome", "miss"))
	topkExits := s.reg.Counter(prefix+"_planner_topk_early_exits_total", "Top-k queries that stopped before visiting every segment.")
	bufScans := s.reg.Counter(prefix+"_planner_buffer_total", "Unsealed-buffer decisions.", obs.L("decision", "scanned"))
	bufBloom := s.reg.Counter(prefix+"_planner_buffer_total", "Unsealed-buffer decisions.", obs.L("decision", "bloom_pruned"))
	s.reg.OnScrape(func() {
		st := s.idx.Stats()
		domains.Set(int64(st.Domains))
		segments.Set(int64(len(st.Segments)))
		buffered.Set(int64(st.Buffered))
		tombstones.Set(int64(st.Tombstones))
		var res, fb int64
		for _, sd := range st.SegmentDetail {
			res += sd.ResidentBytes
			fb += sd.FileBytes
		}
		resident.Set(res)
		fileBytes.Set(fb)
		seals.Store(st.Seals)
		merges.Store(st.Merges)
		spillErrs.Store(st.SpillErrors)
		segProbed.Store(st.Planner.SegmentsProbed)
		segRange.Store(st.Planner.SegmentsRangePruned)
		segBloom.Store(st.Planner.SegmentsBloomPruned)
		planHits.Store(st.Planner.PlanHits)
		planMisses.Store(st.Planner.PlanMisses)
		resHits.Store(st.Planner.ResultHits)
		resMisses.Store(st.Planner.ResultMisses)
		topkExits.Store(st.Planner.TopKEarlyExits)
		bufScans.Store(st.Planner.BufferScans)
		bufBloom.Store(st.Planner.BufferBloomPruned)
	})
}

// Registry returns the server's metric registry, nil when metrics are
// disabled. The daemon mirrors it onto the debug listener.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Index returns the live index the server fronts.
func (s *Server) Index() *lshensemble.LiveIndex { return s.idx }

// Hasher returns the server's hash family.
func (s *Server) Hasher() *lshensemble.Hasher { return s.hasher }

// Seed returns the hash-family seed embedded in snapshots.
func (s *Server) Seed() uint64 { return s.seed }

// --- wire types ---
//
// These are the shard protocol: the router speaks exactly these types when
// forwarding writes and scattering queries, and extends the responses with
// partial-result fields of its own (internal/cluster).

// AddRequest ingests one domain; values are sketched server-side.
type AddRequest struct {
	Key    string   `json:"key"`
	Values []string `json:"values"`
}

// AddResponse reports an ingest: whether an existing entry was replaced and
// the distinct-value count that was sketched.
type AddResponse struct {
	Replaced bool `json:"replaced"`
	Size     int  `json:"size"`
}

// DeleteRequest removes one domain by key.
type DeleteRequest struct {
	Key string `json:"key"`
}

// DeleteResponse reports whether the key was indexed.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// QueryRequest is one containment query over raw string values.
type QueryRequest struct {
	Values []string `json:"values"`
	// Threshold is the containment threshold t*; 0 means the 0.5 default.
	Threshold float64 `json:"threshold"`
	// Size optionally overrides |Q| (defaults to the distinct value count).
	Size int `json:"size"`
}

// QueryResponse lists the matching keys, sorted.
type QueryResponse struct {
	Matches []string `json:"matches"`
	Count   int      `json:"count"`
}

// TopKRequest is one ranked containment query.
type TopKRequest struct {
	Values []string `json:"values"`
	// K is the number of ranked results to return; 0 means 10.
	K int `json:"k"`
	// Size optionally overrides |Q| (defaults to the distinct value count).
	Size int `json:"size"`
}

// TopKMatch is one ranked answer.
type TopKMatch struct {
	Key string `json:"key"`
	// EstContainment is the signature-estimated containment used for the
	// ranking; exact scores require the raw domains.
	EstContainment float64 `json:"est_containment"`
}

// TopKResponse lists ranked matches, best first.
type TopKResponse struct {
	Matches []TopKMatch `json:"matches"`
	Count   int         `json:"count"`
}

// BatchRequest carries many queries answered in one round trip.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
	// Workers bounds the fan-out of the batch dispatch (0 = GOMAXPROCS).
	Workers int `json:"workers"`
}

// BatchResponse answers a BatchRequest row-by-row, in query order.
type BatchResponse struct {
	Rows []QueryResponse `json:"rows"`
}

// StatsResponse is the live index shape plus the immutable serving
// parameters a client needs to interoperate (signature length, seed).
type StatsResponse struct {
	lshensemble.LiveStats
	NumHash int    `json:"num_hash"`
	RMax    int    `json:"r_max"`
	Seed    uint64 `json:"seed"`
}

// SaveResponse reports a persisted snapshot.
type SaveResponse struct {
	Path  string `json:"path"`
	Bytes int    `json:"bytes"`
}

// ErrorResponse is the JSON error envelope of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

// MaxRequestBody caps request bodies: an /add or batch body larger than
// this is a client bug.
const MaxRequestBody = 64 << 20

// DecodeJSON decodes a bounded JSON request body into dst, writing a 400
// error response and returning false on malformed input.
func DecodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes err in the JSON error envelope with the given status.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req AddRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if req.Key == "" {
		WriteError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	if len(req.Values) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("values must be non-empty"))
		return
	}
	rec := lshensemble.SketchStrings(s.hasher, req.Key, req.Values)
	replaced, err := s.idx.Add(rec)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	WriteJSON(w, http.StatusOK, AddResponse{Replaced: replaced, Size: rec.Size})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if req.Key == "" {
		WriteError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	WriteJSON(w, http.StatusOK, DeleteResponse{Deleted: s.idx.Delete(req.Key)})
}

// sketchQuery turns one wire query into (signature, size, threshold).
func (s *Server) sketchQuery(q *QueryRequest) (lshensemble.BatchQuery, error) {
	if len(q.Values) == 0 {
		return lshensemble.BatchQuery{}, errors.New("values must be non-empty")
	}
	rec := lshensemble.SketchStrings(s.hasher, "query", q.Values)
	size := rec.Size
	if q.Size > 0 {
		size = q.Size
	}
	t := q.Threshold
	if t == 0 {
		t = 0.5
	}
	if t < 0 || t > 1 {
		return lshensemble.BatchQuery{}, fmt.Errorf("threshold %v out of range (0, 1]", t)
	}
	return lshensemble.BatchQuery{Sig: rec.Sig, Size: size, Threshold: t}, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	q, err := s.sketchQuery(&req)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	var tr *lshensemble.LiveQueryTrace
	var start time.Time
	if s.slowQuery > 0 {
		tr = new(lshensemble.LiveQueryTrace)
		ctx = lshensemble.WithLiveQueryTrace(ctx, tr)
		start = time.Now()
	}
	matches, err := s.idx.QueryContext(ctx, q.Sig, q.Size, q.Threshold)
	if err != nil {
		// The request context is canceled: the client is gone, nobody will
		// read a body. Returning without writing lets the server tear the
		// connection down.
		return
	}
	s.noteSlow(r, "query", start, tr)
	sort.Strings(matches)
	WriteJSON(w, http.StatusOK, QueryResponse{Matches: matches, Count: len(matches)})
}

func (s *Server) handleQueryTopK(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if len(req.Values) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("values must be non-empty"))
		return
	}
	if req.K < 0 {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("k %d must be positive", req.K))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	rec := lshensemble.SketchStrings(s.hasher, "query", req.Values)
	size := rec.Size
	if req.Size > 0 {
		size = req.Size
	}
	var start time.Time
	if s.slowQuery > 0 {
		start = time.Now()
	}
	ranked, err := s.idx.QueryTopKContext(r.Context(), rec.Sig, size, k)
	if err != nil {
		return // canceled: client gone
	}
	if s.slowQuery > 0 {
		s.noteSlow(r, "topk", start, nil)
	}
	resp := TopKResponse{Matches: make([]TopKMatch, len(ranked)), Count: len(ranked)}
	for i, m := range ranked {
		resp.Matches[i] = TopKMatch{Key: m.Key, EstContainment: m.EstContainment}
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("queries must be non-empty"))
		return
	}
	queries := make([]lshensemble.BatchQuery, len(req.Queries))
	for i := range req.Queries {
		q, err := s.sketchQuery(&req.Queries[i])
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries[i] = q
	}
	var start time.Time
	if s.slowQuery > 0 {
		start = time.Now()
	}
	rows, err := s.idx.QueryBatchContext(r.Context(), queries, req.Workers)
	if err != nil {
		return // canceled: client gone, stop burning CPU on the batch
	}
	if s.slowQuery > 0 {
		s.noteSlow(r, "batch", start, nil)
	}
	resp := BatchResponse{Rows: make([]QueryResponse, len(rows))}
	for i, row := range rows {
		sort.Strings(row)
		resp.Rows[i] = QueryResponse{Matches: row, Count: len(row)}
	}
	WriteJSON(w, http.StatusOK, resp)
}

// noteSlow logs one Warn line for a query that crossed the slow-query
// threshold, keyed by trace_id. Single queries carry the planner's per-query
// breakdown; topk/batch report latency only (their fan-out paths don't fill
// a trace).
func (s *Server) noteSlow(r *http.Request, op string, start time.Time, tr *lshensemble.LiveQueryTrace) {
	if s.slowQuery <= 0 || start.IsZero() {
		return
	}
	elapsed := time.Since(start)
	if elapsed < s.slowQuery {
		return
	}
	attrs := []slog.Attr{
		slog.String("trace_id", obs.TraceID(r.Context())),
		slog.String("op", op),
		slog.Duration("elapsed", elapsed),
	}
	if tr != nil {
		attrs = append(attrs,
			slog.Bool("result_cache_hit", tr.ResultCacheHit),
			slog.Int("segments", tr.Segments),
			slog.Int("segments_probed", tr.SegmentsProbed),
			slog.Int("segments_range_pruned", tr.SegmentsRangePruned),
			slog.Int("segments_bloom_pruned", tr.SegmentsBloomPruned),
			slog.Int("buffered", tr.Buffered),
			slog.Bool("buffer_scanned", tr.BufferScanned),
			slog.Bool("buffer_bloom_skipped", tr.BufferBloomSkipped),
		)
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query", attrs...)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	o := s.idx.Options()
	WriteJSON(w, http.StatusOK, StatsResponse{
		LiveStats: s.idx.Stats(),
		NumHash:   o.NumHash,
		RMax:      o.RMax,
		Seed:      s.seed,
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	s.idx.Compact()
	s.handleStats(w, nil)
}

func (s *Server) handleSave(w http.ResponseWriter, _ *http.Request) {
	if s.snapshotPath == "" {
		WriteError(w, http.StatusNotFound, errors.New("no -snapshot path configured"))
		return
	}
	n, err := s.SaveSnapshot()
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSON(w, http.StatusOK, SaveResponse{Path: s.snapshotPath, Bytes: n})
}

// --- snapshot files ---
//
// A daemon snapshot prefixes the live-index encoding with the hash-family
// seed: signatures from a different family are incomparable garbage, so the
// seed must round-trip with the data and is verified on load.

var snapshotMagic = [4]byte{'L', 'S', 'H', 'D'}

// SaveSnapshot writes the current snapshot to the configured path via a
// same-directory fsynced temp file + atomic rename, so a crash at any point
// leaves either the previous snapshot or the new one, never a torn file.
// Once the manifest is durable, segment files retired since the previous
// save are deleted. It returns the byte count written.
func (s *Server) SaveSnapshot() (int, error) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	buf := append([]byte(nil), snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = s.idx.AppendBinary(buf)
	if err := segfile.WriteAtomic(s.snapshotPath, buf); err != nil {
		return 0, err
	}
	// The freshly renamed manifest no longer references retired segment
	// files, so they are safe to delete now — and only now.
	s.idx.CollectGarbage()
	return len(buf), nil
}

// LoadSnapshot reads a daemon snapshot, verifying the hash-family seed.
// Shard handoff rides on this: a new shard boots from any shard's snapshot
// (or manifest + segment files) written with the same seed.
func LoadSnapshot(path string, seed uint64, opts lshensemble.LiveOptions) (*lshensemble.LiveIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var header [12]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return nil, fmt.Errorf("reading snapshot header: %w", err)
	}
	if [4]byte(header[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%s is not a lshensembled snapshot", path)
	}
	if saved := binary.LittleEndian.Uint64(header[4:]); saved != seed {
		return nil, fmt.Errorf("snapshot hash seed %d != configured -seed %d (signatures would be incomparable)", saved, seed)
	}
	return lshensemble.LoadLive(f, opts)
}
