package exact

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"lshensemble/internal/xrand"
)

func TestScoresKnown(t *testing.T) {
	e := Build([]Domain{
		{Key: "x", Values: []uint64{1, 2, 3, 4}},
		{Key: "y", Values: []uint64{3, 4, 5}},
		{Key: "z", Values: []uint64{100}},
	})
	scores := e.Scores([]uint64{1, 2, 3, 4}) // the "x" domain as query
	if got := scores[0]; got != 1.0 {
		t.Fatalf("t(Q, x) = %v, want 1", got)
	}
	if got := scores[1]; got != 0.5 {
		t.Fatalf("t(Q, y) = %v, want 0.5", got)
	}
	if _, ok := scores[2]; ok {
		t.Fatal("z has no overlap, should be absent")
	}
}

func TestQueryThreshold(t *testing.T) {
	e := Build([]Domain{
		{Key: "x", Values: []uint64{1, 2, 3, 4}},
		{Key: "y", Values: []uint64{3, 4, 5}},
	})
	got := e.Query([]uint64{1, 2, 3, 4}, 0.6)
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("Query = %v, want [x]", got)
	}
	got = e.Query([]uint64{1, 2, 3, 4}, 0.5)
	sort.Strings(got)
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Query = %v, want [x y]", got)
	}
}

func TestDuplicateValuesIgnored(t *testing.T) {
	e := Build([]Domain{{Key: "x", Values: []uint64{1, 1, 2, 2}}})
	if e.Size(0) != 2 {
		t.Fatalf("dedup size = %d, want 2", e.Size(0))
	}
	scores := e.Scores([]uint64{1, 1, 3, 3})
	// Query dedups to {1, 3}; overlap {1} → 0.5.
	if got := scores[0]; got != 0.5 {
		t.Fatalf("score = %v, want 0.5", got)
	}
}

func TestEmptyQuery(t *testing.T) {
	e := Build([]Domain{{Key: "x", Values: []uint64{1}}})
	if s := e.Scores(nil); s != nil {
		t.Fatal("empty query should give nil scores")
	}
	if got := e.Query(nil, 0.5); len(got) != 0 {
		t.Fatal("empty query should match nothing")
	}
}

func TestTruthMatchesQuery(t *testing.T) {
	e := Build([]Domain{
		{Key: "x", Values: []uint64{1, 2}},
		{Key: "y", Values: []uint64{2, 3}},
	})
	q := []uint64{2}
	truth := e.Truth(q, 1.0)
	res := e.Query(q, 1.0)
	if len(truth) != len(res) {
		t.Fatalf("truth %v vs query %v", truth, res)
	}
	for _, k := range res {
		if !truth[k] {
			t.Fatalf("%s in Query but not Truth", k)
		}
	}
}

// naiveContainment is the O(|Q|·|X|) oracle the engine must agree with.
func naiveContainment(q, x []uint64) float64 {
	qs := map[uint64]struct{}{}
	for _, v := range q {
		qs[v] = struct{}{}
	}
	xs := map[uint64]struct{}{}
	for _, v := range x {
		xs[v] = struct{}{}
	}
	hit := 0
	for v := range qs {
		if _, ok := xs[v]; ok {
			hit++
		}
	}
	if len(qs) == 0 {
		return 0
	}
	return float64(hit) / float64(len(qs))
}

func TestAgainstNaiveOracle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nd := 2 + rng.Intn(20)
		domains := make([]Domain, nd)
		for i := range domains {
			n := 1 + rng.Intn(30)
			vals := make([]uint64, n)
			for j := range vals {
				vals[j] = uint64(rng.Intn(40)) // small universe → overlaps
			}
			domains[i] = Domain{Key: string(rune('a' + i)), Values: vals}
		}
		e := Build(domains)
		q := make([]uint64, 1+rng.Intn(20))
		for j := range q {
			q[j] = uint64(rng.Intn(40))
		}
		scores := e.Scores(q)
		for i, d := range domains {
			want := naiveContainment(q, d.Values)
			got := scores[uint32(i)]
			if math.Abs(got-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLenAndAccessors(t *testing.T) {
	e := Build([]Domain{{Key: "a", Values: []uint64{1}}, {Key: "b", Values: []uint64{2, 3}}})
	if e.Len() != 2 {
		t.Fatalf("Len = %d", e.Len())
	}
	if e.Key(1) != "b" || e.Size(1) != 2 {
		t.Fatal("accessors wrong")
	}
}

// TestScoresBatchMatchesSerial checks the parallel scan against per-query
// Scores over a corpus with heavy value sharing.
func TestScoresBatchMatchesSerial(t *testing.T) {
	var domains []Domain
	for i := 0; i < 60; i++ {
		vals := make([]uint64, 0, 50+i)
		for v := 0; v < 50+i; v++ {
			vals = append(vals, uint64(v*(1+i%3)))
		}
		domains = append(domains, Domain{Key: fmt.Sprintf("d%02d", i), Values: vals})
	}
	e := Build(domains)
	queries := make([][]uint64, len(domains))
	for i, d := range domains {
		queries[i] = d.Values
	}
	want := make([]map[uint32]float64, len(queries))
	for i, q := range queries {
		want[i] = e.Scores(q)
	}
	for _, workers := range []int{0, 1, 2, 7, 100} {
		got := e.ScoresBatch(queries, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d scored domains, want %d",
					workers, i, len(got[i]), len(want[i]))
			}
			for id, s := range want[i] {
				if got[i][id] != s {
					t.Fatalf("workers=%d query %d id %d: score %v, want %v",
						workers, i, id, got[i][id], s)
				}
			}
		}
	}
	if out := e.ScoresBatch(nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestBuildParallelDedupMatchesSerial pins the parallel-dedup Build to the
// same postings as a reference single-threaded construction.
func TestBuildParallelDedupMatchesSerial(t *testing.T) {
	var domains []Domain
	for i := 0; i < 40; i++ {
		var vals []uint64
		for v := 0; v < 30; v++ {
			vals = append(vals, uint64(v%17), uint64(v)) // duplicates on purpose
		}
		domains = append(domains, Domain{Key: fmt.Sprintf("p%02d", i), Values: vals})
	}
	e := Build(domains)
	// Reference: dedup by hand, postings in domain order.
	for i, d := range domains {
		seen := make(map[uint64]struct{})
		for _, v := range d.Values {
			seen[v] = struct{}{}
		}
		if e.Size(uint32(i)) != len(seen) {
			t.Fatalf("domain %d: size %d, want %d", i, e.Size(uint32(i)), len(seen))
		}
	}
	for v, ids := range e.postings {
		for k := 1; k < len(ids); k++ {
			if ids[k-1] >= ids[k] {
				t.Fatalf("postings for value %d not in ascending id order: %v", v, ids)
			}
		}
	}
}
