// Package exact computes exact set-containment scores with an inverted
// index. It provides the ground truth T_{Q,t*,D} for the accuracy
// experiments (paper Section 6.1) and an oracle for tests. Domains are sets
// of 64-bit value identifiers; for string data, hash values first with
// minhash.HashString so the exact engine and the sketches agree on value
// identity (collisions in a 61-bit space are negligible at our scales).
package exact

import (
	"sort"

	"lshensemble/internal/par"
)

// Domain is a named set of value identifiers. Values need not be sorted or
// deduplicated; Build deduplicates.
type Domain struct {
	Key    string
	Values []uint64
}

// Engine answers exact containment queries over a fixed corpus.
type Engine struct {
	keys     []string
	sizes    []int
	postings map[uint64][]uint32
}

// Build constructs the inverted index over the domains. The per-domain
// value dedup (map-heavy, independent per domain) fans out across
// GOMAXPROCS workers; only the postings-list fill, which appends to one
// shared map, stays serial.
func Build(domains []Domain) *Engine {
	e := &Engine{postings: make(map[uint64][]uint32)}
	deduped := make([][]uint64, len(domains))
	par.Chunked(len(domains), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			d := domains[i]
			seen := make(map[uint64]struct{}, len(d.Values))
			vals := make([]uint64, 0, len(d.Values))
			for _, v := range d.Values {
				if _, ok := seen[v]; ok {
					continue
				}
				seen[v] = struct{}{}
				vals = append(vals, v)
			}
			deduped[i] = vals
		}
	})
	for i, d := range domains {
		id := uint32(len(e.keys))
		e.keys = append(e.keys, d.Key)
		e.sizes = append(e.sizes, len(deduped[i]))
		for _, v := range deduped[i] {
			e.postings[v] = append(e.postings[v], id)
		}
	}
	return e
}

// Len returns the number of indexed domains.
func (e *Engine) Len() int { return len(e.keys) }

// Key returns the key for an internal id.
func (e *Engine) Key(id uint32) string { return e.keys[id] }

// Size returns the deduplicated cardinality of a domain.
func (e *Engine) Size(id uint32) int { return e.sizes[id] }

// Scores returns the exact containment score t(Q, X) = |Q∩X|/|Q| for every
// indexed domain X with at least one overlapping value. Duplicates in the
// query are ignored (domains are sets).
func (e *Engine) Scores(query []uint64) map[uint32]float64 {
	counts := make(map[uint32]int)
	qn := 0
	seen := make(map[uint64]struct{}, len(query))
	for _, v := range query {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		qn++
		for _, id := range e.postings[v] {
			counts[id]++
		}
	}
	if qn == 0 {
		return nil
	}
	scores := make(map[uint32]float64, len(counts))
	for id, c := range counts {
		scores[id] = float64(c) / float64(qn)
	}
	return scores
}

// ScoresBatch computes Scores for every query in parallel with up to
// `workers` goroutines (0 means GOMAXPROCS). The brute-force containment
// scan dominates the accuracy experiments' wall-clock, and the postings
// lists are read-only at query time, so queries shard perfectly.
func (e *Engine) ScoresBatch(queries [][]uint64, workers int) []map[uint32]float64 {
	out := make([]map[uint32]float64, len(queries))
	par.Chunked(len(queries), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.Scores(queries[i])
		}
	})
	return out
}

// Query returns the keys of all domains whose containment of the query
// meets tStar, sorted for determinism.
func (e *Engine) Query(query []uint64, tStar float64) []string {
	var out []string
	for id, s := range e.Scores(query) {
		if s >= tStar {
			out = append(out, e.keys[id])
		}
	}
	sort.Strings(out)
	return out
}

// Truth returns the ground-truth set as a membership map — the form the
// evaluation package consumes.
func (e *Engine) Truth(query []uint64, tStar float64) map[string]bool {
	truth := make(map[string]bool)
	for id, s := range e.Scores(query) {
		if s >= tStar {
			truth[e.keys[id]] = true
		}
	}
	return truth
}
