// Package tabular extracts domains from relational tables, the ingestion
// path of the paper's motivating scenario: every column of every CSV table
// becomes a domain (its set of distinct values), keyed as
// "<table>:<column>". The paper discards domains with fewer than ten
// values; the same cutoff is the default here.
package tabular

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Options configures extraction. Zero values select defaults.
type Options struct {
	// MinSize drops domains with fewer distinct values. Default 10, the
	// paper's cutoff; set negative to keep everything.
	MinSize int
	// HasHeader treats the first row as column names (default true via
	// NoHeader=false semantics is awkward, so the field is inverted).
	NoHeader bool
	// TrimSpace trims surrounding whitespace from values. Default true via
	// inverted field.
	NoTrim bool
}

func (o Options) minSize() int {
	if o.MinSize == 0 {
		return 10
	}
	if o.MinSize < 0 {
		return 1
	}
	return o.MinSize
}

// Column is one extracted domain.
type Column struct {
	Key    string   // "<table>:<column>"
	Values []string // distinct values, sorted
}

// FromCSV extracts the column domains of one CSV stream. tableName seeds
// the domain keys. Rows with differing field counts are tolerated (short
// rows simply do not contribute to trailing columns).
func FromCSV(r io.Reader, tableName string, opts Options) ([]Column, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true

	var names []string
	sets := []map[string]struct{}{}
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tabular: reading %s: %w", tableName, err)
		}
		if first && !opts.NoHeader {
			names = append(names, rec...)
			first = false
			continue
		}
		first = false
		for i, v := range rec {
			for len(sets) <= i {
				sets = append(sets, map[string]struct{}{})
			}
			if !opts.NoTrim {
				v = strings.TrimSpace(v)
			}
			if v == "" {
				continue
			}
			sets[i][v] = struct{}{}
		}
	}
	var cols []Column
	for i, set := range sets {
		if len(set) < opts.minSize() {
			continue
		}
		name := fmt.Sprintf("col%d", i)
		if i < len(names) && strings.TrimSpace(names[i]) != "" {
			name = strings.TrimSpace(names[i])
		}
		values := make([]string, 0, len(set))
		for v := range set {
			values = append(values, v)
		}
		sort.Strings(values)
		cols = append(cols, Column{
			Key:    tableName + ":" + name,
			Values: values,
		})
	}
	sort.Slice(cols, func(a, b int) bool { return cols[a].Key < cols[b].Key })
	return cols, nil
}

// FromFile extracts the column domains of one CSV file, keyed by the file's
// base name without extension.
func FromFile(path string, opts Options) ([]Column, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	return FromCSV(f, base, opts)
}

// FromDir extracts domains from every *.csv file directly inside dir.
func FromDir(dir string, opts Options) ([]Column, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cols []Column
	for _, e := range entries {
		if e.IsDir() || !strings.EqualFold(filepath.Ext(e.Name()), ".csv") {
			continue
		}
		c, err := FromFile(filepath.Join(dir, e.Name()), opts)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c...)
	}
	return cols, nil
}
