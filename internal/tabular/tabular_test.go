package tabular

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `city,province,population
Toronto,Ontario,2794356
Ottawa,Ontario,1017449
Hamilton,Ontario,569353
Calgary,Alberta,1306784
Edmonton,Alberta,1010899
Vancouver,BC,662248
Victoria,BC,91867
Winnipeg,Manitoba,749607
Halifax,"Nova Scotia",439819
Regina,Saskatchewan,226404
Saskatoon,Saskatchewan,266141
Quebec City,Quebec,549459
`

func TestFromCSVBasics(t *testing.T) {
	cols, err := FromCSV(strings.NewReader(sample), "cities", Options{MinSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("got %d columns, want 3", len(cols))
	}
	byKey := map[string]Column{}
	for _, c := range cols {
		byKey[c.Key] = c
	}
	city, ok := byKey["cities:city"]
	if !ok {
		t.Fatalf("missing cities:city, got %v", byKey)
	}
	if len(city.Values) != 12 {
		t.Fatalf("city has %d values, want 12", len(city.Values))
	}
	prov := byKey["cities:province"]
	if len(prov.Values) != 7 {
		t.Fatalf("province has %d distinct values, want 7: %v", len(prov.Values), prov.Values)
	}
	// Quoted value parsed correctly.
	found := false
	for _, v := range prov.Values {
		if v == "Nova Scotia" {
			found = true
		}
	}
	if !found {
		t.Fatal("quoted value lost")
	}
}

func TestMinSizeFilter(t *testing.T) {
	cols, err := FromCSV(strings.NewReader(sample), "cities", Options{}) // default min 10
	if err != nil {
		t.Fatal(err)
	}
	// Only city (12) and population (12) survive; province (7) dropped.
	if len(cols) != 2 {
		t.Fatalf("got %d columns with default cutoff, want 2", len(cols))
	}
	for _, c := range cols {
		if strings.HasSuffix(c.Key, ":province") {
			t.Fatal("province should be filtered by MinSize")
		}
	}
}

func TestNoHeader(t *testing.T) {
	cols, err := FromCSV(strings.NewReader("a,b\nc,d\ne,f\n"), "t", Options{NoHeader: true, MinSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("got %d columns", len(cols))
	}
	if cols[0].Key != "t:col0" || len(cols[0].Values) != 3 {
		t.Fatalf("col0: %+v", cols[0])
	}
}

func TestRaggedRowsAndBlanks(t *testing.T) {
	in := "h1,h2\nv1\nv2,x\n ,y\nv3,\n"
	cols, err := FromCSV(strings.NewReader(in), "t", Options{MinSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Column{}
	for _, c := range cols {
		byKey[c.Key] = c
	}
	// h1 gets v1, v2, v3 (blank/whitespace dropped); h2 gets x, y.
	if got := byKey["t:h1"].Values; len(got) != 3 {
		t.Fatalf("h1: %v", got)
	}
	if got := byKey["t:h2"].Values; len(got) != 2 {
		t.Fatalf("h2: %v", got)
	}
}

func TestDuplicatesCollapse(t *testing.T) {
	in := "h\na\na\na\nb\n"
	cols, err := FromCSV(strings.NewReader(in), "t", Options{MinSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols[0].Values) != 2 {
		t.Fatalf("distinct values: %v", cols[0].Values)
	}
}

func TestFromFileAndDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cities.csv"), []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "other.csv"), []byte("h\n1\n2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "skip.txt"), []byte("not csv"), 0o644); err != nil {
		t.Fatal(err)
	}
	cols, err := FromFile(filepath.Join(dir, "cities.csv"), Options{MinSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || !strings.HasPrefix(cols[0].Key, "cities:") {
		t.Fatalf("FromFile: %v", cols)
	}
	all, err := FromDir(dir, Options{MinSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// cities: 3 cols, other: 1 col (3 values ≥ 2), skip.txt ignored.
	if len(all) != 4 {
		t.Fatalf("FromDir got %d columns, want 4", len(all))
	}
}

func TestFromFileMissing(t *testing.T) {
	if _, err := FromFile("/nonexistent/x.csv", Options{}); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := FromDir("/nonexistent", Options{}); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestEmptyInput(t *testing.T) {
	cols, err := FromCSV(strings.NewReader(""), "t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 0 {
		t.Fatalf("empty input produced %d columns", len(cols))
	}
}
