// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used across the repository. Determinism across Go versions
// matters for reproducible experiments, so we do not rely on math/rand's
// unspecified algorithm; instead we use splitmix64 (Steele, Lea, Flood 2014),
// which passes BigCrush and is trivially seedable.
package xrand

import "math"

// splitmix64 advances the state and returns the next output of the
// splitmix64 generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix returns a well-distributed 64-bit hash of x. It is the splitmix64
// output function applied once, usable as a standalone finalizer.
func Mix(x uint64) uint64 {
	s := x
	return splitmix64(&s)
}

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New for explicit seeding.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed. Two RNGs with the same seed produce
// identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return splitmix64(&r.state)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniformly distributed non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pareto returns a sample from the discrete power-law (Pareto) distribution
// with density proportional to x^(-alpha) on [xmin, xmax], sampled by inverse
// CDF of the continuous Pareto and floored. alpha must be > 1.
func (r *RNG) Pareto(alpha float64, xmin, xmax int) int {
	if alpha <= 1 {
		panic("xrand: Pareto requires alpha > 1")
	}
	if xmin < 1 || xmax < xmin {
		panic("xrand: Pareto requires 1 <= xmin <= xmax")
	}
	// Inverse-CDF sampling of the truncated continuous Pareto.
	a := 1 - alpha
	lo := math.Pow(float64(xmin), a)
	hi := math.Pow(float64(xmax)+1, a)
	u := r.Float64()
	x := math.Pow(lo+u*(hi-lo), 1/a)
	v := int(x)
	if v < xmin {
		v = xmin
	}
	if v > xmax {
		v = xmax
	}
	return v
}

// Zipf returns a sample in [0, n) with probability proportional to
// 1/(rank+1)^s, using rejection-free inverse-CDF over the harmonic partial
// sums approximation. It is approximate for large n but adequate for
// generating skewed value draws; s must be > 0 and n > 0.
func (r *RNG) Zipf(s float64, n int) int {
	if n <= 0 {
		panic("xrand: Zipf requires n > 0")
	}
	if s <= 0 {
		panic("xrand: Zipf requires s > 0")
	}
	// Inverse-CDF on the continuous bounded Zipf (a.k.a. bounded Pareto on
	// ranks). For s == 1 the CDF involves log; handle separately.
	u := r.Float64()
	if math.Abs(s-1) < 1e-9 {
		// CDF(x) ~ ln(x+1)/ln(n+1)
		x := math.Exp(u*math.Log(float64(n)+1)) - 1
		k := int(x)
		if k >= n {
			k = n - 1
		}
		return k
	}
	a := 1 - s
	hi := math.Pow(float64(n)+1, a)
	x := math.Pow(1+u*(hi-1), 1/a) - 1
	k := int(x)
	if k >= n {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	return k
}

// MinOfUniforms returns a sample distributed as the minimum of k independent
// uniform draws from [0, bound). It uses the inverse CDF of the minimum:
// F_min(v) = 1 - (1 - v/bound)^k, so v = bound * (1 - (1-u)^(1/k)).
// This lets callers simulate the minimum over k fresh hash values without
// materializing k draws. k must be >= 1.
func (r *RNG) MinOfUniforms(k int, bound uint64) uint64 {
	if k < 1 {
		panic("xrand: MinOfUniforms requires k >= 1")
	}
	u := r.Float64()
	v := float64(bound) * (1 - math.Pow(1-u, 1/float64(k)))
	if v < 0 {
		v = 0
	}
	if v >= float64(bound) {
		return bound - 1
	}
	return uint64(v)
}
