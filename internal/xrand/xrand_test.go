package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for n := 0; n < 30; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(9)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 10, 100000)
		if v < 10 || v > 100000 {
			t.Fatalf("Pareto out of bounds: %d", v)
		}
	}
}

func TestParetoSkew(t *testing.T) {
	// A power law with alpha=2 should put most mass near xmin.
	r := New(17)
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Pareto(2.0, 10, 100000) < 100 {
			small++
		}
	}
	// P(X < 100 | xmin=10, alpha=2) ≈ 0.9.
	if frac := float64(small) / n; frac < 0.85 || frac > 0.95 {
		t.Fatalf("Pareto mass below 100: %v, want ~0.9", frac)
	}
}

func TestParetoPanics(t *testing.T) {
	cases := []func(){
		func() { New(1).Pareto(1.0, 10, 100) },
		func() { New(1).Pareto(2.0, 0, 100) },
		func() { New(1).Pareto(2.0, 10, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(19)
	for _, s := range []float64{0.5, 1.0, 1.5, 2.0} {
		for i := 0; i < 5000; i++ {
			v := r.Zipf(s, 1000)
			if v < 0 || v >= 1000 {
				t.Fatalf("Zipf(s=%v) out of bounds: %d", s, v)
			}
		}
	}
}

func TestZipfFavorsLowRanks(t *testing.T) {
	r := New(23)
	lo := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Zipf(1.2, 10000) < 100 {
			lo++
		}
	}
	if frac := float64(lo) / n; frac < 0.5 {
		t.Fatalf("Zipf(1.2) mass on ranks <100: %v, want > 0.5", frac)
	}
}

func TestMinOfUniformsBounds(t *testing.T) {
	r := New(29)
	const bound = 1 << 61
	for _, k := range []int{1, 2, 10, 1000, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.MinOfUniforms(k, bound)
			if v >= bound {
				t.Fatalf("MinOfUniforms(k=%d) = %d >= bound", k, v)
			}
		}
	}
}

func TestMinOfUniformsDistribution(t *testing.T) {
	// The mean of the min of k uniforms on [0, 1) is 1/(k+1).
	r := New(31)
	const bound = uint64(1) << 32
	for _, k := range []int{1, 4, 20} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.MinOfUniforms(k, bound)) / float64(bound)
		}
		mean := sum / n
		want := 1 / float64(k+1)
		if math.Abs(mean-want) > 0.15*want+0.002 {
			t.Fatalf("MinOfUniforms(k=%d) mean %v, want ~%v", k, mean, want)
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Property: flipping one input bit changes roughly half the output bits.
	f := func(x uint64, bit uint8) bool {
		b := uint(bit % 64)
		d := Mix(x) ^ Mix(x^(1<<b))
		pop := 0
		for d != 0 {
			pop++
			d &= d - 1
		}
		return pop >= 8 && pop <= 56
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
