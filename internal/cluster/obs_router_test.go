package cluster

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lshensemble"
	"lshensemble/internal/serve"
)

// lockedBuf is a concurrency-safe sink for slog output from live servers.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func scrapeText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTracePropagation pins the router→shard tracing contract: a caller's
// X-Request-Id rides the router's fan-out into every shard and shows up in
// the shard's structured access log under the same trace_id.
func TestTracePropagation(t *testing.T) {
	var shardLog lockedBuf
	logger := slog.New(slog.NewTextHandler(&shardLog, &slog.HandlerOptions{Level: slog.LevelDebug}))
	urls := make([]string, 2)
	for i := range urls {
		idx, err := lshensemble.BuildLive(nil, testLiveOpts())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(idx.Close)
		srv := serve.NewWith(idx, lshensemble.NewHasher(testNumHash, testSeed), testSeed, "",
			serve.Options{Logger: logger})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	_, rts := startRouter(t, urls, Options{})

	const traceID = "router-trace-42"
	req, err := http.NewRequest("POST", rts.URL+"/query",
		strings.NewReader(`{"values":["alpha","beta"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router query status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Errorf("router response trace id %q, want %q echoed", got, traceID)
	}
	out := shardLog.String()
	if n := strings.Count(out, "trace_id="+traceID); n != len(urls) {
		t.Errorf("trace id appears in %d shard log lines, want %d (one per scattered shard):\n%s",
			n, len(urls), out)
	}
}

// flakyHealth fronts a shard and fails /healthz (only) while down is set, so
// a test can demote and re-promote a shard without tearing the server down.
type flakyHealth struct {
	down atomic.Bool
	next http.Handler
}

func (f *flakyHealth) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() && r.URL.Path == "/healthz" {
		http.Error(w, "sick", http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

// TestHealthTransitionObservability drives a demote→promote cycle and checks
// the transition counters, the shards_live gauge and the Warn/Info logs.
func TestHealthTransitionObservability(t *testing.T) {
	idx, err := lshensemble.BuildLive(nil, testLiveOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	flaky := &flakyHealth{next: serve.New(idx, lshensemble.NewHasher(testNumHash, testSeed), testSeed, "")}
	fts := httptest.NewServer(flaky)
	t.Cleanup(fts.Close)
	urls, _ := startShards(t, 1)
	urls = append(urls, fts.URL)

	var routerLog lockedBuf
	logger := slog.New(slog.NewTextHandler(&routerLog, &slog.HandlerOptions{Level: slog.LevelInfo}))
	r, rts := startRouter(t, urls, Options{HealthFailures: 1, Logger: logger})

	text := scrapeText(t, rts.URL)
	if !strings.Contains(text, "lshrouter_shards_live 2") {
		t.Fatalf("scrape missing live=2 gauge:\n%s", text)
	}

	flaky.down.Store(true)
	r.CheckHealth()
	text = scrapeText(t, rts.URL)
	for _, want := range []string{
		`lshrouter_shard_demotions_total{shard="` + fts.URL + `"} 1`,
		"lshrouter_shards_live 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("post-demotion scrape missing %q", want)
		}
	}
	if out := routerLog.String(); !strings.Contains(out, "shard demoted") || !strings.Contains(out, "consecutive_failures=1") {
		t.Errorf("demotion transition not logged:\n%s", out)
	}

	flaky.down.Store(false)
	r.CheckHealth()
	text = scrapeText(t, rts.URL)
	for _, want := range []string{
		`lshrouter_shard_promotions_total{shard="` + fts.URL + `"} 1`,
		"lshrouter_shards_live 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("post-promotion scrape missing %q", want)
		}
	}
	if out := routerLog.String(); !strings.Contains(out, "shard promoted") {
		t.Errorf("promotion transition not logged:\n%s", out)
	}
}

// TestPartialResponseCounter kills one shard under the router's feet (no
// health check yet, so it is still in the ring) and checks the merged
// partial answer bumps lshrouter_partial_responses_total and the dead
// shard's error counter.
func TestPartialResponseCounter(t *testing.T) {
	urls, shards := startShards(t, 2)
	_, rts := startRouter(t, urls, Options{})
	addVia(t, rts.URL, 8)

	shards[0].ts.Close()
	var out RouterQueryResponse
	if code := postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: windowValues(0)}, &out); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if !out.Partial {
		t.Fatal("query with a dead shard was not partial")
	}
	text := scrapeText(t, rts.URL)
	for _, want := range []string{
		"lshrouter_partial_responses_total 1",
		`lshrouter_shard_errors_total{shard="` + urls[0] + `"} 1`,
		`lshrouter_http_requests_total{code="2xx",endpoint="query"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q in:\n%s", want, text)
		}
	}
}
