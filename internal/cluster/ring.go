// Package cluster shards a fleet of lshensembled daemons behind one
// stateless router: keys place onto shards by consistent hashing and
// queries scatter to every shard and merge, so the fleet answers exactly
// like one big index — minus whatever a dead shard held, which is reported
// as a partial result instead of an error.
//
// The package splits into three pieces: Ring (this file) places keys,
// Client speaks the shard wire protocol from internal/serve, and Router
// glues them into an http.Handler with health-checked membership.
package cluster

import (
	"math"
	"sort"
	"strconv"
)

// RingOptions shape the consistent-hash ring.
type RingOptions struct {
	// Vnodes is the number of virtual nodes per shard. More vnodes smooth
	// the keyspace split at the cost of a larger ring. Default 64.
	Vnodes int
	// LoadFactor caps any shard's keyspace share at LoadFactor/N (the
	// bounded-load idea): arcs that would push a shard past its cap are
	// handed to the next shard clockwise with room. The cap is a pure
	// function of membership — every stateless router derives the same
	// assignment. Must be ≥ 1; default 1.25. Math.Inf(1) disables capping.
	LoadFactor float64
	// Replication is how many distinct shards own each key. Writes go to
	// all owners, so one shard death loses no keys when Replication ≥ 2.
	// Clamped to the shard count. Default 1.
	Replication int
}

func (o *RingOptions) defaults() {
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.LoadFactor < 1 {
		o.LoadFactor = 1.25
	}
	if o.Replication <= 0 {
		o.Replication = 1
	}
}

// point is one virtual node: a position on the ring and the shard that
// placed it there.
type point struct {
	h    uint64
	node int32
}

// Ring is an immutable consistent-hash ring over a set of shard names.
// Build a new one whenever membership changes; lookups are lock-free.
//
// Placement is the classic clockwise rule — a key belongs to the first
// virtual node at or after its hash — refined by a deterministic
// bounded-load pass: walking the ring once, any arc whose natural owner is
// already at its LoadFactor/N keyspace cap is reassigned to the next shard
// clockwise with capacity. Because the pass depends only on the sorted
// membership and the options, every router instance computes byte-identical
// ownership without coordinating.
type Ring struct {
	nodes       []string
	points      []point
	owner       []int32 // owner[i]: shard owning the arc ending at points[i]
	replication int
}

// ringHash is FNV-1a 64 with a murmur-style finalizer, inlined so key
// placement never allocates. Bare FNV-1a leaves similar short strings
// ("shard-3#17", "shard-3#18") clustered in the high bits, which is exactly
// what ring position sorts by — the finalizer avalanches them so arc
// lengths come out near-uniform.
func ringHash(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring over the given shard names (deduplicated, order
// irrelevant). A nil or empty member list yields an empty ring whose
// lookups return nothing.
func NewRing(members []string, o RingOptions) *Ring {
	o.defaults()
	nodes := append([]string(nil), members...)
	sort.Strings(nodes)
	nodes = uniq(nodes)
	r := &Ring{nodes: nodes, replication: o.Replication}
	if r.replication > len(nodes) {
		r.replication = len(nodes)
	}
	if len(nodes) == 0 {
		return r
	}

	r.points = make([]point, 0, len(nodes)*o.Vnodes)
	for ni, name := range nodes {
		for v := 0; v < o.Vnodes; v++ {
			h := ringHash(name + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{h: h, node: int32(ni)})
		}
	}
	// Ties broken by node index so the ring order is total and deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})

	// Bounded-load pass. Capacity is measured in keyspace (arc length out of
	// 2^64); LoadFactor/N of it per shard. Since the caps sum to at least the
	// whole ring, the fallback (keep the natural owner) only fires on
	// floating-point slack.
	capacity := uint64(math.MaxUint64)
	if f := o.LoadFactor / float64(len(nodes)); f < 1 {
		capacity = uint64(math.Ldexp(f, 64))
	}
	remaining := make([]uint64, len(nodes))
	for i := range remaining {
		remaining[i] = capacity
	}
	m := len(r.points)
	r.owner = make([]int32, m)
	for i := 0; i < m; i++ {
		// Arc ending at points[i] starts just after the previous point;
		// uint64 subtraction wraps correctly for the arc through zero.
		length := r.points[i].h - r.points[(i+m-1)%m].h
		assigned := false
		for j := 0; j < m; j++ {
			cand := r.points[(i+j)%m].node
			if remaining[cand] >= length {
				remaining[cand] -= length
				r.owner[i] = cand
				assigned = true
				break
			}
		}
		if !assigned {
			r.owner[i] = r.points[i].node
		}
	}
	return r
}

func uniq(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Nodes returns the sorted member names. Callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Replication returns the effective copies per key (clamped to membership).
func (r *Ring) Replication() int { return r.replication }

// arcIndex finds the arc containing hash h: the first point at or after h,
// wrapping past the top of the ring.
func (r *Ring) arcIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Primary returns the shard owning the key, or "" on an empty ring.
func (r *Ring) Primary(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.owner[r.arcIndex(ringHash(key))]]
}

// Owners returns the Replication distinct shards owning the key, primary
// first: the (possibly load-shifted) arc owner, then the next distinct
// shards clockwise. Nil on an empty ring.
func (r *Ring) Owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	i := r.arcIndex(ringHash(key))
	owners := make([]string, 0, r.replication)
	owners = append(owners, r.nodes[r.owner[i]])
	m := len(r.points)
	for j := 1; j < m && len(owners) < r.replication; j++ {
		name := r.nodes[r.points[(i+j)%m].node]
		if !containsStr(owners, name) {
			owners = append(owners, name)
		}
	}
	return owners
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Shares returns each shard's fraction of the keyspace after the
// bounded-load pass — the quantity LoadFactor caps. Diagnostic; also served
// on the router's /ring endpoint.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.nodes))
	for _, n := range r.nodes {
		shares[n] = 0
	}
	m := len(r.points)
	for i := 0; i < m; i++ {
		length := r.points[i].h - r.points[(i+m-1)%m].h
		shares[r.nodes[r.owner[i]]] += math.Ldexp(float64(length), -64)
	}
	return shares
}
