package cluster

import (
	"fmt"
	"math"
	"testing"
)

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://shard-%d:7447", i)
	}
	return nodes
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("table%04d:column%d", i, i%7)
	}
	return keys
}

// TestRingDeterministic: placement must be a pure function of membership —
// two rings built from the same members (in any order) agree on every
// owner, which is what lets multiple stateless routers front one fleet.
func TestRingDeterministic(t *testing.T) {
	nodes := ringNodes(5)
	opts := RingOptions{Vnodes: 64, LoadFactor: 1.25, Replication: 2}
	a := NewRing(nodes, opts)
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[1], nodes[2]}
	b := NewRing(shuffled, opts)
	for _, key := range testKeys(500) {
		ao, bo := a.Owners(key), b.Owners(key)
		if len(ao) != len(bo) {
			t.Fatalf("key %q: owner counts differ: %v vs %v", key, ao, bo)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("key %q: owners differ: %v vs %v", key, ao, bo)
			}
		}
	}
}

// TestRingDistribution: every node serves a non-trivial slice of keys.
func TestRingDistribution(t *testing.T) {
	nodes := ringNodes(8)
	r := NewRing(nodes, RingOptions{Vnodes: 64, LoadFactor: 1.25, Replication: 1})
	counts := make(map[string]int)
	keys := testKeys(8000)
	for _, key := range keys {
		counts[r.Primary(key)]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s received no keys: %v", n, counts)
		}
	}
}

// TestRingBoundedShare: with LoadFactor f, no node's keyspace share may
// exceed f/N (beyond float slack), and the empirical key placement must
// respect the same cap.
func TestRingBoundedShare(t *testing.T) {
	const n, f = 8, 1.25
	r := NewRing(ringNodes(n), RingOptions{Vnodes: 64, LoadFactor: f, Replication: 1})
	cap := f / n
	total := 0.0
	for node, share := range r.Shares() {
		total += share
		if share > cap*(1+1e-9) {
			t.Fatalf("node %s share %.5f exceeds bounded-load cap %.5f", node, share, cap)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %.9f, want 1", total)
	}
	// Empirical check: sampled placement stays under the cap with sampling
	// slack.
	keys := testKeys(20000)
	counts := make(map[string]int)
	for _, key := range keys {
		counts[r.Primary(key)]++
	}
	limit := int(float64(len(keys))*cap*1.05) + 50
	for node, c := range counts {
		if c > limit {
			t.Fatalf("node %s got %d of %d keys, above bounded-load limit %d", node, c, len(keys), limit)
		}
	}
}

// TestRingUncappedShare: LoadFactor +Inf disables capping; shares still sum
// to 1 and lookups still work.
func TestRingUncappedShare(t *testing.T) {
	r := NewRing(ringNodes(4), RingOptions{Vnodes: 32, LoadFactor: math.Inf(1), Replication: 1})
	total := 0.0
	for _, share := range r.Shares() {
		total += share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %.9f, want 1", total)
	}
	if r.Primary("some-key") == "" {
		t.Fatal("uncapped ring failed to place a key")
	}
}

// TestRingConsistency: removing one node of five must move the removed
// node's keys (all of them) and mostly leave everyone else's alone — the
// consistent-hashing contract, with slack for the bounded-load caps
// shifting (1.25/5 → 1.25/4).
func TestRingConsistency(t *testing.T) {
	nodes := ringNodes(5)
	opts := RingOptions{Vnodes: 64, LoadFactor: 1.25, Replication: 1}
	before := NewRing(nodes, opts)
	after := NewRing(nodes[:4], opts)
	keys := testKeys(4000)
	moved, held := 0, 0
	for _, key := range keys {
		was, is := before.Primary(key), after.Primary(key)
		if was == nodes[4] {
			if is == nodes[4] {
				t.Fatalf("key %q still placed on removed node", key)
			}
			continue
		}
		if was == is {
			held++
		} else {
			moved++
		}
	}
	// ~1/5 of keys lived on the removed node; of the rest, cap shifts may
	// move some (zero is ideal), but the vast majority must hold.
	if frac := float64(moved) / float64(moved+held); frac > 0.35 {
		t.Fatalf("%.1f%% of surviving-node keys moved; consistent hashing should move far fewer", frac*100)
	}
}

// TestRingReplication: Owners returns the requested number of distinct
// shards, primary first, clamped to the membership.
func TestRingReplication(t *testing.T) {
	nodes := ringNodes(4)
	r := NewRing(nodes, RingOptions{Vnodes: 32, LoadFactor: 1.25, Replication: 3})
	for _, key := range testKeys(300) {
		owners := r.Owners(key)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want 3", key, len(owners))
		}
		if owners[0] != r.Primary(key) {
			t.Fatalf("key %q: first owner %s != primary %s", key, owners[0], r.Primary(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %s in %v", key, o, owners)
			}
			seen[o] = true
		}
	}
	// Replication beyond membership clamps.
	over := NewRing(nodes[:2], RingOptions{Vnodes: 32, Replication: 5})
	if owners := over.Owners("k"); len(owners) != 2 {
		t.Fatalf("clamped replication returned %d owners, want 2", len(owners))
	}
}

// TestRingEmpty: an empty ring returns nothing rather than panicking.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, RingOptions{})
	if p := r.Primary("k"); p != "" {
		t.Fatalf("empty ring placed a key on %q", p)
	}
	if o := r.Owners("k"); o != nil {
		t.Fatalf("empty ring returned owners %v", o)
	}
}
