package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"lshensemble"
	"lshensemble/internal/serve"
)

// The e2e fixtures use a uniform domain cardinality on purpose: the
// ensemble's candidate predicate depends on each partition's upper size
// bound (Eq. 7 threshold conversion feeds the (b, r) tuner), so with every
// domain the same size the predicate is a pure function of the two
// signatures — identical on every shard and on a single-node index. That
// turns "sharded union == single node" from an approximation into an exact,
// deterministic equality the tests can assert.
const (
	testSeed       = 99
	testNumHash    = 64
	testDomainSize = 30
)

func testLiveOpts() lshensemble.LiveOptions {
	return lshensemble.LiveOptions{
		Options: lshensemble.Options{
			NumHash:       testNumHash,
			RMax:          4,
			NumPartitions: 4,
		},
		SealThreshold: 1 << 20, // seal only on explicit Flush
	}
}

// windowValues returns a size-testDomainSize window into a shared value
// universe, so nearby domains overlap heavily and far ones not at all.
func windowValues(i int) []string {
	vals := make([]string, testDomainSize)
	for j := range vals {
		vals[j] = fmt.Sprintf("w%04d", i+j)
	}
	return vals
}

func domainKey(i int) string { return fmt.Sprintf("d%03d", i) }

// testShard is one in-process lshensembled: a real serve.Server behind
// httptest.
type testShard struct {
	ts  *httptest.Server
	srv *serve.Server
}

func startShards(t *testing.T, n int) ([]string, []*testShard) {
	t.Helper()
	urls := make([]string, n)
	shards := make([]*testShard, n)
	for i := 0; i < n; i++ {
		idx, err := lshensemble.BuildLive(nil, testLiveOpts())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(idx.Close)
		srv := serve.New(idx, lshensemble.NewHasher(testNumHash, testSeed), testSeed, "")
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		shards[i] = &testShard{ts: ts, srv: srv}
	}
	return urls, shards
}

func startRouter(t *testing.T, urls []string, opts Options) (*Router, *httptest.Server) {
	t.Helper()
	r, err := NewRouter(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)
	return r, ts
}

// postJSON posts body and decodes the response into out, returning the
// status code.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// addVia adds n windowed domains through the router, asserting every write
// fully replicates.
func addVia(t *testing.T, routerURL string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var resp RouterAddResponse
		if code := postJSON(t, routerURL+"/add", serve.AddRequest{Key: domainKey(i), Values: windowValues(i)}, &resp); code != http.StatusOK {
			t.Fatalf("add %d: HTTP %d", i, code)
		}
		if resp.Partial || len(resp.Failed) > 0 {
			t.Fatalf("add %d partial with healthy shards: %+v", i, resp)
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRouterMergeMatchesSingleNode is the determinism acceptance test: a
// 2-shard fleet behind the router answers /query, /query/topk and
// /query/batch exactly like one single-node index over the union of the
// corpus.
func TestRouterMergeMatchesSingleNode(t *testing.T) {
	const n = 120
	urls, shards := startShards(t, 2)
	router, rts := startRouter(t, urls, Options{})

	addVia(t, rts.URL, n)

	// Routing correctness: keys land exactly on their ring owner, corpus
	// fully covered, both shards non-empty.
	ring := router.ring.Load()
	total := 0
	for i, sh := range shards {
		got := sh.srv.Index().Len()
		if got == 0 {
			t.Fatalf("shard %d holds no keys", i)
		}
		total += got
	}
	if total != n {
		t.Fatalf("fleet holds %d keys, want %d (replication 1)", total, n)
	}
	hasher := lshensemble.NewHasher(testNumHash, testSeed)
	for i := 0; i < n; i++ {
		owner := ring.Primary(domainKey(i))
		for si, sh := range shards {
			rec := lshensemble.SketchStrings(hasher, domainKey(i), windowValues(i))
			held := containsKey(sh.srv.Index().Query(rec.Sig, rec.Size, 1.0), domainKey(i))
			if want := urls[si] == owner; held != want {
				t.Fatalf("key %s on shard %s: held=%v, ring owner %s", domainKey(i), urls[si], held, owner)
			}
		}
	}

	// The reference: one index holding every record, same hash family.
	single, err := lshensemble.BuildLive(nil, testLiveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	for i := 0; i < n; i++ {
		rec := lshensemble.SketchStrings(hasher, domainKey(i), windowValues(i))
		if _, err := single.Add(rec); err != nil {
			t.Fatal(err)
		}
	}

	for probe := 0; probe < n+20; probe += 7 {
		values := windowValues(probe)
		rec := lshensemble.SketchStrings(hasher, "query", values)
		for _, threshold := range []float64{0.3, 0.5, 1.0} {
			want := single.Query(rec.Sig, rec.Size, threshold)
			sort.Strings(want)
			var got RouterQueryResponse
			if code := postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: values, Threshold: threshold}, &got); code != http.StatusOK {
				t.Fatalf("query probe %d: HTTP %d", probe, code)
			}
			if got.Partial {
				t.Fatalf("query probe %d partial with healthy shards", probe)
			}
			if !sameStrings(got.Matches, want) {
				t.Fatalf("probe %d t=%v: router %v != single-node %v", probe, threshold, got.Matches, want)
			}
		}

		// Top-k with k past the candidate count, so the full ranking must
		// line up (score-descending, key-ascending on ties at every rank).
		wantTop := single.QueryTopK(rec.Sig, rec.Size, 50)
		var gotTop RouterTopKResponse
		if code := postJSON(t, rts.URL+"/query/topk", serve.TopKRequest{Values: values, K: 50}, &gotTop); code != http.StatusOK {
			t.Fatalf("topk probe %d: HTTP %d", probe, code)
		}
		if len(gotTop.Matches) != len(wantTop) {
			t.Fatalf("probe %d: topk %d results, single-node %d", probe, len(gotTop.Matches), len(wantTop))
		}
		wantByKey := make(map[string]float64, len(wantTop))
		for _, m := range wantTop {
			wantByKey[m.Key] = m.EstContainment
		}
		for rank, m := range gotTop.Matches {
			if est, ok := wantByKey[m.Key]; !ok || est != m.EstContainment {
				t.Fatalf("probe %d rank %d: %+v not in single-node ranking", probe, rank, m)
			}
			if rank > 0 && m.EstContainment > gotTop.Matches[rank-1].EstContainment {
				t.Fatalf("probe %d: merged ranking out of order at %d", probe, rank)
			}
		}
	}

	// Batch: one request, every row equal to the single-node row.
	var batchReq serve.BatchRequest
	for probe := 0; probe < n; probe += 11 {
		batchReq.Queries = append(batchReq.Queries, serve.QueryRequest{Values: windowValues(probe), Threshold: 0.5})
	}
	var queries []lshensemble.BatchQuery
	for probe := 0; probe < n; probe += 11 {
		rec := lshensemble.SketchStrings(hasher, "query", windowValues(probe))
		queries = append(queries, lshensemble.BatchQuery{Sig: rec.Sig, Size: rec.Size, Threshold: 0.5})
	}
	wantRows := single.QueryBatch(queries, 2)
	var gotBatch RouterBatchResponse
	if code := postJSON(t, rts.URL+"/query/batch", batchReq, &gotBatch); code != http.StatusOK {
		t.Fatalf("batch: HTTP %d", code)
	}
	if gotBatch.Partial || len(gotBatch.Rows) != len(wantRows) {
		t.Fatalf("batch shape: partial=%v rows=%d want %d", gotBatch.Partial, len(gotBatch.Rows), len(wantRows))
	}
	for i, row := range wantRows {
		sort.Strings(row)
		if !sameStrings(gotBatch.Rows[i].Matches, row) {
			t.Fatalf("batch row %d: router %v != single-node %v", i, gotBatch.Rows[i].Matches, row)
		}
	}
}

func containsKey(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// TestRouterPartialOnShardDeath is the degradation acceptance test: killing
// one of three shards mid-traffic turns query answers partial — never a
// 5xx — and the health checker then demotes the dead shard so answers go
// clean again.
func TestRouterPartialOnShardDeath(t *testing.T) {
	const n = 90
	urls, shards := startShards(t, 3)
	router, rts := startRouter(t, urls, Options{HealthFailures: 2})
	addVia(t, rts.URL, n)

	dead := shards[1]
	dead.ts.Close() // kill mid-traffic; the router has no idea yet

	// Survivors' union is what the degraded fleet can still answer.
	values := windowValues(5)
	hasher := lshensemble.NewHasher(testNumHash, testSeed)
	rec := lshensemble.SketchStrings(hasher, "query", values)
	wantSet := map[string]struct{}{}
	for i, sh := range shards {
		if i == 1 {
			continue
		}
		for _, k := range sh.srv.Index().Query(rec.Sig, rec.Size, 0.5) {
			wantSet[k] = struct{}{}
		}
	}
	want := make([]string, 0, len(wantSet))
	for k := range wantSet {
		want = append(want, k)
	}
	sort.Strings(want)

	for _, path := range []string{"/query", "/query/topk", "/query/batch"} {
		var body any
		switch path {
		case "/query":
			body = serve.QueryRequest{Values: values, Threshold: 0.5}
		case "/query/topk":
			body = serve.TopKRequest{Values: values, K: 10}
		case "/query/batch":
			body = serve.BatchRequest{Queries: []serve.QueryRequest{{Values: values, Threshold: 0.5}}}
		}
		var meta struct {
			Partial bool     `json:"partial"`
			Failed  []string `json:"failed"`
		}
		if code := postJSON(t, rts.URL+path, body, &meta); code != http.StatusOK {
			t.Fatalf("%s with one dead shard: HTTP %d, want 200", path, code)
		}
		if !meta.Partial || !sameStrings(meta.Failed, []string{urls[1]}) {
			t.Fatalf("%s: partial=%v failed=%v, want partial from %s", path, meta.Partial, meta.Failed, urls[1])
		}
	}

	// The partial answer is exactly the survivors' union, not garbage.
	var got RouterQueryResponse
	postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: values, Threshold: 0.5}, &got)
	if !sameStrings(got.Matches, want) {
		t.Fatalf("partial matches %v != survivors' union %v", got.Matches, want)
	}

	// Two failed probes demote the shard; answers go clean (no partial) and
	// /ring reports the death.
	router.CheckHealth()
	router.CheckHealth()
	var ringResp RingResponse
	getJSON(t, rts.URL+"/ring", &ringResp)
	for _, si := range ringResp.Shards {
		if want := si.Name != urls[1]; si.Alive != want {
			t.Fatalf("after demotion, shard %s alive=%v", si.Name, si.Alive)
		}
	}
	got = RouterQueryResponse{}
	if code := postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: values, Threshold: 0.5}, &got); code != http.StatusOK {
		t.Fatalf("post-demotion query: HTTP %d", code)
	}
	if got.Partial || !sameStrings(got.Matches, want) {
		t.Fatalf("post-demotion: partial=%v matches=%v, want clean survivors' union", got.Partial, got.Matches)
	}

	// New writes route around the hole.
	var add RouterAddResponse
	if code := postJSON(t, rts.URL+"/add", serve.AddRequest{Key: "fresh", Values: windowValues(500)}, &add); code != http.StatusOK {
		t.Fatalf("post-demotion add: HTTP %d", code)
	}
	if add.Partial || containsKey(add.Shards, urls[1]) {
		t.Fatalf("post-demotion add touched the dead shard: %+v", add)
	}
}

// TestRouterReplicationAndDelete: with Replication 2 every key lives on two
// shards, merges still answer it once, and a routed delete removes every
// copy.
func TestRouterReplicationAndDelete(t *testing.T) {
	const n = 60
	urls, shards := startShards(t, 3)
	_, rts := startRouter(t, urls, Options{Ring: RingOptions{Replication: 2}})
	addVia(t, rts.URL, n)

	hasher := lshensemble.NewHasher(testNumHash, testSeed)
	total := 0
	for _, sh := range shards {
		total += sh.srv.Index().Len()
	}
	if total != 2*n {
		t.Fatalf("fleet holds %d copies, want %d (replication 2)", total, 2*n)
	}

	// Each key answers exactly once despite two copies.
	for i := 0; i < n; i += 13 {
		var got RouterQueryResponse
		postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: windowValues(i), Threshold: 1.0}, &got)
		hits := 0
		for _, k := range got.Matches {
			if k == domainKey(i) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("key %s appears %d times in merged matches %v", domainKey(i), hits, got.Matches)
		}
	}

	// Routed delete removes both copies.
	var del RouterDeleteResponse
	if code := postJSON(t, rts.URL+"/delete", serve.DeleteRequest{Key: domainKey(7)}, &del); code != http.StatusOK {
		t.Fatalf("delete: HTTP %d", code)
	}
	if !del.Deleted || del.Partial || len(del.Shards) != 2 {
		t.Fatalf("delete response %+v, want clean 2-shard ack", del)
	}
	rec := lshensemble.SketchStrings(hasher, domainKey(7), windowValues(7))
	for si, sh := range shards {
		if containsKey(sh.srv.Index().Query(rec.Sig, rec.Size, 1.0), domainKey(7)) {
			t.Fatalf("shard %d still holds deleted key", si)
		}
	}
	var got RouterQueryResponse
	postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: windowValues(7), Threshold: 1.0}, &got)
	if containsKey(got.Matches, domainKey(7)) {
		t.Fatal("deleted key still answered by the fleet")
	}
}

// TestRouterSlowShardDeadline: a shard that hangs past the per-shard
// deadline degrades the answer to partial instead of stalling it.
func TestRouterSlowShardDeadline(t *testing.T) {
	urls, _ := startShards(t, 2)
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // answers only when the test is over
		case <-r.Context().Done():
		case <-release:
		}
	}))
	t.Cleanup(hang.Close)
	t.Cleanup(func() { close(release) }) // LIFO: unblock handlers, then Close

	_, rts := startRouter(t, append(urls, hang.URL), Options{ShardTimeout: 200 * time.Millisecond})
	start := time.Now()
	var got RouterQueryResponse
	if code := postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: windowValues(0), Threshold: 0.5}, &got); code != http.StatusOK {
		t.Fatalf("query with hung shard: HTTP %d", code)
	}
	if !got.Partial || !sameStrings(got.Failed, []string{hang.URL}) {
		t.Fatalf("hung shard not reported: partial=%v failed=%v", got.Partial, got.Failed)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hung shard stalled the answer for %v", elapsed)
	}
}

// TestRouterBlackout: with every shard dead the router answers 5xx (the
// only time it may) and /healthz reflects the outage after demotion.
func TestRouterBlackout(t *testing.T) {
	urls, shards := startShards(t, 2)
	router, rts := startRouter(t, urls, Options{HealthFailures: 1})
	addVia(t, rts.URL, 10)
	for _, sh := range shards {
		sh.ts.Close()
	}

	var errResp serve.ErrorResponse
	if code := postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: windowValues(0)}, &errResp); code != http.StatusBadGateway {
		t.Fatalf("total blackout query: HTTP %d, want 502", code)
	}
	router.CheckHealth()
	if code := getJSON(t, rts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after fleet death: HTTP %d, want 503", code)
	}
	if code := postJSON(t, rts.URL+"/query", serve.QueryRequest{Values: windowValues(0)}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("empty-ring query: HTTP %d, want 503", code)
	}
	if code := postJSON(t, rts.URL+"/add", serve.AddRequest{Key: "k", Values: windowValues(0)}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("empty-ring add: HTTP %d, want 503", code)
	}
}

// TestRouterStatsAndRing: the admin surface gathers per-shard stats and
// reports topology.
func TestRouterStatsAndRing(t *testing.T) {
	urls, _ := startShards(t, 2)
	_, rts := startRouter(t, urls, Options{})
	addVia(t, rts.URL, 30)

	var stats RouterStatsResponse
	if code := getJSON(t, rts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if len(stats.Shards) != 2 || stats.Partial {
		t.Fatalf("stats shape: %+v", stats)
	}
	total := 0
	for name, st := range stats.Shards {
		if st.Seed != testSeed || st.NumHash != testNumHash {
			t.Fatalf("shard %s serving params drifted: %+v", name, st)
		}
		total += st.Domains
	}
	if total != 30 {
		t.Fatalf("stats count %d keys across the fleet, want 30", total)
	}

	var ring RingResponse
	if code := getJSON(t, rts.URL+"/ring", &ring); code != http.StatusOK {
		t.Fatalf("ring: HTTP %d", code)
	}
	if len(ring.Shards) != 2 || ring.Replication != 1 {
		t.Fatalf("ring shape: %+v", ring)
	}
	share := 0.0
	for _, si := range ring.Shards {
		if !si.Alive {
			t.Fatalf("healthy shard %s reported dead", si.Name)
		}
		share += si.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("ring shares sum to %v, want 1", share)
	}
}
