package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lshensemble/internal/obs"
	"lshensemble/internal/serve"
)

// Options configure a Router.
type Options struct {
	// Ring shapes key placement (vnodes, bounded-load factor, replication).
	Ring RingOptions
	// ShardTimeout is the per-shard deadline on every forwarded or scattered
	// request. A shard that misses it contributes nothing to the merge and
	// flips the response partial — it never stalls the whole answer.
	// Default 2s.
	ShardTimeout time.Duration
	// HealthInterval is how often the background checker probes every
	// shard's /healthz. Default 2s.
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures demote a shard
	// from the ring (one success promotes it back). Default 2.
	HealthFailures int
	// Logger receives access logs (Debug), demotion/promotion transitions
	// (Warn/Info) and 5xx logs, all keyed by trace_id. Nil means
	// slog.Default().
	Logger *slog.Logger
	// Registry receives router metrics under the "lshrouter" prefix. Nil
	// allocates a private registry (exposed via Registry()); ignored when
	// DisableMetrics.
	Registry *obs.Registry
	// DisableMetrics turns off metric collection and the /metrics endpoint;
	// trace-ID stamping and propagation stay on.
	DisableMetrics bool
}

func (o *Options) defaults() {
	o.Ring.defaults()
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 2 * time.Second
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.HealthFailures <= 0 {
		o.HealthFailures = 2
	}
}

// shard is one backend: a client plus health state owned by the checker.
type shard struct {
	name   string
	client *Client
	alive  atomic.Bool
	fails  int // consecutive probe failures; touched only by the checker

	// Per-shard metric children; nil when metrics are disabled.
	demotions  *obs.Counter
	promotions *obs.Counter
	errors     *obs.Counter
}

// incr bumps a counter that may be nil (metrics disabled).
func incr(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Router is a stateless scatter-gather front for a fleet of lshensembled
// shards. It implements http.Handler with the same wire protocol as a
// single shard, extended with partial-result fields:
//
//	POST /add, /delete    forwarded to the key's ring owners
//	POST /query, /query/topk, /query/batch
//	                      scattered to every live shard, merged
//	GET  /stats           per-shard stats, gathered
//	GET  /ring            membership, liveness, keyspace shares
//	GET  /healthz         200 while at least one shard is live
//	POST /compact, /save  fanned to every live shard
//
// Routers hold no key state: ownership is recomputed from the ring (a pure
// function of live membership), so any number of router instances in front
// of the same fleet agree without coordinating. Query merges deduplicate by
// key, which also makes a replicated fleet (Replication ≥ 2) answer each
// key once no matter how many owners hold it.
type Router struct {
	opts   Options
	shards []*shard // sorted by name, fixed at construction
	ring   atomic.Pointer[Ring]
	mux    *http.ServeMux

	logger     *slog.Logger
	reg        *obs.Registry
	httpm      *obs.HTTPMetrics
	shardsLive *obs.Gauge
	partials   *obs.Counter

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRouter builds a router over the given shard base URLs. All shards
// start out live (the checker demotes unreachable ones after
// HealthFailures probes); call Start to begin probing.
func NewRouter(shardURLs []string, opts Options) (*Router, error) {
	opts.defaults()
	if len(shardURLs) == 0 {
		return nil, errors.New("cluster: at least one shard URL required")
	}
	names := append([]string(nil), shardURLs...)
	sort.Strings(names)
	r := &Router{opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	r.logger = opts.Logger
	if r.logger == nil {
		r.logger = slog.Default()
	}
	if !opts.DisableMetrics {
		r.reg = opts.Registry
		if r.reg == nil {
			r.reg = obs.NewRegistry()
		}
		r.httpm = obs.NewHTTPMetrics(r.reg, "lshrouter", r.logger)
		r.shardsLive = r.reg.Gauge("lshrouter_shards_live", "Shards currently in the ring.")
		r.reg.Gauge("lshrouter_shards_total", "Shards configured at startup.").Set(int64(len(shardURLs)))
		r.partials = r.reg.Counter("lshrouter_partial_responses_total",
			"Merged responses missing at least one shard's contribution.")
	}
	for i, name := range names {
		if name == "" || (i > 0 && name == names[i-1]) {
			return nil, fmt.Errorf("cluster: empty or duplicate shard URL %q", name)
		}
		s := &shard{name: name, client: NewClient(name, opts.ShardTimeout)}
		s.alive.Store(true)
		if r.reg != nil {
			s.demotions = r.reg.Counter("lshrouter_shard_demotions_total",
				"Health-checker demotions (shard dropped from the ring).", obs.L("shard", name))
			s.promotions = r.reg.Counter("lshrouter_shard_promotions_total",
				"Health-checker promotions (demoted shard rejoined the ring).", obs.L("shard", name))
			s.errors = r.reg.Counter("lshrouter_shard_errors_total",
				"Failed shard calls (timeouts, refusals, non-2xx).", obs.L("shard", name))
		}
		r.shards = append(r.shards, s)
	}
	r.rebuild()

	r.mux = http.NewServeMux()
	r.handle("POST /add", "add", r.handleAdd)
	r.handle("POST /delete", "delete", r.handleDelete)
	r.handle("POST /query", "query", r.handleQuery)
	r.handle("POST /query/topk", "query_topk", r.handleTopK)
	r.handle("POST /query/batch", "query_batch", r.handleBatch)
	r.handle("GET /stats", "stats", r.handleStats)
	r.handle("GET /ring", "ring", r.handleRing)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.handle("POST /compact", "compact", r.handleCompact)
	r.handle("POST /save", "save", r.handleSave)
	if r.reg != nil {
		r.mux.Handle("GET /metrics", r.reg.Handler())
	}
	return r, nil
}

// handle mounts h wrapped in the metrics middleware, or in plain trace-ID
// stamping when metrics are disabled — either way every request carries a
// trace ID into the shard fan-out.
func (r *Router) handle(pattern, endpoint string, h http.HandlerFunc) {
	if r.httpm != nil {
		r.mux.Handle(pattern, r.httpm.Wrap(endpoint, h))
	} else {
		r.mux.Handle(pattern, obs.TraceMiddleware(h))
	}
}

// Registry returns the router's metric registry, nil when metrics are
// disabled.
func (r *Router) Registry() *obs.Registry { return r.reg }

// notePartial counts a merged response that is missing shard contributions.
func (r *Router) notePartial(failed []string) {
	if len(failed) > 0 && r.partials != nil {
		r.partials.Inc()
	}
}

func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// Start launches the background health checker.
func (r *Router) Start() {
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.opts.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.CheckHealth()
			}
		}
	}()
}

// Close stops the health checker. Idempotent; safe if Start was never
// called.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	select {
	case <-r.done:
	default:
		// Start was never called; done never closes.
	}
}

// CheckHealth probes every shard once, concurrently, and rebuilds the ring
// if liveness changed. The background checker calls this on its interval;
// tests call it directly for deterministic membership transitions.
func (r *Router) CheckHealth() {
	results := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.ShardTimeout)
			defer cancel()
			results[i] = s.client.Health(ctx)
		}(i, s)
	}
	wg.Wait()
	changed := false
	for i, s := range r.shards {
		if results[i] == nil {
			s.fails = 0
			if !s.alive.Load() {
				s.alive.Store(true)
				changed = true
				incr(s.promotions)
				r.logger.LogAttrs(context.Background(), slog.LevelInfo, "shard promoted",
					slog.String("shard", s.name))
			}
			continue
		}
		s.fails++
		if s.fails >= r.opts.HealthFailures && s.alive.Load() {
			s.alive.Store(false)
			changed = true
			incr(s.demotions)
			r.logger.LogAttrs(context.Background(), slog.LevelWarn, "shard demoted",
				slog.String("shard", s.name),
				slog.Int("consecutive_failures", s.fails),
				slog.String("error", results[i].Error()))
		}
	}
	if changed {
		r.rebuild()
	}
}

// rebuild recomputes the ring from the currently live shards.
func (r *Router) rebuild() {
	live := make([]string, 0, len(r.shards))
	for _, s := range r.shards {
		if s.alive.Load() {
			live = append(live, s.name)
		}
	}
	r.ring.Store(NewRing(live, r.opts.Ring))
	if r.shardsLive != nil {
		r.shardsLive.Set(int64(len(live)))
	}
}

// liveShards returns the shards currently in the ring.
func (r *Router) liveShards() []*shard {
	out := make([]*shard, 0, len(r.shards))
	for _, s := range r.shards {
		if s.alive.Load() {
			out = append(out, s)
		}
	}
	return out
}

func (r *Router) shardByName(name string) *shard {
	for _, s := range r.shards {
		if s.name == name {
			return s
		}
	}
	return nil
}

// --- router wire types ---
//
// Responses embed the shard types and add the degradation fields: Partial
// is true whenever at least one shard's contribution is missing, and Failed
// names the shards that missed it.

// RouterAddResponse acknowledges a routed ingest. Shards lists the owners
// that applied it; Partial means some owner did not (the write is durable
// on the listed shards only).
type RouterAddResponse struct {
	serve.AddResponse
	Shards  []string `json:"shards"`
	Failed  []string `json:"failed,omitempty"`
	Partial bool     `json:"partial"`
}

// RouterDeleteResponse acknowledges a routed delete; Deleted is true if any
// owner held the key.
type RouterDeleteResponse struct {
	serve.DeleteResponse
	Shards  []string `json:"shards"`
	Failed  []string `json:"failed,omitempty"`
	Partial bool     `json:"partial"`
}

// RouterQueryResponse is a merged containment answer.
type RouterQueryResponse struct {
	serve.QueryResponse
	Partial bool     `json:"partial"`
	Failed  []string `json:"failed,omitempty"`
}

// RouterTopKResponse is a merged ranked answer.
type RouterTopKResponse struct {
	serve.TopKResponse
	Partial bool     `json:"partial"`
	Failed  []string `json:"failed,omitempty"`
}

// RouterBatchResponse is a merged batch answer, row-aligned with the
// request.
type RouterBatchResponse struct {
	serve.BatchResponse
	Partial bool     `json:"partial"`
	Failed  []string `json:"failed,omitempty"`
}

// RouterStatsResponse gathers every live shard's stats.
type RouterStatsResponse struct {
	Shards  map[string]serve.StatsResponse `json:"shards"`
	Partial bool                           `json:"partial"`
	Failed  []string                       `json:"failed,omitempty"`
}

// RouterSaveResponse gathers every live shard's snapshot acknowledgement.
type RouterSaveResponse struct {
	Shards  map[string]serve.SaveResponse `json:"shards"`
	Partial bool                          `json:"partial"`
	Failed  []string                      `json:"failed,omitempty"`
}

// ShardInfo is one row of the /ring topology.
type ShardInfo struct {
	Name  string  `json:"name"`
	Alive bool    `json:"alive"`
	Share float64 `json:"share"` // keyspace fraction; 0 when demoted
}

// RingResponse describes the routing topology.
type RingResponse struct {
	Shards      []ShardInfo `json:"shards"`
	Replication int         `json:"replication"`
	Vnodes      int         `json:"vnodes"`
	LoadFactor  float64     `json:"load_factor"`
}

// --- write path: route by ring ---

// forEachOwner fans one write to the key's ring owners concurrently and
// reports which shards acknowledged. The per-call closure runs under the
// per-shard deadline.
func (r *Router) forEachOwner(ctx context.Context, key string, call func(context.Context, *shard) error) (acked, failed []string) {
	ring := r.ring.Load()
	owners := ring.Owners(key)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range owners {
		s := r.shardByName(name)
		if s == nil {
			continue
		}
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, r.opts.ShardTimeout)
			defer cancel()
			err := call(sctx, s)
			mu.Lock()
			if err != nil {
				failed = append(failed, s.name)
				incr(s.errors)
			} else {
				acked = append(acked, s.name)
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	sort.Strings(acked)
	sort.Strings(failed)
	return acked, failed
}

func (r *Router) handleAdd(w http.ResponseWriter, req *http.Request) {
	var body serve.AddRequest
	if !serve.DecodeJSON(w, req, &body) {
		return
	}
	if body.Key == "" {
		serve.WriteError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	if len(r.liveShards()) == 0 {
		serve.WriteError(w, http.StatusServiceUnavailable, errors.New("no live shards"))
		return
	}
	var mu sync.Mutex
	var first serve.AddResponse
	got := false
	acked, failed := r.forEachOwner(req.Context(), body.Key, func(ctx context.Context, s *shard) error {
		resp, err := s.client.Add(ctx, &body)
		if err != nil {
			return err
		}
		mu.Lock()
		if !got {
			first, got = resp, true
		}
		mu.Unlock()
		return nil
	})
	if !got {
		serve.WriteError(w, http.StatusBadGateway,
			fmt.Errorf("no owner accepted key %q (failed: %v)", body.Key, failed))
		return
	}
	r.notePartial(failed)
	serve.WriteJSON(w, http.StatusOK, RouterAddResponse{
		AddResponse: first, Shards: acked, Failed: failed, Partial: len(failed) > 0,
	})
}

func (r *Router) handleDelete(w http.ResponseWriter, req *http.Request) {
	var body serve.DeleteRequest
	if !serve.DecodeJSON(w, req, &body) {
		return
	}
	if body.Key == "" {
		serve.WriteError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	if len(r.liveShards()) == 0 {
		serve.WriteError(w, http.StatusServiceUnavailable, errors.New("no live shards"))
		return
	}
	var deleted atomic.Bool
	acked, failed := r.forEachOwner(req.Context(), body.Key, func(ctx context.Context, s *shard) error {
		resp, err := s.client.Delete(ctx, &body)
		if err != nil {
			return err
		}
		if resp.Deleted {
			deleted.Store(true)
		}
		return nil
	})
	if len(acked) == 0 {
		serve.WriteError(w, http.StatusBadGateway,
			fmt.Errorf("no owner acknowledged delete of %q (failed: %v)", body.Key, failed))
		return
	}
	r.notePartial(failed)
	serve.WriteJSON(w, http.StatusOK, RouterDeleteResponse{
		DeleteResponse: serve.DeleteResponse{Deleted: deleted.Load()},
		Shards:         acked, Failed: failed, Partial: len(failed) > 0,
	})
}

// --- read path: scatter to all live shards, gather, merge ---

// scatter runs call against every live shard concurrently, each under its
// own deadline, and returns the successful responses plus the names of the
// shards that failed. Scatter never fails as a whole: a dead or slow shard
// just lands in failed.
func scatter[T any](r *Router, ctx context.Context, call func(context.Context, *shard) (T, error)) (oks []T, failed []string) {
	live := r.liveShards()
	type result struct {
		resp T
		err  error
		name string
	}
	results := make([]result, len(live))
	var wg sync.WaitGroup
	for i, s := range live {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, r.opts.ShardTimeout)
			defer cancel()
			resp, err := call(sctx, s)
			results[i] = result{resp: resp, err: err, name: s.name}
		}(i, s)
	}
	wg.Wait()
	for i, res := range results {
		if res.err != nil {
			failed = append(failed, res.name)
			incr(live[i].errors)
		} else {
			oks = append(oks, res.resp)
		}
	}
	return oks, failed
}

// gatewayCheck writes the only two scatter-wide errors: an empty ring and a
// total blackout. One reachable shard among many means a partial answer,
// never a 5xx.
func (r *Router) gatewayCheck(w http.ResponseWriter, got, failedCount int) bool {
	if got > 0 {
		return true
	}
	if failedCount == 0 {
		serve.WriteError(w, http.StatusServiceUnavailable, errors.New("no live shards"))
	} else {
		serve.WriteError(w, http.StatusBadGateway,
			fmt.Errorf("all %d live shards failed", failedCount))
	}
	return false
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	var body serve.QueryRequest
	if !serve.DecodeJSON(w, req, &body) {
		return
	}
	oks, failed := scatter(r, req.Context(), func(ctx context.Context, s *shard) (serve.QueryResponse, error) {
		return s.client.Query(ctx, &body)
	})
	if !r.gatewayCheck(w, len(oks), len(failed)) {
		return
	}
	merged := mergeMatches(oks)
	r.notePartial(failed)
	serve.WriteJSON(w, http.StatusOK, RouterQueryResponse{
		QueryResponse: serve.QueryResponse{Matches: merged, Count: len(merged)},
		Partial:       len(failed) > 0,
		Failed:        failed,
	})
}

func (r *Router) handleTopK(w http.ResponseWriter, req *http.Request) {
	var body serve.TopKRequest
	if !serve.DecodeJSON(w, req, &body) {
		return
	}
	k := body.K
	if k == 0 {
		k = 10
	}
	oks, failed := scatter(r, req.Context(), func(ctx context.Context, s *shard) (serve.TopKResponse, error) {
		return s.client.TopK(ctx, &body)
	})
	if !r.gatewayCheck(w, len(oks), len(failed)) {
		return
	}
	merged := mergeTopK(oks, k)
	r.notePartial(failed)
	serve.WriteJSON(w, http.StatusOK, RouterTopKResponse{
		TopKResponse: serve.TopKResponse{Matches: merged, Count: len(merged)},
		Partial:      len(failed) > 0,
		Failed:       failed,
	})
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	var body serve.BatchRequest
	if !serve.DecodeJSON(w, req, &body) {
		return
	}
	if len(body.Queries) == 0 {
		serve.WriteError(w, http.StatusBadRequest, errors.New("queries must be non-empty"))
		return
	}
	oks, failed := scatter(r, req.Context(), func(ctx context.Context, s *shard) (serve.BatchResponse, error) {
		return s.client.Batch(ctx, &body)
	})
	if !r.gatewayCheck(w, len(oks), len(failed)) {
		return
	}
	rows := mergeBatch(oks, len(body.Queries))
	r.notePartial(failed)
	serve.WriteJSON(w, http.StatusOK, RouterBatchResponse{
		BatchResponse: serve.BatchResponse{Rows: rows},
		Partial:       len(failed) > 0,
		Failed:        failed,
	})
}

// --- merges ---
//
// All merges are deterministic: dedup by key, sort by (score, key) or key,
// so the answer depends only on the multiset of shard responses, not on
// arrival order. Dedup also makes replicated fleets answer each key once.

// mergeMatches unions match lists, dedups by key, and sorts.
func mergeMatches(responses []serve.QueryResponse) []string {
	seen := make(map[string]struct{}, 64)
	merged := make([]string, 0, 64)
	for _, resp := range responses {
		for _, key := range resp.Matches {
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				merged = append(merged, key)
			}
		}
	}
	sort.Strings(merged)
	return merged
}

// mergeTopK dedups ranked matches by key keeping the best score, orders by
// (score desc, key asc), and truncates to k. Each shard returned its local
// top k, and any key in the global top k is in its owner's local top k, so
// the merge is exact.
func mergeTopK(responses []serve.TopKResponse, k int) []serve.TopKMatch {
	best := make(map[string]float64, 64)
	for _, resp := range responses {
		for _, m := range resp.Matches {
			if prev, ok := best[m.Key]; !ok || m.EstContainment > prev {
				best[m.Key] = m.EstContainment
			}
		}
	}
	merged := make([]serve.TopKMatch, 0, len(best))
	for key, est := range best {
		merged = append(merged, serve.TopKMatch{Key: key, EstContainment: est})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].EstContainment != merged[j].EstContainment {
			return merged[i].EstContainment > merged[j].EstContainment
		}
		return merged[i].Key < merged[j].Key
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// mergeBatch unions row-by-row: every shard answered the same batch, so
// row i of the merge is the dedup-union of every shard's row i.
func mergeBatch(responses []serve.BatchResponse, numRows int) []serve.QueryResponse {
	rows := make([]serve.QueryResponse, numRows)
	seen := make(map[string]struct{}, 64)
	for i := range rows {
		clear(seen)
		merged := []string{}
		for _, resp := range responses {
			if i >= len(resp.Rows) {
				continue
			}
			for _, key := range resp.Rows[i].Matches {
				if _, dup := seen[key]; !dup {
					seen[key] = struct{}{}
					merged = append(merged, key)
				}
			}
		}
		sort.Strings(merged)
		rows[i] = serve.QueryResponse{Matches: merged, Count: len(merged)}
	}
	return rows
}

// --- fleet admin ---

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	type named struct {
		name string
		resp serve.StatsResponse
	}
	oks, failed := scatter(r, req.Context(), func(ctx context.Context, s *shard) (named, error) {
		resp, err := s.client.Stats(ctx)
		return named{name: s.name, resp: resp}, err
	})
	if !r.gatewayCheck(w, len(oks), len(failed)) {
		return
	}
	out := RouterStatsResponse{Shards: make(map[string]serve.StatsResponse, len(oks)), Failed: failed, Partial: len(failed) > 0}
	for _, n := range oks {
		out.Shards[n.name] = n.resp
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

func (r *Router) handleSave(w http.ResponseWriter, req *http.Request) {
	type named struct {
		name string
		resp serve.SaveResponse
	}
	oks, failed := scatter(r, req.Context(), func(ctx context.Context, s *shard) (named, error) {
		resp, err := s.client.Save(ctx)
		return named{name: s.name, resp: resp}, err
	})
	if !r.gatewayCheck(w, len(oks), len(failed)) {
		return
	}
	out := RouterSaveResponse{Shards: make(map[string]serve.SaveResponse, len(oks)), Failed: failed, Partial: len(failed) > 0}
	for _, n := range oks {
		out.Shards[n.name] = n.resp
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

func (r *Router) handleCompact(w http.ResponseWriter, req *http.Request) {
	type named struct {
		name string
		resp serve.StatsResponse
	}
	oks, failed := scatter(r, req.Context(), func(ctx context.Context, s *shard) (named, error) {
		resp, err := s.client.Compact(ctx)
		return named{name: s.name, resp: resp}, err
	})
	if !r.gatewayCheck(w, len(oks), len(failed)) {
		return
	}
	out := RouterStatsResponse{Shards: make(map[string]serve.StatsResponse, len(oks)), Failed: failed, Partial: len(failed) > 0}
	for _, n := range oks {
		out.Shards[n.name] = n.resp
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

func (r *Router) handleRing(w http.ResponseWriter, _ *http.Request) {
	ring := r.ring.Load()
	shares := ring.Shares()
	out := RingResponse{
		Replication: r.opts.Ring.Replication,
		Vnodes:      r.opts.Ring.Vnodes,
		LoadFactor:  r.opts.Ring.LoadFactor,
	}
	for _, s := range r.shards {
		out.Shards = append(out.Shards, ShardInfo{
			Name:  s.name,
			Alive: s.alive.Load(),
			Share: shares[s.name],
		})
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	live := len(r.liveShards())
	status := http.StatusOK
	if live == 0 {
		status = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, status, map[string]int{"live": live, "shards": len(r.shards)})
}
