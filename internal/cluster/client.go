package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"lshensemble/internal/obs"
	"lshensemble/internal/serve"
)

// Client speaks the shard wire protocol (internal/serve's JSON types) to
// one lshensembled instance. Every call takes a context — the router caps
// each scatter leg with its per-shard deadline, and the transport's dial
// and response-header timeouts bound the cases a context alone cannot
// (a SYN blackhole, a shard that accepts but never answers).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for one shard base URL ("http://host:port").
// timeout bounds connection establishment and time-to-first-header; per
// request deadlines come from the caller's context.
func NewClient(base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	tr := &http.Transport{
		DialContext:           (&net.Dialer{Timeout: timeout}).DialContext,
		ResponseHeaderTimeout: timeout,
		MaxIdleConnsPerHost:   32,
		IdleConnTimeout:       90 * time.Second,
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{Transport: tr}}
}

// Base returns the shard base URL the client was built with.
func (c *Client) Base() string { return c.base }

// do sends one JSON request and decodes one JSON response. Non-2xx answers
// surface the shard's error envelope.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the router's trace ID so one request ID follows the call
	// from router access log to shard access log.
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var e serve.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("shard %s: %s %s: %s", c.base, method, path, e.Error)
		}
		return fmt.Errorf("shard %s: %s %s: HTTP %d", c.base, method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, serve.MaxRequestBody)).Decode(out); err != nil {
		return fmt.Errorf("shard %s: decoding %s response: %w", c.base, path, err)
	}
	return nil
}

// Add forwards one ingest to the shard.
func (c *Client) Add(ctx context.Context, req *serve.AddRequest) (serve.AddResponse, error) {
	var out serve.AddResponse
	err := c.do(ctx, http.MethodPost, "/add", req, &out)
	return out, err
}

// Delete forwards one delete to the shard.
func (c *Client) Delete(ctx context.Context, req *serve.DeleteRequest) (serve.DeleteResponse, error) {
	var out serve.DeleteResponse
	err := c.do(ctx, http.MethodPost, "/delete", req, &out)
	return out, err
}

// Query runs one containment query on the shard.
func (c *Client) Query(ctx context.Context, req *serve.QueryRequest) (serve.QueryResponse, error) {
	var out serve.QueryResponse
	err := c.do(ctx, http.MethodPost, "/query", req, &out)
	return out, err
}

// TopK runs one ranked query on the shard.
func (c *Client) TopK(ctx context.Context, req *serve.TopKRequest) (serve.TopKResponse, error) {
	var out serve.TopKResponse
	err := c.do(ctx, http.MethodPost, "/query/topk", req, &out)
	return out, err
}

// Batch runs one query batch on the shard.
func (c *Client) Batch(ctx context.Context, req *serve.BatchRequest) (serve.BatchResponse, error) {
	var out serve.BatchResponse
	err := c.do(ctx, http.MethodPost, "/query/batch", req, &out)
	return out, err
}

// Stats fetches the shard's index shape.
func (c *Client) Stats(ctx context.Context) (serve.StatsResponse, error) {
	var out serve.StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Compact triggers a full compaction on the shard.
func (c *Client) Compact(ctx context.Context) (serve.StatsResponse, error) {
	var out serve.StatsResponse
	err := c.do(ctx, http.MethodPost, "/compact", nil, &out)
	return out, err
}

// Save asks the shard to persist a snapshot.
func (c *Client) Save(ctx context.Context) (serve.SaveResponse, error) {
	var out serve.SaveResponse
	err := c.do(ctx, http.MethodPost, "/save", nil, &out)
	return out, err
}

// Health probes the shard's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
