// Package segfile provides the byte-level plumbing of out-of-core sealed
// segments (internal/live): a read-only Backing abstracting "the contents of
// one segment file" over either a private heap copy or a memory-mapped view,
// zero-copy typed views of little-endian on-disk arrays, and crash-safe
// atomic file writes.
//
// The flat storage layout of internal/lshforest (one contiguous []uint64
// signature store, flat per-tree order and leading-value columns) was chosen
// so binary-search probes work unchanged on a mapped file; this package is
// the piece that turns mapped bytes back into those slices without copying.
// On Linux, OpenMapped uses mmap(2) (via the stdlib syscall package — the
// repo carries no dependencies); everywhere else it degrades to a heap read
// with identical semantics, only the paging behavior differs.
package segfile

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"unsafe"
)

// Backing is a read-only byte region holding one file's contents. Exactly
// one of two forms: a private heap buffer (OpenHeap, FromBytes, or the
// non-Linux OpenMapped fallback) or a memory-mapped view of the file
// (OpenMapped on Linux). Callers must not mutate the bytes, and must not
// touch them after Close — for a mapped backing that is a hard rule, not a
// convention: the pages are gone.
type Backing struct {
	data   []byte
	mapped bool
	closed atomic.Bool
}

// FromBytes wraps an in-memory buffer as a Backing (no copy). Close is a
// no-op beyond dropping the reference.
func FromBytes(b []byte) *Backing { return &Backing{data: b} }

// OpenHeap reads the whole file into a private heap buffer.
func OpenHeap(path string) (*Backing, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Backing{data: data}, nil
}

// OpenMapped maps the file read-only when the platform supports it (Linux);
// elsewhere it falls back to OpenHeap. Mapped() reports which form resulted.
func OpenMapped(path string) (*Backing, error) { return openMapped(path) }

// Bytes returns the backing's contents. The slice is valid until Close.
func (b *Backing) Bytes() []byte { return b.data }

// Len returns the content length in bytes.
func (b *Backing) Len() int { return len(b.data) }

// Mapped reports whether the bytes are a memory-mapped view (true only on
// platforms with mmap support).
func (b *Backing) Mapped() bool { return b.mapped }

// Close releases the backing: munmap for mapped regions, a reference drop
// for heap buffers. Idempotent and nil-safe. No reader may hold views of
// Bytes() across Close — internal/live enforces this with snapshot
// reference counting.
func (b *Backing) Close() error {
	if b == nil || !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	data := b.data
	b.data = nil
	if b.mapped {
		return munmap(data)
	}
	return nil
}

// Elem constrains the element types of typed on-disk array views: the hash
// value widths of the pluggable sketch backends (b-bit minwise stores 1, 2
// or 4 bytes per value, the default minwise stores 8).
type Elem interface {
	~uint8 | ~uint16 | ~uint32 | ~uint64
}

// decodeView is the portable fallback of View: an explicit little-endian
// decode into a fresh slice (used on big-endian hosts and for misaligned
// input).
func decodeView[E Elem](b []byte) []E {
	w := int(unsafe.Sizeof(E(0)))
	out := make([]E, len(b)/w)
	for i := range out {
		var u uint64
		for k := w - 1; k >= 0; k-- {
			u = u<<8 | uint64(b[i*w+k])
		}
		out[i] = E(u)
	}
	return out
}

// decodeUint64s is the portable fallback of Uint64s: an explicit
// little-endian decode into a fresh slice (used on big-endian hosts and for
// misaligned input).
func decodeUint64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = uint64(b[i*8]) | uint64(b[i*8+1])<<8 | uint64(b[i*8+2])<<16 | uint64(b[i*8+3])<<24 |
			uint64(b[i*8+4])<<32 | uint64(b[i*8+5])<<40 | uint64(b[i*8+6])<<48 | uint64(b[i*8+7])<<56
	}
	return out
}

// decodeUint32s is the portable fallback of Uint32s.
func decodeUint32s(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
	}
	return out
}

// WriteAtomic durably replaces path with data: a same-directory temp file
// is written and fsynced, renamed over path, and the directory entry is
// synced. A crash at any point leaves either the complete old file or the
// complete new one — never a torn mix (the crash-safety contract every
// segment-file and snapshot write in this repo relies on).
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".segfile-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	SyncDir(dir)
	return nil
}

// SyncDir fsyncs a directory so completed renames and removes inside it are
// durable. Errors are swallowed: some filesystems and platforms cannot sync
// a directory handle, and the rename itself is still atomic — only the
// durability of the directory entry is best-effort there.
func SyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
