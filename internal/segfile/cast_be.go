//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package segfile

// Big-endian hosts cannot view the little-endian on-disk arrays in place, so
// every typed view decodes into a fresh heap slice. Correct but not
// zero-copy; the out-of-core path then behaves like an eager load.

// View decodes b, a little-endian array of E, into a fresh []E.
func View[E Elem](b []byte) []E { return decodeView[E](b) }

// Uint64s decodes b, a little-endian u64 array, into a fresh []uint64.
func Uint64s(b []byte) []uint64 { return decodeUint64s(b) }

// Uint32s decodes b, a little-endian u32 array, into a fresh []uint32.
func Uint32s(b []byte) []uint32 { return decodeUint32s(b) }
