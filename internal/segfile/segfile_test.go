package segfile

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := []byte("first contents")
	if err := WriteAtomic(path, want); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}

	// Replacing an existing file must leave exactly the new contents.
	want = []byte("second, longer contents entirely")
	if err := WriteAtomic(path, want); err != nil {
		t.Fatalf("WriteAtomic replace: %v", err)
	}
	if got, _ = os.ReadFile(path); !bytes.Equal(got, want) {
		t.Fatalf("after replace read %q, want %q", got, want)
	}

	// No temp files may survive a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "blob" {
			t.Fatalf("leftover file %q after WriteAtomic", e.Name())
		}
	}
}

func TestOpenHeapAndMappedAgree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	data := make([]byte, 4096+123) // deliberately not page-sized
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := WriteAtomic(path, data); err != nil {
		t.Fatal(err)
	}

	heap, err := OpenHeap(path)
	if err != nil {
		t.Fatalf("OpenHeap: %v", err)
	}
	defer heap.Close()
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer mapped.Close()

	if heap.Mapped() {
		t.Fatal("OpenHeap returned a mapped backing")
	}
	if !bytes.Equal(heap.Bytes(), data) {
		t.Fatal("heap bytes differ from file contents")
	}
	if !bytes.Equal(mapped.Bytes(), data) {
		t.Fatal("mapped bytes differ from file contents")
	}
	if heap.Len() != len(data) || mapped.Len() != len(data) {
		t.Fatalf("Len() = %d / %d, want %d", heap.Len(), mapped.Len(), len(data))
	}
}

func TestCloseIdempotentAndNilSafe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	if err := WriteAtomic(path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, open := range []func(string) (*Backing, error){OpenHeap, OpenMapped} {
		b, err := open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
	var nilBack *Backing
	if err := nilBack.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestEmptyFileMaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := WriteAtomic(path, nil); err != nil {
		t.Fatal(err)
	}
	b, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped on empty file: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", b.Len())
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCastsMatchPortableDecode checks the zero-copy casts against the
// explicit little-endian decode at every alignment offset, so the
// aligned fast path and the misaligned copy fallback both get exercised
// regardless of where the allocator puts the buffer.
func TestCastsMatchPortableDecode(t *testing.T) {
	raw := make([]byte, 8*17+8)
	for i := range raw {
		raw[i] = byte(i*97 + 13)
	}
	for off := 0; off < 8; off++ {
		b := raw[off : off+8*16]
		want64 := decodeUint64s(b)
		got64 := Uint64s(b)
		if len(got64) != len(want64) {
			t.Fatalf("off %d: Uint64s len %d, want %d", off, len(got64), len(want64))
		}
		for i := range want64 {
			if got64[i] != want64[i] {
				t.Fatalf("off %d: Uint64s[%d] = %#x, want %#x", off, i, got64[i], want64[i])
			}
		}
		b32 := raw[off : off+4*16]
		want32 := decodeUint32s(b32)
		got32 := Uint32s(b32)
		for i := range want32 {
			if got32[i] != want32[i] {
				t.Fatalf("off %d: Uint32s[%d] = %#x, want %#x", off, i, got32[i], want32[i])
			}
		}
	}
	if Uint64s(nil) != nil || Uint32s(nil) != nil {
		t.Fatal("casts of empty input must be nil")
	}
}

// TestCastsSeeWrittenValues round-trips typed values through the on-disk
// encoding: put with binary.LittleEndian, read back through the casts.
func TestCastsSeeWrittenValues(t *testing.T) {
	vals := []uint64{0, 1, 1<<63 - 1, ^uint64(0), 0xdeadbeefcafebabe}
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	got := Uint64s(b)
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("Uint64s[%d] = %#x, want %#x", i, got[i], v)
		}
	}
}
