//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

package segfile

import "unsafe"

// On little-endian hosts the on-disk little-endian arrays can be viewed in
// place: a segment file's signature store and tree columns become []uint64 /
// []uint32 headers over the mapped bytes, so opening a segment touches no
// data pages. Misaligned input (possible when a caller embeds an image at an
// arbitrary offset of a larger buffer) falls back to the decoding copy —
// semantically identical, just not zero-copy.

// View views b, a little-endian array of E whose length is a multiple of
// E's size, as []E — the width-generic form of Uint64s/Uint32s serving the
// pluggable sketch widths. The result aliases b when zero-copy applies;
// callers must treat it as read-only and must not outlive b's backing.
func View[E Elem](b []byte) []E {
	if len(b) == 0 {
		return nil
	}
	w := unsafe.Sizeof(E(0))
	if uintptr(unsafe.Pointer(&b[0]))%w != 0 {
		return decodeView[E](b)
	}
	return unsafe.Slice((*E)(unsafe.Pointer(&b[0])), uintptr(len(b))/w)
}

// Uint64s views b, a little-endian u64 array whose length is a multiple of
// 8, as []uint64. The result aliases b when zero-copy applies; callers must
// treat it as read-only and must not outlive b's backing.
func Uint64s(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return decodeUint64s(b)
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Uint32s views b, a little-endian u32 array whose length is a multiple of
// 4, as []uint32, under the same aliasing rules as Uint64s.
func Uint32s(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return decodeUint32s(b)
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}
