//go:build !linux

package segfile

// Non-Linux builds serve "mapped" opens from a heap read: callers observe
// identical bytes and an identical API, they just don't get lazy page
// faulting. Mapped() reports false so observability (Stats backing kind)
// stays truthful.
func openMapped(path string) (*Backing, error) { return OpenHeap(path) }

func munmap([]byte) error { return nil }
