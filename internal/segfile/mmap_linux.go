//go:build linux

package segfile

import (
	"fmt"
	"os"
	"syscall"
)

// openMapped maps the file read-only with mmap(2). The stdlib syscall
// package is used deliberately: the repo carries no module dependencies, and
// syscall.Mmap is the same call golang.org/x/sys/unix would make.
func openMapped(path string) (*Backing, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length mappings; an empty file has no pages to
		// share anyway.
		return &Backing{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("segfile: %s (%d bytes) exceeds the addressable mapping size", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("segfile: mmap %s: %w", path, err)
	}
	return &Backing{data: data, mapped: true}, nil
}

func munmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
