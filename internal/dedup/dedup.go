// Package dedup provides a generation-stamped visited set over dense uint32
// ids — the allocation-free replacement for a per-query map[uint32]struct{}
// used by every query path's candidate dedup. One Set is recycled across
// queries (typically through a sync.Pool); Reset starts a new query's
// generation in O(1) instead of clearing or reallocating.
package dedup

// Set marks ids in a dense universe [0, n). The zero value is ready to use
// after a Reset. A Set must not be shared by concurrent queries.
type Set struct {
	gen   uint32
	marks []uint32 // marks[id] == gen ⇔ id is marked in the current generation
}

// Reset prepares the set for a universe of n ids and starts a fresh
// generation: every previously marked id becomes unmarked in O(1). The
// backing array reallocates only when the universe grew, and is fully
// cleared only when the generation counter wraps (stale stamps could
// otherwise alias the new generation).
func (s *Set) Reset(n int) {
	if len(s.marks) < n {
		s.marks = make([]uint32, n)
		s.gen = 0
	}
	s.gen++
	if s.gen == 0 {
		clear(s.marks)
		s.gen = 1
	}
}

// TryMark marks id and reports whether it was unmarked before — true means
// the caller sees this id for the first time this generation. id must be
// below the n of the last Reset.
func (s *Set) TryMark(id uint32) bool {
	if s.marks[id] == s.gen {
		return false
	}
	s.marks[id] = s.gen
	return true
}
