package dedup

import "testing"

func TestTryMarkReportsFirstSightingOnly(t *testing.T) {
	var s Set
	s.Reset(10)
	if !s.TryMark(3) {
		t.Fatal("first TryMark(3) reported already marked")
	}
	if s.TryMark(3) {
		t.Fatal("second TryMark(3) reported unmarked")
	}
	if !s.TryMark(9) {
		t.Fatal("first TryMark(9) reported already marked")
	}
}

func TestResetInvalidatesMarks(t *testing.T) {
	var s Set
	s.Reset(4)
	s.TryMark(0)
	s.TryMark(3)
	s.Reset(4)
	for id := uint32(0); id < 4; id++ {
		if !s.TryMark(id) {
			t.Fatalf("id %d still marked after Reset", id)
		}
	}
}

func TestResetGrowsUniverse(t *testing.T) {
	var s Set
	s.Reset(2)
	s.TryMark(1)
	s.Reset(100)
	if !s.TryMark(99) {
		t.Fatal("id 99 unexpectedly marked in grown universe")
	}
	if s.TryMark(1) != true {
		t.Fatal("id 1 leaked its mark across a growing Reset")
	}
}

// TestGenerationWrap forces the uint32 generation counter to wrap and
// checks stale stamps cannot alias the new generation.
func TestGenerationWrap(t *testing.T) {
	var s Set
	s.Reset(3)
	s.TryMark(2)
	s.gen = ^uint32(0) // next Reset wraps to 0 and must clear
	s.marks[1] = 0     // a stale stamp equal to the post-wrap generation value
	s.Reset(3)
	if s.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", s.gen)
	}
	for id := uint32(0); id < 3; id++ {
		if !s.TryMark(id) {
			t.Fatalf("id %d aliased across generation wrap", id)
		}
	}
}
