package live

import (
	"bytes"
	"fmt"
	"testing"

	"lshensemble/internal/core"
)

// sketchOpts is liveOpts with a non-default sketch backend.
func sketchOpts(sb core.SketchBackend) Options {
	opts := liveOpts()
	opts.Sketch = sb
	return opts
}

// narrowBackends are the b-bit minwise backends every matrix test runs over.
var narrowBackends = []core.SketchBackend{core.Minwise8, core.Minwise16, core.Minwise32}

// TestSketchBackendSelfRetrieval: a b-bit store only raises band collision
// probability relative to Minwise64, so self-retrieval at threshold 1.0 must
// survive every backend — across sealed segments AND the unsealed buffer
// (whose masked scan must collide exactly like the sealed forest would).
func TestSketchBackendSelfRetrieval(t *testing.T) {
	recs := fixture(t, 120, 5)
	for _, sb := range narrowBackends {
		t.Run(sb.String(), func(t *testing.T) {
			x, err := Build(recs[:80], sketchOpts(sb))
			if err != nil {
				t.Fatal(err)
			}
			defer x.Close()
			for _, r := range recs[80:] { // buffered
				if _, err := x.Add(r); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range recs {
				if !contains(x.Query(r.Sig, r.Size, 1.0), r.Key) {
					t.Fatalf("%s: %s not self-retrieved", sb, r.Key)
				}
			}
			top := x.QueryTopK(recs[0].Sig, recs[0].Size, 3)
			if len(top) == 0 || top[0].Key != recs[0].Key {
				t.Fatalf("%s: top-1 of self query = %v", sb, top)
			}
		})
	}
}

// TestSketchBackendSupersetOfMinwise64: truncation can only add candidates
// (chance collisions in the surviving bits), never lose one — every
// Minwise64 answer must be contained in the narrow backend's answer.
func TestSketchBackendSupersetOfMinwise64(t *testing.T) {
	recs := fixture(t, 150, 6)
	full, err := Build(recs, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	for _, sb := range narrowBackends {
		t.Run(sb.String(), func(t *testing.T) {
			x, err := Build(recs, sketchOpts(sb))
			if err != nil {
				t.Fatal(err)
			}
			defer x.Close()
			for _, r := range recs[:40] {
				for _, tStar := range []float64{0.5, 0.8, 1.0} {
					want := full.Query(r.Sig, r.Size, tStar)
					got := x.Query(r.Sig, r.Size, tStar)
					for _, k := range want {
						if !contains(got, k) {
							t.Fatalf("%s t=%v: candidate %s lost by truncation", sb, tStar, k)
						}
					}
				}
			}
		})
	}
}

// TestSketchBackendSaveLoadRoundTrip saves and reloads a narrow-backend
// index (v4 manifest) and demands identical answers and shape; it also
// exercises the seed-style mismatch rejection when the configured backend
// disagrees with the manifest.
func TestSketchBackendSaveLoadRoundTrip(t *testing.T) {
	recs := fixture(t, 100, 7)
	for _, sb := range narrowBackends {
		t.Run(sb.String(), func(t *testing.T) {
			x, err := Build(recs[:70], sketchOpts(sb))
			if err != nil {
				t.Fatal(err)
			}
			defer x.Close()
			for _, r := range recs[70:] {
				if _, err := x.Add(r); err != nil {
					t.Fatal(err)
				}
			}
			x.Delete(recs[10].Key)
			var buf bytes.Buffer
			if err := x.Save(&buf); err != nil {
				t.Fatal(err)
			}

			// Zero-value Sketch adopts the manifest's backend.
			y, err := Load(bytes.NewReader(buf.Bytes()), func() Options {
				o := liveOpts()
				o.Sketch = 0
				return o
			}())
			if err != nil {
				t.Fatal(err)
			}
			defer y.Close()
			if got := y.Options().Sketch; got != sb {
				t.Fatalf("loaded sketch %s, want %s", got, sb)
			}
			if y.Len() != x.Len() {
				t.Fatalf("loaded Len %d, want %d", y.Len(), x.Len())
			}
			for _, r := range recs[:30] {
				want := x.Query(r.Sig, r.Size, 0.8)
				got := y.Query(r.Sig, r.Size, 0.8)
				if fmt.Sprint(sortedKeys(got)) != fmt.Sprint(sortedKeys(want)) {
					t.Fatalf("round trip changed answer: %v vs %v", got, want)
				}
			}

			// Explicitly configured matching backend also loads.
			if z, err := Load(bytes.NewReader(buf.Bytes()), sketchOpts(sb)); err != nil {
				t.Fatalf("matching configured backend rejected: %v", err)
			} else {
				z.Close()
			}
			// A conflicting non-default backend is rejected, like NumHash.
			wrong := core.Minwise8
			if sb == core.Minwise8 {
				wrong = core.Minwise16
			}
			if _, err := Load(bytes.NewReader(buf.Bytes()), sketchOpts(wrong)); err == nil {
				t.Fatalf("mismatched backend %s accepted against %s manifest", wrong, sb)
			}
		})
	}
}

// TestSketchBackendOutOfCore runs the heap/spill/mmap trio under each narrow
// backend: the LSEG v2 width-scaled sections must be invisible to queries.
func TestSketchBackendOutOfCore(t *testing.T) {
	recs := fixture(t, 120, 8)
	for _, sb := range narrowBackends {
		t.Run(sb.String(), func(t *testing.T) {
			mk := func(dataDir string, mmap bool) *Index {
				opts := sketchOpts(sb)
				opts.DataDir = dataDir
				opts.Mmap = mmap
				x, err := Build(recs, opts)
				if err != nil {
					t.Fatal(err)
				}
				return x
			}
			heap := mk("", false)
			defer heap.Close()
			spill := mk(t.TempDir(), false)
			defer spill.Close()
			mapped := mk(t.TempDir(), true)
			defer mapped.Close()
			requireSameAnswers(t, sb.String(), heap, spill, mapped, recs[:30])
		})
	}
}

// TestSketchBackendSignatureBytes pins the acceptance ratio: the b-bit
// stores must shrink the sealed signature footprint by exactly width/8, so
// Minwise16 reports ≤ 0.5× the Minwise64 bytes.
func TestSketchBackendSignatureBytes(t *testing.T) {
	recs := fixture(t, 200, 9)
	bytesFor := func(sb core.SketchBackend) int64 {
		x, err := Build(recs, sketchOpts(sb))
		if err != nil {
			t.Fatal(err)
		}
		defer x.Close()
		st := x.Stats()
		if st.Sketch != sb.String() {
			t.Fatalf("Stats.Sketch = %q, want %q", st.Sketch, sb)
		}
		if len(st.SegmentDetail) == 0 || st.SegmentDetail[0].SignatureBytes <= 0 {
			t.Fatalf("%s: missing per-segment signature bytes: %+v", sb, st.SegmentDetail)
		}
		return st.SignatureBytes
	}
	full := bytesFor(core.Minwise64)
	for _, sb := range narrowBackends {
		got := bytesFor(sb)
		want := full * int64(sb.WidthBytes()) / 8
		if got != want {
			t.Fatalf("%s signature bytes %d, want %d (%d × %d/8)", sb, got, want, full, sb.WidthBytes())
		}
	}
	if b16 := bytesFor(core.Minwise16); 2*b16 > full {
		t.Fatalf("minwise16 bytes %d not ≤ 0.5× minwise64 %d", b16, full)
	}
}

// TestSketchBackendCompactEquivalence fully compacts a mixed buffer+segment
// state and requires the result to answer exactly like a fresh Build over
// the surviving records (the package's compaction invariant) — truncation is
// idempotent, so re-sealing stored truncations through full-width signature
// carriers must be lossless under every backend.
func TestSketchBackendCompactEquivalence(t *testing.T) {
	recs := fixture(t, 140, 11)
	for _, sb := range narrowBackends {
		t.Run(sb.String(), func(t *testing.T) {
			x, err := Build(recs[:90], sketchOpts(sb))
			if err != nil {
				t.Fatal(err)
			}
			defer x.Close()
			for _, r := range recs[90:] {
				if _, err := x.Add(r); err != nil {
					t.Fatal(err)
				}
			}
			x.Delete(recs[3].Key)
			x.Compact()
			survivors := append(append([]core.Record(nil), recs[:3]...), recs[4:]...)
			fresh, err := Build(survivors, sketchOpts(sb))
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			for i, r := range recs[:40] {
				got := sortedKeys(x.Query(r.Sig, r.Size, 0.7))
				want := sortedKeys(fresh.Query(r.Sig, r.Size, 0.7))
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s: compacted answer %d diverges from fresh build: %v vs %v", sb, i, got, want)
				}
			}
		})
	}
}
