package live

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"testing"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/segfile"
)

// encodeV3 rewrites a current (v4) Minwise64 manifest into the v3 wire
// form: same layout minus the sketch-tag word, checksum recomputed. This is
// what v3 deployments have on disk.
func encodeV3(f testing.TB, x *Index) []byte {
	f.Helper()
	b := x.AppendBinary(nil)
	v3 := append([]byte(nil), b[:16]...)
	binary.LittleEndian.PutUint32(v3[4:], liveVersionV3)
	v3 = append(v3, b[20:len(b)-8]...)
	return binary.LittleEndian.AppendUint64(v3, crc64.Checksum(v3, crcTable))
}

// fuzzLoadSeedIndex is a miniature goldenIndex: one sealed segment,
// buffered entries, and tombstones, at NumHash 16 so the seed manifests
// stay a few KB — the fuzzer minimizes every coverage-expanding mutation,
// and that cost scales with seed size.
func fuzzLoadSeedIndex(f testing.TB) *Index {
	f.Helper()
	h := minhash.NewHasher(16, 5)
	recs := make([]core.Record, 20)
	for i := range recs {
		sig := h.NewSignature()
		for j := 0; j < 10+i; j++ {
			h.PushHashed(sig, minhash.HashUint64(uint64(i*64+j)))
		}
		recs[i] = core.Record{Key: string(rune('a' + i)), Size: 10 + i, Sig: sig}
	}
	x, err := Build(recs[:12], Options{
		Options:          core.Options{NumHash: 16, RMax: 4, NumPartitions: 3},
		SealThreshold:    8,
		ManualCompaction: true,
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range recs[12:17] {
		if _, err := x.Add(r); err != nil {
			f.Fatal(err)
		}
	}
	x.Flush()
	x.Delete(recs[2].Key)
	x.Delete(recs[13].Key)
	for _, r := range recs[17:] {
		if _, err := x.Add(r); err != nil {
			f.Fatal(err)
		}
	}
	return x
}

// FuzzLoad feeds the snapshot loader hostile manifests across every wire
// version (v1/v2 legacy, v3 checksummed, v4 sketch-tagged). The loader's
// contract: never panic, bound every allocation by the remaining bytes,
// and any accepted index must be queryable and re-save into a manifest
// that loads back to the same logical state.
func FuzzLoad(f *testing.F) {
	x := fuzzLoadSeedIndex(f)
	defer x.Close()
	f.Add(x.AppendBinary(nil)) // current v4
	f.Add(encodeLegacy(f, x, liveVersionV1))
	f.Add(encodeLegacy(f, x, liveVersionV2))
	f.Add(encodeV3(f, x))
	f.Add([]byte{})
	f.Add([]byte("LIVE"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Empty DataDir: fileref segments are rejected cleanly, so the
		// fuzzer can't be tricked into touching the filesystem.
		got, err := Load(bytes.NewReader(data), Options{ManualCompaction: true})
		if err != nil {
			return
		}
		defer got.Close()
		if got.Len() < 0 {
			t.Fatalf("negative Len")
		}
		// Probe the query path, unless the header claims an absurd
		// signature length (the loader is payload-bounded; the test's own
		// query signature would not be).
		if nh := got.opts.NumHash; nh <= 1<<12 {
			sig := make(minhash.Signature, nh)
			_ = got.Query(sig, 1, 0.5)
		}
		re := got.AppendBinary(nil)
		again, err := Load(bytes.NewReader(re), Options{ManualCompaction: true})
		if err != nil {
			t.Fatalf("re-save of accepted manifest rejected: %v", err)
		}
		defer again.Close()
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed Len: %d -> %d", got.Len(), again.Len())
		}
	})
}

// fuzzSegSeed builds one sealed segment under the given backend and
// returns its segment-file byte image.
func fuzzSegSeed(f *testing.F, sb core.SketchBackend) []byte {
	f.Helper()
	h := minhash.NewHasher(16, 9)
	recs := make([]core.Record, 10)
	for i := range recs {
		sig := h.NewSignature()
		for j := 0; j < 12+i; j++ {
			h.PushHashed(sig, minhash.HashUint64(uint64(i*50+j)))
		}
		recs[i] = core.Record{Key: string(rune('a' + i)), Size: 12 + i, Sig: sig}
	}
	x, err := Build(recs, Options{
		Options:          core.Options{NumHash: 16, RMax: 4, NumPartitions: 3, Sketch: sb},
		ManualCompaction: true,
	})
	if err != nil {
		f.Fatal(err)
	}
	defer x.Close()
	sn := x.snap.Load()
	if len(sn.segs) != 1 {
		f.Fatalf("seed index sealed %d segments, want 1", len(sn.segs))
	}
	return segmentImage(sn.segs[0])
}

// FuzzSegmentImage attacks the out-of-core segment-file parser through an
// in-memory backing — the same code path a hostile file on disk reaches,
// without the fuzzer touching the filesystem. Accepted segments must be
// structurally sound and queryable.
func FuzzSegmentImage(f *testing.F) {
	f.Add(fuzzSegSeed(f, core.Minwise64))
	f.Add(fuzzSegSeed(f, core.Minwise16))
	f.Add([]byte{})
	f.Add([]byte("LSG1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, sb := range []core.SketchBackend{core.Minwise64, core.Minwise16} {
			seg, err := openSegmentImage(segfile.FromBytes(data), 16, 4, sb, true)
			if err != nil {
				continue
			}
			n := seg.idx.Len()
			if n < 1 {
				t.Fatalf("accepted segment with %d records", n)
			}
			if len(seg.seqs) != n {
				t.Fatalf("%d seqs for %d records", len(seg.seqs), n)
			}
			if seg.idx.Sketch() != sb {
				t.Fatalf("segment sketch %v, opened as %v", seg.idx.Sketch(), sb)
			}
			sig := make(minhash.Signature, 16)
			if _, err := seg.idx.Query(sig, 1, 0.5); err != nil {
				t.Fatalf("query on accepted segment: %v", err)
			}
		}
	})
}
