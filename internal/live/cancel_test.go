package live

import (
	"context"
	"errors"
	"testing"

	"lshensemble/internal/core"
)

// cancelFixture builds a live index with several sealed segments plus a
// non-empty buffer, so the Context variants have real segment loops and a
// buffer scan to bail out of.
func cancelFixture(t *testing.T) (*Index, []core.Record) {
	t.Helper()
	recs := fixture(t, 200, 9)
	x, err := Build(recs[:120], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(x.Close)
	for _, r := range recs[120:160] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush() // second segment
	for _, r := range recs[160:] {
		if _, err := x.Add(r); err != nil { // stays buffered
			t.Fatal(err)
		}
	}
	return x, recs
}

// TestQueryContextCanceled: every Context query entry point must refuse a
// canceled context — and the result cache must never be poisoned by a
// truncated answer, so the same query re-run uncanceled returns the full
// result set.
func TestQueryContextCanceled(t *testing.T) {
	x, recs := cancelFixture(t)
	r := recs[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if got, err := x.QueryContext(ctx, r.Sig, r.Size, 0.5); !errors.Is(err, context.Canceled) || got != nil {
		t.Fatalf("QueryContext = (%v, %v), want (nil, Canceled)", got, err)
	}
	if got, err := x.QueryTopKContext(ctx, r.Sig, r.Size, 5); !errors.Is(err, context.Canceled) || got != nil {
		t.Fatalf("QueryTopKContext = (%v, %v), want (nil, Canceled)", got, err)
	}
	queries := []core.BatchQuery{{Sig: r.Sig, Size: r.Size, Threshold: 0.5}}
	if rows, err := x.QueryBatchContext(ctx, queries, 2); !errors.Is(err, context.Canceled) || rows != nil {
		t.Fatalf("QueryBatchContext = (%v, %v), want (nil, Canceled)", rows, err)
	}

	// The canceled attempts must not have cached truncated rows: the plain
	// path still answers in full and finds the query's own key.
	got := x.Query(r.Sig, r.Size, 0.5)
	if !contains(got, r.Key) {
		t.Fatalf("post-cancellation query lost self-retrieval: %v", got)
	}
}

// TestQueryContextUncanceledMatchesPlain: a live (uncanceled) context must
// not change any answer relative to the context-free entry points.
func TestQueryContextUncanceledMatchesPlain(t *testing.T) {
	x, recs := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < len(recs); i += 17 {
		r := recs[i]
		want := x.Query(r.Sig, r.Size, 0.5)
		got, err := x.QueryContext(ctx, r.Sig, r.Size, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !equalKeySets(got, want) {
			t.Fatalf("record %d: ctx path %d keys, plain path %d", i, len(got), len(want))
		}
		wantTop := x.QueryTopK(r.Sig, r.Size, 5)
		gotTop, err := x.QueryTopKContext(ctx, r.Sig, r.Size, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTop) != len(wantTop) {
			t.Fatalf("record %d: topk lengths differ: %d vs %d", i, len(gotTop), len(wantTop))
		}
		for j := range gotTop {
			if gotTop[j] != wantTop[j] {
				t.Fatalf("record %d topk rank %d: %+v vs %+v", i, j, gotTop[j], wantTop[j])
			}
		}
	}
	var queries []core.BatchQuery
	for i := 0; i < len(recs); i += 11 {
		queries = append(queries, core.BatchQuery{Sig: recs[i].Sig, Size: recs[i].Size, Threshold: 0.5})
	}
	want := x.QueryBatch(queries, 2)
	got, err := x.QueryBatchContext(ctx, queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !equalKeySets(got[i], want[i]) {
			t.Fatalf("batch row %d differs under uncanceled context", i)
		}
	}
}
