package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"

	"lshensemble/internal/core"
	"lshensemble/internal/lshforest"
	"lshensemble/internal/segfile"
)

// This file gives sealed segments their on-disk representation — the
// out-of-core format queries touch directly. A segment file persists the
// frozen core.Index exactly as it sits in memory (the contiguous signature
// store, the per-tree sorted orders and leading-value columns), so opening
// one is reassembly, not decoding: the planner metadata and per-record
// catalog are parsed eagerly from a small META section, while the probe
// arrays are typed views over the raw bytes (internal/segfile) that, under
// mmap, stay on disk until a probe faults them in.
//
// Segment file layout ("LSEG" versions 1 and 2, all integers little-endian,
// every section offset 4096-aligned so mapped views are page- and
// type-aligned):
//
//	header page:
//	    magic "LSEG" | version u32 | numHash u32 | rMax u32
//	    nParts u32 | sketch u32 | nRecords u64
//	    section table: 5 × (offset u64, length u64) for META, STORE, IDS,
//	        TREES, KEYSCOL
//	    metaCRC u64 | lazyCRC u64 | headerCRC u64   (crc64-ECMA)
//	    zero padding to 4096
//	META (eager):
//	    per partition: lower u64 | upper u64 | count u64
//	    per record, in id order: seq u64 | size u64 | keylen u32 | key
//	    planner metadata, as in the snapshot format:
//	        minSize u64 | maxSize u64 | maxBound u64 | keys bloom | leads bloom
//	STORE (lazy): per partition, its contiguous signature store,
//	    count·numHash values at the sketch backend's width
//	IDS   (lazy): per partition, its entry ids [count]u32
//	TREES (lazy): per partition per tree, the sorted slot order [count]u32
//	KEYSCOL (lazy): per partition per tree, the leading-value column,
//	    count values at the sketch backend's width
//
// The sketch field occupies what version 1 wrote as a zero "reserved" u32,
// so a v1 file is exactly a v2 file carrying the Minwise64 tag (0). Writers
// keep emitting version 1 for Minwise64 segments — byte-identical to the
// pre-backend format — and bump to version 2 only when a narrow backend
// makes the STORE/KEYSCOL element width differ from 8 bytes, so older
// readers reject such files by version instead of misreading them.
//
// headerCRC covers the fixed header fields and always gates an open; metaCRC
// covers META and is likewise always verified (both are eagerly read
// anyway). lazyCRC covers STORE..end of file but is verified only when the
// whole file was read onto the heap — checking it under mmap would fault
// every page and defeat lazy boot. Files are written with
// segfile.WriteAtomic (temp + fsync + rename), so a crash never leaves a
// torn file under a name the manifest can reference.

const (
	segFileVersion   = 1 // Minwise64: byte-identical to the pre-backend format
	segFileVersionV2 = 2 // narrow sketch backends: width-scaled STORE/KEYSCOL
	segPage          = 4096
	segHeaderLen     = 136 // through headerCRC
	segHeaderCRCAt   = 128
)

var segFileMagic = [4]byte{'L', 'S', 'E', 'G'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// segFileInfo is a spilled segment's on-disk identity: enough for the v3
// manifest to reference the file and for a later boot to verify it is the
// exact file the manifest meant.
type segFileInfo struct {
	path      string
	size      int64
	headerCRC uint64
}

func alignPage(n int) int { return (n + segPage - 1) &^ (segPage - 1) }

func putU32s(dst []byte, vals []uint32) int {
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[i*4:], v)
	}
	return len(vals) * 4
}

// appendSegMeta appends the planner metadata block exactly as the snapshot
// format encodes it (decodeSegMeta reads it back).
func appendSegMeta(buf []byte, m *segMeta) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.minSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.maxSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.maxBound))
	buf = m.keys.AppendBinary(buf)
	buf = m.leads.AppendBinary(buf)
	return buf
}

// segmentImage builds the complete segment-file byte image for a heap-built
// segment.
func segmentImage(seg *segment) []byte {
	idx, o := seg.idx, seg.idx.Options()
	n, bMax := idx.Len(), o.NumHash/o.RMax
	w := o.Sketch.WidthBytes()

	// META is variable-length: assemble it first, then place the fixed-size
	// lazy sections on page boundaries after it.
	var parts []core.PartView
	idx.EachPart(func(_ int, pv core.PartView) { parts = append(parts, pv) })
	meta := make([]byte, 0, len(parts)*24+n*32)
	for _, pv := range parts {
		meta = binary.LittleEndian.AppendUint64(meta, uint64(pv.Lower))
		meta = binary.LittleEndian.AppendUint64(meta, uint64(pv.Upper))
		meta = binary.LittleEndian.AppendUint64(meta, uint64(pv.Forest.Len()))
	}
	for id := 0; id < n; id++ {
		key := idx.Key(uint32(id))
		meta = binary.LittleEndian.AppendUint64(meta, seg.seqs[id])
		meta = binary.LittleEndian.AppendUint64(meta, uint64(idx.Size(uint32(id))))
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(key)))
		meta = append(meta, key...)
	}
	meta = appendSegMeta(meta, seg.meta)

	metaOff := segPage
	storeOff := alignPage(metaOff + len(meta))
	storeLen := n * o.NumHash * w
	idsOff := alignPage(storeOff + storeLen)
	idsLen := n * 4
	treesOff := alignPage(idsOff + idsLen)
	treesLen := n * bMax * 4
	colsOff := alignPage(treesOff + treesLen)
	colsLen := n * bMax * w
	total := colsOff + colsLen

	img := make([]byte, total)
	copy(img[metaOff:], meta)
	so, io_, to, co := storeOff, idsOff, treesOff, colsOff
	for _, pv := range parts {
		f := pv.Forest
		f.WriteStoreLE(img[so : so+f.StoreLenBytes()])
		so += f.StoreLenBytes()
		io_ += putU32s(img[io_:], f.IDs())
		if f.Len() == 0 {
			continue
		}
		for t := 0; t < bMax; t++ {
			to += putU32s(img[to:], f.Tree(t))
			f.WriteTreeKeysLE(t, img[co:co+f.Len()*w])
			co += f.Len() * w
		}
	}

	version := uint32(segFileVersion)
	if o.Sketch != core.Minwise64 {
		version = segFileVersionV2
	}
	h := img[:0]
	h = append(h, segFileMagic[:]...)
	h = binary.LittleEndian.AppendUint32(h, version)
	h = binary.LittleEndian.AppendUint32(h, uint32(o.NumHash))
	h = binary.LittleEndian.AppendUint32(h, uint32(o.RMax))
	h = binary.LittleEndian.AppendUint32(h, uint32(len(parts)))
	h = binary.LittleEndian.AppendUint32(h, o.Sketch.Tag()) // 0 ("reserved") in v1
	h = binary.LittleEndian.AppendUint64(h, uint64(n))
	for _, sec := range [5][2]int{{metaOff, len(meta)}, {storeOff, storeLen}, {idsOff, idsLen}, {treesOff, treesLen}, {colsOff, colsLen}} {
		h = binary.LittleEndian.AppendUint64(h, uint64(sec[0]))
		h = binary.LittleEndian.AppendUint64(h, uint64(sec[1]))
	}
	h = binary.LittleEndian.AppendUint64(h, crc64.Checksum(img[metaOff:metaOff+len(meta)], crcTable))
	h = binary.LittleEndian.AppendUint64(h, crc64.Checksum(img[storeOff:], crcTable))
	h = binary.LittleEndian.AppendUint64(h, crc64.Checksum(img[:segHeaderCRCAt], crcTable))
	return img
}

// errSegFile wraps a segment-file open failure as corruption.
func errSegFile(format string, args ...any) error {
	return fmt.Errorf("live: segment file: "+format+": %w", append(args, ErrCorrupt)...)
}

// openSegmentImage reassembles a queryable segment from a segment-file byte
// image. numHash/rMax pin the expected signature shape. The header and META
// are parsed eagerly (keys, sizes, seqs and the planner metadata become
// private heap values); the probe arrays are typed views over the image, so
// under mmap no signature page is read here. verifyLazy additionally checks
// lazyCRC — done for heap opens (the bytes were just read anyway), skipped
// for mapped opens to keep boot lazy.
func openSegmentImage(back *segfile.Backing, numHash, rMax int, sketch core.SketchBackend, verifyLazy bool) (*segment, error) {
	img := back.Bytes()
	if len(img) < segPage || [4]byte(img[:4]) != segFileMagic {
		return nil, errSegFile("bad magic or short file")
	}
	if crc64.Checksum(img[:segHeaderCRCAt], crcTable) != binary.LittleEndian.Uint64(img[segHeaderCRCAt:]) {
		return nil, errSegFile("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(img[4:]); v != segFileVersion && v != segFileVersionV2 {
		return nil, errSegFile("version %d, want %d or %d", v, segFileVersion, segFileVersionV2)
	}
	if nh := int(binary.LittleEndian.Uint32(img[8:])); nh != numHash {
		return nil, errSegFile("NumHash %d != snapshot %d", nh, numHash)
	}
	if rm := int(binary.LittleEndian.Uint32(img[12:])); rm != rMax {
		return nil, errSegFile("RMax %d != snapshot %d", rm, rMax)
	}
	nParts := int(binary.LittleEndian.Uint32(img[16:]))
	// v1 wrote this word as zero padding — which is exactly the Minwise64 tag.
	sb, ok := core.SketchBackendFromTag(binary.LittleEndian.Uint32(img[20:]))
	if !ok || !sb.Indexable() {
		return nil, errSegFile("unknown or non-indexable sketch backend tag %d", binary.LittleEndian.Uint32(img[20:]))
	}
	if sb != sketch {
		return nil, errSegFile("sketch backend %s != snapshot %s", sb, sketch)
	}
	w := sketch.WidthBytes()
	n := int(binary.LittleEndian.Uint64(img[24:]))
	if nParts < 1 || n < 1 || n > len(img) {
		return nil, errSegFile("%d partitions, %d records", nParts, n)
	}
	bMax := numHash / rMax
	var off, ln [5]int
	prevEnd := segPage
	for i := 0; i < 5; i++ {
		o := binary.LittleEndian.Uint64(img[32+i*16:])
		l := binary.LittleEndian.Uint64(img[40+i*16:])
		if o%segPage != 0 || o > uint64(len(img)) || l > uint64(len(img))-o || int(o) < prevEnd {
			return nil, errSegFile("section %d out of bounds", i)
		}
		off[i], ln[i] = int(o), int(l)
		prevEnd = int(o) + int(l)
	}
	if ln[1] != n*numHash*w || ln[2] != n*4 || ln[3] != n*bMax*4 || ln[4] != n*bMax*w {
		return nil, errSegFile("section lengths disagree with %d records", n)
	}
	meta := img[off[0] : off[0]+ln[0]]
	if crc64.Checksum(meta, crcTable) != binary.LittleEndian.Uint64(img[112:]) {
		return nil, errSegFile("META checksum mismatch")
	}
	if verifyLazy && crc64.Checksum(img[off[1]:], crcTable) != binary.LittleEndian.Uint64(img[120:]) {
		return nil, errSegFile("data checksum mismatch")
	}

	// META: partition bounds + counts, then the per-record catalog (decoded
	// into private heap values — Stats and tombstone sweeps must not depend
	// on the mapping), then the planner metadata.
	if len(meta) < nParts*24 {
		return nil, errSegFile("META truncated")
	}
	lowers := make([]int, nParts)
	uppers := make([]int, nParts)
	counts := make([]int, nParts)
	total := 0
	for i := 0; i < nParts; i++ {
		lowers[i] = int(binary.LittleEndian.Uint64(meta[i*24:]))
		uppers[i] = int(binary.LittleEndian.Uint64(meta[i*24+8:]))
		counts[i] = int(binary.LittleEndian.Uint64(meta[i*24+16:]))
		if counts[i] < 0 || counts[i] > n-total {
			return nil, errSegFile("partition %d count %d overruns %d records", i, counts[i], n)
		}
		total += counts[i]
	}
	if total != n {
		return nil, errSegFile("partitions hold %d of %d records", total, n)
	}
	meta = meta[nParts*24:]
	keys := make([]string, n)
	sizes := make([]int, n)
	seqs := make([]uint64, n)
	for id := 0; id < n; id++ {
		if len(meta) < 20 {
			return nil, errSegFile("record catalog truncated")
		}
		seqs[id] = binary.LittleEndian.Uint64(meta)
		sizes[id] = int(binary.LittleEndian.Uint64(meta[8:]))
		kl := int(binary.LittleEndian.Uint32(meta[16:]))
		meta = meta[20:]
		if kl < 0 || kl > len(meta) {
			return nil, errSegFile("record %d key overruns META", id)
		}
		keys[id] = string(meta[:kl])
		meta = meta[kl:]
		if id > 0 && seqs[id] <= seqs[id-1] {
			return nil, errSegFile("seqs not ascending at record %d", id)
		}
	}
	sm, meta, err := decodeSegMeta(meta)
	if err != nil {
		return nil, errSegFile("planner metadata: %v", err)
	}
	if len(meta) != 0 {
		return nil, errSegFile("%d trailing META bytes", len(meta))
	}

	// Lazy sections become per-partition typed views; only slicing happens
	// here, no element is read. STORE and KEYSCOL stay byte regions until
	// FromViewBytes casts them at the backend's element width.
	storeB := img[off[1] : off[1]+ln[1]]
	ids := segfile.Uint32s(img[off[2] : off[2]+ln[2]])
	treesAll := segfile.Uint32s(img[off[3] : off[3]+ln[3]])
	colsB := img[off[4] : off[4]+ln[4]]
	views := make([]core.PartView, nParts)
	so, io_, to, co := 0, 0, 0, 0
	for i := 0; i < nParts; i++ {
		cnt := counts[i]
		var trees [][]uint32
		var cols [][]byte
		if cnt > 0 {
			trees = make([][]uint32, bMax)
			cols = make([][]byte, bMax)
			for t := 0; t < bMax; t++ {
				trees[t] = treesAll[to+t*cnt : to+(t+1)*cnt]
				cols[t] = colsB[co+t*cnt*w : co+(t+1)*cnt*w]
			}
		}
		f, err := lshforest.FromViewBytes(numHash, rMax, w,
			ids[io_:io_+cnt], storeB[so:so+cnt*numHash*w], trees, cols)
		if err != nil {
			return nil, errSegFile("partition %d: %v", i, err)
		}
		views[i] = core.PartView{Lower: lowers[i], Upper: uppers[i], Forest: f}
		so += cnt * numHash * w
		io_ += cnt
		to += cnt * bMax
		co += cnt * bMax * w
	}
	opts := core.Options{NumHash: numHash, RMax: rMax, NumPartitions: nParts, Sketch: sketch}
	idx, err := core.FromParts(opts, keys, sizes, views)
	if err != nil {
		return nil, errSegFile("%v", err)
	}
	seg := &segment{idx: idx, seqs: seqs, meta: sm, back: back}
	// Resident estimate: the decoded META copies plus, for heap backings,
	// the whole image; a mapped backing keeps only its eagerly read pages
	// (header + META) resident.
	metaHeap := int64(0)
	for _, k := range keys {
		metaHeap += int64(len(k))
	}
	metaHeap += int64(n)*24 + int64(sm.bloomBytes())
	if back.Mapped() {
		seg.resident = int64(alignPage(off[0]+ln[0])) + metaHeap
	} else {
		seg.resident = int64(len(img)) + metaHeap
	}
	return seg, nil
}

// heapSegmentResident estimates the heap footprint of a segment built in
// memory (core.Build). A pure function of the segment's content, so a
// saved-and-reloaded heap segment reports the same estimate.
func heapSegmentResident(idx *core.Index, meta *segMeta) int64 {
	n := idx.Len()
	o := idx.Options()
	bMax := o.NumHash / o.RMax
	w := int64(o.Sketch.WidthBytes())
	b := int64(n) * int64(o.NumHash) * w  // signature store
	b += int64(n) * 4                     // entry ids
	b += int64(n) * int64(bMax) * (4 + w) // tree orders + leading columns
	for id := 0; id < n; id++ {
		b += int64(len(idx.Key(uint32(id))))
	}
	b += int64(n) * 16 // sizes + seqs
	b += int64(meta.bloomBytes())
	return b
}

// ---- spill-to-disk ----

// segFileName formats the canonical segment file name for an id.
func segFileName(id uint64) string { return fmt.Sprintf("seg-%016x.seg", id) }

// validSegFileName reports whether a manifest-supplied name is a plain
// canonical segment file name (no path tricks).
func validSegFileName(name string) bool {
	return len(name) == len("seg-0000000000000000.seg") &&
		strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") &&
		filepath.Base(name) == name
}

// writeSegmentFile spills a heap segment to a fresh file in DataDir and
// returns its identity. The write is atomic and durable (segfile.WriteAtomic).
func (x *Index) writeSegmentFile(seg *segment) (*segFileInfo, error) {
	img := segmentImage(seg)
	path := filepath.Join(x.opts.DataDir, segFileName(x.nextSegID.Add(1)))
	if err := segfile.WriteAtomic(path, img); err != nil {
		return nil, err
	}
	return &segFileInfo{
		path:      path,
		size:      int64(len(img)),
		headerCRC: binary.LittleEndian.Uint64(img[segHeaderCRCAt:]),
	}, nil
}

// openSegmentFile opens a spilled segment through the configured backing
// (mmap when Options.Mmap, else a heap read). When fi carries a size and
// checksum (manifest boot), the file must match them exactly.
func (x *Index) openSegmentFile(fi *segFileInfo, verify bool) (*segment, error) {
	var back *segfile.Backing
	var err error
	if x.opts.Mmap {
		back, err = segfile.OpenMapped(fi.path)
	} else {
		back, err = segfile.OpenHeap(fi.path)
	}
	if err != nil {
		return nil, err
	}
	if verify {
		if int64(back.Len()) != fi.size ||
			back.Len() < segHeaderLen ||
			binary.LittleEndian.Uint64(back.Bytes()[segHeaderCRCAt:]) != fi.headerCRC {
			back.Close()
			return nil, errSegFile("%s does not match its manifest entry", filepath.Base(fi.path))
		}
	}
	seg, err := openSegmentImage(back, x.opts.NumHash, x.opts.RMax, x.opts.Sketch, !back.Mapped())
	if err != nil {
		back.Close()
		return nil, err
	}
	seg.finfo.Store(fi)
	return seg, nil
}

// persistSegment gives a freshly built heap segment its on-disk form. Under
// mmap the mapped reopen replaces the heap segment, releasing its memory to
// the GC; without mmap the heap segment keeps serving and only gains a file
// identity. On any error the heap segment is kept — the index stays correct,
// just not out-of-core for this segment — and the failure is counted.
func (x *Index) persistSegment(seg *segment) *segment {
	if x.opts.DataDir == "" || seg == nil {
		return seg
	}
	fi, err := x.writeSegmentFile(seg)
	if err != nil {
		x.spillErrors.Add(1)
		return seg
	}
	if !x.opts.Mmap {
		seg.finfo.Store(fi)
		return seg
	}
	fseg, err := x.openSegmentFile(fi, false)
	if err != nil {
		x.spillErrors.Add(1)
		os.Remove(fi.path)
		return seg
	}
	return fseg
}

// spillAll writes a segment file for every sealed segment that does not have
// one yet, attaching the identity in place (the segment keeps serving from
// its current backing). Save runs it so the manifest it encodes can
// reference every segment by file. Serialized by saveMu.
func (x *Index) spillAll() {
	sn := x.acquireSnap()
	for _, seg := range sn.segs {
		if seg.finfo.Load() != nil {
			continue
		}
		if fi, err := x.writeSegmentFile(seg); err != nil {
			x.spillErrors.Add(1)
		} else {
			seg.finfo.Store(fi)
		}
	}
	x.releaseSnap(sn)
}

// initDataDir prepares Options.DataDir: the directory is created and
// nextSegID starts past every existing segment file so spills never collide
// with files an earlier process (or the manifest about to be loaded) left
// behind.
func (x *Index) initDataDir() error {
	dir := x.opts.DataDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var maxID uint64
	for _, e := range ents {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%016x.seg", &id); err == nil && validSegFileName(e.Name()) && id > maxID {
			maxID = id
		}
	}
	x.nextSegID.Store(maxID)
	return nil
}

// sweepDataDir removes segment files not in referenced (base names) and
// stale temp files — the boot-time orphan collection that makes every crash
// ordering safe: a file orphaned between a spill and the manifest rename is
// deleted on the next boot from that manifest.
func (x *Index) sweepDataDir(referenced map[string]bool) {
	ents, err := os.ReadDir(x.opts.DataDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case validSegFileName(name) && !referenced[name]:
			os.Remove(filepath.Join(x.opts.DataDir, name))
		case strings.HasPrefix(name, ".segfile-") && strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(x.opts.DataDir, name))
		}
	}
}

// CollectGarbage deletes segment files that an earlier Save's manifest
// referenced but compaction has since retired. Call it only after the newest
// manifest has been made durable: until then the previous manifest on disk
// may still reference the retired files, and deleting them would break a
// crash-recovery boot. Files retired without ever being referenced by a
// manifest are deleted immediately at retirement and never reach this list.
// It returns the number of files removed.
func (x *Index) CollectGarbage() int {
	x.retMu.Lock()
	files := x.retired
	x.retired = nil
	x.retMu.Unlock()
	n := 0
	for _, p := range files {
		if os.Remove(p) == nil {
			n++
		}
	}
	if n > 0 {
		segfile.SyncDir(x.opts.DataDir)
	}
	return n
}

// ---- snapshot & segment reference counting ----
//
// Heap segments never needed lifetimes: dropped pointers were the GC's
// problem. A mapped segment is different — unmapping while a reader probes
// it is a fault — so snapshots and segments are reference counted. The
// current-snapshot pointer itself holds one reference; every reader
// acquires one more for the duration of its query; each snapshot holds one
// reference per segment it lists. The last snapshot to drop a segment
// closes its backing (munmap) and disposes of its file per the manifest
// rules above.

// acquireSnap pins the current snapshot for reading. The increment races
// with a concurrent publish retiring the snapshot, so the pointer is
// re-checked after the increment: a mismatch means the publisher may
// already be tearing the snapshot down, and the reference is backed out
// without ever dereferencing segment data.
func (x *Index) acquireSnap() *snapshot {
	for {
		sn := x.snap.Load()
		sn.refs.Add(1)
		if x.snap.Load() == sn {
			return sn
		}
		x.releaseSnap(sn)
	}
}

// releaseSnap drops one reference; the last drop retires the snapshot's
// segments. The dead flag makes teardown exactly-once even when a backed-out
// acquire briefly resurrects the count.
func (x *Index) releaseSnap(sn *snapshot) {
	if sn.refs.Add(-1) != 0 {
		return
	}
	if !sn.dead.CompareAndSwap(false, true) {
		return
	}
	for _, seg := range sn.segs {
		x.releaseSeg(seg)
	}
}

func retainSegs(segs []*segment) {
	for _, seg := range segs {
		seg.refs.Add(1)
	}
}

// releaseSeg drops one snapshot's reference to a segment; the last drop
// closes the backing (munmap under mmap) and disposes of the file: deleted
// at once when no manifest ever referenced it, else deferred to
// CollectGarbage.
func (x *Index) releaseSeg(seg *segment) {
	if seg.refs.Add(-1) != 0 {
		return
	}
	if seg.back != nil {
		seg.back.Close()
	}
	if fi := seg.finfo.Load(); fi != nil {
		if seg.inManifest.Load() {
			x.retMu.Lock()
			x.retired = append(x.retired, fi.path)
			x.retMu.Unlock()
		} else {
			os.Remove(fi.path)
		}
	}
}

// publishLocked installs next as the current snapshot (stamping generations
// via successor) and returns the predecessor, whose current-pointer
// reference the caller must drop with releaseSnap AFTER x.mu is released —
// retiring a snapshot can munmap and delete files, too slow for the writer
// lock.
func (x *Index) publishLocked(next, cur *snapshot, segsChanged bool) *snapshot {
	retainSegs(next.segs)
	next.refs.Store(1)
	x.snap.Store(successor(next, cur, segsChanged))
	return cur
}

// publishInitial installs the very first snapshot (Build/Load).
func (x *Index) publishInitial(sn *snapshot) {
	sn.gen, sn.segGen = 1, 1
	sn.topkOrder = topkSegOrder(sn.segs)
	retainSegs(sn.segs)
	sn.refs.Store(1)
	x.snap.Store(sn)
}
