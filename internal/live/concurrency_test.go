package live

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"lshensemble/internal/core"
)

// TestConcurrentHammer races queriers, adders, a deleter and the background
// compactor (aggressive thresholds force continuous sealing and merging)
// against one live index. Run with -race. Readers assert only snapshot
// invariants — each key at most once per result, no impossible keys — since
// the exact candidate set legitimately shifts while writers run. After the
// writers stop, the final state is compacted and checked against a model of
// the surviving records.
func TestConcurrentHammer(t *testing.T) {
	recs := fixture(t, 1200, 21)
	opts := liveOpts()
	opts.ManualCompaction = false
	opts.SealThreshold = 24
	opts.MaxSegments = 3
	x, err := Build(recs[:300], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	// model tracks what the writers did; guarded by modelMu (test-side only,
	// the index itself is exercised without external locks).
	var modelMu sync.Mutex
	model := make(map[string]bool, len(recs))
	for _, r := range recs[:300] {
		model[r.Key] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Two adders split the remaining records.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 300 + a; i < len(recs); i += 2 {
				if _, err := x.Add(recs[i]); err != nil {
					errs <- err
					return
				}
				modelMu.Lock()
				model[recs[i].Key] = true
				modelMu.Unlock()
			}
		}(a)
	}

	// One deleter sweeps the initially indexed keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i += 3 {
			if x.Delete(recs[i].Key) {
				modelMu.Lock()
				delete(model, recs[i].Key)
				modelMu.Unlock()
			}
		}
	}()

	// Queriers: single and batch paths, checking per-result invariants.
	known := make(map[string]bool, len(recs))
	for _, r := range recs {
		known[r.Key] = true
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := make(map[string]bool, 64)
			for rep := 0; rep < 150; rep++ {
				r := recs[(w*131+rep*17)%len(recs)]
				var results [][]string
				if rep%4 == 0 {
					results = x.QueryBatch([]core.BatchQuery{
						{Sig: r.Sig, Size: r.Size, Threshold: 0.5},
						{Sig: r.Sig, Size: r.Size, Threshold: 1.0},
					}, 2)
				} else {
					results = [][]string{x.Query(r.Sig, r.Size, 0.5)}
				}
				for _, res := range results {
					clear(seen)
					for _, k := range res {
						if !known[k] {
							errs <- fmt.Errorf("worker %d rep %d: impossible key %q", w, rep, k)
							return
						}
						if seen[k] {
							errs <- fmt.Errorf("worker %d rep %d: duplicate key %q", w, rep, k)
							return
						}
						seen[k] = true
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce and verify the final state against the model: compaction must
	// leave exactly the surviving records, all self-retrievable.
	x.Compact()
	if x.Len() != len(model) {
		t.Fatalf("final Len %d, model %d", x.Len(), len(model))
	}
	st := x.Stats()
	if st.Seals == 0 {
		t.Fatal("background compactor never sealed during the hammer")
	}
	if st.Tombstones != 0 || st.Buffered != 0 {
		t.Fatalf("Compact left residue: %+v", st)
	}
	for i, r := range recs {
		if i%5 != 0 {
			continue
		}
		got := contains(x.Query(r.Sig, r.Size, 1.0), r.Key)
		if want := model[r.Key]; got != want {
			t.Fatalf("final state: key %q present=%v, model says %v", r.Key, got, want)
		}
	}
}

// TestQuerySnapshotStability pins the point-in-time guarantee: a reader
// that loaded a snapshot keeps getting answers from it even while the
// writer replaces the whole corpus and the compactor churns underneath.
func TestQuerySnapshotStability(t *testing.T) {
	recs := fixture(t, 200, 22)
	opts := liveOpts()
	opts.SealThreshold = 16
	opts.ManualCompaction = false
	x, err := Build(recs[:100], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	sn := x.snap.Load() // the reader's frozen view
	for _, r := range recs[100:] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		x.Delete(recs[i].Key)
	}
	x.Compact()

	// The frozen snapshot still answers exactly as before: all 100 original
	// records, none of the later ones.
	s := x.acquireScratch()
	for i := 0; i < 200; i += 9 {
		r := recs[i]
		var res []string
		for _, seg := range sn.segs {
			res = x.appendSegmentMatches(res, s, sn, seg, r.Sig, r.Size, 1.0)
		}
		res, _ = x.appendBufferMatches(context.Background(), res, sn, r.Sig, r.Size, 1.0, nil)
		if want := i < 100; contains(res, r.Key) != want {
			t.Fatalf("snapshot drifted: key %d present=%v, want %v", i, !want, want)
		}
	}
	x.releaseScratch(s)

	// The current snapshot shows the new world.
	if x.Len() != 100 {
		t.Fatalf("Len = %d, want 100", x.Len())
	}
	if contains(x.Query(recs[0].Sig, recs[0].Size, 1.0), recs[0].Key) {
		t.Fatal("deleted key visible in the current snapshot")
	}
}

// TestSteadyStateQueryAllocs proves the live fan-out keeps the PR 1/PR 2
// allocation discipline: steady-state QueryAppend with a reused destination
// against a multi-segment snapshot (with buffered entries and tombstones in
// play) allocates nothing.
func TestSteadyStateQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates and randomizes sync.Pool reuse")
	}
	recs := fixture(t, 600, 23)
	x, err := Build(recs[:200], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// Three sealed segments + a live buffer + tombstones.
	for _, r := range recs[200:400] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	for _, r := range recs[400:500] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	for _, r := range recs[500:550] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 550; i += 23 {
		x.Delete(recs[i].Key)
	}
	st := x.Stats()
	if len(st.Segments) < 3 || st.Buffered == 0 || st.Tombstones == 0 {
		t.Fatalf("fixture shape wrong: %+v", st)
	}

	var dst []string
	warm := func() {
		for i := 0; i < len(recs); i += 29 {
			r := recs[i]
			dst = x.QueryAppend(dst[:0], r.Sig, r.Size, 0.5)
		}
	}
	warm() // fill the scratch pool and the tuning cache
	warm()
	allocs := testing.AllocsPerRun(50, func() {
		r := recs[37]
		dst = x.QueryAppend(dst[:0], r.Sig, r.Size, 0.5)
	})
	if allocs > 0 {
		t.Fatalf("steady-state QueryAppend allocates %.1f per query, want 0", allocs)
	}
}
