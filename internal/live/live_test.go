package live

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"lshensemble/internal/core"
	"lshensemble/internal/datagen"
	"lshensemble/internal/minhash"
)

// liveOpts is the small-scale configuration the tests use: tiny seal
// threshold so a handful of adds exercise sealing, manual compaction so
// tests control timing exactly.
func liveOpts() Options {
	return Options{
		Options:          core.Options{NumHash: 128, RMax: 4, NumPartitions: 4},
		SealThreshold:    32,
		MaxSegments:      3,
		ManualCompaction: true,
	}
}

// fixture builds n records with unique keys over the open-data generator.
func fixture(t testing.TB, n int, seed uint64) []core.Record {
	t.Helper()
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: n, Seed: seed})
	h := minhash.NewHasher(128, seed)
	return datagen.Records(corpus, h)
}

func sortedKeys(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func equalKeySets(a, b []string) bool {
	a, b = sortedKeys(a), sortedKeys(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildAndSelfRetrieval(t *testing.T) {
	recs := fixture(t, 200, 1)
	x, err := Build(recs, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if x.Len() != 200 {
		t.Fatalf("Len = %d, want 200", x.Len())
	}
	for _, r := range recs[:50] {
		res := x.Query(r.Sig, r.Size, 1.0)
		if !contains(res, r.Key) {
			t.Fatalf("%s not self-retrieved", r.Key)
		}
	}
}

func contains(keys []string, k string) bool {
	for _, key := range keys {
		if key == k {
			return true
		}
	}
	return false
}

func TestBufferedAddsAreQueryable(t *testing.T) {
	recs := fixture(t, 120, 2)
	x, err := Build(recs[:60], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, r := range recs[60:] {
		if replaced, err := x.Add(r); err != nil || replaced {
			t.Fatalf("Add(%s): replaced=%v err=%v", r.Key, replaced, err)
		}
	}
	if x.Len() != 120 {
		t.Fatalf("Len = %d, want 120", x.Len())
	}
	// No Flush: the new records live in the buffer and must still be found
	// by the banding scan.
	for _, r := range recs[60:] {
		if !contains(x.Query(r.Sig, r.Size, 1.0), r.Key) {
			t.Fatalf("buffered %s not retrieved", r.Key)
		}
	}
	// Sealing must keep them retrievable.
	x.Flush()
	if st := x.Stats(); st.Buffered != 0 || len(st.Segments) != 2 {
		t.Fatalf("after Flush: %+v", st)
	}
	for _, r := range recs[60:] {
		if !contains(x.Query(r.Sig, r.Size, 1.0), r.Key) {
			t.Fatalf("sealed %s not retrieved", r.Key)
		}
	}
}

func TestUpsertReplaces(t *testing.T) {
	recs := fixture(t, 80, 3)
	x, err := Build(recs, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// Replace record 0 with record 1's contents under record 0's key: a
	// query for record 1's values must now return key 0 exactly once, and a
	// query for record 0's old values must not (unless they genuinely
	// collide with the new signature).
	old, repl := recs[0], recs[1]
	if replaced, err := x.Add(core.Record{Key: old.Key, Size: repl.Size, Sig: repl.Sig}); err != nil || !replaced {
		t.Fatalf("upsert: replaced=%v err=%v", replaced, err)
	}
	if x.Len() != 80 {
		t.Fatalf("Len changed on upsert: %d", x.Len())
	}
	res := x.Query(repl.Sig, repl.Size, 1.0)
	n := 0
	for _, k := range res {
		if k == old.Key {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("replaced key appears %d times, want exactly once: %v", n, res)
	}
	// Upserting the same key again while the old version sits in a sealed
	// segment and the new one in the buffer must still yield one entry.
	if _, err := x.Add(core.Record{Key: old.Key, Size: repl.Size, Sig: repl.Sig}); err != nil {
		t.Fatal(err)
	}
	x.Flush()
	res = x.Query(repl.Sig, repl.Size, 1.0)
	n = 0
	for _, k := range res {
		if k == old.Key {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("after reflush, replaced key appears %d times: %v", n, res)
	}
}

func TestDeleteHidesImmediately(t *testing.T) {
	recs := fixture(t, 100, 4)
	x, err := Build(recs[:80], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, r := range recs[80:] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// Delete one sealed entry and one buffered entry.
	sealed, buffered := recs[10], recs[90]
	for _, r := range []core.Record{sealed, buffered} {
		if !x.Delete(r.Key) {
			t.Fatalf("Delete(%s) = false", r.Key)
		}
		if contains(x.Query(r.Sig, r.Size, 1.0), r.Key) {
			t.Fatalf("deleted %s still retrieved", r.Key)
		}
	}
	if x.Delete(sealed.Key) {
		t.Fatal("double delete reported true")
	}
	if x.Delete("no-such-key") {
		t.Fatal("deleting unknown key reported true")
	}
	if x.Len() != 98 {
		t.Fatalf("Len = %d, want 98", x.Len())
	}
	// A deleted key can be re-added and becomes visible again.
	if replaced, err := x.Add(sealed); err != nil || replaced {
		t.Fatalf("re-add: replaced=%v err=%v", replaced, err)
	}
	if !contains(x.Query(sealed.Sig, sealed.Size, 1.0), sealed.Key) {
		t.Fatalf("re-added %s not retrieved", sealed.Key)
	}
}

// TestCompactedEquivalentToFreshBuild is the core correctness claim:
// after full compaction, the live index is *bit-equivalent* to a fresh
// core.Build over the surviving records (live set minus tombstones, in
// mutation order) — same serialized bytes, hence identical answers to every
// query.
func TestCompactedEquivalentToFreshBuild(t *testing.T) {
	recs := fixture(t, 300, 5)
	x, err := Build(recs[:150], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// A churny history: adds in waves with interleaved deletes, replacements
	// and seals, ending with several segments plus a non-empty buffer.
	survivors := make(map[string]core.Record, len(recs))
	order := []string{}
	note := func(r core.Record) {
		if _, ok := survivors[r.Key]; !ok {
			order = append(order, r.Key)
		} else {
			// replaced: moves to the end of mutation order
			for i, k := range order {
				if k == r.Key {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, r.Key)
		}
		survivors[r.Key] = r
	}
	drop := func(key string) {
		delete(survivors, key)
		for i, k := range order {
			if k == key {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
	}
	for _, r := range recs[:150] {
		note(r)
	}
	for wave := 0; wave < 3; wave++ {
		for i := 150 + wave*50; i < 200+wave*50; i++ {
			if _, err := x.Add(recs[i]); err != nil {
				t.Fatal(err)
			}
			note(recs[i])
		}
		for i := wave * 40; i < wave*40+20; i++ {
			key := recs[i].Key
			if x.Delete(key) {
				drop(key)
			}
		}
		// Replace a few entries with fresh signatures.
		for i := 100 + wave; i < 110+wave; i += 3 {
			r := recs[i]
			if _, ok := survivors[r.Key]; !ok {
				continue
			}
			r2 := core.Record{Key: r.Key, Size: recs[i+1].Size, Sig: recs[i+1].Sig}
			if _, err := x.Add(r2); err != nil {
				t.Fatal(err)
			}
			note(r2)
		}
		if wave < 2 {
			x.Flush()
		}
	}
	if len(survivors) != x.Len() {
		t.Fatalf("model has %d live domains, index %d", len(survivors), x.Len())
	}

	x.Compact()
	st := x.Stats()
	if len(st.Segments) != 1 || st.Buffered != 0 || st.Tombstones != 0 {
		t.Fatalf("after Compact: %+v", st)
	}

	want := make([]core.Record, 0, len(order))
	for _, k := range order {
		r := survivors[k]
		// Match Add's signature clamp so the reference build sees identical
		// inputs.
		r.Sig = r.Sig[:x.opts.NumHash]
		want = append(want, r)
	}
	ref, err := core.Build(want, x.opts.Options)
	if err != nil {
		t.Fatal(err)
	}
	sn := x.snap.Load()
	got := sn.segs[0].idx.AppendBinary(nil)
	if !bytes.Equal(got, ref.AppendBinary(nil)) {
		t.Fatal("compacted segment is not bit-identical to a fresh core.Build over the survivors")
	}
	// And the public query path agrees with the reference for a spread of
	// queries and thresholds.
	for qi := 0; qi < 60; qi += 7 {
		r := recs[qi]
		for _, tStar := range []float64{0.3, 0.6, 0.9} {
			refIDs, err := ref.Query(r.Sig, r.Size, tStar)
			if err != nil {
				t.Fatal(err)
			}
			live := x.Query(r.Sig, r.Size, tStar)
			if !equalKeySets(refIDs, live) {
				t.Fatalf("query %d t*=%v: live %v != ref %v", qi, tStar, sortedKeys(live), sortedKeys(refIDs))
			}
		}
	}
}

func TestMergeKeepsAnswers(t *testing.T) {
	recs := fixture(t, 240, 6)
	opts := liveOpts()
	x, err := Build(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// Seal six small segments.
	for s := 0; s < 6; s++ {
		for _, r := range recs[s*40 : (s+1)*40] {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		x.Flush()
	}
	// Delete a few entries spread across segments.
	for i := 0; i < 240; i += 17 {
		x.Delete(recs[i].Key)
	}
	before := make([][]string, 24)
	for i := range before {
		r := recs[i*10]
		before[i] = x.Query(r.Sig, r.Size, 1.0)
	}
	// Drive merges until within MaxSegments.
	x.compactMu.Lock()
	merges := 0
	for x.mergeIfCrowded() {
		merges++
	}
	x.compactMu.Unlock()
	if merges == 0 {
		t.Fatal("no merges ran with 6 segments and MaxSegments=3")
	}
	st := x.Stats()
	if len(st.Segments) > opts.MaxSegments {
		t.Fatalf("still %d segments after merging", len(st.Segments))
	}
	if st.Merges != uint64(merges) {
		t.Fatalf("Stats.Merges = %d, want %d", st.Merges, merges)
	}
	// Self-retrieval at t*=1.0 must be preserved exactly: each surviving
	// record still collides with itself in every band, and dead entries stay
	// hidden. (Weaker-threshold candidate sets may legitimately change when
	// partition bounds change.)
	for i := range before {
		r := recs[i*10]
		after := x.Query(r.Sig, r.Size, 1.0)
		wantSelf := i*10%17 != 0 // deleted every 17th
		if got := contains(after, r.Key); got != wantSelf {
			t.Fatalf("query %d: self-containment %v, want %v", i, got, wantSelf)
		}
	}
}

func TestBackgroundCompactorSealsAndMerges(t *testing.T) {
	opts := liveOpts()
	opts.ManualCompaction = false
	opts.SealThreshold = 16
	opts.MaxSegments = 2
	recs := fixture(t, 400, 7)
	x, err := Build(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, r := range recs {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// The compactor runs asynchronously; wait for it to catch up (Flush
	// serializes behind any in-flight seal via compactMu).
	for i := 0; i < 100; i++ {
		x.Flush()
		if st := x.Stats(); st.Buffered == 0 && len(st.Segments) <= opts.MaxSegments+1 {
			break
		}
	}
	st := x.Stats()
	if st.Seals == 0 {
		t.Fatalf("background compactor never sealed: %+v", st)
	}
	if st.Domains != 400 {
		t.Fatalf("Domains = %d, want 400", st.Domains)
	}
	for i := 0; i < 400; i += 13 {
		r := recs[i]
		if !contains(x.Query(r.Sig, r.Size, 1.0), r.Key) {
			t.Fatalf("%s lost across background compaction", r.Key)
		}
	}
}

func TestQueryBatchMatchesSingle(t *testing.T) {
	recs := fixture(t, 220, 8)
	x, err := Build(recs[:180], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, r := range recs[180:] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 220; i += 11 {
		x.Delete(recs[i].Key)
	}
	var queries []core.BatchQuery
	for i := 0; i < 220; i += 5 {
		queries = append(queries, core.BatchQuery{
			Sig: recs[i].Sig, Size: recs[i].Size,
			Threshold: []float64{0.3, 0.7, 1.0}[i%3],
		})
	}
	for _, workers := range []int{0, 1, 3} {
		rows := x.QueryBatch(queries, workers)
		if len(rows) != len(queries) {
			t.Fatalf("workers=%d: %d rows", workers, len(rows))
		}
		for i, q := range queries {
			want := x.Query(q.Sig, q.Size, q.Threshold)
			if !equalKeySets(rows[i], want) {
				t.Fatalf("workers=%d row %d: %v != %v", workers, i, sortedKeys(rows[i]), sortedKeys(want))
			}
		}
	}
	if rows := x.QueryBatch(nil, 2); len(rows) != 0 {
		t.Fatalf("empty batch returned %d rows", len(rows))
	}
	// Invalid query sizes yield empty rows — including from the buffer scan,
	// matching core's batch contract.
	rows := x.QueryBatch([]core.BatchQuery{
		{Sig: recs[1].Sig, Size: 0, Threshold: 0.5},
		{Sig: recs[1].Sig, Size: -3, Threshold: 0.5},
	}, 2)
	if len(rows[0]) != 0 || len(rows[1]) != 0 {
		t.Fatalf("non-positive query sizes returned %d/%d keys, want empty rows",
			len(rows[0]), len(rows[1]))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	recs := fixture(t, 150, 9)
	x, err := Build(recs[:100], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, r := range recs[100:130] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	for _, r := range recs[130:] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 150; i += 19 {
		x.Delete(recs[i].Key)
	}

	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Load(bytes.NewReader(buf.Bytes()), liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()

	sx, sy := x.Stats(), y.Stats()
	if fmt.Sprint(sx) != fmt.Sprint(sy.withoutCounters(sx)) {
		t.Fatalf("stats differ after reload:\n  saved  %+v\n  loaded %+v", sx, sy)
	}
	for i := 0; i < 150; i += 7 {
		r := recs[i]
		for _, tStar := range []float64{0.4, 1.0} {
			a, b := x.Query(r.Sig, r.Size, tStar), y.Query(r.Sig, r.Size, tStar)
			if !equalKeySets(a, b) {
				t.Fatalf("query %d t*=%v: %v != %v after reload", i, tStar, sortedKeys(a), sortedKeys(b))
			}
		}
	}
	// Mutations must keep working on the loaded index with correct upsert
	// and delete semantics (the writer-side key → seq map was rebuilt).
	if replaced, err := y.Add(recs[1]); err != nil || !replaced {
		t.Fatalf("Add existing after reload: replaced=%v err=%v", replaced, err)
	}
	if !y.Delete(recs[2].Key) {
		t.Fatal("Delete existing after reload = false")
	}
	if y.Delete(recs[0].Key) {
		t.Fatal("Delete of key tombstoned before Save = true after reload")
	}
}

// withoutCounters copies s with the operation counters taken from o, so
// point-in-time shape comparison ignores how the shape was reached.
func (s Stats) withoutCounters(o Stats) Stats {
	s.Seals, s.Merges = o.Seals, o.Merges
	return s
}

func TestLoadRejectsGarbageAndMismatch(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk")), liveOpts()); err == nil {
		t.Fatal("garbage accepted")
	}
	recs := fixture(t, 30, 10)
	x, err := Build(recs, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	buf := x.AppendBinary(nil)
	// 20–23 cover a header cut inside the seq field, which must return
	// ErrCorrupt rather than panic (the fixed header is 24 bytes).
	for _, cut := range []int{3, 17, 20, 21, 22, 23, len(buf) / 2, len(buf) - 2} {
		if _, err := Load(bytes.NewReader(buf[:cut]), liveOpts()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := liveOpts()
	bad.NumHash = 256
	if _, err := Load(bytes.NewReader(buf), bad); err == nil {
		t.Fatal("NumHash mismatch accepted")
	}
}

func TestValidation(t *testing.T) {
	recs := fixture(t, 10, 11)
	x, err := Build(recs, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if _, err := x.Add(core.Record{Key: "bad", Size: 0, Sig: recs[0].Sig}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := x.Add(core.Record{Key: "bad", Size: 5, Sig: recs[0].Sig[:8]}); err == nil {
		t.Fatal("short signature accepted")
	}
	if _, err := Build([]core.Record{{Key: "bad", Size: 0, Sig: recs[0].Sig}}, liveOpts()); err == nil {
		t.Fatal("Build accepted invalid record")
	}
	// Empty index answers queries and accepts its first Add.
	e, err := New(liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if res := e.Query(recs[0].Sig, recs[0].Size, 0.5); len(res) != 0 {
		t.Fatalf("empty index returned %v", res)
	}
	if _, err := e.Add(recs[0]); err != nil {
		t.Fatal(err)
	}
	if !contains(e.Query(recs[0].Sig, recs[0].Size, 1.0), recs[0].Key) {
		t.Fatal("first Add not retrievable")
	}
}

func TestBuildUpsertsDuplicateKeys(t *testing.T) {
	recs := fixture(t, 20, 12)
	dup := append(append([]core.Record{}, recs...), core.Record{
		Key: recs[3].Key, Size: recs[4].Size, Sig: recs[4].Sig,
	})
	x, err := Build(dup, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if x.Len() != 20 {
		t.Fatalf("Len = %d, want 20 (duplicate collapsed)", x.Len())
	}
	n := 0
	for _, k := range x.Query(recs[4].Sig, recs[4].Size, 1.0) {
		if k == recs[3].Key {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("duplicate key appears %d times", n)
	}
}

func TestTombstoneGC(t *testing.T) {
	recs := fixture(t, 64, 13)
	x, err := Build(recs[:32], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, r := range recs[32:] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	for i := 0; i < 20; i++ {
		x.Delete(recs[i].Key)
	}
	if st := x.Stats(); st.Tombstones != 20 {
		t.Fatalf("Tombstones = %d, want 20", st.Tombstones)
	}
	x.Compact()
	st := x.Stats()
	if st.Tombstones != 0 {
		t.Fatalf("Tombstones = %d after Compact, want 0", st.Tombstones)
	}
	if st.Domains != 44 || len(st.Segments) != 1 || st.Segments[0] != 44 {
		t.Fatalf("unexpected shape after Compact: %+v", st)
	}
}
