package live

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/xrand"
)

// plannerOpts is liveOpts with the planner fully enabled (the default) and
// a result cache large enough that the equivalence tests' repeat rounds
// actually hit it (smaller caches are exercised by the eviction tests).
func plannerOpts() Options {
	o := liveOpts()
	o.ResultCacheSize = 2048
	return o
}

// unprunedOpts disables every planner feature: the reference configuration
// the equivalence tests compare against.
func unprunedOpts() Options {
	o := liveOpts()
	o.DisablePruning = true
	o.DisablePlanCache = true
	o.ResultCacheSize = -1
	return o
}

// churn applies the same randomized add/delete/seal/merge schedule to every
// given index so their logical contents stay identical.
func churn(t *testing.T, recs []core.Record, idxs ...*Index) {
	t.Helper()
	apply := func(f func(x *Index)) {
		for _, x := range idxs {
			f(x)
		}
	}
	// Seed a first segment, buffer more, delete a spread, seal, re-add some
	// deleted keys (exercising replace tombstones), and merge.
	apply(func(x *Index) {
		for _, r := range recs[:150] {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		x.Flush()
		for _, r := range recs[150:260] {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		for i := 5; i < 250; i += 11 {
			x.Delete(recs[i].Key)
		}
		x.Flush()
		for _, r := range recs[260:300] {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		for i := 5; i < 120; i += 22 {
			if _, err := x.Add(recs[i]); err != nil { // resurrect some deleted keys
				t.Fatal(err)
			}
		}
		x.Flush()
		for x.mergeIfCrowded() {
		}
	})
}

// TestPlannedEquivalentToUnprunedUnderChurn is the tentpole equivalence
// guarantee: with pruning, the plan cache and the result cache all enabled,
// every query returns byte-identical results (same keys, same order) to the
// fully disabled configuration, across a randomized churn schedule, for
// repeated queries (cache hits) included.
func TestPlannedEquivalentToUnprunedUnderChurn(t *testing.T) {
	recs := fixture(t, 300, 7)
	planned, err := New(plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(unprunedOpts())
	if err != nil {
		t.Fatal(err)
	}
	churn(t, recs, planned, plain)

	thresholds := []float64{0.0, 0.25, 0.5, 0.75, 0.9, 1.0}
	check := func(round int) {
		for qi := 0; qi < len(recs); qi += 3 {
			r := recs[qi]
			for _, tStar := range thresholds {
				want := plain.Query(r.Sig, r.Size, tStar)
				got := planned.Query(r.Sig, r.Size, tStar)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d query %d t*=%.2f: planned %v != unpruned %v",
						round, qi, tStar, got, want)
				}
			}
		}
	}
	check(0)
	check(1) // every repeat is a result-cache hit on the planned index
	st := planned.Stats()
	if st.Planner.ResultHits == 0 {
		t.Fatal("second query round produced no result-cache hits")
	}
	if st.Planner.PlanHits == 0 {
		t.Fatal("repeated query shapes produced no plan-cache hits")
	}

	// More churn invalidates both caches; equivalence must survive it.
	planned.Compact()
	plain.Compact()
	check(2)
	check(3)
}

// TestBatchPlannedEquivalentToUnpruned runs the same equivalence through
// the batch engine, including repeated batches (result-cache hits).
func TestBatchPlannedEquivalentToUnpruned(t *testing.T) {
	recs := fixture(t, 300, 8)
	planned, err := New(plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(unprunedOpts())
	if err != nil {
		t.Fatal(err)
	}
	churn(t, recs, planned, plain)

	queries := make([]core.BatchQuery, 0, 120)
	for qi := 0; qi < 340; qi += 3 {
		r := recs[qi%len(recs)]
		queries = append(queries, core.BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: float64(qi%5) * 0.2})
	}
	queries = append(queries, core.BatchQuery{Sig: recs[0].Sig, Size: 0, Threshold: 0.5}) // invalid → nil row
	for round := 0; round < 3; round++ {
		want := plain.QueryBatch(queries, 4)
		got := planned.QueryBatch(queries, 4)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: batch rows diverge", round)
		}
	}
}

// TestPruningActuallyFires ensures the equivalence above is not vacuous:
// with segments built from disjoint value pools, the Bloom pre-test must
// rule most of them out.
func TestPruningActuallyFires(t *testing.T) {
	opts := plannerOpts()
	opts.ResultCacheSize = -1 // count real fan-outs, not cache hits
	x, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Four segments over disjoint hash-value pools: self-queries from one
	// pool cannot collide in the other three.
	var probes [][]core.Record
	for seg := 0; seg < 4; seg++ {
		recs := synthRecords(60, uint64(seg+1), fmt.Sprintf("p%d", seg), 50, 500)
		for _, r := range recs {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		x.Flush()
		probes = append(probes, recs)
	}
	if n := len(x.Stats().Segments); n != 4 {
		t.Fatalf("expected 4 segments, got %d", n)
	}
	for _, recs := range probes {
		for _, r := range recs[:20] {
			x.Query(r.Sig, r.Size, 0.5)
		}
	}
	st := x.Stats().Planner
	pruned := st.SegmentsBloomPruned + st.SegmentsRangePruned
	if total := pruned + st.SegmentsProbed; total == 0 || pruned*2 < total {
		t.Fatalf("pruning barely fires: probed %d, range-pruned %d, bloom-pruned %d",
			st.SegmentsProbed, st.SegmentsRangePruned, st.SegmentsBloomPruned)
	}
}

// TestTopKPlannedEquivalentToUnpruned: top-k with early termination must
// match the exhaustive visit, across thresholds of k and churn.
func TestTopKPlannedEquivalentToUnpruned(t *testing.T) {
	recs := fixture(t, 300, 9)
	planned, err := New(plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(unprunedOpts())
	if err != nil {
		t.Fatal(err)
	}
	churn(t, recs, planned, plain)
	for qi := 0; qi < len(recs); qi += 7 {
		r := recs[qi]
		for _, k := range []int{1, 3, 10, 50} {
			want := plain.QueryTopK(r.Sig, r.Size, k)
			got := planned.QueryTopK(r.Sig, r.Size, k)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query %d k=%d: planned %v != unpruned %v", qi, k, got, want)
			}
		}
	}
}

// TestTopKEarlyTermination ensures the size-descending visit order actually
// short-circuits when segment size ranges are far apart.
func TestTopKEarlyTermination(t *testing.T) {
	opts := plannerOpts()
	x, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	big := synthRecords(80, 7, "big", 2000, 4000)
	small := synthRecords(80, 8, "small", 4, 16)
	for _, r := range big {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	for _, r := range small {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	// A big self-query scores 1.0 in the big segment (j = 1, x = q); the
	// small segment's cap ((16/2000+1)/2 ≈ 0.5) cannot displace it, so the
	// visit stops after the big segment. Synthetic signatures only collide
	// with themselves, so k = 1 is the largest k the corpus can fill.
	res := x.QueryTopK(big[0].Sig, big[0].Size, 1)
	if len(res) != 1 || res[0].Key != big[0].Key {
		t.Fatalf("self top-k query: %v", res)
	}
	if got := x.Stats().Planner.TopKEarlyExits; got == 0 {
		t.Fatal("top-k did not terminate early despite disjoint size ranges")
	}
}

// TestTombstonesDropOnIncrementalMerge (satellite): the exact per-key GC
// now runs on incremental merges, so tombstones whose entries are merged
// away disappear without a full Compact — even when older segments pin the
// global minimum sequence number (the old heuristic's blind spot).
func TestTombstonesDropOnIncrementalMerge(t *testing.T) {
	opts := plannerOpts()
	x, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := fixture(t, 160, 10)
	// Segment 1: old entries that stay alive (they hold the minimum seq).
	for _, r := range recs[:40] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	// Segments 2..4: newer entries, many of which we then delete.
	for seg := 0; seg < 3; seg++ {
		for _, r := range recs[40+40*seg : 80+40*seg] {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		x.Flush()
	}
	for _, r := range recs[40:160] {
		x.Delete(r.Key)
	}
	before := x.Stats().Tombstones
	if before == 0 {
		t.Fatal("fixture produced no tombstones")
	}
	// Incremental merges only — no full Compact. The deleted entries live
	// in the merged segments, so their tombstones stop shadowing anything.
	for x.mergeIfCrowded() {
	}
	if x.Stats().Merges == 0 {
		t.Fatal("no merge ran; raise the segment count")
	}
	after := x.Stats().Tombstones
	if after >= before {
		t.Fatalf("tombstones did not drop on incremental merge: %d -> %d", before, after)
	}
}

// TestLoadV1SnapshotRebuildsMetadata (satellite): a version-1 snapshot (no
// planner metadata on the wire) still loads, and the rebuilt metadata
// answers queries identically to the v2 round-trip.
func TestLoadV1SnapshotRebuildsMetadata(t *testing.T) {
	recs := fixture(t, 300, 11)
	x, err := New(plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	churn(t, recs, x)

	v2 := x.AppendBinary(nil)
	v1 := appendBinaryV1(x)

	fromV2, err := Load(bytes.NewReader(v2), plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	fromV1, err := Load(bytes.NewReader(v1), plannerOpts())
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	// The rebuilt metadata must be identical to the serialized one: same
	// bounds, same filters. Tombstone map serialization order is not
	// deterministic, so compact both (emptying the tombstones) before the
	// byte comparison — the merged segments and their metadata must agree
	// exactly.
	if len(fromV1.AppendBinary(nil)) != len(fromV2.AppendBinary(nil)) {
		t.Fatal("v1 load + re-save length differs from v2 round-trip")
	}
	fromV1.Compact()
	fromV2.Compact()
	if !bytes.Equal(fromV1.AppendBinary(nil), fromV2.AppendBinary(nil)) {
		t.Fatal("compacted v1 load differs byte-for-byte from compacted v2 load")
	}
	for qi := 0; qi < 200; qi += 9 {
		r := recs[qi]
		if !reflect.DeepEqual(fromV1.Query(r.Sig, r.Size, 0.5), fromV2.Query(r.Sig, r.Size, 0.5)) {
			t.Fatalf("query %d: v1 load and v2 load disagree", qi)
		}
	}
	if len(v2) <= len(v1) {
		t.Fatal("v2 encoding should carry extra metadata bytes")
	}
}

// appendBinaryV1 re-encodes an index in the legacy version-1 layout (no
// per-segment metadata), simulating a snapshot written before the planner.
func appendBinaryV1(x *Index) []byte {
	x.mu.Lock()
	sn := x.snap.Load()
	seq := x.seq
	x.mu.Unlock()
	buf := append([]byte(nil), liveMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, liveVersionV1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.NumHash))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.RMax))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.segs)))
	for _, seg := range sn.segs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seg.seqs)))
		for _, s := range seg.seqs {
			buf = binary.LittleEndian.AppendUint64(buf, s)
		}
		buf = seg.idx.AppendBinary(buf)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.buf)))
	for i := range sn.buf {
		e := &sn.buf[i]
		buf = binary.LittleEndian.AppendUint64(buf, e.seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.rec.Key)))
		buf = append(buf, e.rec.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.rec.Size))
		for _, v := range e.rec.Sig {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.tombs)))
	for k, s := range sn.tombs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	return buf
}

// TestCorruptMetadataRejected: truncating or corrupting the v2 metadata
// block must fail the load, not silently degrade.
func TestCorruptMetadataRejected(t *testing.T) {
	recs := fixture(t, 60, 12)
	x, err := Build(recs, plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	enc := x.AppendBinary(nil)
	truncated := enc[:len(enc)-9]
	if _, err := Load(bytes.NewReader(truncated), plannerOpts()); err == nil {
		t.Fatal("truncated metadata accepted")
	}
}

// TestResultCacheCoherence: a cached result must never be served across a
// mutation — the generation check forces a recompute.
func TestResultCacheCoherence(t *testing.T) {
	recs := fixture(t, 120, 13)
	x, err := Build(recs[:100], plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	before := x.Query(r.Sig, r.Size, 0.3)
	if !containsKey(before, r.Key) {
		t.Fatal("self-query missed its own key")
	}
	x.Query(r.Sig, r.Size, 0.3) // cache hit
	if x.Stats().Planner.ResultHits == 0 {
		t.Fatal("repeat query did not hit the result cache")
	}
	x.Delete(r.Key)
	after := x.Query(r.Sig, r.Size, 0.3)
	if containsKey(after, r.Key) {
		t.Fatal("stale cached result served after Delete")
	}
	if _, err := x.Add(r); err != nil {
		t.Fatal(err)
	}
	again := x.Query(r.Sig, r.Size, 0.3)
	if !containsKey(again, r.Key) {
		t.Fatal("re-added key invisible after cached queries")
	}
}

// synthRecords builds n records whose signature values are drawn from a
// hash-value pool tagged by pool's low byte: records of different pools
// share no values, like corpora whose domains have nothing in common.
// Sizes spread uniformly over [minSize, maxSize].
func synthRecords(n int, pool uint64, prefix string, minSize, maxSize int) []core.Record {
	rng := xrand.New(pool*0x9E3779B9 + 1)
	recs := make([]core.Record, n)
	for i := range recs {
		sig := make(minhash.Signature, 128)
		for j := range sig {
			sig[j] = pool<<56 | rng.Uint64()&((1<<56)-1)
		}
		size := minSize
		if maxSize > minSize {
			size += int(rng.Uint64() % uint64(maxSize-minSize+1))
		}
		recs[i] = core.Record{Key: fmt.Sprintf("%s-%04d", prefix, i), Size: size, Sig: sig}
	}
	return recs
}

func containsKey(keys []string, k string) bool {
	for _, s := range keys {
		if s == k {
			return true
		}
	}
	return false
}

// TestGenerationFlipHammer (satellite, -race): readers hammer the cached
// query path while writers flip the snapshot generation under them with
// adds, deletes, seals and merges. Every read must be internally consistent
// (a currently-contained self-key present unless deleted concurrently) and
// the run must be race-clean.
func TestGenerationFlipHammer(t *testing.T) {
	recs := fixture(t, 260, 14)
	opts := plannerOpts()
	opts.ManualCompaction = false
	opts.SealThreshold = 16
	x, err := Build(recs[:130], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	// Stable keys: never touched by the writer, must appear in every
	// self-query no matter which generation the reader lands on.
	stable := recs[:50]
	writer.Add(1)
	go func() { // writer: churn the mutable tail (bounded so it cannot
		// starve the readers; every op flips the snapshot generation)
		defer writer.Done()
		for i := 0; i < 1500; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := recs[130+i%130]
			if i%3 == 2 {
				x.Delete(r.Key)
			} else if _, err := x.Add(r); err != nil {
				panic(err)
			}
			if i%97 == 96 {
				x.Flush()
			}
		}
	}()
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			var dst []string
			for i := 0; i < 400; i++ {
				r := stable[(i+w*13)%len(stable)]
				dst = x.QueryAppend(dst[:0], r.Sig, r.Size, 0.5)
				if !containsKey(dst, r.Key) {
					panic("self-query lost a stable key: " + r.Key)
				}
				if i%8 == 0 {
					x.QueryTopK(r.Sig, r.Size, 5)
				}
			}
		}(w)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestPlanCacheBound: overflowing the plan table restarts it instead of
// growing without limit.
func TestPlanCacheBound(t *testing.T) {
	recs := fixture(t, 80, 15)
	x, err := Build(recs, plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	for i := 0; i < planCacheMax+50; i++ {
		x.Query(r.Sig, r.Size+i, 0.5) // distinct plan key per query size
	}
	if tb := x.plans.Load(); tb == nil || len(tb.m) > planCacheMax {
		t.Fatalf("plan table exceeded its bound: %d", len(tb.m))
	}
}

// TestStatsSegmentDetail: the /stats surface carries per-segment planner
// metadata.
func TestStatsSegmentDetail(t *testing.T) {
	recs := fixture(t, 300, 16)
	x, err := New(plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	churn(t, recs, x)
	st := x.Stats()
	if len(st.SegmentDetail) != len(st.Segments) {
		t.Fatalf("detail rows %d != segments %d", len(st.SegmentDetail), len(st.Segments))
	}
	for i, d := range st.SegmentDetail {
		if d.Entries != st.Segments[i] {
			t.Fatalf("segment %d entries %d != %d", i, d.Entries, st.Segments[i])
		}
		if d.MinSize <= 0 || d.MinSize > d.MaxSize || d.MaxBound < d.MaxSize {
			t.Fatalf("segment %d bounds out of order: %+v", i, d)
		}
		if d.BloomBytes <= 0 {
			t.Fatalf("segment %d reports no bloom footprint", i)
		}
	}
}

// TestResultCacheHitIsExact: two queries that collide in the cache set but
// differ in signature, size or threshold must not share a result.
func TestResultCacheHitIsExact(t *testing.T) {
	recs := fixture(t, 100, 17)
	x, err := Build(recs, plannerOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	a := x.Query(r.Sig, r.Size, 0.9)
	b := x.Query(r.Sig, r.Size, 0.0) // same sig+size, different threshold
	if len(b) < len(a) {
		t.Fatal("lower threshold returned fewer candidates — cache confused the keys")
	}
	if got := x.Query(r.Sig, r.Size, math.Nextafter(0.9, 1)); len(got) > len(b) {
		t.Fatal("nearby threshold produced impossible result")
	}
}
