//go:build race

package live

// raceEnabled reports that the race detector is active: its runtime adds
// allocations of its own and randomizes sync.Pool reuse, so strict
// allocation-count assertions are skipped.
const raceEnabled = true
