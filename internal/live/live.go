// Package live implements a mutable, always-queryable LSH Ensemble layered
// on the immutable core.Index — the serving-system counterpart of the
// paper's build-once index (Section 6.2 sketches the dynamic-data story;
// this package gives it a production shape).
//
// # Model
//
// A live Index is an atomically-swapped *snapshot* of three immutable
// parts:
//
//   - sealed segments: each a frozen core.Index over a slice of the corpus,
//     plus the mutation sequence number of every entry;
//   - an unsealed buffer: recent Adds, not yet worth an LSH build, scanned
//     linearly as one extra partition (upper bound = largest buffered size)
//     with the same (b, r) banding test the forest would apply;
//   - a tombstone map: key → sequence number of the Delete (or replacing
//     Add) that cleared it. An entry is live iff no tombstone with a higher
//     sequence number names its key.
//
// Readers load the snapshot pointer once and touch only immutable data, so
// a query never takes a lock a writer holds: Add, Delete and the compactor
// publish by building a NEW snapshot and swapping the pointer. Readers in
// flight keep the old snapshot — every query sees a consistent
// point-in-time view of the corpus.
//
// Writers (Add/Delete) serialize on a mutex, append to a buffer backing
// array whose published prefix is never rewritten, and copy the tombstone
// map on write (it holds only the deletes not yet compacted away, so the
// copies stay small).
//
// A background compactor seals the buffer into a new segment once it
// crosses Options.SealThreshold, and merges the two smallest segments
// whenever more than Options.MaxSegments have accumulated — dead entries
// are dropped during both. Each result is published with a single pointer
// swap. Compact runs the whole pipeline to one segment and is
// equivalence-preserving: the result answers queries exactly like a fresh
// core.Build over the surviving records (asserted by the package tests).
//
// # Query planning
//
// Every sealed segment carries planner metadata built at seal/merge time
// (segMeta): its domain-size range, its largest partition upper bound, a
// Bloom filter over its keys, and a Bloom filter over the leading
// signature values of every forest tree. A query consults the metadata
// before probing:
//
//   - range pruning: the (b, r) banding test is planned per partition
//     (core.PlanPartitions); when every partition of a segment is ruled
//     out by the containment bound u/|Q| < t*, the segment is skipped
//     without touching its forest;
//   - Bloom pruning: a forest probe at depth ≥ 1 can only match when the
//     query's per-tree leading signature value occurs in that segment, so
//     a miss in the leading-value Bloom skips the segment with zero false
//     negatives;
//   - top-k ordering: QueryTopK visits segments largest-bound-first and
//     stops once the worst kept score provably beats any segment still
//     unvisited (the containment upper bound from its partition bounds).
//
// Pruning is conservative by construction — a segment is skipped only
// when it provably contributes nothing — so planned results are
// byte-identical to a full scan (asserted by the package tests).
// Options.DisablePruning restores the full scan for A/B measurement.
//
// # Caches and generation coherence
//
// Snapshots carry two monotone generation counters: gen bumps on every
// publish, segGen only when the sealed-segment set changes (seal, merge,
// compact — Add/Delete republish with the same segments). They key two
// caches:
//
//   - a plan cache (segGen-keyed) memoizes the tuned per-segment (b, r)
//     plans for a (query size, threshold) pair;
//   - a bounded set-associative result cache (gen-keyed) memoizes full
//     query answers; a hit appends the cached keys and allocates nothing.
//
// Readers validate one generation number against the snapshot they
// loaded — no locks on the query path, and a cache entry can never
// outlive the snapshot shape it was computed against. Tombstone-only
// changes bump gen, so result-cache coherence holds even though the
// segment set (and the plan cache) is unchanged.
//
// The unsealed buffer has a planner of its own: an atomic Bloom filter over
// the leading signature value of every buffered entry's trees. A buffer scan
// can only match when some query leading value occurs in the buffer, so a
// filter miss skips the linear scan entirely — the cheap analogue of the
// sealed segments' Bloom pruning, rebuilt whenever a seal relocates the
// buffer.
//
// # Out-of-core segments
//
// With Options.DataDir set, every sealed segment is spilled to its own
// segment file (see segio.go for the layout): seal and merge write the file
// with an atomic temp+fsync+rename before publishing the segment, and Save
// writes a manifest that references the files instead of embedding the
// segment bytes. With Options.Mmap additionally set, segments are served
// from read-only memory-mapped views of those files: a boot from a manifest
// eagerly reads only each file's header and META section (the record catalog
// and planner metadata) while the signature stores and tree columns stay on
// disk until a probe faults them in — the corpus no longer needs to fit in
// RAM, and cold boot cost is proportional to metadata, not data.
//
// Mapped memory makes object lifetime a correctness matter (touching an
// unmapped page faults), so snapshots and segments are reference counted:
// queries pin the snapshot they read, and a retired segment unmaps only
// after the last reader drops the last snapshot referencing it. Segment
// files are garbage collected against the manifest: files never referenced
// by a manifest are deleted the moment their segment is retired, files a
// manifest references outlive retirement until CollectGarbage runs after
// the next manifest is durable, and boot sweeps files the loaded manifest
// does not reference. Every crash ordering therefore leaves a loadable
// manifest whose files all exist.
//
// Snapshot persistence is versioned: the current format (v3) references
// spilled segment files from a checksummed manifest (inlining any segment
// without a file); v2 carried the planner metadata inline and v1 predates
// the planner — both still load (see save.go).
package live

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lshensemble/internal/bloom"
	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/segfile"
	"lshensemble/internal/tune"
)

// Options configures a live index. The embedded core.Options (zero values =
// the paper's defaults) shape every sealed segment's build.
type Options struct {
	core.Options

	// SealThreshold is the buffer length that triggers a background seal.
	// Default 4096. Until sealed, buffered entries are answered by a linear
	// banding scan, so the threshold bounds the scan cost per query.
	SealThreshold int

	// MaxSegments is the sealed-segment count above which the compactor
	// merges the two smallest segments. Default 8.
	MaxSegments int

	// ManualCompaction disables the background compactor; sealing and
	// merging then happen only through explicit Flush/Compact calls.
	// Tests and single-shot tools use this to control timing.
	ManualCompaction bool

	// DisablePruning turns off the segment-level query planner (size-range
	// and Bloom segment pruning, plus top-k early termination); every query
	// then probes every sealed segment, as before the planner existed.
	// Pruned and unpruned queries return identical results — the knob
	// exists for A/B measurement.
	DisablePruning bool

	// DisablePlanCache turns off the per-(querySize, threshold) plan cache;
	// the per-segment banding decisions are then recomputed on every query.
	// A/B measurement knob, like DisablePruning.
	DisablePlanCache bool

	// ResultCacheSize bounds the exact-result cache in entries: 0 selects
	// the default (1024), a negative value disables the cache. Cached
	// results are only served against the exact snapshot generation they
	// were computed on, so any Add/Delete/seal/merge invalidates them all.
	ResultCacheSize int

	// DataDir, when non-empty, enables out-of-core sealed segments: every
	// seal and merge spills its segment to a file in this directory
	// (crash-safely: temp + fsync + atomic rename) and Save writes a
	// manifest referencing the files instead of embedding segment bytes.
	// The directory is created if missing and belongs to this index —
	// unreferenced segment files in it are garbage collected.
	DataDir string

	// Mmap serves sealed segments from read-only memory-mapped views of
	// their segment files instead of heap copies: queries run zero-copy over
	// the mapped bytes and a boot from a manifest reads only each file's
	// metadata eagerly. Requires DataDir. On platforms without mmap support
	// the flag is honored with a heap read (identical results, no laziness).
	Mmap bool
}

func (o Options) withDefaults() Options {
	o.Options = o.Options.WithDefaults()
	if o.SealThreshold == 0 {
		o.SealThreshold = 4096
	}
	if o.MaxSegments == 0 {
		o.MaxSegments = 8
	}
	if o.ResultCacheSize == 0 {
		o.ResultCacheSize = defaultResultCacheSize
	}
	return o
}

// newTuner builds the (b, r) optimizer every buffer scan shares; its grid
// matches the one the sealed segments' forests use.
func newTuner(opts Options) *tune.Optimizer {
	return tune.NewOptimizer(opts.NumHash/opts.RMax, opts.RMax)
}

// newBufBloom sizes a fresh buffer filter for one seal cycle's worth of
// leading values (SealThreshold entries, one value per tree each), at the
// same operating point as the sealed segments' leads filter. Nil when
// pruning is disabled.
func (x *Index) newBufBloom() *bloom.Atomic {
	if x.opts.DisablePruning {
		return nil
	}
	numLeads := (x.opts.NumHash + x.opts.RMax - 1) / x.opts.RMax
	entries := x.opts.SealThreshold * numLeads
	// NumHash and RMax can come from an untrusted snapshot header, so the
	// product must not drive the allocation: past the cap the filter is
	// merely over-occupied, which costs pruning precision, not correctness.
	const maxBufBloomEntries = 1 << 22
	if entries > maxBufBloomEntries || entries/x.opts.SealThreshold != numLeads {
		entries = maxBufBloomEntries
	}
	return bloom.NewAtomic(entries, leadsBloomBits, leadsBloomK)
}

// addBufLeads inserts a signature's per-tree leading values (the same
// stride mayCollide probes). Buffered signatures are full-width while the
// sealed stores truncate to the sketch backend's width, so leading values
// are masked before insertion — the query side masks identically, keeping
// the filter's zero-false-negative guarantee across the seal boundary.
func addBufLeads(f *bloom.Atomic, sig minhash.Signature, rMax int, mask uint64) {
	if f == nil {
		return
	}
	for off := 0; off < len(sig); off += rMax {
		f.AddHash(sig[off] & mask)
	}
}

// entry is one buffered Add: the record and its mutation sequence number.
type entry struct {
	rec core.Record
	seq uint64
}

// segment is one sealed, immutable slice of the corpus: a frozen core.Index
// plus the per-entry sequence numbers (aligned with the core ids, which
// core.Build assigns in record order) and the planner metadata derived from
// the index (see planner.go). Entries are in ascending seq order.
type segment struct {
	idx  *core.Index
	seqs []uint64
	meta *segMeta

	// refs counts the snapshots listing this segment. The last release
	// closes back (munmap under mmap) and disposes of the file — see
	// segio.go for the lifetime rules.
	refs atomic.Int64

	// back is the segment-file byte region the idx views are built over
	// (nil for heap-built segments).
	back *segfile.Backing

	// finfo is the on-disk identity once spilled (nil until then); set once,
	// read lock-free by Save and Stats.
	finfo atomic.Pointer[segFileInfo]

	// inManifest marks that an encoded manifest references the file, which
	// defers deletion at retirement to CollectGarbage.
	inManifest atomic.Bool

	// resident estimates the heap-resident bytes (for mapped segments, only
	// the eagerly decoded metadata).
	resident int64
}

func (s *segment) minSeq() uint64 { return s.seqs[0] }

// snapshot is one published, immutable state of the index. Everything
// reachable from a snapshot is frozen: writers and the compactor publish
// changes as new snapshots.
type snapshot struct {
	segs  []*segment        // ordered by minSeq
	buf   []entry           // unsealed adds, ascending seq; prefix of the writer's backing array
	tombs map[string]uint64 // key → seq of the clearing Delete/replacing Add

	// bufMax is the largest size among buffered entries — the buffer's
	// partition upper bound for threshold conversion. It may exceed the
	// largest *live* buffered size when the max entry is tombstoned; a too
	// large bound is merely conservative (Eq. 7 never loses candidates).
	bufMax int

	// gen increments on EVERY publish (Add, Delete, seal, merge): it keys
	// the result cache, so a cached result is served only against the exact
	// state it was computed on. segGen increments only when the sealed
	// segment set changes (seal, merge): it keys the plan cache, whose
	// entries depend on segment layout but not on buffered writes.
	gen    uint64
	segGen uint64

	// topkOrder holds segment indices sorted by meta.maxBound descending —
	// the visit order QueryTopK uses for early termination. Recomputed only
	// when segGen bumps; Add/Delete publishes share the previous slice.
	topkOrder []int

	// bufBloom filters the leading signature values of this snapshot's
	// buffered entries: a query whose leading values all miss cannot band-
	// collide with any buffered entry, so the linear scan is skipped. The
	// filter is shared with the writer (Adds insert concurrently — extra
	// bits relative to this snapshot's buf prefix only cost false
	// positives) and replaced when a seal relocates the buffer. Nil when
	// pruning is disabled.
	bufBloom *bloom.Atomic

	// refs and dead manage the snapshot's lifetime (segio.go): the current
	// pointer holds one reference, each in-flight reader one more, and the
	// exactly-once teardown releases the segments.
	refs atomic.Int64
	dead atomic.Bool
}

// successor stamps next as the publication following cur: generations
// advance (segGen only when the segment set changed) and the top-k visit
// order is recomputed or inherited accordingly. Callers must hold x.mu so
// generations are strictly monotonic.
func successor(next, cur *snapshot, segsChanged bool) *snapshot {
	next.gen = cur.gen + 1
	if segsChanged {
		next.segGen = cur.segGen + 1
		next.topkOrder = topkSegOrder(next.segs)
	} else {
		next.segGen = cur.segGen
		next.topkOrder = cur.topkOrder
	}
	return next
}

// alive reports whether an entry of the given key and sequence number is
// still current under this snapshot's tombstones.
func (sn *snapshot) alive(key string, seq uint64) bool {
	return sn.tombs[key] <= seq
}

// Index is a mutable, always-queryable LSH Ensemble. Queries are lock-free
// against writers and the compactor; Add/Delete are safe for concurrent use
// with each other and with queries. See the package comment for the model.
type Index struct {
	opts  Options
	tuner *tune.Optimizer // shared with buffer scans; safe for concurrent use

	snap atomic.Pointer[snapshot]

	// mu serializes writers: Add, Delete, and every snapshot publish.
	// Readers never take it.
	mu      sync.Mutex
	seq     uint64            // last assigned mutation sequence number
	keySeq  map[string]uint64 // live key → seq of its current entry
	bufBack []entry           // buffer backing; published snapshots view prefixes of it

	// bufBloom is the writer-side handle of the current buffer filter
	// (snapshots carry the same pointer); guarded by mu, swapped at seal.
	bufBloom *bloom.Atomic

	// compactMu serializes compaction work (the background goroutine, Flush,
	// Compact): at most one segment build is in flight at a time.
	compactMu sync.Mutex

	domains atomic.Int64  // live domain count (= len(keySeq), readable lock-free)
	seals   atomic.Uint64 // completed seal operations
	merges  atomic.Uint64 // completed merge operations

	// Out-of-core state (segio.go). saveMu serializes Save's spill+encode
	// pass; retMu guards retired, the manifest-referenced files awaiting
	// CollectGarbage; nextSegID names spilled files; spillErrors counts
	// spills that failed (the segment then stays heap-resident).
	saveMu      sync.Mutex
	retMu       sync.Mutex
	retired     []string
	nextSegID   atomic.Uint64
	spillErrors atomic.Uint64

	// Plan cache (planner.go): generation-pinned table of per-segment
	// banding decisions. planMu serializes publishes; reads are lock-free.
	plans  atomic.Pointer[planTable]
	planMu sync.Mutex

	// Result cache (planner.go): set-associative exact-result slots, nil
	// when disabled. rcMask selects the set; rcClock stamps approximate LRU.
	rc      []atomic.Pointer[resultEntry]
	rcMask  uint64
	rcClock atomic.Uint64

	// Planner observability, surfaced through Stats.
	segProbed      atomic.Uint64 // segments actually probed by queries
	segRangePruned atomic.Uint64 // segments skipped: every partition ruled out by size
	segBloomPruned atomic.Uint64 // segments skipped: no leading value can collide
	planHits       atomic.Uint64
	planMisses     atomic.Uint64
	resHits        atomic.Uint64
	resMisses      atomic.Uint64
	topkEarlyExits atomic.Uint64 // QueryTopK calls that stopped before the last segment
	bufScans       atomic.Uint64 // linear buffer scans actually performed
	bufBloomSkips  atomic.Uint64 // buffer scans skipped by the buffer Bloom filter

	scratch sync.Pool // *queryScratch

	// observer holds an observerBox with the installed latency Observer
	// (SetObserver); loaded lock-free once per query.
	observer atomic.Value

	nudge     chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// queryScratch is the pooled per-query working memory of the live fan-out:
// a reusable id buffer for the per-segment candidate lists.
type queryScratch struct {
	ids []uint32
}

// QueryKind discriminates the query entry points for Observer callbacks.
type QueryKind uint8

const (
	// KindQuery is a single containment query (Query and friends).
	KindQuery QueryKind = iota
	// KindTopK is a ranked query (QueryTopK and friends).
	KindTopK
	// KindBatch is one whole batch dispatch (QueryBatch and friends); the
	// observed duration covers the entire batch, not one row.
	KindBatch
)

// String names the kind for metric labels.
func (k QueryKind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindTopK:
		return "topk"
	default:
		return "batch"
	}
}

// Observer receives one callback per query with its measured wall-clock
// latency. Implementations must be safe for concurrent use and should be
// allocation-free (the callback sits on the index's allocation-free query
// path); internal/obs histograms qualify. Result-cache hits are observed
// too — fast answers are part of the latency distribution.
type Observer interface {
	ObserveQuery(kind QueryKind, d time.Duration)
}

// SetObserver installs (or with nil, removes) the latency observer. Safe
// to call at any time, including while queries are in flight.
func (x *Index) SetObserver(o Observer) {
	x.observer.Store(observerBox{o})
}

// observerBox wraps the interface so atomic.Value always stores one
// concrete type (a nil interface cannot be stored directly).
type observerBox struct{ o Observer }

func (x *Index) getObserver() Observer {
	if v := x.observer.Load(); v != nil {
		return v.(observerBox).o
	}
	return nil
}

// QueryTrace, when attached to a query's context via WithQueryTrace,
// records what the planner did for that one query — the per-request view
// of the aggregate Stats.Planner counters. The serving layer uses it to
// dump a planner breakdown into the slow-query log.
//
// Only the single-query path (Query/QueryContext/QueryAppend*) fills a
// trace; batch and top-k queries ignore it.
type QueryTrace struct {
	// ResultCacheHit reports the query was answered from the result cache
	// without touching a segment.
	ResultCacheHit bool
	// Segments and Buffered describe the snapshot the query ran against.
	Segments int
	Buffered int
	// SegmentsProbed / SegmentsRangePruned / SegmentsBloomPruned partition
	// the per-segment planner decisions for this query.
	SegmentsProbed      int
	SegmentsRangePruned int
	SegmentsBloomPruned int
	// BufferScanned / BufferBloomSkipped report whether the unsealed
	// buffer was linearly scanned or skipped by its Bloom filter.
	BufferScanned      bool
	BufferBloomSkipped bool
}

// traceCtxKey carries a *QueryTrace in a context.
type traceCtxKey struct{}

// WithQueryTrace returns ctx carrying t; the next single query run under
// the returned context fills it in.
func WithQueryTrace(ctx context.Context, t *QueryTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

func queryTraceFrom(ctx context.Context) *QueryTrace {
	t, _ := ctx.Value(traceCtxKey{}).(*QueryTrace)
	return t
}

// New constructs an empty live index and, unless opts.ManualCompaction is
// set, starts its background compactor. Close releases the compactor.
func New(opts Options) (*Index, error) {
	return Build(nil, opts)
}

// Build constructs a live index whose initial corpus is the given records,
// sealed into a single segment (records sharing a key collapse to the last
// occurrence, matching Add-upsert semantics). Unless opts.ManualCompaction
// is set the background compactor is started; Close releases it.
func Build(records []core.Record, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.Options.Validate(); err != nil {
		return nil, err
	}
	if opts.Mmap && opts.DataDir == "" {
		return nil, fmt.Errorf("live: Options.Mmap requires Options.DataDir")
	}
	x := &Index{
		opts:   opts,
		tuner:  newTuner(opts),
		keySeq: make(map[string]uint64, len(records)),
		nudge:  make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if opts.ResultCacheSize > 0 {
		x.rc, x.rcMask = newResultCache(opts.ResultCacheSize)
	}
	if opts.DataDir != "" {
		if err := x.initDataDir(); err != nil {
			return nil, err
		}
	}
	x.bufBloom = x.newBufBloom()
	sn := &snapshot{bufBloom: x.bufBloom}
	if len(records) > 0 {
		for _, r := range records {
			if err := x.validateRecord(r); err != nil {
				return nil, err
			}
		}
		// Upsert semantics: the last record of each key wins, earlier ones
		// are dropped before the build (no tombstone needed — they never
		// become visible).
		last := make(map[string]int, len(records))
		for i, r := range records {
			last[r.Key] = i
		}
		recs := make([]core.Record, 0, len(last))
		seqs := make([]uint64, 0, len(last))
		for i, r := range records {
			if last[r.Key] != i {
				continue
			}
			seq := uint64(i + 1)
			recs = append(recs, r)
			seqs = append(seqs, seq)
			x.keySeq[r.Key] = seq
		}
		idx, err := core.Build(recs, opts.Options)
		if err != nil {
			return nil, err
		}
		seg := &segment{idx: idx, seqs: seqs, meta: buildSegMeta(idx)}
		seg.resident = heapSegmentResident(idx, seg.meta)
		sn.segs = []*segment{x.persistSegment(seg)}
		x.seq = uint64(len(records))
		x.domains.Store(int64(len(recs)))
	}
	x.publishInitial(sn)
	if !opts.ManualCompaction {
		go x.compactor()
	} else {
		close(x.done)
	}
	return x, nil
}

func (x *Index) validateRecord(r core.Record) error {
	if r.Size <= 0 {
		return fmt.Errorf("live: record %q has non-positive size %d", r.Key, r.Size)
	}
	if len(r.Sig) < x.opts.NumHash {
		return fmt.Errorf("live: record %q signature length %d < NumHash %d",
			r.Key, len(r.Sig), x.opts.NumHash)
	}
	return nil
}

// Options returns the effective options.
func (x *Index) Options() Options { return x.opts }

// Len returns the number of live domains (tombstoned entries excluded).
func (x *Index) Len() int { return int(x.domains.Load()) }

// Add inserts or replaces a domain. A record whose key is already indexed
// supersedes the old entry (upsert): readers see either the old or the new
// version, never both. The signature is copied, so the caller keeps
// ownership of r.Sig. Add never blocks queries; concurrent Adds serialize
// on an internal mutex. It reports whether an existing entry was replaced.
func (x *Index) Add(r core.Record) (replaced bool, err error) {
	if err := x.validateRecord(r); err != nil {
		return false, err
	}
	// Decouple from the caller's backing array (and clamp to NumHash, the
	// prefix every probe uses): buffered signatures are read lock-free by
	// queries, so later caller mutation must not be observable.
	r.Sig = append(minhash.Signature(nil), r.Sig[:x.opts.NumHash]...)

	x.mu.Lock()
	x.seq++
	seq := x.seq
	cur := x.snap.Load()
	tombs := cur.tombs
	_, replaced = x.keySeq[r.Key]
	if replaced {
		// The replacing Add tombstones every older entry of the key (their
		// seqs are < seq) while leaving the new entry (seq == seq) alive.
		tombs = cloneTombs(tombs, r.Key, seq)
	} else {
		x.domains.Add(1)
	}
	x.keySeq[r.Key] = seq
	// The published prefix of bufBack is immutable: this append writes only
	// at the index just past every published snapshot's view (or relocates
	// to a fresh array), and the longer prefix becomes visible only through
	// the snapshot swap below.
	x.bufBack = append(x.bufBack, entry{rec: r, seq: seq})
	// The filter insert precedes the snapshot store, so any reader that can
	// see this entry also sees its filter bits.
	addBufLeads(x.bufBloom, r.Sig, x.opts.RMax, x.opts.Sketch.Mask())
	bufMax := cur.bufMax
	if r.Size > bufMax {
		bufMax = r.Size
	}
	next := &snapshot{segs: cur.segs, buf: x.bufBack, tombs: tombs, bufMax: bufMax, bufBloom: x.bufBloom}
	old := x.publishLocked(next, cur, false)
	full := len(next.buf) >= x.opts.SealThreshold
	x.mu.Unlock()
	x.releaseSnap(old)

	if full {
		x.kick()
	}
	return replaced, nil
}

// Delete removes a domain by key. It reports whether the key was indexed.
// The entry is tombstoned immediately (readers loading later snapshots no
// longer see it) and physically dropped by the next compaction that touches
// its segment.
func (x *Index) Delete(key string) bool {
	x.mu.Lock()
	if _, ok := x.keySeq[key]; !ok {
		x.mu.Unlock()
		return false
	}
	x.seq++
	seq := x.seq
	delete(x.keySeq, key)
	x.domains.Add(-1)
	cur := x.snap.Load()
	next := &snapshot{segs: cur.segs, buf: cur.buf, tombs: cloneTombs(cur.tombs, key, seq), bufMax: cur.bufMax, bufBloom: x.bufBloom}
	old := x.publishLocked(next, cur, false)
	x.mu.Unlock()
	x.releaseSnap(old)
	return true
}

// cloneTombs returns a copy of tombs with key → seq added. The published
// map is never mutated in place — readers hold it lock-free.
func cloneTombs(tombs map[string]uint64, key string, seq uint64) map[string]uint64 {
	next := make(map[string]uint64, len(tombs)+1)
	for k, v := range tombs {
		next[k] = v
	}
	next[key] = seq
	return next
}

func (x *Index) acquireScratch() *queryScratch {
	s, _ := x.scratch.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	return s
}

func (x *Index) releaseScratch(s *queryScratch) { x.scratch.Put(s) }

// Query returns the keys of all candidate domains for the query signature
// at containment threshold tStar (see core.Index.QueryIDs for parameter
// semantics). It is lock-free against Add, Delete and the compactor, and
// answers from a consistent point-in-time snapshot. Each live key appears
// at most once.
func (x *Index) Query(sig minhash.Signature, querySize int, tStar float64) []string {
	return x.QueryAppend(nil, sig, querySize, tStar)
}

// QueryAppend is Query appending into dst (which may be nil). A serving
// loop reusing dst runs allocation-free in steady state, matching the
// immutable index's QueryIDsAppend path: both the result-cache hit path and
// the planned fan-out (with a warm plan cache) append without allocating.
func (x *Index) QueryAppend(dst []string, sig minhash.Signature, querySize int, tStar float64) []string {
	dst, _ = x.QueryAppendContext(context.Background(), dst, sig, querySize, tStar)
	return dst
}

// QueryContext is Query under a context: the fan-out checks ctx between
// segments (and periodically inside the buffer scan), so a canceled request
// stops probing instead of running the query to completion. On cancellation
// it returns (nil, ctx.Err()); the partially collected candidates are
// discarded, never cached.
func (x *Index) QueryContext(ctx context.Context, sig minhash.Signature, querySize int, tStar float64) ([]string, error) {
	return x.QueryAppendContext(ctx, nil, sig, querySize, tStar)
}

// QueryAppendContext is QueryAppend under a context — see QueryContext for
// the cancellation semantics. On cancellation dst is returned grown by an
// unspecified prefix of the answer alongside ctx.Err().
func (x *Index) QueryAppendContext(ctx context.Context, dst []string, sig minhash.Signature, querySize int, tStar float64) ([]string, error) {
	if o := x.getObserver(); o != nil {
		start := time.Now()
		dst, err := x.queryAppendContext(ctx, dst, sig, querySize, tStar)
		o.ObserveQuery(KindQuery, time.Since(start))
		return dst, err
	}
	return x.queryAppendContext(ctx, dst, sig, querySize, tStar)
}

func (x *Index) queryAppendContext(ctx context.Context, dst []string, sig minhash.Signature, querySize int, tStar float64) ([]string, error) {
	if querySize <= 0 {
		return dst, nil
	}
	if len(sig) > x.opts.NumHash {
		sig = sig[:x.opts.NumHash]
	}
	tStar = clampThreshold(tStar)
	// Pin the snapshot: a concurrent seal/merge may retire (and under mmap,
	// unmap) segments the fan-out is still probing.
	sn := x.acquireSnap()
	tr := queryTraceFrom(ctx)
	if tr != nil {
		tr.Segments = len(sn.segs)
		tr.Buffered = len(sn.buf)
	}
	var h uint64
	tBits := math.Float64bits(tStar)
	if x.rc != nil {
		h = queryHash(sig, querySize, tBits)
		if e := x.lookupResult(sn, sig, querySize, tBits, h); e != nil {
			x.resHits.Add(1)
			if tr != nil {
				tr.ResultCacheHit = true
			}
			x.releaseSnap(sn)
			return append(dst, e.keys...), nil
		}
		x.resMisses.Add(1)
	}
	base := len(dst)
	dst, err := x.querySnapshot(ctx, dst, sn, sig, querySize, tStar, tr)
	// A canceled fan-out collected only a prefix of the answer; caching it
	// would serve the truncation to later, uncanceled queries.
	if err == nil && x.rc != nil {
		x.storeResult(sn, sig, querySize, tBits, h, dst[base:])
	}
	x.releaseSnap(sn)
	return dst, err
}

func clampThreshold(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// querySnapshot runs the planned fan-out over one snapshot: resolve the
// plan for (querySize, tStar), probe only the segments the plan and the
// Bloom pre-test cannot rule out, then scan the buffer. With pruning
// disabled it degrades to the plain probe-everything loop. sig and tStar
// must already be clamped. ctx is checked once per segment and periodically
// inside the buffer scan; on cancellation dst is returned as collected so
// far alongside ctx.Err(). tr, when non-nil, receives the per-query
// planner breakdown (mirroring the aggregate counters).
func (x *Index) querySnapshot(ctx context.Context, dst []string, sn *snapshot, sig minhash.Signature, querySize int, tStar float64, tr *QueryTrace) ([]string, error) {
	if len(sn.segs) > 0 {
		s := x.acquireScratch()
		if x.opts.DisablePruning {
			for _, seg := range sn.segs {
				if err := ctx.Err(); err != nil {
					x.releaseScratch(s)
					return dst, err
				}
				if tr != nil {
					tr.SegmentsProbed++
				}
				dst = x.appendSegmentMatches(dst, s, sn, seg, sig, querySize, tStar)
			}
		} else {
			plan := x.planFor(sn, querySize, tStar)
			for si, seg := range sn.segs {
				if err := ctx.Err(); err != nil {
					x.releaseScratch(s)
					return dst, err
				}
				pp := plan.params[si]
				if pp == nil {
					x.segRangePruned.Add(1)
					if tr != nil {
						tr.SegmentsRangePruned++
					}
					continue
				}
				if !seg.meta.mayCollide(sig, x.opts.RMax, x.opts.Sketch.Mask()) {
					x.segBloomPruned.Add(1)
					if tr != nil {
						tr.SegmentsBloomPruned++
					}
					continue
				}
				x.segProbed.Add(1)
				if tr != nil {
					tr.SegmentsProbed++
				}
				// A sealed segment is never dirty and the plan matches its
				// partition count, so the error path is unreachable.
				s.ids, _ = seg.idx.QueryIDsPlannedAppend(s.ids[:0], sig, pp)
				dst = appendLiveKeys(dst, sn, seg, s.ids)
			}
		}
		x.releaseScratch(s)
	}
	return x.appendBufferMatches(ctx, dst, sn, sig, querySize, tStar, tr)
}

// appendSegmentMatches probes one sealed segment the pre-planner way and
// appends the keys of its live candidates (the DisablePruning path).
func (x *Index) appendSegmentMatches(dst []string, s *queryScratch, sn *snapshot, seg *segment,
	sig minhash.Signature, querySize int, tStar float64) []string {
	// A sealed segment can never be dirty, so the error is impossible; the
	// empty result on that unreachable path is still safe.
	s.ids, _ = seg.idx.QueryIDsAppend(s.ids[:0], sig, querySize, tStar)
	return appendLiveKeys(dst, sn, seg, s.ids)
}

// appendLiveKeys appends the keys of the candidate ids that survive the
// snapshot's tombstones.
func appendLiveKeys(dst []string, sn *snapshot, seg *segment, ids []uint32) []string {
	if len(sn.tombs) == 0 {
		for _, id := range ids {
			dst = append(dst, seg.idx.Key(id))
		}
		return dst
	}
	for _, id := range ids {
		if key := seg.idx.Key(id); sn.alive(key, seg.seqs[id]) {
			dst = append(dst, key)
		}
	}
	return dst
}

// appendBufferMatches linearly scans the unsealed buffer, treating it as
// one more partition whose upper size bound is the largest buffered size:
// the containment threshold converts to a Jaccard threshold exactly as a
// sealed partition would convert it (Eq. 7, conservative), the tuner picks
// one (b, r) for the whole scan, and an entry matches if any of the b bands
// of r hash values collide — the LSH forest's collision condition, without
// the forest.
func (x *Index) appendBufferMatches(ctx context.Context, dst []string, sn *snapshot, sig minhash.Signature, querySize int, tStar float64, tr *QueryTrace) ([]string, error) {
	if len(sn.buf) == 0 {
		return dst, nil
	}
	if tStar < 0 {
		tStar = 0
	} else if tStar > 1 {
		tStar = 1
	}
	q := float64(querySize)
	u := float64(sn.bufMax)
	// Mirrors the partition skip in core: containment ≤ x/q ≤ u/q.
	if tStar > 0 && u/q < tStar {
		return dst, nil
	}
	rMax := x.opts.RMax
	mask := x.opts.Sketch.Mask()
	// Buffer Bloom pre-test: a band collision at any depth r ≥ 1 needs an
	// exact match on the band's leading value, and the filter holds every
	// buffered entry's leading values — so an all-miss query cannot match
	// any buffered entry and the linear scan is skipped (no false
	// negatives, same argument as segMeta.mayCollide).
	if sn.bufBloom != nil {
		may := false
		for off := 0; off < len(sig); off += rMax {
			if sn.bufBloom.MayContainHash(sig[off] & mask) {
				may = true
				break
			}
		}
		if !may {
			x.bufBloomSkips.Add(1)
			if tr != nil {
				tr.BufferBloomSkipped = true
			}
			return dst, nil
		}
	}
	x.bufScans.Add(1)
	if tr != nil {
		tr.BufferScanned = true
	}
	params := x.tuner.Optimize(u, q, tStar)
	for i := range sn.buf {
		// The buffer is bounded by SealThreshold in steady state but not
		// when the compactor is disabled or behind, so a long scan still
		// honors cancellation — at a stride that costs nothing when it
		// doesn't.
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return dst, err
			}
		}
		e := &sn.buf[i]
		if !sn.alive(e.rec.Key, e.seq) {
			continue
		}
		if bandsCollide(sig, e.rec.Sig, params.B, params.R, rMax, mask) {
			dst = append(dst, e.rec.Key)
		}
	}
	return dst, nil
}

// bandsCollide reports whether any of the first b bands (each rMax wide,
// compared at depth r) of the two signatures agree — the LSH forest's
// collision condition for one entry. Values are compared under the sketch
// backend's truncation mask, so the buffer scan collides exactly when the
// sealed forest would have (the buffer holds full-width signatures, the
// sealed store truncated ones).
func bandsCollide(a, b minhash.Signature, bands, r, rMax int, mask uint64) bool {
	for t := 0; t < bands; t++ {
		off := t * rMax
		match := true
		for k := off; k < off+r; k++ {
			if a[k]&mask != b[k]&mask {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// sketchContainment scores a full-width buffered signature against the query
// the way the sealed store would: slot agreement is counted under the
// backend's truncation mask and converted through its bias-corrected
// estimator. Under Minwise64 the result is float-identical to
// a.Containment(b, q, x), so buffer and segment scores merge consistently
// for every backend.
func sketchContainment(sb core.SketchBackend, a, b minhash.Signature, q, x float64) float64 {
	mask := sb.Mask()
	eq := 0
	for k := range a {
		if a[k]&mask == b[k]&mask {
			eq++
		}
	}
	return sb.ContainmentFromMatch(eq, len(a), q, x)
}

// QueryBatch answers every query of the batch (the daemon's high-throughput
// path), fanning each sealed segment's probes across up to `workers`
// goroutines through the core batch engine, then scanning the buffer. Rows
// are in query order; each row holds the keys of the query's live
// candidates. Like Query it is lock-free against writers and the compactor.
//
// The batch path shares the planner with Query: result-cache hits answer a
// query outright, and each remaining query is dispatched only to the
// segments its plan and Bloom pre-test cannot rule out, so a segment's
// batch shrinks to the queries that can actually collide there. Rows are
// identical to the unplanned fan-out either way.
func (x *Index) QueryBatch(queries []core.BatchQuery, workers int) [][]string {
	rows, _ := x.QueryBatchContext(context.Background(), queries, workers)
	return rows
}

// QueryBatchContext is QueryBatch under a context: the per-segment batch
// dispatch inherits ctx (core.QueryBatchIntoContext stops its workers after
// at most one in-flight query each) and the fan-out checks ctx between
// segments, so a disconnected client or expired deadline stops the batch
// instead of burning CPU to completion. On cancellation it returns
// (nil, ctx.Err()); partial rows are discarded, never cached.
func (x *Index) QueryBatchContext(ctx context.Context, queries []core.BatchQuery, workers int) ([][]string, error) {
	if o := x.getObserver(); o != nil {
		start := time.Now()
		rows, err := x.queryBatchContext(ctx, queries, workers)
		o.ObserveQuery(KindBatch, time.Since(start))
		return rows, err
	}
	return x.queryBatchContext(ctx, queries, workers)
}

func (x *Index) queryBatchContext(ctx context.Context, queries []core.BatchQuery, workers int) ([][]string, error) {
	rows := make([][]string, len(queries))
	if len(queries) == 0 {
		return rows, nil
	}
	sn := x.acquireSnap()
	defer x.releaseSnap(sn)

	// Normalize once (clamped signatures and thresholds), resolve cache
	// hits, and keep the indices still needing the fan-out.
	norm := make([]core.BatchQuery, len(queries))
	tBitsOf := make([]uint64, len(queries))
	hashOf := make([]uint64, len(queries))
	pending := make([]int, 0, len(queries))
	for i := range queries {
		q := queries[i]
		if q.Size <= 0 {
			continue // invalid size → empty row, matching the core batch contract
		}
		if len(q.Sig) > x.opts.NumHash {
			q.Sig = q.Sig[:x.opts.NumHash]
		}
		q.Threshold = clampThreshold(q.Threshold)
		norm[i] = q
		tBitsOf[i] = math.Float64bits(q.Threshold)
		if x.rc != nil {
			hashOf[i] = queryHash(q.Sig, q.Size, tBitsOf[i])
			if e := x.lookupResult(sn, q.Sig, q.Size, tBitsOf[i], hashOf[i]); e != nil {
				x.resHits.Add(1)
				rows[i] = append(rows[i], e.keys...)
				continue
			}
			x.resMisses.Add(1)
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return rows, nil
	}

	// Per-query plans (shared through the plan cache, so a batch of
	// repeated shapes resolves them once).
	var planOf []*segPlan
	if !x.opts.DisablePruning {
		planOf = make([]*segPlan, len(queries))
		for _, qi := range pending {
			planOf[qi] = x.planFor(sn, norm[qi].Size, norm[qi].Threshold)
		}
	}

	var res core.BatchResults
	sub := make([]core.BatchQuery, 0, len(pending))
	subIdx := make([]int, 0, len(pending))
	for si, seg := range sn.segs {
		sub, subIdx = sub[:0], subIdx[:0]
		for _, qi := range pending {
			if planOf != nil {
				if planOf[qi].params[si] == nil {
					x.segRangePruned.Add(1)
					continue
				}
				if !seg.meta.mayCollide(norm[qi].Sig, x.opts.RMax, x.opts.Sketch.Mask()) {
					x.segBloomPruned.Add(1)
					continue
				}
				x.segProbed.Add(1)
			}
			sub = append(sub, norm[qi])
			subIdx = append(subIdx, qi)
		}
		if len(sub) == 0 {
			continue
		}
		if err := seg.idx.QueryBatchIntoContext(ctx, &res, sub, workers); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			continue // unreachable: sealed segments are never dirty
		}
		for j, qi := range subIdx {
			rows[qi] = appendLiveKeys(rows[qi], sn, seg, res.Row(j))
		}
	}
	for _, qi := range pending {
		if len(sn.buf) > 0 {
			var err error
			rows[qi], err = x.appendBufferMatches(ctx, rows[qi], sn, norm[qi].Sig, norm[qi].Size, norm[qi].Threshold, nil)
			if err != nil {
				return nil, err
			}
		}
		if x.rc != nil {
			x.storeResult(sn, norm[qi].Sig, norm[qi].Size, tBitsOf[qi], hashOf[qi], rows[qi])
		}
	}
	return rows, nil
}

// QueryTopK returns (up to) k live domains ranked by estimated containment
// of the query, merged across every sealed segment and the buffer (see
// core.Index.QueryTopK for the estimation semantics). Segments are visited
// in descending order of their largest partition bound: once k collected
// results all score strictly above the containment cap of every remaining
// segment, those segments are skipped — they provably cannot alter the
// top k. Like Query it is lock-free against writers and the compactor.
func (x *Index) QueryTopK(sig minhash.Signature, querySize, k int) []core.TopKResult {
	results, _ := x.QueryTopKContext(context.Background(), sig, querySize, k)
	return results
}

// QueryTopKContext is QueryTopK under a context: ctx is checked before each
// segment visit, so a canceled request stops ranking instead of walking the
// remaining segments. On cancellation it returns (nil, ctx.Err()).
func (x *Index) QueryTopKContext(ctx context.Context, sig minhash.Signature, querySize, k int) ([]core.TopKResult, error) {
	if o := x.getObserver(); o != nil {
		start := time.Now()
		results, err := x.queryTopKContext(ctx, sig, querySize, k)
		o.ObserveQuery(KindTopK, time.Since(start))
		return results, err
	}
	return x.queryTopKContext(ctx, sig, querySize, k)
}

func (x *Index) queryTopKContext(ctx context.Context, sig minhash.Signature, querySize, k int) ([]core.TopKResult, error) {
	if k <= 0 || querySize <= 0 {
		return nil, nil
	}
	if len(sig) > x.opts.NumHash {
		sig = sig[:x.opts.NumHash]
	}
	sn := x.acquireSnap()
	defer x.releaseSnap(sn)
	q := float64(querySize)
	// Tombstoned candidates are filtered after collection, so ask each
	// segment for enough ids to survive the worst-case filtering.
	need := k + len(sn.tombs)
	var results []core.TopKResult
	kth := func() float64 { return results[k-1].EstContainment }
	rank := func() {
		sort.Slice(results, func(i, j int) bool {
			if results[i].EstContainment != results[j].EstContainment {
				return results[i].EstContainment > results[j].EstContainment
			}
			return results[i].Key < results[j].Key
		})
		if len(results) > k {
			results = results[:k]
		}
	}
	s := x.acquireScratch()
	terminated := false
	for _, si := range sn.topkOrder {
		if err := ctx.Err(); err != nil {
			x.releaseScratch(s)
			return nil, err
		}
		seg := sn.segs[si]
		// Strict >: a remaining segment whose cap ties the current k-th
		// score could still win its tie-break, so it is only skippable when
		// even its best possible estimate falls short.
		if !x.opts.DisablePruning && len(results) >= k && kth() > containmentBound(seg.meta.maxBound, q) {
			terminated = true
			break
		}
		s.ids, _ = seg.idx.QueryTopKIDs(s.ids[:0], sig, querySize, need)
		for _, id := range s.ids {
			key := seg.idx.Key(id)
			if !sn.alive(key, seg.seqs[id]) {
				continue
			}
			est := seg.idx.EstContainment(id, sig, querySize)
			results = append(results, core.TopKResult{Key: key, EstContainment: est})
		}
		rank()
	}
	x.releaseScratch(s)
	if len(sn.buf) > 0 {
		if !x.opts.DisablePruning && len(results) >= k && kth() > containmentBound(sn.bufMax, q) {
			terminated = true
		} else {
			for i := range sn.buf {
				e := &sn.buf[i]
				if !sn.alive(e.rec.Key, e.seq) {
					continue
				}
				est := sketchContainment(x.opts.Sketch, sig, e.rec.Sig, q, float64(e.rec.Size))
				results = append(results, core.TopKResult{Key: e.rec.Key, EstContainment: est})
			}
			rank()
		}
	}
	if terminated {
		x.topkEarlyExits.Add(1)
	}
	return results, nil
}

// Stats is a point-in-time summary of the index's shape.
type Stats struct {
	// Domains is the number of live domains (tombstoned entries excluded).
	Domains int `json:"domains"`
	// Segments holds the entry count of every sealed segment (including
	// entries already tombstoned but not yet compacted away).
	Segments []int `json:"segments"`
	// Buffered is the unsealed buffer length (including tombstoned entries).
	Buffered int `json:"buffered"`
	// Tombstones is the number of pending tombstones (deletes and
	// replacements not yet compacted away).
	Tombstones int `json:"tombstones"`
	// Seq is the highest mutation sequence number visible to readers.
	Seq uint64 `json:"seq"`
	// Seals and Merges count completed compactor operations.
	Seals  uint64 `json:"seals"`
	Merges uint64 `json:"merges"`
	// Sketch names the signature backend sealed segments store with
	// (core.SketchBackend): "minwise64" unless configured otherwise.
	Sketch string `json:"sketch"`
	// SignatureBytes is the total stored signature footprint: the sealed
	// segments' truncated stores plus the unsealed buffer's full-width
	// signatures. The compact sketch backends shrink the sealed share.
	SignatureBytes int64 `json:"signature_bytes"`
	// SpillErrors counts segment spills that failed; the affected segments
	// keep serving from the heap.
	SpillErrors uint64 `json:"spill_errors,omitempty"`
	// SegmentDetail describes every sealed segment's planner metadata, in
	// the same order as Segments.
	SegmentDetail []SegmentStats `json:"segment_detail,omitempty"`
	// Planner aggregates the query planner's pruning and cache counters
	// since the index was created.
	Planner PlannerStats `json:"planner"`
}

// SegmentStats describes one sealed segment.
type SegmentStats struct {
	// Entries is the physical entry count (tombstoned entries included).
	Entries int `json:"entries"`
	// MinSize and MaxSize are the smallest and largest domain cardinality.
	MinSize int `json:"min_size"`
	MaxSize int `json:"max_size"`
	// MaxBound is the largest partition upper bound — the size the planner
	// prunes and orders by.
	MaxBound int `json:"max_bound"`
	// BloomBytes is the footprint of the segment's planner Bloom filters.
	BloomBytes int `json:"bloom_bytes"`
	// SignatureBytes is the byte size of the segment's signature store at
	// the sketch backend's width (entries × NumHash × width).
	SignatureBytes int `json:"signature_bytes"`
	// Backing reports where the segment's probe data lives: "heap" or
	// "mmap" (a memory-mapped segment file).
	Backing string `json:"backing"`
	// FileBytes is the segment's on-disk file size; 0 until spilled.
	FileBytes int64 `json:"file_bytes"`
	// ResidentBytes estimates the heap-resident footprint. For mapped
	// segments only the eagerly decoded metadata counts — the signature
	// store and tree columns page in and out on demand.
	ResidentBytes int64 `json:"resident_bytes"`
}

// PlannerStats aggregates the planner's lifetime counters. Segment
// decisions count once per (query, segment) pair.
type PlannerStats struct {
	// SegmentsProbed / SegmentsRangePruned / SegmentsBloomPruned partition
	// the planner's per-segment decisions: probed, skipped because every
	// partition was ruled out by size, or skipped by the collision Bloom
	// pre-test.
	SegmentsProbed      uint64 `json:"segments_probed"`
	SegmentsRangePruned uint64 `json:"segments_range_pruned"`
	SegmentsBloomPruned uint64 `json:"segments_bloom_pruned"`
	// PlanHits / PlanMisses count plan-cache lookups.
	PlanHits   uint64 `json:"plan_hits"`
	PlanMisses uint64 `json:"plan_misses"`
	// ResultHits / ResultMisses count result-cache lookups (zero when the
	// cache is disabled).
	ResultHits   uint64 `json:"result_hits"`
	ResultMisses uint64 `json:"result_misses"`
	// TopKEarlyExits counts QueryTopK calls that stopped before visiting
	// every segment.
	TopKEarlyExits uint64 `json:"topk_early_exits"`
	// BufferScans / BufferBloomPruned partition the unsealed-buffer
	// decisions: linear scans performed vs skipped because every query
	// leading value missed the buffer's Bloom filter.
	BufferScans       uint64 `json:"buffer_scans"`
	BufferBloomPruned uint64 `json:"buffer_bloom_pruned"`
}

// Stats returns a consistent snapshot summary without blocking writers.
func (x *Index) Stats() Stats {
	sn := x.acquireSnap()
	defer x.releaseSnap(sn)
	st := Stats{
		Domains:     x.Len(),
		Segments:    make([]int, len(sn.segs)),
		Buffered:    len(sn.buf),
		Tombstones:  len(sn.tombs),
		Seals:       x.seals.Load(),
		Merges:      x.merges.Load(),
		Sketch:      x.opts.Sketch.String(),
		SpillErrors: x.spillErrors.Load(),
		Planner: PlannerStats{
			SegmentsProbed:      x.segProbed.Load(),
			SegmentsRangePruned: x.segRangePruned.Load(),
			SegmentsBloomPruned: x.segBloomPruned.Load(),
			PlanHits:            x.planHits.Load(),
			PlanMisses:          x.planMisses.Load(),
			ResultHits:          x.resHits.Load(),
			ResultMisses:        x.resMisses.Load(),
			TopKEarlyExits:      x.topkEarlyExits.Load(),
			BufferScans:         x.bufScans.Load(),
			BufferBloomPruned:   x.bufBloomSkips.Load(),
		},
	}
	if len(sn.segs) > 0 {
		st.SegmentDetail = make([]SegmentStats, len(sn.segs))
	}
	for i, seg := range sn.segs {
		st.Segments[i] = seg.idx.Len()
		backing := "heap"
		if seg.back != nil && seg.back.Mapped() {
			backing = "mmap"
		}
		var fileBytes int64
		if fi := seg.finfo.Load(); fi != nil {
			fileBytes = fi.size
		}
		sigBytes := seg.idx.SignatureBytes()
		st.SignatureBytes += int64(sigBytes)
		st.SegmentDetail[i] = SegmentStats{
			Entries:        seg.idx.Len(),
			MinSize:        seg.meta.minSize,
			MaxSize:        seg.meta.maxSize,
			MaxBound:       seg.meta.maxBound,
			BloomBytes:     seg.meta.bloomBytes(),
			SignatureBytes: sigBytes,
			Backing:        backing,
			FileBytes:      fileBytes,
			ResidentBytes:  seg.resident,
		}
	}
	// Buffered entries always hold full-width signatures; they truncate at
	// seal time.
	st.SignatureBytes += int64(len(sn.buf)) * int64(x.opts.NumHash) * 8
	for _, seg := range sn.segs {
		if n := len(seg.seqs); n > 0 && seg.seqs[n-1] > st.Seq {
			st.Seq = seg.seqs[n-1]
		}
	}
	if n := len(sn.buf); n > 0 && sn.buf[n-1].seq > st.Seq {
		st.Seq = sn.buf[n-1].seq
	}
	for _, s := range sn.tombs {
		if s > st.Seq {
			st.Seq = s
		}
	}
	return st
}
