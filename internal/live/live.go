// Package live implements a mutable, always-queryable LSH Ensemble layered
// on the immutable core.Index — the serving-system counterpart of the
// paper's build-once index (Section 6.2 sketches the dynamic-data story;
// this package gives it a production shape).
//
// # Model
//
// A live Index is an atomically-swapped *snapshot* of three immutable
// parts:
//
//   - sealed segments: each a frozen core.Index over a slice of the corpus,
//     plus the mutation sequence number of every entry;
//   - an unsealed buffer: recent Adds, not yet worth an LSH build, scanned
//     linearly as one extra partition (upper bound = largest buffered size)
//     with the same (b, r) banding test the forest would apply;
//   - a tombstone map: key → sequence number of the Delete (or replacing
//     Add) that cleared it. An entry is live iff no tombstone with a higher
//     sequence number names its key.
//
// Readers load the snapshot pointer once and touch only immutable data, so
// a query never takes a lock a writer holds: Add, Delete and the compactor
// publish by building a NEW snapshot and swapping the pointer. Readers in
// flight keep the old snapshot — every query sees a consistent
// point-in-time view of the corpus.
//
// Writers (Add/Delete) serialize on a mutex, append to a buffer backing
// array whose published prefix is never rewritten, and copy the tombstone
// map on write (it holds only the deletes not yet compacted away, so the
// copies stay small).
//
// A background compactor seals the buffer into a new segment once it
// crosses Options.SealThreshold, and merges the two smallest segments
// whenever more than Options.MaxSegments have accumulated — dead entries
// are dropped during both. Each result is published with a single pointer
// swap. Compact runs the whole pipeline to one segment and is
// equivalence-preserving: the result answers queries exactly like a fresh
// core.Build over the surviving records (asserted by the package tests).
package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/tune"
)

// Options configures a live index. The embedded core.Options (zero values =
// the paper's defaults) shape every sealed segment's build.
type Options struct {
	core.Options

	// SealThreshold is the buffer length that triggers a background seal.
	// Default 4096. Until sealed, buffered entries are answered by a linear
	// banding scan, so the threshold bounds the scan cost per query.
	SealThreshold int

	// MaxSegments is the sealed-segment count above which the compactor
	// merges the two smallest segments. Default 8.
	MaxSegments int

	// ManualCompaction disables the background compactor; sealing and
	// merging then happen only through explicit Flush/Compact calls.
	// Tests and single-shot tools use this to control timing.
	ManualCompaction bool
}

func (o Options) withDefaults() Options {
	o.Options = o.Options.WithDefaults()
	if o.SealThreshold == 0 {
		o.SealThreshold = 4096
	}
	if o.MaxSegments == 0 {
		o.MaxSegments = 8
	}
	return o
}

// newTuner builds the (b, r) optimizer every buffer scan shares; its grid
// matches the one the sealed segments' forests use.
func newTuner(opts Options) *tune.Optimizer {
	return tune.NewOptimizer(opts.NumHash/opts.RMax, opts.RMax)
}

// entry is one buffered Add: the record and its mutation sequence number.
type entry struct {
	rec core.Record
	seq uint64
}

// segment is one sealed, immutable slice of the corpus: a frozen core.Index
// plus the per-entry sequence numbers (aligned with the core ids, which
// core.Build assigns in record order). Entries are in ascending seq order.
type segment struct {
	idx  *core.Index
	seqs []uint64
}

func (s *segment) minSeq() uint64 { return s.seqs[0] }

// snapshot is one published, immutable state of the index. Everything
// reachable from a snapshot is frozen: writers and the compactor publish
// changes as new snapshots.
type snapshot struct {
	segs  []*segment        // ordered by minSeq
	buf   []entry           // unsealed adds, ascending seq; prefix of the writer's backing array
	tombs map[string]uint64 // key → seq of the clearing Delete/replacing Add

	// bufMax is the largest size among buffered entries — the buffer's
	// partition upper bound for threshold conversion. It may exceed the
	// largest *live* buffered size when the max entry is tombstoned; a too
	// large bound is merely conservative (Eq. 7 never loses candidates).
	bufMax int
}

// alive reports whether an entry of the given key and sequence number is
// still current under this snapshot's tombstones.
func (sn *snapshot) alive(key string, seq uint64) bool {
	return sn.tombs[key] <= seq
}

// Index is a mutable, always-queryable LSH Ensemble. Queries are lock-free
// against writers and the compactor; Add/Delete are safe for concurrent use
// with each other and with queries. See the package comment for the model.
type Index struct {
	opts  Options
	tuner *tune.Optimizer // shared with buffer scans; safe for concurrent use

	snap atomic.Pointer[snapshot]

	// mu serializes writers: Add, Delete, and every snapshot publish.
	// Readers never take it.
	mu      sync.Mutex
	seq     uint64            // last assigned mutation sequence number
	keySeq  map[string]uint64 // live key → seq of its current entry
	bufBack []entry           // buffer backing; published snapshots view prefixes of it

	// compactMu serializes compaction work (the background goroutine, Flush,
	// Compact): at most one segment build is in flight at a time.
	compactMu sync.Mutex

	domains atomic.Int64  // live domain count (= len(keySeq), readable lock-free)
	seals   atomic.Uint64 // completed seal operations
	merges  atomic.Uint64 // completed merge operations

	scratch sync.Pool // *queryScratch

	nudge     chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// queryScratch is the pooled per-query working memory of the live fan-out:
// a reusable id buffer for the per-segment candidate lists.
type queryScratch struct {
	ids []uint32
}

// New constructs an empty live index and, unless opts.ManualCompaction is
// set, starts its background compactor. Close releases the compactor.
func New(opts Options) (*Index, error) {
	return Build(nil, opts)
}

// Build constructs a live index whose initial corpus is the given records,
// sealed into a single segment (records sharing a key collapse to the last
// occurrence, matching Add-upsert semantics). Unless opts.ManualCompaction
// is set the background compactor is started; Close releases it.
func Build(records []core.Record, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.Options.Validate(); err != nil {
		return nil, err
	}
	x := &Index{
		opts:   opts,
		tuner:  newTuner(opts),
		keySeq: make(map[string]uint64, len(records)),
		nudge:  make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	sn := &snapshot{}
	if len(records) > 0 {
		for _, r := range records {
			if err := x.validateRecord(r); err != nil {
				return nil, err
			}
		}
		// Upsert semantics: the last record of each key wins, earlier ones
		// are dropped before the build (no tombstone needed — they never
		// become visible).
		last := make(map[string]int, len(records))
		for i, r := range records {
			last[r.Key] = i
		}
		recs := make([]core.Record, 0, len(last))
		seqs := make([]uint64, 0, len(last))
		for i, r := range records {
			if last[r.Key] != i {
				continue
			}
			seq := uint64(i + 1)
			recs = append(recs, r)
			seqs = append(seqs, seq)
			x.keySeq[r.Key] = seq
		}
		idx, err := core.Build(recs, opts.Options)
		if err != nil {
			return nil, err
		}
		sn.segs = []*segment{{idx: idx, seqs: seqs}}
		x.seq = uint64(len(records))
		x.domains.Store(int64(len(recs)))
	}
	x.snap.Store(sn)
	if !opts.ManualCompaction {
		go x.compactor()
	} else {
		close(x.done)
	}
	return x, nil
}

func (x *Index) validateRecord(r core.Record) error {
	if r.Size <= 0 {
		return fmt.Errorf("live: record %q has non-positive size %d", r.Key, r.Size)
	}
	if len(r.Sig) < x.opts.NumHash {
		return fmt.Errorf("live: record %q signature length %d < NumHash %d",
			r.Key, len(r.Sig), x.opts.NumHash)
	}
	return nil
}

// Options returns the effective options.
func (x *Index) Options() Options { return x.opts }

// Len returns the number of live domains (tombstoned entries excluded).
func (x *Index) Len() int { return int(x.domains.Load()) }

// Add inserts or replaces a domain. A record whose key is already indexed
// supersedes the old entry (upsert): readers see either the old or the new
// version, never both. The signature is copied, so the caller keeps
// ownership of r.Sig. Add never blocks queries; concurrent Adds serialize
// on an internal mutex. It reports whether an existing entry was replaced.
func (x *Index) Add(r core.Record) (replaced bool, err error) {
	if err := x.validateRecord(r); err != nil {
		return false, err
	}
	// Decouple from the caller's backing array (and clamp to NumHash, the
	// prefix every probe uses): buffered signatures are read lock-free by
	// queries, so later caller mutation must not be observable.
	r.Sig = append(minhash.Signature(nil), r.Sig[:x.opts.NumHash]...)

	x.mu.Lock()
	x.seq++
	seq := x.seq
	cur := x.snap.Load()
	tombs := cur.tombs
	_, replaced = x.keySeq[r.Key]
	if replaced {
		// The replacing Add tombstones every older entry of the key (their
		// seqs are < seq) while leaving the new entry (seq == seq) alive.
		tombs = cloneTombs(tombs, r.Key, seq)
	} else {
		x.domains.Add(1)
	}
	x.keySeq[r.Key] = seq
	// The published prefix of bufBack is immutable: this append writes only
	// at the index just past every published snapshot's view (or relocates
	// to a fresh array), and the longer prefix becomes visible only through
	// the snapshot swap below.
	x.bufBack = append(x.bufBack, entry{rec: r, seq: seq})
	bufMax := cur.bufMax
	if r.Size > bufMax {
		bufMax = r.Size
	}
	next := &snapshot{segs: cur.segs, buf: x.bufBack, tombs: tombs, bufMax: bufMax}
	x.snap.Store(next)
	full := len(next.buf) >= x.opts.SealThreshold
	x.mu.Unlock()

	if full {
		x.kick()
	}
	return replaced, nil
}

// Delete removes a domain by key. It reports whether the key was indexed.
// The entry is tombstoned immediately (readers loading later snapshots no
// longer see it) and physically dropped by the next compaction that touches
// its segment.
func (x *Index) Delete(key string) bool {
	x.mu.Lock()
	if _, ok := x.keySeq[key]; !ok {
		x.mu.Unlock()
		return false
	}
	x.seq++
	seq := x.seq
	delete(x.keySeq, key)
	x.domains.Add(-1)
	cur := x.snap.Load()
	next := &snapshot{segs: cur.segs, buf: cur.buf, tombs: cloneTombs(cur.tombs, key, seq), bufMax: cur.bufMax}
	x.snap.Store(next)
	x.mu.Unlock()
	return true
}

// cloneTombs returns a copy of tombs with key → seq added. The published
// map is never mutated in place — readers hold it lock-free.
func cloneTombs(tombs map[string]uint64, key string, seq uint64) map[string]uint64 {
	next := make(map[string]uint64, len(tombs)+1)
	for k, v := range tombs {
		next[k] = v
	}
	next[key] = seq
	return next
}

func (x *Index) acquireScratch() *queryScratch {
	s, _ := x.scratch.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	return s
}

func (x *Index) releaseScratch(s *queryScratch) { x.scratch.Put(s) }

// Query returns the keys of all candidate domains for the query signature
// at containment threshold tStar (see core.Index.QueryIDs for parameter
// semantics). It is lock-free against Add, Delete and the compactor, and
// answers from a consistent point-in-time snapshot. Each live key appears
// at most once.
func (x *Index) Query(sig minhash.Signature, querySize int, tStar float64) []string {
	return x.QueryAppend(nil, sig, querySize, tStar)
}

// QueryAppend is Query appending into dst (which may be nil). A serving
// loop reusing dst runs allocation-free in steady state, matching the
// immutable index's QueryIDsAppend path.
func (x *Index) QueryAppend(dst []string, sig minhash.Signature, querySize int, tStar float64) []string {
	if querySize <= 0 {
		return dst
	}
	sn := x.snap.Load()
	s := x.acquireScratch()
	for _, seg := range sn.segs {
		dst = x.appendSegmentMatches(dst, s, sn, seg, sig, querySize, tStar)
	}
	x.releaseScratch(s)
	return x.appendBufferMatches(dst, sn, sig, querySize, tStar)
}

// appendSegmentMatches probes one sealed segment and appends the keys of
// its live candidates.
func (x *Index) appendSegmentMatches(dst []string, s *queryScratch, sn *snapshot, seg *segment,
	sig minhash.Signature, querySize int, tStar float64) []string {
	// A sealed segment can never be dirty, so the error is impossible; the
	// empty result on that unreachable path is still safe.
	s.ids, _ = seg.idx.QueryIDsAppend(s.ids[:0], sig, querySize, tStar)
	if len(sn.tombs) == 0 {
		for _, id := range s.ids {
			dst = append(dst, seg.idx.Key(id))
		}
		return dst
	}
	for _, id := range s.ids {
		if key := seg.idx.Key(id); sn.alive(key, seg.seqs[id]) {
			dst = append(dst, key)
		}
	}
	return dst
}

// appendBufferMatches linearly scans the unsealed buffer, treating it as
// one more partition whose upper size bound is the largest buffered size:
// the containment threshold converts to a Jaccard threshold exactly as a
// sealed partition would convert it (Eq. 7, conservative), the tuner picks
// one (b, r) for the whole scan, and an entry matches if any of the b bands
// of r hash values collide — the LSH forest's collision condition, without
// the forest.
func (x *Index) appendBufferMatches(dst []string, sn *snapshot, sig minhash.Signature, querySize int, tStar float64) []string {
	if len(sn.buf) == 0 {
		return dst
	}
	if tStar < 0 {
		tStar = 0
	} else if tStar > 1 {
		tStar = 1
	}
	q := float64(querySize)
	u := float64(sn.bufMax)
	// Mirrors the partition skip in core: containment ≤ x/q ≤ u/q.
	if tStar > 0 && u/q < tStar {
		return dst
	}
	params := x.tuner.Optimize(u, q, tStar)
	rMax := x.opts.RMax
	for i := range sn.buf {
		e := &sn.buf[i]
		if !sn.alive(e.rec.Key, e.seq) {
			continue
		}
		if bandsCollide(sig, e.rec.Sig, params.B, params.R, rMax) {
			dst = append(dst, e.rec.Key)
		}
	}
	return dst
}

// bandsCollide reports whether any of the first b bands (each rMax wide,
// compared at depth r) of the two signatures agree — the LSH forest's
// collision condition for one entry.
func bandsCollide(a, b minhash.Signature, bands, r, rMax int) bool {
	for t := 0; t < bands; t++ {
		off := t * rMax
		match := true
		for k := off; k < off+r; k++ {
			if a[k] != b[k] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// QueryBatch answers every query of the batch (the daemon's high-throughput
// path), fanning each sealed segment's probes across up to `workers`
// goroutines through the core batch engine, then scanning the buffer. Rows
// are in query order; each row holds the keys of the query's live
// candidates. Like Query it is lock-free against writers and the compactor.
func (x *Index) QueryBatch(queries []core.BatchQuery, workers int) [][]string {
	rows := make([][]string, len(queries))
	if len(queries) == 0 {
		return rows
	}
	sn := x.snap.Load()
	var res core.BatchResults
	for _, seg := range sn.segs {
		if err := seg.idx.QueryBatchInto(&res, queries, workers); err != nil {
			continue // unreachable: sealed segments are never dirty
		}
		for i := range queries {
			for _, id := range res.Row(i) {
				key := seg.idx.Key(id)
				if len(sn.tombs) == 0 || sn.alive(key, seg.seqs[id]) {
					rows[i] = append(rows[i], key)
				}
			}
		}
	}
	if len(sn.buf) > 0 {
		for i := range queries {
			q := &queries[i]
			if q.Size <= 0 {
				continue // invalid size → empty row, matching the core batch contract
			}
			rows[i] = x.appendBufferMatches(rows[i], sn, q.Sig, q.Size, q.Threshold)
		}
	}
	return rows
}

// Stats is a point-in-time summary of the index's shape.
type Stats struct {
	// Domains is the number of live domains (tombstoned entries excluded).
	Domains int `json:"domains"`
	// Segments holds the entry count of every sealed segment (including
	// entries already tombstoned but not yet compacted away).
	Segments []int `json:"segments"`
	// Buffered is the unsealed buffer length (including tombstoned entries).
	Buffered int `json:"buffered"`
	// Tombstones is the number of pending tombstones (deletes and
	// replacements not yet compacted away).
	Tombstones int `json:"tombstones"`
	// Seq is the highest mutation sequence number visible to readers.
	Seq uint64 `json:"seq"`
	// Seals and Merges count completed compactor operations.
	Seals  uint64 `json:"seals"`
	Merges uint64 `json:"merges"`
}

// Stats returns a consistent snapshot summary without blocking writers.
func (x *Index) Stats() Stats {
	sn := x.snap.Load()
	st := Stats{
		Domains:    x.Len(),
		Segments:   make([]int, len(sn.segs)),
		Buffered:   len(sn.buf),
		Tombstones: len(sn.tombs),
		Seals:      x.seals.Load(),
		Merges:     x.merges.Load(),
	}
	for i, seg := range sn.segs {
		st.Segments[i] = seg.idx.Len()
	}
	for _, seg := range sn.segs {
		if n := len(seg.seqs); n > 0 && seg.seqs[n-1] > st.Seq {
			st.Seq = seg.seqs[n-1]
		}
	}
	if n := len(sn.buf); n > 0 && sn.buf[n-1].seq > st.Seq {
		st.Seq = sn.buf[n-1].seq
	}
	for _, s := range sn.tombs {
		if s > st.Seq {
			st.Seq = s
		}
	}
	return st
}
