package live

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
)

// trio builds three indexes over the same initial corpus: pure in-memory,
// spill-to-disk with heap reads, and spill-to-disk with mmap reads. Every
// behavioral test drives them through identical operations and demands
// identical answers — the out-of-core representation must be invisible.
func trio(t *testing.T, recs []core.Record) (heap, spill, mapped *Index) {
	t.Helper()
	mk := func(dataDir string, mmap bool) *Index {
		opts := liveOpts()
		opts.DataDir = dataDir
		opts.Mmap = mmap
		x, err := Build(recs, opts)
		if err != nil {
			t.Fatalf("Build(dataDir=%q, mmap=%v): %v", dataDir, mmap, err)
		}
		return x
	}
	heap = mk("", false)
	spill = mk(t.TempDir(), false)
	mapped = mk(t.TempDir(), true)
	return heap, spill, mapped
}

func requireSameAnswers(t *testing.T, label string, heap, spill, mapped *Index, recs []core.Record) {
	t.Helper()
	for i, r := range recs {
		for _, tStar := range []float64{0.5, 0.9, 1.0} {
			want := heap.Query(r.Sig, r.Size, tStar)
			for name, x := range map[string]*Index{"spill": spill, "mmap": mapped} {
				got := x.Query(r.Sig, r.Size, tStar)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s: query %d t=%v: %s answered %v, heap %v", label, i, tStar, name, got, want)
				}
			}
		}
		wantK := heap.QueryTopK(r.Sig, r.Size, 5)
		for name, x := range map[string]*Index{"spill": spill, "mmap": mapped} {
			if got := x.QueryTopK(r.Sig, r.Size, 5); fmt.Sprint(got) != fmt.Sprint(wantK) {
				t.Fatalf("%s: topk %d: %s answered %v, heap %v", label, i, name, got, wantK)
			}
		}
	}
	batch := make([]core.BatchQuery, 0, len(recs))
	for _, r := range recs {
		batch = append(batch, core.BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: 0.8})
	}
	want := heap.QueryBatch(batch, 2)
	for name, x := range map[string]*Index{"spill": spill, "mmap": mapped} {
		if got := x.QueryBatch(batch, 2); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: batch: %s diverged from heap", label, name)
		}
	}
}

// TestOutOfCoreChurnEquivalence is the tentpole correctness claim: heap,
// spilled, and mapped indexes driven through the same adds, deletes,
// seals, and merges answer every query byte-for-byte identically.
func TestOutOfCoreChurnEquivalence(t *testing.T) {
	recs := fixture(t, 260, 11)
	heap, spill, mapped := trio(t, recs[:120])
	all := []*Index{heap, spill, mapped}
	defer func() {
		for _, x := range all {
			x.Close()
		}
	}()

	probe := append(append([]core.Record(nil), recs[:30]...), recs[120:150]...)
	requireSameAnswers(t, "initial", heap, spill, mapped, probe[:20])

	// Churn: interleaved adds, deletes, upserts, seals, and a merge.
	for i, r := range recs[120:] {
		for _, x := range all {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 3 {
			victim := recs[(i*13)%150].Key
			for _, x := range all {
				x.Delete(victim)
			}
		}
		if i%35 == 34 {
			for _, x := range all {
				x.Flush()
			}
		}
	}
	for _, x := range all {
		x.Flush() // seal the tail so mmap segments serve most of the corpus
	}
	requireSameAnswers(t, "churned", heap, spill, mapped, probe)

	for _, x := range all {
		x.Compact()
	}
	requireSameAnswers(t, "compacted", heap, spill, mapped, probe)

	// The spilled indexes must actually be out-of-core: every sealed
	// segment has a file, and under mmap on Linux the probe data is served
	// from the mapping.
	for name, x := range map[string]*Index{"spill": spill, "mmap": mapped} {
		st := x.Stats()
		if len(st.SegmentDetail) == 0 {
			t.Fatalf("%s: no sealed segments after churn", name)
		}
		for i, sd := range st.SegmentDetail {
			if sd.FileBytes == 0 {
				t.Fatalf("%s: segment %d has no file (spill_errors=%d)", name, i, st.SpillErrors)
			}
			wantBacking := "heap"
			if name == "mmap" && runtime.GOOS == "linux" {
				wantBacking = "mmap"
			}
			if sd.Backing != wantBacking {
				t.Fatalf("%s: segment %d backing %q, want %q", name, i, sd.Backing, wantBacking)
			}
			if name == "mmap" && runtime.GOOS == "linux" && sd.ResidentBytes >= sd.FileBytes {
				t.Fatalf("mmap segment %d resident %d >= file %d — metadata-only residency lost",
					i, sd.ResidentBytes, sd.FileBytes)
			}
		}
		if st.SpillErrors != 0 {
			t.Fatalf("%s: %d spill errors", name, st.SpillErrors)
		}
	}
}

// TestManifestSaveLoadRoundTrip saves the spilled indexes as v3 manifests
// and reloads them (same data dir), checking answers and that the manifest
// stays small — it references segment files instead of embedding them.
func TestManifestSaveLoadRoundTrip(t *testing.T) {
	recs := fixture(t, 150, 5)
	heap, spill, mapped := trio(t, recs[:100])
	defer heap.Close()
	for _, r := range recs[100:] {
		for _, x := range []*Index{heap, spill, mapped} {
			if _, err := x.Add(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, x := range []*Index{heap, spill, mapped} {
		x.Flush()
	}

	inline := heap.AppendBinary(nil)
	for name, x := range map[string]*Index{"spill": spill, "mmap": mapped} {
		manifest := x.AppendBinary(nil)
		if len(manifest) >= len(inline)/4 {
			t.Fatalf("%s: manifest is %d bytes vs %d inline — segment files not referenced",
				name, len(manifest), len(inline))
		}
		opts := x.opts
		x.Close()
		loaded, err := Load(bytes.NewReader(manifest), opts)
		if err != nil {
			t.Fatalf("%s: Load: %v", name, err)
		}
		defer loaded.Close()
		if loaded.Len() != heap.Len() {
			t.Fatalf("%s: loaded Len %d, want %d", name, loaded.Len(), heap.Len())
		}
		for _, r := range recs[:40] {
			want := heap.Query(r.Sig, r.Size, 0.9)
			if got := loaded.Query(r.Sig, r.Size, 0.9); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s: reloaded index answered %v, want %v", name, got, want)
			}
		}
		// Re-saving the reloaded index must be byte-deterministic.
		a := loaded.AppendBinary(nil)
		b := loaded.AppendBinary(nil)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two saves of the same state differ", name)
		}
	}
}

// TestManifestRejectsCorruption covers every on-disk trust boundary: a
// tampered or truncated manifest, and a tampered or truncated segment file.
func TestManifestRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	opts := liveOpts()
	opts.DataDir = dir
	recs := fixture(t, 80, 9)
	x, err := Build(recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	x.Flush()
	manifest := x.AppendBinary(nil)
	x.Close()

	load := func(buf []byte) error {
		_, err := Load(bytes.NewReader(buf), opts)
		return err
	}
	if err := load(manifest); err != nil {
		t.Fatalf("pristine manifest rejected: %v", err)
	}

	// Any flipped byte anywhere in the manifest must fail the checksum.
	for _, off := range []int{9, len(manifest) / 2, len(manifest) - 3} {
		bad := append([]byte(nil), manifest...)
		bad[off] ^= 0x40
		if err := load(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("manifest with byte %d flipped loaded (err=%v)", off, err)
		}
	}
	// So must any truncation.
	for _, n := range []int{3, 17, 23, len(manifest) / 2, len(manifest) - 2} {
		if err := load(manifest[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("manifest truncated to %d loaded (err=%v)", n, err)
		}
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files in %s (err=%v)", dir, err)
	}
	seg := segs[0]
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(seg, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Header corruption, metadata corruption (META starts on the first page
	// boundary), lazy-section corruption (caught by lazyCRC on heap opens),
	// and truncation.
	for _, off := range []int{8, 4096 + 8, len(pristine) - 5} {
		bad := append([]byte(nil), pristine...)
		bad[off] ^= 0x01
		if err := os.WriteFile(seg, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := load(manifest); err == nil {
			t.Fatalf("segment file with byte %d flipped loaded", off)
		}
		restore()
	}
	if err := os.Truncate(seg, int64(len(pristine)-512)); err != nil {
		t.Fatal(err)
	}
	if err := load(manifest); err == nil {
		t.Fatal("truncated segment file loaded")
	}
	restore()
	if err := load(manifest); err != nil {
		t.Fatalf("restored manifest rejected: %v", err)
	}
}

// TestBootSweepsUnreferencedFiles checks that Load garbage-collects stray
// segment files and abandoned temp files, and leaves referenced ones alone.
func TestBootSweepsUnreferencedFiles(t *testing.T) {
	dir := t.TempDir()
	opts := liveOpts()
	opts.DataDir = dir
	x, err := Build(fixture(t, 50, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	manifest := x.AppendBinary(nil)
	x.Close()

	stray := filepath.Join(dir, "seg-00000000ffffffff.seg")
	tmp := filepath.Join(dir, ".segfile-123.tmp")
	other := filepath.Join(dir, "unrelated.txt")
	for _, p := range []string{stray, tmp, other} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := Load(bytes.NewReader(manifest), opts)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer loaded.Close()
	for _, p := range []string{stray, tmp} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived the boot sweep", filepath.Base(p))
		}
	}
	// Non-segment files are none of our business.
	if _, err := os.Stat(other); err != nil {
		t.Fatalf("boot sweep deleted unrelated file: %v", err)
	}
	if len(loaded.Stats().SegmentDetail) == 0 {
		t.Fatal("referenced segment lost")
	}
}

// TestCollectGarbageDefersManifestedFiles checks the retirement protocol:
// a segment file referenced by an encoded manifest is NOT deleted when
// compaction retires the segment — it waits for CollectGarbage (called
// after the next manifest is durable), while never-manifested files are
// deleted immediately.
func TestCollectGarbageDefersManifestedFiles(t *testing.T) {
	dir := t.TempDir()
	opts := liveOpts()
	opts.DataDir = dir
	x, err := Build(fixture(t, 60, 7), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	_ = x.AppendBinary(nil) // marks current segment files as manifest-referenced

	before, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	for _, r := range fixture(t, 30, 8) {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Compact() // retires the manifested segment file(s)

	after, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	stillThere := map[string]bool{}
	for _, p := range after {
		stillThere[p] = true
	}
	for _, p := range before {
		if !stillThere[p] {
			t.Fatalf("manifested file %s deleted before CollectGarbage", filepath.Base(p))
		}
	}
	if n := x.CollectGarbage(); n != len(before) {
		t.Fatalf("CollectGarbage removed %d files, want %d", n, len(before))
	}
	final, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	for _, p := range final {
		for _, old := range before {
			if p == old {
				t.Fatalf("retired file %s survived CollectGarbage", filepath.Base(p))
			}
		}
	}
}

// TestBufferBloomCounters checks the unsealed-buffer Bloom filter: queries
// whose leading values are absent from the buffer skip the linear scan.
func TestBufferBloomCounters(t *testing.T) {
	opts := liveOpts()
	x, err := Build(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	recs := fixture(t, 20, 2)
	for _, r := range recs {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	// A buffered record's own signature shares every leading value — the
	// filter must answer "maybe" and the scan must find it.
	if got := x.Query(recs[0].Sig, recs[0].Size, 1.0); !contains(got, recs[0].Key) {
		t.Fatalf("self-retrieval from buffer failed: %v", got)
	}
	st := x.Stats()
	if st.Planner.BufferScans == 0 {
		t.Fatalf("matching query did not scan the buffer: %+v", st.Planner)
	}

	// A random signature collides with no buffered leading value (2^-50ish
	// per probe): the scan must be skipped and counted as pruned.
	rng := rand.New(rand.NewSource(99))
	alien := make(minhash.Signature, opts.NumHash)
	pruned := st.Planner.BufferBloomPruned
	for i := 0; i < 5; i++ {
		for j := range alien {
			alien[j] = rng.Uint64()
		}
		x.Query(alien, 100, 0.5)
	}
	st = x.Stats()
	if st.Planner.BufferBloomPruned <= pruned {
		t.Fatalf("alien queries not Bloom-pruned: %+v", st.Planner)
	}

	// Disabled pruning keeps answers identical and never prunes.
	opts2 := liveOpts()
	opts2.DisablePruning = true
	y, err := Build(nil, opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	for _, r := range recs {
		y.Add(r)
	}
	for _, r := range recs {
		a := x.Query(r.Sig, r.Size, 0.9)
		b := y.Query(r.Sig, r.Size, 0.9)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("pruned/unpruned buffers disagree: %v vs %v", a, b)
		}
	}
	if y.Stats().Planner.BufferBloomPruned != 0 {
		t.Fatal("DisablePruning still pruned the buffer")
	}
}

// TestOutOfCoreRetirementHammer races queries against seals, merges, saves
// and garbage collection over mmap-backed segments. Run with -race this is
// the proof that a mapping is only ever unmapped after the last reader of
// its snapshot is gone.
func TestOutOfCoreRetirementHammer(t *testing.T) {
	opts := liveOpts()
	opts.DataDir = t.TempDir()
	opts.Mmap = true
	opts.SealThreshold = 16
	opts.MaxSegments = 2
	opts.ManualCompaction = false
	recs := fixture(t, 300, 21)
	x, err := Build(recs[:50], opts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := recs[i%len(recs)]
				switch i % 3 {
				case 0:
					x.Query(r.Sig, r.Size, 0.8)
				case 1:
					x.QueryTopK(r.Sig, r.Size, 3)
				case 2:
					x.QueryBatch([]core.BatchQuery{{Sig: r.Sig, Size: r.Size, Threshold: 0.6}}, 0)
				}
				i += 3
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := recs[50+i%250]
			x.Add(r)
			if i%11 == 5 {
				x.Delete(recs[i%300].Key)
			}
			if i%40 == 17 {
				// Save marks files manifest-referenced; CollectGarbage then
				// deletes the retired ones — both racing live queries.
				x.Save(io.Discard)
				x.CollectGarbage()
			}
		}
	}()

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	x.Close()
	x.Compact()
	x.CollectGarbage()

	// The index must still answer exactly after the storm.
	st := x.Stats()
	if st.SpillErrors != 0 {
		t.Fatalf("%d spill errors during hammer", st.SpillErrors)
	}
	for _, r := range recs[:20] {
		x.Query(r.Sig, r.Size, 0.8)
	}
}

// TestMmapColdBootIsLazy checks the lazy-boot claim on Linux: loading a
// manifest with Mmap reports a resident footprint far below the file
// bytes, i.e. the signature stores were not decoded at boot.
func TestMmapColdBootIsLazy(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mmap laziness is Linux-only; elsewhere OpenMapped reads to heap")
	}
	opts := liveOpts()
	opts.DataDir = t.TempDir()
	opts.Mmap = true
	x, err := Build(fixture(t, 400, 13), opts)
	if err != nil {
		t.Fatal(err)
	}
	manifest := x.AppendBinary(nil)
	x.Close()

	loaded, err := Load(bytes.NewReader(manifest), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	var file, resident int64
	for _, sd := range loaded.Stats().SegmentDetail {
		if sd.Backing != "mmap" {
			t.Fatalf("segment backing %q, want mmap", sd.Backing)
		}
		file += sd.FileBytes
		resident += sd.ResidentBytes
	}
	if file == 0 || resident*2 >= file {
		t.Fatalf("boot resident %d of %d file bytes — not lazy", resident, file)
	}
}
