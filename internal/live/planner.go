package live

import (
	"math"
	"sort"
	"sync/atomic"

	"lshensemble/internal/bloom"
	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/tune"
)

// This file is the segment-aware query planner. A live index accumulates
// sealed segments, and the naive fan-out probes every one of them for every
// query even though most segments cannot contain a candidate. The planner
// attaches cheap immutable metadata to each segment at seal/merge time and
// uses it to rule segments out before their forests are touched:
//
//   - size-range pruning: the banding decision of every partition of every
//     segment depends only on (querySize, tStar) and the partition's frozen
//     size bounds, so it can be made once per (querySize, tStar) — and a
//     segment all of whose partitions are skipped is never probed at all;
//   - Bloom pruning: a forest probe of tree t at any depth r ≥ 1 matches an
//     entry only if the query's leading hash value sig[t·rMax] occurs
//     exactly in that tree, so a Bloom filter over every tree's leading
//     column answers "can this segment contain any collision for this
//     signature?" with no false negatives;
//   - top-k early termination: the containment estimate is capped by the
//     candidate's size, so once k results beat the cap of every remaining
//     (size-descending) segment, those segments cannot contribute.
//
// Every prune fires only when the segment provably contributes nothing, so
// planned queries return byte-identical results to the full fan-out (the
// package equivalence tests assert this under churn).
//
// Two caches sit on top, both coherent with the snapshot's generation
// counters and lock-free on the read path:
//
//   - the plan cache memoizes the per-segment banding decisions per exact
//     (querySize, tStar) pair, keyed to segGen (bumped only when the
//     segment set changes — buffered writes don't invalidate plans);
//   - the result cache memoizes exact query results, keyed to gen (bumped
//     on every publish — any mutation invalidates all cached results).

// Bloom operating points (see bloom.New). Keys use ~1% false positives:
// a false positive merely costs one unnecessary tombstone sweep. Leading
// values use ~0.1%: the collision pre-test is probed once per tree per
// query, and a false positive costs a full segment probe.
const (
	keysBloomBits = 10
	keysBloomK    = 7

	leadsBloomBits = 14
	leadsBloomK    = 10
)

// segMeta is the planner's immutable per-segment metadata, built once when
// the segment is sealed, merged or loaded, and shared by every snapshot
// that references the segment.
type segMeta struct {
	minSize int // smallest entry cardinality (reporting)
	maxSize int // largest entry cardinality (reporting)

	// maxBound is the largest upper bound among the segment's non-empty
	// partitions — the size the threshold conversion (Eq. 7) actually uses.
	// maxBound/q < t* iff every partition is skipped for (q, t*), and no
	// candidate's containment estimate can exceed (maxBound/q + 1)/2.
	maxBound int

	keys  *bloom.Filter // every entry key (tombstone GC skip)
	leads *bloom.Filter // every tree's leading hash column (collision pre-test)
}

// buildSegMeta derives the planner metadata from a frozen core index. It is
// a pure function of the index, so rebuilding it (e.g. when loading a v1
// snapshot that predates the metadata wire format) reproduces exactly what
// seal time would have produced.
func buildSegMeta(idx *core.Index) *segMeta {
	m := &segMeta{}
	n := idx.Len()
	if n == 0 {
		return m
	}
	m.minSize = idx.Size(0)
	m.maxSize = m.minSize
	m.keys = bloom.New(n, keysBloomBits, keysBloomK)
	for id := 0; id < n; id++ {
		if s := idx.Size(uint32(id)); s < m.minSize {
			m.minSize = s
		} else if s > m.maxSize {
			m.maxSize = s
		}
		m.keys.AddString(idx.Key(uint32(id)))
	}
	for _, p := range idx.PartitionBounds() {
		if p.Count > 0 && p.Upper > m.maxBound {
			m.maxBound = p.Upper
		}
	}
	total := 0
	idx.EachTreeLeading(func(_ int, col []uint64) { total += len(col) })
	m.leads = bloom.New(total, leadsBloomBits, leadsBloomK)
	idx.EachTreeLeading(func(_ int, col []uint64) {
		for _, v := range col {
			m.leads.AddHash(v)
		}
	})
	return m
}

// bloomBytes reports the metadata's filter footprint (for Stats).
func (m *segMeta) bloomBytes() int {
	n := 0
	if m.keys != nil {
		n += m.keys.SizeBytes()
	}
	if m.leads != nil {
		n += m.leads.SizeBytes()
	}
	return n
}

// mayCollide reports whether the segment can contain any LSH collision for
// the query signature. Sound with zero false negatives: every forest probe
// requires an exact match on the probed tree's leading value, and leads
// holds all of them. The filter stores the values as the sealed forest
// stores them — truncated to the sketch backend's width — so the query side
// masks identically (identity mask under Minwise64).
func (m *segMeta) mayCollide(sig minhash.Signature, rMax int, mask uint64) bool {
	if m.leads == nil {
		return false
	}
	for off := 0; off < len(sig); off += rMax {
		if m.leads.MayContainHash(sig[off] & mask) {
			return true
		}
	}
	return false
}

// containmentBound is the largest containment estimate any entry of size
// ≤ xMax can reach against a query of size q: Containment = (x/q+1)·j/(1+j)
// with j ≤ 1, so the cap is (xMax/q+1)/2, clamped like the estimate itself.
func containmentBound(xMax int, q float64) float64 {
	b := (float64(xMax)/q + 1) / 2
	if b > 1 {
		return 1
	}
	return b
}

// topkSegOrder returns segment indices sorted by maxBound descending —
// the visit order that lets top-k terminate as early as possible. Ties
// break by index so the order is deterministic.
func topkSegOrder(segs []*segment) []int {
	if len(segs) == 0 {
		return nil
	}
	order := make([]int, len(segs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return segs[order[i]].meta.maxBound > segs[order[j]].meta.maxBound
	})
	return order
}

// planKey identifies one cached plan. The key is EXACT — querySize and the
// raw bits of the clamped threshold — because the partition skip compares
// u/q < t* exactly; bucketing either value would let a query reuse a plan
// whose skip decisions differ from its own, breaking the byte-identical
// equivalence with the unplanned path.
type planKey struct {
	size  int
	tBits uint64
}

// segPlan holds one plan: per segment, the banding decision of every
// partition exactly as core.Index.PlanPartitions makes it. A nil entry
// marks a segment all of whose partitions are skipped for this
// (querySize, tStar) — the whole segment is range-pruned.
type segPlan struct {
	params [][]tune.Params
}

// planTable is one published generation of the plan cache. The map is
// immutable once stored (misses publish a copy), so readers index it with
// no lock; segGen pins it to the segment set it was planned against.
type planTable struct {
	segGen uint64
	m      map[planKey]*segPlan
}

// planCacheMax bounds the table. Serving workloads see a handful of
// distinct (querySize, tStar) pairs; when an adversarial mix overflows the
// bound the table restarts empty rather than growing without limit.
const planCacheMax = 256

// buildSegPlan computes the plan for (querySize, tStar) against the
// snapshot's segment set. tStar must already be clamped.
func buildSegPlan(sn *snapshot, querySize int, tStar float64) *segPlan {
	p := &segPlan{params: make([][]tune.Params, len(sn.segs))}
	for si, seg := range sn.segs {
		pp := seg.idx.PlanPartitions(nil, querySize, tStar)
		for _, e := range pp {
			if e.B != 0 {
				p.params[si] = pp
				break
			}
		}
	}
	return p
}

// planFor returns the plan for (querySize, tStar) against sn, consulting
// the cache unless disabled. The hit path is one atomic load and one map
// read. Misses build the plan outside any lock, then publish a copied map
// under planMu; a racing publish of the same key wastes one build, nothing
// more. tStar must already be clamped.
func (x *Index) planFor(sn *snapshot, querySize int, tStar float64) *segPlan {
	if x.opts.DisablePlanCache {
		return buildSegPlan(sn, querySize, tStar)
	}
	tb := x.plans.Load()
	if tb == nil || tb.segGen != sn.segGen {
		if tb == nil || tb.segGen < sn.segGen {
			// The segment set moved on: restart the table at the new
			// generation (every cached plan is aligned to a dead layout).
			x.planMu.Lock()
			cur := x.plans.Load()
			if cur == nil || cur.segGen < sn.segGen {
				tb = &planTable{segGen: sn.segGen, m: map[planKey]*segPlan{}}
				x.plans.Store(tb)
			} else {
				tb = cur
			}
			x.planMu.Unlock()
		}
		if tb.segGen != sn.segGen {
			// This reader holds a snapshot older than the table (a seal or
			// merge published mid-query elsewhere): plan ephemerally.
			x.planMisses.Add(1)
			return buildSegPlan(sn, querySize, tStar)
		}
	}
	key := planKey{size: querySize, tBits: math.Float64bits(tStar)}
	if p, ok := tb.m[key]; ok {
		x.planHits.Add(1)
		return p
	}
	x.planMisses.Add(1)
	p := buildSegPlan(sn, querySize, tStar)
	x.planMu.Lock()
	if cur := x.plans.Load(); cur.segGen == sn.segGen {
		if _, ok := cur.m[key]; !ok {
			var m map[planKey]*segPlan
			if len(cur.m) >= planCacheMax {
				m = make(map[planKey]*segPlan, 1)
			} else {
				m = make(map[planKey]*segPlan, len(cur.m)+1)
				for k, v := range cur.m {
					m[k] = v
				}
			}
			m[key] = p
			x.plans.Store(&planTable{segGen: sn.segGen, m: m})
		}
	}
	x.planMu.Unlock()
	return p
}

// ---- result cache ----

// resultEntry is one cached exact query result. Everything in it is
// immutable after the entry is published except stamp, the approximate-LRU
// clock tick of its last use.
type resultEntry struct {
	gen   uint64            // snapshot generation the result was computed on
	hash  uint64            // queryHash of (sig, size, tBits)
	size  int               // exact query size
	tBits uint64            // raw bits of the clamped threshold
	sig   minhash.Signature // private copy of the query signature
	keys  []string          // the result, in fan-out order

	stamp atomic.Uint64
}

// rcWays is the set associativity of the result cache: a query hashes to
// one set of rcWays slots, probed linearly. Four ways keeps the probe cost
// trivial while making it unlikely that two hot queries evict each other.
const rcWays = 4

// defaultResultCacheSize is the entry count when Options.ResultCacheSize
// is zero. At ~1–2 KiB per cached result this stays in the low MiB.
const defaultResultCacheSize = 1024

// newResultCache sizes the slot array: entries rounds up so the set count
// is a power of two (index = hash & mask).
func newResultCache(entries int) ([]atomic.Pointer[resultEntry], uint64) {
	sets := 1
	for sets*rcWays < entries {
		sets <<= 1
	}
	return make([]atomic.Pointer[resultEntry], sets*rcWays), uint64(sets - 1)
}

// mixHash is the splitmix64 finalizer (same as the Bloom filter's mixer):
// one round decorrelates the set index from structured FNV output.
func mixHash(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// queryHash fingerprints a query for the result cache: FNV-1a over the
// signature words, the size and the threshold bits, finalized with one mix
// round.
func queryHash(sig minhash.Signature, querySize int, tBits uint64) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range sig {
		h = (h ^ v) * prime64
	}
	h = (h ^ uint64(querySize)) * prime64
	h = (h ^ tBits) * prime64
	return mixHash(h)
}

// lookupResult probes the query's set for a fresh exact match. A hit
// requires the entry's generation to equal the snapshot's — any Add,
// Delete, seal or merge publishes a new generation, so a stale result can
// never be served. The full signature compare makes hash collisions
// harmless.
func (x *Index) lookupResult(sn *snapshot, sig minhash.Signature, querySize int, tBits, h uint64) *resultEntry {
	base := int(h&x.rcMask) * rcWays
	for i := 0; i < rcWays; i++ {
		e := x.rc[base+i].Load()
		if e == nil || e.gen != sn.gen || e.hash != h || e.size != querySize || e.tBits != tBits {
			continue
		}
		if len(e.sig) != len(sig) {
			continue
		}
		match := true
		for j := range sig {
			if e.sig[j] != sig[j] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		e.stamp.Store(x.rcClock.Add(1))
		return e
	}
	return nil
}

// storeResult publishes a computed result into the query's set, evicting
// (in order of preference) an empty slot, a stale-generation entry, or the
// least recently stamped one. Races between concurrent inserts are benign:
// slots are single atomic pointers, so a lost insert just misses next time.
func (x *Index) storeResult(sn *snapshot, sig minhash.Signature, querySize int, tBits, h uint64, keys []string) {
	base := int(h&x.rcMask) * rcWays
	victim := 0
	var minStamp uint64 = math.MaxUint64
	for i := 0; i < rcWays; i++ {
		e := x.rc[base+i].Load()
		if e == nil || e.gen != sn.gen {
			victim = i
			break
		}
		if s := e.stamp.Load(); s < minStamp {
			minStamp, victim = s, i
		}
	}
	e := &resultEntry{
		gen:   sn.gen,
		hash:  h,
		size:  querySize,
		tBits: tBits,
		sig:   append(minhash.Signature(nil), sig...),
		keys:  append([]string(nil), keys...),
	}
	e.stamp.Store(x.rcClock.Add(1))
	x.rc[base+victim].Store(e)
}
