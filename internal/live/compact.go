package live

import (
	"sort"

	"lshensemble/internal/bloom"
	"lshensemble/internal/core"
)

// This file is the write-behind half of the live index: sealing the
// unsealed buffer into a frozen segment, merging small segments into larger
// ones, and the background goroutine that drives both. All heavy work
// (core.Build over the surviving records, using the parallel construction
// path) happens OUTSIDE any lock the write or read paths touch; only the
// final pointer swap takes the writer mutex, and readers never take a lock
// at all — a query in flight keeps the snapshot it loaded.
//
// Sequence numbers make this sound under concurrent writes: a segment keeps
// each entry's seq, so tombstones recorded *while* a build is running still
// apply to the freshly built segment at query time (the tombstone's seq
// exceeds the sealed entries' seqs). Compaction filters with the tombstones
// visible when it starts and never loses a later delete.

// compactor is the background loop. It wakes on a nudge (sent by Add when
// the buffer crosses SealThreshold) and runs the pipeline until the shape
// is within thresholds again.
func (x *Index) compactor() {
	defer close(x.done)
	for {
		select {
		case <-x.stop:
			return
		case <-x.nudge:
		}
		x.compactMu.Lock()
		for x.sealIfFull() || x.mergeIfCrowded() {
			select {
			case <-x.stop:
				x.compactMu.Unlock()
				return
			default:
			}
		}
		x.compactMu.Unlock()
	}
}

// kick nudges the compactor without blocking (the channel holds one pending
// nudge; more are redundant).
func (x *Index) kick() {
	select {
	case x.nudge <- struct{}{}:
	default:
	}
}

// Close stops the background compactor and waits for it to finish the
// operation in flight. The index remains fully usable afterwards — only
// automatic compaction stops. Close is idempotent.
func (x *Index) Close() {
	x.closeOnce.Do(func() { close(x.stop) })
	<-x.done
}

// Flush synchronously seals the current buffer into a segment (a no-op when
// the buffer is empty). Callers that need the buffer drained — e.g. before
// measuring pure-segment query cost — use it; normal ingest relies on the
// background seal instead.
func (x *Index) Flush() {
	x.compactMu.Lock()
	x.seal(1)
	x.compactMu.Unlock()
}

// Compact synchronously runs full compaction: the buffer is sealed and all
// segments merge into (at most) one, dropping every dead entry and every
// tombstone that no longer shadows anything. The result answers queries
// exactly like a fresh core.Build over the surviving records.
func (x *Index) Compact() {
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	x.seal(1)
	sn := x.snap.Load()
	if len(sn.segs) == 0 || (len(sn.segs) == 1 && len(sn.tombs) == 0) {
		return
	}
	x.mergeSegments(sn.segs)
}

// sealIfFull seals when the buffer has crossed the threshold.
func (x *Index) sealIfFull() bool {
	return x.seal(x.opts.SealThreshold)
}

// seal freezes the first len(buf) buffered entries (as of the snapshot it
// loads) into a new segment, provided at least min are buffered. Dead
// entries are dropped during the build. It reports whether anything was
// sealed (including a pure trim, when every buffered entry was dead).
//
// The caller must hold compactMu. Writers keep appending while the segment
// builds; the publish step moves only the sealed prefix out of the buffer.
func (x *Index) seal(min int) bool {
	sn := x.snap.Load()
	buf := sn.buf
	if min < 1 {
		min = 1
	}
	if len(buf) < min {
		return false
	}
	recs := make([]core.Record, 0, len(buf))
	seqs := make([]uint64, 0, len(buf))
	for i := range buf {
		e := &buf[i]
		if !sn.alive(e.rec.Key, e.seq) {
			continue
		}
		recs = append(recs, e.rec)
		seqs = append(seqs, e.seq)
	}
	var seg *segment
	if len(recs) > 0 {
		idx, err := core.Build(recs, x.opts.Options)
		if err != nil {
			// Unreachable: every record was validated at Add time. Leaving
			// the buffer as-is keeps the index correct (just unsealed).
			return false
		}
		// The planner metadata is derived outside the writer lock, like the
		// build itself: only the pointer swap below blocks writers.
		seg = &segment{idx: idx, seqs: seqs, meta: buildSegMeta(idx)}
		seg.resident = heapSegmentResident(idx, seg.meta)
		// Spill to a segment file before publishing (file IO stays outside
		// the writer lock, like the build).
		seg = x.persistSegment(seg)
	}

	x.mu.Lock()
	cur := x.snap.Load()
	// Entries appended while the build ran stay buffered; relocating them to
	// a fresh backing array lets the sealed prefix's array be collected once
	// the old snapshots die. The buffer Bloom filter is rebuilt over the
	// carried-over entries so it stops answering "maybe" for everything the
	// seal just removed.
	rest := cur.buf[len(buf):]
	back := make([]entry, len(rest), len(rest)+x.opts.SealThreshold)
	copy(back, rest)
	x.bufBack = back
	bufMax := 0
	bb := x.newBufBloom()
	for i := range back {
		if s := back[i].rec.Size; s > bufMax {
			bufMax = s
		}
		addBufLeads(bb, back[i].rec.Sig, x.opts.RMax, x.opts.Sketch.Mask())
	}
	x.bufBloom = bb
	segs := cur.segs
	if seg != nil {
		segs = append(append(make([]*segment, 0, len(cur.segs)+1), cur.segs...), seg)
	}
	next := &snapshot{segs: segs, buf: back, tombs: gcTombs(cur.tombs, segs, back), bufMax: bufMax, bufBloom: bb}
	old := x.publishLocked(next, cur, true)
	x.mu.Unlock()
	x.releaseSnap(old)
	x.seals.Add(1)
	return true
}

// mergeIfCrowded merges the two smallest segments when more than
// MaxSegments have accumulated. The caller must hold compactMu.
func (x *Index) mergeIfCrowded() bool {
	sn := x.snap.Load()
	if len(sn.segs) <= x.opts.MaxSegments {
		return false
	}
	a, b := 0, 1
	for i, seg := range sn.segs {
		n := seg.idx.Len()
		if n < sn.segs[a].idx.Len() {
			a, b = i, a
		} else if i != a && n < sn.segs[b].idx.Len() {
			b = i
		}
	}
	x.mergeSegments([]*segment{sn.segs[a], sn.segs[b]})
	return true
}

// mergeSegments rebuilds the given segments (identified by pointer in the
// current snapshot) into at most one new segment holding their surviving
// entries, and publishes the swap. Every merge runs the exact per-key
// tombstone sweep (the segment key Blooms make it cheap — see
// exactGCTombs), so incremental merges retire tombstones as precisely as
// full compaction does. The caller must hold compactMu.
func (x *Index) mergeSegments(victims []*segment) {
	sn := x.snap.Load()
	// Gather survivors in ascending seq order: collect per segment (each is
	// already ascending), then merge-sort the runs.
	type run struct {
		recs []core.Record
		seqs []uint64
	}
	runs := make([]run, 0, len(victims))
	total := 0
	for _, seg := range victims {
		var r run
		for id := 0; id < seg.idx.Len(); id++ {
			key := seg.idx.Key(uint32(id))
			if !sn.alive(key, seg.seqs[id]) {
				continue
			}
			r.recs = append(r.recs, core.Record{
				Key:  key,
				Size: seg.idx.Size(uint32(id)),
				Sig:  seg.idx.Signature(uint32(id)),
			})
			r.seqs = append(r.seqs, seg.seqs[id])
		}
		runs = append(runs, r)
		total += len(r.recs)
	}
	recs := make([]core.Record, 0, total)
	seqs := make([]uint64, 0, total)
	cursors := make([]int, len(runs))
	for len(recs) < total {
		best := -1
		for i := range runs {
			if cursors[i] >= len(runs[i].seqs) {
				continue
			}
			if best < 0 || runs[i].seqs[cursors[i]] < runs[best].seqs[cursors[best]] {
				best = i
			}
		}
		recs = append(recs, runs[best].recs[cursors[best]])
		seqs = append(seqs, runs[best].seqs[cursors[best]])
		cursors[best]++
	}

	var merged *segment
	if len(recs) > 0 {
		// core.Build copies every signature into the new segment's own
		// store, so the merged segment holds no views into the victims —
		// they can unmap once their last reader drains.
		idx, err := core.Build(recs, x.opts.Options)
		if err != nil {
			return // unreachable: inputs came from validated segments
		}
		merged = &segment{idx: idx, seqs: seqs, meta: buildSegMeta(idx)}
		merged.resident = heapSegmentResident(idx, merged.meta)
		merged = x.persistSegment(merged)
	}

	x.mu.Lock()
	cur := x.snap.Load()
	victimSet := make(map[*segment]bool, len(victims))
	for _, v := range victims {
		victimSet[v] = true
	}
	segs := make([]*segment, 0, len(cur.segs))
	for _, seg := range cur.segs {
		if !victimSet[seg] {
			segs = append(segs, seg)
		}
	}
	if merged != nil {
		segs = append(segs, merged)
		sort.Slice(segs, func(i, j int) bool { return segs[i].minSeq() < segs[j].minSeq() })
	}
	tombs := exactGCTombs(cur.tombs, segs, cur.buf)
	next := &snapshot{segs: segs, buf: cur.buf, tombs: tombs, bufMax: cur.bufMax, bufBloom: cur.bufBloom}
	old := x.publishLocked(next, cur, true)
	x.mu.Unlock()
	x.releaseSnap(old)
	x.merges.Add(1)
}

// gcTombs drops the tombstones that can no longer shadow anything: a
// tombstone with sequence number s kills only entries with seq < s, so once
// every remaining entry's seq is >= s it is inert. This is the cheap
// O(tombstones) global-minimum bound used on every incremental publish;
// full Compact pays for the per-key sweep (exactGCTombs) instead, which is
// what lets it reach the empty-tombstone state.
func gcTombs(tombs map[string]uint64, segs []*segment, buf []entry) map[string]uint64 {
	if len(tombs) == 0 {
		return tombs
	}
	var minSeq uint64
	found := false
	for _, seg := range segs {
		if s := seg.minSeq(); !found || s < minSeq {
			minSeq, found = s, true
		}
	}
	if len(buf) > 0 {
		if s := buf[0].seq; !found || s < minSeq {
			minSeq, found = s, true
		}
	}
	if !found {
		return nil // no entries anywhere: nothing to shadow
	}
	drop := 0
	for _, s := range tombs {
		if s <= minSeq {
			drop++
		}
	}
	if drop == 0 {
		return tombs
	}
	next := make(map[string]uint64, len(tombs)-drop)
	for k, s := range tombs {
		if s > minSeq {
			next[k] = s
		}
	}
	return next
}

// exactGCTombs keeps only the tombstones that still shadow a physically
// present entry: (key, s) survives iff some remaining entry of that key has
// seq < s. It runs on every merge; the per-segment key Bloom filters keep
// the sweep cheap by skipping segments that definitely hold none of the
// tombstoned keys (a false positive only costs one segment scan, never a
// wrongly dropped tombstone). Writes racing the merge stay correctly
// shadowed: their tombstones name entries that still exist, so they are
// kept.
func exactGCTombs(tombs map[string]uint64, segs []*segment, buf []entry) map[string]uint64 {
	if len(tombs) == 0 {
		return tombs
	}
	var next map[string]uint64
	keep := func(key string, seq uint64) {
		if s, ok := tombs[key]; ok && seq < s {
			if next == nil {
				next = make(map[string]uint64)
			}
			next[key] = s
		}
	}
	for _, seg := range segs {
		if seg.meta != nil && seg.meta.keys != nil && !mayShadowAny(seg.meta.keys, tombs) {
			continue
		}
		for id := 0; id < seg.idx.Len(); id++ {
			keep(seg.idx.Key(uint32(id)), seg.seqs[id])
		}
	}
	for i := range buf {
		keep(buf[i].rec.Key, buf[i].seq)
	}
	return next
}

// mayShadowAny reports whether any tombstoned key might occur in a segment
// whose key Bloom filter is f.
func mayShadowAny(f *bloom.Filter, tombs map[string]uint64) bool {
	for k := range tombs {
		if f.MayContainString(k) {
			return true
		}
	}
	return false
}
