package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"path/filepath"
	"sort"

	"lshensemble/internal/bloom"
	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
)

// Binary snapshot format (all integers little-endian):
//
//	magic "LIVE" | version u32
//	numHash u32 | rMax u32 | sketch u32 (v4+) | seq u64
//	nsegs u32, per segment (v3 leads each with a kind byte):
//	    kind 0 (inline): n u32, seqs [n]u64, core index bytes (self-framed),
//	        and from version 2 the planner metadata:
//	        minSize u64 | maxSize u64 | maxBound u64 | keys bloom | leads bloom
//	    kind 1 (segment-file reference, v3 only):
//	        namelen u32 | name | fileSize u64 | headerCRC u64
//	nbuf u32, per entry: seq u64, keylen u32, key, size u64, sig [numHash]u64
//	ntombs u32, per tombstone: keylen u32, key, seq u64
//	crc u64 (v3 only: crc64-ECMA over every preceding byte of the encoding)
//
// Version history: v1 predates the query planner and carries no segment
// metadata; v2 appends it per segment so a load does not pay to re-derive
// the Bloom filters; v3 is the out-of-core manifest — a spilled segment is
// referenced by file name (resolved against Options.DataDir and verified by
// size and header checksum) instead of being embedded, tombstones are
// written in sorted key order so equal states encode byte-identically, and
// a trailing checksum rejects truncation or corruption anywhere in the
// snapshot. A v3 segment without a file (no DataDir, or its spill failed)
// falls back to the v2-style inline block per segment, so Save can always
// encode. v4 adds the sketch-backend tag (core.SketchBackend) to the header;
// v1–v3 snapshots predate the pluggable backends and always load as
// Minwise64. Load accepts all four versions — a v1 snapshot rebuilds its
// metadata from the decoded segments (buildSegMeta is a pure function of
// the core index, so the rebuilt planner state is identical to what seal
// time would have produced). Save always writes the current version.
//
// Save serializes a point-in-time snapshot: it is safe to call while
// writers and the compactor run (they publish new snapshots; the one being
// written stays frozen). With DataDir set it first spills any segment that
// has no file yet, so the manifest it writes is self-contained. Load
// rebuilds the writer-side state (key → seq map, live count) by replaying
// the tombstones over the entries.

var liveMagic = [4]byte{'L', 'I', 'V', 'E'}

const (
	liveVersion   = 4
	liveVersionV1 = 1 // pre-planner: no per-segment metadata block
	liveVersionV2 = 2 // inline planner metadata, no manifest
	liveVersionV3 = 3 // manifest + checksum, implicit Minwise64 backend
)

// Segment kind bytes of the v3 encoding.
const (
	segKindInline  = 0
	segKindFileRef = 1
)

// ErrCorrupt reports a malformed live-snapshot encoding.
var ErrCorrupt = errors.New("live: corrupt snapshot encoding")

// AppendBinary appends the index's snapshot encoding (a v3 manifest) to
// buf. With DataDir set it first writes a segment file for every segment
// that lacks one, so the manifest references files instead of embedding
// megabytes of segment bytes; the files it references are protected from
// deletion until CollectGarbage. Concurrent Saves serialize on saveMu.
func (x *Index) AppendBinary(buf []byte) []byte {
	x.saveMu.Lock()
	defer x.saveMu.Unlock()
	if x.opts.DataDir != "" {
		// A seal/merge racing past this point publishes a segment this save
		// won't see; a segment it does see but that gained no file (spill
		// error) is inlined below. Either way the encoding is complete.
		x.spillAll()
	}

	// seq and the snapshot must agree (seq covers every mutation the
	// snapshot shows); taking the writer mutex for the two loads is the only
	// place the save path touches it. The snapshot is pinned so its mapped
	// segments cannot retire while being encoded.
	x.mu.Lock()
	sn := x.snap.Load()
	sn.refs.Add(1) // under mu no publish can race: plain acquire
	seq := x.seq
	x.mu.Unlock()
	defer x.releaseSnap(sn)

	start := len(buf)
	buf = append(buf, liveMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, liveVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.NumHash))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.RMax))
	buf = binary.LittleEndian.AppendUint32(buf, x.opts.Sketch.Tag())
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.segs)))
	for _, seg := range sn.segs {
		if fi := seg.finfo.Load(); fi != nil && x.opts.DataDir != "" {
			name := filepath.Base(fi.path)
			buf = append(buf, segKindFileRef)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(name)))
			buf = append(buf, name...)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(fi.size))
			buf = binary.LittleEndian.AppendUint64(buf, fi.headerCRC)
			// From here the file is manifest-referenced: retirement must
			// defer its deletion to CollectGarbage even if the caller never
			// persists this encoding (conservative direction — files only
			// live longer).
			seg.inManifest.Store(true)
			continue
		}
		buf = append(buf, segKindInline)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seg.seqs)))
		for _, s := range seg.seqs {
			buf = binary.LittleEndian.AppendUint64(buf, s)
		}
		buf = seg.idx.AppendBinary(buf)
		buf = appendSegMeta(buf, seg.meta)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.buf)))
	for i := range sn.buf {
		e := &sn.buf[i]
		buf = binary.LittleEndian.AppendUint64(buf, e.seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.rec.Key)))
		buf = append(buf, e.rec.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.rec.Size))
		for _, v := range e.rec.Sig {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	// Tombstones in sorted key order: map iteration is randomized, and v3
	// promises byte-deterministic encodings of equal states.
	tombKeys := make([]string, 0, len(sn.tombs))
	for k := range sn.tombs {
		tombKeys = append(tombKeys, k)
	}
	sort.Strings(tombKeys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tombKeys)))
	for _, k := range tombKeys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, sn.tombs[k])
	}
	return binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf[start:], crcTable))
}

// Save writes the index's snapshot encoding to w. See AppendBinary for the
// consistency guarantees.
func (x *Index) Save(w io.Writer) error {
	buf := x.AppendBinary(nil)
	n, err := w.Write(buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return io.ErrShortWrite
	}
	return nil
}

// Load reconstructs a live index from a snapshot previously written with
// Save, using opts for the runtime knobs (thresholds, compactor). Non-zero
// opts.NumHash/opts.RMax must match the saved shape, and a non-default
// opts.Sketch must match the saved backend — a mismatched hash family or
// sketch width would silently return garbage, so both are rejected here
// (an opts.Sketch left at the Minwise64 zero value adopts whatever the
// snapshot carries, like a zero NumHash). The background compactor starts
// unless opts.ManualCompaction is set.
func Load(r io.Reader, opts Options) (*Index, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Fixed header: magic(4) + version(4) + numHash(4) + rMax(4) +
	// sketch(4, v4+) + seq(8).
	if len(buf) < 24 || [4]byte(buf[:4]) != liveMagic {
		return nil, ErrCorrupt
	}
	version := binary.LittleEndian.Uint32(buf[4:])
	if version < liveVersionV1 || version > liveVersion {
		return nil, fmt.Errorf("live: snapshot version %d, want %d..%d: %w",
			version, liveVersionV1, liveVersion, ErrCorrupt)
	}
	if version >= liveVersionV3 {
		// The whole v3+ encoding is covered by a trailing checksum, so any
		// truncation or corruption is rejected before structural parsing.
		if len(buf) < 32 ||
			crc64.Checksum(buf[:len(buf)-8], crcTable) != binary.LittleEndian.Uint64(buf[len(buf)-8:]) {
			return nil, fmt.Errorf("live: snapshot checksum mismatch: %w", ErrCorrupt)
		}
		buf = buf[:len(buf)-8]
	}
	numHash := int(binary.LittleEndian.Uint32(buf[8:]))
	rMax := int(binary.LittleEndian.Uint32(buf[12:]))
	sketch := core.Minwise64
	if version >= 4 {
		if len(buf) < 28 {
			return nil, ErrCorrupt
		}
		sb, ok := core.SketchBackendFromTag(binary.LittleEndian.Uint32(buf[16:]))
		if !ok || !sb.Indexable() {
			return nil, fmt.Errorf("live: snapshot carries unknown or non-indexable sketch backend tag %d: %w",
				binary.LittleEndian.Uint32(buf[16:]), ErrCorrupt)
		}
		sketch = sb
		buf = buf[4:]
	}
	seq := binary.LittleEndian.Uint64(buf[16:])
	buf = buf[24:]
	// Save never emits a degenerate shape (Build validates it), and zeros
	// must not fall through to withDefaults below: the raw rMax strides
	// loops (addBufLeads), where 0 would never advance.
	if numHash < 1 || rMax < 1 || rMax > numHash {
		return nil, fmt.Errorf("live: snapshot header shape (%d, %d): %w", numHash, rMax, ErrCorrupt)
	}
	if opts.NumHash != 0 && opts.NumHash != numHash {
		return nil, fmt.Errorf("live: snapshot NumHash %d != configured %d", numHash, opts.NumHash)
	}
	if opts.RMax != 0 && opts.RMax != rMax {
		return nil, fmt.Errorf("live: snapshot RMax %d != configured %d", rMax, opts.RMax)
	}
	if opts.Sketch != core.Minwise64 && opts.Sketch != sketch {
		return nil, fmt.Errorf("live: snapshot sketch backend %s != configured %s", sketch, opts.Sketch)
	}
	opts.NumHash, opts.RMax, opts.Sketch = numHash, rMax, sketch
	opts = opts.withDefaults()
	if err := opts.Options.Validate(); err != nil {
		return nil, err
	}

	if opts.Mmap && opts.DataDir == "" {
		return nil, fmt.Errorf("live: Options.Mmap requires Options.DataDir")
	}
	x := &Index{
		opts:   opts,
		keySeq: make(map[string]uint64),
		nudge:  make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	x.tuner = newTuner(opts)
	if opts.ResultCacheSize > 0 {
		x.rc, x.rcMask = newResultCache(opts.ResultCacheSize)
	}
	if opts.DataDir != "" {
		if err := x.initDataDir(); err != nil {
			return nil, err
		}
	}

	sn := &snapshot{}
	referenced := make(map[string]bool)
	nsegs, buf, err := readCount(buf)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nsegs; i++ {
		kind := byte(segKindInline)
		if version >= 3 {
			if len(buf) < 1 {
				return nil, ErrCorrupt
			}
			kind, buf = buf[0], buf[1:]
		}
		switch kind {
		case segKindInline:
			var n int
			n, buf, err = readCount(buf)
			if err != nil {
				return nil, err
			}
			if len(buf) < 8*n {
				return nil, ErrCorrupt
			}
			seqs := make([]uint64, n)
			for j := range seqs {
				seqs[j] = binary.LittleEndian.Uint64(buf)
				buf = buf[8:]
				if j > 0 && seqs[j] <= seqs[j-1] {
					return nil, fmt.Errorf("live: segment %d seqs not ascending: %w", i, ErrCorrupt)
				}
			}
			idx, rest, err := core.Decode(buf)
			if err != nil {
				return nil, err
			}
			buf = rest
			if idx.Len() != n {
				return nil, fmt.Errorf("live: segment %d holds %d entries, %d seqs: %w", i, idx.Len(), n, ErrCorrupt)
			}
			if n == 0 {
				return nil, fmt.Errorf("live: segment %d is empty: %w", i, ErrCorrupt)
			}
			if o := idx.Options(); o.NumHash != numHash || o.RMax != rMax {
				return nil, fmt.Errorf("live: segment %d shape (%d, %d) != header (%d, %d): %w",
					i, o.NumHash, o.RMax, numHash, rMax, ErrCorrupt)
			}
			if s := idx.Sketch(); s != sketch {
				return nil, fmt.Errorf("live: segment %d sketch backend %s != snapshot %s: %w",
					i, s, sketch, ErrCorrupt)
			}
			var meta *segMeta
			if version >= 2 {
				meta, buf, err = decodeSegMeta(buf)
				if err != nil {
					return nil, fmt.Errorf("live: segment %d metadata: %w", i, err)
				}
			} else {
				meta = buildSegMeta(idx)
			}
			seg := &segment{idx: idx, seqs: seqs, meta: meta}
			seg.resident = heapSegmentResident(idx, meta)
			sn.segs = append(sn.segs, seg)

		case segKindFileRef:
			if opts.DataDir == "" {
				return nil, fmt.Errorf("live: snapshot references segment files but Options.DataDir is empty")
			}
			if len(buf) < 4 {
				return nil, ErrCorrupt
			}
			nameLen := int(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
			if nameLen < 0 || nameLen > len(buf) || len(buf) < nameLen+16 {
				return nil, ErrCorrupt
			}
			name := string(buf[:nameLen])
			fileSize := int64(binary.LittleEndian.Uint64(buf[nameLen:]))
			headerCRC := binary.LittleEndian.Uint64(buf[nameLen+8:])
			buf = buf[nameLen+16:]
			if !validSegFileName(name) {
				return nil, fmt.Errorf("live: segment %d references invalid file name %q: %w", i, name, ErrCorrupt)
			}
			fi := &segFileInfo{path: filepath.Join(opts.DataDir, name), size: fileSize, headerCRC: headerCRC}
			seg, err := x.openSegmentFile(fi, true)
			if err != nil {
				return nil, fmt.Errorf("live: segment %d (%s): %w", i, name, err)
			}
			// The on-disk manifest this snapshot came from references the
			// file, so retirement must route through CollectGarbage.
			seg.inManifest.Store(true)
			referenced[name] = true
			sn.segs = append(sn.segs, seg)

		default:
			return nil, fmt.Errorf("live: segment %d has unknown kind %d: %w", i, kind, ErrCorrupt)
		}
	}
	nbuf, buf, err := readCount(buf)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nbuf; i++ {
		if len(buf) < 12 {
			return nil, ErrCorrupt
		}
		eseq := binary.LittleEndian.Uint64(buf)
		kl := int(binary.LittleEndian.Uint32(buf[8:]))
		buf = buf[12:]
		if len(buf) < kl+8 {
			return nil, ErrCorrupt
		}
		key := string(buf[:kl])
		size := int(binary.LittleEndian.Uint64(buf[kl:]))
		buf = buf[kl+8:]
		if len(buf) < 8*numHash {
			return nil, ErrCorrupt
		}
		sig := make(minhash.Signature, numHash)
		for j := range sig {
			sig[j] = binary.LittleEndian.Uint64(buf)
			buf = buf[8:]
		}
		rec := core.Record{Key: key, Size: size, Sig: sig}
		if err := x.validateRecord(rec); err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrCorrupt)
		}
		x.bufBack = append(x.bufBack, entry{rec: rec, seq: eseq})
		if size > sn.bufMax {
			sn.bufMax = size
		}
	}
	sn.buf = x.bufBack
	x.bufBloom = x.newBufBloom()
	for i := range sn.buf {
		addBufLeads(x.bufBloom, sn.buf[i].rec.Sig, rMax, opts.Sketch.Mask())
	}
	sn.bufBloom = x.bufBloom
	ntombs, buf, err := readCount(buf)
	if err != nil {
		return nil, err
	}
	if ntombs > 0 {
		sn.tombs = make(map[string]uint64, ntombs)
		for i := 0; i < ntombs; i++ {
			if len(buf) < 4 {
				return nil, ErrCorrupt
			}
			kl := int(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
			if len(buf) < kl+8 {
				return nil, ErrCorrupt
			}
			sn.tombs[string(buf[:kl])] = binary.LittleEndian.Uint64(buf[kl:])
			buf = buf[kl+8:]
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("live: %d trailing bytes after snapshot: %w", len(buf), ErrCorrupt)
	}

	// Rebuild the writer-side view: the live entry of each key is the one
	// not shadowed by a tombstone; at most one per key exists in a
	// well-formed snapshot, so the highest seq wins defensively.
	live := 0
	note := func(key string, s uint64) {
		if sn.tombs[key] > s {
			return
		}
		if old, ok := x.keySeq[key]; !ok {
			x.keySeq[key] = s
			live++
		} else if s > old {
			x.keySeq[key] = s
		}
	}
	for _, seg := range sn.segs {
		for id := 0; id < seg.idx.Len(); id++ {
			note(seg.idx.Key(uint32(id)), seg.seqs[id])
		}
	}
	for i := range sn.buf {
		note(sn.buf[i].rec.Key, sn.buf[i].seq)
	}
	x.domains.Store(int64(live))
	x.seq = seq
	for _, k := range x.keySeq {
		if k > x.seq {
			x.seq = k
		}
	}
	for _, s := range sn.tombs {
		if s > x.seq {
			x.seq = s
		}
	}
	if opts.DataDir != "" {
		// Anything in the data directory the manifest does not reference is a
		// leftover from a crashed spill or an unpersisted save: remove it.
		x.sweepDataDir(referenced)
	}
	x.publishInitial(sn)
	if !opts.ManualCompaction {
		go x.compactor()
		if len(sn.buf) >= opts.SealThreshold {
			x.kick()
		}
	} else {
		close(x.done)
	}
	return x, nil
}

// decodeSegMeta reconstructs one segment's planner metadata from the front
// of buf (the v2 per-segment block).
func decodeSegMeta(buf []byte) (*segMeta, []byte, error) {
	if len(buf) < 24 {
		return nil, buf, ErrCorrupt
	}
	m := &segMeta{
		minSize:  int(binary.LittleEndian.Uint64(buf)),
		maxSize:  int(binary.LittleEndian.Uint64(buf[8:])),
		maxBound: int(binary.LittleEndian.Uint64(buf[16:])),
	}
	buf = buf[24:]
	if m.minSize <= 0 || m.minSize > m.maxSize || m.maxBound < m.maxSize {
		return nil, buf, ErrCorrupt
	}
	var err error
	if m.keys, buf, err = bloom.Decode(buf); err != nil {
		return nil, buf, err
	}
	if m.leads, buf, err = bloom.Decode(buf); err != nil {
		return nil, buf, err
	}
	return m, buf, nil
}

// readCount reads a u32 count, bounded by the remaining buffer so a hostile
// header cannot drive huge allocations.
func readCount(buf []byte) (int, []byte, error) {
	if len(buf) < 4 {
		return 0, buf, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n < 0 || n > len(buf) {
		return 0, buf, ErrCorrupt
	}
	return n, buf, nil
}
