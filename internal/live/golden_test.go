package live

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// encodeLegacy serializes the index's current snapshot in the historical
// wire format (v1: no per-segment planner metadata; v2: inline metadata,
// no kind bytes, map-ordered tombstones, no trailing checksum). These are
// the bytes old deployments have on disk — the golden fixtures the
// compatibility promise is tested against.
func encodeLegacy(t testing.TB, x *Index, version uint32) []byte {
	t.Helper()
	sn := x.snap.Load()
	buf := append([]byte(nil), liveMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.NumHash))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.opts.RMax))
	buf = binary.LittleEndian.AppendUint64(buf, x.seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.segs)))
	for _, seg := range sn.segs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seg.seqs)))
		for _, s := range seg.seqs {
			buf = binary.LittleEndian.AppendUint64(buf, s)
		}
		buf = seg.idx.AppendBinary(buf)
		if version >= 2 {
			buf = appendSegMeta(buf, seg.meta)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.buf)))
	for i := range sn.buf {
		e := &sn.buf[i]
		buf = binary.LittleEndian.AppendUint64(buf, e.seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.rec.Key)))
		buf = append(buf, e.rec.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.rec.Size))
		for _, v := range e.rec.Sig {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.tombs)))
	for k, s := range sn.tombs { // map order: v1/v2 never promised determinism
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	return buf
}

// goldenIndex builds a state with every feature a legacy snapshot can hold:
// sealed segments, buffered entries, and live tombstones.
func goldenIndex(t testing.TB) *Index {
	t.Helper()
	recs := fixture(t, 120, 17)
	x, err := Build(recs[:80], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[80:115] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	x.Delete(recs[5].Key)
	x.Delete(recs[85].Key)
	for _, r := range recs[115:] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

// TestLegacyFormatsLoadAndResaveDeterministically is the format-compat
// promise: v1 and v2 snapshots load into the identical logical state, and
// re-saving either produces v3 bytes that are byte-for-byte deterministic —
// the same state always encodes to the same manifest.
func TestLegacyFormatsLoadAndResaveDeterministically(t *testing.T) {
	x := goldenIndex(t)
	defer x.Close()
	recs := fixture(t, 120, 17)

	var resaves [][]byte
	for _, version := range []uint32{liveVersionV1, liveVersionV2} {
		golden := encodeLegacy(t, x, version)
		loaded, err := Load(bytes.NewReader(golden), liveOpts())
		if err != nil {
			t.Fatalf("v%d golden rejected: %v", version, err)
		}
		defer loaded.Close()
		if loaded.Len() != x.Len() {
			t.Fatalf("v%d: Len %d, want %d", version, loaded.Len(), x.Len())
		}
		for _, r := range recs[:50] {
			want := x.Query(r.Sig, r.Size, 0.9)
			if got := loaded.Query(r.Sig, r.Size, 0.9); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("v%d: loaded index answered %v, want %v", version, got, want)
			}
		}
		a := loaded.AppendBinary(nil)
		if v := binary.LittleEndian.Uint32(a[4:]); v != liveVersion {
			t.Fatalf("v%d re-save produced version %d, want %d", version, v, liveVersion)
		}
		if b := loaded.AppendBinary(nil); !bytes.Equal(a, b) {
			t.Fatalf("v%d: two re-saves of the same loaded state differ", version)
		}
		// And the re-saved v3 bytes round-trip through Load unchanged.
		again, err := Load(bytes.NewReader(a), liveOpts())
		if err != nil {
			t.Fatalf("v%d: re-saved v3 rejected: %v", version, err)
		}
		defer again.Close()
		if c := again.AppendBinary(nil); !bytes.Equal(a, c) {
			t.Fatalf("v%d: v3 save/load/save not byte-stable", version)
		}
		resaves = append(resaves, a)
	}
	// v1 carries no planner metadata; the loader rebuilds it, and since
	// buildSegMeta is a pure function of the segment contents, the v1- and
	// v2-loaded states must re-encode identically.
	if !bytes.Equal(resaves[0], resaves[1]) {
		t.Fatal("v1- and v2-loaded states produced different v3 encodings")
	}
}

// TestLegacySnapshotKeepsWorking loads a v2 snapshot and keeps using the
// index — churn after a format upgrade must behave exactly like a fresh
// index.
func TestLegacySnapshotKeepsWorking(t *testing.T) {
	x := goldenIndex(t)
	defer x.Close()
	golden := encodeLegacy(t, x, liveVersionV2)
	loaded, err := Load(bytes.NewReader(golden), liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	extra := fixture(t, 20, 31)
	for _, r := range extra {
		for _, idx := range []*Index{x, loaded} {
			if _, err := idx.Add(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, idx := range []*Index{x, loaded} {
		idx.Compact()
	}
	for _, r := range append(extra, fixture(t, 120, 17)[:30]...) {
		want := x.Query(r.Sig, r.Size, 0.8)
		if got := loaded.Query(r.Sig, r.Size, 0.8); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("post-upgrade churn diverged: %v vs %v", got, want)
		}
	}
}
