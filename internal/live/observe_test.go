package live

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lshensemble/internal/core"
)

// countingObserver tallies ObserveQuery callbacks per kind.
type countingObserver struct {
	counts [3]atomic.Uint64
	total  atomic.Int64 // summed nanoseconds, to check durations are sane
}

func (o *countingObserver) ObserveQuery(kind QueryKind, d time.Duration) {
	o.counts[kind].Add(1)
	o.total.Add(int64(d))
}

// TestObserverCallbacks checks every query entry point reports exactly one
// observation of the right kind — including result-cache hits — and that
// SetObserver(nil) detaches cleanly.
func TestObserverCallbacks(t *testing.T) {
	recs := fixture(t, 64, 31)
	x, err := Build(recs, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	o := &countingObserver{}
	x.SetObserver(o)

	q := recs[0]
	x.Query(q.Sig, q.Size, 0.5)
	x.Query(q.Sig, q.Size, 0.5) // result-cache hit: still observed
	if got := o.counts[KindQuery].Load(); got != 2 {
		t.Errorf("query observations = %d, want 2 (cache hits observed too)", got)
	}
	x.QueryTopK(q.Sig, q.Size, 5)
	if got := o.counts[KindTopK].Load(); got != 1 {
		t.Errorf("topk observations = %d, want 1", got)
	}
	batch := []core.BatchQuery{
		{Sig: recs[1].Sig, Size: recs[1].Size, Threshold: 0.5},
		{Sig: recs[2].Sig, Size: recs[2].Size, Threshold: 0.5},
	}
	x.QueryBatch(batch, 1)
	if got := o.counts[KindBatch].Load(); got != 1 {
		t.Errorf("batch observations = %d, want 1 (whole batch = one observation)", got)
	}
	if o.total.Load() < 0 {
		t.Error("negative observed duration")
	}

	x.SetObserver(nil)
	x.Query(q.Sig, q.Size, 0.5)
	if got := o.counts[KindQuery].Load(); got != 2 {
		t.Errorf("detached observer still called: %d observations", got)
	}
}

// TestObserverConcurrent hammers the observer from concurrent queriers and
// a writer while SetObserver flips between two observers (run under -race).
func TestObserverConcurrent(t *testing.T) {
	recs := fixture(t, 128, 32)
	opts := liveOpts()
	opts.ManualCompaction = false
	opts.SealThreshold = 16
	x, err := Build(recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	a, b := &countingObserver{}, &countingObserver{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := recs[(i+w)%len(recs)]
				x.Query(q.Sig, q.Size, 0.5)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			x.SetObserver(a)
		} else {
			x.SetObserver(b)
		}
		if i%10 == 0 {
			x.SetObserver(nil)
		}
	}
	close(stop)
	wg.Wait()
}

// TestQueryTraceBreakdown checks the per-query trace mirrors the planner's
// decisions: segment counts partition into probed/range-pruned/bloom-pruned,
// buffer flags are set, and a repeat query reports its result-cache hit.
func TestQueryTraceBreakdown(t *testing.T) {
	recs := fixture(t, 96, 33)
	opts := liveOpts()
	opts.MaxSegments = 64 // no merging: keep several segments around
	x, err := Build(recs[:64], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// Two more sealed segments plus a non-empty buffer.
	for _, r := range recs[64:80] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	for _, r := range recs[80:88] {
		if _, err := x.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	q := recs[3]
	var tr QueryTrace
	ctx := WithQueryTrace(context.Background(), &tr)
	got, err := x.QueryContext(ctx, q.Sig, q.Size, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plain := x.Query(q.Sig, q.Size, 0.5)
	if len(got) != len(plain) {
		t.Fatalf("traced query returned %d keys, plain %d — tracing changed the answer", len(got), len(plain))
	}
	st := x.Stats()
	if tr.Segments != len(st.Segments) {
		t.Errorf("trace.Segments = %d, want %d", tr.Segments, len(st.Segments))
	}
	if tr.Buffered != st.Buffered {
		t.Errorf("trace.Buffered = %d, want %d", tr.Buffered, st.Buffered)
	}
	if sum := tr.SegmentsProbed + tr.SegmentsRangePruned + tr.SegmentsBloomPruned; sum != tr.Segments {
		t.Errorf("probed %d + range %d + bloom %d = %d, want every segment decided (%d)",
			tr.SegmentsProbed, tr.SegmentsRangePruned, tr.SegmentsBloomPruned, sum, tr.Segments)
	}
	if tr.ResultCacheHit {
		t.Error("first query reported a result-cache hit")
	}
	if !tr.BufferScanned && !tr.BufferBloomSkipped {
		t.Error("non-empty buffer but neither scanned nor bloom-skipped")
	}

	// Same query again: answered from the result cache, and the trace says
	// so without claiming any segment work.
	var tr2 QueryTrace
	if _, err := x.QueryContext(WithQueryTrace(context.Background(), &tr2), q.Sig, q.Size, 0.5); err != nil {
		t.Fatal(err)
	}
	if !tr2.ResultCacheHit {
		t.Error("repeat query did not report a result-cache hit")
	}
	if tr2.SegmentsProbed != 0 || tr2.BufferScanned {
		t.Errorf("cache-hit trace claims segment/buffer work: %+v", tr2)
	}
}
