// Package baseline implements the paper's "Baseline" comparator: a single
// dynamically tuned MinHash LSH over the whole corpus. It is exactly an LSH
// Ensemble with one partition — the containment threshold is converted to a
// Jaccard threshold with the *global* upper size bound, which is why its
// precision collapses as the size skew grows (Section 6.1).
package baseline

import (
	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
)

// Index is a single-partition MinHash LSH containment index.
type Index struct {
	inner *core.Index
}

// Build constructs the baseline over the records with m = numHash hash
// functions and forest depth rMax (defaults 256 and 8 when zero).
func Build(records []core.Record, numHash, rMax int) (*Index, error) {
	inner, err := core.Build(records, core.Options{
		NumHash:       numHash,
		RMax:          rMax,
		NumPartitions: 1,
	})
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// Query returns the keys of candidate domains for the query signature at
// containment threshold tStar. The baseline is built once and never grows,
// so the wrapped index can never be dirty and the error is always nil.
func (x *Index) Query(sig minhash.Signature, querySize int, tStar float64) []string {
	res, _ := x.inner.Query(sig, querySize, tStar)
	return res
}

// Len returns the number of indexed domains.
func (x *Index) Len() int { return x.inner.Len() }

// UpperBound returns the global size upper bound used for threshold
// conversion.
func (x *Index) UpperBound() int {
	b := x.inner.PartitionBounds()
	return b[len(b)-1].Upper
}
