package baseline

import (
	"fmt"
	"testing"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/xrand"
)

func makeRecords(n int, h *minhash.Hasher, seed uint64) ([]core.Record, [][]uint64) {
	rng := xrand.New(seed)
	recs := make([]core.Record, n)
	vals := make([][]uint64, n)
	for i := range recs {
		size := rng.Pareto(2.0, 10, 2000)
		v := make([]uint64, size)
		for j := range v {
			v[j] = uint64(j) // heavy overlap: prefix structure
		}
		vals[i] = v
		hashed := make([]uint64, size)
		for j := range v {
			hashed[j] = minhash.HashUint64(v[j])
		}
		recs[i] = core.Record{Key: fmt.Sprintf("b%03d", i), Size: size, Sig: h.Sketch(hashed)}
	}
	return recs, vals
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, 64, 4); err == nil {
		t.Fatal("empty build accepted")
	}
}

func TestSelfRetrieval(t *testing.T) {
	h := minhash.NewHasher(128, 1)
	recs, _ := makeRecords(100, h, 2)
	x, err := Build(recs, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 100 {
		t.Fatalf("Len = %d", x.Len())
	}
	for i := 0; i < 20; i++ {
		r := recs[i*5]
		found := false
		for _, k := range x.Query(r.Sig, r.Size, 0.5) {
			if k == r.Key {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %s not self-retrieved", r.Key)
		}
	}
}

func TestUpperBoundIsGlobalMax(t *testing.T) {
	h := minhash.NewHasher(64, 1)
	recs, _ := makeRecords(200, h, 3)
	max := 0
	for _, r := range recs {
		if r.Size > max {
			max = r.Size
		}
	}
	x, err := Build(recs, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.UpperBound(); got != max {
		t.Fatalf("UpperBound = %d, want %d", got, max)
	}
}

func TestBaselineRecallHigh(t *testing.T) {
	// The baseline's conservative conversion keeps recall high even though
	// precision suffers — verify the recall half on a prefix corpus where
	// ground truth is analytic: domain j contains domain i iff
	// size_j >= size_i (all domains are prefixes of the same sequence).
	h := minhash.NewHasher(256, 1)
	recs, vals := makeRecords(150, h, 4)
	x, err := Build(recs, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	const tStar = 0.6
	truth, hit := 0, 0
	for qi := 0; qi < 30; qi++ {
		q := recs[qi*3]
		got := map[string]bool{}
		for _, k := range x.Query(q.Sig, q.Size, tStar) {
			got[k] = true
		}
		for xi, r := range recs {
			// containment of q in r = min(sizes)/|q| by prefix structure
			c := float64(min(len(vals[qi*3]), len(vals[xi]))) / float64(len(vals[qi*3]))
			if c >= tStar {
				truth++
				if got[r.Key] {
					hit++
				}
			}
		}
	}
	if truth == 0 {
		t.Fatal("degenerate workload")
	}
	if recall := float64(hit) / float64(truth); recall < 0.85 {
		t.Fatalf("baseline recall %v too low", recall)
	}
}
