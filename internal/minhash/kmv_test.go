package minhash

import (
	"math"
	"testing"

	"lshensemble/internal/xrand"
)

// kmvOver sketches the integers [lo, hi) — the ground-truth sets the
// closed-form checks compare against.
func kmvOver(k int, lo, hi uint64) *KMV {
	s := NewKMV(k)
	for v := lo; v < hi; v++ {
		s.PushUint64(v)
	}
	return s
}

// TestKMVExactBelowK: a sketch that never filled holds the complete distinct
// hash set, so every estimator is exact.
func TestKMVExactBelowK(t *testing.T) {
	a := kmvOver(256, 0, 100)  // {0..99}
	b := kmvOver(256, 50, 150) // {50..149}, overlap 50
	if got := a.Cardinality(); got != 100 {
		t.Fatalf("Cardinality = %v, want exactly 100", got)
	}
	if got := a.Intersection(b); got != 50 {
		t.Fatalf("Intersection = %v, want exactly 50", got)
	}
	if got := a.Union(b); got != 150 {
		t.Fatalf("Union = %v, want exactly 150", got)
	}
	if got := a.Jaccard(b); got != 50.0/150.0 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if got := a.Containment(b); got != 0.5 {
		t.Fatalf("Containment = %v, want exactly 0.5", got)
	}
	if got := b.Containment(a); got != 0.5 {
		t.Fatalf("reverse Containment = %v, want exactly 0.5", got)
	}
}

// TestKMVDuplicatesIgnored: pushing a value twice must not change anything —
// the sketch is over distinct values.
func TestKMVDuplicatesIgnored(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 10; i++ {
		s.PushUint64(7)
		s.PushString("x")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after duplicate pushes, want 2", s.Len())
	}
	if s.Cardinality() != 2 {
		t.Fatalf("Cardinality = %v, want exactly 2", s.Cardinality())
	}
}

// TestKMVCardinalityEstimate: the (k−1)/U(k) estimator on uniform hashed
// data must land within a few standard errors (σ ≈ n/√(k−2)).
func TestKMVCardinalityEstimate(t *testing.T) {
	for _, tc := range []struct {
		k, n int
	}{
		{128, 10000},
		{256, 10000},
		{512, 100000},
	} {
		s := kmvOver(tc.k, 0, uint64(tc.n))
		got := s.Cardinality()
		tol := 4 * float64(tc.n) / math.Sqrt(float64(tc.k-2))
		if math.Abs(got-float64(tc.n)) > tol {
			t.Errorf("k=%d n=%d: Cardinality = %.0f, want %d ± %.0f", tc.k, tc.n, got, tc.n, tol)
		}
	}
}

// TestKMVContainmentEstimate sweeps true containment levels and checks the
// asymmetric estimator against ground truth on overlapping integer ranges.
func TestKMVContainmentEstimate(t *testing.T) {
	const k, n = 512, 20000
	for _, trueT := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		overlap := uint64(trueT * n)
		q := kmvOver(k, 0, n)
		x := kmvOver(k, n-overlap, 2*n-overlap) // |Q∩X| = overlap, |X| = n
		got := q.Containment(x)
		// ρ is a hypergeometric proportion over k draws; 4σ with σ ≈ 1/√k
		// plus the union-cardinality noise comfortably bounds it.
		tol := 4 / math.Sqrt(k)
		if math.Abs(got-trueT) > tol+0.02 {
			t.Errorf("true containment %.2f: estimate %.3f (tol %.3f)", trueT, got, tol+0.02)
		}
	}
}

// TestKMVMergeIsUnion: merging two sketches must equal sketching the union
// directly — same kept values, bit for bit.
func TestKMVMergeIsUnion(t *testing.T) {
	a := kmvOver(128, 0, 5000)
	b := kmvOver(128, 2500, 7500)
	u := kmvOver(128, 0, 7500)
	a.Merge(b)
	av, uv := a.Values(), u.Values()
	if len(av) != len(uv) {
		t.Fatalf("merged kept %d values, direct union kept %d", len(av), len(uv))
	}
	for i := range av {
		if av[i] != uv[i] {
			t.Fatalf("value %d: merged %d != direct %d", i, av[i], uv[i])
		}
	}
}

// TestKMVEncodeDecodeRoundTrip: AppendBinary → DecodeKMV is the identity,
// and the decoded sketch keeps estimating.
func TestKMVEncodeDecodeRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	s := NewKMV(64)
	for i := 0; i < 1000; i++ {
		s.PushUint64(rng.Uint64())
	}
	buf := s.AppendBinary(nil)
	d, rest, err := DecodeKMV(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if d.K() != s.K() || d.Len() != s.Len() {
		t.Fatalf("decoded (k=%d, n=%d), want (k=%d, n=%d)", d.K(), d.Len(), s.K(), s.Len())
	}
	dv, sv := d.Values(), s.Values()
	for i := range sv {
		if dv[i] != sv[i] {
			t.Fatalf("value %d: %d != %d", i, dv[i], sv[i])
		}
	}
	if d.Cardinality() != s.Cardinality() {
		t.Fatalf("decoded cardinality %v != %v", d.Cardinality(), s.Cardinality())
	}
}

// TestKMVDecodeRejectsCorrupt: hostile encodings must error, never panic or
// build an inconsistent sketch.
func TestKMVDecodeRejectsCorrupt(t *testing.T) {
	good := kmvOver(16, 0, 100).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:6],
		"truncated body": good[:len(good)-3],
		"k zero":         append([]byte{0, 0, 0, 0}, good[4:]...),
		"n beyond k":     append([]byte{1, 0, 0, 0}, good[4:]...),
	}
	// Descending values.
	desc := append([]byte(nil), good...)
	copy(desc[8:16], good[16:24])
	copy(desc[16:24], good[8:16])
	cases["descending values"] = desc
	// Value at/above the base-hash range.
	big := append([]byte(nil), good...)
	for i := 0; i < 8; i++ {
		big[len(big)-8+i] = 0xff
	}
	cases["value out of range"] = big
	for name, buf := range cases {
		if _, _, err := DecodeKMV(buf); err == nil {
			t.Errorf("%s: corrupt encoding accepted", name)
		}
	}
}
