package minhash

import (
	"bytes"
	"testing"
)

// FuzzDecodeSignature hammers the signature decoder with hostile bytes: it
// must never panic or over-allocate, and anything it accepts must re-encode
// to the exact input it consumed (decode ∘ encode = identity on the accepted
// language).
func FuzzDecodeSignature(f *testing.F) {
	h := NewHasher(16, 1)
	sig := h.NewSignature()
	for i := uint64(0); i < 40; i++ {
		h.PushHashed(sig, HashUint64(i))
	}
	f.Add(sig.AppendBinary(nil))
	f.Add(h.NewSignature().AppendBinary(nil)) // all-Empty signature
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rest, err := DecodeSignature(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		re := s.AppendBinary(nil)
		if consumed := data[:len(data)-len(rest)]; !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode mismatch: %d bytes vs %d consumed", len(re), len(consumed))
		}
	})
}

// FuzzDecodeKMV: every accepted KMV encoding must satisfy the sketch's
// invariants (n ≤ k, strictly ascending values under MersennePrime) and
// round-trip bit-exactly; estimators on it must return finite, sane values.
func FuzzDecodeKMV(f *testing.F) {
	s := NewKMV(8)
	for i := uint64(0); i < 100; i++ {
		s.PushUint64(i)
	}
	f.Add(s.AppendBinary(nil))
	f.Add(NewKMV(3).AppendBinary(nil)) // empty sketch
	f.Add([]byte{})
	f.Add([]byte{8, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, rest, err := DecodeKMV(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew")
		}
		if d.Len() > d.K() {
			t.Fatalf("decoded n %d > k %d", d.Len(), d.K())
		}
		vals := d.Values()
		for i, v := range vals {
			if v >= MersennePrime {
				t.Fatalf("value %d out of hash range", v)
			}
			if i > 0 && vals[i-1] >= v {
				t.Fatalf("values not strictly ascending at %d", i)
			}
		}
		if c := d.Cardinality(); c < 0 || c != c {
			t.Fatalf("cardinality %v", c)
		}
		if j := d.Jaccard(d); d.Len() > 0 && j != 1 {
			t.Fatalf("self-Jaccard %v", j)
		}
		re := d.AppendBinary(nil)
		if consumed := data[:len(data)-len(rest)]; !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
