package minhash

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"lshensemble/internal/xrand"
)

func TestMulAddMod61Small(t *testing.T) {
	cases := []struct{ a, v, b, want uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1, 1, 1, 2},
		{2, 3, 4, 10},
		{MersennePrime - 1, 1, 0, MersennePrime - 1},
		{MersennePrime - 1, 1, 1, 0},
		{MersennePrime - 1, 2, 0, MersennePrime - 2},
	}
	for _, c := range cases {
		if got := mulAddMod61(c.a, c.v, c.b); got != c.want {
			t.Errorf("mulAddMod61(%d,%d,%d) = %d, want %d", c.a, c.v, c.b, got, c.want)
		}
	}
}

func TestMulAddMod61MatchesBigArithmetic(t *testing.T) {
	// Property: result agrees with the definition computed via 128-bit
	// arithmetic emulated with math/big-free modular steps.
	f := func(a, v, b uint64) bool {
		a %= MersennePrime
		v %= MersennePrime
		b %= MersennePrime
		got := mulAddMod61(a, v, b)
		// Compute (a*v + b) mod p by splitting v into 30-bit halves:
		// a*v = a*vHi*2^31 + a*vLo, each term < 2^92 — still too big, so
		// reduce step by step with 61+31 < 92... use double-and-add instead.
		want := uint64(0)
		x := a
		y := v
		for y > 0 {
			if y&1 == 1 {
				want = addMod(want, x)
			}
			x = addMod(x, x)
			y >>= 1
		}
		want = addMod(want, b)
		return got == want && got < MersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func addMod(a, b uint64) uint64 {
	s := a + b // a,b < 2^61 so no overflow
	if s >= MersennePrime {
		s -= MersennePrime
	}
	return s
}

func TestHashBytesBelowPrime(t *testing.T) {
	f := func(v []byte) bool {
		return HashBytes(v) < MersennePrime
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashStringMatchesHashBytes(t *testing.T) {
	f := func(s string) bool {
		return HashString(s) == HashBytes([]byte(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasherDeterministic(t *testing.T) {
	h1 := NewHasher(64, 42)
	h2 := NewHasher(64, 42)
	s1 := h1.SketchStrings([]string{"a", "b", "c"})
	s2 := h2.SketchStrings([]string{"c", "a", "b"}) // order must not matter
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("slot %d differs: %d vs %d", i, s1[i], s2[i])
		}
	}
}

func TestEmptySignature(t *testing.T) {
	h := NewHasher(16, 1)
	s := h.NewSignature()
	if !s.IsEmpty() {
		t.Fatal("fresh signature should be empty")
	}
	if got := s.Cardinality(); got != 0 {
		t.Fatalf("empty cardinality = %v, want 0", got)
	}
	h.PushString(s, "x")
	if s.IsEmpty() {
		t.Fatal("signature with one value should not be empty")
	}
}

func TestJaccardIdentical(t *testing.T) {
	h := NewHasher(128, 7)
	s := h.SketchStrings([]string{"a", "b", "c", "d"})
	if got := s.Jaccard(s); got != 1.0 {
		t.Fatalf("self Jaccard = %v, want 1", got)
	}
}

func TestJaccardDisjoint(t *testing.T) {
	h := NewHasher(256, 7)
	a := h.SketchStrings([]string{"a1", "a2", "a3", "a4", "a5"})
	b := h.SketchStrings([]string{"b1", "b2", "b3", "b4", "b5"})
	if got := a.Jaccard(b); got > 0.05 {
		t.Fatalf("disjoint Jaccard = %v, want ~0", got)
	}
}

// TestJaccardEstimateAccuracy checks Broder's identity: the expected
// fraction of colliding slots equals the true Jaccard similarity.
func TestJaccardEstimateAccuracy(t *testing.T) {
	h := NewHasher(512, 99)
	for _, tc := range []struct {
		shared, onlyA, onlyB int
	}{
		{50, 50, 50},   // J = 50/150 = 0.333
		{90, 10, 0},    // J = 0.9
		{10, 90, 900},  // J = 0.01
		{100, 0, 0},    // J = 1
		{25, 25, 1000}, // J ≈ 0.0238
	} {
		a := h.NewSignature()
		b := h.NewSignature()
		for i := 0; i < tc.shared; i++ {
			v := fmt.Sprintf("shared-%d", i)
			h.PushString(a, v)
			h.PushString(b, v)
		}
		for i := 0; i < tc.onlyA; i++ {
			h.PushString(a, fmt.Sprintf("a-%d", i))
		}
		for i := 0; i < tc.onlyB; i++ {
			h.PushString(b, fmt.Sprintf("b-%d", i))
		}
		truth := float64(tc.shared) / float64(tc.shared+tc.onlyA+tc.onlyB)
		got := a.Jaccard(b)
		// 512 hashes → stderr = sqrt(J(1-J)/512) <= 0.0221; allow 4 sigma.
		if math.Abs(got-truth) > 4*math.Sqrt(truth*(1-truth)/512)+0.01 {
			t.Errorf("case %+v: Jaccard estimate %v, truth %v", tc, got, truth)
		}
	}
}

func TestCardinalityEstimate(t *testing.T) {
	h := NewHasher(512, 3)
	for _, n := range []int{1, 10, 100, 1000, 20000} {
		sig := h.NewSignature()
		for i := 0; i < n; i++ {
			h.PushHashed(sig, HashUint64(uint64(i)+1e9))
		}
		got := sig.Cardinality()
		// Relative error of the estimator is ~1/sqrt(m) ≈ 4.4%; allow 20%.
		if math.Abs(got-float64(n)) > 0.2*float64(n)+2 {
			t.Errorf("Cardinality for n=%d: got %v", n, got)
		}
	}
}

func TestMergeIsUnion(t *testing.T) {
	h := NewHasher(128, 5)
	a := h.SketchStrings([]string{"x", "y"})
	b := h.SketchStrings([]string{"y", "z"})
	u := h.SketchStrings([]string{"x", "y", "z"})
	a.Merge(b)
	for i := range a {
		if a[i] != u[i] {
			t.Fatalf("merge != union sketch at slot %d", i)
		}
	}
}

func TestMergeProperty(t *testing.T) {
	// Property: sketch(A ∪ B) == merge(sketch(A), sketch(B)) for random sets.
	h := NewHasher(64, 77)
	f := func(av, bv []uint64) bool {
		a := h.NewSignature()
		b := h.NewSignature()
		u := h.NewSignature()
		for _, v := range av {
			hv := HashUint64(v)
			h.PushHashed(a, hv)
			h.PushHashed(u, hv)
		}
		for _, v := range bv {
			hv := HashUint64(v)
			h.PushHashed(b, hv)
			h.PushHashed(u, hv)
		}
		m := a.Clone()
		m.Merge(b)
		for i := range m {
			if m[i] != u[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestContainmentEstimate(t *testing.T) {
	h := NewHasher(512, 123)
	// Q of size 100 fully contained in X of size 1000.
	q := h.NewSignature()
	x := h.NewSignature()
	for i := 0; i < 1000; i++ {
		hv := HashUint64(uint64(i))
		h.PushHashed(x, hv)
		if i < 100 {
			h.PushHashed(q, hv)
		}
	}
	got := q.Containment(x, 100, 1000)
	if got < 0.8 || got > 1.0 {
		t.Fatalf("containment estimate %v, want ~1", got)
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	h := NewHasher(32, 9)
	s := h.SketchStrings([]string{"alpha", "beta", "gamma"})
	buf := s.AppendBinary(nil)
	got, rest, err := DecodeSignature(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("unexpected trailing bytes: %d", len(rest))
	}
	for i := range s {
		if s[i] != got[i] {
			t.Fatalf("slot %d mismatch after round trip", i)
		}
	}
}

func TestSignatureRoundTripProperty(t *testing.T) {
	f := func(vals []uint64, suffix []byte) bool {
		s := make(Signature, len(vals))
		copy(s, vals)
		buf := s.AppendBinary(nil)
		buf = append(buf, suffix...)
		got, rest, err := DecodeSignature(buf)
		if err != nil {
			return false
		}
		if len(rest) != len(suffix) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeSignature([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer should fail")
	}
	// Length prefix claims more slots than the buffer holds.
	buf := Signature{1, 2, 3}.AppendBinary(nil)
	if _, _, err := DecodeSignature(buf[:len(buf)-8]); err == nil {
		t.Fatal("truncated buffer should fail")
	}
}

func TestNewHasherPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHasher(0) did not panic")
		}
	}()
	NewHasher(0, 1)
}

func TestJaccardPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Jaccard did not panic")
		}
	}()
	Signature{1}.Jaccard(Signature{1, 2})
}

func TestPermutationsDistinct(t *testing.T) {
	// Different slots should apply different permutations: hashing one value
	// should rarely give equal slot values.
	h := NewHasher(256, 55)
	s := h.NewSignature()
	h.PushHashed(s, HashUint64(42))
	seen := map[uint64]int{}
	for _, v := range s {
		seen[v]++
	}
	if len(seen) < 250 {
		t.Fatalf("only %d distinct slot values out of 256", len(seen))
	}
}

func TestHashUint64Distribution(t *testing.T) {
	// Mean of normalized hashes should be ~0.5.
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(HashUint64(uint64(i))) / float64(MersennePrime)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("HashUint64 mean %v, want ~0.5", mean)
	}
}

var sinkSig Signature

func BenchmarkPush(b *testing.B) {
	h := NewHasher(256, 1)
	sig := h.NewSignature()
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PushHashed(sig, rng.Uint64()%MersennePrime)
	}
	sinkSig = sig
}

func BenchmarkJaccard(b *testing.B) {
	h := NewHasher(256, 1)
	s1 := h.SketchStrings([]string{"a", "b", "c"})
	s2 := h.SketchStrings([]string{"b", "c", "d"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s1.Jaccard(s2)
	}
}

func TestSketchParallelMatchesSerial(t *testing.T) {
	h := NewHasher(128, 5)
	for _, n := range []int{0, 1, 100, parallelSketchMinShard - 1, parallelSketchMinShard * 3, 10000} {
		hvs := make([]uint64, n)
		for i := range hvs {
			hvs[i] = HashUint64(uint64(i * 31))
		}
		want := h.Sketch(hvs)
		for _, workers := range []int{0, 1, 2, 7, 32} {
			got := h.SketchParallel(hvs, workers)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: signature length %d != %d", n, workers, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("n=%d workers=%d: slot %d differs", n, workers, k)
				}
			}
		}
	}
}
