// Package minhash implements minwise hashing (Broder 1997) for estimating
// Jaccard similarity and set cardinality from fixed-size signatures.
//
// A domain (a set of values) is summarized by a Signature of m 64-bit
// values, where the i-th slot holds the minimum of the i-th hash permutation
// over the domain. Two signatures produced by the same Hasher can estimate
// the Jaccard similarity of the underlying domains as the fraction of
// agreeing slots (Broder's collision probability identity, paper Eq. 4), and
// a single signature estimates the domain cardinality from the mean of its
// normalized minima (Cohen & Kaplan, bottom-k style).
package minhash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"runtime"

	"lshensemble/internal/par"
	"lshensemble/internal/xrand"
)

// MersennePrime is 2^61 - 1, the modulus of the universal hash family used
// for the permutations. Every signature slot holds a value in [0, MersennePrime);
// the value MersennePrime itself is reserved as the "empty" sentinel.
const MersennePrime uint64 = (1 << 61) - 1

// Empty is the sentinel stored in the slots of a signature over the empty
// domain. It is never produced by a hash permutation.
const Empty uint64 = MersennePrime

// Hasher holds a family of m universal hash permutations
// h_i(v) = (a_i * v + b_i) mod (2^61 - 1) with a_i in [1, p) and b_i in
// [0, p). All signatures meant to be compared must come from Hashers
// constructed with identical (m, seed).
type Hasher struct {
	a, b []uint64
	seed uint64
}

// NewHasher constructs a family of numHash permutations derived
// deterministically from seed. numHash must be positive.
func NewHasher(numHash int, seed uint64) *Hasher {
	if numHash <= 0 {
		panic("minhash: NewHasher requires numHash > 0")
	}
	rng := xrand.New(seed)
	h := &Hasher{
		a:    make([]uint64, numHash),
		b:    make([]uint64, numHash),
		seed: seed,
	}
	for i := 0; i < numHash; i++ {
		h.a[i] = rng.Uint64()%(MersennePrime-1) + 1 // [1, p)
		h.b[i] = rng.Uint64() % MersennePrime       // [0, p)
	}
	return h
}

// NumHash returns the number of permutations (signature length).
func (h *Hasher) NumHash() int { return len(h.a) }

// Seed returns the seed the family was derived from.
func (h *Hasher) Seed() uint64 { return h.seed }

// Signature is a MinHash sketch: m slot minima, each in [0, MersennePrime],
// where a slot equal to Empty means no value has been pushed.
type Signature []uint64

// NewSignature returns an empty signature with every slot set to Empty.
func (h *Hasher) NewSignature() Signature {
	s := make(Signature, len(h.a))
	for i := range s {
		s[i] = Empty
	}
	return s
}

// mulAddMod61 computes (a*v + b) mod (2^61 - 1) for a, v, b < 2^61.
func mulAddMod61(a, v, b uint64) uint64 {
	hi, lo := bits.Mul64(a, v)
	// a*v = hi*2^64 + lo. Since 2^61 ≡ 1 (mod p), 2^64 ≡ 8 (mod p), so
	// a*v ≡ hi*8 + lo (mod p). hi < 2^58 so hi*8 cannot overflow.
	sum, carry := bits.Add64(hi<<3, lo, 0)
	sum += carry * 8 // 2^64 ≡ 8 (mod p) again; carry is 0 or 1
	// Fold the (at most) 64-bit sum into [0, 2p).
	sum = (sum >> 61) + (sum & MersennePrime)
	if sum >= MersennePrime {
		sum -= MersennePrime
	}
	// Add b, reduce once more.
	sum += b
	if sum >= MersennePrime {
		sum -= MersennePrime
	}
	return sum
}

// HashBytes maps a raw value to a well-distributed 64-bit integer below
// MersennePrime. It is the base hash shared by every permutation; it is also
// used by the exact engine so that both see the same value identity.
func HashBytes(v []byte) uint64 {
	// FNV-1a 64-bit, then a splitmix64 finalizer to break FNV's weak
	// avalanche on short keys.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, c := range v {
		h ^= uint64(c)
		h *= prime64
	}
	return xrand.Mix(h) % MersennePrime
}

// HashString is HashBytes for a string without forcing an allocation at the
// call site.
func HashString(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return xrand.Mix(h) % MersennePrime
}

// HashUint64 maps an integer-valued domain element to the base hash space.
// Synthetic corpora use integer value identifiers; this avoids formatting
// them as strings.
func HashUint64(v uint64) uint64 {
	return xrand.Mix(v) % MersennePrime
}

// PushHashed folds an already base-hashed value into the signature. The
// inner loop is unrolled four permutations at a time: the four mulAddMod61
// chains are independent, so the CPU can overlap their multiply latencies.
func (h *Hasher) PushHashed(sig Signature, hv uint64) {
	a, b := h.a, h.b
	sig = sig[:len(a)]
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x0 := mulAddMod61(a[i], hv, b[i])
		x1 := mulAddMod61(a[i+1], hv, b[i+1])
		x2 := mulAddMod61(a[i+2], hv, b[i+2])
		x3 := mulAddMod61(a[i+3], hv, b[i+3])
		if x0 < sig[i] {
			sig[i] = x0
		}
		if x1 < sig[i+1] {
			sig[i+1] = x1
		}
		if x2 < sig[i+2] {
			sig[i+2] = x2
		}
		if x3 < sig[i+3] {
			sig[i+3] = x3
		}
	}
	for ; i < len(a); i++ {
		x := mulAddMod61(a[i], hv, b[i])
		if x < sig[i] {
			sig[i] = x
		}
	}
}

// sketchBlockSize bounds the number of base hashes the permutation-major
// inner loops stream over at once. 256 values (2 KiB) stay resident in L1
// across all permutations.
const sketchBlockSize = 256

// PushHashedBlock folds a block of already base-hashed values into the
// signature. It runs permutation-major over L1-sized chunks: for each
// permutation the (a_i, b_i) pair stays in registers while the chunk streams
// through the cache once per four permutations, and the slot minimum is
// written back once per permutation instead of once per value. This is the
// batched path corpus sketching should use.
func (h *Hasher) PushHashedBlock(sig Signature, hvs []uint64) {
	for len(hvs) > sketchBlockSize {
		h.pushHashedChunk(sig, hvs[:sketchBlockSize])
		hvs = hvs[sketchBlockSize:]
	}
	h.pushHashedChunk(sig, hvs)
}

func (h *Hasher) pushHashedChunk(sig Signature, hvs []uint64) {
	ha, hb := h.a, h.b
	sig = sig[:len(ha)]
	hb = hb[:len(ha)]
	i := 0
	for ; i+4 <= len(ha); i += 4 {
		a0, b0 := ha[i], hb[i]
		a1, b1 := ha[i+1], hb[i+1]
		a2, b2 := ha[i+2], hb[i+2]
		a3, b3 := ha[i+3], hb[i+3]
		m0, m1, m2, m3 := sig[i], sig[i+1], sig[i+2], sig[i+3]
		for _, hv := range hvs {
			if x := mulAddMod61(a0, hv, b0); x < m0 {
				m0 = x
			}
			if x := mulAddMod61(a1, hv, b1); x < m1 {
				m1 = x
			}
			if x := mulAddMod61(a2, hv, b2); x < m2 {
				m2 = x
			}
			if x := mulAddMod61(a3, hv, b3); x < m3 {
				m3 = x
			}
		}
		sig[i], sig[i+1], sig[i+2], sig[i+3] = m0, m1, m2, m3
	}
	for ; i < len(ha); i++ {
		a, b := ha[i], hb[i]
		m := sig[i]
		for _, hv := range hvs {
			if x := mulAddMod61(a, hv, b); x < m {
				m = x
			}
		}
		sig[i] = m
	}
}

// Push folds a raw byte value into the signature.
func (h *Hasher) Push(sig Signature, v []byte) {
	h.PushHashed(sig, HashBytes(v))
}

// PushString folds a string value into the signature.
func (h *Hasher) PushString(sig Signature, s string) {
	h.PushHashed(sig, HashString(s))
}

// Sketch builds a signature over a slice of already base-hashed values.
func (h *Hasher) Sketch(hashedValues []uint64) Signature {
	sig := h.NewSignature()
	h.PushHashedBlock(sig, hashedValues)
	return sig
}

// parallelSketchMinShard is the smallest per-worker shard worth a goroutine:
// below ~4 blocks per worker the fan-out/merge overhead exceeds the win.
const parallelSketchMinShard = 4 * sketchBlockSize

// SketchParallel builds a signature over a slice of already base-hashed
// values with up to `workers` goroutines (0 means GOMAXPROCS). Each worker
// folds a contiguous shard through PushHashedBlock into its own signature
// and the shard signatures are merged slot-wise at the end — exact, because
// the minimum over a union of shards is the minimum of the shard minima.
// Small inputs fall back to the serial path.
func (h *Hasher) SketchParallel(hashedValues []uint64, workers int) Signature {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := len(hashedValues) / parallelSketchMinShard; workers > max {
		workers = max
	}
	if workers <= 1 {
		return h.Sketch(hashedValues)
	}
	sigs := make([]Signature, workers)
	shards := par.Chunked(len(hashedValues), workers, func(w, lo, hi int) {
		sigs[w] = h.Sketch(hashedValues[lo:hi])
	})
	out := sigs[0]
	for _, s := range sigs[1:shards] {
		out.Merge(s)
	}
	return out
}

// SketchStrings builds a signature over a slice of string values.
func (h *Hasher) SketchStrings(values []string) Signature {
	sig := h.NewSignature()
	var block [sketchBlockSize]uint64
	n := 0
	for _, v := range values {
		block[n] = HashString(v)
		n++
		if n == len(block) {
			h.PushHashedBlock(sig, block[:])
			n = 0
		}
	}
	h.PushHashedBlock(sig, block[:n])
	return sig
}

// SketchUint64s builds a signature over a slice of integer-valued domain
// elements (base-hashed with HashUint64), batching through the block path.
func (h *Hasher) SketchUint64s(values []uint64) Signature {
	sig := h.NewSignature()
	var block [sketchBlockSize]uint64
	for len(values) > 0 {
		m := len(values)
		if m > len(block) {
			m = len(block)
		}
		for j := 0; j < m; j++ {
			block[j] = HashUint64(values[j])
		}
		h.PushHashedBlock(sig, block[:m])
		values = values[m:]
	}
	return sig
}

// Jaccard estimates the Jaccard similarity between the domains underlying s
// and o as the fraction of agreeing slots. The signatures must have equal
// length (same Hasher); it panics otherwise.
func (s Signature) Jaccard(o Signature) float64 {
	if len(s) != len(o) {
		panic(fmt.Sprintf("minhash: signature length mismatch %d vs %d", len(s), len(o)))
	}
	if len(s) == 0 {
		return 0
	}
	eq := 0
	for i := range s {
		if s[i] == o[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(s))
}

// Containment estimates the set containment t(Q, X) = |Q∩X|/|Q| of the
// query domain (s, with cardinality q) in the other domain (o, with
// cardinality x) by converting the estimated Jaccard similarity through the
// inclusion-exclusion identity (paper Eq. 6). Cardinalities must be positive.
func (s Signature) Containment(o Signature, q, x float64) float64 {
	j := s.Jaccard(o)
	if q <= 0 {
		return 0
	}
	t := (x/q + 1) * j / (1 + j)
	if t > 1 {
		t = 1
	}
	return t
}

// Merge sets s to the slot-wise minimum of s and o, which is the signature
// of the union of the underlying domains. The signatures must come from the
// same Hasher.
func (s Signature) Merge(o Signature) {
	if len(s) != len(o) {
		panic(fmt.Sprintf("minhash: signature length mismatch %d vs %d", len(s), len(o)))
	}
	for i := range s {
		if o[i] < s[i] {
			s[i] = o[i]
		}
	}
}

// Clone returns a copy of the signature.
func (s Signature) Clone() Signature {
	c := make(Signature, len(s))
	copy(c, s)
	return c
}

// IsEmpty reports whether no value has ever been pushed into s.
func (s Signature) IsEmpty() bool {
	for _, v := range s {
		if v != Empty {
			return false
		}
	}
	return true
}

// Cardinality estimates the number of distinct values in the underlying
// domain. With x distinct values, each slot minimum normalized to [0,1] has
// expectation 1/(x+1); the estimator inverts the mean of the normalized
// minima: x̂ = m / Σ(v_i/p) − 1. Returns 0 for an empty signature.
func (s Signature) Cardinality() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		if v == Empty {
			return 0 // any Empty slot implies the domain is empty
		}
		sum += float64(v) / float64(MersennePrime)
	}
	if sum <= 0 {
		return 0
	}
	est := float64(len(s))/sum - 1
	if est < 1 {
		est = 1
	}
	return est
}

// AppendBinary appends the signature's binary encoding (little-endian
// uint64 count followed by the slots) to buf and returns the result.
func (s Signature) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s)))
	for _, v := range s {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

// ErrCorrupt is returned when decoding malformed signature bytes.
var ErrCorrupt = errors.New("minhash: corrupt signature encoding")

// DecodeSignature decodes a signature produced by AppendBinary from the
// front of buf, returning the signature and the remaining bytes.
func DecodeSignature(buf []byte) (Signature, []byte, error) {
	if len(buf) < 8 {
		return nil, buf, ErrCorrupt
	}
	n := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if n > uint64(len(buf))/8 {
		return nil, buf, ErrCorrupt
	}
	s := make(Signature, n)
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
	}
	return s, buf, nil
}
