package minhash

import (
	"encoding/binary"
	"sort"
)

// KMV is a k-minimum-values sketch (Beyer et al., SIGMOD 2007): the k
// smallest distinct base-hash values of a domain. Where a MinHash signature
// spends one permutation per slot, KMV keeps order statistics of a single
// hash, making it the compact choice for cardinality-aware set operations:
// distinct-value count, intersection and union sizes, and from them a
// containment estimate that knows both cardinalities instead of routing
// through the Jaccard-only identity.
//
// KMV supports no banding (its values carry no per-permutation alignment),
// so it cannot back an LSH index — core rejects it as an index store. It
// serves the exact/asymmetric evaluation path (internal/expt) as a
// brute-force scorer on the accuracy-vs-bytes frontier.
//
// A sketch that has seen fewer than k distinct hashes holds its domain's
// complete hash set, and every estimate degenerates to the exact count.
type KMV struct {
	k int
	// heap is a max-heap of the kept values: the root is the largest kept
	// hash, so a smaller incoming value evicts it in O(log k).
	heap []uint64
	set  map[uint64]struct{}
}

// NewKMV returns an empty sketch keeping the k smallest distinct hashes.
// k must be positive.
func NewKMV(k int) *KMV {
	if k <= 0 {
		panic("minhash: NewKMV requires k > 0")
	}
	return &KMV{k: k, set: make(map[uint64]struct{}, k)}
}

// K returns the sketch parameter.
func (s *KMV) K() int { return s.k }

// Len returns the number of values currently kept (≤ K).
func (s *KMV) Len() int { return len(s.heap) }

// PushHashed folds one base-hashed value (HashBytes/HashString/HashUint64 —
// the same hash space the MinHash permutations consume) into the sketch.
func (s *KMV) PushHashed(hv uint64) {
	if _, dup := s.set[hv]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.set[hv] = struct{}{}
		s.heap = append(s.heap, hv)
		s.siftUp(len(s.heap) - 1)
		return
	}
	if hv >= s.heap[0] {
		return
	}
	delete(s.set, s.heap[0])
	s.set[hv] = struct{}{}
	s.heap[0] = hv
	s.siftDown(0)
}

// Push folds a raw byte value into the sketch.
func (s *KMV) Push(v []byte) { s.PushHashed(HashBytes(v)) }

// PushString folds a string value into the sketch.
func (s *KMV) PushString(v string) { s.PushHashed(HashString(v)) }

// PushUint64 folds an integer-valued domain element into the sketch.
func (s *KMV) PushUint64(v uint64) { s.PushHashed(HashUint64(v)) }

func (s *KMV) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p] >= s.heap[i] {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *KMV) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.heap[l] > s.heap[m] {
			m = l
		}
		if r < n && s.heap[r] > s.heap[m] {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

// Merge folds every value of o into s, making s the sketch of the union of
// the underlying domains. The sketches must share the same base-hash space
// (they always do — the package has one); k may differ, s keeps its own.
func (s *KMV) Merge(o *KMV) {
	for _, v := range o.heap {
		s.PushHashed(v)
	}
}

// Clone returns a deep copy.
func (s *KMV) Clone() *KMV {
	c := &KMV{k: s.k, heap: append([]uint64(nil), s.heap...), set: make(map[uint64]struct{}, len(s.set))}
	for v := range s.set {
		c.set[v] = struct{}{}
	}
	return c
}

// Contains reports whether the sketch kept the given hash value.
func (s *KMV) Contains(hv uint64) bool {
	_, ok := s.set[hv]
	return ok
}

// Values returns the kept hashes in ascending order (a fresh slice).
func (s *KMV) Values() []uint64 {
	out := append([]uint64(nil), s.heap...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// full reports whether the sketch has reached k values — only then is it a
// sample; below k it is the complete distinct hash set.
func (s *KMV) full() bool { return len(s.heap) >= s.k }

// Cardinality estimates the number of distinct values in the underlying
// domain. A non-full sketch counts exactly; a full one uses the unbiased
// order-statistic estimator (k−1)/U(k), where U(k) is the k-th smallest
// hash normalized to (0, 1] over the base-hash range.
func (s *KMV) Cardinality() float64 {
	if !s.full() {
		return float64(len(s.heap))
	}
	u := float64(s.heap[0]+1) / float64(MersennePrime)
	return float64(s.k-1) / u
}

// setOps computes the shared scaffolding of the binary estimators: the
// number of bottom-k′ union values (k′ = min of the two k parameters), how
// many of them occur in both sketches, and the k′-th union value for the
// union-cardinality estimate. exact is true when both sketches are complete
// hash sets, in which case inter/union are exact counts over all values.
func (s *KMV) setOps(o *KMV) (kk, inter, union int, kth uint64, exact bool) {
	av, bv := s.Values(), o.Values()
	if !s.full() && !o.full() {
		// Both complete: plain merge count.
		i, j := 0, 0
		for i < len(av) && j < len(bv) {
			switch {
			case av[i] == bv[j]:
				inter++
				union++
				i++
				j++
			case av[i] < bv[j]:
				union++
				i++
			default:
				union++
				j++
			}
		}
		union += (len(av) - i) + (len(bv) - j)
		return 0, inter, union, 0, true
	}
	kk = s.k
	if o.k < kk {
		kk = o.k
	}
	// Walk the merged order until k′ union values are consumed; count how
	// many of them both sketches kept.
	i, j := 0, 0
	for union < kk && (i < len(av) || j < len(bv)) {
		var v uint64
		switch {
		case i < len(av) && j < len(bv) && av[i] == bv[j]:
			v = av[i]
			inter++
			i++
			j++
		case j >= len(bv) || (i < len(av) && av[i] < bv[j]):
			v = av[i]
			i++
		default:
			v = bv[j]
			j++
		}
		union++
		kth = v
	}
	return kk, inter, union, kth, false
}

// Intersection estimates |A ∩ B|: the fraction ρ of the union's bottom-k′
// values present in both sketches, scaled by the estimated union
// cardinality (Beyer et al., Section 3.3).
func (s *KMV) Intersection(o *KMV) float64 {
	kk, inter, union, kth, exact := s.setOps(o)
	if exact {
		return float64(inter)
	}
	if union < kk {
		// Fewer than k′ distinct values exist overall: counts are exact.
		return float64(inter)
	}
	u := float64(kth+1) / float64(MersennePrime)
	unionEst := float64(kk-1) / u
	return float64(inter) / float64(kk) * unionEst
}

// Union estimates |A ∪ B| from the merged sketch's k′-th order statistic.
func (s *KMV) Union(o *KMV) float64 {
	kk, _, union, kth, exact := s.setOps(o)
	if exact || union < kk {
		return float64(union)
	}
	u := float64(kth+1) / float64(MersennePrime)
	return float64(kk-1) / u
}

// Jaccard estimates |A∩B| / |A∪B|.
func (s *KMV) Jaccard(o *KMV) float64 {
	kk, inter, union, _, exact := s.setOps(o)
	if exact || union < kk {
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	// Both scale by the same union estimate, which cancels: ρ itself.
	return float64(inter) / float64(kk)
}

// Containment estimates t(S, O) = |S ∩ O| / |S|, the containment of the
// receiver's domain in o's. Unlike the MinHash path, which must convert a
// symmetric Jaccard estimate through Eq. 6 with externally supplied
// cardinalities, KMV estimates the intersection and |S| directly from the
// sketches — the cardinality-aware asymmetric estimate. Clamped to [0, 1].
func (s *KMV) Containment(o *KMV) float64 {
	card := s.Cardinality()
	if card <= 0 {
		return 0
	}
	t := s.Intersection(o) / card
	if t > 1 {
		t = 1
	}
	if t < 0 {
		t = 0
	}
	return t
}

// SizeBytes reports the sketch's serialized footprint: the byte budget a
// KMV point on the accuracy-vs-bytes frontier spends per domain.
func (s *KMV) SizeBytes() int { return 8 + 8*len(s.heap) }

// AppendBinary appends the sketch's binary encoding — k u32 | n u32 |
// n ascending u64 values, all little-endian — to buf.
func (s *KMV) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.heap)))
	for _, v := range s.Values() {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

// DecodeKMV decodes a sketch produced by AppendBinary from the front of
// buf, returning the sketch and the remaining bytes. The encoding is
// untrusted: counts are bounded by the remaining bytes and the values must
// be strictly ascending and within the base-hash range.
func DecodeKMV(buf []byte) (*KMV, []byte, error) {
	if len(buf) < 8 {
		return nil, buf, ErrCorrupt
	}
	k := int(binary.LittleEndian.Uint32(buf))
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if k <= 0 || n < 0 || n > k || n > len(buf)/8 {
		return nil, buf, ErrCorrupt
	}
	// Size the set by the payload actually present, not by k: the k word is
	// attacker-controlled and would otherwise pre-allocate a k-bucket map
	// from an 8-byte input.
	s := &KMV{k: k, set: make(map[uint64]struct{}, n), heap: make([]uint64, 0, n)}
	var prev uint64
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		if v >= MersennePrime || (i > 0 && v <= prev) {
			return nil, buf, ErrCorrupt
		}
		prev = v
		s.set[v] = struct{}{}
		s.heap = append(s.heap, v)
		s.siftUp(len(s.heap) - 1)
	}
	return s, buf, nil
}
