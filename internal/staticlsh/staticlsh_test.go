package staticlsh

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"lshensemble/internal/lshforest"
	"lshensemble/internal/minhash"
	"lshensemble/internal/xrand"
)

func randSigs(rng *xrand.RNG, n, m int, valueRange uint64) [][]uint64 {
	sigs := make([][]uint64, n)
	for i := range sigs {
		s := make([]uint64, m)
		for k := range s {
			s[k] = rng.Uint64() % valueRange
		}
		sigs[i] = s
	}
	return sigs
}

func TestStaticMatchesForest(t *testing.T) {
	// The static index with (b, r) must return exactly the candidates the
	// dynamic forest returns when queried at the same (b, r) — they are two
	// implementations of the same banding scheme.
	rng := xrand.New(1)
	const m, rMax = 16, 4
	sigs := randSigs(rng, 300, m, 4)
	for _, cfg := range []struct{ b, r int }{{1, 4}, {2, 4}, {4, 4}} {
		static := New(m, cfg.b, cfg.r)
		forest := lshforest.New(m, rMax)
		for i, s := range sigs {
			static.Add(fmt.Sprint(i), s)
			forest.Add(uint32(i), s)
		}
		forest.Index()
		for trial := 0; trial < 30; trial++ {
			q := sigs[rng.Intn(len(sigs))]
			a := static.Query(q)
			var b []string
			forest.QueryDedup(q, cfg.b, cfg.r, nil, func(id uint32) bool {
				b = append(b, fmt.Sprint(id))
				return true
			})
			sort.Strings(a)
			sort.Strings(b)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("cfg %+v: static %v != forest %v", cfg, a, b)
			}
		}
	}
}

func TestBandKeyNoAliasing(t *testing.T) {
	// Band keys must respect value boundaries: {1, 256} and {256, 1} are
	// different bands even though their byte multisets overlap.
	x := New(2, 1, 2)
	x.Add("a", []uint64{1, 256})
	if got := x.Query([]uint64{256, 1}); len(got) != 0 {
		t.Fatalf("aliased band key: %v", got)
	}
	if got := x.Query([]uint64{1, 256}); len(got) != 1 {
		t.Fatalf("exact band missed: %v", got)
	}
}

func TestThresholdFormula(t *testing.T) {
	x := New(256, 32, 4)
	want := math.Pow(1.0/32, 0.25)
	if got := x.Threshold(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("threshold %v, want %v", got, want)
	}
}

func TestNewForThreshold(t *testing.T) {
	// Higher s* should select a configuration with a higher effective
	// threshold.
	lo := NewForThreshold(128, 0.2)
	hi := NewForThreshold(128, 0.9)
	if lo.Threshold() >= hi.Threshold() {
		t.Fatalf("thresholds not ordered: %v vs %v", lo.Threshold(), hi.Threshold())
	}
	if lo.B()*lo.R() > 128 || hi.B()*hi.R() > 128 {
		t.Fatal("configuration exceeds hash budget")
	}
	// Effective threshold should be in the neighbourhood of the target.
	if math.Abs(hi.Threshold()-0.9) > 0.25 {
		t.Fatalf("s*=0.9 chose effective threshold %v", hi.Threshold())
	}
}

func TestRealSignatureRecall(t *testing.T) {
	// Similar sets collide; dissimilar ones rarely do near the threshold.
	h := minhash.NewHasher(128, 3)
	x := NewForThreshold(128, 0.5)
	base := make([]string, 100)
	for i := range base {
		base[i] = fmt.Sprintf("v%d", i)
	}
	similar := append(append([]string{}, base[:90]...),
		"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10") // J ≈ 0.82
	other := make([]string, 100)
	for i := range other {
		other[i] = fmt.Sprintf("w%d", i)
	}
	x.Add("similar", h.SketchStrings(similar))
	x.Add("other", h.SketchStrings(other))
	got := x.Query(h.SketchStrings(base))
	found := map[string]bool{}
	for _, k := range got {
		found[k] = true
	}
	if !found["similar"] {
		t.Fatal("high-Jaccard set not retrieved")
	}
	if found["other"] {
		t.Fatal("disjoint set retrieved")
	}
}

func TestImmediatelyQueryable(t *testing.T) {
	x := New(8, 2, 2)
	sig := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	x.Add("k", sig)
	if got := x.Query(sig); len(got) != 1 || got[0] != "k" {
		t.Fatalf("Add not immediately visible: %v", got)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d", x.Len())
	}
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"b zero":    func() { New(8, 0, 2) },
		"r zero":    func() { New(8, 2, 0) },
		"b*r too":   func() { New(8, 3, 3) },
		"short sig": func() { New(8, 2, 2).Add("k", make([]uint64, 4)) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConvertThreshold(t *testing.T) {
	// Matches Eq. 7: s* = t*/(u/q + 1 − t*).
	got := ConvertThreshold(0.5, 3, 1)
	if math.Abs(got-1.0/7) > 1e-12 {
		t.Fatalf("ConvertThreshold = %v, want 1/7", got)
	}
}
