// Package staticlsh implements the classic fixed-configuration MinHash LSH
// index of Section 3.2: b bands of r hash values each, hash-table buckets
// per band, and the static Jaccard threshold s* ≈ (1/b)^(1/r) (paper
// Eq. 21). It exists as an ablation target — LSH Ensemble replaces it with
// the dynamic LSH Forest precisely because a fixed (b, r) cannot serve
// per-query containment thresholds — and as a reference implementation for
// the forest's correctness tests (both must produce identical candidate
// sets for the same (b, r)).
package staticlsh

import (
	"encoding/binary"
	"fmt"
	"math"

	"lshensemble/internal/tune"
)

// Index is a MinHash LSH with a fixed banding configuration.
type Index struct {
	b, r    int
	numHash int
	keys    []string
	tables  []map[string][]uint32
}

// New constructs an index with the given banding configuration; b·r must
// not exceed numHash.
func New(numHash, b, r int) *Index {
	if b <= 0 || r <= 0 || b*r > numHash {
		panic(fmt.Sprintf("staticlsh: invalid configuration b=%d r=%d m=%d", b, r, numHash))
	}
	tables := make([]map[string][]uint32, b)
	for i := range tables {
		tables[i] = make(map[string][]uint32)
	}
	return &Index{b: b, r: r, numHash: numHash, tables: tables}
}

// NewForThreshold picks the (b, r) with b·r ≤ numHash whose candidate
// curve best matches the Jaccard threshold s*, by minimizing the sum of the
// false-positive and false-negative areas of 1−(1−s^r)^b around s* — the
// standard construction (cf. Eq. 5/21).
func NewForThreshold(numHash int, sStar float64) *Index {
	bestB, bestR := 1, 1
	bestCost := math.Inf(1)
	for r := 1; r <= numHash; r++ {
		for b := 1; b*r <= numHash; b++ {
			fp := integrate(func(s float64) float64 { return prob(s, b, r) }, 0, sStar)
			fn := integrate(func(s float64) float64 { return 1 - prob(s, b, r) }, sStar, 1)
			if cost := fp + fn; cost < bestCost {
				bestCost = cost
				bestB, bestR = b, r
			}
		}
	}
	return New(numHash, bestB, bestR)
}

func prob(s float64, b, r int) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(b))
}

func integrate(f func(float64) float64, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	const n = 32
	h := (hi - lo) / n
	sum := (f(lo) + f(hi)) / 2
	for i := 1; i < n; i++ {
		sum += f(lo + float64(i)*h)
	}
	return sum * h
}

// B returns the number of bands.
func (x *Index) B() int { return x.b }

// R returns the band width.
func (x *Index) R() int { return x.r }

// Threshold returns the approximate Jaccard threshold (1/b)^(1/r) of the
// fixed configuration (paper Eq. 21).
func (x *Index) Threshold() float64 {
	return math.Pow(1/float64(x.b), 1/float64(x.r))
}

// Len returns the number of indexed signatures.
func (x *Index) Len() int { return len(x.keys) }

// bandKey serializes one band of the signature into a bucket key.
func (x *Index) bandKey(sig []uint64, band int) string {
	buf := make([]byte, 8*x.r)
	off := band * x.r
	for i := 0; i < x.r; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], sig[off+i])
	}
	return string(buf)
}

// Add inserts a signature under the given key. Unlike the forest, the
// static index is immediately queryable after every Add.
func (x *Index) Add(key string, sig []uint64) {
	if len(sig) < x.numHash {
		panic(fmt.Sprintf("staticlsh: signature length %d < %d", len(sig), x.numHash))
	}
	id := uint32(len(x.keys))
	x.keys = append(x.keys, key)
	for band := 0; band < x.b; band++ {
		k := x.bandKey(sig, band)
		x.tables[band][k] = append(x.tables[band][k], id)
	}
}

// Query returns the keys of all signatures colliding with the query in at
// least one band.
func (x *Index) Query(sig []uint64) []string {
	seen := make(map[uint32]struct{})
	var out []string
	for band := 0; band < x.b; band++ {
		for _, id := range x.tables[band][x.bandKey(sig, band)] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, x.keys[id])
		}
	}
	return out
}

// QueryContainment performs containment search the way the paper's
// "Baseline" would if it had no dynamic tuning: the caller converts t* to
// s* with the global upper bound (Eq. 7) at *build* time; at query time the
// fixed index simply probes. Provided for the static-vs-dynamic ablation.
func QueryContainment(x *Index, sig []uint64) []string {
	return x.Query(sig)
}

// ConvertThreshold is a convenience re-export of the conservative
// containment→Jaccard conversion used to choose s* for NewForThreshold.
func ConvertThreshold(tStar, globalUpperBound, typicalQuerySize float64) float64 {
	return tune.ConservativeJaccardThreshold(tStar, globalUpperBound, typicalQuerySize)
}
