// Package expt contains one driver per table and figure of the paper's
// evaluation (Section 6). Each driver builds its workload with datagen,
// runs the systems under test (Baseline = single-partition MinHash LSH,
// Asym = Asymmetric Minwise Hashing, LSH Ensemble with 8/16/32 partitions),
// and returns typed rows that cmd/experiments renders and bench_test.go
// wraps. Scales default far below the paper's (so the suite runs on a
// laptop in minutes) and are flag-controlled up to paper scale; the
// comparative shape of the results is what the reproduction targets (see
// EXPERIMENTS.md).
package expt

import (
	"fmt"
	"sort"

	"lshensemble/internal/asym"
	"lshensemble/internal/baseline"
	"lshensemble/internal/core"
	"lshensemble/internal/datagen"
	"lshensemble/internal/eval"
	"lshensemble/internal/exact"
	"lshensemble/internal/minhash"
	"lshensemble/internal/partition"
	"lshensemble/internal/stats"
)

// DefaultThresholds is the paper's sweep: 0.05 to 1.00 in steps of 0.05.
func DefaultThresholds() []float64 {
	var ts []float64
	for i := 1; i <= 20; i++ {
		ts = append(ts, float64(i)*0.05)
	}
	return ts
}

// AccuracyConfig parameterizes the accuracy experiments (Fig. 4–8).
// Zero values select defaults sized for interactive runs.
type AccuracyConfig struct {
	NumDomains int       // default 4000 (paper: 65,533)
	NumQueries int       // default 100 (paper: 3,000)
	NumHash    int       // default 256 (Table 3)
	RMax       int       // default 8
	Partitions []int     // ensemble variants; default {8, 16, 32}
	Thresholds []float64 // default DefaultThresholds()
	Seed       uint64
	// Sketches adds b-bit ensemble variants (at the largest partition
	// count) beyond the default full-width store — "LSH Ensemble (32,
	// minwise16)" style systems. Empty keeps the paper's system set.
	Sketches []core.SketchBackend
}

func (c AccuracyConfig) withDefaults() AccuracyConfig {
	if c.NumDomains == 0 {
		c.NumDomains = 4000
	}
	if c.NumQueries == 0 {
		c.NumQueries = 100
	}
	if c.NumHash == 0 {
		c.NumHash = 256
	}
	if c.RMax == 0 {
		c.RMax = 8
	}
	if len(c.Partitions) == 0 {
		c.Partitions = []int{8, 16, 32}
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = DefaultThresholds()
	}
	return c
}

// AccuracyRow is one (system, threshold) cell of Fig. 4/6/7.
type AccuracyRow struct {
	System        string
	Threshold     float64
	Precision     float64
	Recall        float64
	F1            float64
	F05           float64
	EmptyFraction float64
}

func (r AccuracyRow) String() string {
	return fmt.Sprintf("%-18s t*=%.2f  P=%.3f R=%.3f F1=%.3f F0.5=%.3f empty=%.2f",
		r.System, r.Threshold, r.Precision, r.Recall, r.F1, r.F05, r.EmptyFraction)
}

// querier is the common query interface of all systems under test.
type querier interface {
	Query(sig minhash.Signature, querySize int, tStar float64) []string
}

// ensembleSystem adapts *core.Index to querier. The core query API returns
// an error only for the pending-adds state, which cannot occur in these
// build-once experiments, so it is safe to drop here.
type ensembleSystem struct{ *core.Index }

func (e ensembleSystem) Query(sig minhash.Signature, querySize int, tStar float64) []string {
	res, _ := e.Index.Query(sig, querySize, tStar)
	return res
}

// system is a named index under test.
type system struct {
	name string
	idx  querier
}

// buildSystems constructs Baseline, Asym, and the ensemble variants.
func buildSystems(recs []core.Record, cfg AccuracyConfig) ([]system, error) {
	var systems []system
	b, err := baseline.Build(recs, cfg.NumHash, cfg.RMax)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	systems = append(systems, system{"Baseline", b})
	a, err := asym.Build(recs, cfg.NumHash, cfg.RMax)
	if err != nil {
		return nil, fmt.Errorf("asym: %w", err)
	}
	systems = append(systems, system{"Asym", a})
	for _, n := range cfg.Partitions {
		e, err := core.Build(recs, core.Options{
			NumHash: cfg.NumHash, RMax: cfg.RMax, NumPartitions: n,
		})
		if err != nil {
			return nil, fmt.Errorf("ensemble(%d): %w", n, err)
		}
		systems = append(systems, system{fmt.Sprintf("LSH Ensemble (%d)", n), ensembleSystem{e}})
	}
	// b-bit variants ride on the largest partition count: the sweep varies
	// signature bytes against a fixed (best) partitioning.
	parts := cfg.Partitions[len(cfg.Partitions)-1]
	for _, sb := range cfg.Sketches {
		if sb == core.Minwise64 {
			continue // already present as the plain ensemble systems
		}
		e, err := core.Build(recs, core.Options{
			NumHash: cfg.NumHash, RMax: cfg.RMax, NumPartitions: parts, Sketch: sb,
		})
		if err != nil {
			return nil, fmt.Errorf("ensemble(%d, %s): %w", parts, sb, err)
		}
		systems = append(systems, system{fmt.Sprintf("LSH Ensemble (%d, %s)", parts, sb), ensembleSystem{e}})
	}
	return systems, nil
}

// runAccuracy evaluates the systems over the query set across thresholds.
// Ground-truth containment scores are computed once per query and reused
// for every threshold.
func runAccuracy(corpus *datagen.Corpus, recs []core.Record, queries []int,
	systems []system, thresholds []float64) []AccuracyRow {
	engine := exact.Build(datagen.ExactDomains(corpus))
	queryValues := make([][]uint64, len(queries))
	for i, qi := range queries {
		queryValues[i] = corpus.Domains[qi].Values
	}
	scores := engine.ScoresBatch(queryValues, 0)
	var rows []AccuracyRow
	for _, tStar := range thresholds {
		truths := make([]map[string]bool, len(queries))
		for i := range queries {
			truth := make(map[string]bool)
			for id, s := range scores[i] {
				if s >= tStar {
					truth[engine.Key(id)] = true
				}
			}
			truths[i] = truth
		}
		for _, sys := range systems {
			var avg eval.Averager
			for i, qi := range queries {
				res := sys.idx.Query(recs[qi].Sig, recs[qi].Size, tStar)
				p, r, empty := eval.PR(res, truths[i])
				avg.Add(p, r, empty)
			}
			rows = append(rows, AccuracyRow{
				System:        sys.name,
				Threshold:     tStar,
				Precision:     avg.Precision(),
				Recall:        avg.Recall(),
				F1:            avg.F1(),
				F05:           avg.F05(),
				EmptyFraction: avg.EmptyFraction(),
			})
		}
	}
	return rows
}

// RunFig4 reproduces Fig. 4: accuracy versus containment threshold on the
// open-data-like corpus for all systems.
func RunFig4(cfg AccuracyConfig) ([]AccuracyRow, error) {
	cfg = cfg.withDefaults()
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: cfg.NumDomains, Seed: cfg.Seed})
	recs := datagen.Records(corpus, minhash.NewHasher(cfg.NumHash, cfg.Seed^0x5eed))
	systems, err := buildSystems(recs, cfg)
	if err != nil {
		return nil, err
	}
	queries := datagen.SampleQueries(corpus, cfg.NumQueries, cfg.Seed)
	return runAccuracy(corpus, recs, queries, systems, cfg.Thresholds), nil
}

// RunFig6 reproduces Fig. 6: accuracy for queries from the largest size
// decile (the regime where the q ≪ max-size assumption weakens).
func RunFig6(cfg AccuracyConfig) ([]AccuracyRow, error) {
	return runDecile(cfg, 9)
}

// RunFig7 reproduces Fig. 7: accuracy for queries from the smallest decile.
func RunFig7(cfg AccuracyConfig) ([]AccuracyRow, error) {
	return runDecile(cfg, 0)
}

func runDecile(cfg AccuracyConfig, decile int) ([]AccuracyRow, error) {
	cfg = cfg.withDefaults()
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: cfg.NumDomains, Seed: cfg.Seed})
	recs := datagen.Records(corpus, minhash.NewHasher(cfg.NumHash, cfg.Seed^0x5eed))
	systems, err := buildSystems(recs, cfg)
	if err != nil {
		return nil, err
	}
	queries := datagen.QueriesBySizeDecile(corpus, decile, cfg.NumQueries, cfg.Seed)
	return runAccuracy(corpus, recs, queries, systems, cfg.Thresholds), nil
}

// SkewRow is one (subset, system) cell of Fig. 5.
type SkewRow struct {
	Skewness   float64
	NumDomains int
	System     string
	Precision  float64
	Recall     float64
	F1         float64
	F05        float64
}

func (r SkewRow) String() string {
	return fmt.Sprintf("skew=%6.2f n=%-6d %-18s P=%.3f R=%.3f F1=%.3f F0.5=%.3f",
		r.Skewness, r.NumDomains, r.System, r.Precision, r.Recall, r.F1, r.F05)
}

// Fig5Config parameterizes the skewness sweep.
type Fig5Config struct {
	AccuracyConfig
	NumSubsets int     // default 10 (paper: 20)
	Threshold  float64 // default 0.5 (Table 3 bold default)
}

// RunFig5 reproduces Fig. 5: accuracy versus domain-size skewness over
// nested size-interval subsets of the corpus.
func RunFig5(cfg Fig5Config) ([]SkewRow, error) {
	acc := cfg.AccuracyConfig.withDefaults()
	if cfg.NumSubsets == 0 {
		cfg.NumSubsets = 10
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: acc.NumDomains, Seed: acc.Seed})
	recs := datagen.Records(corpus, minhash.NewHasher(acc.NumHash, acc.Seed^0x5eed))
	subsets := datagen.NestedSizeSubsets(corpus, cfg.NumSubsets)

	var rows []SkewRow
	for _, subset := range subsets {
		subCorpus := &datagen.Corpus{}
		subRecs := make([]core.Record, 0, len(subset))
		for _, i := range subset {
			subCorpus.Domains = append(subCorpus.Domains, corpus.Domains[i])
			subRecs = append(subRecs, recs[i])
		}
		skew := stats.SkewnessInts(subCorpus.Sizes())
		systems, err := buildSystems(subRecs, acc)
		if err != nil {
			return nil, err
		}
		nq := acc.NumQueries
		if nq > len(subset) {
			nq = len(subset)
		}
		queries := datagen.SampleQueries(subCorpus, nq, acc.Seed)
		accRows := runAccuracy(subCorpus, subRecs, queries, systems, []float64{cfg.Threshold})
		for _, ar := range accRows {
			rows = append(rows, SkewRow{
				Skewness:   skew,
				NumDomains: len(subset),
				System:     ar.System,
				Precision:  ar.Precision,
				Recall:     ar.Recall,
				F1:         ar.F1,
				F05:        ar.F05,
			})
		}
	}
	return rows, nil
}

// MorphRow is one partition-drift point of Fig. 8.
type MorphRow struct {
	Lambda    float64 // 0 = equi-depth, 1 = equi-width
	StdDev    float64 // std. dev. of partition sizes (the paper's x-axis)
	Precision float64
	Recall    float64
	F1        float64
	F05       float64
}

func (r MorphRow) String() string {
	return fmt.Sprintf("lambda=%.3f stddev=%8.1f  P=%.3f R=%.3f F1=%.3f F0.5=%.3f",
		r.Lambda, r.StdDev, r.Precision, r.Recall, r.F1, r.F05)
}

// Fig8Config parameterizes the partition-drift experiment.
type Fig8Config struct {
	AccuracyConfig
	NumPartitions int       // default 32 (the paper's Fig. 8 uses 32)
	Lambdas       []float64 // default 0, 0.125, …, 1
	Threshold     float64   // default 0.5
}

// RunFig8 reproduces Fig. 8: accuracy versus the standard deviation of
// partition sizes as the partitioning morphs from equi-depth to equi-width.
func RunFig8(cfg Fig8Config) ([]MorphRow, error) {
	acc := cfg.AccuracyConfig.withDefaults()
	if cfg.NumPartitions == 0 {
		cfg.NumPartitions = 32
	}
	if len(cfg.Lambdas) == 0 {
		for i := 0; i <= 8; i++ {
			cfg.Lambdas = append(cfg.Lambdas, float64(i)/8)
		}
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: acc.NumDomains, Seed: acc.Seed})
	recs := datagen.Records(corpus, minhash.NewHasher(acc.NumHash, acc.Seed^0x5eed))
	queries := datagen.SampleQueries(corpus, acc.NumQueries, acc.Seed)

	var rows []MorphRow
	for _, lambda := range cfg.Lambdas {
		lambda := lambda
		pf := func(sizes []int, n int) []partition.Partition {
			return partition.Morph(sizes, n, lambda)
		}
		idx, err := core.Build(recs, core.Options{
			NumHash: acc.NumHash, RMax: acc.RMax,
			NumPartitions: cfg.NumPartitions, Partitioner: pf,
		})
		if err != nil {
			return nil, err
		}
		sd := partition.CountStdDev(idx.PartitionBounds())
		accRows := runAccuracy(corpus, recs, queries,
			[]system{{"morph", ensembleSystem{idx}}}, []float64{cfg.Threshold})
		ar := accRows[0]
		rows = append(rows, MorphRow{
			Lambda:    lambda,
			StdDev:    sd,
			Precision: ar.Precision,
			Recall:    ar.Recall,
			F1:        ar.F1,
			F05:       ar.F05,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].StdDev < rows[j].StdDev })
	return rows, nil
}
