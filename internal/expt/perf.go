package expt

import (
	"fmt"
	"sync"
	"time"

	"lshensemble/internal/core"
	"lshensemble/internal/datagen"
	"lshensemble/internal/minhash"
)

// PerfConfig parameterizes the performance experiments (Fig. 9 and
// Table 4). Defaults are scaled for a laptop; raise NumDomains toward the
// paper's 262,893,406 on bigger hardware — the code paths are identical.
type PerfConfig struct {
	NumDomains int   // largest corpus size; default 100_000 (paper: 262.9M)
	Steps      int   // number of corpus sizes for Fig. 9; default 5
	NumQueries int   // default 50 (paper: 3,000)
	NumHash    int   // default 256
	RMax       int   // default 8
	Partitions []int // default {8, 16, 32}
	Shards     int   // Table 4 cluster width; default 5 (paper: 5 nodes)
	Seed       uint64
	// Sketch selects the signature store backend (zero = full-width
	// minwise64); b-bit backends shrink the store and its scan traffic.
	Sketch core.SketchBackend
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.NumDomains == 0 {
		c.NumDomains = 100_000
	}
	if c.Steps == 0 {
		c.Steps = 5
	}
	if c.NumQueries == 0 {
		c.NumQueries = 50
	}
	if c.NumHash == 0 {
		c.NumHash = 256
	}
	if c.RMax == 0 {
		c.RMax = 8
	}
	if len(c.Partitions) == 0 {
		c.Partitions = []int{8, 16, 32}
	}
	if c.Shards == 0 {
		c.Shards = 5
	}
	return c
}

// PerfRow is one (corpus size, partition count) point of Fig. 9.
type PerfRow struct {
	NumDomains    int
	Partitions    int
	IndexingTime  time.Duration // sketching + partitioning + forest build
	MeanQueryTime time.Duration
	MeanResults   float64 // mean candidates returned (selectivity proxy)
}

func (r PerfRow) String() string {
	return fmt.Sprintf("n=%-9d parts=%-3d index=%-12s query=%-12s results=%.1f",
		r.NumDomains, r.Partitions, r.IndexingTime.Round(time.Millisecond),
		r.MeanQueryTime.Round(time.Microsecond), r.MeanResults)
}

// RunFig9 reproduces Fig. 9: indexing time and mean query time as the
// number of domains grows, for each partition count. Indexing time includes
// MinHash sketching (as in the paper, which measures end-to-end index
// construction over raw domains).
func RunFig9(cfg PerfConfig) ([]PerfRow, error) {
	cfg = cfg.withDefaults()
	var rows []PerfRow
	for step := 1; step <= cfg.Steps; step++ {
		n := cfg.NumDomains * step / cfg.Steps
		corpus := datagen.WebTable(datagen.WebTableConfig{NumDomains: n, Seed: cfg.Seed})
		queries := datagen.SampleQueries(corpus, cfg.NumQueries, cfg.Seed)
		for _, parts := range cfg.Partitions {
			start := time.Now()
			recs := datagen.Records(corpus, minhash.NewHasher(cfg.NumHash, cfg.Seed^0x5eed))
			idx, err := core.Build(recs, core.Options{
				NumHash: cfg.NumHash, RMax: cfg.RMax, NumPartitions: parts, Sketch: cfg.Sketch,
			})
			if err != nil {
				return nil, err
			}
			indexing := time.Since(start)

			const tStar = 0.5
			totalResults := 0
			qStart := time.Now()
			for _, qi := range queries {
				ids, err := idx.QueryIDs(recs[qi].Sig, recs[qi].Size, tStar)
				if err != nil {
					return nil, err
				}
				totalResults += len(ids)
			}
			queryTime := time.Since(qStart)
			rows = append(rows, PerfRow{
				NumDomains:    n,
				Partitions:    parts,
				IndexingTime:  indexing,
				MeanQueryTime: queryTime / time.Duration(len(queries)),
				MeanResults:   float64(totalResults) / float64(len(queries)),
			})
		}
	}
	return rows, nil
}

// Tab4Row is one system row of Table 4.
type Tab4Row struct {
	System        string
	IndexingTime  time.Duration
	MeanQueryTime time.Duration
	MeanResults   float64
}

func (r Tab4Row) String() string {
	return fmt.Sprintf("%-18s indexing=%-12s mean query=%-12s results=%.1f",
		r.System, r.IndexingTime.Round(time.Millisecond),
		r.MeanQueryTime.Round(time.Microsecond), r.MeanResults)
}

// shardedIndex mirrors the paper's 5-node deployment: the corpus is split
// into equal chunks, one ensemble per chunk, queries fan out to all shards
// concurrently and results are unioned.
type shardedIndex struct {
	shards []*core.Index
}

func (s *shardedIndex) query(sig minhash.Signature, querySize int, tStar float64) []string {
	results := make([][]string, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *core.Index) {
			defer wg.Done()
			results[i], _ = sh.Query(sig, querySize, tStar)
		}(i, sh)
	}
	wg.Wait()
	var out []string
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// RunTab4 reproduces Table 4: indexing and query cost of the Baseline
// (single-partition MinHash LSH) versus LSH Ensemble with 8/16/32
// partitions, on a sharded deployment. Shards are built sequentially but
// the build is already internally parallel; queries probe shards
// concurrently as in the paper's cluster.
func RunTab4(cfg PerfConfig) ([]Tab4Row, error) {
	cfg = cfg.withDefaults()
	corpus := datagen.WebTable(datagen.WebTableConfig{NumDomains: cfg.NumDomains, Seed: cfg.Seed})
	recs := datagen.Records(corpus, minhash.NewHasher(cfg.NumHash, cfg.Seed^0x5eed))
	queries := datagen.SampleQueries(corpus, cfg.NumQueries, cfg.Seed)

	variants := append([]int{1}, cfg.Partitions...)
	var rows []Tab4Row
	for _, parts := range variants {
		name := fmt.Sprintf("LSH Ensemble (%d)", parts)
		if parts == 1 {
			name = "Baseline"
		}
		start := time.Now()
		sharded := &shardedIndex{}
		chunk := (len(recs) + cfg.Shards - 1) / cfg.Shards
		for lo := 0; lo < len(recs); lo += chunk {
			hi := lo + chunk
			if hi > len(recs) {
				hi = len(recs)
			}
			idx, err := core.Build(recs[lo:hi], core.Options{
				NumHash: cfg.NumHash, RMax: cfg.RMax, NumPartitions: parts, Sketch: cfg.Sketch,
			})
			if err != nil {
				return nil, err
			}
			sharded.shards = append(sharded.shards, idx)
		}
		indexing := time.Since(start)

		const tStar = 0.5
		total := 0
		qStart := time.Now()
		for _, qi := range queries {
			total += len(sharded.query(recs[qi].Sig, recs[qi].Size, tStar))
		}
		queryTime := time.Since(qStart)
		rows = append(rows, Tab4Row{
			System:        name,
			IndexingTime:  indexing,
			MeanQueryTime: queryTime / time.Duration(len(queries)),
			MeanResults:   float64(total) / float64(len(queries)),
		})
	}
	return rows, nil
}
