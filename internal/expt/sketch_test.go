package expt

import (
	"testing"

	"lshensemble/internal/core"
)

// frontierCfg is the deterministic reduced-scale Fig. 4 workload behind the
// accuracy-regression floors: small enough for tier-1 CI, large enough that
// the backends separate cleanly on the frontier.
func frontierCfg() SketchConfig {
	return SketchConfig{
		AccuracyConfig: AccuracyConfig{
			NumDomains: 800,
			NumQueries: 60,
			NumHash:    256,
			RMax:       8,
			Thresholds: []float64{0.5},
			Seed:       1,
		},
		NumPartitions: 16,
	}
}

// TestSketchFrontierAccuracyFloors is the accuracy-regression gate: each
// backend's Fig. 4 precision/recall at t*=0.5 must clear its floor. The
// floors encode the frontier's shape — wide minwise stores keep the
// full-width operating point, minwise8 trades precision (never recall,
// by the superset property) for 1/8th the bytes, and KMV's
// cardinality-aware scoring is the sharpest per byte. Any estimator or
// masking regression shows up here as a floor breach.
func TestSketchFrontierAccuracyFloors(t *testing.T) {
	rows, err := RunSketchFrontier(frontierCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Reference run (seed 1): minwise64/32/16 P=0.797 R=0.918,
	// minwise8 P=0.175 R=0.918, kmv P=0.994 R=0.961. Floors sit well below
	// to absorb platform float jitter but far above any broken estimator.
	floors := map[string]struct{ p, r float64 }{
		"minwise64": {0.70, 0.85},
		"minwise32": {0.70, 0.85},
		"minwise16": {0.70, 0.85},
		"minwise8":  {0.10, 0.85},
		"kmv":       {0.90, 0.90},
	}
	seen := map[string]FrontierRow{}
	for _, r := range rows {
		seen[r.System] = r
		f, ok := floors[r.System]
		if !ok {
			t.Fatalf("unexpected system %q on the frontier", r.System)
		}
		if r.Precision < f.p {
			t.Errorf("%s precision %.3f below floor %.2f", r.System, r.Precision, f.p)
		}
		if r.Recall < f.r {
			t.Errorf("%s recall %.3f below floor %.2f", r.System, r.Recall, f.r)
		}
	}
	if len(seen) != len(floors) {
		t.Fatalf("frontier covered %d systems, want %d", len(seen), len(floors))
	}
	// The superset property in aggregate: truncation must not lose recall.
	for _, narrow := range []string{"minwise8", "minwise16", "minwise32"} {
		if seen[narrow].Recall < seen["minwise64"].Recall-1e-9 {
			t.Errorf("%s recall %.3f below minwise64 %.3f — truncation lost candidates",
				narrow, seen[narrow].Recall, seen["minwise64"].Recall)
		}
	}
	// The bytes axis: each narrowing must report exactly width/8 of the
	// full store, the acceptance ratio of the PR (b=16 ⇒ ≤ 0.5×).
	full := seen["minwise64"].BytesPerDomain
	for name, frac := range map[string]float64{"minwise32": 0.5, "minwise16": 0.25, "minwise8": 0.125} {
		if got := seen[name].BytesPerDomain; got != full*frac {
			t.Errorf("%s bytes/domain %.1f, want %.1f", name, got, full*frac)
		}
	}
}

// TestFig4SketchVariants runs Fig. 4 with b-bit ensemble systems riding
// along and checks the superset property per threshold: a narrow store can
// only add candidates, so its recall is never below the full-width
// ensemble's.
func TestFig4SketchVariants(t *testing.T) {
	cfg := smallAcc()
	cfg.Sketches = []core.SketchBackend{core.Minwise16, core.Minwise8}
	rows, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 base systems + 2 sketch variants, × 3 thresholds.
	if len(rows) != 18 {
		t.Fatalf("got %d rows, want 18", len(rows))
	}
	for _, tStar := range cfg.Thresholds {
		at := rowsBySystem(rows, tStar)
		full := at["LSH Ensemble (32)"]
		for _, name := range []string{"LSH Ensemble (32, minwise16)", "LSH Ensemble (32, minwise8)"} {
			v, ok := at[name]
			if !ok {
				t.Fatalf("missing system %q at t=%v", name, tStar)
			}
			if v.Recall < full.Recall-1e-9 {
				t.Errorf("%s recall %.3f < full-width %.3f at t=%v", name, v.Recall, full.Recall, tStar)
			}
		}
	}
}

// TestFig9SketchBackend: the perf sweep must run under a narrow backend and
// return the same row shape.
func TestFig9SketchBackend(t *testing.T) {
	rows, err := RunFig9(PerfConfig{
		NumDomains: 3000, Steps: 1, NumQueries: 10,
		NumHash: 128, RMax: 4, Partitions: []int{8}, Seed: 1,
		Sketch: core.Minwise16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].IndexingTime <= 0 || rows[0].MeanQueryTime <= 0 {
		t.Fatalf("non-positive timing: %+v", rows[0])
	}
}
