package expt

import (
	"fmt"
	"strings"

	"lshensemble/internal/asym"
	"lshensemble/internal/datagen"
	"lshensemble/internal/stats"
	"lshensemble/internal/tune"
)

// HistRow is one log₂ bucket of a Fig. 1 histogram.
type HistRow struct {
	Corpus string
	Lo, Hi int
	Count  int
}

func (r HistRow) String() string {
	bar := strings.Repeat("#", barLen(r.Count))
	return fmt.Sprintf("%-9s [%7d, %7d)  %7d %s", r.Corpus, r.Lo, r.Hi, r.Count, bar)
}

func barLen(count int) int {
	n := 0
	for count > 0 {
		n++
		count >>= 1
	}
	return n
}

// Fig1Config parameterizes the size-distribution histograms.
type Fig1Config struct {
	OpenDataDomains int // default 20000
	WebTableDomains int // default 50000
	Seed            uint64
}

// RunFig1 reproduces Fig. 1: log-log domain-size histograms of the
// open-data-like and web-table-like corpora, plus the MLE power-law
// exponent of each (the paper eyeballs the slope; we report it).
func RunFig1(cfg Fig1Config) (rows []HistRow, alphaOpen, alphaWeb float64) {
	if cfg.OpenDataDomains == 0 {
		cfg.OpenDataDomains = 20000
	}
	if cfg.WebTableDomains == 0 {
		cfg.WebTableDomains = 50000
	}
	od := datagen.OpenData(datagen.OpenDataConfig{NumDomains: cfg.OpenDataDomains, Seed: cfg.Seed})
	wt := datagen.WebTable(datagen.WebTableConfig{NumDomains: cfg.WebTableDomains, Seed: cfg.Seed})
	for _, b := range stats.LogHistogram(od.Sizes()) {
		rows = append(rows, HistRow{Corpus: "opendata", Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	for _, b := range stats.LogHistogram(wt.Sizes()) {
		rows = append(rows, HistRow{Corpus: "webtable", Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	return rows, stats.PowerLawAlphaMLE(od.Sizes(), 10), stats.PowerLawAlphaMLE(wt.Sizes(), 5)
}

// Fig2Row is one containment point of Fig. 2's threshold-conversion plot.
type Fig2Row struct {
	T   float64 // containment
	SxQ float64 // sˆx,q(t): exact Jaccard at size x
	SuQ float64 // sˆu,q(t): conservative Jaccard at upper bound u
}

// RunFig2 reproduces Fig. 2 with the paper's parameters (u = 3, x = 1,
// q = 1, t* = 0.5): the two conversion curves and the effective threshold.
func RunFig2() (rows []Fig2Row, tStar, sStar, tx float64) {
	const u, x, q = 3.0, 1.0, 1.0
	tStar = 0.5
	for i := 0; i <= 40; i++ {
		t := float64(i) / 40
		rows = append(rows, Fig2Row{
			T:   t,
			SxQ: tune.ContainmentToJaccard(t, x, q),
			SuQ: tune.ContainmentToJaccard(t, u, q),
		})
	}
	sStar = tune.ConservativeJaccardThreshold(tStar, u, q)
	tx = tune.EffectiveContainmentThreshold(tStar, x, q, u)
	return rows, tStar, sStar, tx
}

// Fig3Row is one containment point of the candidate-probability curve.
type Fig3Row struct {
	T float64
	P float64
}

// RunFig3 reproduces Fig. 3 with the paper's parameters (x = 10, q = 5,
// b = 256, r = 4, t* = 0.5): the probability curve and the FP/FN areas
// under it.
func RunFig3() (rows []Fig3Row, fp, fn float64) {
	const x, q, tStar = 10.0, 5.0, 0.5
	const b, r = 256, 4
	for i := 0; i <= 50; i++ {
		t := float64(i) / 50
		rows = append(rows, Fig3Row{T: t, P: tune.CandidateProbability(t, x, q, b, r)})
	}
	return rows, tune.FalsePositiveArea(x, q, tStar, b, r), tune.FalseNegativeArea(x, q, tStar, b, r)
}

// Fig10Row is one point of the asymmetric-hashing analysis.
type Fig10Row struct {
	M         int     // padded size
	PFullCont float64 // P(t=1 | M, q, b=256, r=1)
	MStar     int     // min #hashes to keep P ≥ 0.5
}

func (r Fig10Row) String() string {
	return fmt.Sprintf("M=%-7d P(t=1)=%.4f m*=%d", r.M, r.PFullCont, r.MStar)
}

// RunFig10 reproduces Fig. 10: the recall collapse of Asymmetric Minwise
// Hashing as the padded size M grows (left plot) and the hash budget m*
// needed to resist it (right plot), with q = 1 as in the paper.
func RunFig10() []Fig10Row {
	const q = 1.0
	var rows []Fig10Row
	for m := 250; m <= 8000; m += 250 {
		rows = append(rows, Fig10Row{
			M:         m,
			PFullCont: asym.ProbFullContainment(float64(m), q, 256, 1),
			MStar:     asym.MinHashesForRecall(float64(m), q, 0.5),
		})
	}
	return rows
}

// Tab3Row is one experimental variable of Table 3.
type Tab3Row struct {
	Variable string
	Value    string
}

// RunTab3 prints the active experimental configuration in the shape of the
// paper's Table 3.
func RunTab3(acc AccuracyConfig, perf PerfConfig) []Tab3Row {
	acc = acc.withDefaults()
	perf = perf.withDefaults()
	return []Tab3Row{
		{"Num. of Hash Functions in MinHash (m)", fmt.Sprint(acc.NumHash)},
		{"Containment Threshold (t*)", fmt.Sprintf("%.2f - %.2f", acc.Thresholds[0], acc.Thresholds[len(acc.Thresholds)-1])},
		{"Num. of Domains |D| (accuracy)", fmt.Sprint(acc.NumDomains)},
		{"Num. of Domains |D| (performance)", fmt.Sprint(perf.NumDomains)},
		{"Num. of Queries", fmt.Sprint(acc.NumQueries)},
		{"Num. of Partitions (n)", fmt.Sprint(acc.Partitions)},
		{"Forest depth (rMax)", fmt.Sprint(acc.RMax)},
		{"Shards (simulated nodes)", fmt.Sprint(perf.Shards)},
	}
}
