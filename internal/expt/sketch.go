package expt

import (
	"fmt"
	"sort"

	"lshensemble/internal/core"
	"lshensemble/internal/datagen"
	"lshensemble/internal/eval"
	"lshensemble/internal/exact"
	"lshensemble/internal/minhash"
)

// SketchConfig parameterizes the accuracy-vs-bytes frontier experiment: the
// Fig. 4 workload re-run under every sketch backend, reporting each system's
// per-domain signature footprint next to its precision and recall. This is
// the measurement behind the repo's compact-sketch claims (BENCH_10.json).
type SketchConfig struct {
	AccuracyConfig
	// NumPartitions is the ensemble partition count every backend uses
	// (one variable at a time: the sweep varies bytes, not partitioning).
	// Default 16.
	NumPartitions int
	// KMVK is the k parameter of the KMV comparator; default NumHash/2 so
	// its footprint lands between minwise16 and minwise32 on the frontier.
	KMVK int
}

func (c SketchConfig) withDefaults() SketchConfig {
	c.AccuracyConfig = c.AccuracyConfig.withDefaults()
	if c.NumPartitions == 0 {
		c.NumPartitions = 16
	}
	if c.KMVK == 0 {
		c.KMVK = c.NumHash / 2
	}
	return c
}

// FrontierRow is one (backend, threshold) point of the accuracy-vs-bytes
// frontier.
type FrontierRow struct {
	System         string  // backend name ("minwise64", ..., "kmv")
	BytesPerDomain float64 // serialized signature bytes per indexed domain
	Threshold      float64
	Precision      float64
	Recall         float64
	F1             float64
}

func (r FrontierRow) String() string {
	return fmt.Sprintf("%-10s bytes/domain=%7.1f t*=%.2f  P=%.3f R=%.3f F1=%.3f",
		r.System, r.BytesPerDomain, r.Threshold, r.Precision, r.Recall, r.F1)
}

// frontierSystem is one point under test: a name, its per-domain signature
// footprint, and a query function over the shared query set.
type frontierSystem struct {
	name  string
	bytes float64
	query func(qi int, tStar float64) []string
}

// RunSketchFrontier runs the Fig. 4 accuracy workload under every sketch
// backend — the four minwise widths indexed by the same ensemble shape, plus
// the KMV comparator brute-force scoring with cardinality-aware containment
// — and reports accuracy next to per-domain signature bytes. Rows are
// ordered by descending footprint, so reading down the list walks the
// frontier from most-accurate-most-bytes toward cheapest.
func RunSketchFrontier(cfg SketchConfig) ([]FrontierRow, error) {
	cfg = cfg.withDefaults()
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: cfg.NumDomains, Seed: cfg.Seed})
	recs := datagen.Records(corpus, minhash.NewHasher(cfg.NumHash, cfg.Seed^0x5eed))
	queries := datagen.SampleQueries(corpus, cfg.NumQueries, cfg.Seed)

	var systems []frontierSystem
	for _, sb := range []core.SketchBackend{core.Minwise64, core.Minwise32, core.Minwise16, core.Minwise8} {
		idx, err := core.Build(recs, core.Options{
			NumHash: cfg.NumHash, RMax: cfg.RMax,
			NumPartitions: cfg.NumPartitions, Sketch: sb,
		})
		if err != nil {
			return nil, fmt.Errorf("ensemble(%s): %w", sb, err)
		}
		systems = append(systems, frontierSystem{
			name:  sb.String(),
			bytes: float64(idx.SignatureBytes()) / float64(len(recs)),
			query: func(qi int, tStar float64) []string {
				res, _ := idx.Query(recs[qi].Sig, recs[qi].Size, tStar)
				return res
			},
		})
	}

	// KMV is not indexable, so it enters the frontier the way the paper's
	// exact comparator does: a linear scan scoring every domain, here with
	// KMV's cardinality-aware containment estimate instead of exact sets.
	domainKMV := make([]*minhash.KMV, len(corpus.Domains))
	kmvBytes := 0
	for i, d := range corpus.Domains {
		s := minhash.NewKMV(cfg.KMVK)
		for _, v := range d.Values {
			s.PushUint64(v)
		}
		domainKMV[i] = s
		kmvBytes += s.SizeBytes()
	}
	queryKMV := make(map[int]*minhash.KMV, len(queries))
	for _, qi := range queries {
		queryKMV[qi] = domainKMV[qi]
	}
	systems = append(systems, frontierSystem{
		name:  core.KMV.String(),
		bytes: float64(kmvBytes) / float64(len(corpus.Domains)),
		query: func(qi int, tStar float64) []string {
			q := queryKMV[qi]
			var out []string
			for i, x := range domainKMV {
				if q.Containment(x) >= tStar {
					out = append(out, corpus.Domains[i].Key)
				}
			}
			return out
		},
	})

	// Ground truth once per query, reused across thresholds and systems —
	// same scaffolding as runAccuracy, over frontier systems.
	engine := exact.Build(datagen.ExactDomains(corpus))
	queryValues := make([][]uint64, len(queries))
	for i, qi := range queries {
		queryValues[i] = corpus.Domains[qi].Values
	}
	scores := engine.ScoresBatch(queryValues, 0)

	var rows []FrontierRow
	for _, tStar := range cfg.Thresholds {
		truths := make([]map[string]bool, len(queries))
		for i := range queries {
			truth := make(map[string]bool)
			for id, s := range scores[i] {
				if s >= tStar {
					truth[engine.Key(id)] = true
				}
			}
			truths[i] = truth
		}
		for _, sys := range systems {
			var avg eval.Averager
			for i, qi := range queries {
				p, r, empty := eval.PR(sys.query(qi, tStar), truths[i])
				avg.Add(p, r, empty)
			}
			rows = append(rows, FrontierRow{
				System:         sys.name,
				BytesPerDomain: sys.bytes,
				Threshold:      tStar,
				Precision:      avg.Precision(),
				Recall:         avg.Recall(),
				F1:             avg.F1(),
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Threshold != rows[j].Threshold {
			return rows[i].Threshold < rows[j].Threshold
		}
		return rows[i].BytesPerDomain > rows[j].BytesPerDomain
	})
	return rows, nil
}
