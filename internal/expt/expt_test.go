package expt

import (
	"math"
	"testing"
)

// smallAcc is a fast accuracy config for CI.
func smallAcc() AccuracyConfig {
	return AccuracyConfig{
		NumDomains: 1200,
		NumQueries: 40,
		NumHash:    128,
		RMax:       4,
		Partitions: []int{8, 32},
		Thresholds: []float64{0.25, 0.5, 0.75},
		Seed:       1,
	}
}

func rowsBySystem(rows []AccuracyRow, tStar float64) map[string]AccuracyRow {
	out := map[string]AccuracyRow{}
	for _, r := range rows {
		if math.Abs(r.Threshold-tStar) < 1e-9 {
			out[r.System] = r
		}
	}
	return out
}

func TestFig4Shape(t *testing.T) {
	rows, err := RunFig4(smallAcc())
	if err != nil {
		t.Fatal(err)
	}
	// 4 systems × 3 thresholds.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("metric out of range: %+v", r)
		}
	}
	at := rowsBySystem(rows, 0.5)
	// Paper claim 1: partitioning improves precision over the baseline.
	if at["LSH Ensemble (32)"].Precision <= at["Baseline"].Precision {
		t.Fatalf("ensemble precision %v should beat baseline %v",
			at["LSH Ensemble (32)"].Precision, at["Baseline"].Precision)
	}
	// Paper claim 2: ensemble recall stays high.
	if at["LSH Ensemble (32)"].Recall < 0.7 {
		t.Fatalf("ensemble recall %v too low", at["LSH Ensemble (32)"].Recall)
	}
	// Paper claim 3: baseline recall is high (it is recall-conservative).
	if at["Baseline"].Recall < 0.8 {
		t.Fatalf("baseline recall %v too low", at["Baseline"].Recall)
	}
	// Paper claim 4: asym recall falls well below the ensemble's on skewed
	// data at mid/high thresholds.
	if at["Asym"].Recall >= at["LSH Ensemble (32)"].Recall {
		t.Fatalf("asym recall %v should trail ensemble %v on skewed corpus",
			at["Asym"].Recall, at["LSH Ensemble (32)"].Recall)
	}
}

func TestFig4MorePartitionsMorePrecision(t *testing.T) {
	rows, err := RunFig4(smallAcc())
	if err != nil {
		t.Fatal(err)
	}
	// Averaged across thresholds, 32 partitions ≥ 8 partitions on precision.
	avg := func(system string) float64 {
		s, n := 0.0, 0
		for _, r := range rows {
			if r.System == system {
				s += r.Precision
				n++
			}
		}
		return s / float64(n)
	}
	if avg("LSH Ensemble (32)") < avg("LSH Ensemble (8)")-0.02 {
		t.Fatalf("precision should not degrade with more partitions: 32→%v 8→%v",
			avg("LSH Ensemble (32)"), avg("LSH Ensemble (8)"))
	}
}

func TestFig6And7Run(t *testing.T) {
	cfg := smallAcc()
	cfg.Thresholds = []float64{0.5}
	large, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(large) != 4 || len(small) != 4 {
		t.Fatalf("row counts: %d, %d", len(large), len(small))
	}
	// Recall must stay high in both regimes for the ensemble (paper: "the
	// recall stays high").
	for _, rows := range [][]AccuracyRow{large, small} {
		at := rowsBySystem(rows, 0.5)
		if at["LSH Ensemble (32)"].Recall < 0.6 {
			t.Fatalf("ensemble recall %v too low in decile workload",
				at["LSH Ensemble (32)"].Recall)
		}
	}
}

func TestFig5SkewSweep(t *testing.T) {
	cfg := Fig5Config{AccuracyConfig: smallAcc(), NumSubsets: 5}
	cfg.NumQueries = 25
	rows, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*4 {
		t.Fatalf("got %d rows, want 20", len(rows))
	}
	// Skewness must be non-decreasing along the sweep.
	var prev float64 = -1e18
	for i := 0; i < len(rows); i += 4 {
		if rows[i].Skewness < prev-1e-9 {
			t.Fatalf("skewness not non-decreasing at row %d", i)
		}
		prev = rows[i].Skewness
	}
	// At the most skewed subset, ensemble(32) precision ≥ baseline.
	last := rows[len(rows)-4:]
	var base, ens SkewRow
	for _, r := range last {
		switch r.System {
		case "Baseline":
			base = r
		case "LSH Ensemble (32)":
			ens = r
		}
	}
	if ens.Precision < base.Precision {
		t.Fatalf("at max skew, ensemble precision %v < baseline %v", ens.Precision, base.Precision)
	}
}

func TestFig8Morph(t *testing.T) {
	cfg := Fig8Config{AccuracyConfig: smallAcc(), NumPartitions: 16,
		Lambdas: []float64{0, 0.5, 1}}
	cfg.NumQueries = 25
	rows, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Rows are sorted by stddev; the equi-width end must have larger
	// stddev than the equi-depth end.
	if rows[0].StdDev >= rows[len(rows)-1].StdDev {
		t.Fatalf("stddev not increasing: %v .. %v", rows[0].StdDev, rows[len(rows)-1].StdDev)
	}
	for _, r := range rows {
		if r.Recall < 0.5 {
			t.Fatalf("recall collapsed in morph: %+v", r)
		}
	}
}

func TestFig9Performance(t *testing.T) {
	rows, err := RunFig9(PerfConfig{
		NumDomains: 4000, Steps: 2, NumQueries: 10,
		NumHash: 128, RMax: 4, Partitions: []int{8, 16}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.IndexingTime <= 0 || r.MeanQueryTime <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
}

func TestTab4Sharded(t *testing.T) {
	rows, err := RunTab4(PerfConfig{
		NumDomains: 3000, NumQueries: 10, NumHash: 128, RMax: 4,
		Partitions: []int{8}, Shards: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].System != "Baseline" {
		t.Fatalf("rows: %+v", rows)
	}
	// Partitioning improves selectivity: the ensemble returns no more
	// candidates than the baseline (paper: "the index becomes more
	// selective as the number of partitions increases").
	if rows[1].MeanResults > rows[0].MeanResults {
		t.Fatalf("ensemble candidates %v > baseline %v", rows[1].MeanResults, rows[0].MeanResults)
	}
}

func TestFig1Histograms(t *testing.T) {
	rows, alphaOpen, alphaWeb := RunFig1(Fig1Config{OpenDataDomains: 5000, WebTableDomains: 5000, Seed: 1})
	if len(rows) == 0 {
		t.Fatal("no histogram rows")
	}
	if alphaOpen < 1.5 || alphaOpen > 2.5 {
		t.Fatalf("open-data alpha %v out of band", alphaOpen)
	}
	if alphaWeb < 2.0 || alphaWeb > 2.9 {
		t.Fatalf("web-table alpha %v out of band", alphaWeb)
	}
	// Histogram counts must be decreasing overall (power law): first bucket
	// with data dwarfs the last.
	var first, last int
	for _, r := range rows {
		if r.Corpus == "opendata" {
			if first == 0 {
				first = r.Count
			}
			last = r.Count
		}
	}
	if first <= last {
		t.Fatalf("power-law histogram should decay: first %d last %d", first, last)
	}
}

func TestFig2Conversion(t *testing.T) {
	rows, tStar, sStar, tx := RunFig2()
	if len(rows) != 41 {
		t.Fatalf("got %d rows", len(rows))
	}
	// sˆu,q ≤ sˆx,q pointwise (u ≥ x).
	for _, r := range rows {
		if r.SuQ > r.SxQ+1e-12 {
			t.Fatalf("conservative curve above exact at t=%v", r.T)
		}
	}
	// Known values: s* = 0.5/(3+1-0.5) = 1/7; tx = (1+1)·0.5/(3+1) = 0.25.
	if math.Abs(sStar-1.0/7) > 1e-12 {
		t.Fatalf("s* = %v, want 1/7", sStar)
	}
	if math.Abs(tx-0.25) > 1e-12 {
		t.Fatalf("tx = %v, want 0.25", tx)
	}
	if tStar != 0.5 {
		t.Fatalf("tStar = %v", tStar)
	}
}

func TestFig3Probability(t *testing.T) {
	rows, fp, fn := RunFig3()
	if len(rows) != 51 {
		t.Fatalf("got %d rows", len(rows))
	}
	if fp <= 0 || fn <= 0 {
		t.Fatalf("FP/FN areas must be positive: %v, %v", fp, fn)
	}
	if fp > 0.5 || fn > 0.5 {
		t.Fatalf("FP/FN areas implausibly large: %v, %v", fp, fn)
	}
	// Curve monotone increasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].P < rows[i-1].P-1e-12 {
			t.Fatalf("P not monotone at %d", i)
		}
	}
}

func TestFig10AsymAnalysis(t *testing.T) {
	rows := RunFig10()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// P decreasing, m* increasing with M.
	for i := 1; i < len(rows); i++ {
		if rows[i].PFullCont > rows[i-1].PFullCont+1e-12 {
			t.Fatalf("P not decreasing at M=%d", rows[i].M)
		}
		if rows[i].MStar < rows[i-1].MStar {
			t.Fatalf("m* not increasing at M=%d", rows[i].M)
		}
	}
	// At the largest M with only 256 hashes, recall probability is tiny —
	// the recall collapse of Fig. 10 left.
	if last := rows[len(rows)-1]; last.PFullCont > 0.3 {
		t.Fatalf("P(t=1) at M=%d should be small, got %v", last.M, last.PFullCont)
	}
}

func TestTab3Config(t *testing.T) {
	rows := RunTab3(AccuracyConfig{}, PerfConfig{})
	if len(rows) < 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Variable == "" || r.Value == "" {
			t.Fatalf("blank row: %+v", r)
		}
	}
}

func TestDefaultThresholds(t *testing.T) {
	ts := DefaultThresholds()
	if len(ts) != 20 || math.Abs(ts[0]-0.05) > 1e-12 || math.Abs(ts[19]-1.0) > 1e-12 {
		t.Fatalf("thresholds wrong: %v", ts)
	}
}
