// Package stats provides the descriptive statistics the paper's evaluation
// relies on: moment-based skewness (Eq. 29), log₂ domain-size histograms
// (Fig. 1), a power-law exponent MLE for validating generated corpora, and
// small mean/stddev helpers.
package stats

import "math"

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, 0 for empty input.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Skewness is the moment coefficient of skewness m₃/m₂^(3/2) used by the
// paper (Eq. 29, citing Kokoska & Zwillinger) to quantify domain-size skew.
// Returns 0 for fewer than 2 samples or zero variance.
func Skewness(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// SkewnessInts is Skewness over integer samples.
func SkewnessInts(xs []int) float64 {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return Skewness(f)
}

// Bucket is one log₂ histogram bucket covering sizes in [Lo, Hi).
type Bucket struct {
	Lo, Hi int
	Count  int
}

// LogHistogram buckets positive sizes by powers of two: [1,2), [2,4), …
// matching the log-log presentation of the paper's Fig. 1. Non-positive
// sizes are ignored. Trailing empty buckets are trimmed.
func LogHistogram(sizes []int) []Bucket {
	var buckets []Bucket
	for _, s := range sizes {
		if s <= 0 {
			continue
		}
		b := 0
		for (1 << (b + 1)) <= s {
			b++
		}
		for len(buckets) <= b {
			lo := 1 << len(buckets)
			buckets = append(buckets, Bucket{Lo: lo, Hi: lo * 2})
		}
		buckets[b].Count++
	}
	for len(buckets) > 0 && buckets[len(buckets)-1].Count == 0 {
		buckets = buckets[:len(buckets)-1]
	}
	return buckets
}

// PowerLawAlphaMLE estimates the exponent α of a discrete power-law
// frequency function f(x) ∝ x^(-α) for samples with x ≥ xmin, using the
// continuous MLE with the standard −1/2 discreteness correction
// (Clauset, Shalizi, Newman 2009): α = 1 + n / Σ ln(x_i / (xmin − ½)).
// Samples below xmin are ignored. Returns 0 when no samples qualify.
func PowerLawAlphaMLE(sizes []int, xmin int) float64 {
	if xmin < 1 {
		xmin = 1
	}
	den := 0.0
	n := 0
	base := float64(xmin) - 0.5
	for _, s := range sizes {
		if s < xmin {
			continue
		}
		den += math.Log(float64(s) / base)
		n++
	}
	if n == 0 || den == 0 {
		return 0
	}
	return 1 + float64(n)/den
}
