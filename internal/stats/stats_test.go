package stats

import (
	"math"
	"testing"
	"testing/quick"

	"lshensemble/internal/xrand"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestSkewnessSymmetric(t *testing.T) {
	if got := Skewness([]float64{1, 2, 3, 4, 5}); math.Abs(got) > 1e-12 {
		t.Fatalf("symmetric skewness = %v, want 0", got)
	}
	if Skewness([]float64{1}) != 0 {
		t.Fatal("single sample should give 0")
	}
	if Skewness([]float64{3, 3, 3}) != 0 {
		t.Fatal("zero variance should give 0")
	}
}

func TestSkewnessSign(t *testing.T) {
	// Right-tailed data (like power-law sizes) has positive skewness.
	right := []float64{1, 1, 1, 1, 1, 1, 1, 1, 100}
	if got := Skewness(right); got <= 0 {
		t.Fatalf("right-tailed skewness = %v, want > 0", got)
	}
	left := []float64{100, 100, 100, 100, 100, 100, 100, 100, 1}
	if got := Skewness(left); got >= 0 {
		t.Fatalf("left-tailed skewness = %v, want < 0", got)
	}
}

func TestSkewnessGrowsWithPowerLawInterval(t *testing.T) {
	// The Fig. 5 premise: widening a power-law size interval raises skew.
	rng := xrand.New(3)
	var narrow, wide []int
	for i := 0; i < 20000; i++ {
		narrow = append(narrow, rng.Pareto(2.0, 10, 100))
		wide = append(wide, rng.Pareto(2.0, 10, 100000))
	}
	if SkewnessInts(narrow) >= SkewnessInts(wide) {
		t.Fatalf("skewness should grow with interval: %v vs %v",
			SkewnessInts(narrow), SkewnessInts(wide))
	}
}

func TestSkewnessIntsMatchesFloat(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		ints := make([]int, len(raw))
		floats := make([]float64, len(raw))
		for i, v := range raw {
			ints[i] = int(v)
			floats[i] = float64(v)
		}
		return math.Abs(SkewnessInts(ints)-Skewness(floats)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogram(t *testing.T) {
	h := LogHistogram([]int{1, 1, 2, 3, 4, 7, 8, 100, 0, -5})
	// buckets: [1,2):2  [2,4):2  [4,8):2  [8,16):1 ... [64,128):1
	if h[0].Count != 2 || h[0].Lo != 1 || h[0].Hi != 2 {
		t.Fatalf("bucket 0 = %+v", h[0])
	}
	if h[1].Count != 2 {
		t.Fatalf("bucket 1 = %+v", h[1])
	}
	if h[2].Count != 2 {
		t.Fatalf("bucket 2 = %+v", h[2])
	}
	if h[3].Count != 1 {
		t.Fatalf("bucket 3 = %+v", h[3])
	}
	last := h[len(h)-1]
	if last.Lo != 64 || last.Count != 1 {
		t.Fatalf("last bucket = %+v", last)
	}
	total := 0
	for _, b := range h {
		total += b.Count
	}
	if total != 8 {
		t.Fatalf("total %d, want 8 (non-positive ignored)", total)
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	if h := LogHistogram(nil); len(h) != 0 {
		t.Fatal("empty input should give no buckets")
	}
	if h := LogHistogram([]int{0, -1}); len(h) != 0 {
		t.Fatal("non-positive only should give no buckets")
	}
}

func TestPowerLawAlphaMLERecoversAlpha(t *testing.T) {
	rng := xrand.New(5)
	for _, alpha := range []float64{1.8, 2.0, 2.5} {
		sizes := make([]int, 50000)
		for i := range sizes {
			sizes[i] = rng.Pareto(alpha, 10, 10000000)
		}
		got := PowerLawAlphaMLE(sizes, 10)
		if math.Abs(got-alpha) > 0.15 {
			t.Fatalf("MLE for alpha=%v: got %v", alpha, got)
		}
	}
}

func TestPowerLawAlphaMLEEdge(t *testing.T) {
	if got := PowerLawAlphaMLE(nil, 10); got != 0 {
		t.Fatalf("empty input: %v", got)
	}
	if got := PowerLawAlphaMLE([]int{5, 6}, 10); got != 0 {
		t.Fatalf("all below xmin: %v", got)
	}
}
