package obs

import (
	"bytes"
	"context"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "Ops.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("depth", "Depth.")
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestHistogramBucketBoundaries pins the le-is-inclusive contract: a value
// exactly on a bound lands in that bound's bucket, a hair above lands in
// the next, and anything past the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "Latency.", []float64{0.001, 0.01, 0.1})
	obsv := []float64{
		0.0005,  // bucket 0
		0.001,   // bucket 0 (le is inclusive)
		0.00101, // bucket 1
		0.01,    // bucket 1
		0.1,     // bucket 2
		0.5,     // +Inf
		3.0,     // +Inf
	}
	for _, v := range obsv {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, got, want[i])
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
	sum := 0.0
	for _, v := range obsv {
		sum += v
	}
	if got := h.Sum(); math.Abs(got-sum) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, sum)
	}
	if got := h.Max(); got != 3.0 {
		t.Errorf("max = %v, want 3", got)
	}
}

// TestHistogramQuantiles checks quantile extraction against known
// distributions: uniform fill inside one bucket interpolates linearly, and
// a known mixture puts p50/p95/p99 in the provably correct buckets.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "Latency.", []float64{1, 2, 4, 8, 16})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 100 observations uniform in (1, 2]: every quantile interpolates
	// within the (1, 2] bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("uniform p50 = %v, want 1.5", got)
	}
	if got := h.Quantile(1.0); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("uniform p100 = %v, want 2.0", got)
	}

	// Mixture: 90 fast (≤1), 9 medium (≤4), 1 slow (+Inf overflow).
	reg2 := NewRegistry()
	h2 := reg2.Histogram("lat", "Latency.", []float64{1, 2, 4, 8, 16})
	for i := 0; i < 90; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 9; i++ {
		h2.Observe(3)
	}
	h2.Observe(100) // beyond the last bound → +Inf bucket
	if got := h2.Quantile(0.5); got > 1 {
		t.Errorf("mixture p50 = %v, want ≤ 1", got)
	}
	if got := h2.Quantile(0.95); got <= 2 || got > 4 {
		t.Errorf("mixture p95 = %v, want in (2, 4]", got)
	}
	// The overflow observation resolves to the largest finite bound.
	if got := h2.Quantile(0.999); got != 16 {
		t.Errorf("mixture p99.9 = %v, want 16 (largest finite bound)", got)
	}
}

// TestConcurrentHammer races many writers over one counter, gauge and
// histogram and checks nothing is lost (run under -race in CI).
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "Ops.")
	g := reg.Gauge("flight", "In flight.")
	h := reg.Histogram("lat", "Latency.", []float64{0.25, 0.5, 0.75})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%100) / 100)
				g.Dec()
			}
		}(w)
	}
	// A concurrent scraper exercises the read side against the writers.
	stop := make(chan struct{})
	var scrapeWg sync.WaitGroup
	scrapeWg.Add(1)
	go func() {
		defer scrapeWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				reg.WritePrometheus(&buf)
				h.Quantile(0.99)
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestRecordPathZeroAllocs is the tentpole's core promise: recording into
// counters, gauges and histograms allocates nothing, so instrumentation
// can sit on the live index's allocation-free query path.
func TestRecordPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	reg := NewRegistry()
	c := reg.Counter("ops_total", "Ops.")
	g := reg.Gauge("flight", "In flight.")
	h := reg.Histogram("lat", "Latency.", DefBuckets)
	ctx := WithTraceID(context.Background(), "abc")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(0.0042)
		if TraceID(ctx) == "" {
			t.Fatal("trace id lost")
		}
	}); n != 0 {
		t.Fatalf("record path allocates %v/op, want 0", n)
	}
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() { h.ObserveSince(start) }); n != 0 {
		t.Fatalf("ObserveSince allocates %v/op, want 0", n)
	}
}

// TestPrometheusGolden pins the text exposition format byte-for-byte:
// HELP/TYPE lines, family sorting, label rendering and escaping,
// cumulative histogram buckets, and OnScrape synchronization.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	// Registered out of name order on purpose: export must sort families.
	zc := reg.Counter("z_total", "Last family.")
	zc.Add(2)
	c1 := reg.Counter("app_requests_total", "Requests by endpoint.",
		L("endpoint", "/query"), L("code", "2xx"))
	c1.Add(7)
	reg.Counter("app_requests_total", "Requests by endpoint.",
		L("endpoint", "/query"), L("code", "5xx"))
	esc := reg.Counter("app_odd_total", "Help with \\ and\nnewline.",
		L("name", "quote\" slash\\ nl\n"))
	esc.Inc()
	g := reg.Gauge("app_depth", "Depth.")
	reg.OnScrape(func() { g.Set(-3) })
	h := reg.Histogram("app_seconds", "Latency.", []float64{0.5, 2.5}, L("op", "q"))
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(3.5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP app_depth Depth.`,
		`# TYPE app_depth gauge`,
		`app_depth -3`,
		`# HELP app_odd_total Help with \\ and\nnewline.`,
		`# TYPE app_odd_total counter`,
		`app_odd_total{name="quote\" slash\\ nl\n"} 1`,
		`# HELP app_requests_total Requests by endpoint.`,
		`# TYPE app_requests_total counter`,
		`app_requests_total{code="2xx",endpoint="/query"} 7`,
		`app_requests_total{code="5xx",endpoint="/query"} 0`,
		`# HELP app_seconds Latency.`,
		`# TYPE app_seconds histogram`,
		`app_seconds_bucket{op="q",le="0.5"} 2`,
		`app_seconds_bucket{op="q",le="2.5"} 2`,
		`app_seconds_bucket{op="q",le="+Inf"} 3`,
		`app_seconds_sum{op="q"} 4.25`,
		`app_seconds_count{op="q"} 3`,
		`# HELP z_total Last family.`,
		`# TYPE z_total counter`,
		`z_total 2`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("prometheus text mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryMisusePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("a_total", "A.")
	mustPanic("duplicate series", func() { reg.Counter("a_total", "A.") })
	mustPanic("type mismatch", func() { reg.Gauge("a_total", "A.") })
	mustPanic("help mismatch", func() { reg.Counter("a_total", "Other.", L("x", "y")) })
	reg.Histogram("h_seconds", "H.", []float64{1, 2}, L("op", "a"))
	mustPanic("bucket mismatch", func() { reg.Histogram("h_seconds", "H.", []float64{1, 3}, L("op", "b")) })
	mustPanic("unsorted buckets", func() { reg.Histogram("bad_seconds", "B.", []float64{2, 1}) })
}

func TestTraceIDSanitization(t *testing.T) {
	ok := []string{"abc123", "req-7", "a_b.c:d", strings.Repeat("x", 64)}
	for _, id := range ok {
		if got, accepted := sanitizeTraceID(id); !accepted || got != id {
			t.Errorf("sanitizeTraceID(%q) rejected a valid id", id)
		}
	}
	bad := []string{"", strings.Repeat("x", 65), "has space", "quote\"", "nl\n", "søme"}
	for _, id := range bad {
		if _, accepted := sanitizeTraceID(id); accepted {
			t.Errorf("sanitizeTraceID(%q) accepted an invalid id", id)
		}
	}
	if a, b := NewTraceID(), NewTraceID(); a == b || len(a) != 16 {
		t.Errorf("NewTraceID not unique-ish: %q vs %q", a, b)
	}
}

// TestHTTPMiddleware drives one wrapped endpoint end to end: status-class
// counters, latency histogram, in-flight gauge, trace-ID header echo and
// honoring, and the structured access log keyed by trace ID.
func TestHTTPMiddleware(t *testing.T) {
	reg := NewRegistry()
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	m := NewHTTPMetrics(reg, "test", logger)
	var sawTrace string
	h := m.Wrap("/echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawTrace = TraceID(r.Context())
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/echo", nil)
	req.Header.Set(TraceHeader, "trace-mw-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "trace-mw-1" {
		t.Errorf("response trace header = %q, want trace-mw-1 (inbound id honored)", got)
	}
	if sawTrace != "trace-mw-1" {
		t.Errorf("handler ctx trace = %q, want trace-mw-1", sawTrace)
	}
	// A second request without a header gets a generated ID.
	resp2, err := http.Get(ts.URL + "/echo")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(TraceHeader); len(got) != 16 {
		t.Errorf("generated trace header = %q, want 16 hex chars", got)
	}
	// And one failing request for the 5xx class.
	resp3, err := http.Get(ts.URL + "/echo?fail=1")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		`test_http_requests_total{code="2xx",endpoint="/echo"} 2`,
		`test_http_requests_total{code="5xx",endpoint="/echo"} 1`,
		`test_http_in_flight 0`,
		`test_http_request_seconds_count{endpoint="/echo"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q in:\n%s", want, text)
		}
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "trace_id=trace-mw-1") {
		t.Errorf("access log missing trace id:\n%s", logs)
	}
	if !strings.Contains(logs, "status=500") {
		t.Errorf("access log missing 5xx line:\n%s", logs)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
