//go:build race

package obs

// raceEnabled reports that the race detector is active: its runtime adds
// allocations of its own, so strict allocation-count assertions are
// skipped.
const raceEnabled = true
