package obs

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets (seconds): 50µs to 10s in a
// coarse exponential ladder. The low end sits below the live index's idle
// query latency so cache hits and pruned queries still resolve to a
// bucket, the high end past any sane HTTP deadline.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed, sorted buckets. Observe is
// lock-free, allocation-free and safe for concurrent use; exact p50/p95/p99
// extraction (Quantile) and the Prometheus cumulative export read the same
// atomics. The zero value is unusable — histograms come from
// Registry.Histogram.
type Histogram struct {
	bounds []float64 // sorted upper bounds; the +Inf bucket is implicit
	les    []string  // pre-rendered `le="..."` label fragments, + the +Inf one
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits, CAS-maximized
}

// NewHistogram builds a standalone histogram (not attached to a Registry)
// over the given bucket bounds; nil selects DefBuckets. For callers — like
// the lshload harness — that want concurrent recording and quantile
// extraction without a Prometheus exporter.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return newHistogram(bounds)
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		les:    make([]string, len(bounds)+1),
	}
	for i, ub := range h.bounds {
		h.les[i] = `le="` + strconv.FormatFloat(ub, 'g', -1, 64) + `"`
	}
	h.les[len(bounds)] = `le="+Inf"`
	return h
}

// Observe records one value (in the bucket unit, seconds for latency).
func (h *Histogram) Observe(v float64) {
	// Linear scan: the ladders here are short (≤ ~20 bounds) and latency
	// observations cluster in the low buckets, so this beats binary search
	// in practice and keeps the path branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Quantile returns the q-quantile (0 < q ≤ 1, e.g. 0.5, 0.99) estimated
// from the bucket counts with linear interpolation inside the winning
// bucket. Observations in the overflow (+Inf) bucket resolve to the
// largest finite bound. Returns 0 when nothing was observed. Concurrent
// observations may land between bucket reads; the estimate is coherent to
// within those in-flight samples.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 || q > 1 {
		return 0
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper edge to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// appendText appends the Prometheus cumulative-bucket rendering.
func (h *Histogram) appendText(b []byte, name, labels string) []byte {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b = appendSeries(b, name, "_bucket", labels, h.les[i])
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = appendSeries(b, name, "_sum", labels, "")
	b = strconv.AppendFloat(b, h.Sum(), 'g', -1, 64)
	b = append(b, '\n')
	b = appendSeries(b, name, "_count", labels, "")
	b = strconv.AppendUint(b, h.Count(), 10)
	b = append(b, '\n')
	return b
}
