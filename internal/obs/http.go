package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"
)

// --- request tracing ---

// traceKey carries the request trace ID in a context.
type traceKey struct{}

// TraceHeader is the wire header the trace ID rides in: the router stamps
// it on every shard fan-out call, and a caller may supply its own to follow
// one request across the tiers.
const TraceHeader = "X-Request-Id"

// WithTraceID returns ctx carrying the given trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "" when none is set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// NewTraceID returns a fresh 16-hex-character request ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; trace IDs only need
		// uniqueness-in-practice, so degrade to a timestamp.
		return "t" + hex.EncodeToString([]byte(time.Now().Format("150405.000000")))[:15]
	}
	return hex.EncodeToString(b[:])
}

// sanitizeTraceID accepts a caller-supplied request ID if it is short and
// printable-safe (it is echoed into logs and response headers), else
// reports rejection.
func sanitizeTraceID(id string) (string, bool) {
	if id == "" || len(id) > 64 {
		return "", false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return "", false
		}
	}
	return id, true
}

// EnsureTraceID resolves the trace ID for an inbound request: an
// acceptable X-Request-Id header is honored (so a router-issued ID follows
// the request into the shard), anything else gets a fresh ID.
func EnsureTraceID(r *http.Request) string {
	if id, ok := sanitizeTraceID(r.Header.Get(TraceHeader)); ok {
		return id
	}
	return NewTraceID()
}

// TraceMiddleware stamps a trace ID into the request context and response
// header without collecting any metrics — the wrapping used when metrics
// are disabled but trace propagation must keep working.
func TraceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := EnsureTraceID(r)
		w.Header().Set(TraceHeader, id)
		next.ServeHTTP(w, r.WithContext(WithTraceID(r.Context(), id)))
	})
}

// --- HTTP middleware ---

// HTTPMetrics instruments a handler set: per-endpoint request counters
// split by status class, per-endpoint latency histograms, one in-flight
// gauge, plus trace-ID stamping and a structured access log. One
// HTTPMetrics is shared by every endpoint of a binary; Wrap registers the
// endpoint's series and returns the instrumented handler.
type HTTPMetrics struct {
	reg      *Registry
	prefix   string
	logger   *slog.Logger
	inFlight *Gauge
}

// NewHTTPMetrics creates the shared middleware state. prefix namespaces
// the metric families (e.g. "lshensembled" → lshensembled_http_requests_total);
// logger receives the per-request access log (nil → slog.Default()).
func NewHTTPMetrics(reg *Registry, prefix string, logger *slog.Logger) *HTTPMetrics {
	if logger == nil {
		logger = slog.Default()
	}
	return &HTTPMetrics{
		reg:      reg,
		prefix:   prefix,
		logger:   logger,
		inFlight: reg.Gauge(prefix+"_http_in_flight", "Requests currently being served."),
	}
}

// Logger returns the access-log logger.
func (m *HTTPMetrics) Logger() *slog.Logger { return m.logger }

// statusClasses maps status/100 → counter index; 1xx/3xx fold into "other".
var statusClasses = [...]string{"2xx", "4xx", "5xx", "other"}

func classIndex(status int) int {
	switch status / 100 {
	case 2:
		return 0
	case 4:
		return 1
	case 5:
		return 2
	default:
		return 3
	}
}

// Wrap instruments one endpoint. endpoint is the label value (the route
// path, e.g. "/query"). A nil *HTTPMetrics wraps nothing, so a disabled
// middleware costs zero.
func (m *HTTPMetrics) Wrap(endpoint string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	var byClass [len(statusClasses)]*Counter
	for i, class := range statusClasses {
		byClass[i] = m.reg.Counter(m.prefix+"_http_requests_total",
			"HTTP requests by endpoint and status class.",
			L("endpoint", endpoint), L("code", class))
	}
	lat := m.reg.Histogram(m.prefix+"_http_request_seconds",
		"HTTP request latency by endpoint.", DefBuckets, L("endpoint", endpoint))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := EnsureTraceID(r)
		w.Header().Set(TraceHeader, id)
		ctx := WithTraceID(r.Context(), id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		m.inFlight.Inc()
		next.ServeHTTP(sw, r.WithContext(ctx))
		m.inFlight.Dec()
		elapsed := time.Since(start)
		lat.Observe(elapsed.Seconds())
		byClass[classIndex(sw.status)].Inc()
		// Every request logs at Debug keyed by trace ID (the router→shard
		// tracing contract rides on this line); server-side failures
		// escalate so they surface at default log levels.
		level := slog.LevelDebug
		if sw.status >= 500 {
			level = slog.LevelError
		}
		m.logger.LogAttrs(ctx, level, "http",
			slog.String("trace_id", id),
			slog.String("endpoint", endpoint),
			slog.String("method", r.Method),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("elapsed", elapsed),
		)
	})
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
