// Package obs is the dependency-free observability core shared by every
// serving layer: a metrics registry of atomic counters, gauges and
// fixed-bucket latency histograms, a Prometheus-text-format exporter, and
// (http.go) the HTTP middleware + request-tracing helpers both binaries
// mount their endpoints behind.
//
// The design constraint is the hot path: recording — Counter.Add,
// Gauge.Set, Histogram.Observe — is a handful of atomic operations and
// performs zero allocations, so instrumentation can sit directly on the
// live index's query path without disturbing its allocation-free steady
// state. All allocation happens at registration time (startup) or at
// scrape time (an operator polling /metrics), never per request.
//
// Metric handles are registered once with fixed label values and used
// forever:
//
//	reg := obs.NewRegistry()
//	hits := reg.Counter("cache_hits_total", "Cache hits.", obs.L("tier", "result"))
//	lat := reg.Histogram("query_seconds", "Query latency.", obs.DefBuckets, obs.L("op", "query"))
//	...
//	hits.Inc()
//	lat.ObserveSince(start)
//
// Registering the same family name again with different labels appends a
// child series; re-registering an identical (name, labels) pair, or the
// same name with a different type or help string, panics — both are
// startup-time programmer errors, not runtime conditions.
//
// Histograms use fixed, sorted upper bounds (seconds). Besides the
// Prometheus cumulative-bucket export they support exact in-process
// quantile extraction (Quantile, linearly interpolated within a bucket),
// which is what cmd/lshload builds its p50/p95/p99 report from.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed name="value" pair attached to a metric at
// registration.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for Label{Name: name, Value: value}.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value. It exists to mirror an external monotone
// source (e.g. the live index's planner counters) into the registry at
// scrape time; regular instrumentation should use Inc/Add.
func (c *Counter) Store(v uint64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (an int64). All methods are
// safe for concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates the one non-nil handle in a child.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series of a family.
type child struct {
	labels string // pre-rendered `key="value",...` (no braces), "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only; children must agree
	kids    []*child
}

// Registry holds registered metrics and renders them in Prometheus text
// format. Registration is synchronized; recording on the returned handles
// never touches the registry again.
type Registry struct {
	mu       sync.Mutex
	fams     map[string]*family
	names    []string // registration order; sorted copy taken at export
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every export, before any
// metric is read. Use it to sync externally maintained values (e.g. the
// live index's Stats counters) into registered handles so one scrape sees
// a coherent view.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// register adds one series, creating the family on first use.
func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels []Label) *child {
	if name == "" {
		panic("obs: empty metric name")
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets}
		r.fams[name] = f
		r.names = append(r.names, name)
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %q registered with two help strings", name))
		}
		for _, k := range f.kids {
			if k.labels == ls {
				panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, ls))
			}
		}
	}
	k := &child{labels: ls}
	f.kids = append(f.kids, k)
	return k
}

// Counter registers (or extends) a counter family and returns the handle
// for the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	k := r.register(name, help, kindCounter, nil, labels)
	k.c = &Counter{}
	return k.c
}

// Gauge registers (or extends) a gauge family and returns the handle for
// the given label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	k := r.register(name, help, kindGauge, nil, labels)
	k.g = &Gauge{}
	return k.g
}

// Histogram registers (or extends) a histogram family and returns the
// handle for the given label set. buckets are sorted upper bounds in the
// observed unit (seconds for latency); nil selects DefBuckets; every child
// of one family must use identical buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.mu.Lock()
	if f := r.fams[name]; f != nil && !equalBuckets(f.buckets, buckets) {
		r.mu.Unlock()
		panic(fmt.Sprintf("obs: histogram %q registered with two bucket layouts", name))
	}
	r.mu.Unlock()
	k := r.register(name, help, kindHistogram, h.bounds, labels)
	k.h = h
	return k.h
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// renderLabels pre-renders a label set as `k1="v1",k2="v2"` with
// Prometheus escaping, sorted by name so logically equal sets collide in
// the duplicate check.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): families sorted by name, children in
// registration order. OnScrape callbacks run first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	callbacks := append([]func(){}, r.onScrape...)
	names := append([]string{}, r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()
	for _, fn := range callbacks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b []byte
	for _, f := range fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, escapeHelp(f.help)...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind.String()...)
		b = append(b, '\n')
		for _, k := range f.kids {
			switch f.kind {
			case kindCounter:
				b = appendSeries(b, f.name, "", k.labels, "")
				b = strconv.AppendUint(b, k.c.Value(), 10)
				b = append(b, '\n')
			case kindGauge:
				b = appendSeries(b, f.name, "", k.labels, "")
				b = strconv.AppendInt(b, k.g.Value(), 10)
				b = append(b, '\n')
			case kindHistogram:
				b = k.h.appendText(b, f.name, k.labels)
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// appendSeries appends `name[suffix]{labels[,extra]} ` (trailing space
// included) to b, omitting empty braces.
func appendSeries(b []byte, name, suffix, labels, extra string) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if labels != "" || extra != "" {
		b = append(b, '{')
		b = append(b, labels...)
		if labels != "" && extra != "" {
			b = append(b, ',')
		}
		b = append(b, extra...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	return b
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
