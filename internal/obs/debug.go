package obs

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// NewLogger builds a structured logger writing to stderr at the given level
// ("debug", "info", "warn", "error"), as logfmt text or JSON, and installs
// it as slog.Default so library code logging via the default logger agrees
// with the binary's configuration.
func NewLogger(level string, json bool) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}

// NewDebugMux builds the handler for a binary's debug listener: the pprof
// suite under /debug/pprof/ plus, when reg is non-nil, a /metrics mirror.
// The debug listener is separate from the serving listener on purpose —
// profiles and heap dumps should never ride the port exposed to clients.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	return mux
}

// StartDebugServer binds the debug listener and serves NewDebugMux(reg) on
// it in the background. It returns a stop function — a no-op when addr is
// empty (debug listener disabled) — and fails fast when the bind fails, so
// a typo'd -debug-addr aborts startup instead of silently serving nothing.
func StartDebugServer(addr string, reg *Registry, logger *slog.Logger) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	if logger == nil {
		logger = slog.Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	logger.Info("debug listener up", "addr", ln.Addr().String())
	return func() { srv.Close() }, nil
}
