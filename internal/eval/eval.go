// Package eval implements the paper's accuracy metrics (Section 6.1,
// Eq. 27–28): set-overlap precision and recall against exact ground truth,
// the Fβ score, and a batch averager that applies the paper's conventions
// for empty results ("we consider an empty result having precision equal to
// 1.0, however, we exclude such results when computing average precisions").
package eval

// PR computes precision and recall of a result set against the ground
// truth. emptyResult reports whether the result set was empty (the caller's
// averager may exclude its precision). Conventions:
//   - empty result: precision 1.0 (flagged), recall 0 unless truth is also
//     empty, in which case recall 1.0;
//   - empty truth, non-empty result: precision 0, recall 1.0.
func PR(result []string, truth map[string]bool) (precision, recall float64, emptyResult bool) {
	if len(result) == 0 {
		if len(truth) == 0 {
			return 1, 1, true
		}
		return 1, 0, true
	}
	tp := 0
	seen := make(map[string]struct{}, len(result))
	for _, k := range result {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if truth[k] {
			tp++
		}
	}
	precision = float64(tp) / float64(len(seen))
	if len(truth) == 0 {
		recall = 1
	} else {
		recall = float64(tp) / float64(len(truth))
	}
	return precision, recall, false
}

// FBeta is the Fβ score (paper Eq. 28). Returns 0 when both inputs are 0.
func FBeta(beta, precision, recall float64) float64 {
	b2 := beta * beta
	den := b2*precision + recall
	if den == 0 {
		return 0
	}
	return (1 + b2) * precision * recall / den
}

// Averager accumulates per-query precision/recall with the paper's
// empty-result convention and reports batch averages.
type Averager struct {
	sumP, sumR   float64
	nP, nR       int
	totalQueries int
	emptyResults int
}

// Add records one query's metrics. Empty-result precisions are excluded
// from the precision average; recall always counts.
func (a *Averager) Add(precision, recall float64, emptyResult bool) {
	a.totalQueries++
	if emptyResult {
		a.emptyResults++
	} else {
		a.sumP += precision
		a.nP++
	}
	a.sumR += recall
	a.nR++
}

// Precision returns the average precision over non-empty results; 1.0 when
// every result was empty (vacuous precision, per the paper's convention).
func (a *Averager) Precision() float64 {
	if a.nP == 0 {
		return 1
	}
	return a.sumP / float64(a.nP)
}

// Recall returns the average recall over all queries (0 when none added).
func (a *Averager) Recall() float64 {
	if a.nR == 0 {
		return 0
	}
	return a.sumR / float64(a.nR)
}

// F1 returns the F1 score of the averaged precision and recall.
func (a *Averager) F1() float64 { return FBeta(1, a.Precision(), a.Recall()) }

// F05 returns the precision-biased F0.5 score of the averages.
func (a *Averager) F05() float64 { return FBeta(0.5, a.Precision(), a.Recall()) }

// EmptyFraction returns the fraction of queries with empty results — the
// quantity the paper reports for Asymmetric Minwise Hashing ("around 80% of
// query results are empty for thresholds up to 0.7").
func (a *Averager) EmptyFraction() float64 {
	if a.totalQueries == 0 {
		return 0
	}
	return float64(a.emptyResults) / float64(a.totalQueries)
}

// Queries returns the number of queries accumulated.
func (a *Averager) Queries() int { return a.totalQueries }
