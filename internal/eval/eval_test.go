package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func truthSet(keys ...string) map[string]bool {
	m := map[string]bool{}
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func TestPRBasic(t *testing.T) {
	p, r, empty := PR([]string{"a", "b", "c", "d"}, truthSet("a", "b", "e"))
	if empty {
		t.Fatal("non-empty flagged empty")
	}
	if p != 0.5 {
		t.Fatalf("precision = %v, want 0.5", p)
	}
	if math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v, want 2/3", r)
	}
}

func TestPRPerfect(t *testing.T) {
	p, r, _ := PR([]string{"a", "b"}, truthSet("a", "b"))
	if p != 1 || r != 1 {
		t.Fatalf("perfect result: p=%v r=%v", p, r)
	}
}

func TestPREmptyResult(t *testing.T) {
	p, r, empty := PR(nil, truthSet("a"))
	if !empty || p != 1 || r != 0 {
		t.Fatalf("empty result vs non-empty truth: p=%v r=%v empty=%v", p, r, empty)
	}
	p, r, empty = PR(nil, nil)
	if !empty || p != 1 || r != 1 {
		t.Fatalf("empty vs empty: p=%v r=%v empty=%v", p, r, empty)
	}
}

func TestPREmptyTruth(t *testing.T) {
	p, r, empty := PR([]string{"a"}, nil)
	if empty || p != 0 || r != 1 {
		t.Fatalf("non-empty result vs empty truth: p=%v r=%v empty=%v", p, r, empty)
	}
}

func TestPRDuplicateResults(t *testing.T) {
	// Duplicate keys in the result must not double count.
	p, r, _ := PR([]string{"a", "a", "b"}, truthSet("a"))
	if p != 0.5 || r != 1 {
		t.Fatalf("dup handling: p=%v r=%v", p, r)
	}
}

func TestPRBounds(t *testing.T) {
	f := func(result []string, truthKeys []string) bool {
		truth := truthSet(truthKeys...)
		p, r, _ := PR(result, truth)
		return p >= 0 && p <= 1 && r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFBeta(t *testing.T) {
	// F1 of (0.5, 0.5) = 0.5.
	if got := FBeta(1, 0.5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("F1 = %v", got)
	}
	// F1 is the harmonic mean: (2·p·r)/(p+r).
	if got := FBeta(1, 1, 0.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("F1(1,0.5) = %v, want 2/3", got)
	}
	if got := FBeta(1, 0, 0); got != 0 {
		t.Fatalf("F1(0,0) = %v, want 0", got)
	}
	// F0.5 weighs precision more: with p > r it exceeds F1.
	if FBeta(0.5, 0.9, 0.3) <= FBeta(1, 0.9, 0.3) {
		t.Fatal("F0.5 should exceed F1 when precision > recall")
	}
	// Matches the expanded formula.
	p, r, b := 0.7, 0.4, 0.5
	want := (1 + b*b) * p * r / (b*b*p + r)
	if got := FBeta(b, p, r); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FBeta = %v, want %v", got, want)
	}
}

func TestAveragerConventions(t *testing.T) {
	var a Averager
	a.Add(0.5, 1.0, false)
	a.Add(1.0, 0.0, true) // empty: precision excluded, recall counted
	a.Add(1.0, 0.5, false)
	if got := a.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("avg precision = %v, want 0.75 (empty excluded)", got)
	}
	if got := a.Recall(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("avg recall = %v, want 0.5", got)
	}
	if got := a.EmptyFraction(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("empty fraction = %v, want 1/3", got)
	}
	if a.Queries() != 3 {
		t.Fatalf("queries = %d", a.Queries())
	}
}

func TestAveragerAllEmpty(t *testing.T) {
	var a Averager
	a.Add(1, 0, true)
	a.Add(1, 0, true)
	if got := a.Precision(); got != 1 {
		t.Fatalf("all-empty precision = %v, want 1 (vacuous)", got)
	}
	if got := a.EmptyFraction(); got != 1 {
		t.Fatalf("empty fraction = %v", got)
	}
}

func TestAveragerZero(t *testing.T) {
	var a Averager
	if a.Precision() != 1 || a.Recall() != 0 || a.EmptyFraction() != 0 {
		t.Fatal("zero-value averager wrong")
	}
}

func TestAveragerFScores(t *testing.T) {
	var a Averager
	a.Add(0.8, 0.6, false)
	if got, want := a.F1(), FBeta(1, 0.8, 0.6); got != want {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
	if got, want := a.F05(), FBeta(0.5, 0.8, 0.6); got != want {
		t.Fatalf("F05 = %v, want %v", got, want)
	}
}
