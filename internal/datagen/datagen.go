// Package datagen generates synthetic domain corpora that reproduce the
// two statistical properties the paper's evaluation depends on (DESIGN.md
// substitutions #1 and #2):
//
//  1. power-law distributed domain cardinalities (Fig. 1), and
//  2. a rich spectrum of true containment relationships between domains,
//     so that ground-truth result sets at every threshold are non-trivial.
//
// OpenData mimics the Canadian Open Data corpus used for the accuracy
// experiments: domains are grouped into "joinable clusters" that share a
// value pool (members take random contiguous runs of the pool, yielding
// containment scores across (0, 1]), plus Zipfian background values drawn
// from a global universe, plus domain-private noise. WebTable mimics the
// WDC Web Table corpus used for the performance experiments: same size
// distribution, all-private values (ground truth is not needed at that
// scale, exactly as in the paper).
package datagen

import (
	"fmt"
	"math"
	"sort"

	"lshensemble/internal/core"
	"lshensemble/internal/exact"
	"lshensemble/internal/minhash"
	"lshensemble/internal/par"
	"lshensemble/internal/xrand"
)

// Domain is a named set of distinct 64-bit value identifiers.
type Domain struct {
	Key    string
	Values []uint64
}

// Corpus is a generated collection of domains.
type Corpus struct {
	Domains []Domain
}

// Sizes returns the cardinality of every domain.
func (c *Corpus) Sizes() []int {
	s := make([]int, len(c.Domains))
	for i, d := range c.Domains {
		s[i] = len(d.Values)
	}
	return s
}

// OpenDataConfig parameterizes OpenData. Zero values select defaults.
type OpenDataConfig struct {
	NumDomains      int     // default 8192
	Alpha           float64 // power-law exponent; default 2.0 (Fig. 1 left)
	MinSize         int     // default 10 (the paper discards smaller domains)
	MaxSize         int     // default 20000
	ClusterFraction float64 // fraction of domains inside joinable clusters; default 0.75
	MeanClusterSize int     // mean domains per cluster; default 16
	NoiseFraction   float64 // fraction of each member's values that are private; default 0.25
	ZipfFraction    float64 // fraction of private values drawn from the global Zipf universe; default 0.3
	ZipfUniverse    int     // global universe size; default 1 << 20
	Seed            uint64
}

func (c OpenDataConfig) withDefaults() OpenDataConfig {
	if c.NumDomains == 0 {
		c.NumDomains = 8192
	}
	if c.Alpha == 0 {
		c.Alpha = 2.0
	}
	if c.MinSize == 0 {
		c.MinSize = 10
	}
	if c.MaxSize == 0 {
		c.MaxSize = 20000
	}
	if c.ClusterFraction == 0 {
		c.ClusterFraction = 0.75
	}
	if c.MeanClusterSize == 0 {
		c.MeanClusterSize = 16
	}
	if c.NoiseFraction == 0 {
		c.NoiseFraction = 0.25
	}
	if c.ZipfFraction == 0 {
		c.ZipfFraction = 0.3
	}
	if c.ZipfUniverse == 0 {
		c.ZipfUniverse = 1 << 20
	}
	return c
}

// Value-space layout (disjoint by construction):
//
//	cluster values:  clusterID<<32 | offset       (top bit 0x4 set)
//	zipf universe:   0x2<<60 | rank
//	private values:  0x1<<60 | domainID<<24 | seq
const (
	clusterTag = uint64(0x4) << 60
	zipfTag    = uint64(0x2) << 60
	privateTag = uint64(0x1) << 60
)

// OpenData generates an accuracy-experiment corpus. Deterministic in cfg.
func OpenData(cfg OpenDataConfig) *Corpus {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed ^ 0xa11ce)
	n := cfg.NumDomains

	// Sample sizes first so cluster pools can match their members.
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = rng.Pareto(cfg.Alpha, cfg.MinSize, cfg.MaxSize)
	}

	// Assign domains to clusters: consecutive runs of geometric length.
	clusterOf := make([]int, n)
	clusterMax := make(map[int]int) // cluster id → largest member size
	cid := 0
	for i := 0; i < n; {
		if rng.Float64() < cfg.ClusterFraction {
			run := 2 + rng.Intn(2*cfg.MeanClusterSize-2) // mean ≈ MeanClusterSize+1
			cid++
			for j := 0; j < run && i < n; j, i = j+1, i+1 {
				clusterOf[i] = cid
				if sizes[i] > clusterMax[cid] {
					clusterMax[cid] = sizes[i]
				}
			}
		} else {
			clusterOf[i] = 0 // unclustered
			i++
		}
	}

	corpus := &Corpus{Domains: make([]Domain, n)}
	for i := 0; i < n; i++ {
		size := sizes[i]
		values := make(map[uint64]struct{}, size)
		if c := clusterOf[i]; c != 0 {
			// Shared part: a contiguous run of the cluster pool. Pool size
			// is 1.5× the largest member so even the largest member is a
			// proper subset, and runs of different members overlap heavily.
			pool := clusterMax[c] + clusterMax[c]/2 + 1
			shared := size - int(cfg.NoiseFraction*float64(size))
			if shared > pool {
				shared = pool
			}
			start := rng.Intn(pool - shared + 1)
			for o := 0; o < shared; o++ {
				values[clusterTag|uint64(c)<<32|uint64(start+o)] = struct{}{}
			}
		}
		// Fill the remainder with Zipfian background and private noise.
		seq := 0
		for len(values) < size {
			if rng.Float64() < cfg.ZipfFraction {
				v := zipfTag | uint64(rng.Zipf(1.1, cfg.ZipfUniverse))
				if _, dup := values[v]; !dup {
					values[v] = struct{}{}
					continue
				}
			}
			values[privateTag|uint64(i)<<24|uint64(seq)] = struct{}{}
			seq++
		}
		vals := make([]uint64, 0, size)
		for v := range values {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		corpus.Domains[i] = Domain{Key: fmt.Sprintf("od-%06d", i), Values: vals}
	}
	return corpus
}

// WebTableConfig parameterizes WebTable. Zero values select defaults.
type WebTableConfig struct {
	NumDomains int     // default 65536
	Alpha      float64 // default 2.4 (Fig. 1 right is steeper)
	MinSize    int     // default 5
	MaxSize    int     // default 100000
	// ClusterFraction controls how many domains share value pools with
	// their neighbours (web tables are heavily templated, so columns
	// repeat across sites and the baseline's candidate sets are large —
	// the effect Table 4 measures). Default 0.8; set negative for fully
	// private values.
	ClusterFraction float64
	MeanClusterSize int // default 32
	// ZipfFraction is the fraction of each domain's values drawn from a
	// global Zipfian universe (ubiquitous web values: years, country
	// names, booleans). These shared values create the spurious LSH
	// collisions that make the Baseline's loosely-thresholded candidate
	// sets balloon at scale — the dominant query cost in the paper's
	// Table 4. Default 0.15; set negative to disable.
	ZipfFraction float64
	ZipfUniverse int // default 1 << 16
	Seed         uint64
}

func (c WebTableConfig) withDefaults() WebTableConfig {
	if c.NumDomains == 0 {
		c.NumDomains = 65536
	}
	if c.Alpha == 0 {
		c.Alpha = 2.4
	}
	if c.MinSize == 0 {
		c.MinSize = 5
	}
	if c.MaxSize == 0 {
		c.MaxSize = 100000
	}
	if c.ClusterFraction == 0 {
		c.ClusterFraction = 0.8
	}
	if c.ClusterFraction < 0 {
		c.ClusterFraction = 0
	}
	if c.MeanClusterSize == 0 {
		c.MeanClusterSize = 32
	}
	if c.ZipfFraction == 0 {
		c.ZipfFraction = 0.15
	}
	if c.ZipfFraction < 0 {
		c.ZipfFraction = 0
	}
	if c.ZipfUniverse == 0 {
		c.ZipfUniverse = 1 << 16
	}
	return c
}

// WebTable generates a performance-experiment corpus: power-law sizes and
// contiguous value runs. Clustered domains draw their run from a shared
// per-cluster pool (overlap without per-value bookkeeping — generation
// stays O(size) per domain); the rest are private. The overlap makes
// candidate-set sizes, and therefore the Baseline-vs-Ensemble query-cost
// gap of Table 4, realistic.
func WebTable(cfg WebTableConfig) *Corpus {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed ^ 0x3eb7ab1e)
	corpus := &Corpus{Domains: make([]Domain, cfg.NumDomains)}
	i := 0
	cid := 0
	for i < cfg.NumDomains {
		run := 1
		clustered := rng.Float64() < cfg.ClusterFraction
		if clustered {
			run = 2 + rng.Intn(2*cfg.MeanClusterSize-2)
			cid++
		}
		// First pass of the run: sample sizes, find the largest member.
		end := i + run
		if end > cfg.NumDomains {
			end = cfg.NumDomains
		}
		maxSize := 0
		sizes := make([]int, end-i)
		for j := range sizes {
			sizes[j] = rng.Pareto(cfg.Alpha, cfg.MinSize, cfg.MaxSize)
			if sizes[j] > maxSize {
				maxSize = sizes[j]
			}
		}
		pool := maxSize + maxSize/2 + 1
		for j, size := range sizes {
			vals := make([]uint64, 0, size)
			nZipf := int(cfg.ZipfFraction * float64(size))
			run := size - nZipf
			var base uint64
			var start int
			if clustered {
				base = clusterTag | uint64(cid)<<32
				start = rng.Intn(pool - run + 1)
			} else {
				base = privateTag | uint64(i+j)<<24
			}
			for o := 0; o < run; o++ {
				vals = append(vals, base|uint64(start+o))
			}
			// Global Zipfian background; duplicates are replaced by private
			// values so the domain cardinality stays exact.
			if nZipf > 0 {
				seen := make(map[uint64]struct{}, nZipf)
				priv := privateTag | uint64(i+j)<<24 | uint64(1)<<23 // disjoint from run above
				seq := 0
				for len(seen) < nZipf {
					v := zipfTag | uint64(rng.Zipf(1.05, cfg.ZipfUniverse))
					if _, dup := seen[v]; dup {
						v = priv | uint64(seq)
						seq++
					}
					seen[v] = struct{}{}
					vals = append(vals, v)
				}
			}
			corpus.Domains[i+j] = Domain{Key: fmt.Sprintf("wt-%08d", i+j), Values: vals}
		}
		i = end
	}
	return corpus
}

// Records hashes and sketches every domain with the hasher, in parallel,
// returning index-ready records aligned with c.Domains. Jobs drain from a
// shared counter so a few huge power-law domains don't straggle one chunk.
func Records(c *Corpus, h *minhash.Hasher) []core.Record {
	recs := make([]core.Record, len(c.Domains))
	par.Drain(len(c.Domains), 0, func(_, i int) {
		d := c.Domains[i]
		recs[i] = core.Record{Key: d.Key, Size: len(d.Values), Sig: h.SketchUint64s(d.Values)}
	})
	return recs
}

// ExactDomains adapts the corpus for the exact ground-truth engine.
func ExactDomains(c *Corpus) []exact.Domain {
	out := make([]exact.Domain, len(c.Domains))
	for i, d := range c.Domains {
		out[i] = exact.Domain{Key: d.Key, Values: d.Values}
	}
	return out
}

// SampleQueries returns k distinct domain indices drawn uniformly, to be
// used as query domains (the paper samples 3,000 indexed domains).
func SampleQueries(c *Corpus, k int, seed uint64) []int {
	n := len(c.Domains)
	if k > n {
		k = n
	}
	rng := xrand.New(seed ^ 0x9e3779b9)
	perm := rng.Perm(n)
	return perm[:k]
}

// QueriesBySizeDecile returns the indices of domains whose size falls in
// the smallest (decile = 0) or largest (decile = 9) tenth of the corpus —
// the workloads of Fig. 6 and Fig. 7. At most k indices are returned.
func QueriesBySizeDecile(c *Corpus, decile, k int, seed uint64) []int {
	n := len(c.Domains)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(c.Domains[order[a]].Values) < len(c.Domains[order[b]].Values)
	})
	lo := n * decile / 10
	hi := n * (decile + 1) / 10
	band := order[lo:hi]
	rng := xrand.New(seed ^ 0xdec11e)
	idx := rng.Perm(len(band))
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = band[idx[i]]
	}
	return out
}

// NestedSizeSubsets returns n nested index subsets with geometrically
// growing size intervals [minSize, minSize·g^i] — the skewness sweep of
// Fig. 5 (skewness grows with the interval because sizes are power-law).
func NestedSizeSubsets(c *Corpus, n int) [][]int {
	sizes := c.Sizes()
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	subsets := make([][]int, n)
	for i := 0; i < n; i++ {
		// threshold_i = minS * (maxS/minS)^((i+1)/n)
		frac := float64(i+1) / float64(n)
		thr := float64(minS) * math.Pow(float64(maxS)/float64(minS), frac)
		var idx []int
		for j, s := range sizes {
			if float64(s) <= thr+1e-9 {
				idx = append(idx, j)
			}
		}
		subsets[i] = idx
	}
	return subsets
}
