package datagen

import (
	"testing"

	"lshensemble/internal/exact"
	"lshensemble/internal/minhash"
	"lshensemble/internal/stats"
)

func TestOpenDataShape(t *testing.T) {
	c := OpenData(OpenDataConfig{NumDomains: 2000, Seed: 1})
	if len(c.Domains) != 2000 {
		t.Fatalf("got %d domains", len(c.Domains))
	}
	for i, d := range c.Domains {
		if len(d.Values) < 10 {
			t.Fatalf("domain %d smaller than MinSize: %d", i, len(d.Values))
		}
		seen := map[uint64]struct{}{}
		for _, v := range d.Values {
			if _, dup := seen[v]; dup {
				t.Fatalf("domain %d has duplicate value %d", i, v)
			}
			seen[v] = struct{}{}
		}
		if d.Key == "" {
			t.Fatalf("domain %d has empty key", i)
		}
	}
}

func TestOpenDataDeterministic(t *testing.T) {
	a := OpenData(OpenDataConfig{NumDomains: 200, Seed: 7})
	b := OpenData(OpenDataConfig{NumDomains: 200, Seed: 7})
	for i := range a.Domains {
		if len(a.Domains[i].Values) != len(b.Domains[i].Values) {
			t.Fatalf("domain %d size differs across runs", i)
		}
		for j := range a.Domains[i].Values {
			if a.Domains[i].Values[j] != b.Domains[i].Values[j] {
				t.Fatalf("domain %d value %d differs across runs", i, j)
			}
		}
	}
	c := OpenData(OpenDataConfig{NumDomains: 200, Seed: 8})
	diff := false
	for i := range a.Domains {
		if len(a.Domains[i].Values) != len(c.Domains[i].Values) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestOpenDataPowerLawSizes(t *testing.T) {
	c := OpenData(OpenDataConfig{NumDomains: 20000, Alpha: 2.0, Seed: 2})
	alpha := stats.PowerLawAlphaMLE(c.Sizes(), 10)
	if alpha < 1.7 || alpha > 2.3 {
		t.Fatalf("size distribution alpha = %v, want ~2.0", alpha)
	}
	if sk := stats.SkewnessInts(c.Sizes()); sk < 2 {
		t.Fatalf("sizes not skewed enough: skewness %v", sk)
	}
}

func TestOpenDataHasContainmentStructure(t *testing.T) {
	// The corpus must yield non-trivial ground truth: for a sample of
	// queries there should be other domains containing ≥ 50% of them.
	c := OpenData(OpenDataConfig{NumDomains: 1500, Seed: 3})
	e := exact.Build(ExactDomains(c))
	queries := SampleQueries(c, 60, 3)
	withMatch := 0
	for _, qi := range queries {
		truth := e.Truth(c.Domains[qi].Values, 0.5)
		// Exclude the query itself.
		delete(truth, c.Domains[qi].Key)
		if len(truth) > 0 {
			withMatch++
		}
	}
	if withMatch < 20 {
		t.Fatalf("only %d/60 queries have non-self matches at t*=0.5 — corpus lacks containment structure", withMatch)
	}
}

func TestOpenDataContainmentSpectrum(t *testing.T) {
	// Scores should span a spectrum, not cluster at 0/1 only.
	c := OpenData(OpenDataConfig{NumDomains: 1000, Seed: 4})
	e := exact.Build(ExactDomains(c))
	mid := 0
	for _, qi := range SampleQueries(c, 40, 4) {
		for _, s := range e.Scores(c.Domains[qi].Values) {
			if s >= 0.2 && s <= 0.8 {
				mid++
			}
		}
	}
	if mid < 50 {
		t.Fatalf("only %d mid-range containment pairs — spectrum too thin", mid)
	}
}

func TestWebTableShape(t *testing.T) {
	c := WebTable(WebTableConfig{NumDomains: 5000, Seed: 5})
	if len(c.Domains) != 5000 {
		t.Fatalf("got %d domains", len(c.Domains))
	}
	alpha := stats.PowerLawAlphaMLE(c.Sizes(), 5)
	if alpha < 2.0 || alpha > 2.8 {
		t.Fatalf("webtable alpha = %v, want ~2.4", alpha)
	}
	for i, d := range c.Domains {
		seen := map[uint64]struct{}{}
		for _, v := range d.Values {
			if _, dup := seen[v]; dup {
				t.Fatalf("domain %d has duplicate value %d", i, v)
			}
			seen[v] = struct{}{}
		}
	}
}

func TestWebTablePrivateMode(t *testing.T) {
	// ClusterFraction/ZipfFraction < 0 disable overlap: two domains never
	// share values.
	c := WebTable(WebTableConfig{NumDomains: 500, ClusterFraction: -1, ZipfFraction: -1, Seed: 5})
	seen := map[uint64]int{}
	for i, d := range c.Domains {
		for _, v := range d.Values {
			if prev, ok := seen[v]; ok {
				t.Fatalf("domains %d and %d share value %d", prev, i, v)
			}
			seen[v] = i
		}
	}
}

func TestWebTableHasOverlap(t *testing.T) {
	// Default mode must produce cross-domain overlap (the Table 4 workload
	// needs non-trivial candidate sets).
	c := WebTable(WebTableConfig{NumDomains: 500, Seed: 5})
	e := exact.Build(ExactDomains(c))
	overlapping := 0
	for _, qi := range SampleQueries(c, 40, 5) {
		if len(e.Scores(c.Domains[qi].Values)) > 1 {
			overlapping++
		}
	}
	if overlapping < 20 {
		t.Fatalf("only %d/40 queries overlap another domain", overlapping)
	}
}

func TestRecordsAlignment(t *testing.T) {
	c := OpenData(OpenDataConfig{NumDomains: 300, Seed: 6})
	h := minhash.NewHasher(64, 1)
	recs := Records(c, h)
	if len(recs) != len(c.Domains) {
		t.Fatalf("record count %d != domain count %d", len(recs), len(c.Domains))
	}
	for i, r := range recs {
		if r.Key != c.Domains[i].Key {
			t.Fatalf("record %d key mismatch", i)
		}
		if r.Size != len(c.Domains[i].Values) {
			t.Fatalf("record %d size mismatch", i)
		}
		if r.Sig.IsEmpty() {
			t.Fatalf("record %d has empty signature", i)
		}
	}
	// Signature must equal a sequentially built one (parallel correctness).
	d := c.Domains[17]
	sig := h.NewSignature()
	for _, v := range d.Values {
		h.PushHashed(sig, minhash.HashUint64(v))
	}
	for j := range sig {
		if sig[j] != recs[17].Sig[j] {
			t.Fatal("parallel Records differs from sequential sketch")
		}
	}
}

func TestSampleQueriesDistinct(t *testing.T) {
	c := OpenData(OpenDataConfig{NumDomains: 100, Seed: 7})
	q := SampleQueries(c, 50, 1)
	seen := map[int]bool{}
	for _, i := range q {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad query index set: %v", q)
		}
		seen[i] = true
	}
	if got := SampleQueries(c, 1000, 1); len(got) != 100 {
		t.Fatalf("oversampling should clamp: %d", len(got))
	}
}

func TestQueriesBySizeDecile(t *testing.T) {
	c := OpenData(OpenDataConfig{NumDomains: 1000, Seed: 8})
	small := QueriesBySizeDecile(c, 0, 50, 1)
	large := QueriesBySizeDecile(c, 9, 50, 1)
	maxSmall, minLarge := 0, 1<<40
	for _, i := range small {
		if n := len(c.Domains[i].Values); n > maxSmall {
			maxSmall = n
		}
	}
	for _, i := range large {
		if n := len(c.Domains[i].Values); n < minLarge {
			minLarge = n
		}
	}
	if maxSmall > minLarge {
		t.Fatalf("decile split wrong: max small %d > min large %d", maxSmall, minLarge)
	}
}

func TestNestedSizeSubsets(t *testing.T) {
	c := OpenData(OpenDataConfig{NumDomains: 3000, Seed: 9})
	subsets := NestedSizeSubsets(c, 10)
	if len(subsets) != 10 {
		t.Fatalf("got %d subsets", len(subsets))
	}
	for i := 1; i < len(subsets); i++ {
		if len(subsets[i]) < len(subsets[i-1]) {
			t.Fatalf("subset %d smaller than %d — not nested", i, i-1)
		}
		member := map[int]bool{}
		for _, j := range subsets[i] {
			member[j] = true
		}
		for _, j := range subsets[i-1] {
			if !member[j] {
				t.Fatalf("subset %d missing member %d of subset %d", i, j, i-1)
			}
		}
	}
	if got := len(subsets[len(subsets)-1]); got != len(c.Domains) {
		t.Fatalf("final subset has %d of %d domains", got, len(c.Domains))
	}
	// Skewness should grow along the sweep (the Fig. 5 x-axis).
	sizes := c.Sizes()
	skew := func(idx []int) float64 {
		s := make([]int, len(idx))
		for i, j := range idx {
			s[i] = sizes[j]
		}
		return stats.SkewnessInts(s)
	}
	if skew(subsets[1]) >= skew(subsets[9]) {
		t.Fatalf("skewness not growing: %v vs %v", skew(subsets[1]), skew(subsets[9]))
	}
}
