package bloom

import (
	"bytes"
	"testing"

	"lshensemble/internal/xrand"
)

func TestNoFalseNegativesHash(t *testing.T) {
	rng := xrand.New(1)
	f := New(10000, 14, 10)
	vals := make([]uint64, 10000)
	for i := range vals {
		vals[i] = rng.Uint64() >> 3 // 61-bit, like MinHash values
		f.AddHash(vals[i])
	}
	for _, v := range vals {
		if !f.MayContainHash(v) {
			t.Fatalf("false negative for inserted value %d", v)
		}
	}
}

func TestFalsePositiveRateHash(t *testing.T) {
	rng := xrand.New(2)
	f := New(10000, 14, 10)
	for i := 0; i < 10000; i++ {
		f.AddHash(rng.Uint64())
	}
	fp := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if f.MayContainHash(rng.Uint64()) {
			fp++
		}
	}
	// 14 bits/entry with k=10 targets ~0.1%; the power-of-two rounding can
	// only widen the array, so 1% is a generous ceiling.
	if rate := float64(fp) / trials; rate > 0.01 {
		t.Fatalf("false positive rate %.4f > 0.01", rate)
	}
}

func TestStringsNoFalseNegatives(t *testing.T) {
	f := New(1000, 10, 7)
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = string(rune('a'+i%26)) + "-key-" + string(rune('0'+i%10)) + string(rune('A'+i%7))
		f.AddString(keys[i])
	}
	for _, k := range keys {
		if !f.MayContainString(k) {
			t.Fatalf("false negative for inserted key %q", k)
		}
	}
	if !f.MayContainHash(HashString(keys[0])) {
		t.Fatal("MayContainHash(HashString) disagrees with MayContainString")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	f := New(500, 14, 10)
	vals := make([]uint64, 500)
	for i := range vals {
		vals[i] = rng.Uint64()
		f.AddHash(vals[i])
	}
	enc := f.AppendBinary(nil)
	enc = append(enc, 0xAB) // trailing byte must survive
	g, rest, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0] != 0xAB {
		t.Fatalf("trailing bytes mishandled: %v", rest)
	}
	if g.K() != f.K() || g.Bits() != f.Bits() {
		t.Fatalf("shape changed: (%d, %d) vs (%d, %d)", g.K(), g.Bits(), f.K(), f.Bits())
	}
	for _, v := range vals {
		if !g.MayContainHash(v) {
			t.Fatalf("decoded filter lost value %d", v)
		}
	}
	if !bytes.Equal(enc[:len(enc)-1], g.AppendBinary(nil)) {
		t.Fatal("re-encoding differs from original encoding")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	good := New(10, 10, 7)
	good.AddString("x")
	enc := good.AppendBinary(nil)
	cases := map[string][]byte{
		"short":          enc[:4],
		"truncated body": enc[:len(enc)-3],
		"zero k":         append([]byte{0, 0, 0, 0}, enc[4:]...),
		"non-pow2 words": append([]byte{7, 0, 0, 0, 3, 0, 0, 0}, make([]byte, 24)...),
	}
	for name, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	build := func() *Filter {
		f := New(100, 10, 7)
		for i := 0; i < 100; i++ {
			f.AddHash(uint64(i) * 0x9E3779B97F4A7C15)
		}
		return f
	}
	if !bytes.Equal(build().AppendBinary(nil), build().AppendBinary(nil)) {
		t.Fatal("same insert sequence produced different encodings")
	}
}
