package bloom

import (
	"math/bits"
	"sync/atomic"
)

// Atomic is a Bloom filter that tolerates concurrent Adds and MayContain
// calls — the live index's unsealed add-buffer filter, where writers insert
// while queries probe. Bits are set with a compare-and-swap loop and read
// with atomic loads, so a reader sees a subset or superset of some linear
// history of Adds; missing a concurrent Add is fine for the caller because
// the buffer entry it describes is not in the reader's snapshot either, and
// extra bits only cost false positives. Sizing and probe derivation match
// Filter exactly.
type Atomic struct {
	k     int
	mask  uint64
	words []atomic.Uint64
}

// NewAtomic constructs an atomic filter with the same sizing rules as New.
func NewAtomic(n, bitsPerEntry, k int) *Atomic {
	if n < 1 {
		n = 1
	}
	if bitsPerEntry < 1 {
		bitsPerEntry = 1
	}
	if k < 1 {
		k = 1
	}
	bitCount := uint64(n) * uint64(bitsPerEntry)
	if bitCount < 64 {
		bitCount = 64
	}
	if bitCount&(bitCount-1) != 0 {
		bitCount = 1 << bits.Len64(bitCount)
	}
	return &Atomic{
		k:     k,
		mask:  bitCount - 1,
		words: make([]atomic.Uint64, bitCount/64),
	}
}

// SizeBytes returns the memory footprint of the bit array.
func (f *Atomic) SizeBytes() int { return len(f.words) * 8 }

// AddHash inserts an element identified by a 64-bit hash. Safe to call from
// any number of goroutines. (CAS rather than atomic Or: the module still
// targets Go 1.22, which predates atomic.Uint64.Or.)
func (f *Atomic) AddHash(h uint64) {
	h1, h2 := probes(h)
	for i := 0; i < f.k; i++ {
		pos := h1 & f.mask
		w := &f.words[pos>>6]
		bit := uint64(1) << (pos & 63)
		for {
			old := w.Load()
			if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
				break
			}
		}
		h1 += h2
	}
}

// MayContainHash reports whether the element identified by h might have been
// added. False means definitely not among the Adds visible to this reader.
func (f *Atomic) MayContainHash(h uint64) bool {
	h1, h2 := probes(h)
	for i := 0; i < f.k; i++ {
		pos := h1 & f.mask
		if f.words[pos>>6].Load()&(1<<(pos&63)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}
