// Package bloom implements the small, dependency-free Bloom filter the live
// index attaches to every sealed segment (internal/live's query planner).
// Two membership questions drive the design:
//
//   - "can this segment contain any LSH collision for this query?" — asked
//     with raw 61-bit MinHash values (the leading value of each forest
//     tree), which are already near-uniform, so the probe positions are
//     derived by one cheap mixing round instead of re-hashing;
//   - "can this segment still shadow this tombstoned key?" — asked with
//     string keys, hashed with FNV-1a before the same mixing round.
//
// A filter answers "maybe" with a tunable false-positive rate and "no" with
// certainty, which is exactly the contract segment pruning needs: a false
// positive costs one unnecessary probe, a false "no" would lose results and
// is impossible by construction. The bit array length is a power of two so
// probe positions come from a mask, not a modulo.
package bloom

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// Filter is a standard Bloom filter using Kirsch–Mitzenmacher double
// hashing: the i-th probe position is h1 + i·h2 over a power-of-two bit
// array. The zero Filter is not usable; construct with New or Decode.
// Add calls must not race with each other; MayContain calls on a filter
// that is no longer being mutated are safe for concurrent use.
type Filter struct {
	k     int      // probes per element
	mask  uint64   // len(words)*64 - 1; bit count is a power of two
	words []uint64 // the bit array
}

// New constructs a filter sized for n elements at bitsPerEntry bits each
// (rounded up to a power of two total), probing k positions per element.
// Standard operating points: 10 bits/entry with k = 7 gives ~1% false
// positives, 14 bits/entry with k = 10 gives ~0.1%.
func New(n, bitsPerEntry, k int) *Filter {
	if n < 1 {
		n = 1
	}
	if bitsPerEntry < 1 {
		bitsPerEntry = 1
	}
	if k < 1 {
		k = 1
	}
	bitCount := uint64(n) * uint64(bitsPerEntry)
	if bitCount < 64 {
		bitCount = 64
	}
	// Round up to a power of two so probe positions are a mask away.
	if bitCount&(bitCount-1) != 0 {
		bitCount = 1 << bits.Len64(bitCount)
	}
	return &Filter{
		k:     k,
		mask:  bitCount - 1,
		words: make([]uint64, bitCount/64),
	}
}

// K returns the number of probe positions per element.
func (f *Filter) K() int { return f.k }

// Bits returns the length of the bit array.
func (f *Filter) Bits() int { return len(f.words) * 64 }

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.words) * 8 }

// mix is the splitmix64 finalizer — one round is enough to decorrelate the
// probe sequence from structured inputs (sequential FNV outputs, biased
// MinHash values).
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// probes derives the double-hashing pair for an element. h2 is forced odd
// so the probe sequence walks the full power-of-two array without cycling.
func probes(h uint64) (h1, h2 uint64) {
	h1 = mix(h)
	h2 = mix(h1) | 1
	return h1, h2
}

// AddHash inserts an element identified by a 64-bit hash (for MinHash
// values, the value itself).
func (f *Filter) AddHash(h uint64) {
	h1, h2 := probes(h)
	for i := 0; i < f.k; i++ {
		pos := h1 & f.mask
		f.words[pos>>6] |= 1 << (pos & 63)
		h1 += h2
	}
}

// MayContainHash reports whether the element identified by h might have
// been added. False means definitely not.
func (f *Filter) MayContainHash(h uint64) bool {
	h1, h2 := probes(h)
	for i := 0; i < f.k; i++ {
		pos := h1 & f.mask
		if f.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// HashString is the FNV-1a hash the string element paths use. Exposed so
// callers probing many filters with the same key hash it once.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// AddString inserts a string element.
func (f *Filter) AddString(s string) { f.AddHash(HashString(s)) }

// MayContainString reports whether the string element might have been
// added. False means definitely not.
func (f *Filter) MayContainString(s string) bool { return f.MayContainHash(HashString(s)) }

// ErrCorrupt reports a malformed filter encoding.
var ErrCorrupt = errors.New("bloom: corrupt filter encoding")

// AppendBinary appends the filter's encoding to buf:
// k u32 | nwords u32 | words [nwords]u64 (all little-endian).
// The encoding is a pure function of the inserted set and the construction
// parameters, so equal filters encode identically.
func (f *Filter) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.words)))
	for _, w := range f.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// Decode reconstructs a filter from the front of buf and returns the
// remaining bytes.
func Decode(buf []byte) (*Filter, []byte, error) {
	if len(buf) < 8 {
		return nil, buf, ErrCorrupt
	}
	k := int(binary.LittleEndian.Uint32(buf))
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if k < 1 || n < 1 || n > len(buf)/8 {
		return nil, buf, ErrCorrupt
	}
	// The bit count must be a power of two or the probe mask is wrong.
	if n&(n-1) != 0 {
		return nil, buf, ErrCorrupt
	}
	f := &Filter{k: k, mask: uint64(n)*64 - 1, words: make([]uint64, n)}
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
	}
	return f, buf, nil
}
