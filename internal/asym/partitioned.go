package asym

import (
	"sort"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/partition"
)

// PartitionedIndex combines Asymmetric Minwise Hashing with LSH Ensemble's
// equi-depth partitioning: one asym index per cardinality partition, each
// padding only to its partition's maximum size. The paper evaluates this
// hybrid at the end of Section 6.1 and finds that it slightly improves
// precision but does not rescue recall — under a power law some partitions
// still span a wide size range, so the padding within them remains large.
// Implemented to reproduce that finding.
type PartitionedIndex struct {
	bounds []partition.Partition
	parts  []*Index
}

// BuildPartitioned constructs the hybrid with n equi-depth partitions.
func BuildPartitioned(records []core.Record, numHash, rMax, n int) (*PartitionedIndex, error) {
	if len(records) == 0 {
		return nil, ErrEmpty
	}
	sizes := make([]int, len(records))
	for i, r := range records {
		sizes[i] = r.Size
	}
	bounds := partition.EquiDepth(sizes, n)
	groups := make([][]core.Record, len(bounds))
	for _, r := range records {
		i := sort.Search(len(bounds), func(i int) bool { return r.Size <= bounds[i].Upper })
		if i == len(bounds) {
			i = len(bounds) - 1
		}
		groups[i] = append(groups[i], r)
	}
	x := &PartitionedIndex{bounds: bounds}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		idx, err := Build(g, numHash, rMax)
		if err != nil {
			return nil, err
		}
		x.parts = append(x.parts, idx)
	}
	return x, nil
}

// Query unions the per-partition asym results.
func (x *PartitionedIndex) Query(sig minhash.Signature, querySize int, tStar float64) []string {
	var out []string
	for _, p := range x.parts {
		out = append(out, p.Query(sig, querySize, tStar)...)
	}
	return out
}

// Len returns the number of indexed domains.
func (x *PartitionedIndex) Len() int {
	n := 0
	for _, p := range x.parts {
		n += p.Len()
	}
	return n
}

// NumPartitions returns the number of non-empty partitions.
func (x *PartitionedIndex) NumPartitions() int { return len(x.parts) }
