package asym

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/xrand"
)

func makeRecords(n, numHash int, maxSize int, seed uint64) ([]core.Record, *minhash.Hasher) {
	rng := xrand.New(seed)
	h := minhash.NewHasher(numHash, 7)
	recs := make([]core.Record, n)
	for i := range recs {
		size := rng.Pareto(2.0, 10, maxSize)
		hashed := make([]uint64, size)
		for j := 0; j < size; j++ {
			hashed[j] = minhash.HashUint64(uint64(j))
		}
		recs[i] = core.Record{Key: fmt.Sprintf("a%03d", i), Size: size, Sig: h.Sketch(hashed)}
	}
	return recs, h
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, 64, 4); err != ErrEmpty {
		t.Fatal("empty build accepted")
	}
}

func TestPadZeroIsIdentity(t *testing.T) {
	h := minhash.NewHasher(64, 1)
	sig := h.SketchStrings([]string{"a", "b"})
	out := Pad(sig, "k", 0)
	for i := range sig {
		if out[i] != sig[i] {
			t.Fatal("Pad with k=0 must be identity")
		}
	}
	// and must not alias the input
	out[0] = 12345
	if sig[0] == 12345 {
		t.Fatal("Pad must copy")
	}
}

func TestPadOnlyDecreasesSlots(t *testing.T) {
	h := minhash.NewHasher(128, 1)
	sig := h.SketchStrings([]string{"x", "y", "z"})
	out := Pad(sig, "k", 1000)
	for i := range sig {
		if out[i] > sig[i] {
			t.Fatalf("slot %d increased after padding", i)
		}
	}
}

func TestPadDeterministic(t *testing.T) {
	h := minhash.NewHasher(64, 1)
	sig := h.SketchStrings([]string{"x"})
	a := Pad(sig, "k", 50)
	b := Pad(sig, "k", 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Pad not deterministic")
		}
	}
	c := Pad(sig, "other", 50)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different keys produced identical padding")
	}
}

// TestPadMatchesExactDistribution cross-validates the inverse-CDF padding
// sampler against literal padding (DESIGN.md substitution #3): over many
// domains, the mean normalized slot value after padding with k values must
// agree between the two constructions.
func TestPadMatchesExactDistribution(t *testing.T) {
	const m = 64
	const k = 40
	h := minhash.NewHasher(m, 3)
	const trials = 120
	var meanSim, meanExact float64
	for i := 0; i < trials; i++ {
		key := fmt.Sprintf("dom%d", i)
		sig := h.SketchStrings([]string{key + "v1", key + "v2"})
		sim := Pad(sig, key, k)
		exact := PadExact(h, sig, key, k)
		for j := 0; j < m; j++ {
			meanSim += float64(sim[j]) / float64(minhash.MersennePrime)
			meanExact += float64(exact[j]) / float64(minhash.MersennePrime)
		}
	}
	meanSim /= trials * m
	meanExact /= trials * m
	// Both should be ≈ 1/(k+2+1) = 1/43; allow generous sampling noise.
	if math.Abs(meanSim-meanExact) > 0.15*meanExact {
		t.Fatalf("simulated padding mean %v vs exact %v", meanSim, meanExact)
	}
}

func TestSelfRetrievalLowSkew(t *testing.T) {
	// With low skew (sizes near M), asym works: self-queries are found.
	rng := xrand.New(9)
	h := minhash.NewHasher(256, 7)
	var recs []core.Record
	for i := 0; i < 100; i++ {
		size := 900 + rng.Intn(100) // all domains nearly the same size
		hashed := make([]uint64, size)
		for j := range hashed {
			hashed[j] = minhash.HashUint64(uint64(i*10000 + j))
		}
		recs = append(recs, core.Record{Key: fmt.Sprintf("a%03d", i), Size: size, Sig: h.Sketch(hashed)})
	}
	x, err := Build(recs, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for i := 0; i < 50; i++ {
		r := recs[i]
		found := false
		for _, k := range x.Query(r.Sig, r.Size, 0.5) {
			if k == r.Key {
				found = true
			}
		}
		if !found {
			misses++
		}
	}
	if misses > 5 {
		t.Fatalf("%d/50 self-misses at low skew", misses)
	}
}

func TestRecallCollapsesUnderSkew(t *testing.T) {
	// The paper's appendix: with M ≫ q and a high threshold, qualifying
	// domains are almost never retrieved. Build a corpus with one huge
	// domain (forcing large M) and query with a small domain fully
	// contained in a small indexed domain.
	h := minhash.NewHasher(256, 7)
	sketchRange := func(lo, hi int) (minhash.Signature, int) {
		hashed := make([]uint64, 0, hi-lo)
		for v := lo; v < hi; v++ {
			hashed = append(hashed, minhash.HashUint64(uint64(v)))
		}
		return h.Sketch(hashed), hi - lo
	}
	var recs []core.Record
	// 50 small domains of size 20, each containing values [0,20).
	for i := 0; i < 50; i++ {
		sig, size := sketchRange(0, 20)
		recs = append(recs, core.Record{Key: fmt.Sprintf("small%d", i), Size: size, Sig: sig})
	}
	// One huge domain forcing M = 100000.
	bigSig, bigSize := sketchRange(1000000, 1100000)
	recs = append(recs, core.Record{Key: "huge", Size: bigSize, Sig: bigSig})

	x, err := Build(recs, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	qSig, qSize := sketchRange(0, 20) // fully contained in every small domain
	found := 0
	for _, k := range x.Query(qSig, qSize, 0.9) {
		if k != "huge" {
			found++
		}
	}
	// Theory: P(candidate) ≈ 1-(1-(20/100000)^r)^b ~ 0 even at r=1,b=32.
	if found > 5 {
		t.Fatalf("asym retrieved %d/50 qualifying domains under extreme skew — padding should suppress them", found)
	}
}

func TestProbFullContainment(t *testing.T) {
	// Monotone decreasing in M; equals 1-(1-q/M)^b at r=1.
	prev := 1.1
	for _, M := range []float64{10, 100, 1000, 10000} {
		p := ProbFullContainment(M, 10, 256, 1)
		if p > prev {
			t.Fatalf("P should decrease with M")
		}
		prev = p
	}
	if p := ProbFullContainment(10, 10, 256, 1); p < 0.999 {
		t.Fatalf("M=q should give ~1, got %v", p)
	}
	want := 1 - math.Pow(1-0.01, 256)
	if got := ProbFullContainment(1000, 10, 256, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("analytic mismatch: %v vs %v", got, want)
	}
}

func TestMinHashesForRecall(t *testing.T) {
	// m* grows roughly linearly with M (Fig. 10 right).
	m1 := MinHashesForRecall(1000, 1, 0.5)
	m2 := MinHashesForRecall(2000, 1, 0.5)
	m4 := MinHashesForRecall(4000, 1, 0.5)
	if !(m2 > m1 && m4 > m2) {
		t.Fatalf("m* not increasing: %d %d %d", m1, m2, m4)
	}
	ratio := float64(m4) / float64(m1)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("m* should grow ~linearly: m*(4000)/m*(1000) = %v", ratio)
	}
	// The chosen m* must actually achieve the target.
	m := MinHashesForRecall(5000, 3, 0.5)
	if p := ProbFullContainment(5000, 3, m, 1); p < 0.5 {
		t.Fatalf("m*=%d gives P=%v < 0.5", m, p)
	}
	if MinHashesForRecall(10, 20, 0.5) != 1 {
		t.Fatal("q >= M should need only 1 hash")
	}
}

func TestQueryEdgeCases(t *testing.T) {
	recs, _ := makeRecords(20, 64, 500, 11)
	x, err := Build(recs, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Query(recs[0].Sig, 0, 0.5); got != nil {
		t.Fatal("zero query size should return nil")
	}
	if x.MaxSize() <= 0 {
		t.Fatal("MaxSize not set")
	}
}

func TestBuildValidation(t *testing.T) {
	h := minhash.NewHasher(64, 1)
	sig := h.SketchStrings([]string{"a"})
	if _, err := Build([]core.Record{{Key: "k", Size: 0, Sig: sig}}, 64, 4); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := Build([]core.Record{{Key: "k", Size: 1, Sig: sig[:10]}}, 64, 4); err == nil {
		t.Fatal("short signature accepted")
	}
}

// TestConcurrentPooledQueries hammers the pooled dedup scratch from many
// goroutines; every result must match the single-threaded reference. Run
// with -race: the pool must never hand one scratch to two in-flight queries.
func TestConcurrentPooledQueries(t *testing.T) {
	recs, _ := makeRecords(400, 64, 500, 9)
	x, err := Build(recs, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 17, 63, 101, 250, 399}
	want := make([]int, len(queries))
	for i, qi := range queries {
		want[i] = len(x.Query(recs[qi].Sig, recs[qi].Size, 0.5))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 30; rep++ {
				i := (w + rep) % len(queries)
				qi := queries[i]
				got := len(x.Query(recs[qi].Sig, recs[qi].Size, 0.5))
				if got != want[i] {
					errs <- fmt.Errorf("worker %d: query %d returned %d results, want %d", w, i, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBuildDeterministic requires the parallel pad + fill pipeline to
// produce the same index as a fresh build: padding streams are derived from
// the record key, so worker scheduling must not leak into the result.
func TestBuildDeterministic(t *testing.T) {
	recs, _ := makeRecords(300, 64, 2000, 11)
	a, err := Build(recs, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(recs, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	ab := a.forest.AppendBinary(nil)
	bb := b.forest.AppendBinary(nil)
	if len(ab) != len(bb) {
		t.Fatalf("forest encodings differ in length: %d vs %d", len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("forest encodings differ at byte %d", i)
		}
	}
}
