package asym

import (
	"fmt"
	"testing"

	"lshensemble/internal/core"
	"lshensemble/internal/minhash"
	"lshensemble/internal/xrand"
)

// skewedPrefixCorpus builds power-law-sized prefix domains: domain i holds
// values [0, size_i), so containment relationships are analytic.
func skewedPrefixCorpus(n, numHash int, seed uint64) ([]core.Record, []int) {
	rng := xrand.New(seed)
	h := minhash.NewHasher(numHash, 7)
	recs := make([]core.Record, n)
	sizes := make([]int, n)
	for i := range recs {
		size := rng.Pareto(1.8, 10, 50000) // heavy skew
		hashed := make([]uint64, size)
		for j := 0; j < size; j++ {
			hashed[j] = minhash.HashUint64(uint64(j))
		}
		sizes[i] = size
		recs[i] = core.Record{Key: fmt.Sprintf("p%04d", i), Size: size, Sig: h.Sketch(hashed)}
	}
	return recs, sizes
}

func TestPartitionedBuildShape(t *testing.T) {
	recs, _ := skewedPrefixCorpus(300, 128, 1)
	x, err := BuildPartitioned(recs, 128, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 300 {
		t.Fatalf("Len = %d", x.Len())
	}
	if x.NumPartitions() < 2 || x.NumPartitions() > 8 {
		t.Fatalf("partitions = %d", x.NumPartitions())
	}
}

func TestPartitionedBuildEmpty(t *testing.T) {
	if _, err := BuildPartitioned(nil, 64, 4, 8); err != ErrEmpty {
		t.Fatal("empty build accepted")
	}
}

// measureRecall computes recall of queries against the analytic prefix
// ground truth: t(Q_i, X_j) = min(size_i, size_j)/size_i ≥ tStar.
func measureRecall(t *testing.T, q func(minhash.Signature, int, float64) []string,
	recs []core.Record, sizes []int, tStar float64) float64 {
	t.Helper()
	truth, hit := 0, 0
	for qi := 0; qi < len(recs); qi += 7 {
		got := map[string]bool{}
		for _, k := range q(recs[qi].Sig, recs[qi].Size, tStar) {
			got[k] = true
		}
		for xi := range recs {
			c := float64(min(sizes[qi], sizes[xi])) / float64(sizes[qi])
			if c >= tStar {
				truth++
				if got[recs[xi].Key] {
					hit++
				}
			}
		}
	}
	if truth == 0 {
		t.Fatal("degenerate workload")
	}
	return float64(hit) / float64(truth)
}

// measureRecallInPartition computes recall restricted to pairs whose
// *containing* domain falls in the size interval [lo, hi] — the regime the
// paper's explanation singles out.
func measureRecallInPartition(t *testing.T, q func(minhash.Signature, int, float64) []string,
	recs []core.Record, sizes []int, tStar float64, lo, hi int) float64 {
	t.Helper()
	truth, hit := 0, 0
	for qi := 0; qi < len(recs); qi += 3 {
		if sizes[qi] > lo/2 {
			continue // small queries against large containers: the padded regime
		}
		var got map[string]bool
		for xi := range recs {
			if sizes[xi] < lo || sizes[xi] > hi {
				continue
			}
			c := float64(min(sizes[qi], sizes[xi])) / float64(sizes[qi])
			if c >= tStar {
				if got == nil {
					got = map[string]bool{}
					for _, k := range q(recs[qi].Sig, recs[qi].Size, tStar) {
						got[k] = true
					}
				}
				truth++
				if got[recs[xi].Key] {
					hit++
				}
			}
		}
	}
	if truth == 0 {
		t.Fatal("degenerate workload: no qualifying pairs in the wide partition")
	}
	return float64(hit) / float64(truth)
}

// TestPartitioningDoesNotRescueAsymRecall reproduces the paper's Section
// 6.1 side experiment: adding partitioning to Asymmetric Minwise Hashing
// does not rescue recall, because under a power law some partitions still
// span a wide size range, and within those partitions the padding is still
// large relative to small queries. We measure recall restricted to
// containing-domains in the hybrid's widest (tail) partition and compare
// with the ensemble's recall on the same pairs.
func TestPartitioningDoesNotRescueAsymRecall(t *testing.T) {
	recs, sizes := skewedPrefixCorpus(600, 256, 2)
	const tStar = 0.7
	const nParts = 8

	parted, err := BuildPartitioned(recs, 256, 8, nParts)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := core.Build(recs, core.Options{NumHash: 256, RMax: 8, NumPartitions: nParts})
	if err != nil {
		t.Fatal(err)
	}
	// The widest partition is the last (power-law tail).
	tail := parted.bounds[len(parted.bounds)-1]
	if tail.Upper < 3*tail.Lower {
		t.Fatalf("tail partition [%d, %d] not wide enough to exercise the claim", tail.Lower, tail.Upper)
	}

	rParted := measureRecallInPartition(t, parted.Query, recs, sizes, tStar, tail.Lower, tail.Upper)
	ensQuery := func(sig minhash.Signature, querySize int, tStar float64) []string {
		res, err := ens.Query(sig, querySize, tStar)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rEns := measureRecallInPartition(t, ensQuery, recs, sizes, tStar, tail.Lower, tail.Upper)
	t.Logf("tail partition [%d, %d]: partitioned-asym recall %.3f, ensemble recall %.3f",
		tail.Lower, tail.Upper, rParted, rEns)

	if rEns < 0.8 {
		t.Fatalf("ensemble recall %v in the tail partition unexpectedly low", rEns)
	}
	if rParted > rEns-0.3 {
		t.Fatalf("partitioned asym tail recall %v too close to ensemble %v — padding within the wide partition should suppress small queries' matches", rParted, rEns)
	}
}

func TestPartitionedQueryFindsWithinPartitionMatches(t *testing.T) {
	// Within one partition (sizes close to the partition max), asym works:
	// a query identical to an indexed domain should be found.
	recs, _ := skewedPrefixCorpus(200, 128, 3)
	x, err := BuildPartitioned(recs, 128, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := 0; i < 40; i++ {
		r := recs[i*5]
		for _, k := range x.Query(r.Sig, r.Size, 0.5) {
			if k == r.Key {
				found++
				break
			}
		}
	}
	// 32 partitions over power-law sizes → most partitions are narrow, so
	// self-retrieval should mostly work (unlike plain asym under skew).
	if found < 25 {
		t.Fatalf("only %d/40 self-retrievals with 32 partitions", found)
	}
}
