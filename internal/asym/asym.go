// Package asym implements Asymmetric Minwise Hashing (Shrivastava & Li,
// WWW 2015), the state-of-the-art containment-search comparator evaluated
// by the paper (Section 4, Section 6, and the appendix).
//
// The asymmetric transformation pads every indexed domain with fresh,
// never-colliding values until it reaches the global maximum domain size M.
// After padding, the Jaccard similarity between a query and a padded domain
// is monotone in their containment (paper Eq. 31), so a single MinHash LSH
// can answer containment queries. The paper's appendix shows why this
// collapses under skew: the candidate probability of a fully contained
// domain decays like 1 − (1 − (q/M)^r)^b, which is near zero once M ≫ q
// (Fig. 10) — our implementation reproduces exactly that recall collapse.
//
// Padding simulation: padding a signature with k fresh values replaces each
// slot v with min(v, min of k iid uniform hashes). We sample that minimum
// directly from its exact distribution (inverse CDF, see
// xrand.MinOfUniforms) with a deterministic per-domain stream instead of
// hashing k literal values, which would cost O(k·m) per domain with k up to
// millions. PadExact provides the literal construction for cross-validation
// in tests.
package asym

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"lshensemble/internal/core"
	"lshensemble/internal/dedup"
	"lshensemble/internal/lshforest"
	"lshensemble/internal/minhash"
	"lshensemble/internal/par"
	"lshensemble/internal/tune"
	"lshensemble/internal/xrand"
)

// Index is an Asymmetric Minwise Hashing containment index. It is safe for
// concurrent queries.
type Index struct {
	forest  *lshforest.Forest
	keys    []string
	maxSize int // M: the padded size of every indexed domain
	numHash int
	opt     *tune.Optimizer

	// scratch pools *dedup.Set values so steady-state queries allocate only
	// their result: dedup across the forest's trees uses a
	// generation-stamped visited set instead of a per-query map (the same
	// pattern as internal/core).
	scratch sync.Pool
}

func (x *Index) acquireScratch() *dedup.Set {
	s, _ := x.scratch.Get().(*dedup.Set)
	if s == nil {
		s = &dedup.Set{}
	}
	s.Reset(len(x.keys))
	return s
}

// ErrEmpty is returned by Build when no records are given.
var ErrEmpty = errors.New("asym: no records to index")

// Build constructs the index, padding every record's signature to the
// maximum record size. numHash and rMax default to 256 and 8 when zero.
func Build(records []core.Record, numHash, rMax int) (*Index, error) {
	if numHash == 0 {
		numHash = 256
	}
	if rMax == 0 {
		rMax = 8
	}
	if len(records) == 0 {
		return nil, ErrEmpty
	}
	maxSize := 0
	for _, r := range records {
		if r.Size <= 0 {
			return nil, fmt.Errorf("asym: record %q has non-positive size %d", r.Key, r.Size)
		}
		if len(r.Sig) < numHash {
			return nil, fmt.Errorf("asym: record %q signature length %d < numHash %d",
				r.Key, len(r.Sig), numHash)
		}
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	x := &Index{
		forest:  lshforest.New(numHash, rMax),
		maxSize: maxSize,
		numHash: numHash,
		opt:     tune.NewOptimizer(numHash/rMax, rMax),
	}
	// Padding simulation is the expensive phase (one inverse-CDF sample per
	// slot per record), and every record pads independently — fan it out.
	// The forest fill stays serial (appends to one contiguous store) but is
	// pre-sized, and the tree sorts fan out again per tree.
	padded := make([]minhash.Signature, len(records))
	par.Chunked(len(records), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := records[i]
			padded[i] = Pad(r.Sig[:numHash], r.Key, maxSize-r.Size)
		}
	})
	x.forest.Reserve(len(records))
	for i, r := range records {
		x.forest.Add(uint32(i), padded[i])
		x.keys = append(x.keys, r.Key)
	}
	x.forest.IndexParallel(runtime.GOMAXPROCS(0))
	return x, nil
}

// Pad returns a copy of sig transformed as if k fresh values (unique to
// this domain, never colliding with anything else) had been added to the
// underlying domain. The padding stream is derived deterministically from
// the domain key so rebuilding an index is reproducible.
func Pad(sig minhash.Signature, key string, k int) minhash.Signature {
	out := sig.Clone()
	if k <= 0 {
		return out
	}
	rng := xrand.New(minhash.HashString(key) ^ 0x9e3779b97f4a7c15)
	for i := range out {
		pv := rng.MinOfUniforms(k, minhash.MersennePrime)
		if pv < out[i] {
			out[i] = pv
		}
	}
	return out
}

// PadExact performs the padding by literally hashing k fresh values with
// the hasher — O(k·m). Only feasible for small k; used to validate Pad.
func PadExact(h *minhash.Hasher, sig minhash.Signature, key string, k int) minhash.Signature {
	out := sig.Clone()
	for i := 0; i < k; i++ {
		h.PushString(out, fmt.Sprintf("\x00pad|%s|%d", key, i))
	}
	return out
}

// Query returns the keys of candidate domains at containment threshold
// tStar. The tuner is invoked with x = M because every indexed signature
// represents a padded domain of size M. Dedup across the forest's trees
// uses a pooled generation-stamped visited array, so the only allocation is
// the result itself.
func (x *Index) Query(sig minhash.Signature, querySize int, tStar float64) []string {
	if querySize <= 0 || len(x.keys) == 0 {
		return nil
	}
	params := x.opt.Optimize(float64(x.maxSize), float64(querySize), tStar)
	s := x.acquireScratch()
	var out []string
	x.forest.Query(sig, params.B, params.R, func(id uint32) bool {
		if s.TryMark(id) {
			out = append(out, x.keys[id])
		}
		return true
	})
	x.scratch.Put(s)
	return out
}

// Len returns the number of indexed domains.
func (x *Index) Len() int { return len(x.keys) }

// MaxSize returns M, the padded size of every indexed domain.
func (x *Index) MaxSize() int { return x.maxSize }

// ProbFullContainment is P(t=1 | M, q, b, r) (paper Eq. 32): the
// probability that a domain fully containing the query survives the LSH
// filter after padding to size M. The paper's Fig. 10 (left) plots this
// decay as M grows.
func ProbFullContainment(M, q float64, b, r int) float64 {
	if M <= 0 || q <= 0 {
		return 0
	}
	s := q / M
	if s > 1 {
		s = 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(b))
}

// MinHashesForRecall is m*: the minimum number of hash functions needed to
// keep ProbFullContainment at least target with the most permissive tuning
// (r = 1, b = m). Fig. 10 (right) shows m* growing linearly with M.
func MinHashesForRecall(M, q, target float64) int {
	if target <= 0 {
		return 1
	}
	if target >= 1 || q >= M {
		return 1
	}
	// 1 - (1 - q/M)^m >= target  ⇒  m >= log(1-target)/log(1-q/M)
	m := math.Log(1-target) / math.Log(1-q/M)
	return int(math.Ceil(m))
}
