// Package asym implements Asymmetric Minwise Hashing (Shrivastava & Li,
// WWW 2015), the state-of-the-art containment-search comparator evaluated
// by the paper (Section 4, Section 6, and the appendix).
//
// The asymmetric transformation pads every indexed domain with fresh,
// never-colliding values until it reaches the global maximum domain size M.
// After padding, the Jaccard similarity between a query and a padded domain
// is monotone in their containment (paper Eq. 31), so a single MinHash LSH
// can answer containment queries. The paper's appendix shows why this
// collapses under skew: the candidate probability of a fully contained
// domain decays like 1 − (1 − (q/M)^r)^b, which is near zero once M ≫ q
// (Fig. 10) — our implementation reproduces exactly that recall collapse.
//
// Padding simulation: padding a signature with k fresh values replaces each
// slot v with min(v, min of k iid uniform hashes). We sample that minimum
// directly from its exact distribution (inverse CDF, see
// xrand.MinOfUniforms) with a deterministic per-domain stream instead of
// hashing k literal values, which would cost O(k·m) per domain with k up to
// millions. PadExact provides the literal construction for cross-validation
// in tests.
package asym

import (
	"errors"
	"fmt"
	"math"

	"lshensemble/internal/core"
	"lshensemble/internal/lshforest"
	"lshensemble/internal/minhash"
	"lshensemble/internal/tune"
	"lshensemble/internal/xrand"
)

// Index is an Asymmetric Minwise Hashing containment index.
type Index struct {
	forest  *lshforest.Forest
	keys    []string
	maxSize int // M: the padded size of every indexed domain
	numHash int
	opt     *tune.Optimizer
}

// ErrEmpty is returned by Build when no records are given.
var ErrEmpty = errors.New("asym: no records to index")

// Build constructs the index, padding every record's signature to the
// maximum record size. numHash and rMax default to 256 and 8 when zero.
func Build(records []core.Record, numHash, rMax int) (*Index, error) {
	if numHash == 0 {
		numHash = 256
	}
	if rMax == 0 {
		rMax = 8
	}
	if len(records) == 0 {
		return nil, ErrEmpty
	}
	maxSize := 0
	for _, r := range records {
		if r.Size <= 0 {
			return nil, fmt.Errorf("asym: record %q has non-positive size %d", r.Key, r.Size)
		}
		if len(r.Sig) < numHash {
			return nil, fmt.Errorf("asym: record %q signature length %d < numHash %d",
				r.Key, len(r.Sig), numHash)
		}
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	x := &Index{
		forest:  lshforest.New(numHash, rMax),
		maxSize: maxSize,
		numHash: numHash,
		opt:     tune.NewOptimizer(numHash/rMax, rMax),
	}
	for _, r := range records {
		padded := Pad(r.Sig[:numHash], r.Key, maxSize-r.Size)
		x.forest.Add(uint32(len(x.keys)), padded)
		x.keys = append(x.keys, r.Key)
	}
	x.forest.Index()
	return x, nil
}

// Pad returns a copy of sig transformed as if k fresh values (unique to
// this domain, never colliding with anything else) had been added to the
// underlying domain. The padding stream is derived deterministically from
// the domain key so rebuilding an index is reproducible.
func Pad(sig minhash.Signature, key string, k int) minhash.Signature {
	out := sig.Clone()
	if k <= 0 {
		return out
	}
	rng := xrand.New(minhash.HashString(key) ^ 0x9e3779b97f4a7c15)
	for i := range out {
		pv := rng.MinOfUniforms(k, minhash.MersennePrime)
		if pv < out[i] {
			out[i] = pv
		}
	}
	return out
}

// PadExact performs the padding by literally hashing k fresh values with
// the hasher — O(k·m). Only feasible for small k; used to validate Pad.
func PadExact(h *minhash.Hasher, sig minhash.Signature, key string, k int) minhash.Signature {
	out := sig.Clone()
	for i := 0; i < k; i++ {
		h.PushString(out, fmt.Sprintf("\x00pad|%s|%d", key, i))
	}
	return out
}

// Query returns the keys of candidate domains at containment threshold
// tStar. The tuner is invoked with x = M because every indexed signature
// represents a padded domain of size M.
func (x *Index) Query(sig minhash.Signature, querySize int, tStar float64) []string {
	if querySize <= 0 || len(x.keys) == 0 {
		return nil
	}
	params := x.opt.Optimize(float64(x.maxSize), float64(querySize), tStar)
	var out []string
	x.forest.QueryDedup(sig, params.B, params.R, nil, func(id uint32) bool {
		out = append(out, x.keys[id])
		return true
	})
	return out
}

// Len returns the number of indexed domains.
func (x *Index) Len() int { return len(x.keys) }

// MaxSize returns M, the padded size of every indexed domain.
func (x *Index) MaxSize() int { return x.maxSize }

// ProbFullContainment is P(t=1 | M, q, b, r) (paper Eq. 32): the
// probability that a domain fully containing the query survives the LSH
// filter after padding to size M. The paper's Fig. 10 (left) plots this
// decay as M grows.
func ProbFullContainment(M, q float64, b, r int) float64 {
	if M <= 0 || q <= 0 {
		return 0
	}
	s := q / M
	if s > 1 {
		s = 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(b))
}

// MinHashesForRecall is m*: the minimum number of hash functions needed to
// keep ProbFullContainment at least target with the most permissive tuning
// (r = 1, b = m). Fig. 10 (right) shows m* growing linearly with M.
func MinHashesForRecall(M, q, target float64) int {
	if target <= 0 {
		return 1
	}
	if target >= 1 || q >= M {
		return 1
	}
	// 1 - (1 - q/M)^m >= target  ⇒  m >= log(1-target)/log(1-q/M)
	m := math.Log(1-target) / math.Log(1-q/M)
	return int(math.Ceil(m))
}
