// Package partition implements LSH Ensemble's domain partitioning
// (paper Sections 5.2–5.4): the false-positive cost model, the equi-depth
// partitioner that approximates the optimal equi-FP partitioning for
// power-law size distributions (Theorem 2), an equi-width partitioner, a
// morphing interpolation between the two (used by the dynamic-data
// experiment, Fig. 8), and an exact minimax partitioner that directly
// equalizes the FP upper bound across partitions (Theorem 1) for arbitrary
// distributions.
//
// All partitioners take the multiset of domain sizes (any order) and return
// contiguous, disjoint, covering size intervals.
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Partition is a size interval [Lower, Upper] (inclusive on both ends) with
// the number of domains whose size falls inside it.
type Partition struct {
	Lower int // smallest domain size admitted
	Upper int // largest domain size admitted (the conversion upper bound u)
	Count int // number of domains in the interval
}

// UpperBoundFP is the cost-model bound on the expected number of
// false-positive candidates contributed by a partition (paper Prop. 2 /
// Eq. 16): M = count · (u − l + 1) / (2u). It assumes a uniform size
// distribution inside the interval and q ≪ u (the large-domain regime).
func UpperBoundFP(count, lower, upper int) float64 {
	if count == 0 || upper <= 0 {
		return 0
	}
	return float64(count) * float64(upper-lower+1) / float64(2*upper)
}

// Cost is the minimax objective of Definition 3: the maximum per-partition
// FP upper bound.
func Cost(parts []Partition) float64 {
	worst := 0.0
	for _, p := range parts {
		if m := UpperBoundFP(p.Count, p.Lower, p.Upper); m > worst {
			worst = m
		}
	}
	return worst
}

// sortedCopy returns the sizes sorted ascending, validating positivity.
func sortedCopy(sizes []int) []int {
	s := make([]int, len(sizes))
	copy(s, sizes)
	sort.Ints(s)
	if len(s) > 0 && s[0] <= 0 {
		panic(fmt.Sprintf("partition: non-positive domain size %d", s[0]))
	}
	return s
}

// fromBoundaries converts cut positions over the sorted sizes into
// partitions. cuts[i] is the exclusive end index of partition i; the last
// cut must equal len(sorted). Empty ranges are dropped.
func fromBoundaries(sorted []int, cuts []int) []Partition {
	parts := make([]Partition, 0, len(cuts))
	start := 0
	for _, end := range cuts {
		if end <= start {
			continue
		}
		parts = append(parts, Partition{
			Lower: sorted[start],
			Upper: sorted[end-1],
			Count: end - start,
		})
		start = end
	}
	return parts
}

// advanceToSizeBoundary moves end forward so a single size value never
// straddles two partitions (intervals must be disjoint by size).
func advanceToSizeBoundary(sorted []int, end int) int {
	for end < len(sorted) && sorted[end] == sorted[end-1] {
		end++
	}
	return end
}

// EquiDepth partitions the sizes into (at most) n intervals holding an
// equal number of domains — the paper's practical approximation of the
// optimal partitioning for power-law distributions (Theorem 2). Duplicated
// size values are kept within one partition, so the realized counts can
// deviate slightly from N/n. n must be positive; fewer than n partitions
// are returned when there are not enough distinct sizes.
func EquiDepth(sizes []int, n int) []Partition {
	if n <= 0 {
		panic("partition: n must be positive")
	}
	sorted := sortedCopy(sizes)
	if len(sorted) == 0 {
		return nil
	}
	cuts := make([]int, 0, n)
	start := 0
	for i := 0; i < n && start < len(sorted); i++ {
		remainingParts := n - i
		remaining := len(sorted) - start
		target := (remaining + remainingParts - 1) / remainingParts
		end := start + target
		if end > len(sorted) {
			end = len(sorted)
		}
		end = advanceToSizeBoundary(sorted, end)
		cuts = append(cuts, end)
		start = end
	}
	if start < len(sorted) {
		cuts[len(cuts)-1] = len(sorted)
	}
	return fromBoundaries(sorted, cuts)
}

// EquiWidth partitions the size *range* into n intervals of equal width,
// ignoring the distribution of domains across sizes. Under a power-law this
// is far from optimal; it is the end point of the Fig. 8 morph.
func EquiWidth(sizes []int, n int) []Partition {
	if n <= 0 {
		panic("partition: n must be positive")
	}
	sorted := sortedCopy(sizes)
	if len(sorted) == 0 {
		return nil
	}
	lo, hi := sorted[0], sorted[len(sorted)-1]
	width := float64(hi-lo+1) / float64(n)
	cuts := make([]int, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		bound := lo + int(math.Ceil(width*float64(i+1))) - 1 // inclusive upper size
		if i == n-1 {
			bound = hi
		}
		end := start
		for end < len(sorted) && sorted[end] <= bound {
			end++
		}
		cuts = append(cuts, end)
		start = end
	}
	return fromBoundaries(sorted, cuts)
}

// Morph interpolates between equi-depth (lambda = 0) and equi-width
// (lambda = 1) by blending the two partitionings' cut positions over the
// sorted sizes. It models a corpus whose size distribution has drifted away
// from the one the equi-depth partitioning was built for (Fig. 8).
func Morph(sizes []int, n int, lambda float64) []Partition {
	if lambda < 0 || lambda > 1 {
		panic("partition: lambda must be in [0, 1]")
	}
	sorted := sortedCopy(sizes)
	if len(sorted) == 0 {
		return nil
	}
	depthCuts := cutsOf(sorted, EquiDepth(sizes, n))
	widthCuts := cutsOf(sorted, EquiWidth(sizes, n))
	// Pad the shorter cut list by repeating the final boundary so the two
	// lists align position-wise.
	for len(depthCuts) < n {
		depthCuts = append(depthCuts, len(sorted))
	}
	for len(widthCuts) < n {
		widthCuts = append(widthCuts, len(sorted))
	}
	cuts := make([]int, n)
	prev := 0
	for i := 0; i < n; i++ {
		c := int(math.Round((1-lambda)*float64(depthCuts[i]) + lambda*float64(widthCuts[i])))
		if c < prev {
			c = prev
		}
		if c > len(sorted) {
			c = len(sorted)
		}
		if c > 0 && c < len(sorted) {
			c = advanceToSizeBoundary(sorted, c)
		}
		cuts[i] = c
		prev = c
	}
	cuts[n-1] = len(sorted)
	return fromBoundaries(sorted, cuts)
}

// cutsOf recovers exclusive end indices of parts over the sorted sizes.
func cutsOf(sorted []int, parts []Partition) []int {
	cuts := make([]int, 0, len(parts))
	idx := 0
	for _, p := range parts {
		idx += p.Count
		cuts = append(cuts, idx)
	}
	_ = sorted
	return cuts
}

// Minimax computes a partitioning that minimizes the maximum per-partition
// FP upper bound (the optimal equi-FP partitioning of Theorem 1) for an
// arbitrary size distribution. It binary-searches the achievable cost c and
// greedily packs domains left to right: a prefix-greedy sweep is feasible
// iff some partitioning of cost ≤ c exists, because UpperBoundFP is
// monotone in both interval width and count (see the Theorem 1 proof).
func Minimax(sizes []int, n int) []Partition {
	if n <= 0 {
		panic("partition: n must be positive")
	}
	sorted := sortedCopy(sizes)
	if len(sorted) == 0 {
		return nil
	}
	feasible := func(c float64) ([]int, bool) {
		cuts := make([]int, 0, n)
		start := 0
		for len(cuts) < n && start < len(sorted) {
			lo := sorted[start]
			end := start + 1
			end = advanceToSizeBoundary(sorted, end)
			// Greedily extend while the bound stays within c.
			for end < len(sorted) {
				next := advanceToSizeBoundary(sorted, end+1)
				if UpperBoundFP(next-start, lo, sorted[next-1]) > c {
					break
				}
				end = next
			}
			if UpperBoundFP(end-start, lo, sorted[end-1]) > c && end-start > 0 {
				// A single mandatory group already exceeds c: only feasible
				// if this is unavoidable (single size run) — treat as
				// infeasible so the search raises c.
				return nil, false
			}
			cuts = append(cuts, end)
			start = end
		}
		if start < len(sorted) {
			return nil, false
		}
		return cuts, true
	}
	lo, hi := 0.0, UpperBoundFP(len(sorted), sorted[0], sorted[len(sorted)-1])
	if hi <= 0 {
		hi = 1
	}
	var bestCuts []int
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if cuts, ok := feasible(mid); ok {
			bestCuts = cuts
			hi = mid
		} else {
			lo = mid
		}
	}
	if bestCuts == nil {
		// Fall back to the max cost, always feasible with one partition.
		bestCuts, _ = feasible(hi)
		if bestCuts == nil {
			return EquiDepth(sizes, n)
		}
	}
	return fromBoundaries(sorted, bestCuts)
}

// CountStdDev returns the standard deviation of the partition domain
// counts — the x-axis of Fig. 8.
func CountStdDev(parts []Partition) float64 {
	if len(parts) == 0 {
		return 0
	}
	mean := 0.0
	for _, p := range parts {
		mean += float64(p.Count)
	}
	mean /= float64(len(parts))
	v := 0.0
	for _, p := range parts {
		d := float64(p.Count) - mean
		v += d * d
	}
	return math.Sqrt(v / float64(len(parts)))
}

// Validate checks the structural invariants every partitioner must uphold:
// intervals are non-empty, ordered, disjoint, and the counts sum to the
// number of sizes whose values all fall inside some interval. It returns an
// error describing the first violation.
func Validate(parts []Partition, sizes []int) error {
	total := 0
	for i, p := range parts {
		if p.Lower > p.Upper {
			return fmt.Errorf("partition %d: lower %d > upper %d", i, p.Lower, p.Upper)
		}
		if p.Count <= 0 {
			return fmt.Errorf("partition %d: empty", i)
		}
		if i > 0 && parts[i-1].Upper >= p.Lower {
			return fmt.Errorf("partition %d overlaps previous (%d >= %d)", i, parts[i-1].Upper, p.Lower)
		}
		total += p.Count
	}
	if total != len(sizes) {
		return fmt.Errorf("counts sum to %d, want %d", total, len(sizes))
	}
	for _, s := range sizes {
		ok := false
		for _, p := range parts {
			if s >= p.Lower && s <= p.Upper {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("size %d not covered", s)
		}
	}
	return nil
}
