package partition

import (
	"math"
	"testing"
	"testing/quick"

	"lshensemble/internal/xrand"
)

func powerLawSizes(n int, seed uint64) []int {
	rng := xrand.New(seed)
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = rng.Pareto(2.0, 10, 100000)
	}
	return sizes
}

func TestUpperBoundFP(t *testing.T) {
	// Degenerate interval [u, u]: bound = count/(2u).
	if got, want := UpperBoundFP(100, 50, 50), 100.0/100.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("UpperBoundFP = %v, want %v", got, want)
	}
	if got := UpperBoundFP(0, 1, 10); got != 0 {
		t.Fatalf("empty partition bound = %v, want 0", got)
	}
	// Wider interval with same count and upper → larger bound.
	if UpperBoundFP(10, 1, 100) <= UpperBoundFP(10, 90, 100) {
		t.Fatal("bound should grow with interval width")
	}
}

func TestEquiDepthBalanced(t *testing.T) {
	sizes := powerLawSizes(10000, 1)
	parts := EquiDepth(sizes, 16)
	if err := Validate(parts, sizes); err != nil {
		t.Fatal(err)
	}
	if len(parts) != 16 {
		t.Fatalf("got %d partitions, want 16", len(parts))
	}
	// Counts can deviate from N/n because a duplicated size value (very
	// common at the small end of a discrete power law) must stay within one
	// partition; they must still be within a small factor of the target.
	for _, p := range parts {
		if p.Count < 300 || p.Count > 1300 {
			t.Fatalf("unbalanced partition count %d (target 625)", p.Count)
		}
	}
}

func TestEquiDepthDuplicatesStayTogether(t *testing.T) {
	// 1000 domains all of size 10 plus a few larger: a size value must not
	// straddle partitions.
	sizes := make([]int, 0, 1010)
	for i := 0; i < 1000; i++ {
		sizes = append(sizes, 10)
	}
	for i := 0; i < 10; i++ {
		sizes = append(sizes, 100+i)
	}
	parts := EquiDepth(sizes, 4)
	if err := Validate(parts, sizes); err != nil {
		t.Fatal(err)
	}
	if parts[0].Upper < 10 || parts[0].Count < 1000 {
		t.Fatalf("size-10 run split across partitions: %+v", parts)
	}
}

func TestEquiWidthCoversRange(t *testing.T) {
	sizes := powerLawSizes(5000, 2)
	parts := EquiWidth(sizes, 8)
	if err := Validate(parts, sizes); err != nil {
		t.Fatal(err)
	}
	// Under a power law nearly everything lands in the first interval.
	if parts[0].Count < 4000 {
		t.Fatalf("expected heavy first equi-width partition, got %d", parts[0].Count)
	}
}

func TestPartitionerInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, kind uint8) bool {
		rng := xrand.New(seed)
		n := 1 + int(nRaw)%32
		count := 10 + rng.Intn(500)
		sizes := make([]int, count)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(1000)
		}
		var parts []Partition
		switch kind % 4 {
		case 0:
			parts = EquiDepth(sizes, n)
		case 1:
			parts = EquiWidth(sizes, n)
		case 2:
			parts = Minimax(sizes, n)
		default:
			parts = Morph(sizes, n, float64(seed%11)/10)
		}
		return Validate(parts, sizes) == nil && len(parts) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEquiDepthApproximatesEquiFPOnPowerLaw(t *testing.T) {
	// Theorem 2: under a power law, equi-depth ≈ equi-M_i. Verify the
	// spread of M_i across partitions is small relative to the mean.
	// Discreteness at the head of the distribution (thousands of domains
	// share each small size) makes exact equality impossible, so assert the
	// relative spread max/mean is modest for equi-depth and that it is far
	// smaller than equi-width's spread on the same corpus.
	sizes := powerLawSizes(20000, 3)
	spread := func(parts []Partition) float64 {
		mean, max := 0.0, 0.0
		for _, p := range parts {
			m := UpperBoundFP(p.Count, p.Lower, p.Upper)
			mean += m
			if m > max {
				max = m
			}
		}
		mean /= float64(len(parts))
		return max / mean
	}
	d := spread(EquiDepth(sizes, 16))
	w := spread(EquiWidth(sizes, 16))
	// The theorem's (u−l+1)/(2u) ≈ 1/2 approximation only holds where
	// l ≪ u, i.e. away from the distribution head, so allow a mid-single-
	// digit factor.
	if d > 6 {
		t.Fatalf("equi-depth max/mean FP spread %v too large", d)
	}
	if d >= w {
		t.Fatalf("equi-depth spread %v should beat equi-width spread %v", d, w)
	}
}

func TestEquiDepthBeatsEquiWidthOnCost(t *testing.T) {
	sizes := powerLawSizes(20000, 4)
	d := Cost(EquiDepth(sizes, 16))
	w := Cost(EquiWidth(sizes, 16))
	if d >= w {
		t.Fatalf("equi-depth cost %v should beat equi-width cost %v on power law", d, w)
	}
}

func TestMinimaxBeatsOrMatchesBoth(t *testing.T) {
	for _, seed := range []uint64{5, 6, 7} {
		sizes := powerLawSizes(5000, seed)
		m := Cost(Minimax(sizes, 16))
		d := Cost(EquiDepth(sizes, 16))
		w := Cost(EquiWidth(sizes, 16))
		if m > d*1.001 || m > w*1.001 {
			t.Fatalf("seed %d: minimax cost %v worse than equi-depth %v or equi-width %v", seed, m, d, w)
		}
	}
}

func TestMinimaxOnUniformDistribution(t *testing.T) {
	// Minimax must also work when the distribution is NOT power law —
	// Theorem 1 holds for any distribution.
	rng := xrand.New(8)
	sizes := make([]int, 5000)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(10000) // uniform sizes
	}
	parts := Minimax(sizes, 8)
	if err := Validate(parts, sizes); err != nil {
		t.Fatal(err)
	}
	if Cost(parts) > Cost(EquiDepth(sizes, 8))*1.001 {
		t.Fatal("minimax should not lose to equi-depth on uniform sizes")
	}
}

func TestMorphEndpoints(t *testing.T) {
	sizes := powerLawSizes(5000, 9)
	d := EquiDepth(sizes, 8)
	m0 := Morph(sizes, 8, 0)
	if len(d) != len(m0) {
		t.Fatalf("morph(0) has %d parts, equi-depth %d", len(m0), len(d))
	}
	for i := range d {
		if d[i] != m0[i] {
			t.Fatalf("morph(0) differs from equi-depth at %d: %+v vs %+v", i, m0[i], d[i])
		}
	}
	// morph(1) should be much more imbalanced than morph(0).
	s0 := CountStdDev(m0)
	s1 := CountStdDev(Morph(sizes, 8, 1))
	if s1 <= s0 {
		t.Fatalf("morph(1) stddev %v should exceed morph(0) stddev %v", s1, s0)
	}
}

func TestMorphStdDevMonotoneish(t *testing.T) {
	// Increasing lambda should (weakly) increase imbalance overall:
	// compare endpoints and midpoint.
	sizes := powerLawSizes(10000, 10)
	s := []float64{
		CountStdDev(Morph(sizes, 32, 0)),
		CountStdDev(Morph(sizes, 32, 0.5)),
		CountStdDev(Morph(sizes, 32, 1)),
	}
	if !(s[0] <= s[1]+1 && s[1] <= s[2]+1) {
		t.Fatalf("stddev sequence not increasing: %v", s)
	}
}

func TestCountStdDev(t *testing.T) {
	parts := []Partition{{1, 1, 10}, {2, 2, 10}, {3, 3, 10}}
	if got := CountStdDev(parts); got != 0 {
		t.Fatalf("equal counts stddev = %v, want 0", got)
	}
	parts = []Partition{{1, 1, 0}, {2, 2, 20}}
	if got := CountStdDev(parts); math.Abs(got-10) > 1e-12 {
		t.Fatalf("stddev = %v, want 10", got)
	}
	if got := CountStdDev(nil); got != 0 {
		t.Fatalf("nil stddev = %v, want 0", got)
	}
}

func TestEmptyAndSingleInputs(t *testing.T) {
	if parts := EquiDepth(nil, 4); parts != nil {
		t.Fatal("empty input should give nil")
	}
	parts := EquiDepth([]int{42}, 4)
	if len(parts) != 1 || parts[0].Lower != 42 || parts[0].Upper != 42 || parts[0].Count != 1 {
		t.Fatalf("single input: %+v", parts)
	}
	parts = EquiWidth([]int{5, 5, 5}, 3)
	if len(parts) != 1 || parts[0].Count != 3 {
		t.Fatalf("all-equal sizes: %+v", parts)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	sizes := []int{1, 2, 3}
	bad := []Partition{{Lower: 1, Upper: 2, Count: 2}, {Lower: 2, Upper: 3, Count: 1}}
	if Validate(bad, sizes) == nil {
		t.Fatal("overlap not caught")
	}
	bad = []Partition{{Lower: 1, Upper: 3, Count: 5}}
	if Validate(bad, sizes) == nil {
		t.Fatal("bad count not caught")
	}
	bad = []Partition{{Lower: 2, Upper: 3, Count: 3}}
	if Validate(bad, sizes) == nil {
		t.Fatal("uncovered size not caught")
	}
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"equidepth n=0": func() { EquiDepth([]int{1}, 0) },
		"equiwidth n=0": func() { EquiWidth([]int{1}, 0) },
		"minimax n=0":   func() { Minimax([]int{1}, 0) },
		"morph bad l":   func() { Morph([]int{1}, 2, 1.5) },
		"negative size": func() { EquiDepth([]int{-1}, 2) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkEquiDepth(b *testing.B) {
	sizes := powerLawSizes(100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EquiDepth(sizes, 32)
	}
}

func BenchmarkMinimax(b *testing.B) {
	sizes := powerLawSizes(100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimax(sizes, 32)
	}
}
