package lshforest

import "fmt"

// This file is the out-of-core seam of the forest: accessors that expose the
// flat storage layout (contiguous signature store, per-tree sorted orders and
// leading-value columns) so internal/live can persist a built forest into a
// segment file, and FromView/FromViewBytes, which reassemble an indexed
// forest directly over such persisted arrays — possibly zero-copy views of a
// memory-mapped file (internal/segfile). Nothing here reads the store
// contents, so opening a mapped segment faults no signature pages.

// IDs returns the caller-assigned id of every entry in insertion order as a
// read-only view (full-slice expression: appends cannot clobber the store).
func (f *Forest) IDs() []uint32 { return f.ids[:len(f.ids):len(f.ids)] }

// StoreRaw returns the contiguous signature backing store (stride NumHash)
// as a read-only view. It is the legacy full-width seam and panics for a
// narrow store, whose elements are not uint64 — width-generic callers use
// StoreLenBytes/WriteStoreLE instead.
func (f *Forest) StoreRaw() []uint64 {
	store, _, ok := f.st.raw64()
	if !ok {
		panic(fmt.Sprintf("lshforest: StoreRaw on a %d-byte-wide store", f.width))
	}
	return store[:len(store):len(store)]
}

// StoreLenBytes returns the serialized byte length of the signature store:
// Len() * NumHash() * Width(). This is the number /stats and the segment
// files report as signature bytes — the quantity the compact sketch
// backends shrink.
func (f *Forest) StoreLenBytes() int { return f.st.valueCount() * f.width }

// WriteStoreLE serializes the whole signature store, little-endian at
// native width, into dst; len(dst) must be exactly StoreLenBytes(). For an
// 8-byte store the bytes are identical to the pre-width-generalization
// []uint64 dump, keeping segment files golden-compatible.
func (f *Forest) WriteStoreLE(dst []byte) {
	if len(dst) != f.StoreLenBytes() {
		panic(fmt.Sprintf("lshforest: WriteStoreLE into %d bytes, store is %d", len(dst), f.StoreLenBytes()))
	}
	f.st.writeStoreLE(dst)
}

// WriteTreeKeysLE serializes tree t's sorted leading-value column,
// little-endian at native width, into dst; len(dst) must be exactly
// Len() * Width(). Panics before Index.
func (f *Forest) WriteTreeKeysLE(t int, dst []byte) {
	if !f.indexed {
		panic("lshforest: WriteTreeKeysLE before Index")
	}
	if len(dst) != len(f.ids)*f.width {
		panic(fmt.Sprintf("lshforest: WriteTreeKeysLE into %d bytes, column is %d", len(dst), len(f.ids)*f.width))
	}
	f.st.writeTreeKeysLE(t, dst)
}

// Tree returns tree t's sorted slot order as a read-only view. Like
// TreeLeadingColumn it panics if the forest has not been indexed.
func (f *Forest) Tree(t int) []uint32 {
	if !f.indexed {
		panic("lshforest: Tree called before Index")
	}
	if t < 0 || t >= f.bMax {
		panic(fmt.Sprintf("lshforest: tree %d out of range [0, %d)", t, f.bMax))
	}
	if len(f.ids) == 0 {
		return nil
	}
	o := f.trees[t]
	return o[:len(o):len(o)]
}

// FromView reassembles an indexed full-width (8-byte) forest over
// externally owned storage. The slices must satisfy the invariants Index
// would have established: len(store) == len(ids)*numHash; one order and one
// leading-value column per tree, each of len(ids), with column
// c[i] == store[order[i]*numHash + t*rMax] and the column sorted by the
// tree's full hash vector. Only lengths are validated — verifying contents
// would fault every lazily mapped page, defeating the point; a checksummed
// loader (internal/live's segment files) is expected to guard the bytes
// instead. The returned forest is a read-only view: Add, Reserve and tree
// rebuilds panic.
func FromView(numHash, rMax int, ids []uint32, store []uint64, trees [][]uint32, treeKeys [][]uint64) (*Forest, error) {
	f := New(numHash, rMax)
	if len(store) != len(ids)*numHash {
		return nil, fmt.Errorf("lshforest: view store has %d values, want %d ids × %d hashes", len(store), len(ids), numHash)
	}
	if len(ids) > 0 {
		if len(trees) != f.bMax || len(treeKeys) != f.bMax {
			return nil, fmt.Errorf("lshforest: view has %d orders / %d columns, want %d trees", len(trees), len(treeKeys), f.bMax)
		}
		for t := 0; t < f.bMax; t++ {
			if len(trees[t]) != len(ids) || len(treeKeys[t]) != len(ids) {
				return nil, fmt.Errorf("lshforest: view tree %d has %d/%d entries, want %d", t, len(trees[t]), len(treeKeys[t]), len(ids))
			}
		}
		f.trees = trees
		ts := f.st.(*tstore[uint64])
		ts.store = store
		ts.treeKeys = treeKeys
	}
	f.ids = ids
	f.view = true
	f.indexed = true
	return f, nil
}

// FromViewBytes is FromView generalized over the store element width: the
// signature store and per-tree leading-value columns arrive as little-endian
// byte regions (usually sections of a mapped segment file) and are cast to
// typed views without copying on little-endian hosts. width is the element
// width in bytes (1, 2, 4 or 8); the invariants and the read-only contract
// match FromView.
func FromViewBytes(numHash, rMax, width int, ids []uint32, store []byte, trees [][]uint32, keys [][]byte) (*Forest, error) {
	f := NewWidth(numHash, rMax, width)
	if len(store) != len(ids)*numHash*width {
		return nil, fmt.Errorf("lshforest: view store has %d bytes, want %d ids × %d hashes × width %d",
			len(store), len(ids), numHash, width)
	}
	if len(ids) > 0 {
		if len(trees) != f.bMax || len(keys) != f.bMax {
			return nil, fmt.Errorf("lshforest: view has %d orders / %d columns, want %d trees", len(trees), len(keys), f.bMax)
		}
		for t := 0; t < f.bMax; t++ {
			if len(trees[t]) != len(ids) || len(keys[t]) != len(ids)*width {
				return nil, fmt.Errorf("lshforest: view tree %d has %d entries / %d column bytes, want %d / %d",
					t, len(trees[t]), len(keys[t]), len(ids), len(ids)*width)
			}
		}
		f.trees = trees
		if err := f.st.viewFrom(store, keys); err != nil {
			return nil, err
		}
	}
	f.ids = ids
	f.view = true
	f.indexed = true
	return f, nil
}
