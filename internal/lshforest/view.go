package lshforest

import "fmt"

// This file is the out-of-core seam of the forest: accessors that expose the
// flat storage layout (contiguous signature store, per-tree sorted orders and
// leading-value columns) so internal/live can persist a built forest into a
// segment file, and FromView, which reassembles an indexed forest directly
// over such persisted arrays — possibly zero-copy views of a memory-mapped
// file (internal/segfile). Nothing here reads the store contents, so opening
// a mapped segment faults no signature pages.

// IDs returns the caller-assigned id of every entry in insertion order as a
// read-only view (full-slice expression: appends cannot clobber the store).
func (f *Forest) IDs() []uint32 { return f.ids[:len(f.ids):len(f.ids)] }

// StoreRaw returns the contiguous signature backing store (stride NumHash)
// as a read-only view. Together with IDs, Tree and TreeLeadingColumn this is
// exactly the state FromView consumes, so a built forest round-trips through
// persistence without re-sorting.
func (f *Forest) StoreRaw() []uint64 { return f.store[:len(f.store):len(f.store)] }

// Tree returns tree t's sorted slot order as a read-only view. Like
// TreeLeadingColumn it panics if the forest has not been indexed.
func (f *Forest) Tree(t int) []uint32 {
	if !f.indexed {
		panic("lshforest: Tree called before Index")
	}
	if t < 0 || t >= f.bMax {
		panic(fmt.Sprintf("lshforest: tree %d out of range [0, %d)", t, f.bMax))
	}
	if len(f.ids) == 0 {
		return nil
	}
	o := f.trees[t]
	return o[:len(o):len(o)]
}

// FromView reassembles an indexed forest over externally owned storage. The
// slices must satisfy the invariants Index would have established: len(store)
// == len(ids)*numHash; one order and one leading-value column per tree, each
// of len(ids), with column c[i] == store[order[i]*numHash + t*rMax] and the
// column sorted by the tree's full hash vector. Only lengths are validated —
// verifying contents would fault every lazily mapped page, defeating the
// point; a checksummed loader (internal/live's segment files) is expected to
// guard the bytes instead. The returned forest is a read-only view: Add,
// Reserve and tree rebuilds panic.
func FromView(numHash, rMax int, ids []uint32, store []uint64, trees [][]uint32, treeKeys [][]uint64) (*Forest, error) {
	f := New(numHash, rMax)
	if len(store) != len(ids)*numHash {
		return nil, fmt.Errorf("lshforest: view store has %d values, want %d ids × %d hashes", len(store), len(ids), numHash)
	}
	if len(ids) > 0 {
		if len(trees) != f.bMax || len(treeKeys) != f.bMax {
			return nil, fmt.Errorf("lshforest: view has %d orders / %d columns, want %d trees", len(trees), len(treeKeys), f.bMax)
		}
		for t := 0; t < f.bMax; t++ {
			if len(trees[t]) != len(ids) || len(treeKeys[t]) != len(ids) {
				return nil, fmt.Errorf("lshforest: view tree %d has %d/%d entries, want %d", t, len(trees[t]), len(treeKeys[t]), len(ids))
			}
		}
		f.trees = trees
		f.treeKeys = treeKeys
	}
	f.ids = ids
	f.store = store
	f.view = true
	f.indexed = true
	return f, nil
}
