package lshforest

import (
	"bytes"
	"encoding/hex"
	"testing"

	"lshensemble/internal/xrand"
)

// forestGoldenHex is the AppendBinary output of the pre-flattening forest
// implementation (signatures stored as per-entry []uint64 slices) over a
// deterministic corpus: New(8, 2); six entries with ids 0, 7, ..., 35 and
// signatures drawn as xrand.New(3).Uint64() % 16. The wire format is
// layout-independent, so the flat-store implementation must decode these
// bytes and produce byte-identical re-encodings.
const forestGoldenHex = "4c534846080000000200000006000000000000000d00000000000000090000000000000001000000000000000f000000" +
	"000000000600000000000000070000000000000008000000000000000600000000000000070000000a00000000000000" +
	"02000000000000000c000000000000000f00000000000000040000000000000003000000000000000c00000000000000" +
	"0a000000000000000e0000000600000000000000050000000000000008000000000000000d0000000000000002000000" +
	"000000000600000000000000030000000000000001000000000000001500000004000000000000000500000000000000" +
	"04000000000000000d000000000000000700000000000000000000000000000001000000000000000100000000000000" +
	"1c000000050000000000000008000000000000000f0000000000000002000000000000000b0000000000000008000000" +
	"000000000400000000000000000000000000000023000000030000000000000000000000000000000f00000000000000" +
	"0000000000000000000000000000000003000000000000000b000000000000000100000000000000"

// goldenForestInputs regenerates the exact (id, sig) stream the golden
// bytes were produced from.
func goldenForestInputs() ([]uint32, [][]uint64) {
	rng := xrand.New(3)
	ids := make([]uint32, 6)
	sigs := make([][]uint64, 6)
	for i := range sigs {
		sig := make([]uint64, 8)
		for k := range sig {
			sig[k] = rng.Uint64() % 16
		}
		ids[i] = uint32(i * 7)
		sigs[i] = sig
	}
	return ids, sigs
}

// TestForestGoldenDecode proves the flattened store decodes bytes produced
// by the old per-slice layout: same shape, same query results, and a
// byte-identical re-encoding.
func TestForestGoldenDecode(t *testing.T) {
	golden, err := hex.DecodeString(forestGoldenHex)
	if err != nil {
		t.Fatal(err)
	}
	f, rest, err := DecodeForest(golden)
	if err != nil {
		t.Fatalf("golden bytes from the old layout failed to decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if f.NumHash() != 8 || f.RMax() != 2 || f.Len() != 6 {
		t.Fatalf("decoded shape (%d, %d, %d), want (8, 2, 6)",
			f.NumHash(), f.RMax(), f.Len())
	}

	ids, sigs := goldenForestInputs()
	live := New(8, 2)
	for i := range sigs {
		live.Add(ids[i], sigs[i])
	}
	live.Index()

	// Every stored signature survives the round trip bit-for-bit.
	i := 0
	f.Each(func(id uint32, sig []uint64) {
		if id != ids[i] {
			t.Fatalf("entry %d: id %d, want %d", i, id, ids[i])
		}
		for k := range sig {
			if sig[k] != sigs[i][k] {
				t.Fatalf("entry %d slot %d: %d, want %d", i, k, sig[k], sigs[i][k])
			}
		}
		i++
	})

	// Query equivalence between the decoded and the freshly built forest.
	for qi := range sigs {
		for _, br := range [][2]int{{1, 1}, {2, 2}, {4, 1}, {4, 2}} {
			want := map[uint32]int{}
			got := map[uint32]int{}
			live.Query(sigs[qi], br[0], br[1], func(id uint32) bool { want[id]++; return true })
			f.Query(sigs[qi], br[0], br[1], func(id uint32) bool { got[id]++; return true })
			if len(want) != len(got) {
				t.Fatalf("q=%d b=%d r=%d: %v vs %v", qi, br[0], br[1], got, want)
			}
			for id, c := range want {
				if got[id] != c {
					t.Fatalf("q=%d b=%d r=%d: id %d seen %d times, want %d",
						qi, br[0], br[1], id, got[id], c)
				}
			}
		}
	}

	// Re-encoding is byte-identical (the format did not drift).
	if !bytes.Equal(f.AppendBinary(nil), golden) {
		t.Fatal("re-encoded bytes differ from the golden fixture")
	}
	if !bytes.Equal(live.AppendBinary(nil), golden) {
		t.Fatal("freshly built forest encodes differently from the golden fixture")
	}
}

// TestDecodeHostileHeader feeds headers whose n * (4 + 8*numHash) product
// overflows 63 bits; the decoder must reject them without allocating or
// panicking.
func TestDecodeHostileHeader(t *testing.T) {
	mk := func(numHash, rMax, n uint32) []byte {
		buf := []byte{'L', 'S', 'H', 'F'}
		for _, v := range []uint32{numHash, rMax, n} {
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		// A little trailing data so the header itself is well-formed.
		return append(buf, make([]byte, 64)...)
	}
	cases := map[string][]byte{
		"overflowing product": mk(0xFFFFFFF0, 1, 0xFFFFFFF0),
		"huge n":              mk(8, 2, 0xFFFFFFFF),
		"huge numHash":        mk(0x7FFFFFFF, 1, 2),
		"n exceeds buffer":    mk(8, 2, 1000),
		"zero numHash":        mk(0, 0, 1),
		"rMax above numHash":  mk(4, 8, 1),
		"high-bit n":          mk(8, 2, 0x80000000),
		"max everything":      mk(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF),
	}
	for name, buf := range cases {
		if _, _, err := DecodeForest(buf); err == nil {
			t.Errorf("%s: decode accepted a hostile header", name)
		}
	}

	// An empty forest with an absurd declared numHash is format-valid but
	// must decode without allocating anything proportional to numHash.
	f, _, err := DecodeForest(mk(0xFFFFFFF0, 1, 0))
	if err != nil {
		t.Fatalf("empty forest with huge numHash should decode: %v", err)
	}
	if f.Len() != 0 {
		t.Fatalf("decoded %d entries, want 0", f.Len())
	}
	f.Query(make([]uint64, 1), 1, 1, func(uint32) bool {
		t.Fatal("empty forest produced a candidate")
		return false
	})
}

func BenchmarkForestQueryAllocs(b *testing.B) {
	rng := xrand.New(1)
	const m, rMax = 256, 8
	f := New(m, rMax)
	sigs, ids := randSigs(rng, 10000, m, 1<<20)
	for i := range sigs {
		f.Add(ids[i], sigs[i])
	}
	f.Index()
	q := sigs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Query(q, 32, 4, func(id uint32) bool { return true })
	}
}
