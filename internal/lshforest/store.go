package lshforest

import (
	"unsafe"

	"lshensemble/internal/segfile"
)

// viewLE casts a little-endian byte region to a typed value slice —
// zero-copy on little-endian hosts (segfile.View), a decoding copy
// elsewhere.
func viewLE[E elem](b []byte) []E { return segfile.View[E](b) }

// This file is the element-width generalization of the forest's flat
// storage: the contiguous signature store and the per-tree sorted
// leading-value columns are held at a configurable element width (1, 2, 4 or
// 8 bytes per hash value) behind the sigstore interface, with one
// monomorphized implementation per width (tstore[E]). Narrow widths are the
// b-bit minwise backends (Li & König): a stored value is the low 8·width
// bits of the 64-bit minhash value, and a query-side value is truncated to
// the same width on the fly at every compare site — the Go conversion
// E(v) keeps exactly the low bits, so truncation costs nothing and query
// signatures stay full-width []uint64 throughout the API.
//
// Truncation to the low b bits is idempotent (truncating an
// already-truncated value is the identity), so signatures read back from a
// narrow store can be re-added to another narrow store — the merge path of
// internal/live relies on this.

// elem is the set of storable hash-value widths.
type elem interface {
	~uint8 | ~uint16 | ~uint32 | ~uint64
}

// sigstore is the width-erased interface the Forest wrapper dispatches
// through — one virtual call per operation, with the loops inside
// monomorphized per width.
type sigstore interface {
	width() int
	valueCount() int
	reserveValues(n int)
	appendSig(sig []uint64)
	appendZeros(n int)
	prepareTrees(bMax int)
	rebuildTree(t int, order []uint32, s *SortScratch)
	query(ids []uint32, trees [][]uint32, sig []uint64, b, r int, fn func(id uint32) bool)
	matchCount(slot int, sig []uint64) int
	appendWidened(dst []uint64, slot int) []uint64
	leadingColumn64(t, n int) []uint64
	leadingBounds(t, n int) (uint64, uint64, bool)
	appendEntryLE(buf []byte, slot int) []byte
	decodeAppendSig(buf []byte) []byte
	writeStoreLE(dst []byte)
	writeTreeKeysLE(t int, dst []byte)
	viewFrom(store []byte, keys [][]byte) error
	raw64() ([]uint64, [][]uint64, bool)
}

// tstore is the width-typed half of a Forest: the contiguous signature store
// (stride numHash) and the per-tree sorted leading-value columns.
type tstore[E elem] struct {
	numHash, rMax int
	store         []E
	treeKeys      [][]E
}

func newStore(widthBytes, numHash, rMax int) sigstore {
	switch widthBytes {
	case 1:
		return &tstore[uint8]{numHash: numHash, rMax: rMax}
	case 2:
		return &tstore[uint16]{numHash: numHash, rMax: rMax}
	case 4:
		return &tstore[uint32]{numHash: numHash, rMax: rMax}
	case 8:
		return &tstore[uint64]{numHash: numHash, rMax: rMax}
	default:
		return nil
	}
}

func (ts *tstore[E]) width() int      { return int(unsafe.Sizeof(E(0))) }
func (ts *tstore[E]) valueCount() int { return len(ts.store) }

func (ts *tstore[E]) reserveValues(n int) {
	if cap(ts.store) < n {
		store := make([]E, len(ts.store), n)
		copy(store, ts.store)
		ts.store = store
	}
}

// appendSig appends sig truncated to the store's width; the caller has
// already clamped sig to at most numHash values and appends the zero padding
// separately via appendZeros.
func (ts *tstore[E]) appendSig(sig []uint64) {
	for _, v := range sig {
		ts.store = append(ts.store, E(v))
	}
}

func (ts *tstore[E]) appendZeros(n int) {
	for ; n > 0; n-- {
		ts.store = append(ts.store, 0)
	}
}

func (ts *tstore[E]) prepareTrees(bMax int) {
	if ts.treeKeys == nil {
		ts.treeKeys = make([][]E, bMax)
	}
}

// rebuildTree sorts order (pre-filled with the identity permutation by the
// caller) by tree t's hash vector and refreshes the tree's contiguous
// leading-value column.
func (ts *tstore[E]) rebuildTree(t int, order []uint32, s *SortScratch) {
	n := len(order)
	off := t * ts.rMax
	ts.sortByPrefix(order, s.tmpOrder[:n], s.keys[:n], s.tmpKeys[:n], off, 0)
	// Rebuild the contiguous leading-value column in sorted order (the
	// sort scratch may have been clobbered by tie-break recursion).
	col := ts.treeKeys[t]
	if cap(col) < n {
		col = make([]E, n)
	}
	col = col[:n]
	for i, sl := range order {
		col[i] = ts.store[int(sl)*ts.numHash+off]
	}
	ts.treeKeys[t] = col
}

// sortByPrefix sorts order by the hash values store[slot*stride+off+depth ..
// off+rMax-1], least significant last (lexicographic). It radix-sorts on the
// value at the current depth and recurses into runs of equal values for the
// deeper tie-break; tiny ranges use insertion sort on the full remaining
// prefix instead. Keys are widened into the shared []uint64 scratch — the
// radix sort skips constant bytes, so narrow widths automatically take only
// the low-byte passes.
func (ts *tstore[E]) sortByPrefix(order, tmpOrder []uint32, keys, tmpKeys []uint64, off, depth int) {
	if depth >= ts.rMax || len(order) < 2 {
		return
	}
	if len(order) <= 12 {
		ts.insertionSortSuffix(order, off+depth, ts.rMax-depth)
		return
	}
	stride := ts.numHash
	col := off + depth
	for i, s := range order {
		keys[i] = uint64(ts.store[int(s)*stride+col])
	}
	radixSortPairs(keys, order, tmpKeys, tmpOrder)
	// Recurse into runs of equal keys. Reading keys[start] before any
	// recursion clobbers that subrange keeps the run detection sound: a
	// recursive call only rewrites keys strictly before the next run start.
	start := 0
	for i := 1; i <= len(order); i++ {
		if i < len(order) && keys[i] == keys[start] {
			continue
		}
		if i-start > 1 {
			ts.sortByPrefix(order[start:i], tmpOrder[start:i], keys[start:i], tmpKeys[start:i], off, depth+1)
		}
		start = i
	}
}

// insertionSortSuffix sorts order lexicographically by the r hash values at
// offset off of each slot's stored signature.
func (ts *tstore[E]) insertionSortSuffix(order []uint32, off, r int) {
	stride := ts.numHash
	for i := 1; i < len(order); i++ {
		s := order[i]
		base := int(s)*stride + off
		j := i
		for j > 0 {
			other := int(order[j-1])*stride + off
			if !lexLess(ts.store[base:base+r], ts.store[other:other+r]) {
				break
			}
			order[j] = order[j-1]
			j--
		}
		order[j] = s
	}
}

// lexLess reports whether a < b lexicographically; the slices have equal
// length.
func lexLess[E elem](a, b []E) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// compareSuffix compares the stored hash values at [base, base+r) against
// the query values q, each truncated to the store's width. Returns -1, 0,
// or 1.
func (ts *tstore[E]) compareSuffix(base, r int, q []uint64) int {
	s := ts.store[base : base+r]
	for k := 0; k < r; k++ {
		qk := E(q[k])
		if s[k] != qk {
			if s[k] < qk {
				return -1
			}
			return 1
		}
	}
	return 0
}

// query is the probe kernel: for each of the first b trees, binary-search
// the equal range of the query's (truncated) leading value on the contiguous
// key column, then refine by the remaining r-1 prefix values.
func (ts *tstore[E]) query(ids []uint32, trees [][]uint32, sig []uint64, b, r int, fn func(id uint32) bool) {
	n := len(ids)
	stride := ts.numHash
	for t := 0; t < b; t++ {
		off := t * ts.rMax
		q0 := E(sig[off])
		col := ts.treeKeys[t]
		order := trees[t]
		// Equal range of the leading value on the contiguous key column.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if col[mid] < q0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		left := lo
		hi = n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if col[mid] <= q0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		right := lo
		if left == right {
			continue
		}
		if r == 1 {
			for i := left; i < right; i++ {
				if !fn(ids[order[i]]) {
					return
				}
			}
			continue
		}
		// Refine by the remaining r-1 prefix values within the equal-q0 run.
		qs := sig[off+1 : off+r]
		lo, hi = left, right
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ts.compareSuffix(int(order[mid])*stride+off+1, r-1, qs) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for i := lo; i < right; i++ {
			if ts.compareSuffix(int(order[i])*stride+off+1, r-1, qs) != 0 {
				break
			}
			if !fn(ids[order[i]]) {
				return
			}
		}
	}
}

// matchCount returns the number of slots where the stored signature in the
// given slot agrees with the (truncated) query signature — the collision
// count b-bit and plain minwise containment estimation both start from.
func (ts *tstore[E]) matchCount(slot int, sig []uint64) int {
	base := slot * ts.numHash
	m := ts.numHash
	if len(sig) < m {
		m = len(sig)
	}
	s := ts.store[base : base+m]
	eq := 0
	for k := 0; k < m; k++ {
		if s[k] == E(sig[k]) {
			eq++
		}
	}
	return eq
}

// appendWidened appends the stored signature of slot, widened to uint64, to
// dst. The values are the truncated ones — widening does not (cannot)
// recover the discarded high bits.
func (ts *tstore[E]) appendWidened(dst []uint64, slot int) []uint64 {
	base := slot * ts.numHash
	for _, v := range ts.store[base : base+ts.numHash] {
		dst = append(dst, uint64(v))
	}
	return dst
}

// leadingColumn64 returns tree t's sorted leading-value column widened to
// []uint64. For the 8-byte width this is the column itself (zero-copy view);
// narrower widths allocate a widened copy — callers are seal-time planners,
// not query paths.
func (ts *tstore[E]) leadingColumn64(t, n int) []uint64 {
	col := ts.treeKeys[t][:n]
	if c, ok := any(col).([]uint64); ok {
		return c[:len(c):len(c)]
	}
	out := make([]uint64, n)
	for i, v := range col {
		out[i] = uint64(v)
	}
	return out
}

func (ts *tstore[E]) leadingBounds(t, n int) (uint64, uint64, bool) {
	if n == 0 {
		return 0, 0, false
	}
	col := ts.treeKeys[t]
	return uint64(col[0]), uint64(col[n-1]), true
}

// appendEntryLE appends slot's signature values at native width,
// little-endian, to buf (the serialization path).
func (ts *tstore[E]) appendEntryLE(buf []byte, slot int) []byte {
	w := ts.width()
	base := slot * ts.numHash
	for _, v := range ts.store[base : base+ts.numHash] {
		u := uint64(v)
		for k := 0; k < w; k++ {
			buf = append(buf, byte(u>>(8*k)))
		}
	}
	return buf
}

// decodeAppendSig appends one signature (numHash values at native width,
// little-endian) read from buf to the store and returns the remaining bytes.
// The caller has verified buf holds at least numHash*width bytes.
func (ts *tstore[E]) decodeAppendSig(buf []byte) []byte {
	w := ts.width()
	for i := 0; i < ts.numHash; i++ {
		var u uint64
		for k := w - 1; k >= 0; k-- {
			u = u<<8 | uint64(buf[i*w+k])
		}
		ts.store = append(ts.store, E(u))
	}
	return buf[ts.numHash*w:]
}

// writeStoreLE serializes the whole store, little-endian at native width,
// into dst (len(dst) must be exactly valueCount()*width — the segment-file
// writer pre-sizes its image).
func (ts *tstore[E]) writeStoreLE(dst []byte) {
	writeLE(dst, ts.store)
}

// writeTreeKeysLE serializes tree t's leading-value column like
// writeStoreLE.
func (ts *tstore[E]) writeTreeKeysLE(t int, dst []byte) {
	writeLE(dst, ts.treeKeys[t])
}

func writeLE[E elem](dst []byte, vals []E) {
	w := int(unsafe.Sizeof(E(0)))
	for i, v := range vals {
		u := uint64(v)
		for k := 0; k < w; k++ {
			dst[i*w+k] = byte(u >> (8 * k))
		}
	}
}

// viewFrom points the store and columns at externally owned little-endian
// byte regions (zero-copy on little-endian hosts via segfile.View). Length
// validation happened in FromViewBytes; here the bytes only need casting.
func (ts *tstore[E]) viewFrom(store []byte, keys [][]byte) error {
	ts.store = viewLE[E](store)
	if keys != nil {
		ts.treeKeys = make([][]E, len(keys))
		for t, kb := range keys {
			ts.treeKeys[t] = viewLE[E](kb)
		}
	}
	return nil
}

// raw64 exposes the store and columns as []uint64 views when (and only
// when) the width is 8 bytes — the legacy zero-copy seam StoreRaw and
// FromView speak.
func (ts *tstore[E]) raw64() ([]uint64, [][]uint64, bool) {
	st, ok := any(ts.store).([]uint64)
	if !ok {
		return nil, nil, false
	}
	keys, _ := any(ts.treeKeys).([][]uint64)
	return st, keys, true
}
