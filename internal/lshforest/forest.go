// Package lshforest implements a dynamic MinHash LSH index in the style of
// LSH Forest (Bawa, Condie, Ganesan, WWW 2005).
//
// A classic MinHash LSH has a fixed banding configuration (b bands of r hash
// values each) and therefore a fixed Jaccard threshold. LSH Ensemble needs a
// per-query threshold, so the index must support choosing (b, r) at query
// time. Following the LSH Forest idea, the signature is divided into bMax
// fixed "trees", each covering rMax consecutive hash values; a query probes
// the first b trees and, within each tree, matches only the first r of its
// rMax values. Prefix trees are realized as arrays sorted lexicographically
// by the tree's hash-value vector, so a variable-depth prefix probe is a
// binary-searched range scan. This supports any (b, r) with b ≤ bMax and
// r ≤ rMax, hence b·r ≤ bMax·rMax ≤ m as required by the paper's tuning
// constraint (Eq. 25).
//
// Storage layout: all signatures live in one contiguous backing store with
// stride numHash, and every tree additionally keeps a flat column of its
// first hash value in sorted order. Probes binary-search that contiguous
// column (no pointer chasing through per-entry slice headers) and only fall
// back to the backing store to resolve prefixes deeper than one value. Trees
// are built with an LSD radix sort on the leading hash value — hash values
// are near-uniform, so ties needing the deeper comparison sort are rare.
//
// The store's element width is configurable (NewWidth): 8 bytes holds the
// full 61-bit minhash values, narrower widths (1, 2, 4 bytes) hold b-bit
// truncations — the b-bit minwise backends of internal/core. Query
// signatures stay full-width []uint64 regardless; every compare site
// truncates the query value to the store's width on the fly (see store.go).
package lshforest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"lshensemble/internal/par"
)

// Forest is a dynamic-(b,r) MinHash LSH index over integer domain ids.
// Ids are assigned by the caller; signatures must all have the same length,
// at least BMax()*RMax(). Add entries, call Index once, then Query.
type Forest struct {
	numHash int
	rMax    int
	bMax    int
	width   int // bytes per stored hash value: 1, 2, 4 or 8

	ids   []uint32   // caller-assigned id per inserted entry
	trees [][]uint32 // per tree: slot indices sorted by that tree's hash vector

	st sigstore // width-typed signature store + per-tree leading-value columns

	indexed bool
	view    bool // FromView forest over external (possibly mapped) storage: mutation panics
}

// New constructs a forest for signatures of numHash values with trees of
// depth rMax, storing full-width (8-byte) hash values. The number of trees
// is numHash/rMax (integer division); rMax must be in [1, numHash].
func New(numHash, rMax int) *Forest { return NewWidth(numHash, rMax, 8) }

// NewWidth is New with an explicit store element width in bytes (1, 2, 4 or
// 8). Narrow widths store the low 8·width bits of each hash value — the
// b-bit minwise truncation — and truncate query values to match at probe
// time.
func NewWidth(numHash, rMax, width int) *Forest {
	if numHash <= 0 {
		panic("lshforest: numHash must be positive")
	}
	if rMax <= 0 || rMax > numHash {
		panic(fmt.Sprintf("lshforest: rMax %d out of range [1, %d]", rMax, numHash))
	}
	st := newStore(width, numHash, rMax)
	if st == nil {
		panic(fmt.Sprintf("lshforest: width %d not one of 1, 2, 4, 8", width))
	}
	return &Forest{
		numHash: numHash,
		rMax:    rMax,
		bMax:    numHash / rMax,
		width:   width,
		st:      st,
	}
}

// NumHash returns the signature length the forest expects.
func (f *Forest) NumHash() int { return f.numHash }

// RMax returns the tree depth (maximum r usable at query time).
func (f *Forest) RMax() int { return f.rMax }

// BMax returns the number of trees (maximum b usable at query time).
func (f *Forest) BMax() int { return f.bMax }

// Width returns the store's element width in bytes (8 for full minwise,
// 1/2/4 for the b-bit truncated backends).
func (f *Forest) Width() int { return f.width }

// Len returns the number of entries added.
func (f *Forest) Len() int { return len(f.ids) }

// Indexed reports whether Index has been called since the last Add.
func (f *Forest) Indexed() bool { return f.indexed }

// Reserve grows the forest's backing arrays so they can hold at least n
// total entries without reallocating. Builds of known size should call it
// once up front: the contiguous signature store is then allocated in a
// single step instead of grown by repeated append (which copies the whole
// store every doubling). Reserve never shrinks and is a no-op when capacity
// already suffices.
func (f *Forest) Reserve(n int) {
	if f.view {
		panic("lshforest: Reserve on a read-only view")
	}
	if n <= 0 {
		return
	}
	if cap(f.ids) < n {
		ids := make([]uint32, len(f.ids), n)
		copy(ids, f.ids)
		f.ids = ids
	}
	f.st.reserveValues(n * f.numHash)
}

// Add inserts a (id, signature) pair. The signature is copied into the
// forest's contiguous backing store, truncated to the store's width; the
// caller keeps ownership of sig. Add invalidates the index; call Index
// before querying again.
func (f *Forest) Add(id uint32, sig []uint64) {
	if f.view {
		panic("lshforest: Add on a read-only view")
	}
	if len(sig) < f.bMax*f.rMax {
		panic(fmt.Sprintf("lshforest: signature length %d < required %d", len(sig), f.bMax*f.rMax))
	}
	n := f.numHash
	if len(sig) > n {
		sig = sig[:n]
	}
	f.st.appendSig(sig)
	// Signatures shorter than numHash (allowed when bMax*rMax < numHash)
	// are zero-padded so every entry occupies exactly one stride.
	f.st.appendZeros(n - len(sig))
	f.ids = append(f.ids, id)
	f.indexed = false
}

// SortScratch is the per-worker working memory of a tree rebuild: the radix
// sort ping-pongs between the order/keys arrays and these temporaries. One
// scratch serves any number of sequential RebuildTree calls (it grows to the
// largest forest it has seen); distinct concurrent workers must each own
// their own.
type SortScratch struct {
	tmpOrder []uint32
	keys     []uint64
	tmpKeys  []uint64
}

func (s *SortScratch) grow(n int) {
	if cap(s.tmpOrder) < n {
		s.tmpOrder = make([]uint32, n)
		s.keys = make([]uint64, n)
		s.tmpKeys = make([]uint64, n)
	}
}

// PrepareTrees readies the forest for per-tree rebuilds and returns the
// number of independent tree jobs to run (one per tree, indices
// [0, BMax())). An empty forest has nothing to sort: it is finalized
// immediately and 0 is returned — skipping the per-tree allocations also
// keeps DecodeForest's cost proportional to its input for empty encodings
// with an enormous declared numHash.
//
// After PrepareTrees, RebuildTree may be called for every job index (from
// any goroutine, each index exactly once), followed by one FinishTrees.
// Index and IndexParallel wrap this sequence.
func (f *Forest) PrepareTrees() int {
	if f.view {
		// Rebuilding would write into the externally owned (possibly mapped
		// read-only) order/column arrays.
		panic("lshforest: PrepareTrees on a read-only view")
	}
	if len(f.ids) == 0 {
		f.indexed = true
		return 0
	}
	if f.trees == nil {
		f.trees = make([][]uint32, f.bMax)
	}
	f.st.prepareTrees(f.bMax)
	return f.bMax
}

// RebuildTree sorts tree t from the current backing store using the given
// scratch. Distinct trees touch disjoint forest state, so RebuildTree is
// safe to call concurrently for distinct t (with distinct scratches)
// between PrepareTrees and FinishTrees.
func (f *Forest) RebuildTree(t int, s *SortScratch) {
	n := len(f.ids)
	s.grow(n)
	order := f.trees[t]
	if cap(order) < n {
		order = make([]uint32, n)
	}
	order = order[:n]
	for i := range order {
		order[i] = uint32(i)
	}
	f.st.rebuildTree(t, order, s)
	f.trees[t] = order
}

// FinishTrees marks the forest indexed after every RebuildTree job has
// completed.
func (f *Forest) FinishTrees() { f.indexed = true }

// Index (re)builds the sorted trees. It is idempotent and must be called
// after the last Add and before the first Query.
func (f *Forest) Index() {
	jobs := f.PrepareTrees()
	if jobs == 0 {
		return
	}
	var s SortScratch
	for t := 0; t < jobs; t++ {
		f.RebuildTree(t, &s)
	}
	f.FinishTrees()
}

// IndexParallel is Index with the per-tree sorts fanned out over up to
// `workers` goroutines (each with its own SortScratch). workers ≤ 1 falls
// back to the serial path. The resulting trees are identical to Index's.
func (f *Forest) IndexParallel(workers int) {
	jobs := f.PrepareTrees()
	if jobs == 0 {
		return
	}
	workers = par.Clamp(workers, jobs)
	scratches := make([]SortScratch, workers)
	par.Drain(jobs, workers, func(w, t int) {
		f.RebuildTree(t, &scratches[w])
	})
	f.FinishTrees()
}

// radixSortPairs sorts (keys, vals) pairs by key with an LSD byte-wise radix
// sort, skipping passes over bytes that are constant across all keys (hash
// values occupy 61 bits — or 8·width bits in a truncated store — and small
// test universes collapse to one or two live bytes). The sorted result is
// guaranteed to land back in keys/vals; tmpKeys/tmpVals are scratch of the
// same length.
func radixSortPairs(keys []uint64, vals []uint32, tmpKeys []uint64, tmpVals []uint32) {
	orAll, andAll := uint64(0), ^uint64(0)
	for _, k := range keys {
		orAll |= k
		andAll &= k
	}
	diff := orAll ^ andAll // bytes where any two keys disagree
	if diff == 0 {
		return
	}
	origKeys, origVals := keys, vals
	var count [256]int
	flipped := false
	for shift := 0; shift < 64; shift += 8 {
		if (diff>>shift)&0xff == 0 {
			continue
		}
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[(k>>shift)&0xff]++
		}
		sum := 0
		for i := 0; i < 256; i++ {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i, k := range keys {
			b := (k >> shift) & 0xff
			j := count[b]
			count[b]++
			tmpKeys[j] = k
			tmpVals[j] = vals[i]
		}
		keys, tmpKeys = tmpKeys, keys
		vals, tmpVals = tmpVals, vals
		flipped = !flipped
	}
	if flipped {
		copy(origKeys, keys)
		copy(origVals, vals)
	}
}

// Query probes the first b trees at depth r and invokes fn once per
// *occurrence* of a matching entry (the same id may be reported from
// multiple trees; use QueryDedup for set semantics). fn returning false
// stops the scan early. The query signature is full-width; a narrow store
// truncates each compared query value to its width on the fly. It panics if
// the forest is not indexed or if (b, r) is out of range.
func (f *Forest) Query(sig []uint64, b, r int, fn func(id uint32) bool) {
	if !f.indexed {
		panic("lshforest: Query before Index")
	}
	if b <= 0 || b > f.bMax {
		panic(fmt.Sprintf("lshforest: b %d out of range [1, %d]", b, f.bMax))
	}
	if r <= 0 || r > f.rMax {
		panic(fmt.Sprintf("lshforest: r %d out of range [1, %d]", r, f.rMax))
	}
	if len(f.ids) == 0 {
		return // indexed empty forest has no trees to probe
	}
	f.st.query(f.ids, f.trees, sig, b, r, fn)
}

// MatchCount returns the number of signature slots where the entry stored
// in the given slot (insertion position, [0, Len())) agrees with the query
// signature, truncated to the store's width. It is the allocation-free
// scoring primitive containment estimation builds on: a narrow store cannot
// hand out []uint64 views, but agreement counts only need the truncated
// values on both sides.
func (f *Forest) MatchCount(slot int, sig []uint64) int {
	return f.st.matchCount(slot, sig)
}

// AppendSigWidened appends the stored signature of the given slot, widened
// to uint64 values, to dst. For a full-width store the values are the
// original hash values; for a narrow store they are the stored truncations
// (truncation is idempotent, so re-adding them to an equally narrow store is
// lossless).
func (f *Forest) AppendSigWidened(dst []uint64, slot int) []uint64 {
	return f.st.appendWidened(dst, slot)
}

// TreeLeadingColumn returns tree t's sorted column of leading hash values
// (the value at offset t*RMax of every stored signature) widened to uint64.
// Any probe of tree t at any depth r ≥ 1 matches an entry only if the
// query's (truncated) leading value occurs in this column, which is what
// makes the column the cheap export segment-level planners (internal/live)
// build their collision Bloom filters and bounds from. For the 8-byte width
// the returned slice is a view into the forest's index (callers must not
// mutate it); narrower widths return a widened copy. It returns nil for an
// empty forest and panics before Index.
func (f *Forest) TreeLeadingColumn(t int) []uint64 {
	if !f.indexed {
		panic("lshforest: TreeLeadingColumn before Index")
	}
	if t < 0 || t >= f.bMax {
		panic(fmt.Sprintf("lshforest: tree %d out of range [0, %d)", t, f.bMax))
	}
	if len(f.ids) == 0 {
		return nil
	}
	return f.st.leadingColumn64(t, len(f.ids))
}

// TreeLeadingBounds returns the smallest and largest leading hash value of
// tree t (the first and last element of the sorted column). ok is false for
// an empty forest. A query value outside [min, max] cannot collide in the
// tree; with near-uniform hash values the interval is usually wide, so the
// bounds serve diagnostics and fast-path checks rather than primary pruning.
func (f *Forest) TreeLeadingBounds(t int) (min, max uint64, ok bool) {
	if !f.indexed {
		panic("lshforest: TreeLeadingBounds before Index")
	}
	if t < 0 || t >= f.bMax {
		panic(fmt.Sprintf("lshforest: tree %d out of range [0, %d)", t, f.bMax))
	}
	return f.st.leadingBounds(t, len(f.ids))
}

// Each invokes fn for every (id, signature) pair stored in the forest, in
// insertion order, with the signature widened to uint64 values. For the
// 8-byte width the signature is a view into the forest's backing store;
// narrower widths reuse one widened scratch buffer across entries. In both
// cases the slice is only valid during the callback and must not be mutated.
func (f *Forest) Each(fn func(id uint32, sig []uint64)) {
	if store, _, ok := f.st.raw64(); ok {
		for i, id := range f.ids {
			base := i * f.numHash
			fn(id, store[base:base+f.numHash:base+f.numHash])
		}
		return
	}
	scratch := make([]uint64, 0, f.numHash)
	for i, id := range f.ids {
		scratch = f.st.appendWidened(scratch[:0], i)
		fn(id, scratch)
	}
}

// QueryDedup probes like Query but reports each matching id exactly once.
// The seen scratch map may be nil; passing a reused map avoids allocation.
func (f *Forest) QueryDedup(sig []uint64, b, r int, seen map[uint32]struct{}, fn func(id uint32) bool) {
	if seen == nil {
		seen = make(map[uint32]struct{})
	}
	f.Query(sig, b, r, func(id uint32) bool {
		if _, ok := seen[id]; ok {
			return true
		}
		seen[id] = struct{}{}
		return fn(id)
	})
}

// binary serialization formats:
//
//	v1 (8-byte stores, unchanged since PR 1 — golden-bytes compatible):
//	  magic "LSHF" | numHash | rMax | n | per entry: id, sig[numHash] as u64
//	v2 (any width):
//	  magic "LSF2" | width | numHash | rMax | n | per entry: id,
//	  sig[numHash] at native width, little-endian
//
// Trees are rebuilt on load (sorting is cheaper than storing permutations).
// AppendBinary emits v1 for 8-byte stores so existing fixtures stay
// byte-identical, v2 otherwise; DecodeForest reads both.

var (
	forestMagic   = [4]byte{'L', 'S', 'H', 'F'}
	forestMagicV2 = [4]byte{'L', 'S', 'F', '2'}
)

// ErrCorrupt reports a malformed forest encoding.
var ErrCorrupt = errors.New("lshforest: corrupt encoding")

// AppendBinary appends the forest's binary encoding to buf.
func (f *Forest) AppendBinary(buf []byte) []byte {
	if f.width == 8 {
		buf = append(buf, forestMagic[:]...)
	} else {
		buf = append(buf, forestMagicV2[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.width))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.numHash))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.rMax))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.ids)))
	for i, id := range f.ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
		buf = f.st.appendEntryLE(buf, i)
	}
	return buf
}

// DecodeForest decodes a forest from the front of buf, rebuilds its trees,
// and returns the remaining bytes. Header fields are validated against the
// actual buffer length in 64-bit arithmetic before any allocation, so a
// hostile header cannot trigger integer overflow or an over-allocation:
// with n >= 1 every allocation is bounded by a multiple of len(buf), and an
// empty forest allocates nothing regardless of its declared numHash.
func DecodeForest(buf []byte) (*Forest, []byte, error) {
	if len(buf) < 4 {
		return nil, buf, ErrCorrupt
	}
	width := 8
	switch [4]byte(buf[:4]) {
	case forestMagic:
		buf = buf[4:]
	case forestMagicV2:
		if len(buf) < 8 {
			return nil, buf, ErrCorrupt
		}
		width = int(binary.LittleEndian.Uint32(buf[4:]))
		buf = buf[8:]
		if width != 1 && width != 2 && width != 4 && width != 8 {
			return nil, buf, ErrCorrupt
		}
	default:
		return nil, buf, ErrCorrupt
	}
	if len(buf) < 12 {
		return nil, buf, ErrCorrupt
	}
	numHash := int(binary.LittleEndian.Uint32(buf))
	rMax := int(binary.LittleEndian.Uint32(buf[4:]))
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	buf = buf[12:]
	if numHash <= 0 || rMax <= 0 || rMax > numHash || n < 0 {
		return nil, buf, ErrCorrupt
	}
	// Each entry occupies 4 + width*numHash bytes. Both factors come from
	// attacker-controlled uint32 header fields, so the product can exceed
	// 63 bits; dividing the known-good buffer length instead of multiplying
	// keeps the check overflow-free.
	perEntry := 4 + uint64(width)*uint64(uint32(numHash))
	if uint64(n) > uint64(len(buf))/perEntry {
		return nil, buf, ErrCorrupt
	}
	f := NewWidth(numHash, rMax, width)
	f.ids = make([]uint32, n)
	f.st.reserveValues(n * numHash)
	for i := 0; i < n; i++ {
		f.ids[i] = binary.LittleEndian.Uint32(buf)
		buf = f.st.decodeAppendSig(buf[4:])
	}
	f.IndexParallel(runtime.GOMAXPROCS(0))
	return f, buf, nil
}
