// Package lshforest implements a dynamic MinHash LSH index in the style of
// LSH Forest (Bawa, Condie, Ganesan, WWW 2005).
//
// A classic MinHash LSH has a fixed banding configuration (b bands of r hash
// values each) and therefore a fixed Jaccard threshold. LSH Ensemble needs a
// per-query threshold, so the index must support choosing (b, r) at query
// time. Following the LSH Forest idea, the signature is divided into bMax
// fixed "trees", each covering rMax consecutive hash values; a query probes
// the first b trees and, within each tree, matches only the first r of its
// rMax values. Prefix trees are realized as arrays sorted lexicographically
// by the tree's hash-value vector, so a variable-depth prefix probe is a
// binary-searched range scan. This supports any (b, r) with b ≤ bMax and
// r ≤ rMax, hence b·r ≤ bMax·rMax ≤ m as required by the paper's tuning
// constraint (Eq. 25).
//
// Storage layout: all signatures live in one contiguous []uint64 backing
// store with stride numHash, and every tree additionally keeps a flat column
// of its first hash value in sorted order. Probes binary-search that
// contiguous column (no pointer chasing through per-entry slice headers) and
// only fall back to the backing store to resolve prefixes deeper than one
// value. Trees are built with an LSD radix sort on the leading hash value —
// hash values are near-uniform in [0, 2^61), so ties needing the deeper
// comparison sort are rare.
package lshforest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"lshensemble/internal/par"
)

// Forest is a dynamic-(b,r) MinHash LSH index over integer domain ids.
// Ids are assigned by the caller; signatures must all have the same length,
// at least BMax()*RMax(). Add entries, call Index once, then Query.
type Forest struct {
	numHash int
	rMax    int
	bMax    int

	store []uint64 // contiguous signatures, stride numHash; entry i at [i*numHash, (i+1)*numHash)
	ids   []uint32 // caller-assigned id per inserted entry

	trees    [][]uint32 // per tree: slot indices sorted by that tree's hash vector
	treeKeys [][]uint64 // per tree: leading hash value of each sorted slot (contiguous search column)

	indexed bool
	view    bool // FromView forest over external (possibly mapped) storage: mutation panics
}

// New constructs a forest for signatures of numHash values with trees of
// depth rMax. The number of trees is numHash/rMax (integer division); rMax
// must be in [1, numHash].
func New(numHash, rMax int) *Forest {
	if numHash <= 0 {
		panic("lshforest: numHash must be positive")
	}
	if rMax <= 0 || rMax > numHash {
		panic(fmt.Sprintf("lshforest: rMax %d out of range [1, %d]", rMax, numHash))
	}
	return &Forest{
		numHash: numHash,
		rMax:    rMax,
		bMax:    numHash / rMax,
	}
}

// NumHash returns the signature length the forest expects.
func (f *Forest) NumHash() int { return f.numHash }

// RMax returns the tree depth (maximum r usable at query time).
func (f *Forest) RMax() int { return f.rMax }

// BMax returns the number of trees (maximum b usable at query time).
func (f *Forest) BMax() int { return f.bMax }

// Len returns the number of entries added.
func (f *Forest) Len() int { return len(f.ids) }

// Indexed reports whether Index has been called since the last Add.
func (f *Forest) Indexed() bool { return f.indexed }

// Reserve grows the forest's backing arrays so they can hold at least n
// total entries without reallocating. Builds of known size should call it
// once up front: the contiguous signature store is then allocated in a
// single step instead of grown by repeated append (which copies the whole
// store every doubling). Reserve never shrinks and is a no-op when capacity
// already suffices.
func (f *Forest) Reserve(n int) {
	if f.view {
		panic("lshforest: Reserve on a read-only view")
	}
	if n <= 0 {
		return
	}
	if cap(f.ids) < n {
		ids := make([]uint32, len(f.ids), n)
		copy(ids, f.ids)
		f.ids = ids
	}
	if want := n * f.numHash; cap(f.store) < want {
		store := make([]uint64, len(f.store), want)
		copy(store, f.store)
		f.store = store
	}
}

// Add inserts a (id, signature) pair. The signature is copied into the
// forest's contiguous backing store; the caller keeps ownership of sig. Add
// invalidates the index; call Index before querying again.
func (f *Forest) Add(id uint32, sig []uint64) {
	if f.view {
		panic("lshforest: Add on a read-only view")
	}
	if len(sig) < f.bMax*f.rMax {
		panic(fmt.Sprintf("lshforest: signature length %d < required %d", len(sig), f.bMax*f.rMax))
	}
	n := f.numHash
	if len(sig) > n {
		sig = sig[:n]
	}
	f.store = append(f.store, sig...)
	// Signatures shorter than numHash (allowed when bMax*rMax < numHash)
	// are zero-padded so every entry occupies exactly one stride.
	for pad := n - len(sig); pad > 0; pad-- {
		f.store = append(f.store, 0)
	}
	f.ids = append(f.ids, id)
	f.indexed = false
}

// sigAt returns the stored signature of the entry in the given slot as a
// view into the backing store.
func (f *Forest) sigAt(slot int) []uint64 {
	base := slot * f.numHash
	return f.store[base : base+f.numHash : base+f.numHash]
}

// SortScratch is the per-worker working memory of a tree rebuild: the radix
// sort ping-pongs between the order/keys arrays and these temporaries. One
// scratch serves any number of sequential RebuildTree calls (it grows to the
// largest forest it has seen); distinct concurrent workers must each own
// their own.
type SortScratch struct {
	tmpOrder []uint32
	keys     []uint64
	tmpKeys  []uint64
}

func (s *SortScratch) grow(n int) {
	if cap(s.tmpOrder) < n {
		s.tmpOrder = make([]uint32, n)
		s.keys = make([]uint64, n)
		s.tmpKeys = make([]uint64, n)
	}
}

// PrepareTrees readies the forest for per-tree rebuilds and returns the
// number of independent tree jobs to run (one per tree, indices
// [0, BMax())). An empty forest has nothing to sort: it is finalized
// immediately and 0 is returned — skipping the per-tree allocations also
// keeps DecodeForest's cost proportional to its input for empty encodings
// with an enormous declared numHash.
//
// After PrepareTrees, RebuildTree may be called for every job index (from
// any goroutine, each index exactly once), followed by one FinishTrees.
// Index and IndexParallel wrap this sequence.
func (f *Forest) PrepareTrees() int {
	if f.view {
		// Rebuilding would write into the externally owned (possibly mapped
		// read-only) order/column arrays.
		panic("lshforest: PrepareTrees on a read-only view")
	}
	if len(f.ids) == 0 {
		f.indexed = true
		return 0
	}
	if f.trees == nil {
		f.trees = make([][]uint32, f.bMax)
		f.treeKeys = make([][]uint64, f.bMax)
	}
	return f.bMax
}

// RebuildTree sorts tree t from the current backing store using the given
// scratch. Distinct trees touch disjoint forest state, so RebuildTree is
// safe to call concurrently for distinct t (with distinct scratches)
// between PrepareTrees and FinishTrees.
func (f *Forest) RebuildTree(t int, s *SortScratch) {
	n := len(f.ids)
	s.grow(n)
	off := t * f.rMax
	order := f.trees[t]
	if cap(order) < n {
		order = make([]uint32, n)
	}
	order = order[:n]
	for i := range order {
		order[i] = uint32(i)
	}
	f.sortByPrefix(order, s.tmpOrder[:n], s.keys[:n], s.tmpKeys[:n], off, 0)
	// Rebuild the contiguous leading-value column in sorted order (the
	// sort scratch may have been clobbered by tie-break recursion).
	col := f.treeKeys[t]
	if cap(col) < n {
		col = make([]uint64, n)
	}
	col = col[:n]
	for i, s := range order {
		col[i] = f.store[int(s)*f.numHash+off]
	}
	f.trees[t] = order
	f.treeKeys[t] = col
}

// FinishTrees marks the forest indexed after every RebuildTree job has
// completed.
func (f *Forest) FinishTrees() { f.indexed = true }

// Index (re)builds the sorted trees. It is idempotent and must be called
// after the last Add and before the first Query.
func (f *Forest) Index() {
	jobs := f.PrepareTrees()
	if jobs == 0 {
		return
	}
	var s SortScratch
	for t := 0; t < jobs; t++ {
		f.RebuildTree(t, &s)
	}
	f.FinishTrees()
}

// IndexParallel is Index with the per-tree sorts fanned out over up to
// `workers` goroutines (each with its own SortScratch). workers ≤ 1 falls
// back to the serial path. The resulting trees are identical to Index's.
func (f *Forest) IndexParallel(workers int) {
	jobs := f.PrepareTrees()
	if jobs == 0 {
		return
	}
	workers = par.Clamp(workers, jobs)
	scratches := make([]SortScratch, workers)
	par.Drain(jobs, workers, func(w, t int) {
		f.RebuildTree(t, &scratches[w])
	})
	f.FinishTrees()
}

// sortByPrefix sorts order by the hash values store[slot*stride+off+depth ..
// off+rMax-1], least significant last (lexicographic). It radix-sorts on the
// value at the current depth and recurses into runs of equal values for the
// deeper tie-break; tiny ranges use insertion sort on the full remaining
// prefix instead.
func (f *Forest) sortByPrefix(order, tmpOrder []uint32, keys, tmpKeys []uint64, off, depth int) {
	if depth >= f.rMax || len(order) < 2 {
		return
	}
	if len(order) <= 12 {
		f.insertionSortSuffix(order, off+depth, f.rMax-depth)
		return
	}
	stride := f.numHash
	col := off + depth
	for i, s := range order {
		keys[i] = f.store[int(s)*stride+col]
	}
	radixSortPairs(keys, order, tmpKeys, tmpOrder)
	// Recurse into runs of equal keys. Reading keys[start] before any
	// recursion clobbers that subrange keeps the run detection sound: a
	// recursive call only rewrites keys strictly before the next run start.
	start := 0
	for i := 1; i <= len(order); i++ {
		if i < len(order) && keys[i] == keys[start] {
			continue
		}
		if i-start > 1 {
			f.sortByPrefix(order[start:i], tmpOrder[start:i], keys[start:i], tmpKeys[start:i], off, depth+1)
		}
		start = i
	}
}

// insertionSortSuffix sorts order lexicographically by the r hash values at
// offset off of each slot's stored signature.
func (f *Forest) insertionSortSuffix(order []uint32, off, r int) {
	stride := f.numHash
	for i := 1; i < len(order); i++ {
		s := order[i]
		base := int(s)*stride + off
		j := i
		for j > 0 {
			other := int(order[j-1])*stride + off
			if !lexLess(f.store[base:base+r], f.store[other:other+r]) {
				break
			}
			order[j] = order[j-1]
			j--
		}
		order[j] = s
	}
}

// lexLess reports whether a < b lexicographically; the slices have equal
// length.
func lexLess(a, b []uint64) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// radixSortPairs sorts (keys, vals) pairs by key with an LSD byte-wise radix
// sort, skipping passes over bytes that are constant across all keys (hash
// values occupy 61 bits, and small test universes collapse to one or two
// live bytes). The sorted result is guaranteed to land back in keys/vals;
// tmpKeys/tmpVals are scratch of the same length.
func radixSortPairs(keys []uint64, vals []uint32, tmpKeys []uint64, tmpVals []uint32) {
	orAll, andAll := uint64(0), ^uint64(0)
	for _, k := range keys {
		orAll |= k
		andAll &= k
	}
	diff := orAll ^ andAll // bytes where any two keys disagree
	if diff == 0 {
		return
	}
	origKeys, origVals := keys, vals
	var count [256]int
	flipped := false
	for shift := 0; shift < 64; shift += 8 {
		if (diff>>shift)&0xff == 0 {
			continue
		}
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[(k>>shift)&0xff]++
		}
		sum := 0
		for i := 0; i < 256; i++ {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i, k := range keys {
			b := (k >> shift) & 0xff
			j := count[b]
			count[b]++
			tmpKeys[j] = k
			tmpVals[j] = vals[i]
		}
		keys, tmpKeys = tmpKeys, keys
		vals, tmpVals = tmpVals, vals
		flipped = !flipped
	}
	if flipped {
		copy(origKeys, keys)
		copy(origVals, vals)
	}
}

// compareSuffix compares the stored hash values of slot at [base, base+r)
// against q. Returns -1, 0, or 1.
func (f *Forest) compareSuffix(base, r int, q []uint64) int {
	s := f.store[base : base+r]
	for k := 0; k < r; k++ {
		if s[k] != q[k] {
			if s[k] < q[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Query probes the first b trees at depth r and invokes fn once per
// *occurrence* of a matching entry (the same id may be reported from
// multiple trees; use QueryDedup for set semantics). fn returning false
// stops the scan early. It panics if the forest is not indexed or if (b, r)
// is out of range.
func (f *Forest) Query(sig []uint64, b, r int, fn func(id uint32) bool) {
	if !f.indexed {
		panic("lshforest: Query before Index")
	}
	if b <= 0 || b > f.bMax {
		panic(fmt.Sprintf("lshforest: b %d out of range [1, %d]", b, f.bMax))
	}
	if r <= 0 || r > f.rMax {
		panic(fmt.Sprintf("lshforest: r %d out of range [1, %d]", r, f.rMax))
	}
	n := len(f.ids)
	if n == 0 {
		return // indexed empty forest has no trees to probe
	}
	stride := f.numHash
	for t := 0; t < b; t++ {
		off := t * f.rMax
		q0 := sig[off]
		col := f.treeKeys[t]
		order := f.trees[t]
		// Equal range of the leading value on the contiguous key column.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if col[mid] < q0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		left := lo
		hi = n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if col[mid] <= q0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		right := lo
		if left == right {
			continue
		}
		if r == 1 {
			for i := left; i < right; i++ {
				if !fn(f.ids[order[i]]) {
					return
				}
			}
			continue
		}
		// Refine by the remaining r-1 prefix values within the equal-q0 run.
		qs := sig[off+1 : off+r]
		lo, hi = left, right
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if f.compareSuffix(int(order[mid])*stride+off+1, r-1, qs) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for i := lo; i < right; i++ {
			if f.compareSuffix(int(order[i])*stride+off+1, r-1, qs) != 0 {
				break
			}
			if !fn(f.ids[order[i]]) {
				return
			}
		}
	}
}

// TreeLeadingColumn returns tree t's sorted column of leading hash values
// (the value at offset t*RMax of every stored signature) as a view into the
// forest's index — callers must not mutate it. Any probe of tree t at any
// depth r ≥ 1 matches an entry only if the query's leading value occurs in
// this column, which is what makes the column the cheap export segment-level
// planners (internal/live) build their collision Bloom filters and bounds
// from. It returns nil for an empty forest and panics before Index.
func (f *Forest) TreeLeadingColumn(t int) []uint64 {
	if !f.indexed {
		panic("lshforest: TreeLeadingColumn before Index")
	}
	if t < 0 || t >= f.bMax {
		panic(fmt.Sprintf("lshforest: tree %d out of range [0, %d)", t, f.bMax))
	}
	if len(f.ids) == 0 {
		return nil
	}
	col := f.treeKeys[t]
	return col[:len(col):len(col)]
}

// TreeLeadingBounds returns the smallest and largest leading hash value of
// tree t (the first and last element of the sorted column). ok is false for
// an empty forest. A query value outside [min, max] cannot collide in the
// tree; with near-uniform hash values the interval is usually wide, so the
// bounds serve diagnostics and fast-path checks rather than primary pruning.
func (f *Forest) TreeLeadingBounds(t int) (min, max uint64, ok bool) {
	col := f.TreeLeadingColumn(t)
	if len(col) == 0 {
		return 0, 0, false
	}
	return col[0], col[len(col)-1], true
}

// Each invokes fn for every (id, signature) pair stored in the forest, in
// insertion order. The signature is a view into the forest's backing store
// and must not be mutated.
func (f *Forest) Each(fn func(id uint32, sig []uint64)) {
	for i, id := range f.ids {
		fn(id, f.sigAt(i))
	}
}

// QueryDedup probes like Query but reports each matching id exactly once.
// The seen scratch map may be nil; passing a reused map avoids allocation.
func (f *Forest) QueryDedup(sig []uint64, b, r int, seen map[uint32]struct{}, fn func(id uint32) bool) {
	if seen == nil {
		seen = make(map[uint32]struct{})
	}
	f.Query(sig, b, r, func(id uint32) bool {
		if _, ok := seen[id]; ok {
			return true
		}
		seen[id] = struct{}{}
		return fn(id)
	})
}

// binary serialization format:
//   magic "LSHF" | numHash | rMax | n | per entry: id, sig[numHash]
// Trees are rebuilt on load (sorting is cheaper than storing permutations).

var forestMagic = [4]byte{'L', 'S', 'H', 'F'}

// ErrCorrupt reports a malformed forest encoding.
var ErrCorrupt = errors.New("lshforest: corrupt encoding")

// AppendBinary appends the forest's binary encoding to buf.
func (f *Forest) AppendBinary(buf []byte) []byte {
	buf = append(buf, forestMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.numHash))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.rMax))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.ids)))
	for i, id := range f.ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
		for _, v := range f.sigAt(i) {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf
}

// DecodeForest decodes a forest from the front of buf, rebuilds its trees,
// and returns the remaining bytes. Header fields are validated against the
// actual buffer length in 64-bit arithmetic before any allocation, so a
// hostile header cannot trigger integer overflow or an over-allocation:
// with n >= 1 every allocation is bounded by a multiple of len(buf), and an
// empty forest allocates nothing regardless of its declared numHash.
func DecodeForest(buf []byte) (*Forest, []byte, error) {
	if len(buf) < 16 {
		return nil, buf, ErrCorrupt
	}
	if [4]byte(buf[:4]) != forestMagic {
		return nil, buf, ErrCorrupt
	}
	numHash := int(binary.LittleEndian.Uint32(buf[4:]))
	rMax := int(binary.LittleEndian.Uint32(buf[8:]))
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	buf = buf[16:]
	if numHash <= 0 || rMax <= 0 || rMax > numHash || n < 0 {
		return nil, buf, ErrCorrupt
	}
	// Each entry occupies 4 + 8*numHash bytes. Both factors come from
	// attacker-controlled uint32 header fields, so the product can exceed
	// 63 bits; dividing the known-good buffer length instead of multiplying
	// keeps the check overflow-free.
	perEntry := 4 + 8*uint64(uint32(numHash))
	if uint64(n) > uint64(len(buf))/perEntry {
		return nil, buf, ErrCorrupt
	}
	f := New(numHash, rMax)
	f.ids = make([]uint32, n)
	f.store = make([]uint64, n*numHash)
	for i := 0; i < n; i++ {
		f.ids[i] = binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		sig := f.store[i*numHash : (i+1)*numHash]
		for k := range sig {
			sig[k] = binary.LittleEndian.Uint64(buf)
			buf = buf[8:]
		}
	}
	f.IndexParallel(runtime.GOMAXPROCS(0))
	return f, buf, nil
}
