// Package lshforest implements a dynamic MinHash LSH index in the style of
// LSH Forest (Bawa, Condie, Ganesan, WWW 2005).
//
// A classic MinHash LSH has a fixed banding configuration (b bands of r hash
// values each) and therefore a fixed Jaccard threshold. LSH Ensemble needs a
// per-query threshold, so the index must support choosing (b, r) at query
// time. Following the LSH Forest idea, the signature is divided into bMax
// fixed "trees", each covering rMax consecutive hash values; a query probes
// the first b trees and, within each tree, matches only the first r of its
// rMax values. Prefix trees are realized as arrays sorted lexicographically
// by the tree's hash-value vector, so a variable-depth prefix probe is a
// binary-searched range scan. This supports any (b, r) with b ≤ bMax and
// r ≤ rMax, hence b·r ≤ bMax·rMax ≤ m as required by the paper's tuning
// constraint (Eq. 25).
package lshforest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Forest is a dynamic-(b,r) MinHash LSH index over integer domain ids.
// Ids are assigned by the caller; signatures must all have the same length,
// at least BMax()*RMax(). Add entries, call Index once, then Query.
type Forest struct {
	numHash int
	rMax    int
	bMax    int

	sigs  [][]uint64 // signature per inserted entry, indexed by slot
	ids   []uint32   // caller-assigned id per inserted entry
	trees [][]uint32 // per tree: slot indices sorted by that tree's hash vector

	indexed bool
}

// New constructs a forest for signatures of numHash values with trees of
// depth rMax. The number of trees is numHash/rMax (integer division); rMax
// must be in [1, numHash].
func New(numHash, rMax int) *Forest {
	if numHash <= 0 {
		panic("lshforest: numHash must be positive")
	}
	if rMax <= 0 || rMax > numHash {
		panic(fmt.Sprintf("lshforest: rMax %d out of range [1, %d]", rMax, numHash))
	}
	return &Forest{
		numHash: numHash,
		rMax:    rMax,
		bMax:    numHash / rMax,
	}
}

// NumHash returns the signature length the forest expects.
func (f *Forest) NumHash() int { return f.numHash }

// RMax returns the tree depth (maximum r usable at query time).
func (f *Forest) RMax() int { return f.rMax }

// BMax returns the number of trees (maximum b usable at query time).
func (f *Forest) BMax() int { return f.bMax }

// Len returns the number of entries added.
func (f *Forest) Len() int { return len(f.ids) }

// Indexed reports whether Index has been called since the last Add.
func (f *Forest) Indexed() bool { return f.indexed }

// Add inserts a (id, signature) pair. The signature is retained by
// reference; callers must not mutate it afterwards. Add invalidates the
// index; call Index before querying again.
func (f *Forest) Add(id uint32, sig []uint64) {
	if len(sig) < f.bMax*f.rMax {
		panic(fmt.Sprintf("lshforest: signature length %d < required %d", len(sig), f.bMax*f.rMax))
	}
	f.sigs = append(f.sigs, sig)
	f.ids = append(f.ids, id)
	f.indexed = false
}

// Index (re)builds the sorted trees. It is idempotent and must be called
// after the last Add and before the first Query.
func (f *Forest) Index() {
	n := len(f.sigs)
	if f.trees == nil {
		f.trees = make([][]uint32, f.bMax)
	}
	for t := 0; t < f.bMax; t++ {
		off := t * f.rMax
		order := make([]uint32, n)
		for i := range order {
			order[i] = uint32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			sa := f.sigs[order[a]][off : off+f.rMax]
			sb := f.sigs[order[b]][off : off+f.rMax]
			for k := 0; k < f.rMax; k++ {
				if sa[k] != sb[k] {
					return sa[k] < sb[k]
				}
			}
			return false
		})
		f.trees[t] = order
	}
	f.indexed = true
}

// compareAt compares entry slot's tree-t hash vector prefix of length r
// against the query prefix. Returns -1, 0, or 1.
func (f *Forest) compareAt(slot uint32, off, r int, q []uint64) int {
	s := f.sigs[slot][off : off+r]
	for k := 0; k < r; k++ {
		if s[k] != q[k] {
			if s[k] < q[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Query probes the first b trees at depth r and invokes fn once per
// *occurrence* of a matching entry (the same id may be reported from
// multiple trees; use QueryDedup for set semantics). fn returning false
// stops the scan early. It panics if the forest is not indexed or if (b, r)
// is out of range.
func (f *Forest) Query(sig []uint64, b, r int, fn func(id uint32) bool) {
	if !f.indexed {
		panic("lshforest: Query before Index")
	}
	if b <= 0 || b > f.bMax {
		panic(fmt.Sprintf("lshforest: b %d out of range [1, %d]", b, f.bMax))
	}
	if r <= 0 || r > f.rMax {
		panic(fmt.Sprintf("lshforest: r %d out of range [1, %d]", r, f.rMax))
	}
	for t := 0; t < b; t++ {
		off := t * f.rMax
		q := sig[off : off+r]
		order := f.trees[t]
		// Lower bound: first entry with prefix >= q.
		lo := sort.Search(len(order), func(i int) bool {
			return f.compareAt(order[i], off, r, q) >= 0
		})
		for i := lo; i < len(order); i++ {
			if f.compareAt(order[i], off, r, q) != 0 {
				break
			}
			if !fn(f.ids[order[i]]) {
				return
			}
		}
	}
}

// Each invokes fn for every (id, signature) pair stored in the forest, in
// insertion order. The signature must not be mutated.
func (f *Forest) Each(fn func(id uint32, sig []uint64)) {
	for i, id := range f.ids {
		fn(id, f.sigs[i])
	}
}

// QueryDedup probes like Query but reports each matching id exactly once.
// The seen scratch map may be nil; passing a reused map avoids allocation.
func (f *Forest) QueryDedup(sig []uint64, b, r int, seen map[uint32]struct{}, fn func(id uint32) bool) {
	if seen == nil {
		seen = make(map[uint32]struct{})
	}
	f.Query(sig, b, r, func(id uint32) bool {
		if _, ok := seen[id]; ok {
			return true
		}
		seen[id] = struct{}{}
		return fn(id)
	})
}

// binary serialization format:
//   magic "LSHF" | numHash | rMax | n | per entry: id, sig[numHash]
// Trees are rebuilt on load (sorting is cheaper than storing permutations).

var forestMagic = [4]byte{'L', 'S', 'H', 'F'}

// ErrCorrupt reports a malformed forest encoding.
var ErrCorrupt = errors.New("lshforest: corrupt encoding")

// AppendBinary appends the forest's binary encoding to buf.
func (f *Forest) AppendBinary(buf []byte) []byte {
	buf = append(buf, forestMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.numHash))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.rMax))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.ids)))
	for i, id := range f.ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
		for _, v := range f.sigs[i][:f.numHash] {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf
}

// DecodeForest decodes a forest from the front of buf, rebuilds its trees,
// and returns the remaining bytes.
func DecodeForest(buf []byte) (*Forest, []byte, error) {
	if len(buf) < 16 {
		return nil, buf, ErrCorrupt
	}
	if [4]byte(buf[:4]) != forestMagic {
		return nil, buf, ErrCorrupt
	}
	numHash := int(binary.LittleEndian.Uint32(buf[4:]))
	rMax := int(binary.LittleEndian.Uint32(buf[8:]))
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	buf = buf[16:]
	if numHash <= 0 || rMax <= 0 || rMax > numHash || n < 0 {
		return nil, buf, ErrCorrupt
	}
	need := n * (4 + 8*numHash)
	if len(buf) < need {
		return nil, buf, ErrCorrupt
	}
	f := New(numHash, rMax)
	for i := 0; i < n; i++ {
		id := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		sig := make([]uint64, numHash)
		for k := range sig {
			sig[k] = binary.LittleEndian.Uint64(buf)
			buf = buf[8:]
		}
		f.Add(id, sig)
	}
	f.Index()
	return f, buf, nil
}
