package lshforest

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"lshensemble/internal/minhash"
	"lshensemble/internal/xrand"
)

// bruteCandidates computes the set of ids whose signature agrees with the
// query on at least one of the first b bands of width r — the definitional
// LSH candidate set the forest must reproduce exactly.
func bruteCandidates(sigs [][]uint64, ids []uint32, q []uint64, b, r, rMax int) map[uint32]bool {
	out := map[uint32]bool{}
	for i, s := range sigs {
		for t := 0; t < b; t++ {
			off := t * rMax
			match := true
			for k := 0; k < r; k++ {
				if s[off+k] != q[off+k] {
					match = false
					break
				}
			}
			if match {
				out[ids[i]] = true
				break
			}
		}
	}
	return out
}

func randSigs(rng *xrand.RNG, n, m int, valueRange uint64) ([][]uint64, []uint32) {
	sigs := make([][]uint64, n)
	ids := make([]uint32, n)
	for i := range sigs {
		s := make([]uint64, m)
		for k := range s {
			s[k] = rng.Uint64() % valueRange // small range → many collisions
		}
		sigs[i] = s
		ids[i] = uint32(i * 3) // non-contiguous ids
	}
	return sigs, ids
}

func TestForestMatchesBruteForce(t *testing.T) {
	rng := xrand.New(42)
	const m, rMax = 16, 4
	sigs, ids := randSigs(rng, 200, m, 4)
	f := New(m, rMax)
	for i := range sigs {
		f.Add(ids[i], sigs[i])
	}
	f.Index()
	for trial := 0; trial < 50; trial++ {
		q := make([]uint64, m)
		for k := range q {
			q[k] = rng.Uint64() % 4
		}
		for b := 1; b <= f.BMax(); b++ {
			for r := 1; r <= rMax; r++ {
				want := bruteCandidates(sigs, ids, q, b, r, rMax)
				got := map[uint32]bool{}
				f.QueryDedup(q, b, r, nil, func(id uint32) bool {
					got[id] = true
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("b=%d r=%d: got %d candidates, want %d", b, r, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("b=%d r=%d: missing id %d", b, r, id)
					}
				}
			}
		}
	}
}

func TestForestMatchesBruteForceProperty(t *testing.T) {
	// Property-based variant with random shapes.
	f := func(seed uint64, bRaw, rRaw uint8) bool {
		rng := xrand.New(seed)
		const m, rMax = 8, 2
		n := 20 + rng.Intn(80)
		sigs, ids := randSigs(rng, n, m, 3)
		fr := New(m, rMax)
		for i := range sigs {
			fr.Add(ids[i], sigs[i])
		}
		fr.Index()
		b := 1 + int(bRaw)%fr.BMax()
		r := 1 + int(rRaw)%rMax
		q := sigs[rng.Intn(n)] // query with an indexed signature
		want := bruteCandidates(sigs, ids, q, b, r, rMax)
		got := map[uint32]bool{}
		fr.QueryDedup(q, b, r, nil, func(id uint32) bool {
			got[id] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfQueryAlwaysFound(t *testing.T) {
	// Any indexed signature queried with any (b, r) must find itself.
	rng := xrand.New(7)
	const m, rMax = 32, 8
	sigs, ids := randSigs(rng, 100, m, 1<<40)
	f := New(m, rMax)
	for i := range sigs {
		f.Add(ids[i], sigs[i])
	}
	f.Index()
	for i := range sigs {
		for _, b := range []int{1, 2, 4} {
			for _, r := range []int{1, 4, 8} {
				found := false
				f.Query(sigs[i], b, r, func(id uint32) bool {
					if id == ids[i] {
						found = true
						return false
					}
					return true
				})
				if !found {
					t.Fatalf("entry %d not found with b=%d r=%d", i, b, r)
				}
			}
		}
	}
}

func TestQueryEarlyStop(t *testing.T) {
	f := New(4, 2)
	sig := []uint64{1, 2, 3, 4}
	for i := 0; i < 10; i++ {
		f.Add(uint32(i), sig)
	}
	f.Index()
	calls := 0
	f.Query(sig, 2, 2, func(id uint32) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop: %d calls, want 3", calls)
	}
}

func TestQueryDedupReportsOnce(t *testing.T) {
	f := New(8, 2) // 4 trees
	sig := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	f.Add(99, sig)
	f.Index()
	count := 0
	f.QueryDedup(sig, 4, 2, nil, func(id uint32) bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("dedup reported %d times, want 1", count)
	}
	// Without dedup the id is found in all 4 trees.
	count = 0
	f.Query(sig, 4, 2, func(id uint32) bool {
		count++
		return true
	})
	if count != 4 {
		t.Fatalf("raw query reported %d times, want 4", count)
	}
}

func TestEmptyForest(t *testing.T) {
	f := New(8, 2)
	f.Index()
	f.Query(make([]uint64, 8), 1, 1, func(id uint32) bool {
		t.Fatal("empty forest produced a candidate")
		return false
	})
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"zero numHash": func() { New(0, 1) },
		"rMax zero":    func() { New(8, 0) },
		"rMax too big": func() { New(8, 9) },
		"short sig":    func() { New(8, 2).Add(0, make([]uint64, 7)) },
		"query unindexed": func() {
			f := New(8, 2)
			f.Add(0, make([]uint64, 8))
			f.Query(make([]uint64, 8), 1, 1, nil)
		},
		"b out of range": func() {
			f := New(8, 2)
			f.Index()
			f.Query(make([]uint64, 8), 5, 1, func(uint32) bool { return true })
		},
		"r out of range": func() {
			f := New(8, 2)
			f.Index()
			f.Query(make([]uint64, 8), 1, 3, func(uint32) bool { return true })
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAddAfterIndexRequiresReindex(t *testing.T) {
	f := New(4, 2)
	f.Add(1, []uint64{1, 1, 1, 1})
	f.Index()
	if !f.Indexed() {
		t.Fatal("should be indexed")
	}
	f.Add(2, []uint64{1, 1, 1, 1})
	if f.Indexed() {
		t.Fatal("Add should invalidate the index")
	}
	f.Index()
	got := map[uint32]bool{}
	f.QueryDedup([]uint64{1, 1, 1, 1}, 2, 2, nil, func(id uint32) bool {
		got[id] = true
		return true
	})
	if !got[1] || !got[2] {
		t.Fatalf("after reindex both entries must be found, got %v", got)
	}
}

func TestRealSignatures(t *testing.T) {
	// End-to-end with real MinHash signatures: similar sets should collide
	// at permissive (b, r); dissimilar ones should not at strict settings.
	h := minhash.NewHasher(64, 11)
	f := New(64, 4) // 16 trees
	base := make([]string, 50)
	for i := range base {
		base[i] = fmt.Sprintf("v%d", i)
	}
	similar := append(append([]string{}, base[:45]...), "x1", "x2", "x3", "x4", "x5")
	other := make([]string, 50)
	for i := range other {
		other[i] = fmt.Sprintf("w%d", i)
	}
	f.Add(0, h.SketchStrings(base))
	f.Add(1, h.SketchStrings(similar))
	f.Add(2, h.SketchStrings(other))
	f.Index()

	q := h.SketchStrings(base)
	got := map[uint32]bool{}
	f.QueryDedup(q, 16, 1, nil, func(id uint32) bool { got[id] = true; return true })
	if !got[0] || !got[1] {
		t.Fatalf("similar sets not retrieved at permissive setting: %v", got)
	}
	got = map[uint32]bool{}
	f.QueryDedup(q, 1, 4, nil, func(id uint32) bool { got[id] = true; return true })
	if got[2] {
		t.Fatal("dissimilar set retrieved at strict setting")
	}
}

func TestForestRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	const m, rMax = 16, 4
	sigs, ids := randSigs(rng, 50, m, 8)
	f := New(m, rMax)
	for i := range sigs {
		f.Add(ids[i], sigs[i])
	}
	f.Index()
	buf := f.AppendBinary(nil)
	g, rest, err := DecodeForest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if g.Len() != f.Len() || g.NumHash() != f.NumHash() || g.RMax() != f.RMax() {
		t.Fatal("shape mismatch after round trip")
	}
	// Query equivalence on a few probes.
	for trial := 0; trial < 10; trial++ {
		q := sigs[rng.Intn(len(sigs))]
		want, got := []uint32{}, []uint32{}
		f.QueryDedup(q, 4, 2, nil, func(id uint32) bool { want = append(want, id); return true })
		g.QueryDedup(q, 4, 2, nil, func(id uint32) bool { got = append(got, id); return true })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(want) != len(got) {
			t.Fatalf("round-trip query mismatch: %v vs %v", want, got)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("round-trip query mismatch: %v vs %v", want, got)
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeForest([]byte("bogus")); err == nil {
		t.Fatal("garbage should fail")
	}
	f := New(4, 2)
	f.Add(1, []uint64{1, 2, 3, 4})
	buf := f.AppendBinary(nil)
	if _, _, err := DecodeForest(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated buffer should fail")
	}
	bad := append([]byte{}, buf...)
	bad[0] = 'X'
	if _, _, err := DecodeForest(bad); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func BenchmarkForestQuery(b *testing.B) {
	rng := xrand.New(1)
	const m, rMax = 256, 8
	f := New(m, rMax)
	sigs, ids := randSigs(rng, 10000, m, 1<<20)
	for i := range sigs {
		f.Add(ids[i], sigs[i])
	}
	f.Index()
	q := sigs[0]
	seen := make(map[uint32]struct{}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(seen)
		f.QueryDedup(q, 32, 4, seen, func(id uint32) bool { return true })
	}
}

func BenchmarkForestIndex(b *testing.B) {
	rng := xrand.New(1)
	const m, rMax = 256, 8
	sigs, ids := randSigs(rng, 5000, m, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := New(m, rMax)
		for j := range sigs {
			f.Add(ids[j], sigs[j])
		}
		f.Index()
	}
}

// BenchmarkForestIndexParallel measures the fanned-out tree rebuild with
// Reserve pre-sizing — the construction path core.Build drives. Run with
// -cpu 1,4,8 to see worker scaling.
func BenchmarkForestIndexParallel(b *testing.B) {
	rng := xrand.New(1)
	const m, rMax = 256, 8
	sigs, ids := randSigs(rng, 5000, m, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := New(m, rMax)
		f.Reserve(len(sigs))
		for j := range sigs {
			f.Add(ids[j], sigs[j])
		}
		f.IndexParallel(runtime.GOMAXPROCS(0))
	}
}

func TestTreeLeadingColumnAndBounds(t *testing.T) {
	f := New(8, 2) // 4 trees of depth 2
	sigs := [][]uint64{
		{5, 1, 9, 2, 3, 4, 7, 8},
		{3, 1, 9, 2, 1, 4, 7, 8},
		{8, 1, 2, 2, 3, 4, 6, 8},
	}
	for i, s := range sigs {
		f.Add(uint32(i), s)
	}
	f.Index()
	for tr := 0; tr < f.BMax(); tr++ {
		col := f.TreeLeadingColumn(tr)
		if len(col) != len(sigs) {
			t.Fatalf("tree %d column length %d, want %d", tr, len(col), len(sigs))
		}
		for i := 1; i < len(col); i++ {
			if col[i-1] > col[i] {
				t.Fatalf("tree %d column not sorted: %v", tr, col)
			}
		}
		// Every stored leading value must appear in the column.
		for _, s := range sigs {
			want := s[tr*f.RMax()]
			found := false
			for _, v := range col {
				if v == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("tree %d column %v missing leading value %d", tr, col, want)
			}
		}
		lo, hi, ok := f.TreeLeadingBounds(tr)
		if !ok || lo != col[0] || hi != col[len(col)-1] {
			t.Fatalf("tree %d bounds (%d, %d, %v) disagree with column %v", tr, lo, hi, ok, col)
		}
	}
}

func TestTreeLeadingColumnEmptyForest(t *testing.T) {
	f := New(8, 2)
	f.Index()
	if col := f.TreeLeadingColumn(0); col != nil {
		t.Fatalf("empty forest returned column %v", col)
	}
	if _, _, ok := f.TreeLeadingBounds(0); ok {
		t.Fatal("empty forest reported bounds")
	}
}
