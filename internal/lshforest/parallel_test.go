package lshforest

import (
	"testing"

	"lshensemble/internal/xrand"
)

// TestIndexParallelMatchesSerial rebuilds the same forest serially and with
// worker fan-out and requires bit-identical trees: the per-tree jobs are
// deterministic, so parallelism must not change any probe result.
func TestIndexParallelMatchesSerial(t *testing.T) {
	rng := xrand.New(7)
	const m, rMax = 16, 4
	sigs, ids := randSigs(rng, 500, m, 3) // small value range → heavy tie-break recursion
	serial := New(m, rMax)
	parallel := New(m, rMax)
	for i := range sigs {
		serial.Add(ids[i], sigs[i])
		parallel.Add(ids[i], sigs[i])
	}
	serial.Index()
	for _, workers := range []int{2, 3, 8, 64} {
		parallel.indexed = false
		parallel.IndexParallel(workers)
		if !parallel.Indexed() {
			t.Fatalf("workers=%d: forest not indexed", workers)
		}
		for tr := range serial.trees {
			if len(serial.trees[tr]) != len(parallel.trees[tr]) {
				t.Fatalf("workers=%d tree %d: length %d != %d",
					workers, tr, len(parallel.trees[tr]), len(serial.trees[tr]))
			}
			sCol, pCol := serial.TreeLeadingColumn(tr), parallel.TreeLeadingColumn(tr)
			for i := range serial.trees[tr] {
				if serial.trees[tr][i] != parallel.trees[tr][i] {
					t.Fatalf("workers=%d tree %d slot %d: order %d != %d",
						workers, tr, i, parallel.trees[tr][i], serial.trees[tr][i])
				}
				if sCol[i] != pCol[i] {
					t.Fatalf("workers=%d tree %d slot %d: key mismatch", workers, tr, i)
				}
			}
		}
	}
}

// TestIndexParallelEmpty exercises the empty-forest fast path under both
// entry points.
func TestIndexParallelEmpty(t *testing.T) {
	f := New(8, 2)
	f.IndexParallel(4)
	if !f.Indexed() {
		t.Fatal("empty forest not marked indexed")
	}
	f.Query(make([]uint64, 8), 1, 1, func(id uint32) bool {
		t.Fatalf("empty forest reported id %d", id)
		return false
	})
}

// TestReserve checks that Reserve pre-allocates exactly once and preserves
// existing entries.
func TestReserve(t *testing.T) {
	const m, rMax = 8, 2
	f := New(m, rMax)
	sig := make([]uint64, m)
	for k := range sig {
		sig[k] = uint64(k)
	}
	f.Add(1, sig)
	f.Reserve(100)
	ts := f.st.(*tstore[uint64])
	if cap(f.ids) < 100 || cap(ts.store) < 100*m {
		t.Fatalf("Reserve(100): cap(ids)=%d cap(store)=%d", cap(f.ids), cap(ts.store))
	}
	if f.Len() != 1 {
		t.Fatalf("Reserve dropped entries: len %d", f.Len())
	}
	base := &ts.store[0]
	for i := 2; i <= 100; i++ {
		f.Add(uint32(i), sig)
	}
	if &ts.store[0] != base {
		t.Fatal("adds within reserved capacity reallocated the store")
	}
	f.Index()
	got := 0
	f.Query(sig, 1, rMax, func(id uint32) bool { got++; return true })
	if got != 100 {
		t.Fatalf("got %d matches, want 100", got)
	}
	// Reserving less than the current length must be a no-op.
	f.Reserve(10)
	if f.Len() != 100 {
		t.Fatalf("Reserve(10) after 100 adds: len %d", f.Len())
	}
}
