package lshforest

import (
	"math/rand"
	"testing"
)

// buildRandomForest returns an indexed forest over n random signatures and
// the signatures themselves (by id).
func buildRandomForest(t *testing.T, n, numHash, rMax int, seed int64) (*Forest, [][]uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := New(numHash, rMax)
	f.Reserve(n)
	sigs := make([][]uint64, n)
	for i := 0; i < n; i++ {
		sig := make([]uint64, numHash)
		for j := range sig {
			sig[j] = rng.Uint64() >> 16 // narrow range → real collisions
		}
		sigs[i] = sig
		f.Add(uint32(i), sig)
	}
	f.Index()
	return f, sigs
}

// TestFromViewQueryEquivalence rebuilds a forest from its own exported flat
// arrays and checks that every query answers identically — the exact
// contract segment-file loading relies on.
func TestFromViewQueryEquivalence(t *testing.T) {
	const n, numHash, rMax = 300, 32, 4
	f, sigs := buildRandomForest(t, n, numHash, rMax, 7)

	trees := make([][]uint32, f.BMax())
	cols := make([][]uint64, f.BMax())
	for tr := 0; tr < f.BMax(); tr++ {
		trees[tr] = f.Tree(tr)
		cols[tr] = f.TreeLeadingColumn(tr)
	}
	v, err := FromView(numHash, rMax, f.IDs(), f.StoreRaw(), trees, cols)
	if err != nil {
		t.Fatalf("FromView: %v", err)
	}
	if v.Len() != n || !v.Indexed() {
		t.Fatalf("view Len=%d Indexed=%v", v.Len(), v.Indexed())
	}

	collect := func(fr *Forest, sig []uint64, b, r int) map[uint32]bool {
		got := map[uint32]bool{}
		fr.Query(sig, b, r, func(id uint32) bool {
			got[id] = true
			return true
		})
		return got
	}
	for qi := 0; qi < 50; qi++ {
		sig := sigs[qi*5%n]
		for _, br := range [][2]int{{1, 1}, {4, 2}, {8, 4}, {f.BMax(), rMax}} {
			b, r := br[0], br[1]
			want := collect(f, sig, b, r)
			got := collect(v, sig, b, r)
			if len(got) != len(want) {
				t.Fatalf("query %d (b=%d r=%d): view found %d ids, original %d", qi, b, r, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("query %d (b=%d r=%d): view missed id %d", qi, b, r, id)
				}
			}
		}
	}
}

func TestFromViewEmpty(t *testing.T) {
	v, err := FromView(16, 4, nil, nil, nil, nil)
	if err != nil {
		t.Fatalf("FromView empty: %v", err)
	}
	if v.Len() != 0 || !v.Indexed() {
		t.Fatalf("empty view Len=%d Indexed=%v", v.Len(), v.Indexed())
	}
	v.Query(make([]uint64, 16), 4, 4, func(uint32) bool {
		t.Fatal("empty view yielded a match")
		return false
	})
}

func TestFromViewRejectsShapeMismatch(t *testing.T) {
	ids := []uint32{0, 1}
	if _, err := FromView(8, 4, ids, make([]uint64, 15), nil, nil); err == nil {
		t.Fatal("store length mismatch accepted")
	}
	if _, err := FromView(8, 4, ids, make([]uint64, 16), [][]uint32{{0, 1}}, [][]uint64{{0, 0}}); err == nil {
		t.Fatal("tree count mismatch accepted")
	}
}

func TestViewMutationPanics(t *testing.T) {
	f, _ := buildRandomForest(t, 10, 16, 4, 3)
	trees := make([][]uint32, f.BMax())
	cols := make([][]uint64, f.BMax())
	for tr := 0; tr < f.BMax(); tr++ {
		trees[tr] = f.Tree(tr)
		cols[tr] = f.TreeLeadingColumn(tr)
	}
	v, err := FromView(16, 4, f.IDs(), f.StoreRaw(), trees, cols)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a view did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Add", func() { v.Add(99, make([]uint64, 16)) })
	mustPanic("Reserve", func() { v.Reserve(100) })
	mustPanic("PrepareTrees", func() { v.PrepareTrees() })
}
