package lshforest

import (
	"testing"
)

// FuzzDecodeForest feeds the forest decoder hostile bytes. The decoder's
// contract: never panic, never allocate unboundedly (header fields are
// validated against the real buffer length), and any accepted forest is
// fully usable — its canonical re-encoding decodes to the same shape and is
// a byte-level fixed point.
func FuzzDecodeForest(f *testing.F) {
	for _, width := range []int{8, 2} {
		mask := ^uint64(0)
		if width < 8 {
			mask = (uint64(1) << (8 * width)) - 1
		}
		fr := NewWidth(16, 4, width)
		sig := make([]uint64, 16)
		for id := uint32(0); id < 10; id++ {
			for j := range sig {
				sig[j] = (uint64(id)*0x9e3779b97f4a7c15 + uint64(j)) & mask
			}
			fr.Add(id, sig)
		}
		fr.Index()
		f.Add(fr.AppendBinary(nil))
	}
	f.Add([]byte{})
	f.Add([]byte("LSHF"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := DecodeForest(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew")
		}
		if fr.Len() < 0 {
			t.Fatalf("negative Len")
		}
		// The decoder accepts one non-canonical framing (V2 magic carrying
		// width 8, re-encoded as the legacy magic), so identity with the
		// input is not guaranteed — but the canonical re-encoding must be a
		// fixed point: decode it again and get byte-identical output.
		re := fr.AppendBinary(nil)
		fr2, rest2, err := DecodeForest(re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("canonical re-encode rejected: %v (%d trailing)", err, len(rest2))
		}
		if fr2.Len() != fr.Len() || fr2.NumHash() != fr.NumHash() ||
			fr2.RMax() != fr.RMax() || fr2.Width() != fr.Width() {
			t.Fatalf("round trip changed shape")
		}
		re2 := fr2.AppendBinary(nil)
		if len(re2) != len(re) {
			t.Fatalf("canonical encoding not a fixed point: %d vs %d bytes", len(re2), len(re))
		}
		for i := range re {
			if re[i] != re2[i] {
				t.Fatalf("canonical encoding differs at byte %d", i)
			}
		}
	})
}
