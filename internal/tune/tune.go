// Package tune implements the analytical machinery of LSH Ensemble's
// Section 5: containment ⇄ Jaccard threshold conversion (Eq. 6–7), the
// effective containment threshold (Prop. 1), the candidate probability of a
// dynamically configured MinHash LSH (Eq. 22), its false-positive and
// false-negative areas (Eq. 23–24), and the (b, r) optimizer that minimizes
// FP + FN subject to b·r ≤ m (Eq. 25–26).
//
// The FP/FN integrals have no closed form, so they are evaluated with
// composite Simpson quadrature. Optimization is an exhaustive scan of the
// (b ≤ bMax, r ≤ rMax) grid, memoized on a quantized (x/q, t*) key because
// real query batches revisit the same partition upper bounds and thresholds.
package tune

import (
	"math"
	"sync"
)

// ContainmentToJaccard converts a containment score t = |Q∩X|/|Q| to the
// Jaccard similarity s = |Q∩X|/|Q∪X| given the domain sizes x = |X| and
// q = |Q| (paper Eq. 6, left). Both sizes must be positive.
func ContainmentToJaccard(t, x, q float64) float64 {
	return t / (x/q + 1 - t)
}

// JaccardToContainment converts a Jaccard similarity back to a containment
// score given the domain sizes (paper Eq. 6, right).
func JaccardToContainment(s, x, q float64) float64 {
	return (x/q + 1) * s / (1 + s)
}

// ConservativeJaccardThreshold is the Jaccard similarity threshold
// s* = sˆu,q(t*) obtained by substituting the partition's upper size bound u
// for the (unknown) domain size x (paper Eq. 7). Because sˆx,q(t) decreases
// in x, using u ≥ x guarantees s* ≤ sˆx,q(t*): filtering by s* introduces no
// new false negatives.
func ConservativeJaccardThreshold(tStar, u, q float64) float64 {
	return ContainmentToJaccard(tStar, u, q)
}

// EffectiveContainmentThreshold is t_x, the containment score at which a
// domain of size x passes the conservative Jaccard filter built with upper
// bound u (paper Prop. 1): t_x = (x+q)·t*/(u+q). Domains with true
// containment in [t_x, t*) are the conversion's false positives.
func EffectiveContainmentThreshold(tStar, x, q, u float64) float64 {
	return (x + q) * tStar / (u + q)
}

// CandidateProbability is P(t | x, q, b, r): the probability that a domain
// of size x with containment t against a query of size q becomes an LSH
// candidate under b bands of r hash values (paper Eq. 22).
func CandidateProbability(t, x, q float64, b, r int) float64 {
	if q <= 0 || x <= 0 {
		return 0
	}
	s := ContainmentToJaccard(t, x, q)
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(b))
}

// simpson integrates f over [a, b] with composite Simpson quadrature using
// n (even, >= 2) intervals.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if b <= a {
		return 0
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// quadIntervals is the number of Simpson intervals used for the FP/FN
// integrals. 64 keeps the absolute error far below the grid-search
// resolution while staying cheap.
const quadIntervals = 64

// FalsePositiveArea is FP(x, q, t*, b, r): the integral of the candidate
// probability over containment values below the threshold (paper Eq. 23).
// The upper limit is min(t*, x/q) because containment cannot exceed x/q.
func FalsePositiveArea(x, q, tStar float64, b, r int) float64 {
	upper := tStar
	if ratio := x / q; ratio < upper {
		upper = ratio
	}
	if upper <= 0 {
		return 0
	}
	return simpson(func(t float64) float64 {
		return CandidateProbability(t, x, q, b, r)
	}, 0, upper, quadIntervals)
}

// fnWidthFloor keeps the false-negative integration interval from
// degenerating. At t* = 1 the paper's Eq. 24 interval [t*, 1] has zero
// width, so FN would be identically zero and the optimizer would pick the
// strictest possible (b, r), rejecting even exactly-qualifying domains
// (the point mass at t = 1 carries no area). Widening the interval to at
// least this floor restores recall pressure at extreme thresholds while
// leaving moderate thresholds untouched.
const fnWidthFloor = 0.05

// FalseNegativeArea is FN(x, q, t*, b, r): the integral of the miss
// probability over containment values above the threshold (paper Eq. 24,
// with a minimum interval width — see fnWidthFloor). Zero when x/q < t*
// (no domain in that regime can qualify).
func FalseNegativeArea(x, q, tStar float64, b, r int) float64 {
	ratio := x / q
	if ratio < tStar {
		return 0
	}
	upper := 1.0
	if ratio < 1 {
		upper = ratio
	}
	lower := tStar
	if upper-lower < fnWidthFloor {
		lower = upper - fnWidthFloor
		if lower < 0 {
			lower = 0
		}
	}
	if upper <= lower {
		return 0
	}
	return simpson(func(t float64) float64 {
		return 1 - CandidateProbability(t, x, q, b, r)
	}, lower, upper, quadIntervals)
}

// Params is a concrete banding configuration chosen by the optimizer.
type Params struct {
	B int // number of bands (trees probed)
	R int // hash values per band (prefix depth)
}

// Optimizer selects (b, r) minimizing FN + FP over the grid
// b ∈ [1, bMax], r ∈ [1, rMax] (so b·r ≤ bMax·rMax ≤ m, satisfying the
// paper's constraint). Results are memoized; Optimizer is safe for
// concurrent use.
type Optimizer struct {
	bMax, rMax int

	mu    sync.RWMutex
	cache map[cacheKey]Params
}

type cacheKey struct {
	ratioBucket int32 // log2(x/q) quantized to 1/16ths
	tBucket     int32 // t* quantized to 1/200ths
}

// NewOptimizer constructs an optimizer for the given grid bounds.
func NewOptimizer(bMax, rMax int) *Optimizer {
	if bMax <= 0 || rMax <= 0 {
		panic("tune: optimizer bounds must be positive")
	}
	return &Optimizer{
		bMax:  bMax,
		rMax:  rMax,
		cache: make(map[cacheKey]Params),
	}
}

// BMax returns the band-count bound of the grid.
func (o *Optimizer) BMax() int { return o.bMax }

// RMax returns the band-width bound of the grid.
func (o *Optimizer) RMax() int { return o.rMax }

// CacheLen returns the number of memoized configurations (for tests and the
// ablation bench).
func (o *Optimizer) CacheLen() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.cache)
}

func key(x, q, tStar float64) cacheKey {
	ratio := x / q
	if ratio <= 0 {
		ratio = 1e-9
	}
	return cacheKey{
		ratioBucket: int32(math.Round(math.Log2(ratio) * 16)),
		tBucket:     int32(math.Round(tStar * 200)),
	}
}

// Optimize returns the (b, r) minimizing FN(x,q,t*,b,r) + FP(x,q,t*,b,r)
// on the grid (paper Eq. 26, with x set to the partition upper bound by the
// caller). Ties prefer smaller b (fewer probes) then larger r (cheaper
// scans). x, q must be positive and t* in (0, 1].
func (o *Optimizer) Optimize(x, q, tStar float64) Params {
	k := key(x, q, tStar)
	o.mu.RLock()
	p, ok := o.cache[k]
	o.mu.RUnlock()
	if ok {
		return p
	}
	p = o.search(x, q, tStar)
	o.mu.Lock()
	o.cache[k] = p
	o.mu.Unlock()
	return p
}

// OptimizeBatch fills dst[i] with Optimize(xs[i], q, tStar) for every upper
// bound in xs, taking the cache locks once per batch instead of once per
// element. Query planners resolving every partition of every segment in one
// sweep (internal/live) use it to keep lock traffic off the plan-build path.
// dst must be at least as long as xs; the results are bit-identical to
// element-wise Optimize calls.
func (o *Optimizer) OptimizeBatch(xs []float64, q, tStar float64, dst []Params) {
	if len(xs) == 0 {
		return
	}
	miss := 0
	o.mu.RLock()
	for i, x := range xs {
		p, ok := o.cache[key(x, q, tStar)]
		if ok {
			dst[i] = p
		} else {
			dst[i] = Params{} // B == 0 marks a miss
			miss++
		}
	}
	o.mu.RUnlock()
	if miss == 0 {
		return
	}
	// Compute misses outside any lock (distinct xs may share a bucket; the
	// second search is redundant work, not an error), publish in one pass.
	for i := range xs {
		if dst[i].B == 0 {
			dst[i] = o.search(xs[i], q, tStar)
		}
	}
	o.mu.Lock()
	for i, x := range xs {
		o.cache[key(x, q, tStar)] = dst[i]
	}
	o.mu.Unlock()
}

// OptimizeUncached performs the grid search without touching the cache.
// Exposed for the tuning-cache ablation benchmark.
func (o *Optimizer) OptimizeUncached(x, q, tStar float64) Params {
	return o.search(x, q, tStar)
}

// intervalWidths returns the integration interval widths of the FP and FN
// areas for the given (x, q, t*). Zero-width intervals are reported as 0.
func intervalWidths(x, q, tStar float64) (wFP, wFN float64) {
	ratio := x / q
	wFP = tStar
	if ratio < wFP {
		wFP = ratio
	}
	if wFP < 0 {
		wFP = 0
	}
	if ratio >= tStar {
		upper := 1.0
		if ratio < 1 {
			upper = ratio
		}
		wFN = upper - tStar
		if wFN < fnWidthFloor {
			wFN = fnWidthFloor
			if wFN > upper {
				wFN = upper
			}
		}
	}
	return wFP, wFN
}

// Cost is the tuning objective: the average false-positive probability over
// the sub-threshold containment interval plus the average false-negative
// probability over the super-threshold interval. Normalizing each area by
// its interval width keeps the two error terms commensurate at extreme
// thresholds, where the paper's raw-area objective (Eq. 25) degenerates
// (at t* = 1 the FN interval has zero width, so raw areas would always
// prefer the strictest configuration and reject even exact matches). For
// moderate thresholds the intervals have comparable widths and the argmin
// matches the raw-area objective.
func Cost(x, q, tStar float64, b, r int) float64 {
	wFP, wFN := intervalWidths(x, q, tStar)
	cost := 0.0
	if wFP > 0 {
		cost += FalsePositiveArea(x, q, tStar, b, r) / wFP
	}
	if wFN > 0 {
		cost += FalseNegativeArea(x, q, tStar, b, r) / wFN
	}
	return cost
}

func (o *Optimizer) search(x, q, tStar float64) Params {
	fp, fn := o.gridAreas(x, q, tStar)
	wFP, wFN := intervalWidths(x, q, tStar)
	best := Params{B: 1, R: 1}
	bestCost := math.Inf(1)
	for r := 1; r <= o.rMax; r++ {
		for b := 1; b <= o.bMax; b++ {
			cost := 0.0
			if wFP > 0 {
				cost += fp[r-1][b-1] / wFP
			}
			if wFN > 0 {
				cost += fn[r-1][b-1] / wFN
			}
			if cost < bestCost-1e-12 {
				bestCost = cost
				best = Params{B: b, R: r}
			}
		}
	}
	return best
}

// gridAreas evaluates the FP and FN areas for every (b, r) on the grid in
// one pass. A naive sweep would run bMax·rMax independent quadratures
// (each full of math.Pow calls); instead the quadrature nodes are shared
// and the powers built incrementally — s^r by one multiply per r step,
// (1−s^r)^b by one multiply per b step — which makes a cold optimization
// ~50× cheaper. Results match FalsePositiveArea/FalseNegativeArea to
// quadrature precision (asserted by tests).
func (o *Optimizer) gridAreas(x, q, tStar float64) (fp, fn [][]float64) {
	fp = make([][]float64, o.rMax)
	fn = make([][]float64, o.rMax)
	for r := range fp {
		fp[r] = make([]float64, o.bMax)
		fn[r] = make([]float64, o.bMax)
	}
	ratio := x / q

	// accumulate adds Simpson-weighted Σ w_i · (1 − s_i^r)^b over the nodes
	// of [lo, hi] into out[r-1][b-1]. The integral of P = width − that sum
	// (for FP), and the integral of 1−P is exactly that sum (for FN).
	accumulate := func(lo, hi float64, out [][]float64, subtractFromWidth bool) {
		if hi <= lo {
			return
		}
		n := quadIntervals
		h := (hi - lo) / float64(n)
		nodes := make([]float64, n+1)   // s at each node
		weights := make([]float64, n+1) // Simpson weights × h/3
		for i := 0; i <= n; i++ {
			t := lo + float64(i)*h
			s := ContainmentToJaccard(t, x, q)
			if s < 0 {
				s = 0
			}
			if s > 1 {
				s = 1
			}
			nodes[i] = s
			w := 2.0
			switch {
			case i == 0 || i == n:
				w = 1
			case i%2 == 1:
				w = 4
			}
			weights[i] = w * h / 3
		}
		width := hi - lo
		sr := make([]float64, n+1) // s^r, built incrementally
		g := make([]float64, n+1)  // (1 − s^r)^b, built incrementally
		for i := range sr {
			sr[i] = 1
		}
		for r := 1; r <= o.rMax; r++ {
			for i := range sr {
				sr[i] *= nodes[i]
				g[i] = 1
			}
			for b := 1; b <= o.bMax; b++ {
				sum := 0.0
				for i := range g {
					g[i] *= 1 - sr[i]
					sum += weights[i] * g[i]
				}
				if subtractFromWidth {
					out[r-1][b-1] += width - sum // ∫ P dt
				} else {
					out[r-1][b-1] += sum // ∫ (1 − P) dt
				}
			}
		}
	}

	// FP: ∫ P over [0, min(t*, ratio)].
	fpHi := tStar
	if ratio < fpHi {
		fpHi = ratio
	}
	accumulate(0, fpHi, fp, true)

	// FN: ∫ (1 − P) over the (floored) super-threshold interval.
	if ratio >= tStar {
		upper := 1.0
		if ratio < 1 {
			upper = ratio
		}
		lower := tStar
		if upper-lower < fnWidthFloor {
			lower = upper - fnWidthFloor
			if lower < 0 {
				lower = 0
			}
		}
		accumulate(lower, upper, fn, false)
	}
	return fp, fn
}
