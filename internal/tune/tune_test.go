package tune

import (
	"math"
	"testing"
	"testing/quick"

	"lshensemble/internal/xrand"
)

func TestConversionInverse(t *testing.T) {
	// Property: JaccardToContainment ∘ ContainmentToJaccard = identity
	// (paper Eq. 6 are mutual inverses for fixed x, q).
	f := func(tRaw, xRaw, qRaw uint16) bool {
		tc := float64(tRaw%1000)/1000.0 + 0.0005
		x := float64(xRaw%10000) + 1
		q := float64(qRaw%10000) + 1
		// containment cannot exceed x/q
		if max := x / q; tc > max {
			tc = max * 0.99
		}
		s := ContainmentToJaccard(tc, x, q)
		back := JaccardToContainment(s, x, q)
		return math.Abs(back-tc) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConversionKnownValues(t *testing.T) {
	// From the paper's running example: Q={Ontario,Toronto} (q=2),
	// Locations has x=12, containment 1.0 → Jaccard = 2/12 ≈ 0.1667... no:
	// s = t/(x/q+1-t) = 1/(6+1-1) = 1/6.
	if got := ContainmentToJaccard(1.0, 12, 2); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("ContainmentToJaccard(1,12,2) = %v, want 1/6", got)
	}
	// Provinces: x=3, q=2, t=0.5 → s = 0.5/(1.5+1-0.5) = 0.25.
	if got := ContainmentToJaccard(0.5, 3, 2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("ContainmentToJaccard(0.5,3,2) = %v, want 0.25", got)
	}
}

func TestConversionMonotoneInX(t *testing.T) {
	// sˆx,q(t) decreases monotonically in x — the property that makes the
	// upper-bound substitution conservative (Section 5.1).
	for _, tc := range []float64{0.1, 0.5, 0.9} {
		prev := math.Inf(1)
		for x := 1.0; x <= 1e6; x *= 10 {
			s := ContainmentToJaccard(tc, x, 100)
			if s > prev+1e-15 {
				t.Fatalf("s not decreasing in x at t=%v x=%v", tc, x)
			}
			prev = s
		}
	}
}

func TestConservativeThresholdNoNewFalseNegatives(t *testing.T) {
	// Property: for any x ≤ u, s* = sˆu,q(t*) ≤ sˆx,q(t*). A domain whose
	// true containment meets t* has Jaccard ≥ sˆx,q(t*) ≥ s*, so a perfect
	// Jaccard filter at s* never rejects it.
	f := func(xRaw, uRaw, qRaw uint16, tRaw uint8) bool {
		x := float64(xRaw%5000) + 1
		u := x + float64(uRaw%5000)
		q := float64(qRaw%5000) + 1
		tStar := (float64(tRaw%100) + 1) / 100
		sStar := ConservativeJaccardThreshold(tStar, u, q)
		sExact := ContainmentToJaccard(tStar, x, q)
		return sStar <= sExact+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveThreshold(t *testing.T) {
	// Prop. 1: t_x = (x+q) t* / (u+q); with x = u it equals t*.
	if got := EffectiveContainmentThreshold(0.5, 10, 5, 10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("t_u = %v, want t* = 0.5", got)
	}
	// t_x below t* for x < u.
	if got := EffectiveContainmentThreshold(0.5, 4, 5, 10); got >= 0.5 {
		t.Fatalf("t_x = %v, want < 0.5", got)
	}
	// Figure 2 configuration: u=3, x=1, q=1, t*=0.5 → t_x = 2·0.5/4 = 0.25.
	if got := EffectiveContainmentThreshold(0.5, 1, 1, 3); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("fig2 t_x = %v, want 0.25", got)
	}
}

func TestCandidateProbabilityShape(t *testing.T) {
	// Figure 3 configuration: x=10, q=5, b=256, r=4, t*=0.5. P should be
	// monotone non-decreasing in t, ~0 at t=0, ~1 at t=1.
	prev := -1.0
	for i := 0; i <= 100; i++ {
		tc := float64(i) / 100
		p := CandidateProbability(tc, 10, 5, 256, 4)
		if p < prev-1e-12 {
			t.Fatalf("P not monotone at t=%v", tc)
		}
		if p < 0 || p > 1 {
			t.Fatalf("P out of [0,1] at t=%v: %v", tc, p)
		}
		prev = p
	}
	if p0 := CandidateProbability(0, 10, 5, 256, 4); p0 != 0 {
		t.Fatalf("P(0) = %v, want 0", p0)
	}
	if p1 := CandidateProbability(1, 10, 5, 256, 4); p1 < 0.99 {
		t.Fatalf("P(1) = %v, want ~1", p1)
	}
}

func TestCandidateProbabilityMoreBandsMoreCandidates(t *testing.T) {
	// P increases with b (more probes) and decreases with r (stricter).
	for _, tc := range []float64{0.2, 0.5, 0.8} {
		if CandidateProbability(tc, 10, 5, 8, 4) > CandidateProbability(tc, 10, 5, 32, 4) {
			t.Fatalf("P should grow with b at t=%v", tc)
		}
		if CandidateProbability(tc, 10, 5, 16, 8) > CandidateProbability(tc, 10, 5, 16, 2) {
			t.Fatalf("P should shrink with r at t=%v", tc)
		}
	}
}

func TestSimpsonAgainstKnownIntegrals(t *testing.T) {
	if got := simpson(func(x float64) float64 { return x * x }, 0, 1, 64); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("∫x² = %v, want 1/3", got)
	}
	if got := simpson(math.Sin, 0, math.Pi, 64); math.Abs(got-2) > 1e-6 {
		t.Fatalf("∫sin = %v, want 2", got)
	}
	if got := simpson(math.Exp, 0, 0, 64); got != 0 {
		t.Fatalf("empty interval = %v, want 0", got)
	}
}

func TestAreasInRange(t *testing.T) {
	f := func(xRaw, qRaw uint16, tRaw, bRaw, rRaw uint8) bool {
		x := float64(xRaw%1000) + 1
		q := float64(qRaw%1000) + 1
		tStar := (float64(tRaw%99) + 1) / 100
		b := int(bRaw%32) + 1
		r := int(rRaw%8) + 1
		fp := FalsePositiveArea(x, q, tStar, b, r)
		fn := FalseNegativeArea(x, q, tStar, b, r)
		return fp >= 0 && fp <= 1.000001 && fn >= 0 && fn <= 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFNZeroWhenRatioBelowThreshold(t *testing.T) {
	// A domain with x/q < t* can never qualify, so FN must be 0 (Eq. 24).
	if got := FalseNegativeArea(10, 100, 0.5, 16, 4); got != 0 {
		t.Fatalf("FN = %v, want 0 when x/q < t*", got)
	}
}

func TestFPRespectsRatioCap(t *testing.T) {
	// FP integrates only up to x/q when x/q < t*.
	small := FalsePositiveArea(10, 100, 0.9, 32, 1) // cap at 0.1
	big := FalsePositiveArea(200, 100, 0.9, 32, 1)  // cap at 0.9
	if small >= big {
		t.Fatalf("FP with tight ratio cap (%v) should be below uncapped (%v)", small, big)
	}
}

func TestExtremeConfigsTradeOff(t *testing.T) {
	// b=32, r=1 is extremely permissive → almost no FN, large FP.
	// b=1, r=8 is extremely strict → almost no FP, large FN.
	x, q, tStar := 100.0, 50.0, 0.5
	fpPerm := FalsePositiveArea(x, q, tStar, 32, 1)
	fnPerm := FalseNegativeArea(x, q, tStar, 32, 1)
	fpStrict := FalsePositiveArea(x, q, tStar, 1, 8)
	fnStrict := FalseNegativeArea(x, q, tStar, 1, 8)
	if !(fnPerm < fnStrict && fpPerm > fpStrict) {
		t.Fatalf("trade-off violated: perm fp=%v fn=%v strict fp=%v fn=%v",
			fpPerm, fnPerm, fpStrict, fnStrict)
	}
}

func TestOptimizerRespectsGrid(t *testing.T) {
	o := NewOptimizer(32, 8)
	rng := xrand.New(4)
	for i := 0; i < 50; i++ {
		x := float64(rng.Intn(100000) + 1)
		q := float64(rng.Intn(1000) + 1)
		tStar := (float64(rng.Intn(99)) + 1) / 100
		p := o.Optimize(x, q, tStar)
		if p.B < 1 || p.B > 32 || p.R < 1 || p.R > 8 {
			t.Fatalf("params %+v outside grid", p)
		}
	}
}

func TestOptimizerIsGridMinimum(t *testing.T) {
	o := NewOptimizer(16, 4)
	for _, tc := range []struct{ x, q, tStar float64 }{
		{100, 10, 0.5},
		{1000, 10, 0.9},
		{10, 10, 0.2},
		{50, 200, 0.1},
	} {
		p := o.Optimize(tc.x, tc.q, tc.tStar)
		best := Cost(tc.x, tc.q, tc.tStar, p.B, p.R)
		for b := 1; b <= 16; b++ {
			for r := 1; r <= 4; r++ {
				c := Cost(tc.x, tc.q, tc.tStar, b, r)
				if c < best-1e-9 {
					t.Fatalf("config (%d,%d) cost %v beats chosen %+v cost %v for %+v",
						b, r, c, p, best, tc)
				}
			}
		}
	}
}

func TestOptimizerHigherThresholdStricter(t *testing.T) {
	// As t* grows, the optimizer should choose an (effectively) stricter
	// configuration: the candidate probability at a fixed low containment
	// should not increase.
	o := NewOptimizer(32, 8)
	x, q := 1000.0, 100.0
	pLow := o.Optimize(x, q, 0.1)
	pHigh := o.Optimize(x, q, 0.9)
	probeT := 0.05
	pl := CandidateProbability(probeT, x, q, pLow.B, pLow.R)
	ph := CandidateProbability(probeT, x, q, pHigh.B, pHigh.R)
	if ph > pl+1e-9 {
		t.Fatalf("t*=0.9 config %+v is more permissive than t*=0.1 config %+v (%v > %v)",
			pHigh, pLow, ph, pl)
	}
}

func TestGridAreasMatchReference(t *testing.T) {
	// The one-pass incremental grid evaluation must agree with the
	// reference per-config quadratures everywhere on the grid.
	o := NewOptimizer(16, 4)
	for _, tc := range []struct{ x, q, tStar float64 }{
		{100, 10, 0.5},
		{10, 100, 0.5}, // ratio < t*: FN empty
		{1000, 10, 1.0},
		{50, 50, 0.05},
	} {
		fp, fn := o.gridAreas(tc.x, tc.q, tc.tStar)
		for r := 1; r <= 4; r++ {
			for b := 1; b <= 16; b++ {
				wantFP := FalsePositiveArea(tc.x, tc.q, tc.tStar, b, r)
				wantFN := FalseNegativeArea(tc.x, tc.q, tc.tStar, b, r)
				if math.Abs(fp[r-1][b-1]-wantFP) > 1e-9 {
					t.Fatalf("%+v b=%d r=%d: grid FP %v, want %v", tc, b, r, fp[r-1][b-1], wantFP)
				}
				if math.Abs(fn[r-1][b-1]-wantFN) > 1e-9 {
					t.Fatalf("%+v b=%d r=%d: grid FN %v, want %v", tc, b, r, fn[r-1][b-1], wantFN)
				}
			}
		}
	}
}

func TestOptimizerExtremeThresholdKeepsRecall(t *testing.T) {
	// Regression: at t* = 1.0 the raw-area objective (Eq. 25) degenerates
	// (zero-width FN interval) and picks the strictest configuration,
	// losing fully-contained domains. The width-normalized Cost must keep
	// a configuration that retrieves a qualifying domain with decent
	// probability even when x > q.
	o := NewOptimizer(32, 8)
	for _, tc := range []struct{ x, q float64 }{{10, 3}, {100, 10}, {50, 50}} {
		p := o.Optimize(tc.x, tc.q, 1.0)
		prob := CandidateProbability(1.0, tc.x, tc.q, p.B, p.R)
		if prob < 0.5 {
			t.Fatalf("x=%v q=%v t*=1: chosen %+v retrieves exact matches with P=%v",
				tc.x, tc.q, p, prob)
		}
	}
}

func TestCostMatchesComponents(t *testing.T) {
	// Cost must equal the width-normalized sum of the two areas.
	x, q, tStar := 100.0, 40.0, 0.5
	wFP, wFN := intervalWidths(x, q, tStar)
	for _, p := range []Params{{1, 1}, {8, 2}, {32, 8}} {
		want := FalsePositiveArea(x, q, tStar, p.B, p.R)/wFP +
			FalseNegativeArea(x, q, tStar, p.B, p.R)/wFN
		if got := Cost(x, q, tStar, p.B, p.R); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Cost(%+v) = %v, want %v", p, got, want)
		}
	}
}

func TestIntervalWidths(t *testing.T) {
	// Moderate threshold, big domain: FP width = t*, FN width = 1 - t*.
	wFP, wFN := intervalWidths(100, 10, 0.4)
	if wFP != 0.4 || math.Abs(wFN-0.6) > 1e-12 {
		t.Fatalf("widths = %v, %v", wFP, wFN)
	}
	// x/q below threshold: no FN interval at all.
	wFP, wFN = intervalWidths(10, 100, 0.5)
	if math.Abs(wFP-0.1) > 1e-12 || wFN != 0 {
		t.Fatalf("capped widths = %v, %v", wFP, wFN)
	}
	// t* = 1: FN floor applies.
	_, wFN = intervalWidths(100, 10, 1.0)
	if wFN != fnWidthFloor {
		t.Fatalf("floored FN width = %v", wFN)
	}
}

func TestOptimizerCaching(t *testing.T) {
	o := NewOptimizer(32, 8)
	p1 := o.Optimize(1000, 100, 0.5)
	n := o.CacheLen()
	p2 := o.Optimize(1000, 100, 0.5)
	if o.CacheLen() != n {
		t.Fatal("repeated query should hit cache")
	}
	if p1 != p2 {
		t.Fatal("cache returned different params")
	}
	// Same bucket: tiny perturbation of x should also hit.
	o.Optimize(1001, 100, 0.5)
	if o.CacheLen() != n {
		t.Fatal("near-identical ratio should share a bucket")
	}
}

func TestOptimizerUncachedMatchesCached(t *testing.T) {
	o := NewOptimizer(16, 4)
	for _, x := range []float64{10, 100, 1000} {
		a := o.Optimize(x, 50, 0.4)
		b := o.OptimizeUncached(x, 50, 0.4)
		if a != b {
			t.Fatalf("cached %+v != uncached %+v", a, b)
		}
	}
}

func TestNewOptimizerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOptimizer(0, 1) did not panic")
		}
	}()
	NewOptimizer(0, 1)
}

func BenchmarkOptimizeCached(b *testing.B) {
	o := NewOptimizer(32, 8)
	o.Optimize(1000, 100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Optimize(1000, 100, 0.5)
	}
}

func BenchmarkOptimizeUncached(b *testing.B) {
	o := NewOptimizer(32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.OptimizeUncached(1000, 100, 0.5)
	}
}

func TestOptimizeBatchMatchesElementwise(t *testing.T) {
	o := NewOptimizer(32, 8)
	xs := []float64{10, 100, 1000, 10, 250, 97, 4096}
	dst := make([]Params, len(xs))
	o.OptimizeBatch(xs, 200, 0.6, dst)
	fresh := NewOptimizer(32, 8)
	for i, x := range xs {
		if want := fresh.Optimize(x, 200, 0.6); dst[i] != want {
			t.Fatalf("x=%v: batch %+v != elementwise %+v", x, dst[i], want)
		}
	}
	// Second call is a pure cache hit and must agree with itself.
	again := make([]Params, len(xs))
	o.OptimizeBatch(xs, 200, 0.6, again)
	for i := range xs {
		if again[i] != dst[i] {
			t.Fatalf("x=%v: cached %+v != first %+v", xs[i], again[i], dst[i])
		}
	}
	if o.CacheLen() == 0 {
		t.Fatal("batch optimization did not populate the cache")
	}
}
