// Package lshensemble is a from-scratch Go implementation of LSH Ensemble,
// the Internet-scale domain-search index of Zhu, Nargesian, Pu and Miller
// (PVLDB 9(12), 2016).
//
// # Problem
//
// A domain is a set of distinct values — for example the contents of one
// column of a table. Given a corpus of domains D, a query domain Q and a
// containment threshold t*, domain search returns every X in D with
//
//	t(Q, X) = |Q ∩ X| / |Q| ≥ t*
//
// Containment (rather than Jaccard similarity) is the right relevance
// measure for finding joinable tables: it is insensitive to the indexed
// domain's size, which matters because real corpora have power-law size
// distributions.
//
// # Index
//
// LSH Ensemble partitions domains by cardinality (equi-depth, which the
// paper proves near-optimal for power-law data), builds one dynamically
// tuned MinHash LSH per partition, and at query time converts t* into a
// per-partition Jaccard threshold using each partition's upper size bound.
// The conversion is conservative — it never introduces new false
// negatives — and partitioning tightens it, which is where the precision
// win over a single MinHash LSH comes from.
//
// # Quickstart
//
//	hasher := lshensemble.NewHasher(256, 42)
//	var records []lshensemble.DomainRecord
//	for key, values := range myDomains {
//	    sig := hasher.NewSignature()
//	    for _, v := range values {
//	        hasher.PushString(sig, v)
//	    }
//	    records = append(records, lshensemble.DomainRecord{
//	        Key: key, Size: len(values), Sig: sig,
//	    })
//	}
//	index, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 16})
//	if err != nil { ... }
//	matches := index.Query(querySig, len(queryValues), 0.7)
//
// # Performance notes
//
// The storage and query hot paths are laid out for cache locality and zero
// steady-state allocation:
//
//   - Every LSH forest keeps all signatures in one contiguous []uint64
//     backing store (stride NumHash) instead of per-entry slices, plus a
//     flat per-tree column of leading hash values. Probes binary-search the
//     contiguous column and only touch the backing store to resolve deeper
//     prefixes, so a probe no longer chases a pointer per comparison.
//   - Trees are rebuilt with an LSD radix sort on the leading hash value
//     (near-uniform in [0, 2^61)), falling back to comparison sorting only
//     inside runs of equal leading values. Rebuilds are ~3x faster than the
//     previous closure-comparator sort.Slice.
//   - Corpus sketching uses a batched permutation-major path
//     (Hasher.PushHashedBlock) that streams L1-sized blocks of base hashes
//     through four permutations at a time.
//   - Queries deduplicate candidates with generation-stamped visited arrays
//     and reusable result buffers recycled through a sync.Pool — no maps,
//     no goroutine spawned per partition. Index stays safe for concurrent
//     queries; Index.QueryIDsAppend with a reused destination buffer is
//     fully allocation-free in steady state, and Query/QueryIDs allocate
//     only their result slice.
//
// # Parallelism model
//
// Construction and batch serving fan out over bounded worker pools sized by
// GOMAXPROCS; all parallel paths degrade to the serial code at one proc.
// Construction is bit-deterministic at any worker count, and every
// QueryBatch row matches the serial QueryIDs answer element for element;
// only ParallelQueryIDs returns its (deduplicated) result set in an
// unspecified order.
//
//   - Build routes records to partitions serially (one binary search each),
//     then fills the disjoint partition forests in parallel, with each
//     forest's contiguous store pre-sized in a single allocation from the
//     known member count (lshforest.Forest.Reserve).
//   - Reindex flattens the rebuild into one job per (partition, tree) pair
//     and drains the job list through a worker pool, so a few oversized
//     partitions cannot serialize the tail. Each worker owns one
//     lshforest.SortScratch for the radix sorts; workers never share
//     mutable state.
//   - Index.QueryBatch / Index.QueryBatchInto dispatch a slice of queries
//     across workers pulling from a shared counter. Every worker owns a
//     pooled generation-stamped dedup scratch and an append-only result
//     arena; the arenas merge into the caller's BatchResults at the end.
//     QueryBatchInto with a reused BatchResults performs zero per-query
//     steady-state allocations (the whole dispatch costs a fixed handful of
//     goroutine-spawn allocations, independent of batch size).
//   - Index.ParallelQueryIDs splits the partitions of ONE query across
//     workers instead. Partitions hold disjoint ids, so per-worker dedup
//     suffices and the merge is a concatenation. Intra-query splitting wins
//     only when single-query latency matters and the stream is too thin to
//     batch — a wide ensemble probed by rare, expensive queries; batched
//     traffic should always prefer QueryBatch, whose coordination cost is
//     amortized over the whole batch rather than paid per query.
//   - Corpus sketching: Hasher.SketchParallel shards one large pre-hashed
//     value slice across workers (exact — shard minima merge slot-wise);
//     cmd/lshed sketches whole columns in parallel and serves multi-column
//     query files through one QueryBatch dispatch (-batch -workers).
//
// Concurrency contract: an Index is safe for any number of concurrent
// readers (Query*, QueryBatch*, ParallelQueryIDs); Add and Reindex require
// exclusive access, as with an RWMutex. Querying an Index that has Adds not
// yet folded in by Reindex returns core.ErrDirty rather than panicking.
//
// # Live index
//
// LiveIndex (BuildLive) removes the exclusive-access requirement entirely:
// it is the serving-system layer for corpora that churn under load. A
// LiveIndex holds an atomically-swapped snapshot of three immutable parts —
// sealed segments (each a frozen Index over a slice of the corpus), an
// unsealed buffer of recent Adds (scanned as one extra partition with the
// same (b, r) banding test), and a tombstone set recording Deletes and
// replacements. Its guarantees:
//
//   - Queries never block on ingest or compaction: readers load the
//     snapshot pointer once and touch only immutable data; writers and the
//     compactor publish whole new snapshots with a single pointer swap.
//   - Every query answers from a consistent point-in-time snapshot:
//     readers in flight keep the snapshot they loaded, and each live key
//     appears at most once per result.
//   - Add is an upsert (replacing any previous entry of the key), Delete
//     tombstones immediately; both serialize on a writer mutex that the
//     read path never touches.
//   - A background compactor seals the buffer into a segment past
//     LiveOptions.SealThreshold and merges the two smallest segments past
//     LiveOptions.MaxSegments, using the parallel construction path; dead
//     entries are dropped as segments rebuild.
//   - Compaction is equivalence-preserving: full Compact leaves a single
//     segment that is bit-identical to a fresh Build over the surviving
//     records in mutation order (and therefore answers every query
//     identically), with every tombstone purged.
//   - SaveLive/LoadLive persist a point-in-time snapshot for warm restarts;
//     Save is safe while writers run. The snapshot wire format is
//     versioned and checksummed: current files (v3) are either
//     self-contained or — with LiveOptions.DataDir — small manifests
//     referencing segment files; older v1/v2 files still load (missing
//     planner metadata is rebuilt).
//
// Queries are planned per segment: sealed segments carry seal-time
// metadata (domain-size range, partition bounds, key and leading-value
// Bloom filters) that lets the query path skip segments which provably
// cannot contain a candidate, and QueryTopK visits segments in
// largest-bound-first order with early termination. Pruning never changes
// an answer — planned results are byte-identical to a full scan. Two
// caches ride on snapshot generations (a tuned-(b,r) plan cache and a
// lock-free result cache) and are validated by a single generation
// compare on read, so repeated queries against an unchanged corpus are
// allocation-free cache hits. LiveOptions.DisablePruning,
// DisablePlanCache and ResultCacheSize expose the knobs; LiveStats
// reports per-segment metadata and prune/hit counters.
//
// # Out-of-core segments
//
// With LiveOptions.DataDir set, the live index runs out-of-core: every
// seal and merge spills its segment to a page-aligned, checksummed file
// (header, planner metadata, then the forests' contiguous signature store
// and flat tree columns — the exact in-memory layout), written crash-safely
// via temp file + fsync + atomic rename. Snapshots become small manifests
// referencing the files, and retirement is refcounted: a segment file is
// deleted (and its mapping released) only after the last in-flight reader
// of any snapshot listing it has drained, with manifest-referenced files
// further deferred to LiveIndex.CollectGarbage after the next manifest is
// durable.
//
// Adding LiveOptions.Mmap serves sealed segments from read-only
// memory-mapped views of those files. The flat layout was chosen so
// binary-search probes work unchanged on mapped bytes — queries are
// zero-copy and allocation-free over the mapping, within measurement noise
// of heap serving (BENCH_7.json). Boot from a manifest reads only each
// file's header and planner metadata eagerly; signatures page in lazily as
// queries touch them, so a warm restart of a large corpus answers its
// first query in milliseconds and resident memory tracks the queried
// working set, not the corpus. Choose -mmap when the corpus approaches or
// exceeds RAM, when restart latency matters, or when many daemons share a
// box; plain DataDir (spill without mmap) keeps heap serving but still
// gets small manifests and crash-safe persistence. On platforms without
// mmap support the option degrades to a heap read with identical results.
//
// cmd/lshensembled serves a LiveIndex over HTTP (/add, /delete, /query,
// /query/topk, /query/batch backed by the batch engine, /stats, /compact,
// /save) with snapshot load at boot and save on shutdown, and runs
// out-of-core with -data-dir DIR -mmap (the snapshot then defaults to
// DIR/MANIFEST; /stats reports each segment's backing, file bytes and
// resident estimate); examples/dynamic walks the churn-and-compact
// lifecycle and prints what the planner pruned. Query handlers thread the
// request context into the index, so a disconnected client stops its
// in-flight query or batch instead of running it to completion
// (QueryContext / QueryTopKContext / QueryBatchContext on LiveIndex, and
// QueryBatchIntoContext on Index, expose the same to library callers).
//
// # Distributed serving
//
// cmd/lshrouter shards the daemon horizontally: N lshensembled processes
// each hold a slice of the corpus, and a stateless router in front makes
// the fleet answer like one index. Topology: any number of identical
// routers (they share no state) in front of a static -shards list; every
// shard must run the same -seed and -hashes, since MinHash signatures from
// different families are incomparable.
//
// Writes (/add, /delete) route by consistent hashing — a vnode ring over
// the live shards with a deterministic bounded-load pass (no shard owns
// more than load-factor/N of the keyspace; ownership is a pure function of
// membership, so independent routers agree without coordinating).
// -replication K writes each key to K distinct shards. Queries (/query,
// /query/topk, /query/batch) scatter to every live shard under a
// per-shard deadline and merge: unions dedup by key, top-k keeps each
// key's best estimated containment and re-ranks, batches merge row by
// row.
//
// Consistency and partial results: a query observes each shard's
// point-in-time snapshot — the fleet-wide answer is not a global snapshot,
// but per shard it carries the live index's usual guarantees. A shard that
// is slow (past -shard-timeout) or dead contributes nothing to the merge;
// the response stays HTTP 200 with "partial": true and the missing shards
// named in "failed" — the router degrades, it never turns one shard's
// death into an error. Only a total blackout is a 5xx. A background
// checker probes each shard's /healthz and demotes a shard from the ring
// after -health-fail consecutive misses (one success promotes it back),
// so writes route around the hole and clean (non-partial) answers resume.
//
// Shard handoff rides the persistence layer: snapshots embed the hash
// seed, so an operator replaces a dead shard by booting a fresh daemon
// from the dead shard's -snapshot file or -data-dir manifest and listing
// it at the same URL — the ring is indifferent to which process answers.
//
// # Observability
//
// Both binaries are instrumented end to end with a dependency-free metrics
// core (internal/obs): atomic counters and gauges plus fixed-bucket
// histograms whose record path is lock-free and allocation-free, so the
// instrumented query path still performs zero steady-state allocations
// per query (BenchmarkLiveQueryMetricsOverhead). GET /metrics on each
// binary serves the Prometheus text exposition format; -no-metrics turns
// collection off entirely.
//
// lshensembled exports, per endpoint, lshensembled_http_requests_total
// {endpoint, code} (status classes 2xx/4xx/5xx), latency histograms
// lshensembled_http_request_seconds{endpoint}, and an in-flight gauge —
// plus the index itself: lshensembled_live_query_seconds{op=query|topk|
// batch} recorded by an observer hook inside the live index, gauges for
// domains, segments, buffered entries, tombstones and segment resident/
// file bytes, seal/merge/spill counters, and the planner's decision
// counters (lshensembled_planner_segments_total{decision=probed|
// range_pruned|bloom_pruned}, plan/result-cache hit/miss, top-k early
// exits, buffer scans vs Bloom skips) mirrored from LiveStats at scrape
// time so the query path pays nothing for them.
//
// lshrouter exports the same per-endpoint HTTP families under the
// lshrouter_ prefix plus fleet health: lshrouter_shards_live,
// lshrouter_shard_demotions_total / _promotions_total / _errors_total
// {shard}, and lshrouter_partial_responses_total.
//
// Request tracing: every request is stamped with a trace ID — an inbound
// X-Request-Id is honored (sanitized), otherwise one is generated — echoed
// on the response, propagated by the router to every shard fan-out call,
// and attached as trace_id to the structured per-request logs (log/slog,
// Debug level; -log-level, -log-json), so one ID follows a query from the
// router into each shard's log. Queries slower than lshensembled's
// -slow-query threshold log at Warn with the planner's per-query
// breakdown (segments probed vs range/Bloom pruned, buffer scanned,
// result-cache hit). GET /healthz on both binaries is a static
// {"status":"ok"} that never touches the index, safe for tight probe
// loops. -debug-addr starts a separate listener with net/http/pprof under
// /debug/pprof/ and a /metrics mirror, kept off the serving port.
//
// cmd/lshload is the closed-loop load harness: it drives any endpoint
// speaking the daemon wire protocol (one shard or a router) with a
// weighted add/delete/query/topk/batch mix at fixed concurrency and
// prints a machine-readable JSON report of per-op p50/p95/p99/max/mean
// latency, throughput, and error/partial rates — see the command doc for
// flags.
//
// # Sketch backends
//
// The signature representation is pluggable (core.SketchBackend, the
// daemon's -sketch flag, BuildOptions.Sketch). All backends hash with the
// same 64-bit minwise hasher; the backend decides how many bits of each
// minimum are stored and how containment is estimated:
//
//   - Minwise64 (default): full 64-bit minima. Wire-compatible with every
//     artifact this package has ever written; v1–v3 snapshots and segment
//     files load as Minwise64 automatically.
//   - Minwise32 / Minwise16 / Minwise8: b-bit minwise. Stores only the low
//     b bits of each minimum and corrects the match estimate for chance
//     collisions (Li & König). Truncation is a superset property — any
//     pair the full signature matches, the truncated one matches too — so
//     recall never drops; precision pays the 2^-b collision floor.
//   - KMV: the k smallest distinct hash values, giving cardinality-aware
//     containment estimates. Evaluation-only — it has no fixed-slot
//     structure to band, so it cannot back the LSH forest index; use it
//     for re-ranking or offline accuracy studies (KMVSketch, minhash.KMV).
//
// Measured accuracy-vs-bytes frontier (Fig. 4 corpus scale, t* = 0.5,
// m = 256 hash functions, BENCH_10.json):
//
//	backend    bytes/domain  precision  recall
//	minwise64      2048.0      0.658     0.912
//	minwise32      1024.0      0.658     0.912
//	minwise16       512.0      0.596     0.912
//	kmv (k=128)     286.9      0.937     0.979   (evaluation-only)
//	minwise8        256.0      0.034     0.912
//
// Rules of thumb: minwise32 is a free halving (at m = 256 the top 32 bits
// essentially never disambiguate a minimum); minwise16 halves again for a
// few points of precision and is the sweet spot when memory or segment
// I/O dominates; minwise8 only makes sense when a downstream verifier
// re-checks candidates, because the 2^-8 chance-collision floor floods
// precision at corpus scale; KMV is the sharpest estimate per byte where
// brute-force evaluation is acceptable. The backend is recorded in every
// wire format (index, forest, snapshot manifest v4, segment files) and in
// /stats as "sketch" and "signature_bytes"; a daemon booted with a
// mismatched -sketch refuses the snapshot rather than misinterpret it.
//
// See ROADMAP.md for representative before/after benchmark numbers.
//
// See examples/ for runnable programs, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the reproduction of every table and figure in the
// paper's evaluation.
package lshensemble
