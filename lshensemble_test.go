package lshensemble_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"lshensemble"
)

// tableFixture: small "open data" tables whose columns have known
// containment relationships.
func tableFixture() map[string][]string {
	provinces := []string{"Ontario", "Quebec", "British Columbia", "Alberta",
		"Manitoba", "Saskatchewan", "Nova Scotia", "New Brunswick",
		"Newfoundland and Labrador", "Prince Edward Island"}
	locations := append(append([]string{}, provinces...),
		"Toronto", "Montreal", "Vancouver", "Calgary", "Edmonton",
		"Ottawa", "Winnipeg", "Halifax", "Victoria", "Regina")
	partners := []string{"Acme Mining", "Maple Software", "Northern Rail",
		"Pacific Fisheries", "Prairie Agritech", "Atlantic Shipping",
		"Arctic Research Co", "Great Lakes Energy", "Boreal Forestry",
		"Laurentian Biotech", "Cascadia Robotics", "Tundra Logistics"}
	return map[string][]string{
		"grants:province":  provinces,
		"geo:location":     locations,
		"grants:partner":   partners,
		"contracts:vendor": partners[:8],
	}
}

func buildFixture(t testing.TB) (*lshensemble.Index, *lshensemble.Hasher, map[string][]string) {
	t.Helper()
	h := lshensemble.NewHasher(256, 1)
	tables := tableFixture()
	var records []lshensemble.DomainRecord
	keys := make([]string, 0, len(tables))
	for k := range tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		records = append(records, lshensemble.SketchStrings(h, k, tables[k]))
	}
	idx, err := lshensemble.Build(records, lshensemble.Options{NumHash: 256, RMax: 8, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	return idx, h, tables
}

// queryKeys is the test shorthand for Query on an index with no pending adds.
func queryKeys(t testing.TB, idx *lshensemble.Index, sig lshensemble.Signature, size int, tStar float64) []string {
	t.Helper()
	res, err := idx.Query(sig, size, tStar)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPublicAPIEndToEnd(t *testing.T) {
	idx, h, tables := buildFixture(t)
	// provinces ⊂ locations: querying with provinces at t*=1.0 must find
	// geo:location (and the domain itself).
	q := lshensemble.SketchStrings(h, "query", tables["grants:province"])
	res := queryKeys(t, idx, q.Sig, q.Size, 1.0)
	found := map[string]bool{}
	for _, k := range res {
		found[k] = true
	}
	if !found["geo:location"] || !found["grants:province"] {
		t.Fatalf("containment search missed a superset: %v", res)
	}
	if found["grants:partner"] {
		t.Fatalf("unrelated domain retrieved at t*=1.0: %v", res)
	}
}

func TestPublicAPIPartialContainment(t *testing.T) {
	idx, h, tables := buildFixture(t)
	// vendors = partners[:8] so t(partner-query, vendor) = 8/12 ≈ 0.67.
	q := lshensemble.SketchStrings(h, "query", tables["grants:partner"])
	res := queryKeys(t, idx, q.Sig, q.Size, 0.5)
	found := map[string]bool{}
	for _, k := range res {
		found[k] = true
	}
	if !found["contracts:vendor"] {
		t.Fatalf("partial containment missed at t*=0.5: %v", res)
	}
	// At t*=0.95 the vendor column (0.67) should usually be dropped; the
	// domain itself must remain.
	res = queryKeys(t, idx, q.Sig, q.Size, 0.95)
	selfFound := false
	for _, k := range res {
		if k == "grants:partner" {
			selfFound = true
		}
	}
	if !selfFound {
		t.Fatalf("self lost at t*=0.95: %v", res)
	}
}

func TestSketchStringsDeduplicates(t *testing.T) {
	h := lshensemble.NewHasher(64, 1)
	r := lshensemble.SketchStrings(h, "k", []string{"a", "a", "b", "b", "b"})
	if r.Size != 2 {
		t.Fatalf("Size = %d, want 2 (distinct values)", r.Size)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	idx, h, tables := buildFixture(t)
	var buf bytes.Buffer
	if err := lshensemble.Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := lshensemble.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := lshensemble.SketchStrings(h, "query", tables["grants:province"])
	a := queryKeys(t, idx, q.Sig, q.Size, 0.9)
	b := queryKeys(t, loaded, q.Sig, q.Size, 0.9)
	sort.Strings(a)
	sort.Strings(b)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("round trip changed results: %v vs %v", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := lshensemble.Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBaselineAndAsymFacades(t *testing.T) {
	h := lshensemble.NewHasher(128, 1)
	tables := tableFixture()
	var records []lshensemble.DomainRecord
	for k, vals := range tables {
		records = append(records, lshensemble.SketchStrings(h, k, vals))
	}
	b, err := lshensemble.BuildBaseline(records, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := lshensemble.BuildAsym(records, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := lshensemble.SketchStrings(h, "q", tables["grants:province"])
	if res := b.Query(q.Sig, q.Size, 0.9); len(res) == 0 {
		t.Fatal("baseline found nothing")
	}
	// Asym is recall-fragile but at this tiny, low-skew scale it should
	// still find the identical domain.
	if res := a.Query(q.Sig, q.Size, 0.5); len(res) == 0 {
		t.Fatal("asym found nothing at permissive threshold")
	}
}

func TestPartitionerVariables(t *testing.T) {
	h := lshensemble.NewHasher(64, 1)
	var records []lshensemble.DomainRecord
	for i := 0; i < 40; i++ {
		vals := make([]string, 10+i)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d-%d", i, j)
		}
		records = append(records, lshensemble.SketchStrings(h, fmt.Sprintf("d%d", i), vals))
	}
	for name, pf := range map[string]lshensemble.PartitionerFunc{
		"equidepth": lshensemble.EquiDepth,
		"equiwidth": lshensemble.EquiWidth,
		"minimax":   lshensemble.Minimax,
	} {
		idx, err := lshensemble.Build(records, lshensemble.Options{
			NumHash: 64, RMax: 4, NumPartitions: 4, Partitioner: pf,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := records[0]
		res := queryKeys(t, idx, r.Sig, r.Size, 1.0)
		ok := false
		for _, k := range res {
			if k == r.Key {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("%s: self-retrieval failed", name)
		}
	}
}

func ExampleBuild() {
	hasher := lshensemble.NewHasher(256, 42)
	records := []lshensemble.DomainRecord{
		lshensemble.SketchStrings(hasher, "colors",
			[]string{"red", "green", "blue", "cyan", "magenta", "yellow", "black", "white", "orange", "purple"}),
		lshensemble.SketchStrings(hasher, "primaries",
			[]string{"red", "green", "blue"}),
	}
	index, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 2})
	if err != nil {
		panic(err)
	}
	query := lshensemble.SketchStrings(hasher, "q", []string{"red", "green", "blue"})
	matches, err := index.Query(query.Sig, query.Size, 1.0)
	if err != nil {
		panic(err)
	}
	sort.Strings(matches)
	fmt.Println(matches)
	// Output: [colors primaries]
}
