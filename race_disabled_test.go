//go:build !race

package lshensemble_test

const raceEnabled = false
