package lshensemble_test

import (
	"fmt"
	"sync"
	"testing"

	"lshensemble"
	"lshensemble/internal/datagen"
	"lshensemble/internal/minhash"
)

// TestConcurrentQueries hammers one index from many goroutines — the
// documented concurrency contract (safe for concurrent queries). Run with
// -race to validate.
func TestConcurrentQueries(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 1000, Seed: 21})
	h := minhash.NewHasher(128, 21)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.SampleQueries(corpus, 20, 21)

	// Reference results computed single-threaded.
	want := make([][]string, len(queries))
	for i, qi := range queries {
		res, err := idx.Query(recs[qi].Sig, recs[qi].Size, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (w + rep) % len(queries)
				qi := queries[i]
				got, err := idx.Query(recs[qi].Sig, recs[qi].Size, 0.5)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want[i]) {
					errs <- fmt.Errorf("worker %d: query %d returned %d results, want %d",
						w, i, len(got), len(want[i]))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentTopK exercises the top-k path concurrently (it shares the
// tuner cache across goroutines).
func TestConcurrentTopK(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 500, Seed: 22})
	h := minhash.NewHasher(128, 22)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				r := recs[(w*37+rep*11)%len(recs)]
				top, err := idx.QueryTopK(r.Sig, r.Size, 5)
				if err != nil || len(top) == 0 {
					t.Errorf("worker %d: empty top-k for self query", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentPooledScratch hammers the pooled query scratch (the
// generation-stamped visited arrays and reusable result buffers recycled
// through the index's sync.Pool) from many goroutines at once, mixing the
// Query, QueryIDs and QueryTopK entry points so scratches are constantly
// recycled across goroutines. Run with -race: the pool must never hand the
// same scratch to two in-flight queries, and results must match the
// single-threaded reference on every repetition.
func TestConcurrentPooledScratch(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 1500, Seed: 23})
	h := minhash.NewHasher(128, 23)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.SampleQueries(corpus, 30, 23)
	thresholds := []float64{0.25, 0.5, 0.75}

	want := make(map[[2]int]int) // (query, threshold) → result count
	for i, qi := range queries {
		for j, ts := range thresholds {
			ids, err := idx.QueryIDs(recs[qi].Sig, recs[qi].Size, ts)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]int{i, j}] = len(ids)
		}
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 40; rep++ {
				i := (w*7 + rep) % len(queries)
				j := (w + rep) % len(thresholds)
				qi := queries[i]
				var got int
				var qerr error
				switch rep % 3 {
				case 0:
					var ids []uint32
					ids, qerr = idx.QueryIDs(recs[qi].Sig, recs[qi].Size, thresholds[j])
					got = len(ids)
				case 1:
					var res []string
					res, qerr = idx.Query(recs[qi].Sig, recs[qi].Size, thresholds[j])
					got = len(res)
				default:
					var ids []uint32
					ids, qerr = idx.QueryIDsAppend(nil, recs[qi].Sig, recs[qi].Size, thresholds[j])
					got = len(ids)
				}
				if qerr != nil {
					errs <- qerr
					return
				}
				if got != want[[2]int{i, j}] {
					errs <- fmt.Errorf("worker %d rep %d: query %d t*=%v returned %d results, want %d",
						w, rep, i, thresholds[j], got, want[[2]int{i, j}])
					return
				}
				if rep%5 == 0 {
					if top, err := idx.QueryTopK(recs[qi].Sig, recs[qi].Size, 5); err != nil || len(top) == 0 {
						errs <- fmt.Errorf("worker %d rep %d: empty top-k for self query", w, rep)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPublicTopK(t *testing.T) {
	h := lshensemble.NewHasher(256, 1)
	var records []lshensemble.DomainRecord
	// Nested prefixes: pN contains p(N-1) ⊂ ... ⊂ p0's values.
	for i := 1; i <= 10; i++ {
		vals := make([]string, i*10)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d", j)
		}
		records = append(records, lshensemble.SketchStrings(h, fmt.Sprintf("p%d", i), vals))
	}
	idx, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := records[2] // p3, values v0..v29, contained in p3..p10
	var top []lshensemble.TopKResult
	top, err = idx.QueryTopK(q.Sig, q.Size, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d results", len(top))
	}
	if top[0].EstContainment < 0.9 {
		t.Fatalf("top-1 containment %v", top[0].EstContainment)
	}
}

// TestQueryBatchConcurrentWithReindex hammers the batch query engine from
// several goroutines while a writer keeps growing the index with
// Add+Reindex, using the documented external synchronization (queries are
// concurrent-safe with each other; Add/Reindex need exclusive access, as a
// serving system would arrange with an RWMutex). Run with -race: it
// exercises the pooled batch state, the per-worker scratches, and the
// flattened parallel tree rebuild against each other.
func TestQueryBatchConcurrentWithReindex(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 800, Seed: 24})
	h := minhash.NewHasher(128, 24)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.SampleQueries(corpus, 24, 24)
	batch := make([]lshensemble.BatchQuery, len(queries))
	for i, qi := range queries {
		batch[i] = lshensemble.BatchQuery{Sig: recs[qi].Sig, Size: recs[qi].Size, Threshold: 0.5}
	}

	var mu sync.RWMutex
	stop := make(chan struct{})
	var writerErr error
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src := recs[i%len(recs)]
			mu.Lock()
			err := idx.Add(lshensemble.DomainRecord{
				Key:  fmt.Sprintf("new-%05d", i),
				Size: src.Size,
				Sig:  src.Sig,
			})
			if err == nil {
				idx.Reindex()
			}
			mu.Unlock()
			if err != nil {
				writerErr = err
				return
			}
		}
	}()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var res lshensemble.BatchResults
			for rep := 0; rep < 30; rep++ {
				mu.RLock()
				n := uint32(idx.Len())
				switch rep % 3 {
				case 0:
					if err := idx.QueryBatchInto(&res, batch, 3); err != nil {
						mu.RUnlock()
						errs <- err
						return
					}
					for i := 0; i < res.NumRows(); i++ {
						for _, id := range res.Row(i) {
							if id >= n {
								mu.RUnlock()
								errs <- fmt.Errorf("worker %d rep %d: id %d out of range %d", w, rep, id, n)
								return
							}
						}
					}
				case 1:
					rows, err := idx.QueryBatch(batch, 2)
					if err != nil {
						mu.RUnlock()
						errs <- err
						return
					}
					if len(rows) != len(batch) {
						mu.RUnlock()
						errs <- fmt.Errorf("worker %d rep %d: %d rows", w, rep, len(rows))
						return
					}
				default:
					qi := queries[(w+rep)%len(queries)]
					ids, err := idx.ParallelQueryIDs(recs[qi].Sig, recs[qi].Size, 0.5, 4)
					if err != nil {
						mu.RUnlock()
						errs <- err
						return
					}
					seen := make(map[uint32]bool, len(ids))
					for _, id := range ids {
						if id >= n || seen[id] {
							mu.RUnlock()
							errs <- fmt.Errorf("worker %d rep %d: bad/duplicate id %d", w, rep, id)
							return
						}
						seen[id] = true
					}
				}
				mu.RUnlock()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	writerWg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLiveConcurrentChurn hammers a lshensemble.LiveIndex through the
// public API with concurrent queriers, adders, deleters AND the background
// compactor running at aggressive thresholds — the live index needs no
// external synchronization at all, unlike the RWMutex arrangement of
// TestQueryBatchConcurrentWithReindex above. Run with -race. Queries assert
// snapshot invariants (each key at most once, only keys that were ever
// added); the final compacted state is checked against a model.
func TestLiveConcurrentChurn(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 900, Seed: 26})
	h := minhash.NewHasher(128, 26)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.BuildLive(recs[:300], lshensemble.LiveOptions{
		Options:       lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 4},
		SealThreshold: 32,
		MaxSegments:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	known := make(map[string]bool, len(recs))
	for _, r := range recs {
		known[r.Key] = true
	}
	var modelMu sync.Mutex
	model := make(map[string]bool, len(recs))
	for _, r := range recs[:300] {
		model[r.Key] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 300 + a; i < len(recs); i += 2 {
				if _, err := idx.Add(recs[i]); err != nil {
					errs <- err
					return
				}
				modelMu.Lock()
				model[recs[i].Key] = true
				modelMu.Unlock()
			}
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i += 4 {
			if idx.Delete(recs[i].Key) {
				modelMu.Lock()
				delete(model, recs[i].Key)
				modelMu.Unlock()
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := make(map[string]bool, 64)
			for rep := 0; rep < 120; rep++ {
				r := recs[(w*97+rep*13)%len(recs)]
				var rows [][]string
				if rep%3 == 0 {
					rows = idx.QueryBatch([]lshensemble.BatchQuery{
						{Sig: r.Sig, Size: r.Size, Threshold: 0.5},
						{Sig: r.Sig, Size: r.Size, Threshold: 1.0},
					}, 2)
				} else {
					rows = [][]string{idx.Query(r.Sig, r.Size, 0.5)}
				}
				for _, res := range rows {
					clear(seen)
					for _, k := range res {
						if !known[k] || seen[k] {
							errs <- fmt.Errorf("worker %d rep %d: bad/duplicate key %q", w, rep, k)
							return
						}
						seen[k] = true
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	idx.Compact()
	if idx.Len() != len(model) {
		t.Fatalf("final Len %d, model %d", idx.Len(), len(model))
	}
	st := idx.Stats()
	if st.Tombstones != 0 || st.Buffered != 0 || len(st.Segments) > 1 {
		t.Fatalf("Compact left residue: %+v", st)
	}
	for i, r := range recs {
		if i%7 != 0 {
			continue
		}
		found := false
		for _, k := range idx.Query(r.Sig, r.Size, 1.0) {
			if k == r.Key {
				found = true
			}
		}
		if want := model[r.Key]; found != want {
			t.Fatalf("final state: key %q present=%v, model %v", r.Key, found, want)
		}
	}
}

// TestLiveSteadyStateAllocs proves the live fan-out keeps the PR 1/PR 2
// allocation discipline at the public API: steady-state QueryAppend with a
// reused destination against a multi-segment snapshot (sealed segments, a
// live buffer and tombstones all in play) allocates nothing.
func TestLiveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates and randomizes sync.Pool reuse")
	}
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 800, Seed: 27})
	h := minhash.NewHasher(128, 27)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.BuildLive(recs[:400], lshensemble.LiveOptions{
		Options:          lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8},
		ManualCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for _, r := range recs[400:600] {
		if _, err := idx.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	idx.Flush()
	for _, r := range recs[600:700] {
		if _, err := idx.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	idx.Flush()
	for _, r := range recs[700:750] {
		if _, err := idx.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 750; i += 31 {
		idx.Delete(recs[i].Key)
	}
	st := idx.Stats()
	if len(st.Segments) < 3 || st.Buffered == 0 || st.Tombstones == 0 {
		t.Fatalf("fixture shape wrong: %+v", st)
	}

	var dst []string
	warm := func() {
		for i := 1; i < len(recs); i += 37 {
			dst = idx.QueryAppend(dst[:0], recs[i].Sig, recs[i].Size, 0.5)
		}
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(50, func() {
		dst = idx.QueryAppend(dst[:0], recs[101].Sig, recs[101].Size, 0.5)
	})
	if allocs > 0 {
		t.Errorf("steady-state live QueryAppend allocates %.1f per query, want 0", allocs)
	}
}

// TestQueryBatchSteadyStateAllocs proves the batch serving loop performs
// zero per-query steady-state allocations: growing the batch 4x must not
// grow the allocation count, and the fixed per-dispatch overhead (worker
// spawn) must stay within a few allocations per worker.
func TestQueryBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates and randomizes sync.Pool reuse")
	}
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 1000, Seed: 25})
	h := minhash.NewHasher(128, 25)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.SampleQueries(corpus, 32, 25)
	mkBatch := func(n int) []lshensemble.BatchQuery {
		batch := make([]lshensemble.BatchQuery, n)
		for i := range batch {
			qi := queries[i%len(queries)]
			batch[i] = lshensemble.BatchQuery{Sig: recs[qi].Sig, Size: recs[qi].Size, Threshold: 0.5}
		}
		return batch
	}
	const workers = 4
	small, large := mkBatch(128), mkBatch(512)
	var res lshensemble.BatchResults
	// Warm every pool (scratches, batch state, arenas) with the largest
	// shape before measuring.
	for i := 0; i < 3; i++ {
		idx.QueryBatchInto(&res, large, workers)
		idx.QueryBatchInto(&res, small, workers)
	}
	allocsSmall := testing.AllocsPerRun(20, func() { idx.QueryBatchInto(&res, small, workers) })
	allocsLarge := testing.AllocsPerRun(20, func() { idx.QueryBatchInto(&res, large, workers) })
	perQuery := (allocsLarge - allocsSmall) / float64(len(large)-len(small))
	if perQuery > 0.01 {
		t.Errorf("batch allocations grow with batch size: %.1f (128 queries) vs %.1f (512 queries), %.3f allocs/query",
			allocsSmall, allocsLarge, perQuery)
	}
	if maxFixed := float64(4 * workers); allocsLarge > maxFixed {
		t.Errorf("per-dispatch overhead %.1f allocs exceeds %v (%d workers)", allocsLarge, maxFixed, workers)
	}
}
