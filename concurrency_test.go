package lshensemble_test

import (
	"fmt"
	"sync"
	"testing"

	"lshensemble"
	"lshensemble/internal/datagen"
	"lshensemble/internal/minhash"
)

// TestConcurrentQueries hammers one index from many goroutines — the
// documented concurrency contract (safe for concurrent queries). Run with
// -race to validate.
func TestConcurrentQueries(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 1000, Seed: 21})
	h := minhash.NewHasher(128, 21)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.SampleQueries(corpus, 20, 21)

	// Reference results computed single-threaded.
	want := make([][]string, len(queries))
	for i, qi := range queries {
		want[i] = idx.Query(recs[qi].Sig, recs[qi].Size, 0.5)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (w + rep) % len(queries)
				qi := queries[i]
				got := idx.Query(recs[qi].Sig, recs[qi].Size, 0.5)
				if len(got) != len(want[i]) {
					errs <- fmt.Errorf("worker %d: query %d returned %d results, want %d",
						w, i, len(got), len(want[i]))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentTopK exercises the top-k path concurrently (it shares the
// tuner cache across goroutines).
func TestConcurrentTopK(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 500, Seed: 22})
	h := minhash.NewHasher(128, 22)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				r := recs[(w*37+rep*11)%len(recs)]
				top := idx.QueryTopK(r.Sig, r.Size, 5)
				if len(top) == 0 {
					t.Errorf("worker %d: empty top-k for self query", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentPooledScratch hammers the pooled query scratch (the
// generation-stamped visited arrays and reusable result buffers recycled
// through the index's sync.Pool) from many goroutines at once, mixing the
// Query, QueryIDs and QueryTopK entry points so scratches are constantly
// recycled across goroutines. Run with -race: the pool must never hand the
// same scratch to two in-flight queries, and results must match the
// single-threaded reference on every repetition.
func TestConcurrentPooledScratch(t *testing.T) {
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 1500, Seed: 23})
	h := minhash.NewHasher(128, 23)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.Build(recs, lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.SampleQueries(corpus, 30, 23)
	thresholds := []float64{0.25, 0.5, 0.75}

	want := make(map[[2]int]int) // (query, threshold) → result count
	for i, qi := range queries {
		for j, ts := range thresholds {
			want[[2]int{i, j}] = len(idx.QueryIDs(recs[qi].Sig, recs[qi].Size, ts))
		}
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 40; rep++ {
				i := (w*7 + rep) % len(queries)
				j := (w + rep) % len(thresholds)
				qi := queries[i]
				var got int
				switch rep % 3 {
				case 0:
					got = len(idx.QueryIDs(recs[qi].Sig, recs[qi].Size, thresholds[j]))
				case 1:
					got = len(idx.Query(recs[qi].Sig, recs[qi].Size, thresholds[j]))
				default:
					ids := idx.QueryIDsAppend(nil, recs[qi].Sig, recs[qi].Size, thresholds[j])
					got = len(ids)
				}
				if got != want[[2]int{i, j}] {
					errs <- fmt.Errorf("worker %d rep %d: query %d t*=%v returned %d results, want %d",
						w, rep, i, thresholds[j], got, want[[2]int{i, j}])
					return
				}
				if rep%5 == 0 {
					if top := idx.QueryTopK(recs[qi].Sig, recs[qi].Size, 5); len(top) == 0 {
						errs <- fmt.Errorf("worker %d rep %d: empty top-k for self query", w, rep)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPublicTopK(t *testing.T) {
	h := lshensemble.NewHasher(256, 1)
	var records []lshensemble.DomainRecord
	// Nested prefixes: pN contains p(N-1) ⊂ ... ⊂ p0's values.
	for i := 1; i <= 10; i++ {
		vals := make([]string, i*10)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d", j)
		}
		records = append(records, lshensemble.SketchStrings(h, fmt.Sprintf("p%d", i), vals))
	}
	idx, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := records[2] // p3, values v0..v29, contained in p3..p10
	var top []lshensemble.TopKResult = idx.QueryTopK(q.Sig, q.Size, 3)
	if len(top) != 3 {
		t.Fatalf("got %d results", len(top))
	}
	if top[0].EstContainment < 0.9 {
		t.Fatalf("top-1 containment %v", top[0].EstContainment)
	}
}
