module lshensemble

go 1.22
