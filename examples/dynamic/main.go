// Dynamic-data demo (paper Section 6.2), now on the live index: the corpus
// churns — drifted batches stream in through Add, stale domains leave
// through Delete — while the index stays queryable the whole time. The
// background compactor seals the ingest buffer into segments and merges
// them as they accumulate; no stop-the-world Reindex ever runs. Partition
// balance still drifts (each sealed segment re-partitions only its own
// slice), and a full Compact — the live replacement for the old rebuild —
// restores equi-depth balance over the surviving corpus.
//
//	go run ./examples/dynamic [-n 2000] [-batches 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"lshensemble"
	"lshensemble/internal/datagen"
	"lshensemble/internal/eval"
	"lshensemble/internal/exact"
	"lshensemble/internal/minhash"
)

func measure(idx *lshensemble.LiveIndex, corpus *datagen.Corpus,
	records []lshensemble.DomainRecord, nq int) (prec, rec float64) {
	engine := exact.Build(datagen.ExactDomains(corpus))
	queries := datagen.SampleQueries(corpus, nq, 11)
	var avg eval.Averager
	for _, qi := range queries {
		truth := engine.Truth(corpus.Domains[qi].Values, 0.5)
		res := idx.Query(records[qi].Sig, records[qi].Size, 0.5)
		p, r, empty := eval.PR(res, truth)
		avg.Add(p, r, empty)
	}
	return avg.Precision(), avg.Recall()
}

func describe(st lshensemble.LiveStats) string {
	return fmt.Sprintf("%d domains in %d segments (+%d buffered, %d tombstones, %d seals/%d merges)",
		st.Domains, len(st.Segments), st.Buffered, st.Tombstones, st.Seals, st.Merges)
}

func main() {
	n := flag.Int("n", 2000, "initial corpus size")
	batches := flag.Int("batches", 4, "number of drifted insert batches")
	flag.Parse()

	hasher := minhash.NewHasher(256, 11)
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: *n, Seed: 11})
	records := datagen.Records(corpus, hasher)

	idx, err := lshensemble.BuildLive(records, lshensemble.LiveOptions{
		Options:       lshensemble.Options{NumPartitions: 16},
		SealThreshold: *n / 4, // several seals per drifted batch
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	p, r := measure(idx, corpus, records, 50)
	fmt.Printf("initial: %s, P=%.3f R=%.3f\n", describe(idx.Stats()), p, r)

	// Stream in batches whose sizes are drawn from a *heavier* distribution
	// (alpha 1.5 instead of 2.0), while retiring a slice of the oldest
	// domains — ingest and deletes never block the measurement queries
	// above, and the compactor seals behind the stream.
	for b := 1; b <= *batches; b++ {
		drift := datagen.OpenData(datagen.OpenDataConfig{
			NumDomains: *n / 2, Alpha: 1.5, Seed: uint64(100 + b),
		})
		driftRecs := datagen.Records(drift, hasher)
		for i := range driftRecs {
			key := fmt.Sprintf("batch%d-%s", b, driftRecs[i].Key)
			driftRecs[i].Key = key
			drift.Domains[i].Key = key
			if _, err := idx.Add(driftRecs[i]); err != nil {
				log.Fatal(err)
			}
		}
		corpus.Domains = append(corpus.Domains, drift.Domains...)
		records = append(records, driftRecs...)

		// Retire every 10th domain of the previous generation. The exact
		// engine's ground truth must retire them too, so precision/recall
		// keep comparing the index against the *surviving* corpus.
		retired := 0
		for i := 0; i < len(corpus.Domains); i += 10 {
			if idx.Delete(corpus.Domains[i].Key) {
				retired++
				corpus.Domains[i] = datagen.Domain{}
			}
		}
		live := corpus.Domains[:0]
		liveRecs := records[:0]
		for i, d := range corpus.Domains {
			if d.Key != "" {
				live = append(live, d)
				liveRecs = append(liveRecs, records[i])
			}
		}
		corpus.Domains = live
		records = liveRecs

		idx.Flush() // drain the buffer so the printed shape is all segments
		p, r := measure(idx, corpus, records, 50)
		fmt.Printf("after batch %d (retired %d): %s, P=%.3f R=%.3f\n",
			b, retired, describe(idx.Stats()), p, r)
	}

	// Full compaction replaces the old stop-the-world rebuild: one segment,
	// equi-depth re-partitioned over the surviving corpus, tombstones gone —
	// and queries kept flowing the whole time.
	idx.Compact()
	p, r = measure(idx, corpus, records, 50)
	fmt.Printf("compacted: %s, P=%.3f R=%.3f\n", describe(idx.Stats()), p, r)

	// What the query planner did across all the measurement runs above:
	// segments ruled out by size range or the collision Bloom filter were
	// never probed, and repeated (b, r) tunings came from the plan cache.
	st := idx.Stats()
	pl := st.Planner
	decisions := pl.SegmentsProbed + pl.SegmentsRangePruned + pl.SegmentsBloomPruned
	fmt.Printf("planner: %d/%d segment visits pruned (%d by size range, %d by Bloom), "+
		"plan cache %d hits/%d misses, result cache %d hits/%d misses\n",
		pl.SegmentsRangePruned+pl.SegmentsBloomPruned, decisions,
		pl.SegmentsRangePruned, pl.SegmentsBloomPruned,
		pl.PlanHits, pl.PlanMisses, pl.ResultHits, pl.ResultMisses)
	for i, d := range st.SegmentDetail {
		fmt.Printf("  segment %d: %d entries, sizes [%d, %d], max bound %d, bloom %s\n",
			i, d.Entries, d.MinSize, d.MaxSize, d.MaxBound, byteCount(d.BloomBytes))
	}
}

func byteCount(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
