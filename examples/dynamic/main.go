// Dynamic-data demo (paper Section 6.2): an LSH Ensemble built with
// equi-depth partitioning keeps working as new domains with a *different*
// size distribution stream in — partition sizes drift away from equi-depth,
// but accuracy degrades only gradually, and a rebuild restores the balance.
//
//	go run ./examples/dynamic [-n 2000] [-batches 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"lshensemble"
	"lshensemble/internal/datagen"
	"lshensemble/internal/eval"
	"lshensemble/internal/exact"
	"lshensemble/internal/minhash"
	"lshensemble/internal/partition"
)

func measure(idx *lshensemble.Index, corpus *datagen.Corpus,
	records []lshensemble.DomainRecord, nq int) (prec, rec float64) {
	engine := exact.Build(datagen.ExactDomains(corpus))
	queries := datagen.SampleQueries(corpus, nq, 11)
	var avg eval.Averager
	for _, qi := range queries {
		truth := engine.Truth(corpus.Domains[qi].Values, 0.5)
		res := idx.Query(records[qi].Sig, records[qi].Size, 0.5)
		p, r, empty := eval.PR(res, truth)
		avg.Add(p, r, empty)
	}
	return avg.Precision(), avg.Recall()
}

func main() {
	n := flag.Int("n", 2000, "initial corpus size")
	batches := flag.Int("batches", 4, "number of drifted insert batches")
	flag.Parse()

	hasher := minhash.NewHasher(256, 11)
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: *n, Seed: 11})
	records := datagen.Records(corpus, hasher)

	idx, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		log.Fatal(err)
	}
	p, r := measure(idx, corpus, records, 50)
	fmt.Printf("initial: %d domains, partition-count stddev %.1f, P=%.3f R=%.3f\n",
		idx.Len(), partition.CountStdDev(idx.PartitionBounds()), p, r)

	// Stream in batches whose sizes are drawn from a *heavier* distribution
	// (alpha 1.5 instead of 2.0): the equi-depth partitioning was not built
	// for these, so partition counts drift apart.
	for b := 1; b <= *batches; b++ {
		drift := datagen.OpenData(datagen.OpenDataConfig{
			NumDomains: *n / 2, Alpha: 1.5, Seed: uint64(100 + b),
		})
		driftRecs := datagen.Records(drift, hasher)
		for i := range driftRecs {
			key := fmt.Sprintf("batch%d-%s", b, driftRecs[i].Key)
			driftRecs[i].Key = key
			drift.Domains[i].Key = key
			if err := idx.Add(driftRecs[i]); err != nil {
				log.Fatal(err)
			}
		}
		idx.Reindex()
		corpus.Domains = append(corpus.Domains, drift.Domains...)
		records = append(records, driftRecs...)
		p, r := measure(idx, corpus, records, 50)
		fmt.Printf("after batch %d: %d domains, partition-count stddev %.1f, P=%.3f R=%.3f\n",
			b, idx.Len(), partition.CountStdDev(idx.PartitionBounds()), p, r)
	}

	// Rebuild: repartitioning restores equi-depth balance.
	rebuilt, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		log.Fatal(err)
	}
	p, r = measure(rebuilt, corpus, records, 50)
	fmt.Printf("rebuilt: %d domains, partition-count stddev %.1f, P=%.3f R=%.3f\n",
		rebuilt.Len(), partition.CountStdDev(rebuilt.PartitionBounds()), p, r)
}
