// Web-table scaling demo: build a sharded LSH Ensemble over a WDC-like
// corpus (power-law sizes) and measure indexing throughput and query
// latency — a laptop-scale version of the paper's Table 4 / Figure 9
// deployment, with 5 in-process shards standing in for the 5-node cluster.
//
//	go run ./examples/webtables [-n 50000] [-shards 5] [-partitions 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"lshensemble"
	"lshensemble/internal/datagen"
	"lshensemble/internal/minhash"
)

func main() {
	n := flag.Int("n", 50000, "number of domains")
	shards := flag.Int("shards", 5, "number of index shards (simulated nodes)")
	partitions := flag.Int("partitions", 16, "partitions per shard")
	nq := flag.Int("queries", 100, "number of sampled queries")
	flag.Parse()

	fmt.Printf("generating %d web-table-like domains...\n", *n)
	corpus := datagen.WebTable(datagen.WebTableConfig{NumDomains: *n, Seed: 3})
	hasher := minhash.NewHasher(256, 3)

	start := time.Now()
	records := datagen.Records(corpus, hasher)
	sketching := time.Since(start)

	start = time.Now()
	var indexes []*lshensemble.Index
	chunk := (len(records) + *shards - 1) / *shards
	for lo := 0; lo < len(records); lo += chunk {
		hi := lo + chunk
		if hi > len(records) {
			hi = len(records)
		}
		idx, err := lshensemble.Build(records[lo:hi], lshensemble.Options{NumPartitions: *partitions})
		if err != nil {
			log.Fatal(err)
		}
		indexes = append(indexes, idx)
	}
	building := time.Since(start)
	fmt.Printf("sketching: %s, index build: %s (%d shards × %d partitions)\n",
		sketching.Round(time.Millisecond), building.Round(time.Millisecond),
		len(indexes), *partitions)

	queryAll := func(sig lshensemble.Signature, size int, t float64) []string {
		results := make([][]string, len(indexes))
		var wg sync.WaitGroup
		for i, idx := range indexes {
			wg.Add(1)
			go func(i int, idx *lshensemble.Index) {
				defer wg.Done()
				results[i], _ = idx.Query(sig, size, t)
			}(i, idx)
		}
		wg.Wait()
		var out []string
		for _, r := range results {
			out = append(out, r...)
		}
		return out
	}

	queries := datagen.SampleQueries(corpus, *nq, 3)
	start = time.Now()
	total := 0
	for _, qi := range queries {
		total += len(queryAll(records[qi].Sig, records[qi].Size, 0.5))
	}
	elapsed := time.Since(start)
	fmt.Printf("%d queries at t*=0.5: mean latency %s, mean candidates %.1f\n",
		len(queries), (elapsed / time.Duration(len(queries))).Round(time.Microsecond),
		float64(total)/float64(len(queries)))
}
