// Open-data joinable-table discovery: generate an open-data-like corpus
// (power-law sizes, planted joinable clusters), build the LSH Ensemble and
// both paper baselines, and compare their accuracy against exact ground
// truth — a miniature of the paper's Figure 4 — then show an actual
// join-discovery query.
//
//	go run ./examples/opendata [-n 3000] [-queries 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"lshensemble"
	"lshensemble/internal/datagen"
	"lshensemble/internal/eval"
	"lshensemble/internal/exact"
	"lshensemble/internal/minhash"
)

func main() {
	n := flag.Int("n", 3000, "number of domains")
	nq := flag.Int("queries", 60, "number of sampled queries")
	flag.Parse()

	fmt.Printf("generating %d open-data-like domains...\n", *n)
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: *n, Seed: 7})
	hasher := minhash.NewHasher(256, 7)
	records := datagen.Records(corpus, hasher)

	ensemble, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		log.Fatal(err)
	}
	base, err := lshensemble.BuildBaseline(records, 256, 8)
	if err != nil {
		log.Fatal(err)
	}
	asymIdx, err := lshensemble.BuildAsym(records, 256, 8)
	if err != nil {
		log.Fatal(err)
	}

	engine := exact.Build(datagen.ExactDomains(corpus))
	queries := datagen.SampleQueries(corpus, *nq, 7)

	fmt.Println("\naccuracy vs exact ground truth (mini Figure 4):")
	fmt.Println("system              t*    precision  recall")
	for _, tStar := range []float64{0.3, 0.5, 0.8} {
		for _, sys := range []struct {
			name  string
			query func(sig lshensemble.Signature, size int, t float64) []string
		}{
			{"Baseline", base.Query},
			{"Asym", asymIdx.Query},
			// The ensemble is built once and never grows here, so the
			// pending-adds error can be dropped.
			{"LSH Ensemble (16)", func(sig lshensemble.Signature, size int, t float64) []string {
				res, _ := ensemble.Query(sig, size, t)
				return res
			}},
		} {
			var avg eval.Averager
			for _, qi := range queries {
				truth := engine.Truth(corpus.Domains[qi].Values, tStar)
				res := sys.query(records[qi].Sig, records[qi].Size, tStar)
				p, r, empty := eval.PR(res, truth)
				avg.Add(p, r, empty)
			}
			fmt.Printf("%-18s  %.1f   %.3f      %.3f\n", sys.name, tStar, avg.Precision(), avg.Recall())
		}
	}

	// Join discovery for one concrete query domain.
	qi := queries[0]
	fmt.Printf("\njoinable domains for %s (%d values) at t* = 0.5:\n",
		corpus.Domains[qi].Key, len(corpus.Domains[qi].Values))
	matches, err := ensemble.Query(records[qi].Sig, records[qi].Size, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	scores := engine.Scores(corpus.Domains[qi].Values)
	byKey := map[string]float64{}
	for id, s := range scores {
		byKey[engine.Key(id)] = s
	}
	sort.Slice(matches, func(a, b int) bool { return byKey[matches[a]] > byKey[matches[b]] })
	for i, m := range matches {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(matches)-10)
			break
		}
		fmt.Printf("  %-12s exact containment %.2f\n", m, byKey[m])
	}
}
