// Quickstart: index a handful of string domains and run a containment
// query through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"lshensemble"
)

func main() {
	// One hash family for everything — index and queries must share it.
	hasher := lshensemble.NewHasher(256, 42)

	domains := map[string][]string{
		"provinces": {"Alberta", "Ontario", "Manitoba"},
		"locations": {"Illinois", "Chicago", "New York City", "New York",
			"Nova Scotia", "Halifax", "California", "San Francisco",
			"Seattle", "Washington", "Ontario", "Toronto"},
		"partners": {"Acme Mining", "Maple Software", "Northern Rail",
			"Pacific Fisheries", "Prairie Agritech", "Atlantic Shipping"},
	}

	var records []lshensemble.DomainRecord
	keys := make([]string, 0, len(domains))
	for k := range domains {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		records = append(records, lshensemble.SketchStrings(hasher, k, domains[k]))
	}

	index, err := lshensemble.Build(records, lshensemble.Options{NumPartitions: 2})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's running example: Q = {Ontario, Toronto}. Jaccard would
	// rank "provinces" above "locations"; containment correctly prefers
	// "locations", which holds all of Q. The index returns *candidates*
	// (it may include false positives); verify them with the exact score,
	// as a real pipeline would.
	q := []string{"Ontario", "Toronto"}
	query := lshensemble.SketchStrings(hasher, "Q", q)
	for _, t := range []float64{1.0, 0.5} {
		matches, err := index.Query(query.Sig, query.Size, t)
		if err != nil {
			log.Fatal(err)
		}
		sort.Strings(matches)
		fmt.Printf("t* = %.1f → candidates %v", t, matches)
		var verified []string
		for _, m := range matches {
			if containment(q, domains[m]) >= t {
				verified = append(verified, m)
			}
		}
		fmt.Printf(", verified %v\n", verified)
	}
}

// containment computes t(Q, X) = |Q ∩ X| / |Q| exactly.
func containment(q, x []string) float64 {
	set := make(map[string]bool, len(x))
	for _, v := range x {
		set[v] = true
	}
	hit := 0
	for _, v := range q {
		if set[v] {
			hit++
		}
	}
	return float64(hit) / float64(len(q))
}
