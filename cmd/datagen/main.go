// Command datagen emits a synthetic domain corpus as CSV files, one table
// per joinable cluster, so the lshed CLI and the examples can be exercised
// against realistic data without the (bulk-download-only) Open Data
// corpora the paper uses.
//
// Usage:
//
//	datagen -kind opendata -n 2000 -out ./corpus
//	datagen -kind webtable -n 10000 -out ./corpus
//
// Each output CSV holds one domain per column (padded with empty cells);
// values are rendered as v<id> strings.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lshensemble/internal/datagen"
)

func main() {
	kind := flag.String("kind", "opendata", "corpus kind: opendata | webtable")
	n := flag.Int("n", 2000, "number of domains")
	out := flag.String("out", "corpus", "output directory")
	seed := flag.Uint64("seed", 1, "generator seed")
	perFile := flag.Int("perfile", 8, "domains per CSV file")
	flag.Parse()

	var corpus *datagen.Corpus
	switch *kind {
	case "opendata":
		corpus = datagen.OpenData(datagen.OpenDataConfig{NumDomains: *n, Seed: *seed})
	case "webtable":
		corpus = datagen.WebTable(datagen.WebTableConfig{NumDomains: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := write(corpus, *out, *perFile); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d domains to %s\n", len(corpus.Domains), *out)
}

func write(corpus *datagen.Corpus, dir string, perFile int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for fileIdx, lo := 0, 0; lo < len(corpus.Domains); fileIdx, lo = fileIdx+1, lo+perFile {
		hi := lo + perFile
		if hi > len(corpus.Domains) {
			hi = len(corpus.Domains)
		}
		if err := writeTable(corpus.Domains[lo:hi], filepath.Join(dir, fmt.Sprintf("table%04d.csv", fileIdx))); err != nil {
			return err
		}
	}
	return nil
}

func writeTable(domains []datagen.Domain, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, len(domains))
	rows := 0
	for i, d := range domains {
		header[i] = d.Key
		if len(d.Values) > rows {
			rows = len(d.Values)
		}
	}
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(domains))
	for r := 0; r < rows; r++ {
		for i, d := range domains {
			if r < len(d.Values) {
				rec[i] = fmt.Sprintf("v%x", d.Values[r])
			} else {
				rec[i] = ""
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
