// Command lshed is a domain-search tool over directories of CSV tables,
// the end-to-end scenario motivating the paper: find columns in a data
// lake that maximally contain a query column, i.e. joinable tables.
//
// Usage:
//
//	lshed index  -data <dir> [-out index.bin] [-partitions 16] [-hashes 256] [-minsize 10]
//	lshed query  -index index.bin -file <table.csv> -column <name> [-t 0.7]
//	lshed query  -index index.bin -file <table.csv> -batch [-workers N] [-t 0.7]   (every column, one dispatch)
//	lshed search -data <dir> -file <table.csv> -column <name> [-t 0.7]   (index + query in one shot)
//	lshed stats  -index index.bin
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"lshensemble"
	"lshensemble/internal/par"
	"lshensemble/internal/segfile"
	"lshensemble/internal/tabular"
)

// hashSeed fixes the hash family so saved indexes and later queries agree.
const hashSeed = 0x15e4e5e3b1e

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "index":
		err = cmdIndex(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lshed:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `lshed — containment search over CSV data lakes (LSH Ensemble)

subcommands:
  index   build an index over every column of every CSV in a directory
  query   search a saved index with one column of a CSV file
  search  index a directory and query it in one invocation
  stats   print a saved index's shape

run "lshed <subcommand> -h" for flags`)
}

// sketchColumns sketches every column with a worker pool — column sketching
// is embarrassingly parallel and dominates indexing wall-clock on wide data
// lakes.
func sketchColumns(h *lshensemble.Hasher, cols []tabular.Column) []lshensemble.DomainRecord {
	recs := make([]lshensemble.DomainRecord, len(cols))
	par.Drain(len(cols), 0, func(_, i int) {
		recs[i] = lshensemble.SketchStrings(h, cols[i].Key, cols[i].Values)
	})
	return recs
}

func buildRecords(dir string, minSize, numHash int) ([]lshensemble.DomainRecord, *lshensemble.Hasher, error) {
	cols, err := tabular.FromDir(dir, tabular.Options{MinSize: minSize})
	if err != nil {
		return nil, nil, err
	}
	if len(cols) == 0 {
		return nil, nil, fmt.Errorf("no usable columns found in %s", dir)
	}
	h := lshensemble.NewHasher(numHash, hashSeed)
	return sketchColumns(h, cols), h, nil
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	data := fs.String("data", "", "directory of CSV files (required)")
	out := fs.String("out", "index.bin", "output index file")
	partitions := fs.Int("partitions", 16, "number of cardinality partitions")
	hashes := fs.Int("hashes", 256, "MinHash signature length")
	minSize := fs.Int("minsize", 10, "discard columns with fewer distinct values")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	start := time.Now()
	recs, _, err := buildRecords(*data, *minSize, *hashes)
	if err != nil {
		return err
	}
	idx, err := lshensemble.Build(recs, lshensemble.Options{
		NumHash: *hashes, NumPartitions: *partitions,
	})
	if err != nil {
		return err
	}
	// Crash-safe write (temp + fsync + atomic rename): an interrupted run
	// leaves either the previous index file or the new one, never a torn mix.
	var buf bytes.Buffer
	if err := lshensemble.Save(&buf, idx); err != nil {
		return err
	}
	if err := segfile.WriteAtomic(*out, buf.Bytes()); err != nil {
		return err
	}
	fmt.Printf("indexed %d domains into %d partitions in %s → %s\n",
		idx.Len(), idx.NumPartitions(), time.Since(start).Round(time.Millisecond), *out)
	return nil
}

func loadQueryColumn(file, column string) ([]string, error) {
	cols, err := tabular.FromFile(file, tabular.Options{MinSize: -1})
	if err != nil {
		return nil, err
	}
	var names []string
	for _, c := range cols {
		names = append(names, c.Key)
		if keyColumn(c.Key) == column {
			return c.Values, nil
		}
	}
	return nil, fmt.Errorf("column %q not found in %s (have %v)", column, file, names)
}

// keyColumn strips the "<table>:" prefix from a domain key.
func keyColumn(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == ':' {
			return key[i+1:]
		}
	}
	return key
}

func runQuery(idx *lshensemble.Index, h *lshensemble.Hasher, file, column string, t float64) error {
	values, err := loadQueryColumn(file, column)
	if err != nil {
		return err
	}
	q := lshensemble.SketchStrings(h, "query", values)
	start := time.Now()
	matches, err := idx.Query(q.Sig, q.Size, t)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	sort.Strings(matches)
	fmt.Printf("query %s:%s (%d distinct values), t* = %.2f → %d candidates in %s\n",
		file, column, q.Size, t, len(matches), elapsed.Round(time.Microsecond))
	for _, m := range matches {
		fmt.Println("  ", m)
	}
	return nil
}

// runBatchQuery sketches every column of the file and answers them in one
// QueryBatch dispatch — the high-throughput serving path.
func runBatchQuery(idx *lshensemble.Index, h *lshensemble.Hasher, file string, t float64, workers int) error {
	cols, err := tabular.FromFile(file, tabular.Options{MinSize: -1})
	if err != nil {
		return err
	}
	if len(cols) == 0 {
		return fmt.Errorf("no columns found in %s", file)
	}
	recs := sketchColumns(h, cols)
	queries := make([]lshensemble.BatchQuery, len(recs))
	for i, r := range recs {
		queries[i] = lshensemble.BatchQuery{Sig: r.Sig, Size: r.Size, Threshold: t}
	}
	start := time.Now()
	rows, err := idx.QueryBatch(queries, workers)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	total := 0
	for _, row := range rows {
		total += len(row)
	}
	qps := "-"
	if secs := elapsed.Seconds(); secs > 0 {
		qps = fmt.Sprintf("%.0f queries/s", float64(len(queries))/secs)
	}
	fmt.Printf("batch %s: %d columns, t* = %.2f → %d candidates in %s (%s)\n",
		file, len(queries), t, total, elapsed.Round(time.Microsecond), qps)
	for i, row := range rows {
		matches := make([]string, len(row))
		for j, id := range row {
			matches[j] = idx.Key(id)
		}
		sort.Strings(matches)
		fmt.Printf("  %s (%d distinct values) → %d candidates\n", cols[i].Key, recs[i].Size, len(row))
		for _, m := range matches {
			fmt.Println("    ", m)
		}
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	index := fs.String("index", "index.bin", "index file written by lshed index")
	file := fs.String("file", "", "CSV file holding the query column (required)")
	column := fs.String("column", "", "query column name (required unless -batch)")
	t := fs.Float64("t", 0.7, "containment threshold t*")
	batch := fs.Bool("batch", false, "query every column of -file in one batch dispatch")
	workers := fs.Int("workers", 0, "batch query workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *file == "" || (*column == "" && !*batch) {
		return fmt.Errorf("-file and -column are required (or -file with -batch)")
	}
	f, err := os.Open(*index)
	if err != nil {
		return err
	}
	defer f.Close()
	idx, err := lshensemble.Load(f)
	if err != nil {
		return err
	}
	h := lshensemble.NewHasher(idx.Options().NumHash, hashSeed)
	if *batch {
		return runBatchQuery(idx, h, *file, *t, *workers)
	}
	return runQuery(idx, h, *file, *column, *t)
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	data := fs.String("data", "", "directory of CSV files (required)")
	file := fs.String("file", "", "CSV file holding the query column (required)")
	column := fs.String("column", "", "query column name (required unless -batch)")
	t := fs.Float64("t", 0.7, "containment threshold t*")
	partitions := fs.Int("partitions", 16, "number of cardinality partitions")
	hashes := fs.Int("hashes", 256, "MinHash signature length")
	minSize := fs.Int("minsize", 10, "discard columns with fewer distinct values")
	batch := fs.Bool("batch", false, "query every column of -file in one batch dispatch")
	workers := fs.Int("workers", 0, "batch query workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *data == "" || *file == "" || (*column == "" && !*batch) {
		return fmt.Errorf("-data, -file and -column are required (or -file with -batch)")
	}
	recs, h, err := buildRecords(*data, *minSize, *hashes)
	if err != nil {
		return err
	}
	idx, err := lshensemble.Build(recs, lshensemble.Options{
		NumHash: *hashes, NumPartitions: *partitions,
	})
	if err != nil {
		return err
	}
	if *batch {
		return runBatchQuery(idx, h, *file, *t, *workers)
	}
	return runQuery(idx, h, *file, *column, *t)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	index := fs.String("index", "index.bin", "index file")
	fs.Parse(args)
	f, err := os.Open(*index)
	if err != nil {
		return err
	}
	defer f.Close()
	idx, err := lshensemble.Load(f)
	if err != nil {
		return err
	}
	o := idx.Options()
	fmt.Printf("domains:    %d\n", idx.Len())
	fmt.Printf("hashes:     %d (rMax %d)\n", o.NumHash, o.RMax)
	fmt.Printf("partitions: %d\n", idx.NumPartitions())
	for i, p := range idx.PartitionBounds() {
		fmt.Printf("  %2d: sizes [%d, %d], %d domains\n", i, p.Lower, p.Upper, p.Count)
	}
	return nil
}
