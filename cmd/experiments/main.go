// Command experiments reproduces every table and figure of the paper's
// evaluation (Section 6). Each experiment prints its rows in the shape the
// paper reports; EXPERIMENTS.md records a reference run next to the
// paper's own numbers.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig4 -n 65533 -queries 3000     (paper-scale accuracy run)
//	experiments -run tab4 -n 1000000                 (scale the performance corpus)
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 tab3 tab4
// frontier (accuracy-vs-bytes sweep over sketch backends; prints one JSON
// summary line per backend at t*=0.5, the shape committed as BENCH_10.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lshensemble/internal/expt"
)

func main() {
	run := flag.String("run", "all", "experiment id (fig1..fig10, tab3, tab4) or 'all'")
	n := flag.Int("n", 0, "number of domains for accuracy experiments (default 4000)")
	perfN := flag.Int("perfn", 0, "number of domains for performance experiments (default 100000)")
	queries := flag.Int("queries", 0, "number of queries (default 100 accuracy / 50 performance)")
	seed := flag.Uint64("seed", 1, "corpus seed")
	flag.Parse()

	acc := expt.AccuracyConfig{NumDomains: *n, NumQueries: *queries, Seed: *seed}
	perf := expt.PerfConfig{NumDomains: *perfN, NumQueries: *queries, Seed: *seed}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = []string{"tab3", "fig1", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "tab4", "frontier"}
	}
	for _, id := range ids {
		if err := runOne(strings.TrimSpace(id), acc, perf); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runOne(id string, acc expt.AccuracyConfig, perf expt.PerfConfig) error {
	start := time.Now()
	switch id {
	case "tab3":
		header("Table 3: experimental variables")
		for _, r := range expt.RunTab3(acc, perf) {
			fmt.Printf("  %-42s %s\n", r.Variable, r.Value)
		}
	case "fig1":
		header("Figure 1: domain size distributions (log2 buckets)")
		rows, aOpen, aWeb := expt.RunFig1(expt.Fig1Config{Seed: acc.Seed})
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		fmt.Printf("  power-law exponent (MLE): opendata α=%.2f, webtable α=%.2f\n", aOpen, aWeb)
	case "fig2":
		header("Figure 2: containment→Jaccard conversion (u=3, x=1, q=1)")
		rows, tStar, sStar, tx := expt.RunFig2()
		for i := 0; i < len(rows); i += 4 {
			r := rows[i]
			fmt.Printf("  t=%.2f  s_x,q=%.4f  s_u,q=%.4f\n", r.T, r.SxQ, r.SuQ)
		}
		fmt.Printf("  t*=%.2f → s*=%.4f, effective threshold t_x=%.4f\n", tStar, sStar, tx)
	case "fig3":
		header("Figure 3: P(t|x=10,q=5,b=256,r=4) with FP/FN areas (t*=0.5)")
		rows, fp, fn := expt.RunFig3()
		for i := 0; i < len(rows); i += 5 {
			fmt.Printf("  t=%.2f  P=%.4f\n", rows[i].T, rows[i].P)
		}
		fmt.Printf("  FP area=%.4f  FN area=%.4f\n", fp, fn)
	case "fig4":
		header("Figure 4: accuracy vs containment threshold (Canadian-Open-Data-like)")
		rows, err := expt.RunFig4(acc)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case "fig5":
		header("Figure 5: accuracy vs domain size skewness")
		rows, err := expt.RunFig5(expt.Fig5Config{AccuracyConfig: acc})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case "fig6":
		header("Figure 6: accuracy, largest-10% queries")
		rows, err := expt.RunFig6(acc)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case "fig7":
		header("Figure 7: accuracy, smallest-10% queries")
		rows, err := expt.RunFig7(acc)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case "fig8":
		header("Figure 8: accuracy vs std. dev. of partition sizes (equi-depth→equi-width)")
		rows, err := expt.RunFig8(expt.Fig8Config{AccuracyConfig: acc})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case "fig9":
		header("Figure 9: indexing and mean query cost vs corpus size (WDC-like)")
		rows, err := expt.RunFig9(perf)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case "fig10":
		header("Figure 10: Asymmetric Minwise Hashing recall collapse (q=1, b=256, r=1)")
		for _, r := range expt.RunFig10() {
			fmt.Println(" ", r)
		}
	case "tab4":
		header("Table 4: indexing and query cost, Baseline vs LSH Ensemble (5 shards)")
		rows, err := expt.RunTab4(perf)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case "frontier":
		header("Accuracy-vs-bytes frontier: sketch backends at fixed partitioning")
		rows, err := expt.RunSketchFrontier(expt.SketchConfig{AccuracyConfig: acc})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		// One machine-readable line per backend at the t*=0.5 default — the
		// shape tracked as BENCH_10.json in the repo root.
		for _, r := range rows {
			if r.Threshold == 0.5 {
				fmt.Printf("{\"bench\":\"BENCH_10\",\"system\":%q,\"bytes_per_domain\":%.1f,\"threshold\":%.2f,\"precision\":%.3f,\"recall\":%.3f,\"f1\":%.3f}\n",
					r.System, r.BytesPerDomain, r.Threshold, r.Precision, r.Recall, r.F1)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	fmt.Printf("  [%s in %s]\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
