// Command lshload is a closed-loop load generator for an lshensembled
// daemon or an lshrouter fleet — both speak the same wire protocol, so one
// harness drives either. It preloads a synthetic corpus, runs a weighted
// mixed workload (add / delete / query / topk / batch) from -concurrency
// workers for -duration, and prints a machine-readable JSON report with
// per-operation p50/p95/p99/max latency, throughput, error rate and
// partial-result rate.
//
// Latencies are measured client-side around the whole HTTP round trip and
// recorded into the same fixed-bucket histograms the servers export, so a
// daemon's server-side view (its /metrics) and this harness's client-side
// view are directly comparable.
//
// Partial results: when the target is a router, degraded answers carry
// "partial": true instead of an error status. The harness decodes that
// field and counts partials separately from errors — a router limping on
// one shard is visible without failing the run. With -fail-on-error the
// process exits 1 if any operation got a non-2xx response or a transport
// error (partials don't count), which is what CI wants from a smoke run.
//
// Usage:
//
//	lshload -target http://localhost:7447 [-duration 10s] [-concurrency 8]
//	        [-mix add=1,delete=1,query=6,topk=1,batch=1] [-preload 1000]
//	        [-keys 5000] [-values 30] [-threshold 0.5] [-k 10]
//	        [-batch-size 8] [-timeout 5s] [-seed 1] [-fail-on-error]
//	        [-max-p99 250ms] [-max-error-rate 0.001]
//
// -max-p99 and -max-error-rate are regression gates for CI: after printing
// the report, the process exits 1 if any op's p99 exceeds -max-p99 or the
// overall error rate exceeds -max-error-rate. The report always prints
// first, so a tripped gate still leaves the numbers for the build log.
//
// The synthetic corpus is deterministic in -seed: domain i draws -values
// tokens from a sliding window over a shared token universe, so nearby
// domains overlap and queries actually match. Keys cycle over -keys, so a
// long run exercises replacement (re-adding a live key) and deletion of
// keys other workers just wrote — the same churn the live index is built
// for.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lshensemble/internal/obs"
)

// ops in mix order; indexes into the per-op stats arrays.
const (
	opAdd = iota
	opDelete
	opQuery
	opTopK
	opBatch
	numOps
)

var opNames = [numOps]string{"add", "delete", "query", "topk", "batch"}

// opStats aggregates one operation's outcomes across all workers.
type opStats struct {
	hist     *obs.Histogram
	count    atomic.Uint64
	errors   atomic.Uint64
	partials atomic.Uint64
}

// report is the machine-readable result printed to stdout.
type report struct {
	Target      string              `json:"target"`
	Duration    string              `json:"duration"`
	Concurrency int                 `json:"concurrency"`
	Mix         string              `json:"mix"`
	TotalOps    uint64              `json:"total_ops"`
	OpsPerSec   float64             `json:"ops_per_sec"`
	Errors      uint64              `json:"errors"`
	ErrorRate   float64             `json:"error_rate"`
	Partials    uint64              `json:"partials"`
	PartialRate float64             `json:"partial_rate"`
	Ops         map[string]opReport `json:"ops"`
}

type opReport struct {
	Count    uint64  `json:"count"`
	Errors   uint64  `json:"errors"`
	Partials uint64  `json:"partials"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lshload:", err)
		os.Exit(1)
	}
}

func run() error {
	target := flag.String("target", "http://localhost:7447", "daemon or router base URL")
	duration := flag.Duration("duration", 10*time.Second, "measured run length (after preload)")
	concurrency := flag.Int("concurrency", 8, "concurrent closed-loop workers")
	mixSpec := flag.String("mix", "add=1,delete=1,query=6,topk=1,batch=1", "weighted op mix as op=weight pairs")
	preload := flag.Int("preload", 1000, "domains ingested before the measured run (0 skips)")
	keys := flag.Int("keys", 5000, "key-space size the workload cycles over")
	values := flag.Int("values", 30, "tokens per synthetic domain")
	threshold := flag.Float64("threshold", 0.5, "containment threshold for query/batch ops")
	k := flag.Int("k", 10, "k for topk ops")
	batchSize := flag.Int("batch-size", 8, "queries per batch op")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "workload RNG seed (corpus and op sequence are deterministic in it)")
	failOnError := flag.Bool("fail-on-error", false, "exit 1 if any op errored (partial results don't count)")
	maxP99 := flag.Duration("max-p99", 0, "exit 1 if any op's p99 latency exceeds this (0 disables; the nightly regression gate)")
	maxErrorRate := flag.Float64("max-error-rate", -1, "exit 1 if the overall error rate exceeds this fraction (negative disables)")
	flag.Parse()

	if *concurrency <= 0 || *values <= 0 || *keys <= 0 || *batchSize <= 0 {
		return errors.New("-concurrency, -keys, -values and -batch-size must be positive")
	}
	weights, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}

	base := strings.TrimRight(*target, "/")
	hc := &http.Client{Timeout: *timeout}
	stats := make([]*opStats, numOps)
	for i := range stats {
		stats[i] = &opStats{hist: obs.NewHistogram(obs.DefBuckets)}
	}

	if *preload > 0 {
		if err := doPreload(hc, base, *preload, *keys, *values, *seed, *concurrency); err != nil {
			return fmt.Errorf("preload: %w", err)
		}
		fmt.Fprintf(os.Stderr, "preloaded %d domains into %s\n", *preload, base)
	}

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				op := pickOp(rng, weights)
				start := time.Now()
				partial, err := doOp(hc, base, op, rng, *keys, *values, *threshold, *k, *batchSize)
				st := stats[op]
				st.hist.ObserveSince(start)
				st.count.Add(1)
				if err != nil {
					st.errors.Add(1)
				} else if partial {
					st.partials.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	rep := report{
		Target:      base,
		Duration:    duration.String(),
		Concurrency: *concurrency,
		Mix:         *mixSpec,
		Ops:         make(map[string]opReport, numOps),
	}
	for i, st := range stats {
		n := st.count.Load()
		if n == 0 {
			continue
		}
		or := opReport{
			Count:    n,
			Errors:   st.errors.Load(),
			Partials: st.partials.Load(),
			P50Ms:    st.hist.Quantile(0.50) * 1e3,
			P95Ms:    st.hist.Quantile(0.95) * 1e3,
			P99Ms:    st.hist.Quantile(0.99) * 1e3,
			MaxMs:    st.hist.Max() * 1e3,
			MeanMs:   st.hist.Sum() / float64(n) * 1e3,
		}
		rep.Ops[opNames[i]] = or
		rep.TotalOps += n
		rep.Errors += or.Errors
		rep.Partials += or.Partials
	}
	if rep.TotalOps > 0 {
		rep.OpsPerSec = float64(rep.TotalOps) / duration.Seconds()
		rep.ErrorRate = float64(rep.Errors) / float64(rep.TotalOps)
		rep.PartialRate = float64(rep.Partials) / float64(rep.TotalOps)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *failOnError && rep.Errors > 0 {
		return fmt.Errorf("%d of %d ops errored", rep.Errors, rep.TotalOps)
	}
	if rep.TotalOps == 0 {
		return errors.New("no operations completed (is the target up?)")
	}
	// Regression gates: latency and error-rate ceilings for CI. Checked after
	// the report prints, so a failed gate still leaves the numbers on stdout.
	if *maxP99 > 0 {
		ceiling := maxP99.Seconds() * 1e3
		for name, or := range rep.Ops {
			if or.P99Ms > ceiling {
				return fmt.Errorf("p99 gate: %s p99 %.1fms exceeds -max-p99 %v", name, or.P99Ms, *maxP99)
			}
		}
	}
	if *maxErrorRate >= 0 && rep.ErrorRate > *maxErrorRate {
		return fmt.Errorf("error-rate gate: %.4f exceeds -max-error-rate %.4f (%d of %d ops)",
			rep.ErrorRate, *maxErrorRate, rep.Errors, rep.TotalOps)
	}
	return nil
}

// parseMix turns "add=1,query=6" into per-op weights.
func parseMix(spec string) ([numOps]int, error) {
	var weights [numOps]int
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return weights, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return weights, fmt.Errorf("bad -mix weight in %q", part)
		}
		found := false
		for i, n := range opNames {
			if n == name {
				weights[i] = w
				found = true
				break
			}
		}
		if !found {
			return weights, fmt.Errorf("unknown -mix op %q (want one of %v)", name, opNames)
		}
		total += w
	}
	if total == 0 {
		return weights, errors.New("-mix has zero total weight")
	}
	return weights, nil
}

func pickOp(rng *rand.Rand, weights [numOps]int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for i, w := range weights {
		if n < w {
			return i
		}
		n -= w
	}
	return opQuery
}

// domainValues builds domain i's token set: a window over a shared token
// universe so nearby domains overlap (queries have real matches).
func domainValues(i, values int) []string {
	out := make([]string, values)
	for j := 0; j < values; j++ {
		out[j] = "tok" + strconv.Itoa(i*3+j)
	}
	return out
}

func domainKey(i int) string { return "load:" + strconv.Itoa(i) }

// doPreload ingests the initial corpus with the same concurrency as the
// measured run, failing fast on the first error (a down target should abort
// the run, not produce a report full of errors).
func doPreload(hc *http.Client, base string, preload, keys, values int, seed int64, concurrency int) error {
	var firstErr atomic.Value
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := map[string]any{"key": domainKey(i % keys), "values": domainValues(i%keys, values)}
				if _, err := post(hc, base+"/add", body); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	for i := 0; i < preload; i++ {
		if firstErr.Load() != nil {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// doOp runs one operation and reports whether the answer was partial.
func doOp(hc *http.Client, base string, op int, rng *rand.Rand, keys, values int, threshold float64, k, batchSize int) (bool, error) {
	switch op {
	case opAdd:
		i := rng.Intn(keys)
		return post(hc, base+"/add", map[string]any{"key": domainKey(i), "values": domainValues(i, values)})
	case opDelete:
		return post(hc, base+"/delete", map[string]any{"key": domainKey(rng.Intn(keys))})
	case opQuery:
		return post(hc, base+"/query", map[string]any{"values": queryValues(rng, keys, values), "threshold": threshold})
	case opTopK:
		return post(hc, base+"/query/topk", map[string]any{"values": queryValues(rng, keys, values), "k": k})
	case opBatch:
		qs := make([]map[string]any, batchSize)
		for i := range qs {
			qs[i] = map[string]any{"values": queryValues(rng, keys, values), "threshold": threshold}
		}
		return post(hc, base+"/query/batch", map[string]any{"queries": qs})
	}
	return false, fmt.Errorf("unknown op %d", op)
}

// queryValues samples a subset of a random domain's tokens, so containment
// against the corpus is high and queries return matches.
func queryValues(rng *rand.Rand, keys, values int) []string {
	full := domainValues(rng.Intn(keys), values)
	n := values/2 + 1
	return full[:n]
}

// post sends one JSON request and reports whether the (2xx) response body
// carried "partial": true. Non-2xx statuses and transport failures are
// errors; the body is always drained so connections are reused.
func post(hc *http.Client, url string, body any) (bool, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return false, err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return false, err
	}
	if resp.StatusCode/100 != 2 {
		return false, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, truncate(data, 200))
	}
	var probe struct {
		Partial bool `json:"partial"`
	}
	json.Unmarshal(data, &probe)
	return probe.Partial, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
