package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"

	"lshensemble"
	"lshensemble/internal/segfile"
)

// server is the HTTP face of one live index. Queries hit the lock-free
// snapshot path and therefore never contend with ingest; mutation endpoints
// go straight to Add/Delete, which never block queries either. Domain
// values are sketched server-side with the daemon's hash family, so clients
// speak raw strings and signatures never cross the wire.
type server struct {
	idx    *lshensemble.LiveIndex
	hasher *lshensemble.Hasher
	seed   uint64
	// snapshotPath is the only file the daemon will write ("" disables
	// /save); the path is fixed at startup, not client-controlled.
	snapshotPath string
	saveMu       sync.Mutex
	mux          *http.ServeMux
}

func newServer(idx *lshensemble.LiveIndex, hasher *lshensemble.Hasher, seed uint64, snapshotPath string) *server {
	s := &server{idx: idx, hasher: hasher, seed: seed, snapshotPath: snapshotPath, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("POST /delete", s.handleDelete)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /query/topk", s.handleQueryTopK)
	s.mux.HandleFunc("POST /query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	s.mux.HandleFunc("POST /save", s.handleSave)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// --- wire types ---

type addRequest struct {
	Key    string   `json:"key"`
	Values []string `json:"values"`
}

type addResponse struct {
	Replaced bool `json:"replaced"`
	Size     int  `json:"size"`
}

type deleteRequest struct {
	Key string `json:"key"`
}

type deleteResponse struct {
	Deleted bool `json:"deleted"`
}

type queryRequest struct {
	Values []string `json:"values"`
	// Threshold is the containment threshold t*; 0 means the 0.5 default.
	Threshold float64 `json:"threshold"`
	// Size optionally overrides |Q| (defaults to the distinct value count).
	Size int `json:"size"`
}

type queryResponse struct {
	Matches []string `json:"matches"`
	Count   int      `json:"count"`
}

type topKRequest struct {
	Values []string `json:"values"`
	// K is the number of ranked results to return; 0 means 10.
	K int `json:"k"`
	// Size optionally overrides |Q| (defaults to the distinct value count).
	Size int `json:"size"`
}

type topKMatch struct {
	Key string `json:"key"`
	// EstContainment is the signature-estimated containment used for the
	// ranking; exact scores require the raw domains.
	EstContainment float64 `json:"est_containment"`
}

type topKResponse struct {
	Matches []topKMatch `json:"matches"`
	Count   int         `json:"count"`
}

type batchRequest struct {
	Queries []queryRequest `json:"queries"`
	// Workers bounds the fan-out of the batch dispatch (0 = GOMAXPROCS).
	Workers int `json:"workers"`
}

type batchResponse struct {
	Rows []queryResponse `json:"rows"`
}

type statsResponse struct {
	lshensemble.LiveStats
	NumHash int    `json:"num_hash"`
	RMax    int    `json:"r_max"`
	Seed    uint64 `json:"seed"`
}

type saveResponse struct {
	Path  string `json:"path"`
	Bytes int    `json:"bytes"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

const maxRequestBody = 64 << 20 // an /add or batch body larger than 64 MiB is a client bug

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Key == "" {
		writeError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	if len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("values must be non-empty"))
		return
	}
	rec := lshensemble.SketchStrings(s.hasher, req.Key, req.Values)
	replaced, err := s.idx.Add(rec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, addResponse{Replaced: replaced, Size: rec.Size})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Key == "" {
		writeError(w, http.StatusBadRequest, errors.New("key is required"))
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: s.idx.Delete(req.Key)})
}

// sketchQuery turns one wire query into (signature, size, threshold).
func (s *server) sketchQuery(q *queryRequest) (lshensemble.BatchQuery, error) {
	if len(q.Values) == 0 {
		return lshensemble.BatchQuery{}, errors.New("values must be non-empty")
	}
	rec := lshensemble.SketchStrings(s.hasher, "query", q.Values)
	size := rec.Size
	if q.Size > 0 {
		size = q.Size
	}
	t := q.Threshold
	if t == 0 {
		t = 0.5
	}
	if t < 0 || t > 1 {
		return lshensemble.BatchQuery{}, fmt.Errorf("threshold %v out of range (0, 1]", t)
	}
	return lshensemble.BatchQuery{Sig: rec.Sig, Size: size, Threshold: t}, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	q, err := s.sketchQuery(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	matches := s.idx.Query(q.Sig, q.Size, q.Threshold)
	sort.Strings(matches)
	writeJSON(w, http.StatusOK, queryResponse{Matches: matches, Count: len(matches)})
}

func (s *server) handleQueryTopK(w http.ResponseWriter, r *http.Request) {
	var req topKRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("values must be non-empty"))
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k %d must be positive", req.K))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	rec := lshensemble.SketchStrings(s.hasher, "query", req.Values)
	size := rec.Size
	if req.Size > 0 {
		size = req.Size
	}
	ranked := s.idx.QueryTopK(rec.Sig, size, k)
	resp := topKResponse{Matches: make([]topKMatch, len(ranked)), Count: len(ranked)}
	for i, m := range ranked {
		resp.Matches[i] = topKMatch{Key: m.Key, EstContainment: m.EstContainment}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("queries must be non-empty"))
		return
	}
	queries := make([]lshensemble.BatchQuery, len(req.Queries))
	for i := range req.Queries {
		q, err := s.sketchQuery(&req.Queries[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries[i] = q
	}
	rows := s.idx.QueryBatch(queries, req.Workers)
	resp := batchResponse{Rows: make([]queryResponse, len(rows))}
	for i, row := range rows {
		sort.Strings(row)
		resp.Rows[i] = queryResponse{Matches: row, Count: len(row)}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	o := s.idx.Options()
	writeJSON(w, http.StatusOK, statsResponse{
		LiveStats: s.idx.Stats(),
		NumHash:   o.NumHash,
		RMax:      o.RMax,
		Seed:      s.seed,
	})
}

func (s *server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	s.idx.Compact()
	s.handleStats(w, nil)
}

func (s *server) handleSave(w http.ResponseWriter, _ *http.Request) {
	if s.snapshotPath == "" {
		writeError(w, http.StatusNotFound, errors.New("no -snapshot path configured"))
		return
	}
	n, err := s.saveSnapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, saveResponse{Path: s.snapshotPath, Bytes: n})
}

// --- snapshot files ---
//
// A daemon snapshot prefixes the live-index encoding with the hash-family
// seed: signatures from a different family are incomparable garbage, so the
// seed must round-trip with the data and is verified on load.

var snapshotMagic = [4]byte{'L', 'S', 'H', 'D'}

// saveSnapshot writes the current snapshot to s.snapshotPath via a
// same-directory fsynced temp file + atomic rename, so a crash at any point
// leaves either the previous snapshot or the new one, never a torn file.
// Once the manifest is durable, segment files retired since the previous
// save are deleted. It returns the byte count written.
func (s *server) saveSnapshot() (int, error) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	buf := append([]byte(nil), snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = s.idx.AppendBinary(buf)
	if err := segfile.WriteAtomic(s.snapshotPath, buf); err != nil {
		return 0, err
	}
	// The freshly renamed manifest no longer references retired segment
	// files, so they are safe to delete now — and only now.
	s.idx.CollectGarbage()
	return len(buf), nil
}

// loadSnapshot reads a daemon snapshot, verifying the hash-family seed.
func loadSnapshot(path string, seed uint64, opts lshensemble.LiveOptions) (*lshensemble.LiveIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var header [12]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return nil, fmt.Errorf("reading snapshot header: %w", err)
	}
	if [4]byte(header[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%s is not a lshensembled snapshot", path)
	}
	if saved := binary.LittleEndian.Uint64(header[4:]); saved != seed {
		return nil, fmt.Errorf("snapshot hash seed %d != configured -seed %d (signatures would be incomparable)", saved, seed)
	}
	return lshensemble.LoadLive(f, opts)
}
