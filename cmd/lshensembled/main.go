// Command lshensembled serves an LSH Ensemble over HTTP as a live system:
// domains stream in and out while queries keep flowing — ingest never
// blocks a query (the index publishes atomically-swapped snapshots; see
// internal/live). The handler set lives in internal/serve; cmd/lshrouter
// shards this daemon horizontally by running N of them behind a
// consistent-hash scatter-gather router speaking the same wire protocol.
//
// Endpoints (JSON bodies unless noted):
//
//	POST /add          {"key": "t1:col", "values": ["a", "b", ...]}
//	POST /delete       {"key": "t1:col"}
//	POST /query        {"values": [...], "threshold": 0.7}
//	POST /query/topk   {"values": [...], "k": 10} → ranked {key, est_containment}
//	POST /query/batch  {"queries": [{"values": [...], "threshold": 0.7}, ...]}
//	GET  /stats        index shape: segments, buffer, tombstones, counters
//	POST /compact      full compaction, returns the new shape
//	POST /save         persist a snapshot to the -snapshot path
//	GET  /healthz      liveness probe (static {"status":"ok"}, never walks the index)
//	GET  /metrics      Prometheus text exposition (unless -no-metrics)
//
// /stats includes per-segment planner metadata ("segment_detail": entry
// count, size range, max partition bound, Bloom-filter bytes) and the
// aggregated "planner" counters (segments probed vs range/Bloom pruned,
// plan- and result-cache hits and misses, top-k early exits) — watch these
// to see what the query planner is saving on a given workload.
//
// With -snapshot the daemon loads the file at boot when it exists (warm
// restart) and saves on SIGINT/SIGTERM, so a rolling restart keeps the
// corpus without replaying ingest. Snapshots from older daemons (wire v1/v2)
// still load; the daemon always saves the current format (v3).
//
// With -data-dir the index runs out-of-core: sealed segments spill to
// page-aligned files under the directory and the snapshot becomes a small
// manifest referencing them (wire v3), written atomically on every save.
// When -snapshot is not given, the manifest defaults to
// <data-dir>/MANIFEST. Adding -mmap serves sealed segments directly from
// memory-mapped files — boot maps only headers and planner metadata, so a
// warm restart answers its first query without decoding the signature
// stores, and resident memory tracks the queried working set instead of the
// corpus ("resident_bytes" vs "file_bytes" per segment in /stats).
//
// Query handlers honor request cancellation: a client that disconnects (or
// a router whose per-shard deadline expires) stops the in-flight query or
// batch instead of running it to completion. The listener itself is
// hardened against slow clients — header reads, body reads and idle
// keep-alives all time out (-read-header-timeout, -read-timeout,
// -write-timeout, -idle-timeout), so a slowloris peer cannot pin
// connections forever.
//
// Usage:
//
//	lshensembled [-addr :7447] [-hashes 256] [-rmax 8] [-partitions 16]
//	             [-sketch minwise64] [-seed 42] [-seal 4096] [-max-segments 8]
//	             [-snapshot /var/lib/lshensembled/index.snap]
//	             [-data-dir /var/lib/lshensembled] [-mmap]
//	             [-no-prune] [-no-plan-cache] [-result-cache 1024]
//	             [-read-header-timeout 10s] [-read-timeout 1m]
//	             [-write-timeout 2m] [-idle-timeout 2m]
//	             [-log-level info] [-log-json] [-no-metrics]
//	             [-slow-query 1s] [-debug-addr localhost:7547]
//
// The planner escape hatches exist for A/B measurement and debugging:
// -no-prune disables segment Bloom/range pruning and top-k early
// termination, -no-plan-cache re-tunes (b, r) on every query, and
// -result-cache sets the result-cache capacity in entries (0 disables it).
//
// Observability: every request is stamped with a trace ID (an inbound
// X-Request-Id is honored, so a router-issued ID follows the request here)
// and logged at Debug; queries slower than -slow-query log at Warn with the
// planner's per-query breakdown. GET /metrics serves the zero-dependency
// Prometheus text format (see the root package doc's Observability section
// for the metric families). -debug-addr starts a separate listener with
// net/http/pprof under /debug/pprof/ and a /metrics mirror — keep it off
// public interfaces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"lshensemble"
	"lshensemble/internal/obs"
	"lshensemble/internal/serve"
)

func main() {
	// All real work happens in run so its defers — most importantly
	// idx.Close, which unmaps segment files and stops the compactor — run on
	// every exit path. log.Fatalf here would skip them (os.Exit runs no
	// defers), which is exactly how the old daemon leaked mmap'd segments
	// when saving the shutdown snapshot failed.
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":7447", "listen address")
	hashes := flag.Int("hashes", 256, "MinHash signature length")
	rMax := flag.Int("rmax", 8, "LSH forest tree depth")
	partitions := flag.Int("partitions", 16, "cardinality partitions per sealed segment")
	seed := flag.Uint64("seed", 42, "hash family seed (must match across restarts and clients)")
	sketch := flag.String("sketch", "minwise64", "signature store backend: minwise64, minwise32, minwise16, minwise8 (b-bit stores trade estimate variance for 1/2–1/8th the signature bytes)")
	seal := flag.Int("seal", 4096, "buffered adds that trigger a background seal")
	maxSegments := flag.Int("max-segments", 8, "sealed segments above which the compactor merges")
	snapshot := flag.String("snapshot", "", "snapshot file: loaded at boot if present, saved on shutdown and POST /save (defaults to <data-dir>/MANIFEST when -data-dir is set)")
	dataDir := flag.String("data-dir", "", "directory for out-of-core segment files; snapshots become small manifests referencing them")
	mmap := flag.Bool("mmap", false, "serve sealed segments from memory-mapped files (requires -data-dir; lazy boot)")
	noPrune := flag.Bool("no-prune", false, "disable segment Bloom/range pruning and top-k early termination (A/B escape hatch)")
	noPlanCache := flag.Bool("no-plan-cache", false, "disable the per-snapshot (b, r) plan cache (A/B escape hatch)")
	resultCache := flag.Int("result-cache", 1024, "result-cache capacity in entries (0 disables)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time limit for reading request headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "time limit for reading an entire request, body included")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "time limit for writing a response")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection limit")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error (debug includes per-request access logs)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of logfmt text")
	noMetrics := flag.Bool("no-metrics", false, "disable metric collection and GET /metrics")
	slowQuery := flag.Duration("slow-query", time.Second, "log queries slower than this at Warn with the planner breakdown (0 disables)")
	debugAddr := flag.String("debug-addr", "", "separate debug listener with /debug/pprof/ and a /metrics mirror (empty disables; keep off public interfaces)")
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logJSON)
	if err != nil {
		return err
	}
	if *mmap && *dataDir == "" {
		return errors.New("-mmap requires -data-dir")
	}
	sketchBackend, err := lshensemble.ParseSketchBackend(*sketch)
	if err != nil {
		return err
	}
	if !sketchBackend.Indexable() {
		return fmt.Errorf("-sketch %s is evaluation-only and cannot back the index (pick a minwise backend)", sketchBackend)
	}
	if *snapshot == "" && *dataDir != "" {
		*snapshot = filepath.Join(*dataDir, "MANIFEST")
	}

	resultCacheSize := *resultCache
	if resultCacheSize <= 0 {
		resultCacheSize = -1 // LiveOptions uses 0 for "default"; the flag uses 0 for "off"
	}
	opts := lshensemble.LiveOptions{
		Options: lshensemble.Options{
			NumHash:       *hashes,
			RMax:          *rMax,
			NumPartitions: *partitions,
			Sketch:        sketchBackend,
		},
		SealThreshold:    *seal,
		MaxSegments:      *maxSegments,
		DisablePruning:   *noPrune,
		DisablePlanCache: *noPlanCache,
		ResultCacheSize:  resultCacheSize,
		DataDir:          *dataDir,
		Mmap:             *mmap,
	}

	var idx *lshensemble.LiveIndex
	if *snapshot != "" {
		if _, err := os.Stat(*snapshot); err == nil {
			loaded, err := serve.LoadSnapshot(*snapshot, *seed, opts)
			if err != nil {
				return fmt.Errorf("loading snapshot %s: %w", *snapshot, err)
			}
			idx = loaded
			logger.Info("warm start", "domains", idx.Len(), "snapshot", *snapshot)
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("checking snapshot %s: %w", *snapshot, err)
		}
	}
	if idx == nil {
		fresh, err := lshensemble.BuildLive(nil, opts)
		if err != nil {
			return fmt.Errorf("initializing index: %w", err)
		}
		idx = fresh
		logger.Info("cold start: empty index")
	}
	defer idx.Close()

	hasher := lshensemble.NewHasher(*hashes, *seed)
	srv := serve.NewWith(idx, hasher, *seed, *snapshot, serve.Options{
		Logger:         logger,
		SlowQuery:      *slowQuery,
		DisableMetrics: *noMetrics,
	})
	stopDebug, err := obs.StartDebugServer(*debugAddr, srv.Registry(), logger)
	if err != nil {
		return err
	}
	defer stopDebug()
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Without these limits a slowloris client — one that trickles header
		// or body bytes forever — pins a connection (and its goroutine) for
		// the life of the process.
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr, "hashes", *hashes, "rmax", *rMax,
			"partitions", *partitions, "sketch", sketchBackend.String(), "seal", *seal)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", "error", err)
	}
	if *snapshot != "" {
		n, err := srv.SaveSnapshot()
		if err != nil {
			// Returning (instead of the old log.Fatalf) lets idx.Close run —
			// segment mappings are released and the compactor drains — while
			// the process still exits non-zero on the path where durability
			// just failed.
			return fmt.Errorf("saving snapshot: %w", err)
		}
		logger.Info("saved snapshot", "path", *snapshot, "size", byteCount(n), "domains", idx.Len())
	}
	return nil
}

func byteCount(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
