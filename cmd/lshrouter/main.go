// Command lshrouter is a stateless scatter-gather router in front of a
// fleet of lshensembled shards — the horizontal-scaling tier: each shard
// holds a slice of the corpus, and the router makes the fleet answer like
// one big index.
//
// Writes route by consistent hashing: a key's owners are derived from a
// vnode ring over the live shards with deterministic bounded-load capping
// (no shard owns more than load-factor/N of the keyspace), so any number of
// stateless router instances agree on placement without coordinating.
// -replication ≥ 2 writes every key to that many distinct shards, so one
// shard death loses nothing.
//
// Queries scatter to every live shard under a per-shard deadline and merge:
// /query unions and dedups by key, /query/topk keeps each key's best
// estimated containment and re-ranks, /query/batch unions row by row. A
// shard that is slow or dead contributes nothing and flips "partial": true
// in the response (with the shard named in "failed") — the router degrades,
// it does not error. Only a total blackout is a 5xx.
//
// A background checker probes every shard's /healthz; -health-fail
// consecutive misses demote a shard from the ring (one success promotes it
// back). Demotion re-routes new writes; data the dead shard held stays
// missing until the shard returns or an operator boots a replacement from
// its snapshot — shard handoff is just lshensembled's -snapshot/-data-dir
// persistence: start the new shard on the old shard's manifest and segment
// files (same -seed) and re-list it.
//
// Usage:
//
//	lshrouter -shards http://10.0.0.1:7447,http://10.0.0.2:7447 \
//	          [-addr :7446] [-replication 1] [-vnodes 64] [-load-factor 1.25] \
//	          [-shard-timeout 2s] [-health-interval 2s] [-health-fail 2] \
//	          [-read-header-timeout 10s] [-read-timeout 1m] \
//	          [-write-timeout 2m] [-idle-timeout 2m] \
//	          [-log-level info] [-log-json] [-no-metrics] \
//	          [-debug-addr localhost:7546]
//
// All shards must run the same -seed and -hashes, or their signatures are
// incomparable; the router's /stats surfaces each shard's values so a
// mismatched fleet is visible at a glance.
//
// Observability: every request carries a trace ID (an inbound X-Request-Id
// is honored, otherwise one is minted) that the router stamps on every
// shard fan-out call, so one ID follows a request from the router access
// log into each shard's. GET /metrics exposes request counters/latency
// histograms per endpoint plus the fleet view: lshrouter_shards_live,
// lshrouter_shard_demotions_total / _promotions_total / _errors_total
// (labelled by shard) and lshrouter_partial_responses_total. Demotions and
// promotions also log at Warn/Info. -debug-addr starts a separate listener
// with net/http/pprof under /debug/pprof/ and a /metrics mirror — keep it
// off public interfaces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lshensemble/internal/cluster"
	"lshensemble/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":7446", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs (required)")
	replication := flag.Int("replication", 1, "distinct shards owning each key")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load cap: max keyspace share per shard as a multiple of 1/N (≥ 1)")
	shardTimeout := flag.Duration("shard-timeout", 2*time.Second, "per-shard deadline on forwarded and scattered requests")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "how often to probe shard /healthz")
	healthFail := flag.Int("health-fail", 2, "consecutive probe failures that demote a shard from the ring")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time limit for reading request headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "time limit for reading an entire request, body included")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "time limit for writing a response")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection limit")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error (debug includes per-request access logs)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of logfmt text")
	noMetrics := flag.Bool("no-metrics", false, "disable metric collection and GET /metrics")
	debugAddr := flag.String("debug-addr", "", "separate debug listener with /debug/pprof/ and a /metrics mirror (empty disables; keep off public interfaces)")
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logJSON)
	if err != nil {
		return err
	}
	if *shards == "" {
		return errors.New("-shards is required (comma-separated base URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	router, err := cluster.NewRouter(urls, cluster.Options{
		Ring: cluster.RingOptions{
			Vnodes:      *vnodes,
			LoadFactor:  *loadFactor,
			Replication: *replication,
		},
		ShardTimeout:   *shardTimeout,
		HealthInterval: *healthInterval,
		HealthFailures: *healthFail,
		Logger:         logger,
		DisableMetrics: *noMetrics,
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()

	stopDebug, err := obs.StartDebugServer(*debugAddr, router.Registry(), logger)
	if err != nil {
		return err
	}
	defer stopDebug()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() {
		logger.Info("routing", "shards", len(urls), "addr", *addr,
			"replication", *replication, "vnodes", *vnodes, "load_factor", *loadFactor)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", "error", err)
	}
	return nil
}
