package lshensemble

import (
	"context"
	"fmt"
	"io"

	"lshensemble/internal/asym"
	"lshensemble/internal/baseline"
	"lshensemble/internal/core"
	"lshensemble/internal/live"
	"lshensemble/internal/minhash"
	"lshensemble/internal/partition"
)

// Signature is a MinHash sketch of a domain. Signatures are comparable only
// when produced by Hashers constructed with identical (numHash, seed).
type Signature = minhash.Signature

// Hasher is a family of minwise hash permutations. All signatures indexed
// together and all query signatures must come from the same family.
type Hasher = minhash.Hasher

// NewHasher constructs a hash family of numHash permutations (the paper
// uses 256) derived deterministically from seed.
func NewHasher(numHash int, seed uint64) *Hasher {
	return minhash.NewHasher(numHash, seed)
}

// DomainRecord is one indexable domain: a caller-chosen key, the exact
// cardinality of the domain, and its MinHash signature.
type DomainRecord = core.Record

// Options configures Build; zero values select the paper's defaults
// (NumHash 256, RMax 8, NumPartitions 16, equi-depth partitioning).
type Options = core.Options

// SketchBackend selects how the flat signature store represents each of the
// NumHash minwise values — the accuracy-vs-bytes knob. Minwise64 is the
// default full-width representation; Minwise8/16/32 store b-bit truncations
// (Li & König) at 1/8th–1/2 the bytes, correcting containment estimates for
// the 2⁻ᵇ chance-collision floor. KMV is evaluation-only (not indexable).
type SketchBackend = core.SketchBackend

// Sketch backends for Options.Sketch.
const (
	Minwise64 = core.Minwise64
	Minwise8  = core.Minwise8
	Minwise16 = core.Minwise16
	Minwise32 = core.Minwise32
)

// ParseSketchBackend resolves a backend name ("minwise64", "minwise8",
// "minwise16", "minwise32", "kmv") — the vocabulary of the daemon's -sketch
// flag.
func ParseSketchBackend(name string) (SketchBackend, error) {
	return core.ParseSketchBackend(name)
}

// KMVSketch is a k-minimum-values cardinality sketch (Beyer et al.), the
// cardinality-aware containment estimator on the evaluation path. It cannot
// back an index; Build rejects Options{Sketch: KMV}.
type KMVSketch = minhash.KMV

// NewKMVSketch returns an empty KMV sketch keeping the k smallest distinct
// hashes.
func NewKMVSketch(k int) *KMVSketch { return minhash.NewKMV(k) }

// Index is a built LSH Ensemble. It is safe for concurrent queries.
type Index = core.Index

// PartitionerFunc chooses the size intervals of the ensemble.
type PartitionerFunc = core.PartitionerFunc

// Partitioning strategies for Options.Partitioner.
var (
	// EquiDepth gives every partition the same number of domains — the
	// paper's Theorem 2 choice, near-optimal for power-law distributions.
	EquiDepth PartitionerFunc = partition.EquiDepth
	// EquiWidth splits the size range evenly — a poor choice under skew,
	// provided for comparison and drift experiments.
	EquiWidth PartitionerFunc = partition.EquiWidth
	// Minimax directly minimizes the maximum per-partition false-positive
	// bound (Theorem 1), for arbitrary (non-power-law) distributions.
	Minimax PartitionerFunc = partition.Minimax
)

// Build constructs an LSH Ensemble over the records.
func Build(records []DomainRecord, opts Options) (*Index, error) {
	return core.Build(records, opts)
}

// SketchStrings is a convenience that builds a record from raw string
// values (deduplicated by the hasher's value identity). Hashing and dedup
// run first so the permutation folding can take the batched
// permutation-major path; large domains additionally shard across
// GOMAXPROCS workers (Hasher.SketchParallel — exact, small domains stay on
// the serial path).
func SketchStrings(h *Hasher, key string, values []string) DomainRecord {
	seen := make(map[uint64]struct{}, len(values))
	hvs := make([]uint64, 0, len(values))
	for _, v := range values {
		hv := minhash.HashString(v)
		if _, dup := seen[hv]; dup {
			continue
		}
		seen[hv] = struct{}{}
		hvs = append(hvs, hv)
	}
	return DomainRecord{Key: key, Size: len(hvs), Sig: h.SketchParallel(hvs, 0)}
}

// BaselineIndex is the paper's comparator: one dynamically tuned MinHash
// LSH over the whole corpus (an ensemble with a single partition).
type BaselineIndex = baseline.Index

// BuildBaseline constructs the single-partition baseline.
func BuildBaseline(records []DomainRecord, numHash, rMax int) (*BaselineIndex, error) {
	return baseline.Build(records, numHash, rMax)
}

// AsymIndex is Asymmetric Minwise Hashing (Shrivastava & Li), the other
// comparator evaluated by the paper.
type AsymIndex = asym.Index

// BuildAsym constructs the asymmetric-minwise-hashing comparator.
func BuildAsym(records []DomainRecord, numHash, rMax int) (*AsymIndex, error) {
	return asym.Build(records, numHash, rMax)
}

// TopKResult is one ranked answer of Index.QueryTopK, the top-k search
// formulation complementary to threshold search (paper Section 2).
type TopKResult = core.TopKResult

// BatchQuery is one containment query of an Index.QueryBatch batch.
type BatchQuery = core.BatchQuery

// BatchResults is the reusable destination of Index.QueryBatchInto — the
// allocation-free batch serving path.
type BatchResults = core.BatchResults

// LiveIndex is a mutable, always-queryable LSH Ensemble: an
// atomically-swapped snapshot of sealed immutable segments, an unsealed
// in-memory buffer of recent Adds, and a tombstone set for deletes, with a
// background compactor folding the buffer into segments and merging small
// segments. Queries are lock-free against Add/Delete/compaction and answer
// from a consistent point-in-time snapshot; full compaction is
// equivalence-preserving (bit-identical to a fresh Build over the surviving
// records). See the internal/live package documentation for the model.
type LiveIndex = live.Index

// LiveOptions configures BuildLive: the embedded Options shape every sealed
// segment, SealThreshold/MaxSegments tune the compactor.
type LiveOptions = live.Options

// LiveStats is the point-in-time shape summary returned by LiveIndex.Stats.
type LiveStats = live.Stats

// LiveQueryKind names which query entry point a LiveObserver observation
// came from: KindLiveQuery, KindLiveTopK or KindLiveBatch.
type LiveQueryKind = live.QueryKind

// Live query kinds reported to a LiveObserver.
const (
	KindLiveQuery = live.KindQuery
	KindLiveTopK  = live.KindTopK
	KindLiveBatch = live.KindBatch
)

// LiveObserver receives one callback per LiveIndex query (including cache
// hits) with the end-to-end latency. Install with LiveIndex.SetObserver;
// implementations must be cheap and concurrency-safe.
type LiveObserver = live.Observer

// LiveQueryTrace captures the planner's per-query decisions — segment
// pruning breakdown, buffer handling, result-cache hit — when attached to
// the query context with WithLiveQueryTrace.
type LiveQueryTrace = live.QueryTrace

// WithLiveQueryTrace returns a context that makes context-taking LiveIndex
// queries fill tr with the planner's decisions for that one query.
func WithLiveQueryTrace(ctx context.Context, tr *LiveQueryTrace) context.Context {
	return live.WithQueryTrace(ctx, tr)
}

// BuildLive constructs a live (mutable, always-queryable) index over the
// records; records may be empty to start from nothing. Unless
// opts.ManualCompaction is set, a background compactor goroutine is
// started — call Close to release it.
func BuildLive(records []DomainRecord, opts LiveOptions) (*LiveIndex, error) {
	return live.Build(records, opts)
}

// SaveLive writes the live index's point-in-time snapshot encoding to w.
// It is safe to call while writers and the compactor run.
func SaveLive(w io.Writer, idx *LiveIndex) error {
	return idx.Save(w)
}

// LoadLive reads a live index previously written with SaveLive — the warm
// restart path. Non-zero opts.NumHash/opts.RMax must match the saved shape.
func LoadLive(r io.Reader, opts LiveOptions) (*LiveIndex, error) {
	return live.Load(r, opts)
}

// Save writes the index's binary encoding to w.
func Save(w io.Writer, idx *Index) error {
	buf := idx.AppendBinary(nil)
	n, err := w.Write(buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return io.ErrShortWrite
	}
	return nil
}

// Load reads an index previously written with Save.
func Load(r io.Reader) (*Index, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	idx, rest, err := core.Decode(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lshensemble: %d trailing bytes after index", len(rest))
	}
	return idx, nil
}
