package lshensemble_test

import (
	"testing"
	"time"

	"lshensemble"
	"lshensemble/internal/datagen"
	"lshensemble/internal/minhash"
	"lshensemble/internal/obs"
)

// histObserver is the daemon's observer shape: one histogram observation
// per query through the public hook.
type histObserver struct {
	h *obs.Histogram
}

func (o histObserver) ObserveQuery(_ lshensemble.LiveQueryKind, d time.Duration) {
	o.h.Observe(d.Seconds())
}

// TestInstrumentedQueryZeroAllocs pins the observability acceptance bar:
// the steady-state query path with the metrics observer installed — the
// exact configuration a serving daemon runs — still allocates nothing.
func TestInstrumentedQueryZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates and randomizes sync.Pool reuse")
	}
	corpus := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 600, Seed: 29})
	h := minhash.NewHasher(128, 29)
	recs := datagen.Records(corpus, h)
	idx, err := lshensemble.BuildLive(recs[:400], lshensemble.LiveOptions{
		Options:          lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8},
		ManualCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for _, r := range recs[400:500] {
		if _, err := idx.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	idx.Flush()
	for _, r := range recs[500:550] {
		if _, err := idx.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	hist := obs.NewHistogram(obs.DefBuckets)
	idx.SetObserver(histObserver{h: hist})

	var dst []string
	warm := func() {
		for i := 1; i < len(recs); i += 37 {
			dst = idx.QueryAppend(dst[:0], recs[i].Sig, recs[i].Size, 0.5)
		}
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(50, func() {
		dst = idx.QueryAppend(dst[:0], recs[101].Sig, recs[101].Size, 0.5)
	})
	if allocs > 0 {
		t.Errorf("instrumented steady-state QueryAppend allocates %.1f per query, want 0", allocs)
	}
	if hist.Count() == 0 {
		t.Fatal("observer histogram recorded nothing — the hook is not installed")
	}
}
