// Benchmarks: one per paper table/figure (regenerating its workload's hot
// path under testing.B) plus ablations for the design decisions listed in
// DESIGN.md §6. Full paper-style row output comes from cmd/experiments;
// these benches measure the cost of each experiment's core operation.
package lshensemble_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"lshensemble"
	"lshensemble/internal/asym"
	"lshensemble/internal/core"
	"lshensemble/internal/datagen"
	"lshensemble/internal/exact"
	"lshensemble/internal/expt"
	"lshensemble/internal/minhash"
	"lshensemble/internal/obs"
	"lshensemble/internal/partition"
	"lshensemble/internal/staticlsh"
	"lshensemble/internal/stats"
	"lshensemble/internal/tune"
	"lshensemble/internal/xrand"
)

// fixture caches a sketched corpus so repeated benches share setup cost.
type fixture struct {
	corpus  *datagen.Corpus
	records []core.Record
	queries []int
}

var (
	fixtures   = map[string]*fixture{}
	fixtureMu  sync.Mutex
	benchHashA = minhash.NewHasher(256, 99)
)

func openDataFixture(b *testing.B, n int) *fixture {
	b.Helper()
	key := fmt.Sprintf("od-%d", n)
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtures[key]; ok {
		return f
	}
	c := datagen.OpenData(datagen.OpenDataConfig{NumDomains: n, Seed: 99})
	f := &fixture{
		corpus:  c,
		records: datagen.Records(c, benchHashA),
		queries: datagen.SampleQueries(c, 50, 99),
	}
	fixtures[key] = f
	return f
}

func webTableFixture(b *testing.B, n int) *fixture {
	b.Helper()
	key := fmt.Sprintf("wt-%d", n)
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtures[key]; ok {
		return f
	}
	c := datagen.WebTable(datagen.WebTableConfig{NumDomains: n, Seed: 99})
	f := &fixture{
		corpus:  c,
		records: datagen.Records(c, benchHashA),
		queries: datagen.SampleQueries(c, 50, 99),
	}
	fixtures[key] = f
	return f
}

// --- Figure 1: corpus generation + size histogram ---

func BenchmarkFig1SizeHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := datagen.OpenData(datagen.OpenDataConfig{NumDomains: 2000, Seed: uint64(i)})
		_ = stats.LogHistogram(c.Sizes())
		_ = stats.PowerLawAlphaMLE(c.Sizes(), 10)
	}
}

// --- Figure 3 / tuning: the (b, r) grid optimization ---

func BenchmarkFig3TuneOptimize(b *testing.B) {
	o := tune.NewOptimizer(32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.OptimizeUncached(1000, 100, 0.5)
	}
}

// --- Figure 4: the accuracy workload's query loop ---

func BenchmarkFig4QueryAccuracyWorkload(b *testing.B) {
	f := openDataFixture(b, 4000)
	idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := f.queries[i%len(f.queries)]
		idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
	}
}

// BenchmarkFig4GroundTruth measures the exact-engine side of Fig. 4.
func BenchmarkFig4GroundTruth(b *testing.B) {
	f := openDataFixture(b, 4000)
	engine := exact.Build(datagen.ExactDomains(f.corpus))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := f.queries[i%len(f.queries)]
		engine.Scores(f.corpus.Domains[qi].Values)
	}
}

// --- Figure 5: skew-sweep subset construction + one subset evaluation ---

func BenchmarkFig5SkewSweep(b *testing.B) {
	f := openDataFixture(b, 4000)
	for i := 0; i < b.N; i++ {
		subsets := datagen.NestedSizeSubsets(f.corpus, 10)
		for _, s := range subsets {
			sizes := make([]int, len(s))
			for j, k := range s {
				sizes[j] = len(f.corpus.Domains[k].Values)
			}
			_ = stats.SkewnessInts(sizes)
		}
	}
}

// --- Figures 6/7: decile query selection ---

func BenchmarkFig6LargeQuerySelection(b *testing.B) {
	f := openDataFixture(b, 4000)
	for i := 0; i < b.N; i++ {
		datagen.QueriesBySizeDecile(f.corpus, 9, 100, uint64(i))
	}
}

// --- Figure 8: partition morphing ---

func BenchmarkFig8PartitionMorph(b *testing.B) {
	f := openDataFixture(b, 4000)
	sizes := f.corpus.Sizes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Morph(sizes, 32, float64(i%9)/8)
	}
}

// --- Figure 9: indexing and query cost ---

func BenchmarkFig9Indexing(b *testing.B) {
	for _, parts := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			f := webTableFixture(b, 10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: parts}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9Sketching(b *testing.B) {
	f := webTableFixture(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		datagen.Records(f.corpus, benchHashA)
	}
}

func BenchmarkFig9Query(b *testing.B) {
	for _, parts := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			f := webTableFixture(b, 10000)
			idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: parts})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the tuning cache as a production deployment would be.
			for _, qi := range f.queries {
				idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qi := f.queries[i%len(f.queries)]
				idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
			}
		})
	}
}

// --- Table 4: baseline vs ensemble, sharded ---

func BenchmarkTab4IndexingCost(b *testing.B) {
	for _, parts := range []int{1, 8, 32} {
		name := fmt.Sprintf("ensemble=%d", parts)
		if parts == 1 {
			name = "baseline"
		}
		b.Run(name, func(b *testing.B) {
			f := webTableFixture(b, 10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: parts}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTab4QueryCost(b *testing.B) {
	for _, parts := range []int{1, 8, 32} {
		name := fmt.Sprintf("ensemble=%d", parts)
		if parts == 1 {
			name = "baseline"
		}
		b.Run(name, func(b *testing.B) {
			f := openDataFixture(b, 8000) // overlapping corpus → non-trivial candidates
			idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: parts})
			if err != nil {
				b.Fatal(err)
			}
			for _, qi := range f.queries {
				idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qi := f.queries[i%len(f.queries)]
				idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
			}
		})
	}
}

// --- Figure 10: asym padding + analysis ---

func BenchmarkFig10AsymPad(b *testing.B) {
	h := minhash.NewHasher(256, 1)
	sig := h.SketchStrings([]string{"a", "b", "c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asym.Pad(sig, "key", 1_000_000)
	}
}

func BenchmarkFig10Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.RunFig10()
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationRMax sweeps the forest depth: deeper trees mean fewer,
// more selective probes per band.
func BenchmarkAblationRMax(b *testing.B) {
	for _, rMax := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("rmax=%d", rMax), func(b *testing.B) {
			f := openDataFixture(b, 4000)
			idx, err := lshensemble.Build(f.records, lshensemble.Options{
				NumPartitions: 16, RMax: rMax,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, qi := range f.queries {
				idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qi := f.queries[i%len(f.queries)]
				idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
			}
		})
	}
}

// BenchmarkAblationPartitioner compares the three partitioning strategies
// on build cost over the same skewed corpus.
func BenchmarkAblationPartitioner(b *testing.B) {
	for name, pf := range map[string]lshensemble.PartitionerFunc{
		"equidepth": lshensemble.EquiDepth,
		"equiwidth": lshensemble.EquiWidth,
		"minimax":   lshensemble.Minimax,
	} {
		b.Run(name, func(b *testing.B) {
			f := openDataFixture(b, 4000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lshensemble.Build(f.records, lshensemble.Options{
					NumPartitions: 16, Partitioner: pf,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTuneCache quantifies the memoization win of the tuner.
func BenchmarkAblationTuneCache(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		o := tune.NewOptimizer(32, 8)
		o.Optimize(1000, 100, 0.5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Optimize(1000, 100, 0.5)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		o := tune.NewOptimizer(32, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.OptimizeUncached(1000, 100, 0.5)
		}
	})
}

// BenchmarkAblationStaticVsDynamic compares the classic fixed-(b,r)
// MinHash LSH (Section 3.2) against the dynamic forest on query cost. The
// static index cannot serve per-query thresholds — this measures the price
// of the flexibility.
func BenchmarkAblationStaticVsDynamic(b *testing.B) {
	f := openDataFixture(b, 4000)
	maxSize := 0
	for _, r := range f.records {
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	b.Run("static", func(b *testing.B) {
		sStar := staticlsh.ConvertThreshold(0.5, float64(maxSize), 100)
		idx := staticlsh.NewForThreshold(256, sStar)
		for _, r := range f.records {
			idx.Add(r.Key, r.Sig)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qi := f.queries[i%len(f.queries)]
			idx.Query(f.records[qi].Sig)
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		idx, err := lshensemble.BuildBaseline(f.records, 256, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, qi := range f.queries {
			idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qi := f.queries[i%len(f.queries)]
			idx.Query(f.records[qi].Sig, f.records[qi].Size, 0.5)
		}
	})
}

// BenchmarkQuerySteadyStateAllocs measures the allocation profile of the
// pooled query path. QueryIDsAppend with a reused destination buffer is the
// steady-state serving loop and must not allocate at all once the scratch
// pool and tuning cache are warm.
func BenchmarkQuerySteadyStateAllocs(b *testing.B) {
	f := openDataFixture(b, 4000)
	idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	var ids []uint32
	for _, qi := range f.queries {
		ids, _ = idx.QueryIDsAppend(ids[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := f.queries[i%len(f.queries)]
		ids, _ = idx.QueryIDsAppend(ids[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
	}
}

// BenchmarkSketchBatched measures the batched corpus-sketching path
// (PushHashedBlock) against the per-value loop it amortizes.
func BenchmarkSketchBatched(b *testing.B) {
	h := minhash.NewHasher(256, 7)
	values := make([]uint64, 4096)
	for i := range values {
		values[i] = minhash.HashUint64(uint64(i))
	}
	b.Run("block", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sig := h.NewSignature()
			h.PushHashedBlock(sig, values)
		}
	})
	b.Run("per-value", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sig := h.NewSignature()
			for _, hv := range values {
				h.PushHashed(sig, hv)
			}
		}
	})
}

// BenchmarkTopK measures the top-k search path.
func BenchmarkTopK(b *testing.B) {
	f := openDataFixture(b, 4000)
	idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := f.queries[i%len(f.queries)]
		idx.QueryTopK(f.records[qi].Sig, f.records[qi].Size, 10)
	}
}

// BenchmarkSerialization measures index save/load round trips.
func BenchmarkSerialization(b *testing.B) {
	f := openDataFixture(b, 4000)
	idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	buf := idx.AppendBinary(nil)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.AppendBinary(buf[:0])
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Decode(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Parallel construction + batch serving (the multicore engine) ---

// BenchmarkBuildParallel measures full ensemble construction — partition
// routing, per-partition signature copy into Reserve-sized stores, and the
// flattened parallel tree rebuild. Run with -cpu 1,4,8 to see the worker
// pools scale; the -cpu 1 result doubles as the single-thread regression
// guard against the PR 1 numbers.
func BenchmarkBuildParallel(b *testing.B) {
	f := webTableFixture(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBatchThroughput measures steady-state batch serving through
// QueryBatchInto with a reused BatchResults — the allocation-free
// high-throughput path. Reported as queries/s; run with -cpu 1,4,8.
func BenchmarkQueryBatchThroughput(b *testing.B) {
	f := webTableFixture(b, 10000)
	idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]lshensemble.BatchQuery, 256)
	for i := range batch {
		qi := f.queries[i%len(f.queries)]
		batch[i] = lshensemble.BatchQuery{Sig: f.records[qi].Sig, Size: f.records[qi].Size, Threshold: 0.5}
	}
	var res lshensemble.BatchResults
	idx.QueryBatchInto(&res, batch, 0) // warm pools and tuning cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.QueryBatchInto(&res, batch, 0)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(batch))/secs, "queries/s")
	}
}

// BenchmarkQueryBatchVsSerial pins the same workload through the serial
// QueryIDsAppend loop for an apples-to-apples batch-engine comparison.
func BenchmarkQueryBatchVsSerial(b *testing.B) {
	f := webTableFixture(b, 10000)
	idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]lshensemble.BatchQuery, 256)
	for i := range batch {
		qi := f.queries[i%len(f.queries)]
		batch[i] = lshensemble.BatchQuery{Sig: f.records[qi].Sig, Size: f.records[qi].Size, Threshold: 0.5}
	}
	var ids []uint32
	for _, q := range batch {
		ids, _ = idx.QueryIDsAppend(ids[:0], q.Sig, q.Size, q.Threshold)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range batch {
			ids, _ = idx.QueryIDsAppend(ids[:0], q.Sig, q.Size, q.Threshold)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(batch))/secs, "queries/s")
	}
}

// BenchmarkParallelQueryIDs measures the intra-query mode on a wide
// ensemble (32 partitions), against QueryIDs on the same shape.
func BenchmarkParallelQueryIDs(b *testing.B) {
	f := webTableFixture(b, 10000)
	idx, err := lshensemble.Build(f.records, lshensemble.Options{NumPartitions: 32})
	if err != nil {
		b.Fatal(err)
	}
	qi := f.queries[0]
	idx.QueryIDs(f.records[qi].Sig, f.records[qi].Size, 0.25)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qi := f.queries[i%len(f.queries)]
			idx.QueryIDs(f.records[qi].Sig, f.records[qi].Size, 0.25)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qi := f.queries[i%len(f.queries)]
			idx.ParallelQueryIDs(f.records[qi].Sig, f.records[qi].Size, 0.25, 0)
		}
	})
}

// --- Live index: serving while the corpus churns ---

// liveBenchIndex builds a live index with several sealed segments, a warm
// buffer, and some tombstones — the steady-state shape a serving daemon
// reaches.
func liveBenchIndex(b *testing.B, f *fixture, seal int) *lshensemble.LiveIndex {
	b.Helper()
	idx, err := lshensemble.BuildLive(f.records[:len(f.records)/2], lshensemble.LiveOptions{
		Options:       lshensemble.Options{NumPartitions: 16},
		SealThreshold: seal,
		MaxSegments:   8,
		// Result caching off: these benches predate the planner and measure
		// the raw probe path; BenchmarkResultCacheHit measures the cache.
		ResultCacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	half := len(f.records) / 2
	for i := half; i < len(f.records); i++ {
		if _, err := idx.Add(f.records[i]); err != nil {
			b.Fatal(err)
		}
		if (i-half)%1000 == 999 {
			idx.Flush()
		}
	}
	for i := 0; i < half; i += 97 {
		idx.Delete(f.records[i].Key)
	}
	idx.Flush() // drain the buffer tail so both benches start from the same shape
	return idx
}

// BenchmarkLiveQueryIdle is the baseline: queries against a multi-segment
// live snapshot with no writers running. Compare with
// BenchmarkLiveQueryDuringCompaction.
func BenchmarkLiveQueryIdle(b *testing.B) {
	f := openDataFixture(b, 8000)
	idx := liveBenchIndex(b, f, 1024)
	defer idx.Close()
	var dst []string
	for _, qi := range f.queries {
		dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := f.queries[i%len(f.queries)]
		dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
	}
}

// BenchmarkLiveQueryDuringCompaction measures query latency while a writer
// goroutine streams adds and deletes fast enough to keep the background
// compactor continuously sealing and merging — the acceptance target is
// staying within 2x of BenchmarkLiveQueryIdle. Queries never block on the
// ingest path (they read atomically-swapped snapshots), so the remaining
// gap is pure CPU contention with the build work.
func BenchmarkLiveQueryDuringCompaction(b *testing.B) {
	f := openDataFixture(b, 8000)
	// A small seal threshold keeps the background compactor continuously
	// sealing and merging under the churn stream below.
	idx := liveBenchIndex(b, f, 256)
	defer idx.Close()
	var dst []string
	for _, qi := range f.queries {
		dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
	}

	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		// Stream adds and deletes at a paced ~2k mutations/s — a saturating
		// writer on a single-CPU box would only measure scheduler starvation,
		// while a paced stream measures what snapshots cost the read path.
		// Each wakeup catches up to the wall-clock target in a burst, so the
		// rate holds even when the CPU-bound query loop delays scheduling.
		// The 256-entry seal threshold keeps the compactor sealing a segment
		// every ~130 ms and merging as segments accumulate.
		const mutationsPerSecond = 2000
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		start := time.Now()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			target := int(time.Since(start).Seconds() * mutationsPerSecond)
			for ; i < target; i++ {
				src := f.records[i%len(f.records)]
				key := fmt.Sprintf("churn-%d", i%4096)
				if _, err := idx.Add(lshensemble.DomainRecord{Key: key, Size: src.Size, Sig: src.Sig}); err != nil {
					b.Error(err)
					return
				}
				if i%3 == 0 {
					idx.Delete(fmt.Sprintf("churn-%d", (i-2000)%4096))
				}
			}
		}
	}()

	before := idx.Stats()
	// No ReportAllocs here: the counter is process-wide and would charge the
	// writer's and compactor's allocations to the query loop.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := f.queries[i%len(f.queries)]
		dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
	}
	b.StopTimer()
	close(stop)
	writerWg.Wait()
	after := idx.Stats()
	b.ReportMetric(float64(after.Seals-before.Seals), "seals")
	b.ReportMetric(float64(after.Merges-before.Merges), "merges")
}

// BenchmarkLiveIngest measures the write path: Add throughput including the
// amortized background sealing cost.
func BenchmarkLiveIngest(b *testing.B) {
	f := openDataFixture(b, 8000)
	idx, err := lshensemble.BuildLive(nil, lshensemble.LiveOptions{
		Options:         lshensemble.Options{NumPartitions: 16},
		SealThreshold:   1024,
		MaxSegments:     8,
		ResultCacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := f.records[i%len(f.records)]
		if _, err := idx.Add(lshensemble.DomainRecord{
			Key:  fmt.Sprintf("ingest-%d", i),
			Size: src.Size,
			Sig:  src.Sig,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Segment-aware query planning ---

// poolRecords synthesizes records whose signature values carry a pool tag in
// the top byte, so records from different pools never collide in the forest.
// datagen's value universes overlap across seeds, which would leave every
// segment a Bloom candidate; disjoint pools give the planner segments it can
// provably rule out.
func poolRecords(pool uint64, n, minSize, maxSize int) []lshensemble.DomainRecord {
	rng := xrand.New(pool*0x9E3779B97F4A7C15 + 1)
	recs := make([]lshensemble.DomainRecord, n)
	for i := range recs {
		sig := make(minhash.Signature, 128)
		for j := range sig {
			sig[j] = pool<<56 | rng.Uint64()&((1<<56)-1)
		}
		recs[i] = lshensemble.DomainRecord{
			Key:  fmt.Sprintf("p%02d-%04d", pool, i),
			Size: minSize + int(rng.Uint64()%uint64(maxSize-minSize+1)),
			Sig:  sig,
		}
	}
	return recs
}

// manySegmentsIndex builds a live index with exactly `pools` sealed segments
// (one per disjoint value pool) and returns the records of the first
// hotPools pools — the only segments any query over them can match.
func manySegmentsIndex(b *testing.B, opts lshensemble.LiveOptions, pools, hotPools int) (*lshensemble.LiveIndex, []lshensemble.DomainRecord) {
	b.Helper()
	idx, err := lshensemble.BuildLive(nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	var hot []lshensemble.DomainRecord
	for p := 0; p < pools; p++ {
		recs := poolRecords(uint64(p), 64, 32, 512)
		for _, r := range recs {
			if _, err := idx.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		idx.Flush() // one sealed segment per pool; ManualCompaction keeps them apart
		if p < hotPools {
			hot = append(hot, recs...)
		}
	}
	return idx, hot
}

// BenchmarkLiveQueryManySegments measures what segment pruning buys on a
// snapshot with many sealed segments when the query's candidates live in only
// a few of them — the skewed shape a long-running daemon reaches. 8 of 32
// segments hold candidates; the planner's Bloom/range metadata must rule the
// other 24 out without probing. The pruned config keeps the result cache off
// so the speedup is honest planning, not memoization.
func BenchmarkLiveQueryManySegments(b *testing.B) {
	const pools, hotPools = 32, 8
	run := func(b *testing.B, opts lshensemble.LiveOptions) {
		idx, hot := manySegmentsIndex(b, opts, pools, hotPools)
		defer idx.Close()
		// A fixed 64-query working set spread across the hot pools: a steady
		// query mix whose distinct (size, threshold) plans all fit the plan
		// cache, so the timed loop measures the planner's steady state.
		queries := make([]lshensemble.DomainRecord, 64)
		for i := range queries {
			queries[i] = hot[i*17%len(hot)]
		}
		var dst []string
		for _, r := range queries { // warm scratch + plan cache
			dst = idx.QueryAppend(dst[:0], r.Sig, r.Size, 0.5)
		}
		st := idx.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := queries[i%len(queries)]
			dst = idx.QueryAppend(dst[:0], r.Sig, r.Size, 0.5)
		}
		b.StopTimer()
		after := idx.Stats()
		probed := after.Planner.SegmentsProbed - st.Planner.SegmentsProbed
		pruned := after.Planner.SegmentsRangePruned - st.Planner.SegmentsRangePruned +
			after.Planner.SegmentsBloomPruned - st.Planner.SegmentsBloomPruned
		if total := probed + pruned; total > 0 {
			b.ReportMetric(float64(pruned)/float64(total), "pruned-frac")
		}
	}
	base := lshensemble.LiveOptions{
		Options:          lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8},
		SealThreshold:    64,
		MaxSegments:      pools + 1,
		ManualCompaction: true,
		ResultCacheSize:  -1,
	}
	b.Run("pruned", func(b *testing.B) { run(b, base) })
	b.Run("unpruned", func(b *testing.B) {
		opts := base
		opts.DisablePruning = true
		opts.DisablePlanCache = true
		run(b, opts)
	})
}

// BenchmarkResultCacheHit measures the snapshot-coherent result cache: the
// hit path (same query, unchanged snapshot generation) against the cold path
// (cache disabled, full planned scan every time). Hits must be
// allocation-free — the cached key slice is appended straight into dst.
func BenchmarkResultCacheHit(b *testing.B) {
	const pools, hotPools = 32, 8
	run := func(b *testing.B, cacheSize int, spread int) {
		opts := lshensemble.LiveOptions{
			Options:          lshensemble.Options{NumHash: 128, RMax: 4, NumPartitions: 8},
			SealThreshold:    64,
			MaxSegments:      pools + 1,
			ManualCompaction: true,
			ResultCacheSize:  cacheSize,
		}
		idx, hot := manySegmentsIndex(b, opts, pools, hotPools)
		defer idx.Close()
		var dst []string
		for i := 0; i < spread; i++ {
			r := hot[i]
			dst = idx.QueryAppend(dst[:0], r.Sig, r.Size, 0.5)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := hot[i%spread]
			dst = idx.QueryAppend(dst[:0], r.Sig, r.Size, 0.5)
		}
	}
	// 64 distinct queries cycle well inside the default 1024-entry cache, so
	// after warmup every iteration is a generation-checked hit.
	b.Run("hit", func(b *testing.B) { run(b, 0, 64) })
	b.Run("cold", func(b *testing.B) { run(b, -1, 64) })
}

// outOfCoreBenchIndex builds the steady multi-segment shape of
// liveBenchIndex, optionally spilled to dataDir and served via mmap.
func outOfCoreBenchIndex(b *testing.B, f *fixture, dataDir string, mmap bool) *lshensemble.LiveIndex {
	b.Helper()
	idx, err := lshensemble.BuildLive(f.records[:len(f.records)/2], lshensemble.LiveOptions{
		Options:          lshensemble.Options{NumPartitions: 16},
		SealThreshold:    1024,
		MaxSegments:      8,
		ManualCompaction: true,
		// Result caching off: the point is the raw probe path over the two
		// backings, not memoization.
		ResultCacheSize: -1,
		DataDir:         dataDir,
		Mmap:            mmap,
	})
	if err != nil {
		b.Fatal(err)
	}
	half := len(f.records) / 2
	for i := half; i < len(f.records); i++ {
		if _, err := idx.Add(f.records[i]); err != nil {
			b.Fatal(err)
		}
		if (i-half)%1000 == 999 {
			idx.Flush()
		}
	}
	idx.Flush()
	return idx
}

// BenchmarkLiveQueryMmapVsHeap is the zero-copy acceptance bench: the same
// multi-segment corpus queried from heap-resident segments vs mmap-backed
// segment files. The binary-search probes run directly on the mapped byte
// views, so once the working set is faulted in, mmap must stay within 1.3x
// of heap — and both paths must be allocation-free in steady state.
func BenchmarkLiveQueryMmapVsHeap(b *testing.B) {
	f := openDataFixture(b, 8000)
	run := func(b *testing.B, dataDir string, mmap bool) {
		idx := outOfCoreBenchIndex(b, f, dataDir, mmap)
		defer idx.Close()
		var dst []string
		for _, qi := range f.queries { // warm scratch, plan cache, page cache
			dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qi := f.queries[i%len(f.queries)]
			dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
		}
	}
	b.Run("heap", func(b *testing.B) { run(b, "", false) })
	b.Run("mmap", func(b *testing.B) { run(b, b.TempDir(), true) })
}

// BenchmarkColdBootLazy measures restart cost: time from snapshot bytes to
// the first answered query. The eager path decodes the whole inline v3
// snapshot; the lazy path opens a manifest whose segments are mmapped —
// only the header and planner metadata are read eagerly, the signature
// store pages in on demand as the first query probes it.
func BenchmarkColdBootLazy(b *testing.B) {
	f := openDataFixture(b, 8000)
	q := f.records[f.queries[0]]

	heapOpts := lshensemble.LiveOptions{
		Options:          lshensemble.Options{NumPartitions: 16},
		SealThreshold:    1024,
		ManualCompaction: true,
	}
	src, err := lshensemble.BuildLive(f.records, heapOpts)
	if err != nil {
		b.Fatal(err)
	}
	var inline bytes.Buffer
	if err := src.Save(&inline); err != nil {
		b.Fatal(err)
	}
	src.Close()

	mmapOpts := heapOpts
	mmapOpts.DataDir = b.TempDir()
	mmapOpts.Mmap = true
	src, err = lshensemble.BuildLive(f.records, mmapOpts)
	if err != nil {
		b.Fatal(err)
	}
	var manifest bytes.Buffer
	if err := src.Save(&manifest); err != nil {
		b.Fatal(err)
	}
	src.Close()

	boot := func(b *testing.B, snap []byte, opts lshensemble.LiveOptions) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx, err := lshensemble.LoadLive(bytes.NewReader(snap), opts)
			if err != nil {
				b.Fatal(err)
			}
			if got := idx.Query(q.Sig, q.Size, 0.5); len(got) == 0 {
				b.Fatal("first query after boot found nothing")
			}
			idx.Close()
		}
	}
	b.Run("eager-inline", func(b *testing.B) { boot(b, inline.Bytes(), heapOpts) })
	b.Run("lazy-mmap", func(b *testing.B) { boot(b, manifest.Bytes(), mmapOpts) })
}

// benchObserver is the serving tier's observer shape: one histogram
// observation per query. Used to price the instrumented query path.
type benchObserver struct {
	h *obs.Histogram
}

func (o benchObserver) ObserveQuery(_ lshensemble.LiveQueryKind, d time.Duration) {
	o.h.Observe(d.Seconds())
}

// BenchmarkLiveQueryMetricsOverhead prices the observability hook on the
// hot path: the same steady-state query stream with no observer installed
// vs with the daemon's histogram observer recording every query. The
// acceptance target is the instrumented path staying within 3% of the
// uninstrumented one and allocating nothing.
func BenchmarkLiveQueryMetricsOverhead(b *testing.B) {
	f := openDataFixture(b, 8000)
	// One shared index for both variants: segment layout varies a little
	// from build to build (compaction timing), and that variance would
	// otherwise swamp the ~nanoseconds the observer itself costs.
	idx := liveBenchIndex(b, f, 1024)
	defer idx.Close()
	run := func(b *testing.B, observer lshensemble.LiveObserver) {
		idx.SetObserver(observer)
		var dst []string
		for _, qi := range f.queries {
			dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qi := f.queries[i%len(f.queries)]
			dst = idx.QueryAppend(dst[:0], f.records[qi].Sig, f.records[qi].Size, 0.5)
		}
	}
	b.Run("no-metrics", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) {
		run(b, benchObserver{h: obs.NewHistogram(obs.DefBuckets)})
	})
}
